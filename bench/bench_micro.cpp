// Micro-benchmarks (google-benchmark) of the inference kernels: factor
// algebra scaling, moralization/triangulation, junction-tree potential
// initialization and message passing, and end-to-end compile/update on a
// mid-size circuit.
#include <benchmark/benchmark.h>

#include "bn/exact.h"
#include "bn/junction_tree.h"
#include "gen/benchmarks.h"
#include "lidag/estimator.h"
#include "lidag/lidag.h"
#include "util/rng.h"

namespace bns {
namespace {

Factor random_factor(std::vector<VarId> vars, Rng& rng) {
  Factor f(std::move(vars), std::vector<int>(vars.size(), 4));
  for (std::size_t i = 0; i < f.size(); ++i) f.set_value(i, rng.uniform() + 0.1);
  return f;
}

void BM_FactorProduct(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<VarId> va;
  std::vector<VarId> vb;
  for (int i = 0; i < k; ++i) va.push_back(i);
  for (int i = k / 2; i < k + k / 2; ++i) vb.push_back(i); // half overlap
  const Factor a = random_factor(va, rng);
  const Factor b = random_factor(vb, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.product(b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FactorProduct)->DenseRange(2, 8)->Complexity();

void BM_FactorMarginal(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<VarId> va;
  for (int i = 0; i < k; ++i) va.push_back(i);
  const Factor a = random_factor(va, rng);
  const VarId keep[] = {0, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.marginal(keep));
  }
}
BENCHMARK(BM_FactorMarginal)->DenseRange(3, 9);

// Satellite of the schedule PR: summing out the fastest-varying axis
// (scope position 0) hits the contiguous-block accumulation fast path
// in the ScopeMap kernels; the slowest axis is the strided worst case.
// Arg(0) = fastest axis, Arg(1) = slowest axis, on an 8-variable table.
void BM_SumOutAxis(benchmark::State& state) {
  const int k = 8;
  Rng rng(1);
  std::vector<VarId> va;
  for (int i = 0; i < k; ++i) va.push_back(i);
  const Factor a = random_factor(va, rng);
  const VarId victim = state.range(0) == 0 ? 0 : k - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.sum_out(victim));
  }
}
BENCHMARK(BM_SumOutAxis)->Arg(0)->Arg(1);

// Scheduled vs legacy engine update loop (load_potentials + propagate
// on a precompiled tree). Arg(0) = legacy temporary-factor messages,
// Arg(1) = compiled MessagePlans (zero-allocation stride programs).
void BM_EngineUpdate(benchmark::State& state) {
  const Netlist nl = make_benchmark("count");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  LidagBn lb = build_lidag(nl, m);
  std::vector<std::array<double, 4>> bd(
      static_cast<std::size_t>(nl.num_nodes()));
  quantify_lidag(lb, m, bd);
  CompileOptions opts;
  opts.compile_schedule = state.range(0) != 0;
  JunctionTreeEngine eng(lb.bn, opts);
  eng.load_potentials();
  eng.propagate();
  for (auto _ : state) {
    eng.load_potentials();
    eng.propagate();
    benchmark::DoNotOptimize(eng.propagated());
  }
}
BENCHMARK(BM_EngineUpdate)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_Moralize(benchmark::State& state) {
  const Netlist nl = make_benchmark("c880");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  const LidagBn lb = build_lidag(nl, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(moral_graph(lb.bn));
  }
}
BENCHMARK(BM_Moralize);

void BM_Triangulate(benchmark::State& state) {
  const Netlist nl = make_benchmark("c432");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  const LidagBn lb = build_lidag(nl, m);
  const UndirectedGraph g = moral_graph(lb.bn);
  const auto h = state.range(0) == 0 ? EliminationHeuristic::MinFill
                                     : EliminationHeuristic::MinDegree;
  for (auto _ : state) {
    benchmark::DoNotOptimize(triangulate(g, h));
  }
}
BENCHMARK(BM_Triangulate)->Arg(0)->Arg(1);

void BM_CompileC880(benchmark::State& state) {
  const Netlist nl = make_benchmark("c880");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  for (auto _ : state) {
    LidagEstimator est(nl, m);
    benchmark::DoNotOptimize(est.num_segments());
  }
}
BENCHMARK(BM_CompileC880)->Unit(benchmark::kMillisecond);

void BM_UpdateC880(benchmark::State& state) {
  const Netlist nl = make_benchmark("c880");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  LidagEstimator est(nl, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.estimate(m));
  }
}
BENCHMARK(BM_UpdateC880)->Unit(benchmark::kMillisecond);

void BM_VariableEliminationC17(benchmark::State& state) {
  const Netlist nl = make_benchmark("c17");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  LidagBn lb = build_lidag(nl, m);
  std::vector<std::array<double, 4>> bd(static_cast<std::size_t>(nl.num_nodes()));
  quantify_lidag(lb, m, bd);
  const VarId last = lb.bn.num_variables() - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ve_marginal(lb.bn, last));
  }
}
BENCHMARK(BM_VariableEliminationC17);

} // namespace
} // namespace bns

BENCHMARK_MAIN();
