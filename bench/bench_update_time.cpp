// Reproduces the Section 6 claim that after one-time compilation,
// re-estimating under *different input statistics* costs only the cheap
// propagation ("update") step: "the circuits can be precompiled, only
// propagation has to be done for different input statistics."
//
// For each circuit: compile once, then propagate a sweep of input signal
// probabilities / temporal correlations, reporting compile time vs the
// per-update propagate time.
#include <iostream>
#include <string>
#include <vector>

#include "gen/benchmarks.h"
#include "lidag/estimator.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

using namespace bns;

int main(int argc, char** argv) {
  std::vector<std::string> circuits;
  for (int i = 1; i < argc; ++i) circuits.emplace_back(argv[i]);
  if (circuits.empty()) {
    circuits = {"c17",  "comp",  "count", "c432", "c499",
                "c880", "c1355", "c1908", "c6288"};
  }

  std::cout << "Update-time study — compile once, propagate per input "
               "statistics\n\n";
  Table table({"Circuit", "Nodes", "Compile(s)", "Update avg(s)",
               "Update max(s)", "Updates/s"});

  const std::vector<std::pair<double, double>> sweep = {
      {0.5, 0.0}, {0.3, 0.0}, {0.7, 0.0}, {0.5, 0.4},
      {0.5, -0.4}, {0.2, 0.2}, {0.8, 0.6}, {0.4, 0.8},
  };

  for (const std::string& name : circuits) {
    const Netlist nl = make_benchmark(name);
    const InputModel base = InputModel::uniform(nl.num_inputs());
    LidagEstimator est(nl, base);

    RunningStats update;
    for (const auto& [p, rho] : sweep) {
      const SwitchingEstimate sw =
          est.estimate(InputModel::uniform(nl.num_inputs(), p, rho));
      update.add(sw.propagate_seconds);
    }
    table.add_row({name, std::to_string(nl.num_nodes()),
                   strformat("%.3f", est.compile_seconds()),
                   strformat("%.4f", update.mean()),
                   strformat("%.4f", update.max()),
                   strformat("%.1f", 1.0 / update.mean())});
    std::cerr << "done: " << name << "\n";
  }
  table.print(std::cout);
  std::cout << "\nThe update column is the cost of re-estimating with new "
               "input statistics on the precompiled junction trees; it is "
               "consistently a small fraction of compile time.\n";
  return 0;
}
