// Reproduces the Section 6 claim that after one-time compilation,
// re-estimating under *different input statistics* costs only the cheap
// propagation ("update") step: "the circuits can be precompiled, only
// propagation has to be done for different input statistics."
//
// For each circuit: compile once, then propagate a sweep of input signal
// probabilities / temporal correlations, reporting compile time vs the
// per-update propagate time.
//
// Usage:
//   bench_update_time [circuit...] [--threads N[,N...]] [--json PATH]
//
// --threads runs the sweep once per listed worker count (default "1").
// --json appends one record per (circuit, thread count) to PATH as a
// JSON array of {"bench","circuit","wall_seconds","threads"} objects —
// the schema consumed by CI's bench-smoke artifact.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "gen/benchmarks.h"
#include "lidag/estimator.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

using namespace bns;

namespace {

std::vector<int> parse_thread_list(const std::string& arg) {
  std::vector<int> out;
  std::stringstream ss(arg);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const int n = std::atoi(tok.c_str());
    if (n > 0) out.push_back(n);
  }
  if (out.empty()) out.push_back(1);
  return out;
}

struct JsonRecord {
  std::string circuit;
  double wall_seconds = 0.0;
  int threads = 1;
};

void write_json(const std::string& path, const std::vector<JsonRecord>& recs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::cerr << "cannot open " << path << " for writing\n";
    return;
  }
  std::fputs("[\n", f);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    std::fprintf(f,
                 "  {\"bench\": \"bench_update_time\", \"circuit\": \"%s\", "
                 "\"wall_seconds\": %.6f, \"threads\": %d}%s\n",
                 recs[i].circuit.c_str(), recs[i].wall_seconds,
                 recs[i].threads, i + 1 < recs.size() ? "," : "");
  }
  std::fputs("]\n", f);
  std::fclose(f);
  std::cerr << "wrote " << recs.size() << " records to " << path << "\n";
}

} // namespace

int main(int argc, char** argv) {
  std::vector<std::string> circuits;
  std::vector<int> thread_counts = {1};
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      thread_counts = parse_thread_list(argv[++i]);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      circuits.push_back(arg);
    }
  }
  if (circuits.empty()) {
    circuits = {"c17",  "comp",  "count", "c432", "c499",
                "c880", "c1355", "c1908", "c6288"};
  }

  std::cout << "Update-time study — compile once, propagate per input "
               "statistics\n\n";
  Table table({"Circuit", "Nodes", "Threads", "Compile(s)", "Update avg(s)",
               "Update max(s)", "Updates/s"});

  const std::vector<std::pair<double, double>> sweep = {
      {0.5, 0.0}, {0.3, 0.0}, {0.7, 0.0}, {0.5, 0.4},
      {0.5, -0.4}, {0.2, 0.2}, {0.8, 0.6}, {0.4, 0.8},
  };

  std::vector<JsonRecord> records;
  for (const std::string& name : circuits) {
    const Netlist nl = make_benchmark(name);
    const InputModel base = InputModel::uniform(nl.num_inputs());
    for (const int threads : thread_counts) {
      EstimatorOptions opts;
      opts.num_threads = threads;
      LidagEstimator est(nl, base, opts);

      RunningStats update;
      for (const auto& [p, rho] : sweep) {
        const SwitchingEstimate sw =
            est.estimate(InputModel::uniform(nl.num_inputs(), p, rho));
        update.add(sw.propagate_seconds);
      }
      table.add_row({name, std::to_string(nl.num_nodes()),
                     std::to_string(est.num_threads()),
                     strformat("%.3f", est.compile_seconds()),
                     strformat("%.4f", update.mean()),
                     strformat("%.4f", update.max()),
                     strformat("%.1f", 1.0 / update.mean())});
      records.push_back({name, update.mean(), est.num_threads()});
      std::cerr << "done: " << name << " (threads=" << est.num_threads()
                << ")\n";
    }
  }
  table.print(std::cout);
  std::cout << "\nThe update column is the cost of re-estimating with new "
               "input statistics on the precompiled junction trees; it is "
               "consistently a small fraction of compile time.\n";
  if (!json_path.empty()) write_json(json_path, records);
  return 0;
}
