// Reproduces the Section 6 claim that after one-time compilation,
// re-estimating under *different input statistics* costs only the cheap
// propagation ("update") step: "the circuits can be precompiled, only
// propagation has to be done for different input statistics."
//
// For each circuit: compile once, then propagate a sweep of input signal
// probabilities / temporal correlations, reporting compile time vs the
// per-update propagate time.
//
// Usage:
//   bench_update_time [circuit...] [--threads N[,N...]] [--json PATH]
//                     [--trace-json PATH] [--trace-summary]
//
// --threads runs the sweep once per listed worker count (default "1").
// --json writes a schema_version-3 document to PATH: a "provenance"
// object (git describe, build type, UTC timestamp, hostname) plus one
// record per (circuit, thread count) carrying wall_seconds and a
// "stats" sub-object with the CompileStats/EstimateStats breakdown —
// the schema consumed by CI's bench-smoke artifact. (Version 3 added
// provenance; 2 added the stats sub-object.)
// --trace-json streams schema_version-1 JSON-lines span/counter records
// (parse, lidag, triangulate, schedule, load, propagate, ...) to PATH.
// --trace-summary prints an aggregated per-stage table to stderr.
//
// Malformed or missing option values exit with status 2 and usage.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bns.h"
#include "session/session.h"
#include "util/cli.h"

using namespace bns;

namespace {

constexpr const char kUsage[] = R"(usage:
  bench_update_time [circuit...] [options]
options:
  --threads N[,N...]   run the sweep per worker count (positive integers)
  --json PATH          write machine-readable results (schema_version 3)
  --trace-json PATH    stream span/counter JSON-lines (schema_version 1)
  --trace-summary      print a per-stage timing table to stderr
)";

struct JsonRecord {
  std::string circuit;
  double wall_seconds = 0.0; // mean propagate time over the sweep
  int threads = 1;
  double compile_seconds = 0.0;
  double schedule_build_seconds = 0.0;
  int num_segments = 0;
  std::uint64_t fill_edges = 0;
  double reload_seconds = 0.0;     // mean over the sweep
  std::uint64_t messages_passed = 0; // per update
};

void write_json(const std::string& path, const std::vector<JsonRecord>& recs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::cerr << "cannot open " << path << " for writing\n";
    std::exit(cli::kExitUsage);
  }
  const obs::ReportProvenance prov = obs::default_provenance();
  // Strings from outside the program (paths, git describe, hostname) go
  // through the JSON escaper — a circuit path with a quote or newline
  // must not corrupt the document.
  const auto escaped = [](const std::string& s) {
    std::string out;
    obs::json_append_string(out, s);
    return out;
  };
  std::fprintf(f,
               "{\n  \"schema_version\": 3,\n"
               "  \"bench\": \"bench_update_time\",\n"
               "  \"provenance\": {\"git_describe\": %s, "
               "\"build_type\": %s, \"timestamp\": %s, "
               "\"hostname\": %s},\n  \"records\": [\n",
               escaped(prov.git_describe).c_str(),
               escaped(prov.build_type).c_str(),
               escaped(prov.timestamp_iso8601).c_str(),
               escaped(prov.hostname).c_str());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const JsonRecord& r = recs[i];
    std::fprintf(
        f,
        "    {\"circuit\": %s, \"wall_seconds\": %.6f, \"threads\": %d, "
        "\"stats\": {\"compile_seconds\": %.6f, "
        "\"schedule_build_seconds\": %.6f, \"num_segments\": %d, "
        "\"fill_edges\": %llu, \"reload_seconds\": %.6f, "
        "\"messages_passed\": %llu, \"propagate_seconds\": %.6f, "
        "\"threads_used\": %d}}%s\n",
        escaped(r.circuit).c_str(), r.wall_seconds, r.threads,
        r.compile_seconds,
        r.schedule_build_seconds, r.num_segments,
        static_cast<unsigned long long>(r.fill_edges), r.reload_seconds,
        static_cast<unsigned long long>(r.messages_passed), r.wall_seconds,
        r.threads, i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::cerr << "wrote " << recs.size() << " records to " << path << "\n";
}

} // namespace

int main(int argc, char** argv) {
  std::vector<std::string> circuits;
  std::vector<int> thread_counts = {1};
  std::string json_path;
  std::string trace_json_path;
  bool trace_summary = false;
  cli::ArgParser ap("bench_update_time", kUsage);
  ap.value("--threads", &thread_counts);
  ap.value("--json", &json_path);
  ap.value("--trace-json", &trace_json_path);
  ap.flag("--trace-summary", &trace_summary);
  ap.positional([&circuits](std::string_view a) {
    circuits.emplace_back(a);
    return true;
  });
  ap.parse(argc, argv);
  if (circuits.empty()) {
    circuits = {"c17",  "comp",  "count", "c432", "c499",
                "c880", "c1355", "c1908", "c6288"};
  }

  // Tracing plumbing. The sinks must outlive the tracer's last span and
  // flush, so they are declared first; the global hook picks up spans
  // from layers without options plumbing (parsers, thread pool).
  std::optional<std::ofstream> trace_out;
  std::optional<obs::JsonLinesSink> json_sink;
  obs::SummarySink summary_sink;
  obs::Tracer tracer(obs::TraceLevel::Spans);
  obs::Tracer* trace = nullptr;
  if (!trace_json_path.empty() || trace_summary) {
    if (!trace_json_path.empty()) {
      trace_out.emplace(trace_json_path);
      if (!*trace_out) {
        std::cerr << "cannot open " << trace_json_path << " for writing\n";
        return cli::kExitUsage;
      }
      json_sink.emplace(*trace_out);
      tracer.add_sink(&*json_sink);
    }
    if (trace_summary) tracer.add_sink(&summary_sink);
    trace = &tracer;
    obs::set_global_tracer(trace);
  }

  std::cout << "Update-time study — compile once, propagate per input "
               "statistics\n\n";
  Table table({"Circuit", "Nodes", "Threads", "Compile(s)", "Update avg(s)",
               "Update max(s)", "Updates/s"});

  const std::vector<std::pair<double, double>> sweep = {
      {0.5, 0.0}, {0.3, 0.0}, {0.7, 0.0}, {0.5, 0.4},
      {0.5, -0.4}, {0.2, 0.2}, {0.8, 0.6}, {0.4, 0.8},
  };

  std::vector<JsonRecord> records;
  for (const std::string& name : circuits) {
    // The built-in suite is constructed programmatically, so the parse
    // stage is the netlist build; file-based runs hit the same span via
    // the instrumented readers.
    const Netlist nl = [&] {
      obs::Span parse_span(trace, "parse");
      return make_benchmark(name);
    }();
    const InputModel base = InputModel::uniform(nl.num_inputs());
    for (const int threads : thread_counts) {
      SessionOptions opts;
      opts.estimator.num_threads = threads;
      opts.estimator.trace = trace;
      Session session = Session::open(Netlist(nl), base, opts);
      const LidagEstimator& est = session.estimator();

      RunningStats update;
      RunningStats reload;
      std::uint64_t messages = 0;
      for (const auto& [p, rho] : sweep) {
        const SwitchingEstimate sw =
            session.estimate(InputModel::uniform(nl.num_inputs(), p, rho));
        update.add(sw.stats.propagate_seconds);
        reload.add(sw.stats.reload_seconds);
        messages = sw.stats.messages_passed;
      }
      const CompileStats& cs = session.compile_stats();
      table.add_row({name, std::to_string(nl.num_nodes()),
                     std::to_string(est.num_threads()),
                     strformat("%.3f", cs.compile_seconds),
                     strformat("%.4f", update.mean()),
                     strformat("%.4f", update.max()),
                     strformat("%.1f", 1.0 / update.mean())});
      JsonRecord rec;
      rec.circuit = name;
      rec.wall_seconds = update.mean();
      rec.threads = est.num_threads();
      rec.compile_seconds = cs.compile_seconds;
      rec.schedule_build_seconds = cs.schedule_build_seconds;
      rec.num_segments = cs.num_segments;
      rec.fill_edges = cs.fill_edges;
      rec.reload_seconds = reload.mean();
      rec.messages_passed = messages;
      records.push_back(std::move(rec));
      std::cerr << "done: " << name << " (threads=" << est.num_threads()
                << ")\n";
    }
  }
  table.print(std::cout);
  std::cout << "\nThe update column is the cost of re-estimating with new "
               "input statistics on the precompiled junction trees; it is "
               "consistently a small fraction of compile time.\n";
  if (trace) {
    tracer.flush();
    obs::set_global_tracer(nullptr);
    if (trace_summary) summary_sink.render(std::cerr);
    if (trace_out) {
      trace_out->flush();
      std::cerr << "wrote trace JSON-lines to " << trace_json_path << "\n";
    }
  }
  if (!json_path.empty()) write_json(json_path, records);
  return 0;
}
