// Reproduces Table 2 of the paper: accuracy/time comparison of the
// Bayesian-network estimator against the prior-art estimator families on
// the ten large ISCAS-85 circuits.
//
// Column mapping to the paper (we reimplement algorithm families, not
// binaries — see DESIGN.md §2):
//   paircorr     ~ Marculescu'94 [7] / Marculescu'98 [9] pairwise
//                  spatio-temporal correlation coefficients
//   localbdd     ~ Schneider'96 [19] / Ding'98 [13] local-region methods
//                  (exact within a truncated fanin cone, independent at
//                  its frontier)
//   independence ~ zero-spatial-correlation reference
//   density      ~ Najm'93 transition density propagation [11]
//   bn           = this paper
//
// Usage: bench_table2 [--quick] [--csv] [--sim-pairs N] [circuit...]
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "gen/benchmarks.h"
// Table lives in obs/ so this bench, bench_table1, and the bns_report
// text renderer (obs::RunReport::render_text) share one formatting path.
#include "obs/table.h"
#include "util/strings.h"

using namespace bns;

int main(int argc, char** argv) {
  bool csv = false;
  std::uint64_t sim_pairs = 1 << 22;
  std::vector<std::string> circuits;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      csv = true;
    } else if (arg == "--quick") {
      sim_pairs = 1 << 19;
    } else if (arg == "--sim-pairs" && i + 1 < argc) {
      sim_pairs = std::stoull(argv[++i]);
    } else {
      circuits.push_back(arg);
    }
  }
  if (circuits.empty()) circuits = table2_names();

  std::cout << "Table 2 — comparison of estimation techniques on ISCAS-85 "
               "circuits\n(muErr/sigErr vs simulation; times in seconds)\n\n";

  Table table({"Circuit", "mu[paircorr]", "t[paircorr]", "mu[localbdd]",
               "t[localbdd]", "mu[indep]", "t[indep]", "mu[density]",
               "t[density]", "mu[BN]", "sig[BN]", "t[BN]"});
  RunningStats bn_mu;
  RunningStats pc_mu;
  for (const std::string& name : circuits) {
    const Netlist nl = make_benchmark(name);
    ExperimentConfig cfg;
    cfg.sim_pairs = sim_pairs;
    cfg.run_local_bdd = true;
    const ExperimentResult r = run_experiment(nl, cfg);
    const MethodResult& bn = r.method("bn");
    const MethodResult& in = r.method("independence");
    const MethodResult& de = r.method("density");
    const MethodResult& pc = r.method("paircorr");
    const MethodResult& lb = r.method("localbdd");
    bn_mu.add(bn.err.mu_err);
    pc_mu.add(pc.err.mu_err);
    table.add_row({name,
                   strformat("%.4f", pc.err.mu_err),
                   strformat("%.3f", pc.seconds),
                   strformat("%.4f", lb.err.mu_err),
                   strformat("%.3f", lb.seconds),
                   strformat("%.4f", in.err.mu_err),
                   strformat("%.3f", in.seconds),
                   strformat("%.4f", de.err.mu_err),
                   strformat("%.3f", de.seconds),
                   strformat("%.4f", bn.err.mu_err),
                   strformat("%.4f", bn.err.sigma_err),
                   strformat("%.3f", bn.seconds + bn.extra_seconds)});
    std::cerr << "done: " << name << "\n";
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\naverage muErr: BN = " << strformat("%.4f", bn_mu.mean())
            << ", paircorr = " << strformat("%.4f", pc_mu.mean())
            << "; the BN advantage concentrates on the parity/arithmetic "
               "circuits (c499/c1355/c6288) whose higher-order correlations "
               "pairwise composition cannot represent.\n";
  return 0;
}
