// Ablation bench for the multiple-Bayesian-network segmentation scheme —
// the component the paper identifies as its error source ("the errors
// encountered in larger circuits are contributed by the loss of some
// correlations in the network boundaries") and its stated future work
// ("an efficient segmentation technique").
//
// Sweeps, on a fixed circuit set:
//   1. segment size (accuracy/time tradeoff),
//   2. overlap window (0 = the paper's preliminary scheme),
//   3. boundary forwarding (independent marginals vs pairwise-joint links),
//   4. cut placement (fixed ranges vs minimum live-net frontier),
//   5. elimination heuristic (min-fill vs min-degree).
#include <iostream>
#include <string>
#include <vector>

#include "bns.h"

using namespace bns;

namespace {

struct Variant {
  std::string label;
  EstimatorOptions opts;
};

void run_suite(const std::vector<std::string>& circuits,
               const std::vector<Variant>& variants, std::uint64_t sim_pairs) {
  Table table({"Circuit", "Variant", "muErr", "sigErr", "maxErr", "Segs",
               "Compile(s)", "Update(s)"});
  for (const std::string& name : circuits) {
    const Netlist nl = make_benchmark(name);
    const InputModel model = InputModel::uniform(nl.num_inputs());
    const SimResult sim = SwitchingSimulator(nl).run(model, sim_pairs, 7);
    const std::vector<double> ref = sim.activities();
    for (const Variant& v : variants) {
      EstimatorOptions opts = v.opts;
      LidagEstimator est(nl, model, opts);
      const SwitchingEstimate sw = est.estimate(model);
      const ErrorStats err = compute_error_stats(sw.activities(), ref);
      table.add_row({name, v.label, strformat("%.4f", err.mu_err),
                     strformat("%.4f", err.sigma_err),
                     strformat("%.4f", err.max_err),
                     std::to_string(est.compile_stats().num_segments),
                     strformat("%.3f", est.compile_stats().compile_seconds),
                     strformat("%.4f", sw.stats.propagate_seconds)});
    }
    std::cerr << "done: " << name << "\n";
  }
  table.print(std::cout);
  std::cout << "\n";
}

EstimatorOptions base_opts() {
  EstimatorOptions o;
  o.single_bn_nodes = 0; // force segmentation even on small circuits
  return o;
}

} // namespace

int main(int argc, char** argv) {
  std::uint64_t sim_pairs = 1 << 21;
  std::vector<std::string> circuits;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      sim_pairs = 1 << 18;
    } else {
      circuits.push_back(arg);
    }
  }
  if (circuits.empty()) circuits = {"c432", "c880", "c1355", "c6288"};

  std::cout << "Ablation 1 — segment size\n";
  {
    std::vector<Variant> vs;
    for (int size : {40, 80, 140, 240}) {
      Variant v{strformat("size=%d", size), base_opts()};
      v.opts.segment_nodes = size;
      vs.push_back(v);
    }
    run_suite(circuits, vs, sim_pairs);
  }

  std::cout << "Ablation 2 — overlap window\n";
  {
    std::vector<Variant> vs;
    for (int ov : {0, 16, 64, 128}) {
      Variant v{strformat("overlap=%d", ov), base_opts()};
      v.opts.segment_overlap = ov;
      vs.push_back(v);
    }
    run_suite(circuits, vs, sim_pairs);
  }

  std::cout << "Ablation 3 — boundary forwarding\n";
  {
    Variant indep{"marginals", base_opts()};
    indep.opts.lidag.boundary_chain = false;
    Variant chain{"pair-joints", base_opts()};
    chain.opts.lidag.boundary_chain = true;
    run_suite(circuits, {indep, chain}, sim_pairs);
  }

  std::cout << "Ablation 4 — cut placement\n";
  {
    Variant fixed{"fixed-range", base_opts()};
    fixed.opts.segmentation = SegmentationStrategy::FixedRange;
    Variant frontier{"min-frontier", base_opts()};
    frontier.opts.segmentation = SegmentationStrategy::MinFrontier;
    run_suite(circuits, {fixed, frontier}, sim_pairs);
  }

  std::cout << "Ablation 5 — elimination heuristic\n";
  {
    Variant fill{"min-fill", base_opts()};
    fill.opts.heuristic = EliminationHeuristic::MinFill;
    Variant deg{"min-degree", base_opts()};
    deg.opts.heuristic = EliminationHeuristic::MinDegree;
    run_suite(circuits, {fill, deg}, sim_pairs);
  }
  return 0;
}
