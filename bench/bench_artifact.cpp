// bench_artifact — compile-vs-load study for .bnsc artifacts.
//
// The artifact's reason to exist is that restoring a compiled model is
// much cheaper than compiling it: the load path skips parsing, LIDAG
// construction, triangulation and schedule building, and only decodes +
// re-materializes the junction trees. This bench quantifies that, per
// circuit:
//
//   compile_seconds   Session::open (parse + full compile)
//   save_seconds      Session::save (serialize + fsync-free write)
//   load_seconds      Session::open_artifact, min over --repeat runs
//                     (validation included — the SC analyzer runs too)
//   load_ratio        load_seconds / compile_seconds
//
// Every load is also checked for bitwise-identical estimates against
// the in-process model; a mismatch aborts the bench with exit 1.
//
// Usage:
//   bench_artifact [circuit...] [--repeat N] [--json PATH]
#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bns.h"
#include "session/session.h"
#include "util/cli.h"
#include "util/timer.h"

using namespace bns;

namespace {

constexpr const char kUsage[] = R"(usage:
  bench_artifact [circuit...] [options]
options:
  --repeat N     artifact load runs per circuit; load time = min (default 5)
  --json PATH    write machine-readable results (schema_version 1)
)";

struct Record {
  std::string circuit;
  int nodes = 0;
  int segments = 0;
  double compile_seconds = 0.0;
  double save_seconds = 0.0;
  double load_seconds = 0.0;
  std::int64_t artifact_bytes = 0;
};

void write_json(const std::string& path, const std::vector<Record>& recs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::cerr << "cannot open " << path << " for writing\n";
    std::exit(cli::kExitUsage);
  }
  const obs::ReportProvenance prov = obs::default_provenance();
  const auto escaped = [](const std::string& s) {
    std::string out;
    obs::json_append_string(out, s);
    return out;
  };
  std::fprintf(f,
               "{\n  \"schema_version\": 1,\n"
               "  \"bench\": \"bench_artifact\",\n"
               "  \"provenance\": {\"git_describe\": %s, "
               "\"build_type\": %s, \"timestamp\": %s, "
               "\"hostname\": %s},\n  \"records\": [\n",
               escaped(prov.git_describe).c_str(),
               escaped(prov.build_type).c_str(),
               escaped(prov.timestamp_iso8601).c_str(),
               escaped(prov.hostname).c_str());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Record& r = recs[i];
    std::fprintf(
        f,
        "    {\"circuit\": %s, \"nodes\": %d, \"segments\": %d, "
        "\"compile_seconds\": %.6f, \"save_seconds\": %.6f, "
        "\"load_seconds\": %.6f, \"load_ratio\": %.4f, "
        "\"artifact_bytes\": %lld}%s\n",
        escaped(r.circuit).c_str(), r.nodes, r.segments, r.compile_seconds,
        r.save_seconds, r.load_seconds,
        r.compile_seconds > 0.0 ? r.load_seconds / r.compile_seconds : 0.0,
        static_cast<long long>(r.artifact_bytes), i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::cerr << "wrote " << recs.size() << " records to " << path << "\n";
}

} // namespace

int main(int argc, char** argv) {
  std::vector<std::string> circuits;
  int repeat = 5;
  std::string json_path;
  cli::ArgParser ap("bench_artifact", kUsage);
  ap.value("--repeat", &repeat);
  ap.value("--json", &json_path);
  ap.positional([&circuits](std::string_view a) {
    circuits.emplace_back(a);
    return true;
  });
  ap.parse(argc, argv);
  if (repeat < 1) ap.fail();
  if (circuits.empty()) {
    circuits = {"c17", "c432", "c499", "c880", "c1355", "c1908"};
  }

  std::cout << "Artifact study — compile once, load many times\n\n";
  Table table({"Circuit", "Nodes", "Compile(s)", "Save(s)", "Load(s)",
               "Load/Compile", "Bytes"});

  std::vector<Record> records;
  for (const std::string& name : circuits) {
    const std::string path =
        "/tmp/bns_bench_artifact_" + std::to_string(::getpid()) + ".bnsc";

    Session session = Session::open(name);
    Record rec;
    rec.circuit = name;
    rec.nodes = session.netlist().num_nodes();
    rec.segments = session.compile_stats().num_segments;
    rec.compile_seconds = session.compile_stats().compile_seconds;

    Timer save_timer;
    session.save(path);
    rec.save_seconds = save_timer.seconds();

    const InputModel model =
        InputModel::uniform(session.netlist().num_inputs(), 0.5, 0.2);
    const SwitchingEstimate want = session.estimate(model);

    double min_load = 0.0;
    for (int r = 0; r < repeat; ++r) {
      Session loaded = Session::open_artifact(path);
      if (r == 0 || loaded.load_seconds() < min_load) {
        min_load = loaded.load_seconds();
      }
      const SwitchingEstimate got = loaded.estimate(model);
      if (got.dist != want.dist) {
        std::fprintf(stderr,
                     "bench_artifact: %s: restored model differs bitwise "
                     "from the in-process compile\n",
                     name.c_str());
        ::unlink(path.c_str());
        return cli::kExitFailure;
      }
    }
    rec.load_seconds = min_load;
    {
      std::FILE* f = std::fopen(path.c_str(), "rb");
      if (f) {
        std::fseek(f, 0, SEEK_END);
        rec.artifact_bytes = std::ftell(f);
        std::fclose(f);
      }
    }
    ::unlink(path.c_str());

    table.add_row({name, std::to_string(rec.nodes),
                   strformat("%.4f", rec.compile_seconds),
                   strformat("%.4f", rec.save_seconds),
                   strformat("%.4f", rec.load_seconds),
                   strformat("%.3f", rec.compile_seconds > 0.0
                                         ? rec.load_seconds / rec.compile_seconds
                                         : 0.0),
                   std::to_string(rec.artifact_bytes)});
    records.push_back(std::move(rec));
    std::cerr << "done: " << name << "\n";
  }
  table.print(std::cout);
  std::cout << "\nLoading a .bnsc artifact restores the compiled junction "
               "trees without re-running parse, LIDAG build, triangulation "
               "or schedule construction; the Load/Compile column is the "
               "fraction of compile time a restore costs.\n";
  if (!json_path.empty()) write_json(json_path, records);
  return cli::kExitOk;
}
