// Scenario-sweep study: how much of the per-scenario update cost the
// batch engine's incremental reload avoids when consecutive scenarios
// differ in only a few inputs (the common what-if sweep: step one
// input's signal probability, keep the rest fixed).
//
// For each circuit: compile once, then run an N-scenario sweep where
// one input's p changes per scenario, two ways — N independent
// estimate() calls (every segment re-quantified and re-propagated each
// time) and one estimate_batch() call (only the changed input's fanout
// segments re-run). Reports total and amortized per-scenario times and
// the speedup; the results are bitwise identical by contract, which
// this harness also asserts.
//
// Usage:
//   bench_sweep [circuit...] [--scenarios N] [--threads N] [--json PATH]
//
// --json writes a schema_version-1 document: provenance plus one record
// per circuit with both totals, the amortized per-scenario times, and
// the segment reload/skip counts.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bns.h"
#include "util/timer.h"

using namespace bns;

namespace {

[[noreturn]] void usage_exit() {
  std::fprintf(stderr, "%s", R"(usage:
  bench_sweep [circuit...] [options]
options:
  --scenarios N   scenarios per sweep (default 16)
  --threads N     estimator worker threads (default 1)
  --json PATH     write machine-readable results (schema_version 1)
)");
  std::exit(2);
}

struct JsonRecord {
  std::string circuit;
  int scenarios = 0;
  int threads = 1;
  double compile_seconds = 0.0;
  double sequential_seconds = 0.0; // N independent estimate() calls
  double batch_seconds = 0.0;      // one estimate_batch() call
  double speedup = 0.0;
  int segments = 0;
  int segments_reloaded = 0;
  int segments_skipped = 0;
};

void write_json(const std::string& path, const std::vector<JsonRecord>& recs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::cerr << "cannot open " << path << " for writing\n";
    std::exit(2);
  }
  const obs::ReportProvenance prov = obs::default_provenance();
  // Strings from outside the program (paths, git describe, hostname) go
  // through the JSON escaper — a circuit path with a quote or newline
  // must not corrupt the document.
  const auto escaped = [](const std::string& s) {
    std::string out;
    obs::json_append_string(out, s);
    return out;
  };
  std::fprintf(f,
               "{\n  \"schema_version\": 1,\n"
               "  \"bench\": \"bench_sweep\",\n"
               "  \"provenance\": {\"git_describe\": %s, "
               "\"build_type\": %s, \"timestamp\": %s, "
               "\"hostname\": %s},\n  \"records\": [\n",
               escaped(prov.git_describe).c_str(),
               escaped(prov.build_type).c_str(),
               escaped(prov.timestamp_iso8601).c_str(),
               escaped(prov.hostname).c_str());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const JsonRecord& r = recs[i];
    std::fprintf(
        f,
        "    {\"circuit\": %s, \"scenarios\": %d, \"threads\": %d, "
        "\"compile_seconds\": %.6f, \"sequential_seconds\": %.6f, "
        "\"batch_seconds\": %.6f, \"sequential_per_scenario\": %.6f, "
        "\"batch_per_scenario\": %.6f, \"speedup\": %.3f, "
        "\"segments\": %d, \"segments_reloaded\": %d, "
        "\"segments_skipped\": %d}%s\n",
        escaped(r.circuit).c_str(), r.scenarios, r.threads, r.compile_seconds,
        r.sequential_seconds, r.batch_seconds,
        r.sequential_seconds / r.scenarios, r.batch_seconds / r.scenarios,
        r.speedup, r.segments, r.segments_reloaded, r.segments_skipped,
        i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::cerr << "wrote " << recs.size() << " records to " << path << "\n";
}

// One input's p stepped across scenarios, everything else fixed — so
// between consecutive scenarios exactly one primary input changes.
std::vector<InputModel> make_scenarios(int num_inputs, int scenarios) {
  std::vector<InputModel> models;
  models.reserve(static_cast<std::size_t>(scenarios));
  for (int s = 0; s < scenarios; ++s) {
    std::vector<InputSpec> specs(static_cast<std::size_t>(num_inputs),
                                 InputSpec{0.5, 0.0, -1, 0.0});
    specs[0].p = 0.1 + 0.8 * static_cast<double>(s) /
                           static_cast<double>(scenarios > 1 ? scenarios - 1
                                                             : 1);
    models.push_back(InputModel::custom(std::move(specs)));
  }
  return models;
}

} // namespace

int main(int argc, char** argv) {
  std::vector<std::string> circuits;
  int scenarios = 16;
  int threads = 1;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_exit();
      return argv[++i];
    };
    if (arg == "--scenarios") {
      scenarios = std::atoi(next().c_str());
      if (scenarios < 1) usage_exit();
    } else if (arg == "--threads") {
      threads = std::atoi(next().c_str());
      if (threads < 1) usage_exit();
    } else if (arg == "--json") {
      json_path = next();
      if (json_path.empty()) usage_exit();
    } else if (!arg.empty() && arg[0] == '-') {
      usage_exit();
    } else {
      circuits.push_back(arg);
    }
  }
  if (circuits.empty()) circuits = {"c432", "c880", "c1908"};

  std::cout << "Scenario-sweep study — " << scenarios
            << " scenarios, one input's p stepped per scenario\n\n";
  Table table({"Circuit", "Segments", "Sequential(s)", "Batch(s)",
               "Seq/scen(s)", "Batch/scen(s)", "Speedup", "Reloaded",
               "Skipped"});

  std::vector<JsonRecord> records;
  for (const std::string& name : circuits) {
    const Netlist nl = make_benchmark(name);
    const std::vector<InputModel> models =
        make_scenarios(nl.num_inputs(), scenarios);

    EstimatorOptions opts;
    opts.num_threads = threads;

    // Baseline: N independent estimate() calls on one compiled
    // estimator (the pre-batch workflow: full reload every scenario).
    LidagEstimator seq_est(nl, models[0], opts);
    std::vector<SwitchingEstimate> seq_results;
    seq_results.reserve(models.size());
    Timer seq_timer;
    for (const InputModel& m : models) seq_results.push_back(seq_est.estimate(m));
    const double sequential_seconds = seq_timer.seconds();

    // The batch engine on a fresh estimator (same compile inputs).
    SweepOptions sopts;
    sopts.estimator = opts;
    const SweepResult res = run_sweep(nl, models, sopts);

    // The contract behind the speedup: skipping is exact.
    for (std::size_t s = 0; s < models.size(); ++s) {
      if (seq_results[s].dist != res.estimates[s].dist) {
        std::cerr << "bench_sweep: MISMATCH at scenario " << s << " on "
                  << name << " — batch differs bitwise from estimate()\n";
        return 1;
      }
    }

    const double speedup =
        res.wall_seconds > 0.0 ? sequential_seconds / res.wall_seconds : 0.0;
    JsonRecord rec;
    rec.circuit = name;
    rec.scenarios = scenarios;
    rec.threads = threads;
    rec.compile_seconds = res.compile_seconds;
    rec.sequential_seconds = sequential_seconds;
    rec.batch_seconds = res.wall_seconds;
    rec.speedup = speedup;
    rec.segments = seq_est.num_segments();
    rec.segments_reloaded = res.stats.segments_reloaded;
    rec.segments_skipped = res.stats.segments_skipped;
    records.push_back(rec);

    table.add_row({name, std::to_string(rec.segments),
                   strformat("%.4f", sequential_seconds),
                   strformat("%.4f", res.wall_seconds),
                   strformat("%.5f", sequential_seconds / scenarios),
                   strformat("%.5f", res.wall_seconds / scenarios),
                   strformat("%.2fx", speedup),
                   std::to_string(rec.segments_reloaded),
                   std::to_string(rec.segments_skipped)});
    std::cerr << "done: " << name << " (speedup " << strformat("%.2f", speedup)
              << "x)\n";
  }
  table.print(std::cout);
  std::cout << "\nThe batch column amortizes reload work: segments whose "
               "root CPTs are bitwise unchanged between consecutive "
               "scenarios keep their potentials and results (incremental "
               "reload), so only the changed input's fanout re-runs.\n";
  if (!json_path.empty()) write_json(json_path, records);
  return 0;
}
