// Scenario-sweep study: how much of the per-scenario update cost the
// batch engine's incremental reload avoids when consecutive scenarios
// differ in only a few inputs (the common what-if sweep: step one
// input's signal probability, keep the rest fixed).
//
// For each circuit: compile once, then run an N-scenario sweep where
// one input's p changes per scenario, two ways — N independent
// estimate() calls (every segment re-quantified and re-propagated each
// time) and one estimate_batch() call (only the changed input's fanout
// segments re-run, and inside those only the dirty cliques re-send
// messages). Reports total and amortized per-scenario times and the
// speedup; the results are bitwise identical by contract, which this
// harness also asserts.
//
// Usage:
//   bench_sweep [circuit...] [--scenarios N] [--threads LIST]
//               [--repeat N] [--json PATH]
//
// --threads takes a comma-separated list (e.g. 1,2,4) and emits one
// record per thread count, so a single run produces the scaling curve.
// --repeat re-runs both timed legs and keeps the minimum, squeezing
// scheduler jitter out of the reported seconds.
//
// --json writes a schema_version-2 document: provenance plus one record
// per (circuit, threads) with both totals, the amortized per-scenario
// times, the segment reload/skip counts, and the clique-level
// restore/message-skip counts from the dirty-frontier propagate.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bns.h"
#include "util/timer.h"

using namespace bns;

namespace {

[[noreturn]] void usage_exit() {
  std::fprintf(stderr, "%s", R"(usage:
  bench_sweep [circuit...] [options]
options:
  --scenarios N   scenarios per sweep (default 16)
  --threads LIST  comma-separated estimator worker-thread counts
                  (default 1; e.g. 1,2,4 emits one record per count)
  --repeat N      timed runs per leg; report the minimum (default 1)
  --json PATH     write machine-readable results (schema_version 2)
)");
  std::exit(2);
}

struct JsonRecord {
  std::string circuit;
  int scenarios = 0;
  int threads = 1;
  int repeat = 1;
  double compile_seconds = 0.0;
  double sequential_seconds = 0.0; // N independent estimate() calls (min)
  double batch_seconds = 0.0;      // one estimate_batch() call (min)
  double speedup = 0.0;
  int segments = 0;
  int segments_reloaded = 0;
  int segments_skipped = 0;
  std::uint64_t cliques_restored = 0;
  std::uint64_t messages_skipped = 0;
};

void write_json(const std::string& path, const std::vector<JsonRecord>& recs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::cerr << "cannot open " << path << " for writing\n";
    std::exit(2);
  }
  const obs::ReportProvenance prov = obs::default_provenance();
  // Strings from outside the program (paths, git describe, hostname) go
  // through the JSON escaper — a circuit path with a quote or newline
  // must not corrupt the document.
  const auto escaped = [](const std::string& s) {
    std::string out;
    obs::json_append_string(out, s);
    return out;
  };
  std::fprintf(f,
               "{\n  \"schema_version\": 2,\n"
               "  \"bench\": \"bench_sweep\",\n"
               "  \"provenance\": {\"git_describe\": %s, "
               "\"build_type\": %s, \"timestamp\": %s, "
               "\"hostname\": %s},\n  \"records\": [\n",
               escaped(prov.git_describe).c_str(),
               escaped(prov.build_type).c_str(),
               escaped(prov.timestamp_iso8601).c_str(),
               escaped(prov.hostname).c_str());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const JsonRecord& r = recs[i];
    std::fprintf(
        f,
        "    {\"circuit\": %s, \"scenarios\": %d, \"threads\": %d, "
        "\"repeat\": %d, "
        "\"compile_seconds\": %.6f, \"sequential_seconds\": %.6f, "
        "\"batch_seconds\": %.6f, \"sequential_per_scenario\": %.6f, "
        "\"batch_per_scenario\": %.6f, \"speedup\": %.3f, "
        "\"segments\": %d, \"segments_reloaded\": %d, "
        "\"segments_skipped\": %d, \"cliques_restored\": %llu, "
        "\"messages_skipped\": %llu}%s\n",
        escaped(r.circuit).c_str(), r.scenarios, r.threads, r.repeat,
        r.compile_seconds, r.sequential_seconds, r.batch_seconds,
        r.sequential_seconds / r.scenarios, r.batch_seconds / r.scenarios,
        r.speedup, r.segments, r.segments_reloaded, r.segments_skipped,
        static_cast<unsigned long long>(r.cliques_restored),
        static_cast<unsigned long long>(r.messages_skipped),
        i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::cerr << "wrote " << recs.size() << " records to " << path << "\n";
}

// One input's p stepped across scenarios, everything else fixed — so
// between consecutive scenarios exactly one primary input changes.
std::vector<InputModel> make_scenarios(int num_inputs, int scenarios) {
  std::vector<InputModel> models;
  models.reserve(static_cast<std::size_t>(scenarios));
  for (int s = 0; s < scenarios; ++s) {
    std::vector<InputSpec> specs(static_cast<std::size_t>(num_inputs),
                                 InputSpec{0.5, 0.0, -1, 0.0});
    specs[0].p = 0.1 + 0.8 * static_cast<double>(s) /
                           static_cast<double>(scenarios > 1 ? scenarios - 1
                                                             : 1);
    models.push_back(InputModel::custom(std::move(specs)));
  }
  return models;
}

std::vector<int> parse_thread_list(const std::string& arg) {
  std::vector<int> out;
  std::size_t start = 0;
  while (start <= arg.size()) {
    const std::size_t comma = arg.find(',', start);
    const std::string tok =
        arg.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    if (!tok.empty()) {
      const int t = std::atoi(tok.c_str());
      if (t < 1) usage_exit();
      out.push_back(t);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) usage_exit();
  return out;
}

} // namespace

int main(int argc, char** argv) {
  std::vector<std::string> circuits;
  int scenarios = 16;
  int repeat = 1;
  std::vector<int> thread_list = {1};
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_exit();
      return argv[++i];
    };
    if (arg == "--scenarios") {
      scenarios = std::atoi(next().c_str());
      if (scenarios < 1) usage_exit();
    } else if (arg == "--threads") {
      thread_list = parse_thread_list(next());
    } else if (arg == "--repeat") {
      repeat = std::atoi(next().c_str());
      if (repeat < 1) usage_exit();
    } else if (arg == "--json") {
      json_path = next();
      if (json_path.empty()) usage_exit();
    } else if (!arg.empty() && arg[0] == '-') {
      usage_exit();
    } else {
      circuits.push_back(arg);
    }
  }
  if (circuits.empty()) circuits = {"c432", "c880", "c1908"};

  std::cout << "Scenario-sweep study — " << scenarios
            << " scenarios, one input's p stepped per scenario, min over "
            << repeat << " run(s)\n\n";
  Table table({"Circuit", "Thr", "Segments", "Sequential(s)", "Batch(s)",
               "Seq/scen(s)", "Batch/scen(s)", "Speedup", "Reloaded",
               "Skipped", "CliqRest", "MsgSkip"});

  std::vector<JsonRecord> records;
  for (const std::string& name : circuits) {
    const Netlist nl = make_benchmark(name);
    const std::vector<InputModel> models =
        make_scenarios(nl.num_inputs(), scenarios);

    for (const int threads : thread_list) {
      EstimatorOptions opts;
      opts.num_threads = threads;

      // Baseline: N independent estimate() calls on one compiled
      // estimator (the pre-batch workflow: full reload every scenario).
      LidagEstimator seq_est(nl, models[0], opts);
      std::vector<SwitchingEstimate> seq_results;
      double sequential_seconds = 0.0;
      for (int r = 0; r < repeat; ++r) {
        std::vector<SwitchingEstimate> run;
        run.reserve(models.size());
        Timer seq_timer;
        for (const InputModel& m : models) run.push_back(seq_est.estimate(m));
        const double secs = seq_timer.seconds();
        if (r == 0 || secs < sequential_seconds) sequential_seconds = secs;
        if (r == 0) seq_results = std::move(run);
      }

      // The batch engine on a fresh estimator (same compile inputs).
      SweepOptions sopts;
      sopts.estimator = opts;
      SweepResult res = run_sweep(nl, models, sopts);
      for (int r = 1; r < repeat; ++r) {
        SweepResult again = run_sweep(nl, models, sopts);
        if (again.wall_seconds < res.wall_seconds) res = std::move(again);
      }

      // The contract behind the speedup: skipping is exact.
      for (std::size_t s = 0; s < models.size(); ++s) {
        if (seq_results[s].dist != res.estimates[s].dist) {
          std::cerr << "bench_sweep: MISMATCH at scenario " << s << " on "
                    << name << " — batch differs bitwise from estimate()\n";
          return 1;
        }
      }

      const double speedup =
          res.wall_seconds > 0.0 ? sequential_seconds / res.wall_seconds : 0.0;
      JsonRecord rec;
      rec.circuit = name;
      rec.scenarios = scenarios;
      rec.threads = threads;
      rec.repeat = repeat;
      rec.compile_seconds = res.compile_seconds;
      rec.sequential_seconds = sequential_seconds;
      rec.batch_seconds = res.wall_seconds;
      rec.speedup = speedup;
      rec.segments = seq_est.num_segments();
      rec.segments_reloaded = res.stats.segments_reloaded;
      rec.segments_skipped = res.stats.segments_skipped;
      rec.cliques_restored = res.stats.cliques_restored;
      rec.messages_skipped = res.stats.messages_skipped;
      records.push_back(rec);

      table.add_row({name, std::to_string(threads),
                     std::to_string(rec.segments),
                     strformat("%.4f", sequential_seconds),
                     strformat("%.4f", res.wall_seconds),
                     strformat("%.5f", sequential_seconds / scenarios),
                     strformat("%.5f", res.wall_seconds / scenarios),
                     strformat("%.2fx", speedup),
                     std::to_string(rec.segments_reloaded),
                     std::to_string(rec.segments_skipped),
                     std::to_string(rec.cliques_restored),
                     std::to_string(rec.messages_skipped)});
      std::cerr << "done: " << name << " threads=" << threads << " (speedup "
                << strformat("%.2f", speedup) << "x)\n";
    }
  }
  table.print(std::cout);
  std::cout << "\nThe batch column amortizes reload work at two levels: "
               "segments whose root CPTs are bitwise unchanged between "
               "consecutive scenarios keep their potentials and results "
               "(incremental reload), and inside a re-run segment only the "
               "dirty cliques' messages are re-sent — clean subtrees "
               "restore their collect messages from the snapshot "
               "(CliqRest/MsgSkip columns).\n";
  if (!json_path.empty()) write_json(json_path, records);
  return 0;
}
