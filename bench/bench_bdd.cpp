// Exact-OBDD vs LIDAG-BN comparison — the tradeoff the paper's
// background section describes: global-BDD estimation is exact ([10])
// but blows up in space, while the junction-tree BN stays exact on
// single-BN circuits and degrades gracefully through segmentation.
//
// For each circuit: exact-BDD feasibility (node budget), its time and
// peak node count, the BN's time and accuracy against the BDD result
// where the BDD completes (and against simulation where it does not).
#include <iostream>
#include <string>
#include <vector>

#include "bns.h"

using namespace bns;

int main(int argc, char** argv) {
  std::vector<std::string> circuits;
  for (int i = 1; i < argc; ++i) circuits.emplace_back(argv[i]);
  if (circuits.empty()) {
    circuits = {"c17", "comp", "count", "pcler8", "b9", "c432", "c499",
                "c880", "c1355", "c6288"};
  }

  std::cout << "Exact global-OBDD estimation vs LIDAG Bayesian network\n"
               "(BDD node budget 4M; '—' = space blow-up, the failure mode\n"
               "the paper cites for exact OBDD methods)\n\n";

  Table table({"Circuit", "Nodes", "BDD", "peakNodes", "t[BDD]",
               "mu[BN vs BDD]", "t[BN]"});
  for (const std::string& name : circuits) {
    const Netlist nl = make_benchmark(name);
    const InputModel m = InputModel::uniform(nl.num_inputs());

    const BddSwitchingResult bdd = estimate_bdd_exact(nl, m, 1u << 22);

    LidagEstimator est(nl, m);
    const SwitchingEstimate sw = est.estimate(m);
    const double bn_time =
        est.compile_stats().compile_seconds + sw.stats.propagate_seconds;

    std::string mu = "—";
    if (bdd.completed) {
      const ErrorStats err =
          compute_error_stats(sw.activities(), bdd.activities());
      mu = strformat("%.5f", err.mu_err);
    }
    table.add_row({name, std::to_string(nl.num_nodes()),
                   bdd.completed ? "exact" : "—",
                   std::to_string(bdd.peak_nodes),
                   strformat("%.3f", bdd.seconds), mu,
                   strformat("%.3f", bn_time)});
    std::cerr << "done: " << name << "\n";
  }
  table.print(std::cout);
  std::cout << "\nWhere the BDD completes, the single-BN circuits agree with "
               "it to machine precision and segmented circuits show only the "
               "boundary approximation; where it overflows, the BN still "
               "answers in seconds.\n";
  return 0;
}
