// Reproduces Table 1 of the paper: switching activity estimation by
// LIDAG Bayesian networks on the 14 ISCAS-85 + 5 MCNC-89 circuits under
// random input streams. Columns: mean and standard deviation of the
// node-wise error vs logic simulation, % error of the average activity,
// total elapsed time (compile + propagate) and the propagate-only
// "update" time. Extra diagnostic columns (nodes, number of segment
// BNs) are appended after the paper's columns.
//
// Usage: bench_table1 [--quick] [--csv] [--sim-pairs N] [circuit...]
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "gen/benchmarks.h"
// Table lives in obs/ so this bench, bench_table2, and the bns_report
// text renderer (obs::RunReport::render_text) share one formatting path.
#include "obs/table.h"
#include "util/strings.h"

using namespace bns;

int main(int argc, char** argv) {
  bool csv = false;
  std::uint64_t sim_pairs = 1 << 22;
  std::vector<std::string> circuits;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      csv = true;
    } else if (arg == "--quick") {
      sim_pairs = 1 << 19;
    } else if (arg == "--sim-pairs" && i + 1 < argc) {
      sim_pairs = std::stoull(argv[++i]);
    } else {
      circuits.push_back(arg);
    }
  }
  if (circuits.empty()) {
    for (const BenchmarkInfo& b : benchmark_suite()) circuits.push_back(b.name);
  }

  std::cout << "Table 1 — switching activity estimation by Bayesian network "
               "modeling\n(random input streams, ground truth = "
            << sim_pairs << " simulated vector pairs)\n\n";

  Table table({"Circuit", "muErr", "sigErr", "%Error", "Total(s)", "Update(s)",
               "Nodes", "Segs"});
  RunningStats mu_all;
  RunningStats time_all;
  for (const std::string& name : circuits) {
    const Netlist nl = make_benchmark(name);
    ExperimentConfig cfg;
    cfg.sim_pairs = sim_pairs;
    cfg.run_independence = false;
    cfg.run_density = false;
    cfg.run_correlation = false;
    const ExperimentResult r = run_experiment(nl, cfg);
    const MethodResult& bn = r.method("bn");
    mu_all.add(bn.err.mu_err);
    time_all.add(bn.seconds + bn.extra_seconds);
    table.add_row({name, strformat("%.4f", bn.err.mu_err),
                   strformat("%.4f", bn.err.sigma_err),
                   strformat("%.3f%%", bn.err.pct_err),
                   strformat("%.3f", bn.seconds + bn.extra_seconds),
                   strformat("%.4f", bn.seconds),
                   std::to_string(r.stats.num_nodes),
                   std::to_string(r.bn_segments)});
    std::cerr << "done: " << name << "\n";
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\naverage mean error = " << strformat("%.4f", mu_all.mean())
            << " (paper: 0.002), average total time = "
            << strformat("%.2fs", time_all.mean()) << " (paper: 3.93s on a "
            << "450 MHz Pentium II)\n";
  return 0;
}
