// Distributed-sweep study: what a pool of bns_serve daemons buys (and
// costs) over the single-process batch engine for one linear sweep.
//
// For each circuit: compile once and save a .bnsc artifact, run the
// reference sweep in-process (Session::sweep over the artifact), then
// for each requested pool size spin up that many in-process Servers on
// their own sockets and time the coordinator fanning the identical
// scenario range across them. Every leg asserts the merged records are
// string-for-string identical (scenario, %.17g p and average_activity)
// to the in-process reference — the distribution contract, not a
// tolerance check. Reports per-leg wall seconds, speedup over the
// in-process sweep, and the work-stealing/retry accounting.
//
// The daemons here share one machine, so this measures coordination
// overhead and scaling shape, not true cluster speedup: each daemon
// still pays an artifact load, and chunk boundaries forfeit some
// incremental-reload locality (bench_sweep measures what that reload
// is worth).
//
// Usage:
//   bench_coord [circuit...] [--scenarios N] [--daemons LIST]
//               [--chunk N] [--repeat N] [--json PATH]
//
// --daemons takes a comma-separated list of pool sizes (default 1,2,3)
// and emits one record per size. --repeat keeps the minimum wall time
// per leg.
#include <sys/types.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "coord/coord.h"
#include "obs/json.h"
#include "obs/report.h"
#include "serve/server.h"
#include "session/session.h"
#include "util/strings.h"
#include "util/timer.h"

using namespace bns;

namespace {

[[noreturn]] void usage_exit() {
  std::fprintf(stderr, "%s", R"(usage:
  bench_coord [circuit...] [options]
options:
  --scenarios N   scenarios per sweep (default 48)
  --daemons LIST  comma-separated daemon pool sizes (default 1,2,3)
  --chunk N       scenarios per chunk (default: coordinator auto)
  --repeat N      timed runs per leg; report the minimum (default 1)
  --json PATH     write machine-readable results (schema_version 1)
)");
  std::exit(2);
}

struct JsonRecord {
  std::string circuit;
  int scenarios = 0;
  int daemons = 0;
  int chunks = 0;
  int chunk_scenarios = 0;
  int repeat = 1;
  double inprocess_seconds = 0.0; // Session::sweep over the artifact (min)
  double coord_seconds = 0.0;     // coordinate_sweep wall (min)
  double speedup = 0.0;           // inprocess / coord
  int stolen = 0;                 // chunks completed off a peer's block
  int retries = 0;
};

void write_json(const std::string& path, const std::vector<JsonRecord>& recs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::cerr << "cannot open " << path << " for writing\n";
    std::exit(2);
  }
  const obs::ReportProvenance prov = obs::default_provenance();
  const auto escaped = [](const std::string& s) {
    std::string out;
    obs::json_append_string(out, s);
    return out;
  };
  std::fprintf(f, "{\n  \"schema_version\": 1,\n  \"provenance\": {\n");
  std::fprintf(f, "    \"git_describe\": %s,\n",
               escaped(prov.git_describe).c_str());
  std::fprintf(f, "    \"build_type\": %s,\n",
               escaped(prov.build_type).c_str());
  std::fprintf(f, "    \"timestamp\": %s,\n",
               escaped(prov.timestamp_iso8601).c_str());
  std::fprintf(f, "    \"hostname\": %s\n  },\n",
               escaped(prov.hostname).c_str());
  std::fprintf(f, "  \"records\": [\n");
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const JsonRecord& r = recs[i];
    std::fprintf(f,
                 "    {\"circuit\": %s, \"scenarios\": %d, \"daemons\": %d, "
                 "\"chunks\": %d, \"chunk_scenarios\": %d, \"repeat\": %d, "
                 "\"inprocess_seconds\": %s, \"coord_seconds\": %s, "
                 "\"speedup\": %s, \"stolen\": %d, \"retries\": %d}%s\n",
                 escaped(r.circuit).c_str(), r.scenarios, r.daemons, r.chunks,
                 r.chunk_scenarios, r.repeat,
                 obs::json_number(r.inprocess_seconds).c_str(),
                 obs::json_number(r.coord_seconds).c_str(),
                 obs::json_number(r.speedup).c_str(), r.stolen, r.retries,
                 i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

std::string scratch_path(const std::string& stem) {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = tmp && *tmp ? tmp : "/tmp";
  return dir + "/" + stem + "_" + std::to_string(::getpid());
}

// One running in-process daemon: Server on its own thread.
struct Daemon {
  explicit Daemon(std::string socket) {
    serve::ServerOptions opts;
    opts.socket_path = std::move(socket);
    server = std::make_unique<serve::Server>(opts);
    server->start();
    runner = std::thread([this] { server->run(); });
  }
  ~Daemon() {
    server->request_stop();
    runner.join();
  }
  std::unique_ptr<serve::Server> server;
  std::thread runner;
};

} // namespace

int main(int argc, char** argv) {
  std::vector<std::string> circuits;
  std::vector<int> pools;
  int scenarios = 48;
  int chunk = 0;
  int repeat = 1;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_exit();
      return argv[++i];
    };
    if (a == "--scenarios") {
      scenarios = std::atoi(next());
    } else if (a == "--daemons") {
      for (std::string_view part : split(next(), ',')) {
        const int n = std::atoi(std::string(part).c_str());
        if (n < 1) usage_exit();
        pools.push_back(n);
      }
    } else if (a == "--chunk") {
      chunk = std::atoi(next());
    } else if (a == "--repeat") {
      repeat = std::atoi(next());
    } else if (a == "--json") {
      json_path = next();
    } else if (!a.empty() && a[0] == '-') {
      usage_exit();
    } else {
      circuits.push_back(a);
    }
  }
  if (circuits.empty()) circuits = {"c432", "c1908"};
  if (pools.empty()) pools = {1, 2, 3};
  if (scenarios < 1 || repeat < 1 || chunk < 0) usage_exit();

  std::vector<JsonRecord> records;
  for (const std::string& circuit : circuits) {
    // Compile once; every daemon (and the reference) loads the artifact
    // — the deployment shape, and it keeps compile time out of the
    // timed legs.
    const std::string artifact =
        scratch_path("bench_coord_" + circuit) + ".bnsc";
    {
      Session compile = Session::open(circuit);
      compile.save(artifact);
    }

    LinearSweepSpec spec;
    spec.scenarios = scenarios;

    Session ref = Session::open_artifact(artifact);
    const std::vector<InputModel> models =
        make_linear_scenarios(spec, ref.netlist().num_inputs());
    double inprocess = 0.0;
    SweepResult want;
    for (int r = 0; r < repeat; ++r) {
      Timer t;
      want = ref.sweep(models);
      const double s = t.seconds();
      if (r == 0 || s < inprocess) inprocess = s;
    }

    std::printf("%s: %d scenarios, in-process %.3f s\n", circuit.c_str(),
                scenarios, inprocess);
    for (int pool : pools) {
      std::vector<std::unique_ptr<Daemon>> daemons;
      coord::CoordOptions copts;
      copts.model = artifact;
      copts.spec = spec;
      copts.chunk_scenarios = chunk;
      for (int d = 0; d < pool; ++d) {
        copts.sockets.push_back(scratch_path(
            "bench_coord_" + circuit + "_" + std::to_string(pool) + "_" +
            std::to_string(d) + ".sock"));
        daemons.push_back(std::make_unique<Daemon>(copts.sockets.back()));
      }

      coord::CoordSweepResult got;
      double wall = 0.0;
      for (int r = 0; r < repeat; ++r) {
        got = coord::coordinate_sweep(copts);
        if (r == 0 || got.wall_seconds < wall) wall = got.wall_seconds;
      }
      if (!got.ok() ||
          got.records.size() != static_cast<std::size_t>(scenarios)) {
        std::fprintf(stderr, "%s: coordinator failed (%zu failed chunks)\n",
                     circuit.c_str(), got.failed.size());
        return 1;
      }
      for (int s = 0; s < scenarios; ++s) {
        const bool same =
            got.records[static_cast<std::size_t>(s)].scenario == s &&
            obs::json_number(got.records[static_cast<std::size_t>(s)]
                                 .average_activity) ==
                obs::json_number(
                    want.estimates[static_cast<std::size_t>(s)]
                        .average_activity());
        if (!same) {
          std::fprintf(stderr,
                       "%s: MERGE MISMATCH at scenario %d (%d daemons)\n",
                       circuit.c_str(), s, pool);
          return 1;
        }
      }

      JsonRecord rec;
      rec.circuit = circuit;
      rec.scenarios = scenarios;
      rec.daemons = pool;
      rec.chunks = static_cast<int>(got.chunks.size());
      rec.chunk_scenarios = got.chunk_scenarios;
      rec.repeat = repeat;
      rec.inprocess_seconds = inprocess;
      rec.coord_seconds = wall;
      rec.speedup = wall > 0.0 ? inprocess / wall : 0.0;
      for (const coord::EndpointAccount& a : got.endpoints) {
        rec.stolen += a.chunks_stolen;
      }
      rec.retries = got.retries;
      records.push_back(rec);

      std::printf(
          "  %d daemon(s): %.3f s (speedup %.2fx), %d chunks of %d, "
          "%d stolen, %d retries\n",
          pool, wall, rec.speedup, rec.chunks, rec.chunk_scenarios,
          rec.stolen, rec.retries);
    }
    std::remove(artifact.c_str());
  }

  if (!json_path.empty()) write_json(json_path, records);
  return 0;
}
