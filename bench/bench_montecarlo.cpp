// The paper's Section 1 taxonomy: "estimation by simulation ... though
// time consuming, is extremely accurate" vs probabilistic techniques.
// This bench quantifies the trade on our suite: Monte-Carlo simulation
// with a per-line confidence-interval stopping rule (Burch–Najm [6])
// against the compiled-BN estimator, at matched accuracy targets.
#include <iostream>
#include <string>
#include <vector>

#include "bns.h"

using namespace bns;

int main(int argc, char** argv) {
  std::vector<std::string> circuits;
  for (int i = 1; i < argc; ++i) circuits.emplace_back(argv[i]);
  if (circuits.empty()) {
    circuits = {"c17", "comp", "count", "c432", "c499", "c1355", "c6288"};
  }

  std::cout << "Estimation-by-simulation vs probabilistic estimation\n"
               "(Monte Carlo stops when every line's 99% CI half-width <= "
               "0.005)\n\n";
  Table table({"Circuit", "MC pairs", "MC t(s)", "BN total(s)", "BN update(s)",
               "mu[BN vs MC]"});
  for (const std::string& name : circuits) {
    const Netlist nl = make_benchmark(name);
    const InputModel m = InputModel::uniform(nl.num_inputs());

    MonteCarloOptions mopts;
    mopts.abs_tol = 0.005;
    mopts.rel_tol = 0.0;
    const MonteCarloResult mc = estimate_monte_carlo(nl, m, mopts);

    LidagEstimator est(nl, m);
    const SwitchingEstimate sw = est.estimate(m);
    const ErrorStats err =
        compute_error_stats(sw.activities(), mc.activities());

    table.add_row({name, std::to_string(mc.pairs_used),
                   strformat("%.3f", mc.seconds),
                   strformat("%.3f", est.compile_stats().compile_seconds +
                                         sw.stats.propagate_seconds),
                   strformat("%.4f", sw.stats.propagate_seconds),
                   strformat("%.4f", err.mu_err)});
    std::cerr << "done: " << name << "\n";
  }
  table.print(std::cout);
  std::cout << "\nOnce compiled, the BN re-estimates under new input "
               "statistics in its update time, while Monte Carlo pays the "
               "full sampling cost again — the reuse argument of the "
               "paper's advantage #3.\n";
  return 0;
}
