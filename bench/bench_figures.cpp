// Reproduces the paper's worked example (Figures 1–4 and Eq. 7): the
// 5-gate circuit, its LIDAG Bayesian network, the factored joint, the
// moralized + triangulated undirected graph, and the junction tree of
// cliques with separators — then runs inference and prints the switching
// activity of every line.
#include <iostream>

#include "bn/junction_tree.h"
#include "gen/circuits.h"
#include "lidag/estimator.h"
#include "lidag/lidag.h"
#include "sim/simulator.h"
#include "util/strings.h"

using namespace bns;

int main() {
  const Netlist nl = figure1_circuit();
  const InputModel model = InputModel::uniform(nl.num_inputs());

  std::cout << "Figure 1 — the example combinational circuit\n";
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const Node& n = nl.node(id);
    std::cout << "  line " << n.name << " = " << gate_type_name(n.type) << "(";
    for (std::size_t i = 0; i < n.fanin.size(); ++i) {
      std::cout << (i ? ", " : "") << nl.node(n.fanin[i]).name;
    }
    std::cout << ")\n";
  }

  LidagBn lb = build_lidag(nl, model);
  std::vector<std::array<double, 4>> no_boundary(
      static_cast<std::size_t>(nl.num_nodes()));
  quantify_lidag(lb, model, no_boundary);

  std::cout << "\nFigure 2 — LIDAG Bayesian network (X_i = switching of line "
               "i; edges parent -> child)\n";
  for (VarId v = 0; v < lb.bn.num_variables(); ++v) {
    for (VarId p : lb.bn.parents(v)) {
      std::cout << "  X" << lb.bn.name(p) << " -> X" << lb.bn.name(v) << "\n";
    }
  }

  std::cout << "\nEq. 7 — factored joint distribution\n  P(x1..x9) = ";
  for (VarId v = lb.bn.num_variables() - 1; v >= 0; --v) {
    std::cout << "P(x" << lb.bn.name(v);
    const auto& ps = lb.bn.parents(v);
    if (!ps.empty()) {
      std::cout << " | ";
      for (std::size_t i = 0; i < ps.size(); ++i) {
        std::cout << (i ? "," : "") << "x" << lb.bn.name(ps[i]);
      }
    }
    std::cout << ") ";
  }
  std::cout << "\n";

  const UndirectedGraph moral = moral_graph(lb.bn);
  std::cout << "\nFigure 3 — moral graph edges (— original/married) and "
               "triangulation fill-ins\n";
  for (const auto& [a, b] : moral.edges()) {
    std::cout << "  X" << lb.bn.name(a) << " — X" << lb.bn.name(b) << "\n";
  }
  const Triangulation tri = triangulate(moral);
  for (const auto& [a, b] : tri.fill_edges) {
    std::cout << "  X" << lb.bn.name(a) << " -· X" << lb.bn.name(b)
              << "  (fill edge)\n";
  }

  std::cout << "\nFigure 4 — junction tree of cliques\n";
  const JunctionTree jt(tri);
  for (int c = 0; c < jt.num_cliques(); ++c) {
    std::cout << "  C" << c + 1 << " = {";
    const auto& clique = jt.clique(c);
    for (std::size_t i = 0; i < clique.size(); ++i) {
      std::cout << (i ? "," : "") << "X" << lb.bn.name(clique[i]);
    }
    std::cout << "}\n";
  }
  for (const auto& e : jt.edges()) {
    std::cout << "  C" << e.a + 1 << " — C" << e.b + 1 << "  separator {";
    for (std::size_t i = 0; i < e.separator.size(); ++i) {
      std::cout << (i ? "," : "") << "X" << lb.bn.name(e.separator[i]);
    }
    std::cout << "}\n";
  }
  const std::string rip = jt.check_running_intersection();
  std::cout << "  running intersection property: "
            << (rip.empty() ? "holds" : rip) << "\n";

  std::cout << "\nInference — switching activity P(x01) + P(x10) per line\n";
  LidagEstimator est(nl, model);
  const SwitchingEstimate sw = est.estimate(model);
  const auto exact = exact_activities(nl, model);
  std::cout << "  line   BN-estimate   exhaustive-exact\n";
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    std::cout << strformat("  %-5s  %.6f      %.6f\n",
                           nl.node(id).name.c_str(), sw.activity(id),
                           exact[static_cast<std::size_t>(id)]);
  }
  return 0;
}
