// bns_compile — compile a circuit once and serialize the compiled model
// (CPTs, triangulations, propagation schedules, segment metadata) as a
// versioned .bnsc artifact, or inspect an existing artifact's header.
//
//   bns_compile c1908 -o c1908.bnsc
//   bns_compile circuit.bench -o circuit.bnsc --threads 4 --verify
//   bns_compile --info c1908.bnsc
//
// The artifact is what bns_serve, bns_sweep and Session::open_artifact
// consume: loading it skips compilation entirely (parse, LIDAG build,
// triangulation, schedule construction) and restores the model in a
// small fraction of the compile time.
//
// Exit status: 0 ok, 1 --verify found a mismatch between the saved
// artifact and the in-process model, 2 usage or I/O failure.
#include <sys/stat.h>

#include <cstdio>
#include <string>

#include "obs/json.h"
#include "obs/report.h"
#include "session/session.h"
#include "util/cli.h"
#include "util/timer.h"

namespace bns {
namespace {

constexpr const char kUsage[] = R"(usage: bns_compile <circuit> -o FILE [options]
       bns_compile --info FILE
  <circuit>           path to .bench/.blif, or a built-in benchmark name
options:
  -o, --out FILE      artifact output path (conventionally .bnsc)
  --threads N         estimator worker threads (default: BNS_THREADS or 1)
  --verify            load the saved artifact back and require a
                      bitwise-identical estimate; exit 1 on mismatch
  --json              print the summary as JSON
  --info FILE         print an existing artifact's header and exit
  --version           print tool version and exit
)";

struct Options {
  std::string circuit;
  std::string out_path;
  std::string info_path;
  int threads = 0;
  bool verify = false;
  bool json = false;
};

std::int64_t file_size(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 ? st.st_size : -1;
}

int cmd_info(const Options& o) {
  const ArtifactInfo info = read_artifact_info(o.info_path);
  if (o.json) {
    std::string out = "{\n  \"schema_version\": " +
                      std::to_string(info.schema_version) + ",\n  \"circuit\": ";
    obs::json_append_string(out, info.circuit);
    out += ",\n  \"git_describe\": ";
    obs::json_append_string(out, info.git_describe);
    out += ",\n  \"build_type\": ";
    obs::json_append_string(out, info.build_type);
    out += ",\n  \"timestamp\": ";
    obs::json_append_string(out, info.timestamp_iso8601);
    out += ",\n  \"hostname\": ";
    obs::json_append_string(out, info.hostname);
    out += ",\n  \"nodes\": " + std::to_string(info.num_nodes);
    out += ",\n  \"inputs\": " + std::to_string(info.num_inputs);
    out += ",\n  \"segments\": " + std::to_string(info.num_segments);
    out += ",\n  \"compile_seconds\": " + obs::json_number(info.compile_seconds);
    out += ",\n  \"bytes\": " + std::to_string(file_size(o.info_path));
    out += "\n}\n";
    std::fputs(out.c_str(), stdout);
    return cli::kExitOk;
  }
  std::printf("%s (schema %d)\n", o.info_path.c_str(), info.schema_version);
  std::printf("  circuit          %s\n", info.circuit.c_str());
  std::printf("  nodes/inputs     %d / %d\n", info.num_nodes, info.num_inputs);
  std::printf("  segments         %d\n", info.num_segments);
  std::printf("  compile_seconds  %.6f\n", info.compile_seconds);
  std::printf("  built            %s on %s (%s, %s)\n",
              info.timestamp_iso8601.c_str(), info.hostname.c_str(),
              info.git_describe.c_str(), info.build_type.c_str());
  return cli::kExitOk;
}

int run(int argc, char** argv) {
  Options o;
  cli::ArgParser ap("bns_compile", kUsage);
  ap.version(obs::tool_version_line("bns_compile"));
  ap.value("-o", &o.out_path);
  ap.value("--out", &o.out_path);
  ap.value("--info", &o.info_path);
  ap.value("--threads", &o.threads);
  ap.flag("--verify", &o.verify);
  ap.flag("--json", &o.json);
  ap.positional([&o](std::string_view a) {
    if (!o.circuit.empty()) return false;
    o.circuit = std::string(a);
    return true;
  });
  ap.parse(argc, argv);

  if (!o.info_path.empty()) {
    if (!o.circuit.empty() || !o.out_path.empty()) ap.fail();
    return cmd_info(o);
  }
  if (o.circuit.empty() || o.out_path.empty()) ap.fail();

  SessionOptions sopts;
  sopts.estimator.num_threads = o.threads;
  Session session = Session::open(o.circuit, sopts);

  Timer save_timer;
  session.save(o.out_path);
  const double save_seconds = save_timer.seconds();

  bool verified = false;
  double load_seconds = 0.0;
  if (o.verify) {
    // The artifact contract is bitwise identity: a restored model must
    // answer exactly what the in-process compile answers.
    Session loaded = Session::open_artifact(o.out_path, sopts);
    load_seconds = loaded.load_seconds();
    const InputModel model =
        InputModel::uniform(session.netlist().num_inputs());
    const SwitchingEstimate want = session.estimate(model);
    const SwitchingEstimate got = loaded.estimate(model);
    if (want.dist != got.dist) {
      std::fprintf(stderr,
                   "bns_compile: VERIFY FAILED: %s answers differ bitwise "
                   "from the in-process model\n",
                   o.out_path.c_str());
      return cli::kExitFailure;
    }
    verified = true;
  }

  const CompileStats& cs = session.compile_stats();
  if (o.json) {
    std::string out = "{\n  \"circuit\": ";
    obs::json_append_string(out, o.circuit);
    out += ",\n  \"artifact\": ";
    obs::json_append_string(out, o.out_path);
    out += ",\n  \"bytes\": " + std::to_string(file_size(o.out_path));
    out += ",\n  \"nodes\": " + std::to_string(session.netlist().num_nodes());
    out += ",\n  \"segments\": " + std::to_string(cs.num_segments);
    out += ",\n  \"compile_seconds\": " + obs::json_number(cs.compile_seconds);
    out += ",\n  \"save_seconds\": " + obs::json_number(save_seconds);
    if (o.verify) {
      out += ",\n  \"load_seconds\": " + obs::json_number(load_seconds);
    }
    out += std::string(",\n  \"verified\": ") + (verified ? "true" : "false");
    out += "\n}\n";
    std::fputs(out.c_str(), stdout);
  } else {
    std::printf("%s: %d nodes, %d segment(s) -> %s (%lld bytes)\n",
                o.circuit.c_str(), session.netlist().num_nodes(),
                cs.num_segments, o.out_path.c_str(),
                static_cast<long long>(file_size(o.out_path)));
    std::printf("  compile %.4f s, save %.4f s\n", cs.compile_seconds,
                save_seconds);
    if (o.verify) {
      std::printf("  verify: ok (bitwise), load %.4f s\n", load_seconds);
    }
  }
  return cli::kExitOk;
}

} // namespace
} // namespace bns

int main(int argc, char** argv) {
  try {
    return bns::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return bns::cli::kExitUsage;
  }
}
