// bns_serve — long-lived switching-activity query daemon.
//
//   bns_serve --socket /tmp/bns.sock --threads 4
//   printf '{"op":"estimate","model":"c432.bnsc","p":0.3}\n' |
//     nc -U /tmp/bns.sock
//
// The daemon listens on a Unix-domain socket, answers JSON-lines
// requests (serve/protocol.h: ping / estimate / sweep / conditional /
// stats), and caches open sessions keyed by model path + mtime, so the
// expensive compile-or-load happens once per model, not per request.
// SIGTERM / SIGINT drain gracefully: in-flight requests finish and
// flush, then the daemon exits 0.
//
// Client mode, used by the tests and CI (no nc dependency):
//   bns_serve --socket PATH --request '{"op":"ping"}' [--wait SECONDS]
// sends one request line, prints the one response line, and exits 0
// when the response carries "ok":true, 1 when it does not. --wait
// retries the connect until the daemon is up.
//
// Exit status: daemon 0 on clean drain, 2 on startup failure; client 0
// ok-response, 1 error-response, 2 connect/usage failure.
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "serve/server.h"
#include "util/cli.h"

namespace bns {
namespace {

constexpr const char kUsage[] = R"(usage: bns_serve --socket PATH [options]
options:
  --socket PATH       Unix-domain socket to listen on (required)
  --threads N         concurrent request workers (default: BNS_THREADS or 1)
client mode:
  --request JSON      send one request line to --socket, print the
                      response; exit 0 when it carries "ok":true
  --wait SECONDS      retry the connect for up to SECONDS (default 0)
)";

// The server's wake pipe, published for the signal handlers. write(2)
// is async-signal-safe; everything else about the drain happens on the
// server's own threads.
std::atomic<int> g_notify_fd{-1};

void on_signal(int) {
  const int fd = g_notify_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char b = 's';
    [[maybe_unused]] ssize_t n = ::write(fd, &b, 1);
  }
}

int connect_with_wait(const std::string& path, double wait_seconds) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "bns_serve: socket path too long: %s\n", path.c_str());
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(wait_seconds);
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) break;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "bns_serve: cannot connect to %s: %s\n", path.c_str(),
               std::strerror(errno));
  return -1;
}

int run_client(const std::string& socket_path, const std::string& request,
               double wait_seconds) {
  const int fd = connect_with_wait(socket_path, wait_seconds);
  if (fd < 0) return cli::kExitUsage;

  const std::string line = request + "\n";
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::send(fd, line.data() + off, line.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "bns_serve: send failed: %s\n",
                   std::strerror(errno));
      ::close(fd);
      return cli::kExitUsage;
    }
    off += static_cast<std::size_t>(n);
  }

  std::string response;
  char chunk[4096];
  while (response.find('\n') == std::string::npos) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t nl = response.find('\n');
  if (nl == std::string::npos) {
    std::fprintf(stderr, "bns_serve: connection closed before a response\n");
    return cli::kExitUsage;
  }
  response.resize(nl);
  std::printf("%s\n", response.c_str());
  return response.compare(0, 10, "{\"ok\":true") == 0 ? cli::kExitOk
                                                      : cli::kExitFailure;
}

int run(int argc, char** argv) {
  std::string socket_path;
  std::string request;
  int threads = 0;
  double wait_seconds = 0.0;

  cli::ArgParser ap("bns_serve", kUsage);
  ap.value("--socket", &socket_path);
  ap.value("--threads", &threads);
  ap.value("--request", &request);
  ap.value("--wait", &wait_seconds);
  ap.parse(argc, argv);
  if (socket_path.empty() || threads < 0 || wait_seconds < 0.0) ap.fail();

  if (!request.empty()) return run_client(socket_path, request, wait_seconds);

  obs::Tracer tracer(obs::TraceLevel::Counters);
  serve::ServerOptions sopts;
  sopts.socket_path = socket_path;
  sopts.threads = threads;
  sopts.trace = &tracer;
  sopts.session.estimator.trace = &tracer;

  serve::Server server(sopts);
  server.start();
  g_notify_fd.store(server.notify_fd(), std::memory_order_relaxed);

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  std::printf("bns_serve: listening on %s (%d worker%s)\n",
              server.socket_path().c_str(), server.num_workers(),
              server.num_workers() == 1 ? "" : "s");
  std::fflush(stdout);

  server.run();
  g_notify_fd.store(-1, std::memory_order_relaxed);

  const obs::MetricsRegistry& m = tracer.metrics();
  std::fprintf(stderr,
               "bns_serve: drained (%llu connections, %llu requests, "
               "%llu errors, %llu artifact loads)\n",
               static_cast<unsigned long long>(
                   m.value(obs::Counter::ServeConnections)),
               static_cast<unsigned long long>(
                   m.value(obs::Counter::ServeRequests)),
               static_cast<unsigned long long>(
                   m.value(obs::Counter::ServeErrors)),
               static_cast<unsigned long long>(
                   m.value(obs::Counter::ArtifactLoads)));
  return cli::kExitOk;
}

} // namespace
} // namespace bns

int main(int argc, char** argv) {
  try {
    return bns::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return bns::cli::kExitUsage;
  }
}
