// bns_serve — long-lived switching-activity query daemon.
//
//   bns_serve --socket /tmp/bns.sock --threads 4
//   printf '{"op":"estimate","model":"c432.bnsc","p":0.3}\n' |
//     nc -U /tmp/bns.sock
//
// The daemon listens on a Unix-domain socket, answers JSON-lines
// requests (serve/protocol.h: ping / estimate / sweep / conditional /
// stats / metrics), and caches open sessions keyed by model path +
// mtime, so the expensive compile-or-load happens once per model, not
// per request. SIGTERM / SIGINT drain gracefully: in-flight requests
// finish and flush, then the daemon exits 0.
//
// Telemetry: per-op RED metrics and a flight recorder (the last N
// request summaries per worker) are always on — recording is
// allocation-free. SIGUSR1 dumps the recorder to --recorder-out (or
// stderr) without stopping the daemon; an abnormal drain (any request
// answered with an error) dumps it too, so a crashing client session
// leaves evidence behind. --trace-out raises telemetry to span level
// and streams JSON-lines spans, each carrying the request's trace id.
//
// Client mode, used by the tests and CI (no nc dependency):
//   bns_serve --socket PATH --request '{"op":"ping"}' [--wait SECONDS]
// sends one request line, prints the one response line, and exits 0
// when the response carries "ok":true, 1 when it does not. --wait
// retries the connect until the daemon is up. --metrics is a scrape
// shorthand: it prints the metrics JSON document alone (with --text,
// the Prometheus rendering instead).
//
// Exit status: daemon 0 on clean drain, 2 on startup failure; client 0
// ok-response, 1 error-response, 2 connect/usage failure.
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "obs/json.h"
#include "obs/report.h"
#include "obs/sinks.h"
#include "serve/server.h"
#include "util/cli.h"

namespace bns {
namespace {

constexpr const char kUsage[] = R"(usage: bns_serve --socket PATH [options]
options:
  --socket PATH       Unix-domain socket to listen on (required)
  --threads N         concurrent request workers (default: BNS_THREADS or 1)
  --recorder-out FILE flight-recorder dump target (JSON lines), written on
                      SIGUSR1 and on a drain that saw request errors
                      (default: stderr)
  --trace-out FILE    stream spans as JSON lines (raises telemetry from
                      counters to spans; each span carries its trace id)
  --cache-max N       max cached sessions, LRU-evicted beyond (0 = unbounded)
  --version           print tool version and exit
client mode:
  --request JSON      send one request line to --socket, print the
                      response; exit 0 when it carries "ok":true
  --metrics           scrape {"op":"metrics"} and print the metrics JSON
                      document (with --text: the Prometheus rendering)
  --text              with --metrics, print Prometheus text exposition
  --wait SECONDS      retry the connect for up to SECONDS (default 0)
)";

// The server's wake pipe, published for the signal handlers. write(2)
// is async-signal-safe; everything else about the drain (or the
// recorder dump) happens on the server's own threads.
std::atomic<int> g_notify_fd{-1};

void on_signal(int) {
  const int fd = g_notify_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char b = 's';
    [[maybe_unused]] ssize_t n = ::write(fd, &b, 1);
  }
}

void on_sigusr1(int) {
  const int fd = g_notify_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char b = 'u';
    [[maybe_unused]] ssize_t n = ::write(fd, &b, 1);
  }
}

int connect_with_wait(const std::string& path, double wait_seconds) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "bns_serve: socket path too long: %s\n", path.c_str());
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(wait_seconds);
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) break;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "bns_serve: cannot connect to %s: %s\n", path.c_str(),
               std::strerror(errno));
  return -1;
}

// One request line in, one response line out (no trailing newline);
// nullopt on connect/send failure or a connection closed mid-response.
std::optional<std::string> roundtrip(const std::string& socket_path,
                                     const std::string& request,
                                     double wait_seconds) {
  const int fd = connect_with_wait(socket_path, wait_seconds);
  if (fd < 0) return std::nullopt;

  const std::string line = request + "\n";
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::send(fd, line.data() + off, line.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "bns_serve: send failed: %s\n",
                   std::strerror(errno));
      ::close(fd);
      return std::nullopt;
    }
    off += static_cast<std::size_t>(n);
  }

  std::string response;
  char chunk[4096];
  while (response.find('\n') == std::string::npos) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t nl = response.find('\n');
  if (nl == std::string::npos) {
    std::fprintf(stderr, "bns_serve: connection closed before a response\n");
    return std::nullopt;
  }
  response.resize(nl);
  return response;
}

int run_client(const std::string& socket_path, const std::string& request,
               double wait_seconds) {
  const std::optional<std::string> response =
      roundtrip(socket_path, request, wait_seconds);
  if (!response) return cli::kExitUsage;
  std::printf("%s\n", response->c_str());
  return response->compare(0, 10, "{\"ok\":true") == 0 ? cli::kExitOk
                                                       : cli::kExitFailure;
}

int run_metrics_client(const std::string& socket_path, double wait_seconds,
                       bool text) {
  const std::optional<std::string> response =
      roundtrip(socket_path, "{\"op\":\"metrics\"}", wait_seconds);
  if (!response) return cli::kExitUsage;
  const std::optional<obs::JsonValue> doc = obs::json_parse(*response);
  const obs::JsonValue* okv = doc ? doc->find("ok") : nullptr;
  if (!doc || !doc->is_object() || !okv || !okv->is_bool() ||
      !okv->as_bool()) {
    std::fprintf(stderr, "bns_serve: metrics scrape failed: %s\n",
                 response->c_str());
    return cli::kExitFailure;
  }
  if (text) {
    const obs::JsonValue* prom = doc->find("prometheus");
    if (!prom || !prom->is_string()) {
      std::fprintf(stderr, "bns_serve: response has no prometheus text\n");
      return cli::kExitFailure;
    }
    std::fputs(prom->as_string().c_str(), stdout);
    return cli::kExitOk;
  }
  // The metrics document is embedded verbatim with a fixed key order
  // (serve/protocol.cpp), so slicing between its key and the following
  // "prometheus" key recovers exactly the JSON the daemon rendered.
  const std::size_t begin = response->find("\"metrics\":");
  const std::size_t end = response->rfind(",\"prometheus\":");
  if (begin == std::string::npos || end == std::string::npos || end <= begin) {
    std::fprintf(stderr, "bns_serve: malformed metrics response\n");
    return cli::kExitFailure;
  }
  const std::size_t start = begin + std::strlen("\"metrics\":");
  std::printf("%s\n", response->substr(start, end - start).c_str());
  return cli::kExitOk;
}

// Truncating dump: the recorder keeps the *last* N requests, so each
// dump replaces the previous window rather than growing a log.
void dump_recorder(const obs::FlightRecorder& recorder,
                   const std::string& path) {
  if (path.empty()) {
    std::ostringstream os;
    recorder.dump_jsonl(os);
    std::fputs(os.str().c_str(), stderr);
    return;
  }
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    std::fprintf(stderr, "bns_serve: cannot write recorder dump to %s\n",
                 path.c_str());
    return;
  }
  recorder.dump_jsonl(os);
}

int run(int argc, char** argv) {
  std::string socket_path;
  std::string request;
  std::string recorder_out;
  std::string trace_out;
  int threads = 0;
  int cache_max = 0;
  double wait_seconds = 0.0;
  bool metrics_mode = false;
  bool metrics_text = false;

  cli::ArgParser ap("bns_serve", kUsage);
  ap.version(obs::tool_version_line("bns_serve"));
  ap.value("--socket", &socket_path);
  ap.value("--threads", &threads);
  ap.value("--request", &request);
  ap.value("--recorder-out", &recorder_out);
  ap.value("--trace-out", &trace_out);
  ap.value("--cache-max", &cache_max);
  ap.value("--wait", &wait_seconds);
  ap.flag("--metrics", &metrics_mode);
  ap.flag("--text", &metrics_text);
  ap.parse(argc, argv);
  if (socket_path.empty() || threads < 0 || cache_max < 0 ||
      wait_seconds < 0.0)
    ap.fail();
  if (metrics_text && !metrics_mode) ap.fail();
  if (metrics_mode && !request.empty()) ap.fail();

  if (metrics_mode)
    return run_metrics_client(socket_path, wait_seconds, metrics_text);
  if (!request.empty()) return run_client(socket_path, request, wait_seconds);

  obs::Tracer tracer(trace_out.empty() ? obs::TraceLevel::Counters
                                       : obs::TraceLevel::Spans);
  std::ofstream trace_stream;
  std::optional<obs::JsonLinesSink> trace_sink;
  if (!trace_out.empty()) {
    trace_stream.open(trace_out, std::ios::trunc);
    if (!trace_stream) {
      std::fprintf(stderr, "bns_serve: cannot open --trace-out %s\n",
                   trace_out.c_str());
      return cli::kExitUsage;
    }
    trace_sink.emplace(trace_stream);
    tracer.add_sink(&*trace_sink);
  }

  obs::ServeMetrics red;
  obs::FlightRecorder recorder;

  serve::ServerOptions sopts;
  sopts.socket_path = socket_path;
  sopts.threads = threads;
  sopts.trace = &tracer;
  sopts.session.estimator.trace = &tracer;
  sopts.telemetry.red = &red;
  sopts.telemetry.recorder = &recorder;
  sopts.cache_max_entries = cache_max;
  sopts.on_dump = [&recorder, &recorder_out] {
    dump_recorder(recorder, recorder_out);
    std::fprintf(stderr, "bns_serve: recorder dumped (%llu requests seen)\n",
                 static_cast<unsigned long long>(recorder.total_recorded()));
  };

  serve::Server server(sopts);
  server.start();
  g_notify_fd.store(server.notify_fd(), std::memory_order_relaxed);

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  struct sigaction su{};
  su.sa_handler = on_sigusr1;
  ::sigaction(SIGUSR1, &su, nullptr);

  std::printf("bns_serve: listening on %s (%d worker%s)\n",
              server.socket_path().c_str(), server.num_workers(),
              server.num_workers() == 1 ? "" : "s");
  std::fflush(stdout);

  server.run();
  g_notify_fd.store(-1, std::memory_order_relaxed);

  const obs::MetricsRegistry& m = tracer.metrics();
  const std::uint64_t errors = m.value(obs::Counter::ServeErrors);
  std::fprintf(stderr,
               "bns_serve: drained (%llu connections, %llu requests, "
               "%llu errors, %llu artifact loads)\n",
               static_cast<unsigned long long>(
                   m.value(obs::Counter::ServeConnections)),
               static_cast<unsigned long long>(
                   m.value(obs::Counter::ServeRequests)),
               static_cast<unsigned long long>(errors),
               static_cast<unsigned long long>(
                   m.value(obs::Counter::ArtifactLoads)));
  // Abnormal drain: any request error leaves the last-N window behind
  // for diagnosis, same path as SIGUSR1.
  if (errors > 0) dump_recorder(recorder, recorder_out);
  if (trace_sink) tracer.flush();
  return cli::kExitOk;
}

} // namespace
} // namespace bns

int main(int argc, char** argv) {
  try {
    return bns::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return bns::cli::kExitUsage;
  }
}
