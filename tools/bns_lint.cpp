// bns_lint — static model checking for netlists and their compiled
// LIDAG Bayesian networks, without running any inference.
//
//   bns_lint circuit.bench            source + structural netlist lint
//   bns_lint circuit.blif --json      same, machine-readable report
//   bns_lint c432 --level full        built-in benchmark, full pipeline
//
// Pipeline (stops early when a stage reports errors):
//   1. source lint      permissive .bench/.blif scan: syntax, undriven /
//                       multiply-driven / floating nets, combinational
//                       loops, unreachable gates (NL001-NL012)
//   2. structural lint  checks on the built netlist (arity, LUT tables)
//   3. model lint       [--level fast+] LIDAG BN invariants (BN001-BN008)
//   4. compile lint     [--level full+] junction-tree invariants
//                       (JT001-JT005)
//   5. schedule lint    [--level schedule / --schedule] static analysis
//                       of the compiled propagation plans: race freedom,
//                       reload coverage, frontier soundness, numerical
//                       risk (SC001-SC009)
//
// Exit status: 0 clean (or warnings without --werror), 1 error-severity
// findings, 2 usage or I/O failure.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>

#include "bns.h"
#include "session/session.h"
#include "util/cli.h"

namespace bns {
namespace {

struct Options {
  std::string circuit;
  VerifyLevel level = VerifyLevel::Fast;
  bool json = false;
  bool werror = false;
  bool list_codes = false;
  // Comma-separated diagnostic-code prefixes; when non-empty, only
  // matching codes are reported and counted toward the exit status.
  std::vector<std::string> select;
  // Test hooks: deliberately corrupt the model / the compiled structure
  // so the downstream checkers (and their exit-status contract) can be
  // exercised end-to-end from fixture circuits that are themselves clean.
  bool inject_bad_cpt = false;
  bool inject_broken_rip = false;
  // Schedule-analyzer defect hooks (one SC code each); empty = none.
  std::string inject_schedule;
};

bool is_schedule_inject(const std::string& kind) {
  return kind == "unit-overlap" || kind == "unit-edge-clash" ||
         kind == "root-order" || kind == "oob-stride" ||
         kind == "load-mismatch" || kind == "reload-gap" ||
         kind == "screen-gap" || kind == "underflow" ||
         kind == "frontier-gap";
}

constexpr const char kUsage[] = R"(usage: bns_lint <circuit> [options]
  <circuit>           path to .bench/.blif, or a built-in benchmark name
options:
  --level off|fast|full|schedule
                          checking depth (default fast; full compiles the
                          LIDAG junction trees and lints them too;
                          schedule additionally analyzes the compiled
                          propagation plans: SC001-SC009)
  --schedule              shorthand for --level schedule
  --json                  machine-readable report on stdout
  --werror                treat warnings as errors for the exit status
  --select PREFIXES       only report codes matching the comma-separated
                          prefixes (e.g. SC or NL003,JT); the exit
                          status counts the selection only
  --list-codes            print the diagnostic-code table and exit
                          (with --json: machine-readable, incl. summaries)
test hooks (documented for the test suite; not for production use):
  --inject bad-cpt        corrupt one gate CPT before model lint
  --inject broken-rip     lint a junction structure violating the
                          running intersection property
  --inject unit-overlap   two subtree units writing one clique     (SC001)
  --inject unit-edge-clash  unit parking its message in the wrong
                          edge buffer                              (SC002)
  --inject root-order     broken root application sequence         (SC003)
  --inject oob-stride     out-of-bounds message stride program     (SC004)
  --inject load-mismatch  stale CPT load-plan size guard           (SC005)
  --inject reload-gap     CPT loaded outside its cpt_home clique   (SC006)
  --inject screen-gap     dirty pre-screen missing a trigger       (SC007)
  --inject underflow      schedule whose min-exponent bound breaches
                          the underflow threshold                  (SC008)
  --inject frontier-gap   sweep order listing a clique before its
                          parent, so the dirty-frontier fold loses
                          a recompute obligation                   (SC009)
  --version           print tool version and exit
)";

Options parse(int argc, char** argv) {
  Options o;
  bool schedule = false;
  cli::ArgParser ap("bns_lint", kUsage);
  ap.version(obs::tool_version_line("bns_lint"));
  ap.custom("--level", [&o](std::string_view level) {
    if (level == "off") {
      o.level = VerifyLevel::Off;
    } else if (level == "fast") {
      o.level = VerifyLevel::Fast;
    } else if (level == "full") {
      o.level = VerifyLevel::Full;
    } else if (level == "schedule") {
      o.level = VerifyLevel::Schedule;
    } else {
      return false;
    }
    return true;
  });
  ap.flag("--schedule", &schedule);
  ap.flag("--json", &o.json);
  ap.flag("--werror", &o.werror);
  ap.custom("--select", [&o](std::string_view arg) {
    std::size_t start = 0;
    while (start <= arg.size()) {
      const std::size_t comma = std::min(arg.find(',', start), arg.size());
      if (comma > start) {
        o.select.emplace_back(arg.substr(start, comma - start));
      }
      if (comma == arg.size()) break;
      start = comma + 1;
    }
    return !o.select.empty();
  });
  ap.flag("--list-codes", &o.list_codes);
  ap.custom("--inject", [&o](std::string_view v) {
    const std::string kind(v);
    if (kind == "bad-cpt") {
      o.inject_bad_cpt = true;
    } else if (kind == "broken-rip") {
      o.inject_broken_rip = true;
    } else if (is_schedule_inject(kind)) {
      o.inject_schedule = kind;
    } else {
      return false;
    }
    return true;
  });
  ap.positional([&o](std::string_view a) {
    if (!o.circuit.empty()) return false;
    o.circuit = std::string(a);
    return true;
  });
  ap.parse(argc, argv);
  if (schedule) o.level = VerifyLevel::Schedule;
  if (o.circuit.empty() && !o.list_codes) ap.fail();
  return o;
}

int cmd_list_codes(bool json) {
  if (json) {
    std::string out = "{\n  \"codes\": [";
    bool first = true;
    for (DiagCode c : all_diag_codes()) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    {\"code\": ";
      obs::json_append_string(out, diag_code_name(c));
      out += ", \"default\": ";
      obs::json_append_string(out, severity_name(diag_default_severity(c)));
      out += ", \"summary\": ";
      obs::json_append_string(out, diag_code_summary(c));
      out += '}';
    }
    out += "\n  ]\n}\n";
    std::fputs(out.c_str(), stdout);
    return 0;
  }
  std::printf("%-7s %-8s %s\n", "code", "default", "meaning");
  for (DiagCode c : all_diag_codes()) {
    std::printf("%-7.*s %-8.*s %.*s\n",
                static_cast<int>(diag_code_name(c).size()),
                diag_code_name(c).data(),
                static_cast<int>(severity_name(diag_default_severity(c)).size()),
                severity_name(diag_default_severity(c)).data(),
                static_cast<int>(diag_code_summary(c).size()),
                diag_code_summary(c).data());
  }
  return 0;
}

// Source-level lint and the estimator's built-netlist lint overlap for
// file inputs (e.g. a floating net is visible to both); keep the first
// occurrence of each (code, message) pair.
void merge_deduped(DiagnosticReport& into, const DiagnosticReport& from) {
  for (const Diagnostic& d : from.diagnostics()) {
    bool dup = false;
    for (const Diagnostic& e : into.diagnostics()) {
      dup |= e.code == d.code && e.message == d.message;
    }
    if (!dup) into.add(d.code, d.severity, d.location, d.message);
  }
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Corrupts the first deterministic gate CPT it finds (scales one entry),
// so model lint must flag BN003/BN004 through the regular pipeline.
void inject_bad_cpt(BayesianNetwork& bn) {
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    if (bn.parents(v).empty() || !bn.has_cpt(v)) continue;
    Factor f = bn.cpt(v);
    f.set_value(0, f.value(0) + 0.5);
    bn.set_cpt(v, bn.parents(v), std::move(f));
    return;
  }
  throw std::runtime_error("--inject bad-cpt: circuit has no gate CPT");
}

// A three-variable chain A -> B -> C whose root prior carries an
// entry of ~2^-1030: the schedule analyzer's min-exponent dataflow must
// bound the component past the underflow threshold and emit SC008.
void lint_injected_underflow(DiagnosticReport& report) {
  BayesianNetwork bn;
  const VarId a = bn.add_variable("A", 2);
  const VarId b = bn.add_variable("B", 2);
  const VarId c = bn.add_variable("C", 2);
  const double tiny = 1e-310; // subnormal: frexp exponent ~ -1029
  Factor prior({a}, {2});
  prior.set_value(0, tiny);
  prior.set_value(1, 1.0 - tiny);
  bn.set_cpt(a, {}, std::move(prior));
  const auto identity = [](VarId parent, VarId child) {
    Factor f({parent, child}, {2, 2});
    f.set_value(0, 1.0); // child 0 | parent 0
    f.set_value(3, 1.0); // child 1 | parent 1
    return f;
  };
  bn.set_cpt(b, {a}, identity(a, b));
  bn.set_cpt(c, {b}, identity(b, c));
  JunctionTreeEngine eng(bn);
  eng.prepare();
  lint_schedule(eng.compiled_view(), report);
}

// Corrupts a copy of the circuit's freshly compiled schedule (or screen
// model) so exactly the targeted SC check has a demonstrable defect to
// find; the raw lint functions then run over the corrupted structures.
void lint_injected_schedule_defect(const Netlist& nl, const std::string& kind,
                                   DiagnosticReport& report) {
  if (kind == "underflow") {
    lint_injected_underflow(report);
    return;
  }
  const InputModel model = InputModel::uniform(nl.num_inputs(), 0.5, 0.0);
  if (kind == "screen-gap") {
    Session session = Session::open(Netlist(nl), model);
    SegmentScreenModel screen = session.estimator().screen_model();
    // A boundary link whose owner does not run strictly before the
    // reader, and a primary-input trigger past the tracked flags.
    screen.links.push_back(ScreenLink{0, 0});
    screen.roots.push_back(
        ScreenRoot{0, ScreenTriggerKind::Spec, screen.num_specs});
    lint_dirty_screen(screen, report);
    return;
  }

  LidagBn lb = build_lidag(nl, model);
  JunctionTreeEngine eng(lb.bn);
  eng.prepare();
  const CompiledEngineView view = eng.compiled_view();
  const JunctionTree& tree = *view.tree;
  PropagationSchedule sched = *view.schedule;
  std::vector<int> cpt_home(view.cpt_home.begin(), view.cpt_home.end());
  std::vector<int> preorder(tree.preorder());

  if (kind == "unit-overlap") {
    // A second unit claiming the first unit's cliques: a write overlap
    // between subtree units over every clique table they share.
    if (sched.units.empty()) {
      throw std::runtime_error("--inject unit-overlap: schedule has no units");
    }
    sched.units.push_back(sched.units.front());
  } else if (kind == "unit-edge-clash") {
    if (sched.units.empty() || tree.edges().size() < 2) {
      throw std::runtime_error(
          "--inject unit-edge-clash: circuit too small to corrupt");
    }
    SubtreeUnit& u = sched.units.front();
    u.edge = (u.edge + 1) % static_cast<int>(tree.edges().size());
  } else if (kind == "root-order") {
    bool corrupted = false;
    for (auto& seq : sched.root_units) {
      if (!seq.empty()) {
        seq.clear(); // drops the root's whole application sequence
        corrupted = true;
        break;
      }
    }
    if (!corrupted) {
      throw std::runtime_error("--inject root-order: no root has units");
    }
  } else if (kind == "oob-stride") {
    if (sched.edges.empty()) {
      throw std::runtime_error("--inject oob-stride: schedule has no edges");
    }
    MessagePlan& plan = sched.edges.front();
    if (!plan.from_a.strides.empty()) {
      plan.from_a.strides.front() += plan.ratio.size();
    }
    plan.ratio.pop_back(); // undersized separator workspace
  } else if (kind == "load-mismatch") {
    bool corrupted = false;
    for (auto& loads : sched.loads) {
      if (!loads.empty()) {
        loads.front().cpt_size += 1;
        corrupted = true;
        break;
      }
    }
    if (!corrupted) {
      throw std::runtime_error("--inject load-mismatch: schedule has no loads");
    }
  } else if (kind == "reload-gap") {
    // Moves one CPT load into a foreign clique without updating
    // cpt_home: reload_incremental would dirty the home clique while
    // the foreign one is memcpy-restored stale.
    if (tree.num_cliques() < 2) {
      throw std::runtime_error("--inject reload-gap: need two cliques");
    }
    bool corrupted = false;
    for (std::size_t c = 0; c < sched.loads.size() && !corrupted; ++c) {
      if (sched.loads[c].empty()) continue;
      const std::size_t other = c == 0 ? 1 : 0;
      sched.loads[other].push_back(sched.loads[c].back());
      sched.loads[c].pop_back();
      corrupted = true;
    }
    if (!corrupted) {
      throw std::runtime_error("--inject reload-gap: schedule has no loads");
    }
  } else if (kind == "frontier-gap") {
    // Swaps one non-root clique ahead of its tree parent in the sweep
    // order: the reverse-preorder dirt fold then visits the parent
    // before inheriting the child's dirt, so a dirty subtree's restored
    // collect message would silently go stale.
    bool corrupted = false;
    for (std::size_t i = 0; i < preorder.size() && !corrupted; ++i) {
      const int p = tree.parent(preorder[i]);
      if (p < 0) continue;
      for (std::size_t j = 0; j < i; ++j) {
        if (preorder[j] == p) {
          std::swap(preorder[i], preorder[j]);
          corrupted = true;
          break;
        }
      }
    }
    if (!corrupted) {
      throw std::runtime_error("--inject frontier-gap: tree has no edges");
    }
  }

  lint_schedule_races(tree, sched, report);
  lint_stride_bounds(lb.bn, tree, sched, report);
  lint_load_plans(lb.bn, tree, sched, report);
  lint_reload_coverage(lb.bn, tree, sched, cpt_home, view.snapshot_offsets,
                       report);
  lint_frontier_coverage(lb.bn, tree, sched, preorder, view.component_root,
                         view.message_snapshot_offsets, report);
  lint_numerical_risk(lb.bn, tree, sched, report);
}

// A three-clique cycle over a triangle: whatever spanning tree the
// junction-tree builder picks, one variable's cliques end up
// disconnected, so the RIP lint must flag JT002.
void lint_injected_broken_rip(DiagnosticReport& report) {
  Triangulation t;
  t.graph = UndirectedGraph(3);
  t.graph.add_edge(0, 1);
  t.graph.add_edge(1, 2);
  t.graph.add_edge(0, 2);
  t.elimination_order = {0, 1, 2};
  t.cliques = {{0, 1}, {1, 2}, {0, 2}};
  const JunctionTree jt(t);
  lint_junction_structure(3, jt.cliques(), jt.edges(), report);
}

int run(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (o.list_codes) return cmd_list_codes(o.json);

  DiagnosticReport report;
  const bool from_file =
      ends_with(o.circuit, ".bench") || ends_with(o.circuit, ".blif");

  // Stage 1: source-level lint (files only; built-ins are constructed
  // programmatically and have no source to scan).
  if (from_file && o.level != VerifyLevel::Off) {
    report.merge(lint_netlist_file(o.circuit));
  }

  // Stages 2-4 need a built netlist, which the strict readers can only
  // produce when the source is loadable at all.
  if (!report.has_errors() && o.level != VerifyLevel::Off) {
    const Netlist nl = from_file
                           ? (ends_with(o.circuit, ".bench")
                                  ? read_bench_file(o.circuit)
                                  : read_blif_file(o.circuit))
                           : make_benchmark(o.circuit);
    if (!from_file) lint_netlist(nl, report);

    if (o.inject_bad_cpt) {
      const InputModel model = InputModel::uniform(nl.num_inputs(), 0.5, 0.0);
      LidagBn lb = build_lidag(nl, model);
      inject_bad_cpt(lb.bn);
      std::vector<bool> is_root(
          static_cast<std::size_t>(lb.bn.num_variables()), false);
      std::vector<VarId> det_vars, root_vars;
      for (const LidagRoot& r : lb.roots) {
        root_vars.push_back(r.var);
        is_root[static_cast<std::size_t>(r.var)] = true;
      }
      for (const LidagRoot& r : lb.grouped_inputs) {
        is_root[static_cast<std::size_t>(r.var)] = true;
      }
      for (VarId v = 0; v < lb.bn.num_variables(); ++v) {
        if (!is_root[static_cast<std::size_t>(v)]) det_vars.push_back(v);
      }
      ModelLintOptions mopts;
      mopts.deterministic_vars = det_vars;
      lint_bayes_net(lb.bn, report, mopts);
      lint_lidag_structure(nl, lb.bn, lb.var_of_node, root_vars, report);
    } else if (o.level >= VerifyLevel::Fast && !o.inject_broken_rip &&
               o.inject_schedule.empty()) {
      const InputModel model = InputModel::uniform(nl.num_inputs(), 0.5, 0.0);
      Session session = Session::open(Netlist(nl), model);
      merge_deduped(report, session.verify(o.level));
    }
    if (o.inject_broken_rip) lint_injected_broken_rip(report);
    if (!o.inject_schedule.empty()) {
      lint_injected_schedule_defect(nl, o.inject_schedule, report);
    }
  }

  if (!o.select.empty()) {
    DiagnosticReport selected;
    for (const Diagnostic& d : report.diagnostics()) {
      const std::string_view name = diag_code_name(d.code);
      for (const std::string& prefix : o.select) {
        if (name.substr(0, prefix.size()) == prefix) {
          selected.add(d.code, d.severity, d.location, d.message);
          break;
        }
      }
    }
    report = std::move(selected);
  }

  if (o.json) {
    std::cout << report.render_json("bns_lint", o.circuit);
  } else {
    std::cout << report.render_text();
    std::printf("%s: %d error(s), %d warning(s), %zu finding(s)\n",
                o.circuit.c_str(), report.num_errors(), report.num_warnings(),
                report.size());
  }
  const bool fail =
      report.has_errors() || (o.werror && report.num_warnings() > 0);
  return fail ? cli::kExitFailure : cli::kExitOk;
}

} // namespace
} // namespace bns

int main(int argc, char** argv) {
  try {
    return bns::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return bns::cli::kExitUsage;
  }
}
