// bns_lint — static model checking for netlists and their compiled
// LIDAG Bayesian networks, without running any inference.
//
//   bns_lint circuit.bench            source + structural netlist lint
//   bns_lint circuit.blif --json      same, machine-readable report
//   bns_lint c432 --level full        built-in benchmark, full pipeline
//
// Pipeline (stops early when a stage reports errors):
//   1. source lint      permissive .bench/.blif scan: syntax, undriven /
//                       multiply-driven / floating nets, combinational
//                       loops, unreachable gates (NL001-NL012)
//   2. structural lint  checks on the built netlist (arity, LUT tables)
//   3. model lint       [--level fast+] LIDAG BN invariants (BN001-BN008)
//   4. compile lint     [--level full] junction-tree invariants
//                       (JT001-JT005)
//
// Exit status: 0 clean (or warnings without --werror), 1 error-severity
// findings, 2 usage or I/O failure.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "bns.h"

namespace bns {
namespace {

struct Options {
  std::string circuit;
  VerifyLevel level = VerifyLevel::Fast;
  bool json = false;
  bool werror = false;
  bool list_codes = false;
  // Test hooks: deliberately corrupt the model / the compiled structure
  // so the downstream checkers (and their exit-status contract) can be
  // exercised end-to-end from fixture circuits that are themselves clean.
  bool inject_bad_cpt = false;
  bool inject_broken_rip = false;
};

[[noreturn]] void usage() {
  std::fprintf(stderr, "%s", R"(usage: bns_lint <circuit> [options]
  <circuit>           path to .bench/.blif, or a built-in benchmark name
options:
  --level off|fast|full   checking depth (default fast; full compiles the
                          LIDAG junction trees and lints them too)
  --json                  machine-readable report on stdout
  --werror                treat warnings as errors for the exit status
  --list-codes            print the diagnostic-code table and exit
test hooks (documented for the test suite; not for production use):
  --inject bad-cpt        corrupt one gate CPT before model lint
  --inject broken-rip     lint a junction structure violating the
                          running intersection property
)");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--level") {
      const std::string level = next();
      if (level == "off") {
        o.level = VerifyLevel::Off;
      } else if (level == "fast") {
        o.level = VerifyLevel::Fast;
      } else if (level == "full") {
        o.level = VerifyLevel::Full;
      } else {
        usage();
      }
    } else if (a == "--json") {
      o.json = true;
    } else if (a == "--werror") {
      o.werror = true;
    } else if (a == "--list-codes") {
      o.list_codes = true;
    } else if (a == "--inject") {
      const std::string kind = next();
      if (kind == "bad-cpt") {
        o.inject_bad_cpt = true;
      } else if (kind == "broken-rip") {
        o.inject_broken_rip = true;
      } else {
        usage();
      }
    } else if (!a.empty() && a[0] == '-') {
      usage();
    } else if (o.circuit.empty()) {
      o.circuit = a;
    } else {
      usage();
    }
  }
  if (o.circuit.empty() && !o.list_codes) usage();
  return o;
}

int cmd_list_codes() {
  std::printf("%-7s %-8s %s\n", "code", "default", "meaning");
  for (DiagCode c : all_diag_codes()) {
    std::printf("%-7.*s %-8.*s %.*s\n",
                static_cast<int>(diag_code_name(c).size()),
                diag_code_name(c).data(),
                static_cast<int>(severity_name(diag_default_severity(c)).size()),
                severity_name(diag_default_severity(c)).data(),
                static_cast<int>(diag_code_summary(c).size()),
                diag_code_summary(c).data());
  }
  return 0;
}

// Source-level lint and the estimator's built-netlist lint overlap for
// file inputs (e.g. a floating net is visible to both); keep the first
// occurrence of each (code, message) pair.
void merge_deduped(DiagnosticReport& into, const DiagnosticReport& from) {
  for (const Diagnostic& d : from.diagnostics()) {
    bool dup = false;
    for (const Diagnostic& e : into.diagnostics()) {
      dup |= e.code == d.code && e.message == d.message;
    }
    if (!dup) into.add(d.code, d.severity, d.location, d.message);
  }
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Corrupts the first deterministic gate CPT it finds (scales one entry),
// so model lint must flag BN003/BN004 through the regular pipeline.
void inject_bad_cpt(BayesianNetwork& bn) {
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    if (bn.parents(v).empty() || !bn.has_cpt(v)) continue;
    Factor f = bn.cpt(v);
    f.set_value(0, f.value(0) + 0.5);
    bn.set_cpt(v, bn.parents(v), std::move(f));
    return;
  }
  throw std::runtime_error("--inject bad-cpt: circuit has no gate CPT");
}

// A three-clique cycle over a triangle: whatever spanning tree the
// junction-tree builder picks, one variable's cliques end up
// disconnected, so the RIP lint must flag JT002.
void lint_injected_broken_rip(DiagnosticReport& report) {
  Triangulation t;
  t.graph = UndirectedGraph(3);
  t.graph.add_edge(0, 1);
  t.graph.add_edge(1, 2);
  t.graph.add_edge(0, 2);
  t.elimination_order = {0, 1, 2};
  t.cliques = {{0, 1}, {1, 2}, {0, 2}};
  const JunctionTree jt(t);
  lint_junction_structure(3, jt.cliques(), jt.edges(), report);
}

int run(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (o.list_codes) return cmd_list_codes();

  DiagnosticReport report;
  const bool from_file =
      ends_with(o.circuit, ".bench") || ends_with(o.circuit, ".blif");

  // Stage 1: source-level lint (files only; built-ins are constructed
  // programmatically and have no source to scan).
  if (from_file && o.level != VerifyLevel::Off) {
    report.merge(lint_netlist_file(o.circuit));
  }

  // Stages 2-4 need a built netlist, which the strict readers can only
  // produce when the source is loadable at all.
  if (!report.has_errors() && o.level != VerifyLevel::Off) {
    const Netlist nl = from_file
                           ? (ends_with(o.circuit, ".bench")
                                  ? read_bench_file(o.circuit)
                                  : read_blif_file(o.circuit))
                           : make_benchmark(o.circuit);
    if (!from_file) lint_netlist(nl, report);

    if (o.inject_bad_cpt) {
      const InputModel model = InputModel::uniform(nl.num_inputs(), 0.5, 0.0);
      LidagBn lb = build_lidag(nl, model);
      inject_bad_cpt(lb.bn);
      std::vector<bool> is_root(
          static_cast<std::size_t>(lb.bn.num_variables()), false);
      std::vector<VarId> det_vars, root_vars;
      for (const LidagRoot& r : lb.roots) {
        root_vars.push_back(r.var);
        is_root[static_cast<std::size_t>(r.var)] = true;
      }
      for (const LidagRoot& r : lb.grouped_inputs) {
        is_root[static_cast<std::size_t>(r.var)] = true;
      }
      for (VarId v = 0; v < lb.bn.num_variables(); ++v) {
        if (!is_root[static_cast<std::size_t>(v)]) det_vars.push_back(v);
      }
      ModelLintOptions mopts;
      mopts.deterministic_vars = det_vars;
      lint_bayes_net(lb.bn, report, mopts);
      lint_lidag_structure(nl, lb.bn, lb.var_of_node, root_vars, report);
    } else if (o.level >= VerifyLevel::Fast && !o.inject_broken_rip) {
      const InputModel model = InputModel::uniform(nl.num_inputs(), 0.5, 0.0);
      EstimatorOptions eopts;
      const LidagEstimator est(nl, model, eopts);
      merge_deduped(report, est.verify(o.level));
    }
    if (o.inject_broken_rip) lint_injected_broken_rip(report);
  }

  if (o.json) {
    std::cout << report.render_json("bns_lint", o.circuit);
  } else {
    std::cout << report.render_text();
    std::printf("%s: %d error(s), %d warning(s), %zu finding(s)\n",
                o.circuit.c_str(), report.num_errors(), report.num_warnings(),
                report.size());
  }
  const bool fail =
      report.has_errors() || (o.werror && report.num_warnings() > 0);
  return fail ? 1 : 0;
}

} // namespace
} // namespace bns

int main(int argc, char** argv) {
  try {
    return bns::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
