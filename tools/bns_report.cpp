// bns_report — run reports, accuracy auditing, and regression gating.
//
//   bns_report c432                       human-readable run report
//   bns_report c432 --json                schema-versioned JSON document
//   bns_report circuit.bench --out r.json both: text on stdout, JSON to file
//   bns_report c432 --baseline base.json  compare against a baseline report
//
// A run report aggregates compile/estimate stats, the obs metrics
// registry (counters + histograms, including the numerical-health
// probes), provenance, and an estimator-vs-Monte-Carlo accuracy audit
// into one schema_version-3 JSON document (obs/report.h).
//
// Compare mode diffs two reports and fails when the propagate time
// regresses beyond --max-time-regress percent or the mean per-line
// accuracy degrades beyond --max-accuracy-regress. CI runs this as the
// regression gate against checked-in baselines (ci/baselines/).
//
// Exit status: 0 ok, 1 regression against the baseline, 2 usage or I/O
// failure.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/accuracy.h"
#include "obs/obs.h"
#include "session/session.h"
#include "util/cli.h"

namespace bns {
namespace {

constexpr const char kUsage[] = R"(usage: bns_report <circuit> [options]
  <circuit>           path to .bench/.blif, or a built-in benchmark name
options:
  --json              print the JSON document instead of the text report
  --out FILE          also write the JSON document to FILE
  --sim-pairs N       Monte Carlo audit budget in vector pairs (default 262144)
  --seed N            simulation seed (default 1)
  --threads N         estimator worker threads (default: BNS_THREADS or 1)
  --repeat N          update runs; propagate time = min over runs (default 5)
  --no-audit          skip the Monte Carlo accuracy audit
  --max-mean-error E  fail (exit 1) when the audited mean per-line error
                      exceeds E, even without a baseline (default: off)
  --git-describe STR  override the compiled-in git describe in provenance
compare mode:
  --baseline FILE           diff against a baseline report; exit 1 on regression
  --max-time-regress PCT    allowed propagate-time increase in % (default 25)
  --max-accuracy-regress E  allowed mean-abs-error increase (default 0.002)
serve-metrics mode (no <circuit>):
  --serve-metrics FILE      render a metrics document scraped from a daemon
                            (`bns_serve --metrics > FILE`); --json echoes the
                            document, default is a text rendering
other:
  --version                 print tool version and exit
test hooks (documented for the test suite; not for production use):
  --inject-regress time|accuracy   fake a regression before comparing
)";

struct Options {
  std::string circuit;
  std::string out_path;
  std::string baseline_path;
  std::string serve_metrics_path;
  std::string git_describe; // override (CI stamps the gate's ref here)
  std::uint64_t sim_pairs = std::uint64_t{1} << 18;
  std::uint64_t seed = 1;
  int threads = 0; // 0 = EstimatorOptions default (BNS_THREADS or 1)
  int repeat = 5;  // update runs; propagate time reported as the min
  double max_time_regress_pct = 25.0;
  double max_accuracy_regress = 0.002;
  // Absolute accuracy bound, gated even without a baseline. <= 0 = off.
  // Paper-consistent bound is 0.01 for cone-structured / single-segment
  // circuits; the dense random stand-ins carry a documented looser
  // budget (DESIGN.md §11, EXPERIMENTS.md threats to validity).
  double max_mean_error = 0.0;
  bool json = false;
  bool no_audit = false;
  // Test hooks: fake a regression so the gate's exit-status contract can
  // be exercised from a healthy build.
  bool inject_time_regress = false;
  bool inject_accuracy_regress = false;
};

// Strict whole-token u64 (no ArgParser overload: only this tool needs
// one, for the simulation budget and seed).
bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s[0] == '-') return false;
  errno = 0;
  const std::string buf(s);
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  out = v;
  return true;
}

Options parse(int argc, char** argv) {
  Options o;
  cli::ArgParser ap("bns_report", kUsage);
  ap.version(obs::tool_version_line("bns_report"));
  ap.flag("--json", &o.json);
  ap.value("--serve-metrics", &o.serve_metrics_path);
  ap.value("--out", &o.out_path);
  ap.custom("--sim-pairs",
            [&o](std::string_view v) { return parse_u64(v, o.sim_pairs); });
  ap.custom("--seed",
            [&o](std::string_view v) { return parse_u64(v, o.seed); });
  ap.value("--threads", &o.threads);
  ap.value("--repeat", &o.repeat);
  ap.flag("--no-audit", &o.no_audit);
  ap.value("--git-describe", &o.git_describe);
  ap.value("--baseline", &o.baseline_path);
  ap.value("--max-time-regress", &o.max_time_regress_pct);
  ap.value("--max-accuracy-regress", &o.max_accuracy_regress);
  ap.value("--max-mean-error", &o.max_mean_error);
  ap.custom("--inject-regress", [&o](std::string_view kind) {
    if (kind == "time") {
      o.inject_time_regress = true;
    } else if (kind == "accuracy") {
      o.inject_accuracy_regress = true;
    } else {
      return false;
    }
    return true;
  });
  ap.positional([&o](std::string_view a) {
    if (!o.circuit.empty()) return false;
    o.circuit = std::string(a);
    return true;
  });
  ap.parse(argc, argv);
  if (!o.serve_metrics_path.empty()) {
    if (!o.circuit.empty()) ap.fail(); // a scrape render needs no circuit
    return o;
  }
  if (o.circuit.empty() || o.repeat < 1 || o.sim_pairs == 0) ap.fail();
  return o;
}

// Renders a scraped serve-metrics document (the JSON `bns_serve
// --metrics` prints) as tables: per-op RED rows, cache events, and the
// non-zero flat counters. --json echoes the document unchanged.
int render_serve_metrics(const Options& o) {
  std::ifstream f(o.serve_metrics_path);
  if (!f) {
    std::fprintf(stderr, "bns_report: cannot read %s\n",
                 o.serve_metrics_path.c_str());
    return cli::kExitUsage;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  const std::optional<obs::JsonValue> doc = obs::json_parse(ss.str());
  if (!doc || !doc->is_object() || !doc->find("ops") ||
      !doc->find("ops")->is_array()) {
    std::fprintf(stderr, "bns_report: %s is not a serve-metrics document\n",
                 o.serve_metrics_path.c_str());
    return cli::kExitUsage;
  }
  if (o.json) {
    std::cout << ss.str();
    return cli::kExitOk;
  }

  auto u64 = [](const obs::JsonValue& v, std::string_view key) {
    return static_cast<unsigned long long>(v.number_or(key, 0));
  };
  const obs::JsonValue* prov = doc->find("provenance");
  std::printf("serve metrics (schema %d) — uptime %.1fs",
              static_cast<int>(doc->number_or("schema_version", 0)),
              doc->number_or("uptime_seconds", 0.0));
  if (prov && prov->is_object()) {
    std::printf(", %s (%s) on %s",
                prov->string_or("git_describe", "?").c_str(),
                prov->string_or("build_type", "?").c_str(),
                prov->string_or("hostname", "?").c_str());
  }
  std::printf("\n\n");

  Table ops({"op", "requests", "errors", "protocol", "artifact", "internal",
             "latency samples"});
  for (const obs::JsonValue& op : doc->find("ops")->as_array()) {
    if (!op.is_object()) continue;
    const obs::JsonValue* errs = op.find("errors");
    const obs::JsonValue* lat = op.find("latency_ns");
    unsigned long long protocol = 0, artifact = 0, internal = 0;
    if (errs && errs->is_object()) {
      protocol = u64(*errs, "protocol");
      artifact = u64(*errs, "artifact");
      internal = u64(*errs, "internal");
    }
    ops.add_row({op.string_or("op", "?"), std::to_string(u64(op, "requests")),
                 std::to_string(protocol + artifact + internal),
                 std::to_string(protocol), std::to_string(artifact),
                 std::to_string(internal),
                 std::to_string(lat && lat->is_object() ? u64(*lat, "count")
                                                        : 0ull)});
  }
  ops.print(std::cout);

  if (const obs::JsonValue* cache = doc->find("cache");
      cache && cache->is_object()) {
    std::cout << '\n';
    Table ct({"cache event", "count"});
    for (const char* e : {"hit", "miss", "revalidate", "evict"})
      ct.add_row({e, std::to_string(u64(*cache, e))});
    ct.print(std::cout);
  }

  if (const obs::JsonValue* counters = doc->find("counters");
      counters && counters->is_array() && !counters->as_array().empty()) {
    std::cout << '\n';
    Table ct({"counter", "value"});
    for (const obs::JsonValue& c : counters->as_array()) {
      if (!c.is_object()) continue;
      ct.add_row({c.string_or("name", "?"), std::to_string(u64(c, "value"))});
    }
    ct.print(std::cout);
  }
  return cli::kExitOk;
}

obs::RunReport build_report(const Options& o) {
  obs::Tracer tracer(obs::TraceLevel::Counters);
  SessionOptions sopts;
  sopts.estimator.num_threads = o.threads;
  sopts.estimator.trace = &tracer;
  Session session = Session::open(o.circuit, sopts);
  const InputModel model =
      InputModel::uniform(session.netlist().num_inputs());

  // Repeated updates over the compiled model; report the min propagate
  // time so the gate compares steady-state cost, not first-run jitter.
  SwitchingEstimate est = session.estimate(model);
  double min_propagate = est.stats.propagate_seconds;
  double min_reload = est.stats.reload_seconds;
  for (int r = 1; r < o.repeat; ++r) {
    est = session.estimate(model);
    min_propagate = std::min(min_propagate, est.stats.propagate_seconds);
    min_reload = std::min(min_reload, est.stats.reload_seconds);
  }

  obs::RunReport rep;
  rep.provenance = obs::default_provenance();
  rep.provenance.circuit = o.circuit;
  rep.provenance.threads = est.stats.threads_used;
  if (!o.git_describe.empty()) rep.provenance.git_describe = o.git_describe;

  const CompileStats& cs = session.compile_stats();
  rep.compile.compile_seconds = cs.compile_seconds;
  rep.compile.schedule_build_seconds = cs.schedule_build_seconds;
  rep.compile.num_segments = cs.num_segments;
  rep.compile.total_state_space = cs.total_state_space;
  rep.compile.max_clique_vars = cs.max_clique_vars;
  rep.compile.total_bn_variables = cs.total_bn_variables;
  rep.compile.fill_edges = cs.fill_edges;

  rep.estimate.propagate_seconds = min_propagate;
  rep.estimate.reload_seconds = min_reload;
  rep.estimate.messages_passed = est.stats.messages_passed;
  rep.estimate.threads_used = est.stats.threads_used;
  rep.estimate.average_activity = est.average_activity();

  if (!o.no_audit) {
    AccuracyAuditOptions aopts;
    aopts.sim_pairs = o.sim_pairs;
    aopts.seed = o.seed;
    aopts.trace = &tracer;
    rep.accuracy = audit_accuracy(session.netlist(), model, est,
                                  session.estimator(), aopts);
  }

  // After the audit, so Hist::LineAbsError is included.
  rep.set_metrics(tracer.metrics());

  // Scheduler cost model (schema 4): every segment engine's per-unit
  // EWMA state. The emitted table keeps the 64 costliest units by
  // observed time; total_units records the full population so a capped
  // table is visible as such.
  {
    const LidagEstimator& le = session.estimator();
    std::vector<obs::ReportUnitCost> all;
    for (int s = 0; s < le.num_segments(); ++s) {
      const auto costs = le.segment_engine(s).unit_costs();
      for (std::size_t u = 0; u < costs.size(); ++u) {
        all.push_back({s, static_cast<int>(u), costs[u].predicted_ns,
                       costs[u].observed_ns, costs[u].table_cells});
      }
    }
    rep.cost_model.total_units = static_cast<int>(all.size());
    std::sort(all.begin(), all.end(),
              [](const obs::ReportUnitCost& a, const obs::ReportUnitCost& b) {
                if (a.observed_ns != b.observed_ns) {
                  return a.observed_ns > b.observed_ns;
                }
                return a.segment != b.segment ? a.segment < b.segment
                                              : a.unit < b.unit;
              });
    if (all.size() > 64) all.resize(64);
    rep.cost_model.units = std::move(all);
  }

  if (o.inject_time_regress) rep.estimate.propagate_seconds *= 10.0;
  if (o.inject_accuracy_regress) rep.accuracy.mean_abs_error += 0.1;
  return rep;
}

// Returns 0 when `cur` is within thresholds of `base`, 1 on regression.
int compare_reports(const obs::RunReport& base, const obs::RunReport& cur,
                    const Options& o) {
  int failures = 0;
  Table t({"metric", "baseline", "current", "delta", "limit", "status"});
  auto fmt = [](double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
  };

  {
    const double b = base.estimate.propagate_seconds;
    const double c = cur.estimate.propagate_seconds;
    const double pct = b > 0.0 ? (c - b) / b * 100.0 : 0.0;
    const bool bad = b > 0.0 && pct > o.max_time_regress_pct;
    failures += bad ? 1 : 0;
    t.add_row({"propagate_seconds", fmt(b), fmt(c), fmt(pct) + "%",
               "+" + fmt(o.max_time_regress_pct) + "%",
               bad ? "REGRESSED" : "ok"});
  }
  if (base.accuracy.present() && cur.accuracy.present()) {
    const double b = base.accuracy.mean_abs_error;
    const double c = cur.accuracy.mean_abs_error;
    const double delta = c - b;
    const bool bad = delta > o.max_accuracy_regress;
    failures += bad ? 1 : 0;
    t.add_row({"mean_abs_error", fmt(b), fmt(c), fmt(delta),
               "+" + fmt(o.max_accuracy_regress), bad ? "REGRESSED" : "ok"});
  } else if (base.accuracy.present() != cur.accuracy.present()) {
    std::fprintf(stderr,
                 "bns_report: warning: accuracy block present in only one "
                 "report; accuracy not gated\n");
  }
  // Informational rows (never gate: machine-dependent or monotone).
  t.add_row({"compile_seconds", fmt(base.compile.compile_seconds),
             fmt(cur.compile.compile_seconds), "", "", "info"});
  t.add_row({"messages_passed",
             fmt(static_cast<double>(base.estimate.messages_passed)),
             fmt(static_cast<double>(cur.estimate.messages_passed)), "", "",
             "info"});

  std::cout << "baseline " << o.baseline_path << " ("
            << base.provenance.git_describe << ") vs current ("
            << cur.provenance.git_describe << ")\n";
  t.print(std::cout);
  std::cout << (failures == 0 ? "gate: ok\n" : "gate: REGRESSED\n");
  return failures == 0 ? cli::kExitOk : cli::kExitFailure;
}

int run(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (!o.serve_metrics_path.empty()) return render_serve_metrics(o);
  const obs::RunReport rep = build_report(o);
  const std::string json = rep.to_json();

  if (!o.out_path.empty()) {
    std::ofstream f(o.out_path);
    if (!f) {
      std::fprintf(stderr, "bns_report: cannot write %s\n",
                   o.out_path.c_str());
      return cli::kExitUsage;
    }
    f << json;
  }

  if (o.json) {
    std::cout << json;
  } else {
    std::cout << rep.render_text();
  }

  int status = cli::kExitOk;
  if (o.max_mean_error > 0.0) {
    if (!rep.accuracy.present()) {
      std::fprintf(stderr,
                   "bns_report: --max-mean-error requires the accuracy "
                   "audit (remove --no-audit)\n");
      return cli::kExitUsage;
    }
    const bool bad = rep.accuracy.mean_abs_error > o.max_mean_error;
    std::cout << "\nabsolute accuracy bound: mean_abs_error "
              << rep.accuracy.mean_abs_error << " vs limit "
              << o.max_mean_error << (bad ? " REGRESSED\n" : " ok\n");
    if (bad) status = cli::kExitFailure;
  }

  if (o.baseline_path.empty()) return status;

  std::ifstream f(o.baseline_path);
  if (!f) {
    std::fprintf(stderr, "bns_report: cannot read baseline %s\n",
                 o.baseline_path.c_str());
    return cli::kExitUsage;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  const std::optional<obs::RunReport> base = obs::RunReport::from_json(ss.str());
  if (!base) {
    std::fprintf(stderr, "bns_report: baseline %s is not a valid report\n",
                 o.baseline_path.c_str());
    return cli::kExitUsage;
  }
  std::cout << '\n';
  return std::max(status, compare_reports(*base, rep, o));
}

} // namespace
} // namespace bns

int main(int argc, char** argv) {
  try {
    return bns::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return bns::cli::kExitUsage;
  }
}
