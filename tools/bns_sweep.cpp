// bns_sweep — scenario-sweep batch runs over one compiled estimator.
//
//   bns_sweep c1908 --scenarios 16                sweep input 0's p over [0.1, 0.9]
//   bns_sweep c1908 --scenarios 16 --verify       also check bitwise vs estimate()
//   bns_sweep circuit.bench --json --out s.json   schema-versioned JSON document
//
// The sweep compiles the LIDAG junction trees once (per replica) and
// runs every scenario through LidagEstimator::estimate_batch, which
// re-quantifies and re-propagates only the segments whose root CPTs
// actually changed between consecutive scenarios (core/sweep.h). The
// emitted JSON document carries its own schema_version, a provenance
// block like bns_report's, and one record per scenario.
//
// Exit status: 0 ok, 1 --verify found a mismatch against independent
// estimate() runs, 2 usage or I/O failure.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "core/sweep.h"
#include "gen/benchmarks.h"
#include "netlist/bench_io.h"
#include "netlist/blif_io.h"
#include "obs/obs.h"

namespace bns {
namespace {

// Version of the bns_sweep JSON document. Bump on any key
// rename/removal or semantic change; additions are backward compatible.
constexpr int kSweepSchemaVersion = 1;

struct Options {
  std::string circuit;
  std::string out_path;
  int scenarios = 8;
  int vary_input = 0;
  double p_from = 0.1;
  double p_to = 0.9;
  double rho = 0.0;
  int threads = 0; // 0 = EstimatorOptions default (BNS_THREADS or 1)
  int replicas = 1;
  bool verify = false;
  bool json = false;
};

[[noreturn]] void usage() {
  std::fprintf(stderr, "%s", R"(usage: bns_sweep <circuit> [options]
  <circuit>           path to .bench/.blif, or a built-in benchmark name
options:
  --scenarios N       number of scenarios to sweep (default 8)
  --vary-input K      input whose signal probability is swept (default 0)
  --p-from A          first scenario's p for the varied input (default 0.1)
  --p-to B            last scenario's p for the varied input (default 0.9)
  --rho R             lag-1 autocorrelation of every input (default 0)
  --threads N         estimator worker threads (default: BNS_THREADS or 1)
  --replicas R        independent estimators sweeping scenario chunks
                      concurrently (default 1)
  --verify            re-run every scenario through an independent
                      estimate() call and require bitwise-identical
                      results; exit 1 on any mismatch
  --json              print the JSON document instead of the text summary
  --out FILE          also write the JSON document to FILE
)");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--scenarios") {
      o.scenarios = std::atoi(next().c_str());
    } else if (a == "--vary-input") {
      o.vary_input = std::atoi(next().c_str());
    } else if (a == "--p-from") {
      o.p_from = std::atof(next().c_str());
    } else if (a == "--p-to") {
      o.p_to = std::atof(next().c_str());
    } else if (a == "--rho") {
      o.rho = std::atof(next().c_str());
    } else if (a == "--threads") {
      o.threads = std::atoi(next().c_str());
    } else if (a == "--replicas") {
      o.replicas = std::atoi(next().c_str());
    } else if (a == "--verify") {
      o.verify = true;
    } else if (a == "--json") {
      o.json = true;
    } else if (a == "--out") {
      o.out_path = next();
    } else if (!a.empty() && a[0] == '-') {
      usage();
    } else if (o.circuit.empty()) {
      o.circuit = a;
    } else {
      usage();
    }
  }
  if (o.circuit.empty() || o.scenarios < 1 || o.replicas < 1 ||
      o.p_from < 0.0 || o.p_from > 1.0 || o.p_to < 0.0 || o.p_to > 1.0) {
    usage();
  }
  return o;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// The sweep's scenario list: every input at (0.5, rho), with the varied
// input's p stepped linearly from p_from to p_to across scenarios.
std::vector<InputModel> make_scenarios(const Options& o, int num_inputs) {
  std::vector<InputModel> models;
  models.reserve(static_cast<std::size_t>(o.scenarios));
  for (int s = 0; s < o.scenarios; ++s) {
    const double t = o.scenarios > 1
                         ? static_cast<double>(s) /
                               static_cast<double>(o.scenarios - 1)
                         : 0.0;
    std::vector<InputSpec> specs(
        static_cast<std::size_t>(num_inputs),
        InputSpec{0.5, o.rho, -1, 0.0});
    specs[static_cast<std::size_t>(o.vary_input)].p =
        o.p_from + t * (o.p_to - o.p_from);
    models.push_back(InputModel::custom(std::move(specs)));
  }
  return models;
}

std::string to_json(const Options& o, const obs::ReportProvenance& prov,
                    const SweepResult& res,
                    const std::vector<InputModel>& models, bool verified) {
  std::string out;
  auto kv = [&out](std::string_view k) {
    out += "  ";
    obs::json_append_string(out, k);
    out += ": ";
  };
  out += "{\n";
  kv("schema_version");
  out += std::to_string(kSweepSchemaVersion) + ",\n";
  kv("provenance");
  out += "{\n";
  auto pkv = [&out](std::string_view k, std::string_view v, bool last = false) {
    out += "    ";
    obs::json_append_string(out, k);
    out += ": ";
    obs::json_append_string(out, v);
    out += last ? "\n" : ",\n";
  };
  pkv("circuit", prov.circuit);
  pkv("git_describe", prov.git_describe);
  pkv("build_type", prov.build_type);
  pkv("timestamp", prov.timestamp_iso8601);
  pkv("hostname", prov.hostname);
  out += "    \"threads\": " + std::to_string(prov.threads) + "\n  },\n";
  kv("sweep");
  out += "{\n";
  out += "    \"scenarios\": " + std::to_string(res.stats.scenarios) + ",\n";
  out += "    \"vary_input\": " + std::to_string(o.vary_input) + ",\n";
  out += "    \"p_from\": " + obs::json_number(o.p_from) + ",\n";
  out += "    \"p_to\": " + obs::json_number(o.p_to) + ",\n";
  out += "    \"rho\": " + obs::json_number(o.rho) + ",\n";
  out += "    \"replicas_used\": " + std::to_string(res.replicas_used) + ",\n";
  out += "    \"compile_seconds\": " + obs::json_number(res.compile_seconds) +
         ",\n";
  out += "    \"wall_seconds\": " + obs::json_number(res.wall_seconds) + ",\n";
  out += "    \"segments_reloaded\": " +
         std::to_string(res.stats.segments_reloaded) + ",\n";
  out += "    \"segments_skipped\": " +
         std::to_string(res.stats.segments_skipped) + ",\n";
  out += std::string("    \"verified\": ") + (verified ? "true" : "false") +
         "\n  },\n";
  kv("records");
  out += "[\n";
  for (std::size_t s = 0; s < res.estimates.size(); ++s) {
    const SwitchingEstimate& est = res.estimates[s];
    out += "    {\"scenario\": " + std::to_string(s) + ", \"p\": " +
           obs::json_number(
               models[s].spec(o.vary_input).p) +
           ", \"average_activity\": " +
           obs::json_number(est.average_activity()) +
           ", \"propagate_seconds\": " +
           obs::json_number(est.stats.propagate_seconds) + "}";
    out += s + 1 < res.estimates.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

int run(int argc, char** argv) {
  const Options o = parse(argc, argv);
  const Netlist nl =
      ends_with(o.circuit, ".bench")
          ? read_bench_file(o.circuit)
          : (ends_with(o.circuit, ".blif") ? read_blif_file(o.circuit)
                                           : make_benchmark(o.circuit));
  if (o.vary_input < 0 || o.vary_input >= nl.num_inputs()) {
    std::fprintf(stderr, "bns_sweep: --vary-input %d out of range (%d inputs)\n",
                 o.vary_input, nl.num_inputs());
    return 2;
  }

  const std::vector<InputModel> models = make_scenarios(o, nl.num_inputs());

  SweepOptions sopts;
  sopts.estimator.num_threads = o.threads;
  sopts.replicas = o.replicas;
  const SweepResult res = run_sweep(nl, models, sopts);

  bool verified = false;
  if (o.verify) {
    // Independent compiled estimator; each scenario estimated from
    // scratch. The batch contract is bitwise identity, so compare
    // representations, not within a tolerance.
    LidagEstimator ref(nl, models[0], sopts.estimator);
    for (std::size_t s = 0; s < models.size(); ++s) {
      const SwitchingEstimate want = ref.estimate(models[s]);
      const SwitchingEstimate& got = res.estimates[s];
      if (want.dist != got.dist) {
        std::fprintf(stderr,
                     "bns_sweep: VERIFY FAILED at scenario %zu: batch result "
                     "differs bitwise from estimate()\n",
                     s);
        return 1;
      }
    }
    verified = true;
  }

  obs::ReportProvenance prov = obs::default_provenance();
  prov.circuit = o.circuit;
  prov.threads = res.estimates.empty()
                     ? 1
                     : res.estimates.front().stats.threads_used;

  const std::string json = to_json(o, prov, res, models, verified);
  if (!o.out_path.empty()) {
    std::ofstream f(o.out_path);
    if (!f) {
      std::fprintf(stderr, "bns_sweep: cannot write %s\n", o.out_path.c_str());
      return 2;
    }
    f << json;
  }

  if (o.json) {
    std::cout << json;
  } else {
    std::cout << "sweep " << o.circuit << ": " << res.stats.scenarios
              << " scenarios, " << res.replicas_used << " replica(s)\n";
    std::cout << "  compile " << res.compile_seconds << " s, sweep "
              << res.wall_seconds << " s ("
              << res.wall_seconds /
                     static_cast<double>(res.stats.scenarios)
              << " s/scenario)\n";
    std::cout << "  segments reloaded " << res.stats.segments_reloaded
              << ", skipped " << res.stats.segments_skipped << '\n';
    if (o.verify) std::cout << "  verify: ok (bitwise)\n";
    std::cout << '\n';
    Table t({"scenario", "p", "average_activity"});
    char buf[48];
    for (std::size_t s = 0; s < res.estimates.size(); ++s) {
      std::snprintf(buf, sizeof buf, "%.6g", models[s].spec(o.vary_input).p);
      std::string p = buf;
      std::snprintf(buf, sizeof buf, "%.6g",
                    res.estimates[s].average_activity());
      t.add_row({std::to_string(s), p, buf});
    }
    t.print(std::cout);
  }
  return 0;
}

} // namespace
} // namespace bns

int main(int argc, char** argv) {
  try {
    return bns::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
