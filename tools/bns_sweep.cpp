// bns_sweep — scenario-sweep batch runs over one compiled estimator.
//
//   bns_sweep c1908 --scenarios 16                sweep input 0's p over [0.1, 0.9]
//   bns_sweep c1908 --scenarios 16 --verify       also check bitwise vs estimate()
//   bns_sweep c1908.bnsc --json                   sweep a precompiled artifact
//   bns_sweep circuit.bench --json --out s.json   schema-versioned JSON document
//   bns_sweep c1908.bnsc --daemons a.sock,b.sock  distribute chunks over a
//                                                 pool of bns_serve daemons
//
// The sweep opens one Session (compiling the LIDAG junction trees, or
// restoring them from a .bnsc artifact) and runs every scenario through
// the batch engine, which re-quantifies and re-propagates only the
// segments whose root CPTs actually changed between consecutive
// scenarios (core/sweep.h). The emitted JSON document carries its own
// schema_version, a provenance block like bns_report's, and one record
// per scenario.
//
// With --daemons, the same scenario range is instead chunked across the
// listed bns_serve sockets by the coordinator (src/coord/): contiguous
// chunks per daemon, work stealing, per-chunk retry with failover. The
// merged records are string-for-string identical to the single-process
// --json records — --verify proves it against an in-process
// Session::sweep on every run.
//
// Exit status: 0 ok, 1 --verify found a mismatch (or a chunk failed on
// every endpoint), 2 usage or I/O failure.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "coord/coord.h"
#include "obs/obs.h"
#include "session/session.h"
#include "util/cli.h"
#include "util/strings.h"

namespace bns {
namespace {

// Version of the bns_sweep JSON document. Bump on any key
// rename/removal or semantic change; additions are backward compatible.
constexpr int kSweepSchemaVersion = 1;

constexpr const char kUsage[] = R"(usage: bns_sweep <circuit> [options]
  <circuit>           path to .bench/.blif, a .bnsc artifact, or a
                      built-in benchmark name
options:
  --scenarios N       number of scenarios to sweep (default 8)
  --vary-input K      input whose signal probability is swept (default 0)
  --p-from A          first scenario's p for the varied input (default 0.1)
  --p-to B            last scenario's p for the varied input (default 0.9)
  --rho R             lag-1 autocorrelation of every input (default 0)
  --threads N         estimator worker threads (default: BNS_THREADS or 1)
  --replicas R        independent estimators sweeping scenario chunks
                      concurrently (default 1)
  --verify            re-run every scenario through an independent
                      estimate() call and require bitwise-identical
                      results; exit 1 on any mismatch
  --json              print the JSON document instead of the text summary
  --out FILE          also write the JSON document to FILE
  --version           print tool version and exit
distributed mode:
  --daemons LIST      comma-separated bns_serve Unix sockets; chunk the
                      sweep across them instead of running in-process
                      (--verify then checks the merged records against
                      an in-process Session::sweep, string-exactly)
  --chunk N           scenarios per chunk (default: ~4 chunks/daemon)
  --attempts N        max attempts per chunk before it is reported as
                      failed (default: 2 x daemons, min 3)
  --wait SECONDS      patience for the first connect to each daemon
                      (default 10)
)";

struct Options {
  std::string circuit;
  std::string out_path;
  int scenarios = 8;
  int vary_input = 0;
  double p_from = 0.1;
  double p_to = 0.9;
  double rho = 0.0;
  int threads = 0; // 0 = EstimatorOptions default (BNS_THREADS or 1)
  int replicas = 1;
  bool verify = false;
  bool json = false;
  std::string daemons; // comma-separated sockets; non-empty = distributed
  int chunk = 0;       // scenarios per chunk (0 = coordinator default)
  int attempts = 0;    // max attempts per chunk (0 = coordinator default)
  double wait = 10.0;  // first-connect patience per daemon
};

Options parse(int argc, char** argv) {
  Options o;
  cli::ArgParser ap("bns_sweep", kUsage);
  ap.version(obs::tool_version_line("bns_sweep"));
  ap.value("--scenarios", &o.scenarios);
  ap.value("--vary-input", &o.vary_input);
  ap.value("--p-from", &o.p_from);
  ap.value("--p-to", &o.p_to);
  ap.value("--rho", &o.rho);
  ap.value("--threads", &o.threads);
  ap.value("--replicas", &o.replicas);
  ap.flag("--verify", &o.verify);
  ap.flag("--json", &o.json);
  ap.value("--out", &o.out_path);
  ap.value("--daemons", &o.daemons);
  ap.value("--chunk", &o.chunk);
  ap.value("--attempts", &o.attempts);
  ap.value("--wait", &o.wait);
  ap.positional([&o](std::string_view a) {
    if (!o.circuit.empty()) return false;
    o.circuit = std::string(a);
    return true;
  });
  ap.parse(argc, argv);
  if (o.circuit.empty() || o.scenarios < 1 || o.replicas < 1 ||
      o.p_from < 0.0 || o.p_from > 1.0 || o.p_to < 0.0 || o.p_to > 1.0 ||
      o.chunk < 0 || o.attempts < 0 || o.wait < 0.0) {
    ap.fail();
  }
  return o;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string to_json(const Options& o, const obs::ReportProvenance& prov,
                    const SweepResult& res,
                    const std::vector<InputModel>& models, bool verified) {
  std::string out;
  auto kv = [&out](std::string_view k) {
    out += "  ";
    obs::json_append_string(out, k);
    out += ": ";
  };
  out += "{\n";
  kv("schema_version");
  out += std::to_string(kSweepSchemaVersion) + ",\n";
  kv("provenance");
  out += "{\n";
  auto pkv = [&out](std::string_view k, std::string_view v, bool last = false) {
    out += "    ";
    obs::json_append_string(out, k);
    out += ": ";
    obs::json_append_string(out, v);
    out += last ? "\n" : ",\n";
  };
  pkv("circuit", prov.circuit);
  pkv("git_describe", prov.git_describe);
  pkv("build_type", prov.build_type);
  pkv("timestamp", prov.timestamp_iso8601);
  pkv("hostname", prov.hostname);
  out += "    \"threads\": " + std::to_string(prov.threads) + "\n  },\n";
  kv("sweep");
  out += "{\n";
  out += "    \"scenarios\": " + std::to_string(res.stats.scenarios) + ",\n";
  out += "    \"vary_input\": " + std::to_string(o.vary_input) + ",\n";
  out += "    \"p_from\": " + obs::json_number(o.p_from) + ",\n";
  out += "    \"p_to\": " + obs::json_number(o.p_to) + ",\n";
  out += "    \"rho\": " + obs::json_number(o.rho) + ",\n";
  out += "    \"replicas_used\": " + std::to_string(res.replicas_used) + ",\n";
  out += "    \"compile_seconds\": " + obs::json_number(res.compile_seconds) +
         ",\n";
  out += "    \"wall_seconds\": " + obs::json_number(res.wall_seconds) + ",\n";
  out += "    \"segments_reloaded\": " +
         std::to_string(res.stats.segments_reloaded) + ",\n";
  out += "    \"segments_skipped\": " +
         std::to_string(res.stats.segments_skipped) + ",\n";
  out += std::string("    \"verified\": ") + (verified ? "true" : "false") +
         "\n  },\n";
  kv("records");
  out += "[\n";
  for (std::size_t s = 0; s < res.estimates.size(); ++s) {
    const SwitchingEstimate& est = res.estimates[s];
    out += "    {\"scenario\": " + std::to_string(s) + ", \"p\": " +
           obs::json_number(
               models[s].spec(o.vary_input).p) +
           ", \"average_activity\": " +
           obs::json_number(est.average_activity()) +
           ", \"propagate_seconds\": " +
           obs::json_number(est.stats.propagate_seconds) + "}";
    out += s + 1 < res.estimates.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

// --daemons mode: chunk the sweep across a pool of bns_serve daemons
// and fan the answers back in. The merged records use the same %.17g
// formatter as the in-process document, so --verify can insist on
// string-exact equality against Session::sweep.
int run_distributed(const Options& o) {
  coord::CoordOptions copts;
  for (std::string_view s : split(o.daemons, ',')) {
    const std::string_view t = trim(s);
    if (!t.empty()) copts.sockets.emplace_back(t);
  }
  if (copts.sockets.empty()) {
    std::fprintf(stderr, "bns_sweep: --daemons lists no sockets\n");
    return cli::kExitUsage;
  }
  copts.model = o.circuit;
  copts.spec.scenarios = o.scenarios;
  copts.spec.vary_input = o.vary_input;
  copts.spec.p_from = o.p_from;
  copts.spec.p_to = o.p_to;
  copts.spec.rho = o.rho;
  copts.chunk_scenarios = o.chunk;
  copts.max_attempts = o.attempts;
  copts.connect_wait_seconds = o.wait;

  const coord::CoordSweepResult res = coord::coordinate_sweep(copts);

  // A chunk that failed on every endpoint is a structured error, not a
  // silently shorter document.
  for (const coord::ChunkFailure& f : res.failed) {
    std::fprintf(stderr,
                 "bns_sweep: chunk %d (scenarios %d..%d) failed after %d "
                 "attempt(s): %s\n",
                 f.chunk_id, f.scenario_base,
                 f.scenario_base + f.scenarios - 1, f.attempts,
                 f.error.c_str());
  }

  bool verified = false;
  if (o.verify && res.ok()) {
    // The ground truth the merged document must reproduce exactly: one
    // in-process batch sweep over the identical spec.
    SessionOptions sopts;
    sopts.estimator.num_threads = o.threads;
    Session ref = ends_with(o.circuit, ".bnsc")
                      ? Session::open_artifact(o.circuit, sopts)
                      : Session::open(o.circuit, sopts);
    const std::vector<InputModel> models =
        make_linear_scenarios(copts.spec, ref.netlist().num_inputs());
    const SweepResult want = ref.sweep(models);
    for (std::size_t s = 0; s < models.size(); ++s) {
      const coord::CoordRecord& got = res.records[s];
      const std::string want_p =
          obs::json_number(models[s].spec(o.vary_input).p);
      const std::string want_a =
          obs::json_number(want.estimates[s].average_activity());
      if (got.scenario != static_cast<int>(s) ||
          obs::json_number(got.p) != want_p ||
          obs::json_number(got.average_activity) != want_a) {
        std::fprintf(stderr,
                     "bns_sweep: VERIFY FAILED at scenario %zu: merged "
                     "record differs from in-process sweep (p %s vs %s, "
                     "average_activity %s vs %s)\n",
                     s, obs::json_number(got.p).c_str(), want_p.c_str(),
                     obs::json_number(got.average_activity).c_str(),
                     want_a.c_str());
        return cli::kExitFailure;
      }
    }
    verified = true;
  }

  obs::ReportProvenance prov = obs::default_provenance();
  prov.circuit = o.circuit;
  prov.threads = 1; // coordinator-side; daemon thread counts are theirs

  const std::string json = coord::coord_result_to_json(copts, res, prov,
                                                       verified);
  if (!o.out_path.empty()) {
    std::ofstream f(o.out_path);
    if (!f) {
      std::fprintf(stderr, "bns_sweep: cannot write %s\n", o.out_path.c_str());
      return cli::kExitUsage;
    }
    f << json;
  }

  if (o.json) {
    std::cout << json;
  } else {
    std::cout << "sweep " << o.circuit << ": " << o.scenarios
              << " scenarios over " << res.endpoints.size()
              << " daemon(s), " << res.chunks.size() << " chunk(s) of "
              << res.chunk_scenarios << '\n';
    std::cout << "  wall " << res.wall_seconds << " s, retries "
              << res.retries << ", failed chunks " << res.failed.size()
              << '\n';
    for (const coord::EndpointAccount& a : res.endpoints) {
      std::cout << "  " << a.socket << ": served " << a.chunks_served
                << " (stolen " << a.chunks_stolen << ", retried "
                << a.chunks_retried << "), failures " << a.failures
                << (a.retired ? ", retired" : "") << '\n';
    }
    if (verified) std::cout << "  verify: ok (string-exact)\n";
  }
  return res.ok() ? cli::kExitOk : cli::kExitFailure;
}

int run(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (!o.daemons.empty()) return run_distributed(o);

  SessionOptions sopts;
  sopts.estimator.num_threads = o.threads;
  const bool from_artifact = ends_with(o.circuit, ".bnsc");
  auto open = [&] {
    return from_artifact ? Session::open_artifact(o.circuit, sopts)
                         : Session::open(o.circuit, sopts);
  };
  Session session = open();

  const int num_inputs = session.netlist().num_inputs();
  if (o.vary_input < 0 || o.vary_input >= num_inputs) {
    std::fprintf(stderr, "bns_sweep: --vary-input %d out of range (%d inputs)\n",
                 o.vary_input, num_inputs);
    return cli::kExitUsage;
  }

  LinearSweepSpec spec;
  spec.scenarios = o.scenarios;
  spec.vary_input = o.vary_input;
  spec.p_from = o.p_from;
  spec.p_to = o.p_to;
  spec.rho = o.rho;
  const std::vector<InputModel> models =
      make_linear_scenarios(spec, num_inputs);

  SweepResult res = session.sweep(models, o.replicas);
  // The session's own compile (or artifact load) is part of the
  // one-time cost the document reports; the batch engine only counts
  // extra replicas it built itself.
  res.compile_seconds += from_artifact
                             ? session.load_seconds()
                             : session.compile_stats().compile_seconds;

  bool verified = false;
  if (o.verify) {
    // Independent session over the same source; each scenario estimated
    // from scratch. The batch contract is bitwise identity, so compare
    // representations, not within a tolerance.
    Session ref = open();
    for (std::size_t s = 0; s < models.size(); ++s) {
      const SwitchingEstimate want = ref.estimate(models[s]);
      const SwitchingEstimate& got = res.estimates[s];
      if (want.dist != got.dist) {
        std::fprintf(stderr,
                     "bns_sweep: VERIFY FAILED at scenario %zu: batch result "
                     "differs bitwise from estimate()\n",
                     s);
        return cli::kExitFailure;
      }
    }
    verified = true;
  }

  obs::ReportProvenance prov = obs::default_provenance();
  prov.circuit = o.circuit;
  prov.threads = res.estimates.empty()
                     ? 1
                     : res.estimates.front().stats.threads_used;

  const std::string json = to_json(o, prov, res, models, verified);
  if (!o.out_path.empty()) {
    std::ofstream f(o.out_path);
    if (!f) {
      std::fprintf(stderr, "bns_sweep: cannot write %s\n", o.out_path.c_str());
      return cli::kExitUsage;
    }
    f << json;
  }

  if (o.json) {
    std::cout << json;
  } else {
    std::cout << "sweep " << o.circuit << ": " << res.stats.scenarios
              << " scenarios, " << res.replicas_used << " replica(s)\n";
    std::cout << "  " << (from_artifact ? "load" : "compile") << ' '
              << res.compile_seconds << " s, sweep "
              << res.wall_seconds << " s ("
              << res.wall_seconds /
                     static_cast<double>(res.stats.scenarios)
              << " s/scenario)\n";
    std::cout << "  segments reloaded " << res.stats.segments_reloaded
              << ", skipped " << res.stats.segments_skipped << '\n';
    if (o.verify) std::cout << "  verify: ok (bitwise)\n";
    std::cout << '\n';
    Table t({"scenario", "p", "average_activity"});
    char buf[48];
    for (std::size_t s = 0; s < res.estimates.size(); ++s) {
      std::snprintf(buf, sizeof buf, "%.6g", models[s].spec(o.vary_input).p);
      std::string p = buf;
      std::snprintf(buf, sizeof buf, "%.6g",
                    res.estimates[s].average_activity());
      t.add_row({std::to_string(s), p, buf});
    }
    t.print(std::cout);
  }
  return cli::kExitOk;
}

} // namespace
} // namespace bns

int main(int argc, char** argv) {
  try {
    return bns::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return bns::cli::kExitUsage;
  }
}
