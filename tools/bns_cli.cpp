// bns — command-line front end to the switching-activity library.
//
//   bns stats    <circuit>                     netlist statistics
//   bns estimate <circuit> [options]           per-line switching activity
//   bns compare  <circuit> [options]           all estimators vs simulation
//   bns power    <circuit> [options]           dynamic power report
//   bns convert  <in> <out>                    .bench <-> .blif conversion
//   bns list                                   the built-in benchmark suite
//
// <circuit> is a built-in suite name (see `bns list`) or a path ending
// in .bench or .blif. Common options:
//   --p <v>          input signal probability        (default 0.5)
//   --rho <v>        input lag-1 temporal correlation (default 0)
//   --method <m>     estimate with bn|independence|density|paircorr|bdd
//   --sim-pairs <n>  simulation sample budget for `compare`
//   --csv            machine-readable output
//   --top <n>        only the n most active lines for `estimate`
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bns.h"
#include "session/session.h"

namespace bns {
namespace {

struct Options {
  double p = 0.5;
  double rho = 0.0;
  std::string method = "bn";
  std::uint64_t sim_pairs = 1 << 21;
  bool csv = false;
  int top = 0;
  std::vector<std::string> positional;
};

[[noreturn]] void usage() {
  std::fprintf(stderr, "%s", R"(usage:
  bns stats    <circuit>
  bns estimate <circuit> [--p V] [--rho V] [--method bn|independence|density|paircorr|bdd|localbdd|montecarlo] [--top N] [--csv]
  bns compare  <circuit> [--p V] [--rho V] [--sim-pairs N] [--csv]
  bns power    <circuit> [--p V] [--rho V]
  bns convert  <in.bench|in.blif> <out.bench|out.blif>
  bns list
  bns --version
<circuit> = built-in name (see `bns list`) or path to .bench/.blif
)");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--p") {
      o.p = std::stod(next());
    } else if (a == "--rho") {
      o.rho = std::stod(next());
    } else if (a == "--method") {
      o.method = next();
    } else if (a == "--sim-pairs") {
      o.sim_pairs = std::stoull(next());
    } else if (a == "--top") {
      o.top = std::stoi(next());
    } else if (a == "--csv") {
      o.csv = true;
    } else if (!a.empty() && a[0] == '-') {
      usage();
    } else {
      o.positional.push_back(a);
    }
  }
  return o;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

int cmd_list() {
  Table t({"name", "family", "origin", "PIs", "POs", "gates(published)"});
  for (const BenchmarkInfo& b : benchmark_suite()) {
    t.add_row({b.name, b.family, b.origin, std::to_string(b.paper_inputs),
               std::to_string(b.paper_outputs),
               std::to_string(b.paper_gates)});
  }
  t.print(std::cout);
  return 0;
}

int cmd_stats(const Options& o) {
  const Netlist nl = load_circuit(o.positional.at(0));
  const NetlistStats s = compute_stats(nl);
  std::printf("circuit      %s\n", nl.name().c_str());
  std::printf("inputs       %d\n", s.num_inputs);
  std::printf("outputs      %d\n", s.num_outputs);
  std::printf("gates        %d\n", s.num_gates);
  std::printf("lines        %d\n", s.num_nodes);
  std::printf("depth        %d\n", s.depth);
  std::printf("max fanin    %d\n", s.max_fanin);
  std::printf("avg fanin    %.2f\n", s.avg_fanin);
  std::printf("max fanout   %d\n", s.max_fanout);
  std::printf("branch nets  %d\n", s.reconvergent_nodes);
  return 0;
}

std::vector<std::array<double, 4>> run_method(const Netlist& nl,
                                              const InputModel& m,
                                              const std::string& method,
                                              double& seconds) {
  if (method == "bn") {
    Session session = Session::open(Netlist(nl), m);
    const SwitchingEstimate sw = session.estimate(m);
    seconds = session.compile_stats().compile_seconds +
              sw.stats.propagate_seconds;
    return sw.dist;
  }
  if (method == "independence") {
    const IndependenceResult r = estimate_independence(nl, m);
    seconds = r.seconds;
    return r.dist;
  }
  if (method == "density") {
    const TransitionDensityResult r = estimate_transition_density(nl, m);
    seconds = r.seconds;
    std::vector<std::array<double, 4>> dist(r.density.size());
    for (std::size_t i = 0; i < r.density.size(); ++i) {
      const double a = std::min(1.0, r.density[i]) / 2.0;
      const double p1 = r.signal_prob[i];
      dist[i] = {std::max(0.0, 1 - p1 - a), a, a, std::max(0.0, p1 - a)};
    }
    return dist;
  }
  if (method == "paircorr") {
    const CorrelationResult r = estimate_correlation(nl, m);
    seconds = r.seconds;
    return r.dist;
  }
  if (method == "montecarlo") {
    const MonteCarloResult r = estimate_monte_carlo(nl, m);
    seconds = r.seconds;
    return r.dist;
  }
  if (method == "localbdd") {
    const LocalBddResult r = estimate_local_bdd(nl, m);
    seconds = r.seconds;
    return r.dist;
  }
  if (method == "bdd") {
    const BddSwitchingResult r = estimate_bdd_exact(nl, m);
    seconds = r.seconds;
    if (!r.completed) {
      throw std::runtime_error(
          "exact BDD estimation exceeded the node budget on this circuit");
    }
    return r.dist;
  }
  throw std::runtime_error("unknown method: " + method);
}

int cmd_estimate(const Options& o) {
  const Netlist nl = load_circuit(o.positional.at(0));
  const InputModel m = InputModel::uniform(nl.num_inputs(), o.p, o.rho);
  double seconds = 0.0;
  const auto dist = run_method(nl, m, o.method, seconds);

  std::vector<NodeId> order(static_cast<std::size_t>(nl.num_nodes()));
  for (NodeId id = 0; id < nl.num_nodes(); ++id) order[static_cast<std::size_t>(id)] = id;
  if (o.top > 0) {
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return activity_of(dist[static_cast<std::size_t>(a)]) >
             activity_of(dist[static_cast<std::size_t>(b)]);
    });
    order.resize(std::min<std::size_t>(order.size(), static_cast<std::size_t>(o.top)));
  }

  Table t({"line", "activity", "P00", "P01", "P10", "P11"});
  double total = 0.0;
  for (const auto& d : dist) total += activity_of(d);
  for (NodeId id : order) {
    const auto& d = dist[static_cast<std::size_t>(id)];
    t.add_row({nl.node(id).name, strformat("%.5f", activity_of(d)),
               strformat("%.5f", d[0]), strformat("%.5f", d[1]),
               strformat("%.5f", d[2]), strformat("%.5f", d[3])});
  }
  if (o.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
    std::printf("\nmethod=%s  avg activity=%.5f  time=%.3fs\n",
                o.method.c_str(), total / nl.num_nodes(), seconds);
  }
  return 0;
}

int cmd_compare(const Options& o) {
  const Netlist nl = load_circuit(o.positional.at(0));
  ExperimentConfig cfg;
  cfg.sim_pairs = o.sim_pairs;
  const ExperimentResult r = run_experiment(
      nl, cfg, InputModel::uniform(nl.num_inputs(), o.p, o.rho));
  Table t({"method", "muErr", "sigErr", "%Err", "maxErr", "time(s)"});
  for (const MethodResult& mr : r.methods) {
    t.add_row({mr.method, strformat("%.5f", mr.err.mu_err),
               strformat("%.5f", mr.err.sigma_err),
               strformat("%.3f", mr.err.pct_err),
               strformat("%.4f", mr.err.max_err),
               strformat("%.3f", mr.seconds + mr.extra_seconds)});
  }
  if (o.csv) {
    t.print_csv(std::cout);
  } else {
    std::printf("circuit %s: %d lines, ground truth = %llu simulated pairs "
                "(%.2fs), avg activity %.4f\n\n",
                nl.name().c_str(), r.stats.num_nodes,
                static_cast<unsigned long long>(cfg.sim_pairs), r.sim_seconds,
                r.sim_avg_activity);
    t.print(std::cout);
  }
  return 0;
}

int cmd_power(const Options& o) {
  const Netlist nl = load_circuit(o.positional.at(0));
  SwitchingAnalyzer an(nl, {},
                       InputModel::uniform(nl.num_inputs(), o.p, o.rho));
  const SwitchingEstimate est = an.estimate();
  std::printf("circuit %s  (p=%.2f rho=%.2f)\n", nl.name().c_str(), o.p,
              o.rho);
  std::printf("avg switching activity  %.5f\n", est.average_activity());
  std::printf("dynamic power           %.3f uW @ 1.8V, 100MHz\n",
              an.dynamic_power_watts(est) * 1e6);
  const CompileStats& cs = an.estimator().compile_stats();
  std::printf("compile %.3fs (%d segment BNs), update %.3f ms\n",
              cs.compile_seconds, cs.num_segments,
              est.stats.propagate_seconds * 1e3);
  return 0;
}

int cmd_convert(const Options& o) {
  const Netlist nl = load_circuit(o.positional.at(0));
  const std::string& out = o.positional.at(1);
  if (ends_with(out, ".bench")) {
    write_bench_file(nl, out);
  } else if (ends_with(out, ".blif")) {
    write_blif_file(nl, out);
  } else {
    throw std::runtime_error("output must end in .bench or .blif");
  }
  std::printf("wrote %s (%d lines)\n", out.c_str(), nl.num_nodes());
  return 0;
}

int run(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  if (cmd == "--version") {
    std::printf("%s\n", obs::tool_version_line("bns").c_str());
    return 0;
  }
  const Options o = parse(argc, argv);
  if (cmd == "list") return cmd_list();
  if (o.positional.empty()) usage();
  if (cmd == "stats") return cmd_stats(o);
  if (cmd == "estimate") return cmd_estimate(o);
  if (cmd == "compare") return cmd_compare(o);
  if (cmd == "power") return cmd_power(o);
  if (cmd == "convert") {
    if (o.positional.size() < 2) usage();
    return cmd_convert(o);
  }
  usage();
}

} // namespace
} // namespace bns

int main(int argc, char** argv) {
  try {
    return bns::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
