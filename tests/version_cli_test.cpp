// End-to-end check that every shipped binary answers --version the same
// way: "<tool> <git describe> (<build type>)" on stdout, exit 0. The
// uniform line is what the CI provenance checks and the serve-layer
// stats/metrics provenance block key off, so a tool drifting to its own
// format (or exiting non-zero) should fail loudly here.
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include <sys/wait.h>

namespace bns {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run_command(const std::string& cmd) {
  RunResult r;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

struct Tool {
  const char* name;   // expected first token of the version line
  const char* binary; // compiled-in path
};

const Tool kTools[] = {
    {"bns", BNS_CLI_BINARY},         {"bns_lint", BNS_LINT_BINARY},
    {"bns_report", BNS_REPORT_BINARY}, {"bns_sweep", BNS_SWEEP_BINARY},
    {"bns_compile", BNS_COMPILE_BINARY}, {"bns_serve", BNS_SERVE_BINARY},
};

TEST(VersionCliTest, EveryToolPrintsOneUniformVersionLine) {
  for (const Tool& t : kTools) {
    const RunResult r =
        run_command(std::string(t.binary) + " --version");
    EXPECT_EQ(r.exit_code, 0) << t.name << ": " << r.output;
    // Exactly one line: "<tool> <describe> (<build type>)".
    const std::string prefix = std::string(t.name) + " ";
    EXPECT_EQ(r.output.compare(0, prefix.size(), prefix), 0)
        << t.name << ": " << r.output;
    EXPECT_NE(r.output.find(" ("), std::string::npos) << r.output;
    EXPECT_EQ(r.output.find('\n'), r.output.size() - 1) << r.output;
  }
}

TEST(VersionCliTest, VersionLinesAgreeOnProvenance) {
  // All six binaries are built from one tree, so everything after the
  // tool name must be identical across them.
  std::string suffix;
  for (const Tool& t : kTools) {
    const RunResult r =
        run_command(std::string(t.binary) + " --version");
    ASSERT_EQ(r.exit_code, 0) << t.name;
    const std::size_t space = r.output.find(' ');
    ASSERT_NE(space, std::string::npos) << r.output;
    const std::string rest = r.output.substr(space + 1);
    if (suffix.empty()) {
      suffix = rest;
    } else {
      EXPECT_EQ(rest, suffix) << t.name;
    }
  }
  EXPECT_FALSE(suffix.empty());
}

} // namespace
} // namespace bns
