// Equivalence of the compiled-schedule engine against the historical
// temporary-factor path, plus the zero-allocation guarantee of the
// update loop and engine-level parallel propagation.
#include "bn/schedule.h"

#include <gtest/gtest.h>

#include <vector>

#include "alloc_hook.h"
#include "bn/junction_tree.h"
#include "obs/trace.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace bns {
namespace {

CompileOptions with_schedule(bool on) {
  CompileOptions opts;
  opts.compile_schedule = on;
  return opts;
}

// Bitwise comparison: the scheduled path is designed to perform the
// same floating-point operations in the same order as the legacy path,
// so results must match exactly, not just within tolerance.
void expect_factors_identical(const Factor& a, const Factor& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.value(i), b.value(i)) << "slot " << i;
  }
}

void expect_all_marginals_identical(const BayesianNetwork& bn,
                                    JunctionTreeEngine& sched,
                                    JunctionTreeEngine& legacy) {
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    expect_factors_identical(sched.marginal(v), legacy.marginal(v));
  }
  EXPECT_EQ(sched.evidence_probability(), legacy.evidence_probability());
}

// Replace every CPT's values (keeping scopes) — the paper's "new input
// statistics" update, exercised at the engine level.
void reroll_cpts(BayesianNetwork& bn, std::uint64_t seed) {
  Rng rng(seed);
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    Factor cpt = bn.cpt(v);
    for (std::size_t i = 0; i < cpt.size(); ++i) {
      cpt.set_value(i, rng.uniform() + 0.05);
    }
    Factor denom = cpt.sum_out(v);
    std::vector<int> st(cpt.vars().size());
    for (std::size_t i = 0; i < cpt.size(); ++i) {
      cpt.states_of(i, st);
      std::vector<int> pst;
      for (std::size_t k = 0; k < cpt.vars().size(); ++k) {
        if (cpt.vars()[k] != v) pst.push_back(st[k]);
      }
      cpt.set_value(i, cpt.value(i) / denom.at(pst));
    }
    bn.set_cpt(v, bn.parents(v), std::move(cpt));
  }
}

class ScheduledVsLegacy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduledVsLegacy, MarginalsIdentical) {
  const std::uint64_t seed = GetParam();
  BayesianNetwork bn =
      testing_helpers::random_bayes_net(24, 3, 4, seed);
  ASSERT_EQ(bn.validate(), "");
  JunctionTreeEngine sched(bn, with_schedule(true));
  JunctionTreeEngine legacy(bn, with_schedule(false));
  sched.load_potentials();
  legacy.load_potentials();
  sched.propagate();
  legacy.propagate();
  expect_all_marginals_identical(bn, sched, legacy);
}

TEST_P(ScheduledVsLegacy, EvidenceIdentical) {
  const std::uint64_t seed = GetParam();
  BayesianNetwork bn =
      testing_helpers::random_bayes_net(20, 3, 3, seed + 7);
  JunctionTreeEngine sched(bn, with_schedule(true));
  JunctionTreeEngine legacy(bn, with_schedule(false));
  for (auto* eng : {&sched, &legacy}) {
    eng->load_potentials();
    eng->set_evidence(3, 1);
    std::vector<double> like(static_cast<std::size_t>(bn.cardinality(11)));
    for (std::size_t s = 0; s < like.size(); ++s) {
      like[s] = 0.25 + 0.5 * static_cast<double>(s) / static_cast<double>(like.size());
    }
    eng->set_soft_evidence(11, like);
    eng->propagate();
  }
  expect_all_marginals_identical(bn, sched, legacy);
}

TEST_P(ScheduledVsLegacy, UpdatePathIdentical) {
  const std::uint64_t seed = GetParam();
  BayesianNetwork bn =
      testing_helpers::random_bayes_net(22, 3, 4, seed + 31);
  JunctionTreeEngine sched(bn, with_schedule(true));
  JunctionTreeEngine legacy(bn, with_schedule(false));
  for (int round = 0; round < 3; ++round) {
    if (round > 0) reroll_cpts(bn, seed * 13 + static_cast<std::uint64_t>(round));
    sched.load_potentials();
    legacy.load_potentials();
    sched.propagate();
    legacy.propagate();
    expect_all_marginals_identical(bn, sched, legacy);
  }
}

TEST_P(ScheduledVsLegacy, ParallelPropagationIdentical) {
  const std::uint64_t seed = GetParam();
  BayesianNetwork bn =
      testing_helpers::random_bayes_net(40, 2, 3, seed + 101);
  JunctionTreeEngine seq(bn, with_schedule(true));
  JunctionTreeEngine par(bn, with_schedule(true));
  ThreadPool pool(4);
  seq.load_potentials();
  par.load_potentials();
  seq.propagate();
  par.propagate(&pool);
  expect_all_marginals_identical(bn, seq, par);
  // Determinism at a fixed thread count: run again, still identical.
  par.load_potentials();
  par.propagate(&pool);
  expect_all_marginals_identical(bn, seq, par);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduledVsLegacy,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(Schedule, UpdateLoopIsAllocationFree) {
  BayesianNetwork bn = testing_helpers::random_bayes_net(30, 3, 4, 99);
  JunctionTreeEngine eng(bn, with_schedule(true));
  // First load compiles the schedule and allocates every buffer.
  eng.load_potentials();
  eng.propagate();
  const std::uint64_t before = alloc_hook::allocation_count();
  for (int round = 0; round < 5; ++round) {
    eng.load_potentials();
    eng.propagate();
  }
  EXPECT_EQ(alloc_hook::allocation_count(), before)
      << "compiled update path must not touch the heap";
}

TEST(Schedule, ParallelUpdateLoopIsAllocationFree) {
  BayesianNetwork bn = testing_helpers::random_bayes_net(30, 3, 4, 99);
  JunctionTreeEngine eng(bn, with_schedule(true));
  ThreadPool pool(2);
  eng.load_potentials();
  eng.propagate(&pool);
  const std::uint64_t before = alloc_hook::allocation_count();
  for (int round = 0; round < 5; ++round) {
    eng.load_potentials();
    eng.propagate(&pool);
  }
  EXPECT_EQ(alloc_hook::allocation_count(), before)
      << "parallel_for submission must not touch the heap";
}

TEST(Schedule, UpdateLoopIsAllocationFreeWithCounterTracing) {
  // Counter-level tracing must not cost the zero-allocation guarantee:
  // recording is a batched relaxed atomic add, never a heap touch. The
  // numerical-health probes (separator scans + per-sweep reduction +
  // histograms) run on this same path and are covered by the same hook.
  BayesianNetwork bn = testing_helpers::random_bayes_net(30, 3, 4, 99);
  obs::Tracer tracer(obs::TraceLevel::Counters);
  CompileOptions opts = with_schedule(true);
  opts.trace = &tracer;
  JunctionTreeEngine eng(bn, opts);
  eng.load_potentials();
  eng.propagate();
  const std::uint64_t msgs0 =
      tracer.metrics().value(obs::Counter::MessagesPassed);
  const std::uint64_t sweeps0 =
      tracer.metrics().hist(obs::Hist::PropagateNs).total();
  const std::uint64_t before = alloc_hook::allocation_count();
  for (int round = 0; round < 5; ++round) {
    eng.load_potentials();
    eng.propagate();
  }
  EXPECT_EQ(alloc_hook::allocation_count(), before)
      << "counter-level tracing must not touch the heap on the update path";
  EXPECT_EQ(tracer.metrics().value(obs::Counter::MessagesPassed),
            msgs0 + 5 * eng.messages_per_propagation());
  EXPECT_EQ(tracer.metrics().value(obs::Counter::ScheduleCacheHits), 5u);
  // The health probes fired inside the zero-allocation window: each
  // propagate() records one sweep-time sample and one min-exponent
  // sample, and the random CPTs here always produce separator cells
  // below 1.0, so the min-exponent gauge is positive.
  EXPECT_EQ(tracer.metrics().hist(obs::Hist::PropagateNs).total(),
            sweeps0 + 5);
  EXPECT_EQ(tracer.metrics().hist(obs::Hist::SepMinNegExp).total(),
            sweeps0 + 5);
  EXPECT_GT(tracer.metrics().value(obs::Counter::SepMinNegExp), 0u);
}

// Reroll only the CPTs of `vars` (same normalization as reroll_cpts),
// returning the changed set — the engine contract for
// reload_incremental's changed_vars argument.
std::vector<VarId> reroll_subset(BayesianNetwork& bn,
                                 std::vector<VarId> vars,
                                 std::uint64_t seed) {
  Rng rng(seed);
  for (VarId v : vars) {
    Factor cpt = bn.cpt(v);
    for (std::size_t i = 0; i < cpt.size(); ++i) {
      cpt.set_value(i, rng.uniform() + 0.05);
    }
    Factor denom = cpt.sum_out(v);
    std::vector<int> st(cpt.vars().size());
    for (std::size_t i = 0; i < cpt.size(); ++i) {
      cpt.states_of(i, st);
      std::vector<int> pst;
      for (std::size_t k = 0; k < cpt.vars().size(); ++k) {
        if (cpt.vars()[k] != v) pst.push_back(st[k]);
      }
      cpt.set_value(i, cpt.value(i) / denom.at(pst));
    }
    bn.set_cpt(v, bn.parents(v), std::move(cpt));
  }
  return vars;
}

TEST(Schedule, IncrementalReloadMatchesFullReload) {
  // Snapshot right after the first load, change a few CPTs, then
  // reload_incremental(changed) must leave the engine in exactly the
  // state a full load_potentials() produces — bitwise, since clean
  // cliques are byte copies of the snapshot and dirty cliques re-run
  // the same load ops.
  BayesianNetwork bn = testing_helpers::random_bayes_net(24, 3, 4, 17);
  JunctionTreeEngine inc(bn, with_schedule(true));
  JunctionTreeEngine full(bn, with_schedule(true));
  inc.load_potentials();
  inc.snapshot_potentials();
  ASSERT_TRUE(inc.has_snapshot());
  inc.propagate();
  full.load_potentials();
  full.propagate();
  expect_all_marginals_identical(bn, inc, full);

  for (int round = 0; round < 3; ++round) {
    const std::vector<VarId> changed = reroll_subset(
        bn, {static_cast<VarId>(2 + round), 9, 15},
        31 * static_cast<std::uint64_t>(round + 1));
    inc.reload_incremental(changed);
    inc.propagate();
    full.load_potentials();
    full.propagate();
    expect_all_marginals_identical(bn, inc, full);
  }

  // Empty change set: a pure snapshot restore is a valid full reload.
  inc.reload_incremental({});
  inc.propagate();
  full.load_potentials();
  full.propagate();
  expect_all_marginals_identical(bn, inc, full);
}

TEST(Schedule, IncrementalReloadLoopIsAllocationFree) {
  BayesianNetwork bn = testing_helpers::random_bayes_net(30, 3, 4, 99);
  JunctionTreeEngine eng(bn, with_schedule(true));
  eng.load_potentials();
  eng.snapshot_potentials();
  eng.propagate();
  const std::vector<VarId> changed = {3, 7, 21};
  // Warm once: the first reload sizes nothing — snapshot_potentials
  // already allocated every buffer — but keep the loop honest.
  eng.reload_incremental(changed);
  eng.propagate();
  const std::uint64_t before = alloc_hook::allocation_count();
  for (int round = 0; round < 5; ++round) {
    eng.reload_incremental(changed);
    eng.propagate();
  }
  EXPECT_EQ(alloc_hook::allocation_count(), before)
      << "incremental reload path must not touch the heap";
}

TEST(Schedule, LegacyFallbackStillWorks) {
  // compile_schedule = false must keep the full lifecycle working (it
  // is the differential-testing oracle).
  BayesianNetwork bn = testing_helpers::random_bayes_net(12, 2, 3, 5);
  JunctionTreeEngine eng(bn, with_schedule(false));
  eng.load_potentials();
  eng.propagate();
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    const Factor m = eng.marginal(v);
    double sum = 0.0;
    for (std::size_t i = 0; i < m.size(); ++i) sum += m.value(i);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

} // namespace
} // namespace bns
