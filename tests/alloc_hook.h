// Test-only instrumentation of the global allocator: alloc_hook.cpp
// replaces ::operator new / ::operator delete with counting versions so
// tests can assert that a code region performs zero heap allocations
// (the compiled-schedule update path guarantees this).
#pragma once

#include <cstdint>

namespace bns::alloc_hook {

// Total number of global operator new / new[] calls in this process so
// far. Take a snapshot before the region under test and compare after.
std::uint64_t allocation_count();

} // namespace bns::alloc_hook
