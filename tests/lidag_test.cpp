#include <gtest/gtest.h>

#include "bn/exact.h"
#include "gen/circuits.h"
#include "gen/generators.h"
#include "lidag/lidag.h"
#include "sim/simulator.h"

namespace bns {
namespace {

TEST(Lidag, StructureMirrorsCircuit) {
  // Theorem 3: parents of a gate-output variable are exactly the
  // switching variables of the gate's input lines.
  const Netlist nl = figure1_circuit();
  const InputModel m = InputModel::uniform(nl.num_inputs());
  const LidagBn lb = build_lidag(nl, m);

  EXPECT_EQ(lb.bn.num_variables(), nl.num_nodes());
  EXPECT_EQ(lb.num_aux, 0);
  EXPECT_EQ(lb.defined_nodes.size(), static_cast<std::size_t>(nl.num_nodes()));
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const VarId v = lb.var_of_node[static_cast<std::size_t>(id)];
    ASSERT_GE(v, 0);
    EXPECT_EQ(lb.bn.cardinality(v), 4);
    std::vector<VarId> expect;
    for (NodeId f : nl.node(id).fanin) {
      expect.push_back(lb.var_of_node[static_cast<std::size_t>(f)]);
    }
    std::vector<VarId> got = lb.bn.parents(v);
    std::sort(expect.begin(), expect.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect) << "line " << nl.node(id).name;
  }
}

TEST(Lidag, QuantifiedNetworkValidates) {
  const Netlist nl = c17();
  const InputModel m = InputModel::uniform(nl.num_inputs(), 0.3, 0.2);
  LidagBn lb = build_lidag(nl, m);
  std::vector<std::array<double, 4>> bd(static_cast<std::size_t>(nl.num_nodes()));
  quantify_lidag(lb, m, bd);
  EXPECT_EQ(lb.bn.validate(), "");
}

TEST(Lidag, WideGateDecompositionPreservesMarginals) {
  // A 7-input NAND must produce the same line marginal whether wide or
  // decomposed (aux variables integrate out exactly).
  Netlist nl("wide");
  std::vector<NodeId> ins;
  for (int i = 0; i < 7; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
  const NodeId y = nl.add_gate(GateType::Nand, "y", ins);
  nl.mark_output(y);
  std::vector<InputSpec> specs;
  for (int i = 0; i < 7; ++i) specs.push_back({0.3 + 0.05 * i, 0.1, -1, 0.0});
  const InputModel m = InputModel::custom(specs);

  LidagOptions narrow;
  narrow.max_fanin = 2; // forces two rounds of parent divorcing
  LidagBn lb = build_lidag(nl, 0, 0, nl.num_nodes(), m, narrow);
  EXPECT_GT(lb.num_aux, 0);
  std::vector<std::array<double, 4>> bd(static_cast<std::size_t>(nl.num_nodes()));
  quantify_lidag(lb, m, bd, nullptr, narrow);
  ASSERT_EQ(lb.bn.validate(), "");

  const Factor got = ve_marginal(lb.bn, lb.var_of_node[static_cast<std::size_t>(y)]);
  const auto exact = exact_transition_dists(nl, m);
  for (int s = 0; s < 4; ++s) {
    EXPECT_NEAR(got.value(static_cast<std::size_t>(s)),
                exact[static_cast<std::size_t>(y)][static_cast<std::size_t>(s)],
                1e-10);
  }
}

TEST(Lidag, SegmentRangeCreatesBoundaryRoots) {
  const Netlist nl = c17(); // inputs 0..4, gates 5..10
  const InputModel m = InputModel::uniform(nl.num_inputs());
  // Build only the last three gates; their out-of-range fanins become
  // Boundary roots.
  const LidagBn lb = build_lidag(nl, 8, 11, m);
  EXPECT_EQ(lb.defined_nodes.size(), 3u);
  int boundary = 0;
  for (const LidagRoot& r : lb.roots) {
    if (r.kind == RootKind::Boundary) {
      ++boundary;
      EXPECT_LT(r.node, 8);
    }
  }
  EXPECT_GT(boundary, 0);
  EXPECT_EQ(lb.bn.validate(), ""); // placeholder priors normalize
}

TEST(Lidag, ContextWindowRebuildsWithoutOwnership) {
  const Netlist nl = c17();
  const InputModel m = InputModel::uniform(nl.num_inputs());
  const LidagBn lb = build_lidag(nl, /*context_begin=*/0, /*begin=*/8,
                                 /*end=*/11, m);
  // All fanins are rebuilt internally, so no Boundary roots remain...
  for (const LidagRoot& r : lb.roots) {
    EXPECT_NE(r.kind, RootKind::Boundary);
  }
  // ...but only the range nodes are owned.
  EXPECT_EQ(lb.defined_nodes.size(), 3u);
  for (NodeId id : lb.defined_nodes) EXPECT_GE(id, 8);
}

TEST(Lidag, ContextPruningSkipsIrrelevantNodes) {
  // Two disjoint cones; a segment over the second cone's gate must not
  // rebuild the first cone even when the window covers it.
  Netlist nl("two");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g1 = nl.add_gate(GateType::And, "g1", {a, a});
  const NodeId g2 = nl.add_gate(GateType::Or, "g2", {b, b});
  nl.mark_output(g1);
  nl.mark_output(g2);
  const InputModel m = InputModel::uniform(2);
  const LidagBn lb = build_lidag(nl, 0, g2, g2 + 1, m);
  EXPECT_EQ(lb.var_of_node[static_cast<std::size_t>(g1)], -1);
  EXPECT_GE(lb.var_of_node[static_cast<std::size_t>(b)], 0);
}

TEST(Lidag, GroupedInputsGetSharedSource) {
  Netlist nl("grp");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId y = nl.add_gate(GateType::Xor, "y", {a, b});
  nl.mark_output(y);
  const InputModel m = InputModel::custom(
      {{0.5, 0.0, 0, 0.1}, {0.5, 0.0, 0, 0.2}}, {{0.6, 0.3}});
  LidagBn lb = build_lidag(nl, m);
  // One hidden source + 3 lines.
  EXPECT_EQ(lb.bn.num_variables(), 4);
  EXPECT_EQ(lb.grouped_inputs.size(), 2u);
  int sources = 0;
  for (const LidagRoot& r : lb.roots) sources += r.kind == RootKind::GroupSource;
  EXPECT_EQ(sources, 1);

  std::vector<std::array<double, 4>> bd(static_cast<std::size_t>(nl.num_nodes()));
  quantify_lidag(lb, m, bd);
  ASSERT_EQ(lb.bn.validate(), "");
  // The XOR of two noisy copies switches iff exactly one copy's noise
  // pattern differs between cycles — check against brute force.
  const auto marg =
      ve_marginal(lb.bn, lb.var_of_node[static_cast<std::size_t>(y)]);
  // Reference: y = n_a xor n_b (source cancels), so P(y=1) = q_a(1-q_b)
  // + q_b(1-q_a) = 0.1*0.8 + 0.2*0.9 = 0.26 at every step.
  EXPECT_NEAR(marg.value(T01) + marg.value(T11), 0.26, 1e-10);
}

TEST(Lidag, ConstantsGetDegeneratePriors) {
  Netlist nl("const");
  const NodeId one = nl.add_const("one", true);
  const NodeId a = nl.add_input("a");
  const NodeId y = nl.add_gate(GateType::And, "y", {one, a});
  nl.mark_output(y);
  const InputModel m = InputModel::uniform(1, 0.3, 0.0);
  LidagBn lb = build_lidag(nl, m);
  std::vector<std::array<double, 4>> bd(static_cast<std::size_t>(nl.num_nodes()));
  quantify_lidag(lb, m, bd);
  // AND with constant 1 passes `a` through.
  const auto marg =
      ve_marginal(lb.bn, lb.var_of_node[static_cast<std::size_t>(y)]);
  const auto expect = transition_distribution(0.3, 0.0);
  for (int s = 0; s < 4; ++s) {
    EXPECT_NEAR(marg.value(static_cast<std::size_t>(s)),
                expect[static_cast<std::size_t>(s)], 1e-12);
  }
}

TEST(Lidag, BoundaryLinkQuantification) {
  // Segment 2 of c17 with two boundary roots linked: the conditional
  // CPT must reproduce the forwarded joint exactly.
  const Netlist nl = c17();
  const InputModel m = InputModel::uniform(nl.num_inputs());
  LidagBn lb = build_lidag(nl, 8, 11, m);
  std::vector<NodeId> bnodes;
  for (const LidagRoot& r : lb.roots) {
    if (r.kind == RootKind::Boundary) bnodes.push_back(r.node);
  }
  std::sort(bnodes.begin(), bnodes.end());
  ASSERT_GE(bnodes.size(), 2u);
  const std::pair<NodeId, NodeId> link{bnodes[1], bnodes[0]};
  link_boundary_roots(lb, std::span<const std::pair<NodeId, NodeId>>(&link, 1));

  // Forward an arbitrary (but consistent) joint.
  std::array<double, 16> joint{};
  double z = 0.0;
  for (int i = 0; i < 16; ++i) z += joint[static_cast<std::size_t>(i)] = 1.0 + i;
  for (auto& v : joint) v /= z;
  std::vector<std::array<double, 4>> bd(static_cast<std::size_t>(nl.num_nodes()));
  for (auto& d : bd) d = {0.25, 0.25, 0.25, 0.25};
  // Marginals of both linked lines from the joint (the parent's prior
  // and the child's fallback must be consistent with it).
  auto& parent_marg = bd[static_cast<std::size_t>(bnodes[0])];
  auto& child_marg = bd[static_cast<std::size_t>(bnodes[1])];
  parent_marg = {};
  child_marg = {};
  for (int sa = 0; sa < 4; ++sa) {
    for (int sb = 0; sb < 4; ++sb) {
      parent_marg[static_cast<std::size_t>(sa)] += joint[static_cast<std::size_t>(sa * 4 + sb)];
      child_marg[static_cast<std::size_t>(sb)] += joint[static_cast<std::size_t>(sa * 4 + sb)];
    }
  }

  const BoundaryJointFn provider = [&](NodeId a, NodeId b,
                                       std::array<double, 16>& out) {
    EXPECT_EQ(a, bnodes[0]);
    EXPECT_EQ(b, bnodes[1]);
    out = joint;
    return true;
  };
  quantify_lidag(lb, m, bd, provider);
  ASSERT_EQ(lb.bn.validate(), "");

  // P(child | parent) * P(parent) must reassemble the joint.
  const VarId pv = lb.var_of_node[static_cast<std::size_t>(bnodes[0])];
  const VarId cv = lb.var_of_node[static_cast<std::size_t>(bnodes[1])];
  const Factor got = lb.bn.cpt(cv).product(lb.bn.cpt(pv));
  std::vector<int> st(2);
  for (int sa = 0; sa < 4; ++sa) {
    for (int sb = 0; sb < 4; ++sb) {
      st[pv < cv ? 0 : 1] = sa;
      st[pv < cv ? 1 : 0] = sb;
      EXPECT_NEAR(got.at(st), joint[static_cast<std::size_t>(sa * 4 + sb)], 1e-12);
    }
  }
}

} // namespace
} // namespace bns
