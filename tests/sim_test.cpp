#include <gtest/gtest.h>

#include <cmath>

#include "gen/circuits.h"
#include "gen/generators.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace bns {
namespace {

TEST(BernoulliWord, MatchesProbability) {
  Rng rng(1);
  for (double p : {0.0, 0.1, 0.25, 0.5, 0.73, 1.0}) {
    std::uint64_t ones = 0;
    const int words = 4000;
    for (int i = 0; i < words; ++i) {
      ones += static_cast<std::uint64_t>(std::popcount(bernoulli_word(rng, p)));
    }
    EXPECT_NEAR(static_cast<double>(ones) / (words * 64.0), p, 0.01) << p;
  }
}

TEST(BernoulliWord, BitsIndependentAcrossLanes) {
  // Adjacent lanes must be uncorrelated: E[b_i b_j] ≈ p^2.
  Rng rng(2);
  const double p = 0.3;
  int both = 0;
  const int words = 20000;
  for (int i = 0; i < words; ++i) {
    const std::uint64_t w = bernoulli_word(rng, p);
    both += std::popcount(w & (w >> 1));
  }
  EXPECT_NEAR(static_cast<double>(both) / (words * 63.0), p * p, 0.01);
}

TEST(Simulator, InputStatisticsReproduced) {
  // A pass-through circuit exposes the generated input streams.
  Netlist nl("wires");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  nl.mark_output(nl.add_gate(GateType::Buf, "oa", {a}));
  nl.mark_output(nl.add_gate(GateType::Buf, "ob", {b}));

  const InputModel m = InputModel::custom({{0.7, 0.0, -1, 0.0},
                                           {0.4, 0.5, -1, 0.0}});
  const SimResult r = SwitchingSimulator(nl).run(m, 4'000'000, 3);

  EXPECT_NEAR(r.signal_prob(a), 0.7, 3e-3);
  const auto expect_b = transition_distribution(0.4, 0.5);
  const auto got_b = r.transition_dist(b);
  for (int s = 0; s < 4; ++s) {
    EXPECT_NEAR(got_b[static_cast<std::size_t>(s)],
                expect_b[static_cast<std::size_t>(s)], 3e-3);
  }
  EXPECT_NEAR(r.activity(b), activity_of(expect_b), 3e-3);
}

TEST(Simulator, GroupedInputsAreCorrelated) {
  Netlist nl("pair");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId eq = nl.add_gate(GateType::Xnor, "eq", {a, b});
  nl.mark_output(eq);

  // Same source, 5% flips each: P(a == b) = 0.95^2 + 0.05^2 = 0.905.
  const InputModel m = InputModel::custom(
      {{0.5, 0.0, 0, 0.05}, {0.5, 0.0, 0, 0.05}}, {{0.5, 0.0}});
  const SimResult r = SwitchingSimulator(nl).run(m, 4'000'000, 5);
  EXPECT_NEAR(r.signal_prob(eq), 0.905, 3e-3);
}

TEST(Simulator, TransitionCountsSumToSamples) {
  const Netlist nl = c17();
  const InputModel m = InputModel::uniform(nl.num_inputs());
  const SimResult r = SwitchingSimulator(nl).run(m, 100'000, 9);
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const auto& c = r.counts(id);
    EXPECT_EQ(c[0] + c[1] + c[2] + c[3], r.num_samples());
  }
}

TEST(Simulator, DeterministicInSeed) {
  const Netlist nl = c17();
  const InputModel m = InputModel::uniform(nl.num_inputs());
  const SimResult r1 = SwitchingSimulator(nl).run(m, 100'000, 42);
  const SimResult r2 = SwitchingSimulator(nl).run(m, 100'000, 42);
  const SimResult r3 = SwitchingSimulator(nl).run(m, 100'000, 43);
  bool any_diff = false;
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    EXPECT_EQ(r1.counts(id), r2.counts(id));
    any_diff |= r1.counts(id) != r3.counts(id);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Simulator, MatchesExactEnumerationOnC17) {
  const Netlist nl = c17();
  std::vector<InputSpec> specs;
  for (int i = 0; i < nl.num_inputs(); ++i) {
    specs.push_back({0.25 + 0.1 * i, 0.1 * i, -1, 0.0});
  }
  const InputModel m = InputModel::custom(specs);
  const auto exact = exact_transition_dists(nl, m);
  const SimResult r = SwitchingSimulator(nl).run(m, 8'000'000, 17);
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const auto got = r.transition_dist(id);
    for (int s = 0; s < 4; ++s) {
      EXPECT_NEAR(got[static_cast<std::size_t>(s)],
                  exact[static_cast<std::size_t>(id)][static_cast<std::size_t>(s)],
                  2e-3)
          << "node " << id << " state " << s;
    }
  }
}

TEST(Simulator, LutCircuit) {
  // A LUT implementing a 2:1 mux must behave like its gate equivalent.
  Netlist nl("lutmux");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId s = nl.add_input("s");
  TruthTable mux(3); // inputs a(bit0), b(bit1), s(bit2): out = s ? b : a
  for (std::uint64_t mt = 0; mt < 8; ++mt) {
    const bool av = mt & 1;
    const bool bv = mt & 2;
    const bool sv = mt & 4;
    mux.set_value(mt, sv ? bv : av);
  }
  nl.mark_output(nl.add_lut("y", {a, b, s}, mux));

  const InputModel m = InputModel::uniform(3, 0.5, 0.0);
  const auto exact = exact_activities(nl, m);
  const SimResult r = SwitchingSimulator(nl).run(m, 2'000'000, 23);
  EXPECT_NEAR(r.activity(nl.find("y")), exact.back(), 3e-3);
}

TEST(ExactEnumeration, KnownSingleGateValues) {
  // AND of two independent equiprobable inputs: P(y=1) = 1/4 at each
  // time; activity = 2 * 1/4 * 3/4 = 0.375.
  Netlist nl("and2");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId y = nl.add_gate(GateType::And, "y", {a, b});
  nl.mark_output(y);
  const auto act = exact_activities(nl, InputModel::uniform(2));
  EXPECT_NEAR(act[static_cast<std::size_t>(y)], 0.375, 1e-12);
  // XOR stays equiprobable: activity 0.5.
  Netlist nx("xor2");
  const NodeId xa = nx.add_input("a");
  const NodeId xb = nx.add_input("b");
  const NodeId xy = nx.add_gate(GateType::Xor, "y", {xa, xb});
  nx.mark_output(xy);
  EXPECT_NEAR(exact_activities(nx, InputModel::uniform(2))
                  [static_cast<std::size_t>(xy)],
              0.5, 1e-12);
}

} // namespace
} // namespace bns
