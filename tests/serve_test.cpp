// Tests for the bns_serve layers: the JSON-lines protocol handler
// (request validation, error envelopes, cache behavior, concurrent
// clients vs in-process Session answers) and the Unix-domain-socket
// Server (end-to-end request over a real socket, graceful drain via
// request_stop() and via the signal-handler notify fd).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "session/session.h"

namespace bns::serve {
namespace {

bool ok(const std::string& response) {
  return response.compare(0, 10, "{\"ok\":true") == 0;
}

bool failed(const std::string& response) {
  return response.compare(0, 11, "{\"ok\":false") == 0;
}

// --- protocol ---------------------------------------------------------

TEST(ServeProtocolTest, PingPongs) {
  SessionCache cache;
  EXPECT_EQ(handle_request(R"({"op":"ping"})", cache),
            R"({"ok":true,"op":"ping"})");
}

TEST(ServeProtocolTest, EstimateMatchesInProcessSession) {
  SessionCache cache;
  const std::string response = handle_request(
      R"({"op":"estimate","model":"c17","p":0.3,"rho":0.1})", cache);
  ASSERT_TRUE(ok(response)) << response;

  Session s = Session::open("c17");
  const SwitchingEstimate want =
      s.estimate(InputModel::uniform(s.netlist().num_inputs(), 0.3, 0.1));
  // propagate_seconds is timing noise; the activity (an exact double
  // formatted with the same %.17g writer) must match string-exactly.
  EXPECT_NE(response.find("\"average_activity\":" +
                          obs::json_number(want.average_activity())),
            std::string::npos)
      << response;
}

TEST(ServeProtocolTest, PerInputSpecsAccepted) {
  SessionCache cache;
  const std::string response = handle_request(
      R"({"op":"estimate","model":"c17","specs":[{"p":0.1},{"p":0.2},)"
      R"({"p":0.3},{"p":0.4},{"p":0.5,"rho":0.2}]})",
      cache);
  EXPECT_TRUE(ok(response)) << response;
}

TEST(ServeProtocolTest, SweepMatchesSessionSweep) {
  SessionCache cache;
  const std::string response = handle_request(
      R"({"op":"sweep","model":"c17","scenarios":3,"p_from":0.2,"p_to":0.8})",
      cache);
  ASSERT_TRUE(ok(response)) << response;

  Session s = Session::open("c17");
  LinearSweepSpec spec;
  spec.scenarios = 3;
  spec.p_from = 0.2;
  spec.p_to = 0.8;
  const SweepResult want = s.sweep(spec);
  for (const SwitchingEstimate& est : want.estimates) {
    EXPECT_NE(response.find(obs::json_number(est.average_activity())),
              std::string::npos)
        << response;
  }
}

TEST(ServeProtocolTest, ConditionalAnswersOrExplains) {
  SessionCache cache;
  const std::string response = handle_request(
      R"({"op":"conditional","model":"c17","target":10,"given":0,"state":1})",
      cache);
  // Either a distribution or the documented same-segment error; both
  // are well-formed envelopes.
  EXPECT_TRUE(ok(response) || failed(response)) << response;
  if (ok(response)) {
    EXPECT_NE(response.find("\"dist\":["), std::string::npos) << response;
  }
}

TEST(ServeProtocolTest, StatsDescribesModel) {
  SessionCache cache;
  const std::string response =
      handle_request(R"({"op":"stats","model":"c17"})", cache);
  ASSERT_TRUE(ok(response)) << response;
  EXPECT_NE(response.find("\"inputs\":5"), std::string::npos) << response;
  EXPECT_NE(response.find("\"from_artifact\":false"), std::string::npos)
      << response;
}

TEST(ServeProtocolTest, MalformedRequestsGetErrorEnvelopesNotCrashes) {
  SessionCache cache;
  const std::vector<std::string> bad = {
      "",                                           // not JSON
      "garbage",                                    // not JSON
      "[1,2,3]",                                    // not an object
      "{}",                                         // missing op
      R"({"op":42})",                               // op not a string
      R"({"op":"launch_missiles"})",                // unknown op
      R"({"op":"estimate"})",                       // missing model
      R"({"op":"estimate","model":7})",             // model not a string
      R"({"op":"estimate","model":"no_such_circuit_xyz"})", // load fails
      R"({"op":"estimate","model":"c17","p":1.5})",         // p out of range
      R"({"op":"estimate","model":"c17","p":-0.1})",        // p out of range
      R"({"op":"estimate","model":"c17","p":"half"})",      // p not a number
      R"({"op":"estimate","model":"c17","rho":-2})",        // rho inadmissible
      R"({"op":"estimate","model":"c17","specs":[{"p":0.5}]})", // wrong count
      R"({"op":"estimate","model":"c17","specs":"all"})",   // specs not array
      R"({"op":"sweep","model":"c17","scenarios":0})",      // below range
      R"({"op":"sweep","model":"c17","scenarios":2.5})",    // not integral
      R"({"op":"sweep","model":"c17","scenarios":1000001})",// above range
      R"({"op":"sweep","model":"c17","vary_input":99})",    // no such input
      R"({"op":"conditional","model":"c17","target":10,"given":0,"state":9})",
      R"({"op":"conditional","model":"c17","target":"NOPE","given":0,"state":1})",
      R"({"op":"conditional","model":"c17","target":10000,"given":0,"state":1})",
  };
  for (const std::string& line : bad) {
    const std::string response = handle_request(line, cache);
    EXPECT_TRUE(failed(response)) << "request `" << line << "` -> " << response;
    EXPECT_NE(response.find("\"error\":"), std::string::npos) << response;
  }
  // The cache (and its c17 session) must still be healthy afterwards.
  EXPECT_TRUE(ok(handle_request(R"({"op":"estimate","model":"c17"})", cache)));
}

TEST(ServeProtocolTest, ConcurrentClientsGetIdenticalAnswers) {
  SessionCache cache;
  Session ref = Session::open("c17");
  const std::string want = obs::json_number(
      ref.estimate(InputModel::uniform(ref.netlist().num_inputs(), 0.3, 0.0))
          .average_activity());

  constexpr int kThreads = 8;
  constexpr int kRequests = 4;
  std::vector<std::thread> threads;
  std::vector<int> good(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &good, &want, t] {
      for (int r = 0; r < kRequests; ++r) {
        const std::string response = handle_request(
            R"({"op":"estimate","model":"c17","p":0.3})", cache);
        if (ok(response) && response.find(want) != std::string::npos) {
          ++good[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(good[static_cast<std::size_t>(t)], kRequests) << "thread " << t;
  }
}

TEST(ServeProtocolTest, CacheCountsOneLoadPerModel) {
  obs::Tracer tracer(obs::TraceLevel::Counters);
  SessionCache cache({}, &tracer);
  handle_request(R"({"op":"stats","model":"c17"})", cache);
  handle_request(R"({"op":"stats","model":"c17"})", cache);
  handle_request(R"({"op":"estimate","model":"c17"})", cache);
  EXPECT_EQ(tracer.metrics().value(obs::Counter::ServeRequests), 3u);
  EXPECT_EQ(tracer.metrics().value(obs::Counter::ServeErrors), 0u);
}

// --- server (real socket) ---------------------------------------------

std::string test_socket_path(const std::string& tag) {
  return testing::TempDir() + "bns_serve_test_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

int connect_to(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0)
      << path << ": " << std::strerror(errno);
  return fd;
}

std::string roundtrip(int fd, const std::string& request) {
  const std::string line = request + "\n";
  EXPECT_EQ(::send(fd, line.data(), line.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(line.size()));
  std::string response;
  char chunk[4096];
  while (response.find('\n') == std::string::npos) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  const std::size_t nl = response.find('\n');
  return nl == std::string::npos ? response : response.substr(0, nl);
}

TEST(ServeServerTest, AnswersOverSocketAndDrainsOnRequestStop) {
  ServerOptions opts;
  opts.socket_path = test_socket_path("basic");
  opts.threads = 2;
  Server server(opts);
  ASSERT_NO_THROW(server.start());
  std::thread runner([&server] { server.run(); });

  const int fd = connect_to(opts.socket_path);
  EXPECT_EQ(roundtrip(fd, R"({"op":"ping"})"), R"({"ok":true,"op":"ping"})");
  const std::string est =
      roundtrip(fd, R"({"op":"estimate","model":"c17","p":0.5})");
  EXPECT_TRUE(ok(est)) << est;
  // Two requests pipelined on one connection, answered in order.
  const std::string two = R"({"op":"ping"})" "\n" R"({"op":"ping"})" "\n";
  EXPECT_EQ(::send(fd, two.data(), two.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(two.size()));
  std::string both;
  char chunk[4096];
  while (std::count(both.begin(), both.end(), '\n') < 2) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    both.append(chunk, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(both,
            R"({"ok":true,"op":"ping"})" "\n" R"({"ok":true,"op":"ping"})" "\n");
  ::close(fd);

  server.request_stop();
  runner.join(); // run() returning at all IS the drain assertion
}

TEST(ServeServerTest, GarbageOverSocketGetsErrorResponse) {
  ServerOptions opts;
  opts.socket_path = test_socket_path("garbage");
  Server server(opts);
  ASSERT_NO_THROW(server.start());
  std::thread runner([&server] { server.run(); });

  const int fd = connect_to(opts.socket_path);
  const std::string response = roundtrip(fd, "this is not json at all");
  EXPECT_TRUE(failed(response)) << response;
  ::close(fd);

  server.request_stop();
  runner.join();
}

TEST(ServeServerTest, NotifyFdByteDrainsLikeASignalHandler) {
  ServerOptions opts;
  opts.socket_path = test_socket_path("notify");
  Server server(opts);
  ASSERT_NO_THROW(server.start());
  std::thread runner([&server] { server.run(); });

  const int fd = connect_to(opts.socket_path);
  EXPECT_EQ(roundtrip(fd, R"({"op":"ping"})"), R"({"ok":true,"op":"ping"})");
  ::close(fd);

  // Exactly what the SIGTERM handler does: one byte, nothing else.
  const char b = 's';
  ASSERT_EQ(::write(server.notify_fd(), &b, 1), 1);
  runner.join();
}

TEST(ServeServerTest, ConcurrentSocketClientsAllAnswered) {
  ServerOptions opts;
  opts.socket_path = test_socket_path("concurrent");
  opts.threads = 4;
  Server server(opts);
  ASSERT_NO_THROW(server.start());
  std::thread runner([&server] { server.run(); });

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<std::string> responses(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&opts, &responses, c] {
      const int fd = connect_to(opts.socket_path);
      responses[static_cast<std::size_t>(c)] =
          roundtrip(fd, R"({"op":"estimate","model":"c17","p":0.4})");
      ::close(fd);
    });
  }
  for (std::thread& th : clients) th.join();

  Session ref = Session::open("c17");
  const std::string want = obs::json_number(
      ref.estimate(InputModel::uniform(ref.netlist().num_inputs(), 0.4, 0.0))
          .average_activity());
  for (int c = 0; c < kClients; ++c) {
    const std::string& r = responses[static_cast<std::size_t>(c)];
    EXPECT_TRUE(ok(r)) << "client " << c << ": " << r;
    EXPECT_NE(r.find(want), std::string::npos) << r;
  }

  server.request_stop();
  runner.join();
}

TEST(ServeServerTest, StartFailsOnBadSocketPath) {
  ServerOptions opts;
  opts.socket_path = "/nonexistent-dir/deeply/nested/x.sock";
  Server server(opts);
  EXPECT_THROW(server.start(), std::runtime_error);
}

} // namespace
} // namespace bns::serve
