// Tests for the bns_serve layers: the JSON-lines protocol handler
// (request validation, error envelopes, trace-id propagation, RED
// metrics, cache behavior, concurrent clients vs in-process Session
// answers) and the Unix-domain-socket Server (end-to-end request over
// a real socket, graceful drain via request_stop() and via the
// signal-handler notify fd, recorder dump via the 'u' wake byte).
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "alloc_hook.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/sinks.h"
#include "obs/trace.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "session/session.h"

namespace bns::serve {
namespace {

bool ok(const std::string& response) {
  return response.compare(0, 10, "{\"ok\":true") == 0;
}

bool failed(const std::string& response) {
  return response.compare(0, 11, "{\"ok\":false") == 0;
}

// The echoed trace id: exactly 16 hex digits, the response's last member.
std::string trace_id_of(const std::string& response) {
  const std::string key = "\"trace_id\":\"";
  const std::size_t pos = response.rfind(key);
  if (pos == std::string::npos) return "";
  return response.substr(pos + key.size(), 16);
}

// --- protocol ---------------------------------------------------------

TEST(ServeProtocolTest, PingPongs) {
  SessionCache cache;
  const std::string response = handle_request(R"({"op":"ping"})", cache);
  EXPECT_EQ(response.compare(0, 22, R"({"ok":true,"op":"ping")"), 0)
      << response;
  // A daemon-generated trace id is echoed even without a client one.
  EXPECT_EQ(trace_id_of(response).size(), 16u) << response;
  EXPECT_NE(obs::parse_trace_id(trace_id_of(response)), 0u) << response;
}

TEST(ServeProtocolTest, EstimateMatchesInProcessSession) {
  SessionCache cache;
  const std::string response = handle_request(
      R"({"op":"estimate","model":"c17","p":0.3,"rho":0.1})", cache);
  ASSERT_TRUE(ok(response)) << response;

  Session s = Session::open("c17");
  const SwitchingEstimate want =
      s.estimate(InputModel::uniform(s.netlist().num_inputs(), 0.3, 0.1));
  // propagate_seconds is timing noise; the activity (an exact double
  // formatted with the same %.17g writer) must match string-exactly.
  EXPECT_NE(response.find("\"average_activity\":" +
                          obs::json_number(want.average_activity())),
            std::string::npos)
      << response;
}

TEST(ServeProtocolTest, PerInputSpecsAccepted) {
  SessionCache cache;
  const std::string response = handle_request(
      R"({"op":"estimate","model":"c17","specs":[{"p":0.1},{"p":0.2},)"
      R"({"p":0.3},{"p":0.4},{"p":0.5,"rho":0.2}]})",
      cache);
  EXPECT_TRUE(ok(response)) << response;
}

TEST(ServeProtocolTest, SweepMatchesSessionSweep) {
  SessionCache cache;
  const std::string response = handle_request(
      R"({"op":"sweep","model":"c17","scenarios":3,"p_from":0.2,"p_to":0.8})",
      cache);
  ASSERT_TRUE(ok(response)) << response;

  Session s = Session::open("c17");
  LinearSweepSpec spec;
  spec.scenarios = 3;
  spec.p_from = 0.2;
  spec.p_to = 0.8;
  const SweepResult want = s.sweep(spec);
  for (const SwitchingEstimate& est : want.estimates) {
    EXPECT_NE(response.find(obs::json_number(est.average_activity())),
              std::string::npos)
        << response;
  }
}

TEST(ServeProtocolTest, ConditionalAnswersOrExplains) {
  SessionCache cache;
  const std::string response = handle_request(
      R"({"op":"conditional","model":"c17","target":10,"given":0,"state":1})",
      cache);
  // Either a distribution or the documented same-segment error; both
  // are well-formed envelopes.
  EXPECT_TRUE(ok(response) || failed(response)) << response;
  if (ok(response)) {
    EXPECT_NE(response.find("\"dist\":["), std::string::npos) << response;
  }
}

TEST(ServeProtocolTest, StatsDescribesModel) {
  SessionCache cache;
  const std::string response =
      handle_request(R"({"op":"stats","model":"c17"})", cache);
  ASSERT_TRUE(ok(response)) << response;
  EXPECT_NE(response.find("\"inputs\":5"), std::string::npos) << response;
  EXPECT_NE(response.find("\"from_artifact\":false"), std::string::npos)
      << response;
}

TEST(ServeProtocolTest, MalformedRequestsGetErrorEnvelopesNotCrashes) {
  SessionCache cache;
  const std::vector<std::string> bad = {
      "",                                           // not JSON
      "garbage",                                    // not JSON
      "[1,2,3]",                                    // not an object
      "{}",                                         // missing op
      R"({"op":42})",                               // op not a string
      R"({"op":"launch_missiles"})",                // unknown op
      R"({"op":"estimate"})",                       // missing model
      R"({"op":"estimate","model":7})",             // model not a string
      R"({"op":"estimate","model":"no_such_circuit_xyz"})", // load fails
      R"({"op":"estimate","model":"c17","p":1.5})",         // p out of range
      R"({"op":"estimate","model":"c17","p":-0.1})",        // p out of range
      R"({"op":"estimate","model":"c17","p":"half"})",      // p not a number
      R"({"op":"estimate","model":"c17","rho":-2})",        // rho inadmissible
      R"({"op":"estimate","model":"c17","specs":[{"p":0.5}]})", // wrong count
      R"({"op":"estimate","model":"c17","specs":"all"})",   // specs not array
      R"({"op":"sweep","model":"c17","scenarios":0})",      // below range
      R"({"op":"sweep","model":"c17","scenarios":2.5})",    // not integral
      R"({"op":"sweep","model":"c17","scenarios":1000001})",// above range
      R"({"op":"sweep","model":"c17","vary_input":99})",    // no such input
      R"({"op":"conditional","model":"c17","target":10,"given":0,"state":9})",
      R"({"op":"conditional","model":"c17","target":"NOPE","given":0,"state":1})",
      R"({"op":"conditional","model":"c17","target":10000,"given":0,"state":1})",
  };
  for (const std::string& line : bad) {
    const std::string response = handle_request(line, cache);
    EXPECT_TRUE(failed(response)) << "request `" << line << "` -> " << response;
    EXPECT_NE(response.find("\"error\":"), std::string::npos) << response;
  }
  // The cache (and its c17 session) must still be healthy afterwards.
  EXPECT_TRUE(ok(handle_request(R"({"op":"estimate","model":"c17"})", cache)));
}

TEST(ServeProtocolTest, ConcurrentClientsGetIdenticalAnswers) {
  SessionCache cache;
  Session ref = Session::open("c17");
  const std::string want = obs::json_number(
      ref.estimate(InputModel::uniform(ref.netlist().num_inputs(), 0.3, 0.0))
          .average_activity());

  constexpr int kThreads = 8;
  constexpr int kRequests = 4;
  std::vector<std::thread> threads;
  std::vector<int> good(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &good, &want, t] {
      for (int r = 0; r < kRequests; ++r) {
        const std::string response = handle_request(
            R"({"op":"estimate","model":"c17","p":0.3})", cache);
        if (ok(response) && response.find(want) != std::string::npos) {
          ++good[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(good[static_cast<std::size_t>(t)], kRequests) << "thread " << t;
  }
}

TEST(ServeProtocolTest, CacheCountsOneLoadPerModel) {
  obs::Tracer tracer(obs::TraceLevel::Counters);
  SessionCache cache({}, &tracer);
  handle_request(R"({"op":"stats","model":"c17"})", cache);
  handle_request(R"({"op":"stats","model":"c17"})", cache);
  handle_request(R"({"op":"estimate","model":"c17"})", cache);
  EXPECT_EQ(tracer.metrics().value(obs::Counter::ServeRequests), 3u);
  EXPECT_EQ(tracer.metrics().value(obs::Counter::ServeErrors), 0u);
}

// --- request tracing ---------------------------------------------------

TEST(ServeProtocolTest, ClientTraceIdEchoedOnEveryOp) {
  SessionCache cache;
  const std::vector<std::string> requests = {
      R"({"op":"ping","trace_id":"deadbeef"})",
      R"({"op":"estimate","model":"c17","p":0.3,"trace_id":"deadbeef"})",
      R"({"op":"sweep","model":"c17","scenarios":2,"trace_id":"deadbeef"})",
      R"({"op":"conditional","model":"c17","target":10,"given":0,)"
      R"("state":1,"trace_id":"deadbeef"})",
      R"({"op":"stats","model":"c17","trace_id":"deadbeef"})",
      R"({"op":"metrics","trace_id":"deadbeef"})",
  };
  for (const std::string& req : requests) {
    const std::string response = handle_request(req, cache);
    EXPECT_EQ(trace_id_of(response), "00000000deadbeef")
        << req << " -> " << response;
  }
}

TEST(ServeProtocolTest, GeneratedTraceIdsDifferPerRequest) {
  SessionCache cache;
  const std::string a = trace_id_of(handle_request(R"({"op":"ping"})", cache));
  const std::string b = trace_id_of(handle_request(R"({"op":"ping"})", cache));
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(b.size(), 16u);
  EXPECT_NE(a, b);
}

TEST(ServeProtocolTest, MalformedTraceIdIsAProtocolError) {
  SessionCache cache;
  for (const std::string& req : {
           std::string(R"({"op":"ping","trace_id":"not-hex"})"),
           std::string(R"({"op":"ping","trace_id":""})"),
           std::string(R"({"op":"ping","trace_id":42})"),
           std::string(R"({"op":"ping","trace_id":"11112222333344445"})"),
       }) {
    const std::string response = handle_request(req, cache);
    EXPECT_TRUE(failed(response)) << req << " -> " << response;
    // The error envelope still carries a (generated) id to correlate.
    EXPECT_EQ(trace_id_of(response).size(), 16u) << response;
  }
}

// The tentpole's end-to-end guarantee: a client-supplied trace id shows
// up on the daemon's session.* spans for estimate, sweep AND
// conditional, nested under the serve.request span of the same trace.
TEST(ServeProtocolTest, ClientTraceIdReachesSessionSpans) {
  obs::Tracer tracer(obs::TraceLevel::Spans);
  std::ostringstream spans;
  obs::JsonLinesSink sink(spans);
  tracer.add_sink(&sink);
  SessionOptions sopts;
  sopts.estimator.trace = &tracer;
  SessionCache cache(sopts, &tracer);

  ASSERT_TRUE(ok(handle_request(
      R"({"op":"estimate","model":"c17","trace_id":"abc001"})", cache)));
  ASSERT_TRUE(ok(handle_request(
      R"({"op":"sweep","model":"c17","scenarios":2,"trace_id":"abc002"})",
      cache)));
  handle_request(R"({"op":"conditional","model":"c17","target":10,)"
                 R"("given":0,"state":1,"trace_id":"abc003"})",
                 cache);

  struct Want {
    const char* span;
    const char* trace_id;
    bool seen = false;
    std::string parent;
    std::string request_span_id; // serve.request span of the same trace
  };
  std::vector<Want> wants = {{"session.estimate", "0000000000abc001"},
                             {"session.sweep", "0000000000abc002"},
                             {"session.conditional", "0000000000abc003"}};
  std::istringstream in(spans.str());
  std::string line;
  while (std::getline(in, line)) {
    const std::optional<obs::JsonValue> v = obs::json_parse(line);
    ASSERT_TRUE(v && v->is_object()) << line;
    for (Want& w : wants) {
      if (v->string_or("trace_id", "") != w.trace_id) continue;
      if (v->string_or("name", "") == w.span) {
        w.seen = true;
        w.parent = v->string_or("parent_span", "");
      } else if (v->string_or("name", "") == "serve.request") {
        w.request_span_id = v->string_or("span_id", "");
      }
    }
  }
  for (const Want& w : wants) {
    EXPECT_TRUE(w.seen) << w.span << " span missing for " << w.trace_id
                        << "\n" << spans.str();
    // The session span nests directly under its request's span.
    EXPECT_EQ(w.parent, w.request_span_id) << w.span;
    EXPECT_NE(w.request_span_id, "") << w.span;
  }
}

// --- RED metrics and the metrics op ------------------------------------

TEST(ServeProtocolTest, MetricsOpReportsRedCountsAndCacheEvents) {
  obs::ServeMetrics red;
  SessionCache cache({}, nullptr, ServeTelemetry{&red, nullptr});

  ASSERT_TRUE(ok(handle_request(R"({"op":"ping"})", cache)));
  ASSERT_TRUE(
      ok(handle_request(R"({"op":"estimate","model":"c17"})", cache)));
  ASSERT_TRUE(
      ok(handle_request(R"({"op":"estimate","model":"c17"})", cache)));
  ASSERT_TRUE(failed(handle_request(R"({"op":"nope"})", cache)));
  ASSERT_TRUE(failed(
      handle_request(R"({"op":"estimate","model":"c17","p":9})", cache)));

  const std::string response = handle_request(R"({"op":"metrics"})", cache);
  ASSERT_TRUE(ok(response)) << response;
  const std::optional<obs::JsonValue> v = obs::json_parse(response);
  ASSERT_TRUE(v && v->is_object()) << response;
  const obs::JsonValue* doc = v->find("metrics");
  ASSERT_TRUE(doc && doc->is_object()) << response;
  EXPECT_GE(doc->number_or("uptime_seconds", -1.0), 0.0);

  const obs::JsonValue* ops = doc->find("ops");
  ASSERT_TRUE(ops && ops->is_array());
  for (const obs::JsonValue& op : ops->as_array()) {
    const std::string name = op.string_or("op", "");
    if (name == "ping") {
      EXPECT_EQ(op.number_or("requests", -1), 1);
    } else if (name == "estimate") {
      EXPECT_EQ(op.number_or("requests", -1), 3);
      EXPECT_EQ(op.find("errors")->number_or("protocol", -1), 1);
      EXPECT_EQ(op.find("latency_ns")->number_or("count", -1), 3);
    } else if (name == "invalid") {
      EXPECT_EQ(op.number_or("requests", -1), 1);
      EXPECT_EQ(op.find("errors")->number_or("protocol", -1), 1);
    }
  }
  const obs::JsonValue* cachev = doc->find("cache");
  ASSERT_TRUE(cachev && cachev->is_object());
  EXPECT_EQ(cachev->number_or("miss", -1), 1);       // first estimate
  EXPECT_EQ(cachev->number_or("hit", -1), 2);        // 2nd + the bad-p one
  EXPECT_EQ(cachev->number_or("revalidate", -1), 0);

  // The Prometheus rendering rides along as an escaped string.
  const obs::JsonValue* prom = v->find("prometheus");
  ASSERT_TRUE(prom && prom->is_string()) << response;
  EXPECT_NE(prom->as_string().find("bns_serve_requests_total{op=\"ping\"} 1"),
            std::string::npos)
      << prom->as_string();
}

TEST(ServeProtocolTest, StatsCarriesSchemaUptimeAndProvenance) {
  SessionCache cache;
  const std::string response =
      handle_request(R"({"op":"stats","model":"c17"})", cache);
  ASSERT_TRUE(ok(response)) << response;
  const std::optional<obs::JsonValue> v = obs::json_parse(response);
  ASSERT_TRUE(v && v->is_object()) << response;
  EXPECT_EQ(v->number_or("schema_version", -1), kServeProtocolVersion);
  EXPECT_GE(v->number_or("uptime_seconds", -1.0), 0.0);
  const obs::JsonValue* prov = v->find("provenance");
  ASSERT_TRUE(prov && prov->is_object()) << response;
  EXPECT_NE(prov->string_or("git_describe", ""), "");
  EXPECT_NE(prov->string_or("build_type", ""), "");
  EXPECT_NE(prov->string_or("hostname", ""), "");
}

// --- cache revalidation and eviction ------------------------------------

std::string write_tiny_bench(const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  f << "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
  return path;
}

TEST(ServeProtocolTest, TouchedMtimeRevalidatesExactlyOnce) {
  const std::string path =
      write_tiny_bench(testing::TempDir() + "bns_revalidate_" +
                       std::to_string(::getpid()) + ".bench");
  obs::ServeMetrics red;
  SessionCache cache({}, nullptr, ServeTelemetry{&red, nullptr});
  const std::string req =
      R"({"op":"stats","model":")" + path + R"("})";

  ASSERT_TRUE(ok(handle_request(req, cache)));  // miss (first load)
  ASSERT_TRUE(ok(handle_request(req, cache)));  // hit
  ASSERT_TRUE(ok(handle_request(req, cache)));  // hit

  // Bump st_mtim by a whole second so the nanosecond mtime must differ.
  struct stat st{};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  struct timespec times[2] = {st.st_atim, st.st_mtim};
  times[1].tv_sec += 1;
  ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0);

  ASSERT_TRUE(ok(handle_request(req, cache)));  // revalidate (reload)
  ASSERT_TRUE(ok(handle_request(req, cache)));  // hit again

  const obs::ServeMetricsSnapshot s = red.snapshot();
  EXPECT_EQ(s.cache_count(obs::CacheEvent::Miss), 1u);
  EXPECT_EQ(s.cache_count(obs::CacheEvent::Revalidate), 1u);
  EXPECT_EQ(s.cache_count(obs::CacheEvent::Hit), 3u);
  EXPECT_EQ(s.cache_count(obs::CacheEvent::Evict), 0u);
  std::remove(path.c_str());
}

TEST(ServeProtocolTest, LruEvictsBeyondCapacity) {
  obs::ServeMetrics red;
  SessionCache cache({}, nullptr, ServeTelemetry{&red, nullptr},
                     /*max_entries=*/1);
  ASSERT_TRUE(ok(handle_request(R"({"op":"stats","model":"c17"})", cache)));
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(
      ok(handle_request(R"({"op":"stats","model":"pcler8"})", cache)));
  EXPECT_EQ(cache.size(), 1u); // c17 evicted
  const obs::ServeMetricsSnapshot s = red.snapshot();
  EXPECT_EQ(s.cache_count(obs::CacheEvent::Evict), 1u);
  EXPECT_EQ(s.cache_count(obs::CacheEvent::Miss), 2u);
  // The evicted model is simply a miss again — still served correctly.
  ASSERT_TRUE(ok(handle_request(R"({"op":"stats","model":"c17"})", cache)));
  EXPECT_EQ(red.snapshot().cache_count(obs::CacheEvent::Miss), 3u);
}

TEST(ServeProtocolTest, SameKeyReloadAtCapacityEvictsNothingUnrelated) {
  const std::string path =
      write_tiny_bench(testing::TempDir() + "bns_samekey_" +
                       std::to_string(::getpid()) + ".bench");
  obs::ServeMetrics red;
  SessionCache cache({}, nullptr, ServeTelemetry{&red, nullptr},
                     /*max_entries=*/2);
  const std::string file_req = R"({"op":"stats","model":")" + path + R"("})";

  ASSERT_TRUE(ok(handle_request(file_req, cache)));               // miss
  ASSERT_TRUE(ok(handle_request(R"({"op":"stats","model":"c17"})", cache)));
  ASSERT_EQ(cache.size(), 2u);

  // A same-key reload (mtime changed) replaces its own slot in place:
  // it must not evict the unrelated entry, nor grow past capacity.
  struct stat st{};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  struct timespec times[2] = {st.st_atim, st.st_mtim};
  times[1].tv_sec += 1;
  ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0);
  ASSERT_TRUE(ok(handle_request(file_req, cache)));               // revalidate
  EXPECT_EQ(cache.size(), 2u);
  {
    const obs::ServeMetricsSnapshot s = red.snapshot();
    EXPECT_EQ(s.cache_count(obs::CacheEvent::Revalidate), 1u);
    EXPECT_EQ(s.cache_count(obs::CacheEvent::Evict), 0u);
    EXPECT_EQ(s.cache_count(obs::CacheEvent::Miss), 2u);
  }
  // c17 survived the reload: looking it up is a hit, not a miss.
  ASSERT_TRUE(ok(handle_request(R"({"op":"stats","model":"c17"})", cache)));
  EXPECT_EQ(red.snapshot().cache_count(obs::CacheEvent::Miss), 2u);

  // A genuinely new key at capacity evicts exactly one LRU entry.
  ASSERT_TRUE(
      ok(handle_request(R"({"op":"stats","model":"pcler8"})", cache)));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(red.snapshot().cache_count(obs::CacheEvent::Evict), 1u);
  std::remove(path.c_str());
}

TEST(ServeProtocolTest, VanishedModelFileEvictsAndAnswersArtifactError) {
  const std::string path =
      write_tiny_bench(testing::TempDir() + "bns_vanished_" +
                       std::to_string(::getpid()) + ".bench");
  obs::ServeMetrics red;
  SessionCache cache({}, nullptr, ServeTelemetry{&red, nullptr});
  const std::string req = R"({"op":"stats","model":")" + path + R"("})";

  ASSERT_TRUE(ok(handle_request(req, cache)));
  ASSERT_EQ(cache.size(), 1u);

  // Deleting the backing file must not leave a stale session serving
  // hits: the entry is evicted and the request fails as an artifact
  // error (counted in its own class), not a protocol or internal one.
  ASSERT_EQ(std::remove(path.c_str()), 0);
  const std::string response = handle_request(req, cache);
  EXPECT_TRUE(failed(response)) << response;
  EXPECT_NE(response.find("is gone"), std::string::npos) << response;
  EXPECT_EQ(cache.size(), 0u);
  {
    const obs::ServeMetricsSnapshot s = red.snapshot();
    EXPECT_EQ(s.cache_count(obs::CacheEvent::Evict), 1u);
    EXPECT_EQ(s.op(obs::ServeOp::Stats)
                  .errors[static_cast<std::size_t>(obs::ErrorClass::Artifact)],
              1u);
  }
  // Asking again is still an artifact error — but with nothing cached
  // there is nothing further to evict.
  EXPECT_TRUE(failed(handle_request(req, cache)));
  EXPECT_EQ(red.snapshot().cache_count(obs::CacheEvent::Evict), 1u);
  // A built-in name keeps resolving: no backing file, no revalidation.
  EXPECT_TRUE(ok(handle_request(R"({"op":"stats","model":"c17"})", cache)));
}

// The SessionCache bugfix contract: loads run outside the cache mutex.
// A slow first-touch of one model (stalled via the test hook) must not
// block a concurrent first-touch of a *different* model.
TEST(ServeProtocolTest, SlowLoadOfOneModelDoesNotBlockAnother) {
  SessionCache cache;
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<int> stalled{0};
  cache.set_load_hook([&](const std::string& model) {
    if (model == "c432") {
      stalled.fetch_add(1);
      gate.wait();
    }
  });

  std::thread slow([&cache] {
    EXPECT_TRUE(
        ok(handle_request(R"({"op":"stats","model":"c432"})", cache)));
  });
  while (stalled.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // c432's load is provably in flight; c17 must load to completion
  // anyway. (Before the fix this deadlocked: the stalled load held the
  // cache mutex.)
  EXPECT_TRUE(ok(handle_request(R"({"op":"stats","model":"c17"})", cache)));
  EXPECT_EQ(stalled.load(), 1);
  release.set_value();
  slow.join();
  EXPECT_EQ(cache.size(), 2u);
}

// And the dedupe half: concurrent first-touches of the *same* model
// share one load — later arrivals join it (a Hit) instead of compiling
// their own copy.
TEST(ServeProtocolTest, ConcurrentFirstTouchesOfSameModelShareOneLoad) {
  obs::ServeMetrics red;
  SessionCache cache({}, nullptr, ServeTelemetry{&red, nullptr});
  std::atomic<int> loads{0};
  cache.set_load_hook([&loads](const std::string&) { loads.fetch_add(1); });

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<int> good(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &good, t] {
      if (ok(handle_request(R"({"op":"stats","model":"c432"})", cache))) {
        good[static_cast<std::size_t>(t)] = 1;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(good[static_cast<std::size_t>(t)], 1) << "thread " << t;
  }
  EXPECT_EQ(loads.load(), 1);
  EXPECT_EQ(cache.size(), 1u);
  const obs::ServeMetricsSnapshot s = red.snapshot();
  EXPECT_EQ(s.cache_count(obs::CacheEvent::Miss), 1u);
  EXPECT_EQ(s.cache_count(obs::CacheEvent::Hit),
            static_cast<std::uint64_t>(kThreads - 1));
}

// --- sweep_chunk (the coordinator's batch op) ---------------------------

TEST(ServeProtocolTest, SweepChunkMatchesInProcessSweepStringExactly) {
  SessionCache cache;
  // Chunk covering scenarios 2..4 of a 6-scenario sweep over c17: the
  // p values are the exact doubles linear_scenario_p produces, shipped
  // the way the coordinator ships them (%.17g).
  LinearSweepSpec spec;
  spec.scenarios = 6;
  spec.p_from = 0.2;
  spec.p_to = 0.8;
  std::string req =
      R"({"op":"sweep_chunk","model":"c17","chunk_id":1,"scenario_base":2,)"
      R"("vary_input":0,"rho":0,"specs":[)";
  for (int s = 2; s <= 4; ++s) {
    if (s > 2) req += ",";
    req += "{\"p\":" + obs::json_number(linear_scenario_p(spec, s)) + "}";
  }
  req += "]}";
  const std::string response = handle_request(req, cache);
  ASSERT_TRUE(ok(response)) << response;
  EXPECT_NE(response.find("\"chunk_id\":1"), std::string::npos) << response;

  Session ref = Session::open("c17");
  const std::vector<InputModel> models =
      make_linear_scenarios(spec, ref.netlist().num_inputs());
  const SweepResult want = ref.sweep(models);
  for (int s = 2; s <= 4; ++s) {
    // Absolute scenario numbering and string-exact p / activity.
    const std::string line =
        "{\"scenario\":" + std::to_string(s) +
        ",\"p\":" + obs::json_number(models[static_cast<std::size_t>(s)]
                                         .spec(0)
                                         .p) +
        ",\"average_activity\":" +
        obs::json_number(
            want.estimates[static_cast<std::size_t>(s)].average_activity());
    EXPECT_NE(response.find(line), std::string::npos)
        << "missing " << line << " in " << response;
  }
}

TEST(ServeProtocolTest, SweepChunkMalformedRequestsRejected) {
  SessionCache cache;
  const std::vector<std::string> bad = {
      // missing chunk_id
      R"({"op":"sweep_chunk","model":"c17","specs":[{"p":0.5}]})",
      // negative scenario_base
      R"({"op":"sweep_chunk","model":"c17","chunk_id":0,"scenario_base":-1,)"
      R"("specs":[{"p":0.5}]})",
      // missing specs
      R"({"op":"sweep_chunk","model":"c17","chunk_id":0})",
      // specs not an array
      R"({"op":"sweep_chunk","model":"c17","chunk_id":0,"specs":"all"})",
      // empty specs
      R"({"op":"sweep_chunk","model":"c17","chunk_id":0,"specs":[]})",
      // spec entry not an object
      R"({"op":"sweep_chunk","model":"c17","chunk_id":0,"specs":[0.5]})",
      // p out of range
      R"({"op":"sweep_chunk","model":"c17","chunk_id":0,"specs":[{"p":1.5}]})",
      // vary_input out of range
      R"({"op":"sweep_chunk","model":"c17","chunk_id":0,"vary_input":99,)"
      R"("specs":[{"p":0.5}]})",
  };
  for (const std::string& line : bad) {
    const std::string response = handle_request(line, cache);
    EXPECT_TRUE(failed(response)) << "request `" << line << "` -> "
                                  << response;
  }
  // The cache still serves a well-formed chunk afterwards.
  EXPECT_TRUE(ok(handle_request(
      R"({"op":"sweep_chunk","model":"c17","chunk_id":0,"specs":[{"p":0.5}]})",
      cache)));
}

// make_linear_scenarios edge cases through the daemon: one-scenario
// sweeps answer p_from (no 0/0 step), degenerate ranges hold p
// constant, and the last input is as sweepable as the first — all
// string-exact against the in-process sweep.
TEST(ServeProtocolTest, SweepEdgeCasesMatchInProcessStringExactly) {
  SessionCache cache;
  Session ref = Session::open("c17");
  const int last = ref.netlist().num_inputs() - 1;

  struct Case {
    const char* name;
    LinearSweepSpec spec;
  };
  std::vector<Case> cases;
  { // scenarios:1 — the varied input answers p_from, not NaN
    LinearSweepSpec s;
    s.scenarios = 1;
    s.p_from = 0.3;
    s.p_to = 0.9;
    cases.push_back({"one_scenario", s});
  }
  { // p_from == p_to — every scenario identical
    LinearSweepSpec s;
    s.scenarios = 4;
    s.p_from = 0.42;
    s.p_to = 0.42;
    cases.push_back({"degenerate_range", s});
  }
  { // vary_input at the last index
    LinearSweepSpec s;
    s.scenarios = 3;
    s.vary_input = last;
    cases.push_back({"last_input", s});
  }

  for (const Case& c : cases) {
    const std::string req =
        R"({"op":"sweep","model":"c17","scenarios":)" +
        std::to_string(c.spec.scenarios) +
        ",\"vary_input\":" + std::to_string(c.spec.vary_input) +
        ",\"p_from\":" + obs::json_number(c.spec.p_from) +
        ",\"p_to\":" + obs::json_number(c.spec.p_to) + "}";
    const std::string response = handle_request(req, cache);
    ASSERT_TRUE(ok(response)) << c.name << ": " << response;
    ASSERT_EQ(response.find("nan"), std::string::npos)
        << c.name << ": " << response;

    const std::vector<InputModel> models =
        make_linear_scenarios(c.spec, ref.netlist().num_inputs());
    const SweepResult want = ref.sweep(models);
    for (std::size_t s = 0; s < models.size(); ++s) {
      const std::string line =
          "{\"scenario\":" + std::to_string(s) + ",\"p\":" +
          obs::json_number(models[s].spec(c.spec.vary_input).p) +
          ",\"average_activity\":" +
          obs::json_number(want.estimates[s].average_activity());
      EXPECT_NE(response.find(line), std::string::npos)
          << c.name << ": missing " << line << " in " << response;
    }
  }
}

// --- flight recorder through the request path ---------------------------

TEST(ServeProtocolTest, RecorderCapturesRequestSummaries) {
  obs::FlightRecorder recorder(8);
  SessionCache cache({}, nullptr, ServeTelemetry{nullptr, &recorder});
  ASSERT_TRUE(ok(handle_request(
      R"({"op":"estimate","model":"c17","trace_id":"c0ffee"})", cache)));
  ASSERT_TRUE(failed(handle_request(R"({"op":"nope"})", cache)));

  const std::vector<obs::RequestRecord> snap = recorder.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].op, obs::ServeOp::Estimate);
  EXPECT_EQ(snap[0].trace_id, 0xc0ffeeu);
  EXPECT_STREQ(snap[0].model, "c17");
  EXPECT_EQ(snap[0].error, obs::ErrorClass::None);
  EXPECT_EQ(snap[1].op, obs::ServeOp::Invalid);
  EXPECT_EQ(snap[1].error, obs::ErrorClass::Protocol);
  EXPECT_NE(snap[1].trace_id, 0u); // generated ids are recorded too

  std::ostringstream os;
  recorder.dump_jsonl(os);
  EXPECT_NE(os.str().find("\"trace_id\":\"0000000000c0ffee\""),
            std::string::npos)
      << os.str();
}

// Telemetry must not add allocations to steady-state request handling:
// N pings with Counters-level tracer + RED + recorder wired cost
// exactly as many allocations as N pings with telemetry off.
TEST(ServeProtocolTest, TelemetryAddsNoAllocationsToSteadyStatePings) {
  constexpr int kWarm = 8;
  constexpr int kPings = 64;
  const std::string req = R"({"op":"ping"})";

  SessionCache bare;
  for (int i = 0; i < kWarm; ++i) handle_request(req, bare);
  const std::uint64_t bare_before = alloc_hook::allocation_count();
  for (int i = 0; i < kPings; ++i) handle_request(req, bare);
  const std::uint64_t bare_cost =
      alloc_hook::allocation_count() - bare_before;

  obs::Tracer tracer(obs::TraceLevel::Counters);
  obs::ServeMetrics red;
  obs::FlightRecorder recorder(64);
  SessionCache wired({}, &tracer, ServeTelemetry{&red, &recorder});
  for (int i = 0; i < kWarm; ++i) handle_request(req, wired);
  const std::uint64_t wired_before = alloc_hook::allocation_count();
  for (int i = 0; i < kPings; ++i) handle_request(req, wired);
  const std::uint64_t wired_cost =
      alloc_hook::allocation_count() - wired_before;

  EXPECT_EQ(wired_cost, bare_cost);
  EXPECT_EQ(red.snapshot().op(obs::ServeOp::Ping).requests,
            static_cast<std::uint64_t>(kWarm + kPings));
}

// --- server (real socket) ---------------------------------------------

std::string test_socket_path(const std::string& tag) {
  return testing::TempDir() + "bns_serve_test_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

int connect_to(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0)
      << path << ": " << std::strerror(errno);
  return fd;
}

std::string roundtrip(int fd, const std::string& request) {
  const std::string line = request + "\n";
  EXPECT_EQ(::send(fd, line.data(), line.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(line.size()));
  std::string response;
  char chunk[4096];
  while (response.find('\n') == std::string::npos) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  const std::size_t nl = response.find('\n');
  return nl == std::string::npos ? response : response.substr(0, nl);
}

TEST(ServeServerTest, AnswersOverSocketAndDrainsOnRequestStop) {
  ServerOptions opts;
  opts.socket_path = test_socket_path("basic");
  opts.threads = 2;
  Server server(opts);
  ASSERT_NO_THROW(server.start());
  std::thread runner([&server] { server.run(); });

  const int fd = connect_to(opts.socket_path);
  {
    const std::string pong = roundtrip(fd, R"({"op":"ping"})");
    EXPECT_EQ(pong.compare(0, 22, R"({"ok":true,"op":"ping")"), 0) << pong;
    EXPECT_EQ(trace_id_of(pong).size(), 16u) << pong;
  }
  const std::string est =
      roundtrip(fd, R"({"op":"estimate","model":"c17","p":0.5})");
  EXPECT_TRUE(ok(est)) << est;
  // Two requests pipelined on one connection, answered in order.
  const std::string two = R"({"op":"ping"})" "\n" R"({"op":"ping"})" "\n";
  EXPECT_EQ(::send(fd, two.data(), two.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(two.size()));
  std::string both;
  char chunk[4096];
  while (std::count(both.begin(), both.end(), '\n') < 2) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    both.append(chunk, static_cast<std::size_t>(n));
  }
  {
    std::istringstream lines(both);
    std::string line;
    int answered = 0;
    while (std::getline(lines, line)) {
      EXPECT_EQ(line.compare(0, 22, R"({"ok":true,"op":"ping")"), 0) << line;
      EXPECT_EQ(trace_id_of(line).size(), 16u) << line;
      ++answered;
    }
    EXPECT_EQ(answered, 2) << both;
  }
  ::close(fd);

  server.request_stop();
  runner.join(); // run() returning at all IS the drain assertion
}

TEST(ServeServerTest, GarbageOverSocketGetsErrorResponse) {
  ServerOptions opts;
  opts.socket_path = test_socket_path("garbage");
  Server server(opts);
  ASSERT_NO_THROW(server.start());
  std::thread runner([&server] { server.run(); });

  const int fd = connect_to(opts.socket_path);
  const std::string response = roundtrip(fd, "this is not json at all");
  EXPECT_TRUE(failed(response)) << response;
  ::close(fd);

  server.request_stop();
  runner.join();
}

TEST(ServeServerTest, NotifyFdByteDrainsLikeASignalHandler) {
  ServerOptions opts;
  opts.socket_path = test_socket_path("notify");
  Server server(opts);
  ASSERT_NO_THROW(server.start());
  std::thread runner([&server] { server.run(); });

  const int fd = connect_to(opts.socket_path);
  {
    const std::string pong = roundtrip(fd, R"({"op":"ping"})");
    EXPECT_EQ(pong.compare(0, 22, R"({"ok":true,"op":"ping")"), 0) << pong;
  }
  ::close(fd);

  // Exactly what the SIGTERM handler does: one byte, nothing else.
  const char b = 's';
  ASSERT_EQ(::write(server.notify_fd(), &b, 1), 1);
  runner.join();
}

TEST(ServeServerTest, RequestDumpFiresCallbackAndKeepsServing) {
  obs::FlightRecorder recorder(16);
  std::atomic<int> dumps{0};
  ServerOptions opts;
  opts.socket_path = test_socket_path("dump");
  opts.telemetry.recorder = &recorder;
  opts.on_dump = [&dumps] { dumps.fetch_add(1); };
  Server server(opts);
  ASSERT_NO_THROW(server.start());
  std::thread runner([&server] { server.run(); });

  const int fd = connect_to(opts.socket_path);
  const std::string first =
      roundtrip(fd, R"({"op":"ping","trace_id":"feedface"})");
  EXPECT_EQ(trace_id_of(first), "00000000feedface") << first;

  // What the SIGUSR1 handler does: ask for a dump, then keep serving.
  server.request_dump();
  for (int i = 0; dumps.load() == 0 && i < 200; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(dumps.load(), 1);
  const std::string second = roundtrip(fd, R"({"op":"ping"})");
  EXPECT_EQ(second.compare(0, 22, R"({"ok":true,"op":"ping")"), 0) << second;
  ::close(fd);

  // The recorder saw both requests, the client-supplied id included.
  const std::vector<obs::RequestRecord> snap = recorder.snapshot();
  EXPECT_GE(snap.size(), 2u);
  bool saw_client_id = false;
  for (const obs::RequestRecord& r : snap) {
    if (r.trace_id == 0xfeedfaceu) saw_client_id = true;
  }
  EXPECT_TRUE(saw_client_id);

  server.request_stop();
  runner.join();
}

TEST(ServeServerTest, ConcurrentSocketClientsAllAnswered) {
  ServerOptions opts;
  opts.socket_path = test_socket_path("concurrent");
  opts.threads = 4;
  Server server(opts);
  ASSERT_NO_THROW(server.start());
  std::thread runner([&server] { server.run(); });

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<std::string> responses(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&opts, &responses, c] {
      const int fd = connect_to(opts.socket_path);
      responses[static_cast<std::size_t>(c)] =
          roundtrip(fd, R"({"op":"estimate","model":"c17","p":0.4})");
      ::close(fd);
    });
  }
  for (std::thread& th : clients) th.join();

  Session ref = Session::open("c17");
  const std::string want = obs::json_number(
      ref.estimate(InputModel::uniform(ref.netlist().num_inputs(), 0.4, 0.0))
          .average_activity());
  for (int c = 0; c < kClients; ++c) {
    const std::string& r = responses[static_cast<std::size_t>(c)];
    EXPECT_TRUE(ok(r)) << "client " << c << ": " << r;
    EXPECT_NE(r.find(want), std::string::npos) << r;
  }

  server.request_stop();
  runner.join();
}

TEST(ServeServerTest, StartFailsOnBadSocketPath) {
  ServerOptions opts;
  opts.socket_path = "/nonexistent-dir/deeply/nested/x.sock";
  Server server(opts);
  EXPECT_THROW(server.start(), std::runtime_error);
}

} // namespace
} // namespace bns::serve
