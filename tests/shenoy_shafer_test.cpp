// Cross-check of the Shenoy–Shafer engine against Hugin propagation and
// brute-force enumeration: two independently derived message-passing
// architectures over the same junction tree must agree exactly.
#include <gtest/gtest.h>

#include "bn/exact.h"
#include "bn/shenoy_shafer.h"
#include "gen/circuits.h"
#include "lidag/lidag.h"
#include "test_helpers.h"

namespace bns {
namespace {

using testing_helpers::random_bayes_net;

class ShenoyVsHugin : public ::testing::TestWithParam<int> {};

TEST_P(ShenoyVsHugin, MarginalsAgree) {
  const BayesianNetwork bn = random_bayes_net(
      9 + GetParam() % 4, 3, 3,
      static_cast<std::uint64_t>(GetParam()) * 4099 + 5);
  ShenoyShaferEngine ss(bn);
  ss.reset_potentials();
  ss.propagate();
  JunctionTreeEngine hugin(bn);
  hugin.reset_potentials();
  hugin.propagate();
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    EXPECT_NEAR(ss.marginal(v).max_abs_diff(hugin.marginal(v)), 0.0, 1e-10)
        << "v" << v;
  }
}

TEST_P(ShenoyVsHugin, EvidenceAgrees) {
  const BayesianNetwork bn = random_bayes_net(
      8, 2, 3, static_cast<std::uint64_t>(GetParam()) * 733 + 19);
  const Evidence ev = {{1, 1}, {5, 0}};

  ShenoyShaferEngine ss(bn);
  ss.reset_potentials();
  for (const auto& [v, s] : ev) ss.set_evidence(v, s);
  ss.propagate();

  const auto expect = brute_force_marginals(bn, ev);
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    EXPECT_NEAR(ss.marginal(v).max_abs_diff(expect[static_cast<std::size_t>(v)]),
                0.0, 1e-10);
  }
  EXPECT_NEAR(ss.evidence_probability(), ve_evidence_probability(bn, ev),
              1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShenoyVsHugin, ::testing::Range(1, 9));

TEST(ShenoyShafer, LidagExampleMatchesHugin) {
  const Netlist nl = figure1_circuit();
  const InputModel m = InputModel::uniform(nl.num_inputs(), 0.35, 0.25);
  LidagBn lb = build_lidag(nl, m);
  std::vector<std::array<double, 4>> bd(static_cast<std::size_t>(nl.num_nodes()));
  quantify_lidag(lb, m, bd);

  ShenoyShaferEngine ss(lb.bn);
  ss.reset_potentials();
  ss.propagate();
  JunctionTreeEngine hugin(lb.bn);
  hugin.reset_potentials();
  hugin.propagate();
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const VarId v = lb.var_of_node[static_cast<std::size_t>(id)];
    EXPECT_NEAR(ss.marginal(v).max_abs_diff(hugin.marginal(v)), 0.0, 1e-12);
  }
}

TEST(ShenoyShafer, RepropagationAfterNewCpts) {
  BayesianNetwork bn;
  const VarId a = bn.add_variable("a", 2);
  Factor pa({a}, {2});
  pa.set_value(0, 0.7);
  pa.set_value(1, 0.3);
  bn.set_cpt(a, {}, pa);
  ShenoyShaferEngine ss(bn);
  ss.reset_potentials();
  ss.propagate();
  EXPECT_NEAR(ss.marginal(a).value(1), 0.3, 1e-12);
  Factor pa2({a}, {2});
  pa2.set_value(0, 0.1);
  pa2.set_value(1, 0.9);
  bn.set_cpt(a, {}, pa2);
  ss.reset_potentials();
  ss.propagate();
  EXPECT_NEAR(ss.marginal(a).value(1), 0.9, 1e-12);
}

} // namespace
} // namespace bns
