#include <gtest/gtest.h>

#include "gen/benchmarks.h"
#include "gen/circuits.h"
#include "gen/generators.h"
#include "netlist/bench_io.h"
#include "sim/simulator.h"

namespace bns {
namespace {

TEST(Benchmarks, SuiteHasNineteenCircuitsInTableOrder) {
  const auto& suite = benchmark_suite();
  ASSERT_EQ(suite.size(), 19u);
  EXPECT_EQ(suite.front().name, "c17");
  EXPECT_EQ(suite.back().name, "pcler8");
  int iscas = 0;
  int mcnc = 0;
  for (const auto& b : suite) {
    (b.family == "iscas85" ? iscas : mcnc)++;
  }
  EXPECT_EQ(iscas, 11);
  EXPECT_EQ(mcnc, 8);
}

TEST(Benchmarks, Table2NamesAreTheTenLargeIscas) {
  const auto names = table2_names();
  ASSERT_EQ(names.size(), 10u);
  for (const auto& n : names) {
    EXPECT_EQ(benchmark_info(n).family, "iscas85");
    EXPECT_NE(n, "c17");
  }
}

class SuiteCircuit : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteCircuit, BuildsWithDeclaredInterface) {
  const BenchmarkInfo& info = benchmark_info(GetParam());
  const Netlist nl = make_benchmark(GetParam());
  EXPECT_EQ(nl.name(), info.name);
  EXPECT_EQ(nl.num_inputs(), info.paper_inputs)
      << "PI count must match the published circuit";
  if (info.origin == "random") {
    EXPECT_EQ(nl.num_outputs(), info.paper_outputs);
    EXPECT_EQ(nl.num_gates(), info.paper_gates);
  } else {
    // Structural generators approximate gate counts but must be in the
    // same size regime (0.4x .. 2.5x).
    EXPECT_GT(nl.num_gates(), info.paper_gates * 2 / 5);
    EXPECT_LT(nl.num_gates(), info.paper_gates * 5 / 2);
  }
}

TEST_P(SuiteCircuit, Deterministic) {
  const Netlist a = make_benchmark(GetParam());
  const Netlist b = make_benchmark(GetParam());
  EXPECT_EQ(write_bench_string(a), write_bench_string(b));
}

TEST_P(SuiteCircuit, BenchRoundTripPreservesFunction) {
  const Netlist a = make_benchmark(GetParam());
  const Netlist b = read_bench_string(write_bench_string(a), a.name());
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  const InputModel m = InputModel::uniform(a.num_inputs());
  const SimResult ra = SwitchingSimulator(a).run(m, 64 * 64, 9);
  const SimResult rb = SwitchingSimulator(b).run(m, 64 * 64, 9);
  // Compare outputs by name (node ids may differ after re-parsing).
  for (NodeId out : a.outputs()) {
    const NodeId bout = b.find(a.node(out).name);
    ASSERT_NE(bout, kInvalidNode);
    EXPECT_EQ(ra.counts(out), rb.counts(bout)) << a.node(out).name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, SuiteCircuit,
    ::testing::Values("c17", "c432", "c499", "c880", "c1355", "c1908",
                      "c2670", "c3540", "c5315", "c6288", "c7552", "alu4",
                      "malu4", "max_flat", "voter", "b9", "count", "comp",
                      "pcler8"));

TEST(Benchmarks, UnknownNameThrows) {
  EXPECT_THROW(make_benchmark("c9999"), std::invalid_argument);
  EXPECT_THROW(benchmark_info("c9999"), std::invalid_argument);
}

// --- generator functional checks -------------------------------------------

TEST(Generators, RippleAdderAdds) {
  const int bits = 4;
  const Netlist nl = ripple_adder(bits);
  // Exhaustively check a + b + cin on all 512 input combinations using
  // the bit-parallel evaluator through exact enumeration of outputs.
  std::vector<bool> vals(static_cast<std::size_t>(nl.num_nodes()));
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      for (int cin = 0; cin < 2; ++cin) {
        for (int i = 0; i < bits; ++i) {
          vals[static_cast<std::size_t>(nl.find("a" + std::to_string(i)))] = (a >> i) & 1;
          vals[static_cast<std::size_t>(nl.find("b" + std::to_string(i)))] = (b >> i) & 1;
        }
        vals[static_cast<std::size_t>(nl.find("cin"))] = cin != 0;
        for (NodeId id = 0; id < nl.num_nodes(); ++id) {
          const Node& n = nl.node(id);
          if (n.type == GateType::Input) continue;
          bool in[4];
          for (std::size_t k = 0; k < n.fanin.size(); ++k) {
            in[k] = vals[static_cast<std::size_t>(n.fanin[k])];
          }
          vals[static_cast<std::size_t>(id)] =
              eval_gate(n.type, std::span<const bool>(in, n.fanin.size()));
        }
        int sum = 0;
        for (std::size_t k = 0; k < nl.outputs().size(); ++k) {
          if (vals[static_cast<std::size_t>(nl.outputs()[k])]) sum |= 1 << k;
        }
        EXPECT_EQ(sum, a + b + cin) << a << "+" << b << "+" << cin;
      }
    }
  }
}

TEST(Generators, ArrayMultiplierMultiplies) {
  const int bits = 3;
  const Netlist nl = array_multiplier(bits);
  ASSERT_EQ(nl.num_outputs(), 2 * bits);
  std::vector<bool> vals(static_cast<std::size_t>(nl.num_nodes()));
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      for (int i = 0; i < bits; ++i) {
        vals[static_cast<std::size_t>(nl.find("a" + std::to_string(i)))] = (a >> i) & 1;
        vals[static_cast<std::size_t>(nl.find("b" + std::to_string(i)))] = (b >> i) & 1;
      }
      for (NodeId id = 0; id < nl.num_nodes(); ++id) {
        const Node& n = nl.node(id);
        if (n.type == GateType::Input) continue;
        bool in[4];
        for (std::size_t k = 0; k < n.fanin.size(); ++k) {
          in[k] = vals[static_cast<std::size_t>(n.fanin[k])];
        }
        vals[static_cast<std::size_t>(id)] =
            eval_gate(n.type, std::span<const bool>(in, n.fanin.size()));
      }
      int prod = 0;
      for (std::size_t k = 0; k < nl.outputs().size(); ++k) {
        if (vals[static_cast<std::size_t>(nl.outputs()[k])]) prod |= 1 << k;
      }
      EXPECT_EQ(prod, a * b) << a << "*" << b;
    }
  }
}

TEST(Generators, ExpandXorToNandRemovesXors) {
  const Netlist src = sec_corrector(8, 4);
  const Netlist dst = expand_xor_to_nand(src);
  for (NodeId id = 0; id < dst.num_nodes(); ++id) {
    EXPECT_NE(dst.node(id).type, GateType::Xor);
    EXPECT_NE(dst.node(id).type, GateType::Xnor);
  }
  EXPECT_GT(dst.num_gates(), src.num_gates());
}

TEST(Generators, SecCorrectorFixesSingleBitErrors) {
  // Inject an error on data bit i; the corrected output must equal the
  // original word when the parity bits are consistent.
  const int data = 8;
  const int parity = 4;
  const Netlist nl = sec_corrector(data, parity);
  auto code = [&](int i) { return (i % ((1 << parity) - 1)) + 1; };

  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const int word = static_cast<int>(rng.below(1 << data));
    // Compute consistent parity for the clean word.
    int par = 0;
    for (int k = 0; k < parity; ++k) {
      int bit = 0;
      for (int i = 0; i < data; ++i) {
        if ((code(i) >> k) & 1) bit ^= (word >> i) & 1;
      }
      par |= bit << k;
    }
    const int flip = static_cast<int>(rng.below(data + 1)) - 1; // -1: none
    int received = word;
    if (flip >= 0) received ^= 1 << flip;

    std::vector<bool> vals(static_cast<std::size_t>(nl.num_nodes()));
    for (int i = 0; i < data; ++i) {
      vals[static_cast<std::size_t>(nl.find("d" + std::to_string(i)))] = (received >> i) & 1;
    }
    for (int k = 0; k < parity; ++k) {
      vals[static_cast<std::size_t>(nl.find("p" + std::to_string(k)))] = (par >> k) & 1;
    }
    for (NodeId id = 0; id < nl.num_nodes(); ++id) {
      const Node& n = nl.node(id);
      if (n.type == GateType::Input) continue;
      bool in[16];
      for (std::size_t k = 0; k < n.fanin.size(); ++k) {
        in[k] = vals[static_cast<std::size_t>(n.fanin[k])];
      }
      vals[static_cast<std::size_t>(id)] =
          eval_gate(n.type, std::span<const bool>(in, n.fanin.size()));
    }
    int corrected = 0;
    for (int i = 0; i < data; ++i) {
      if (vals[static_cast<std::size_t>(nl.find("cor" + std::to_string(i)))]) {
        corrected |= 1 << i;
      }
    }
    // Codes are distinct for data <= 2^parity - 1, so any single data-bit
    // error is corrected.
    EXPECT_EQ(corrected, word) << "flip=" << flip;
  }
}

TEST(Generators, RandomCircuitMeetsSpec) {
  RandomCircuitSpec spec;
  spec.num_inputs = 20;
  spec.num_outputs = 9;
  spec.num_gates = 300;
  spec.depth = 15;
  spec.seed = 99;
  const Netlist nl = random_circuit(spec, "r");
  EXPECT_EQ(nl.num_inputs(), 20);
  EXPECT_EQ(nl.num_outputs(), 9);
  EXPECT_EQ(nl.num_gates(), 300);
  EXPECT_NEAR(nl.depth(), 15, 3);
  // All inputs drive something.
  const auto fo = nl.fanout_counts();
  for (NodeId in : nl.inputs()) {
    EXPECT_GT(fo[static_cast<std::size_t>(in)], 0) << nl.node(in).name;
  }
}

TEST(Generators, MajorityVoterVotes) {
  const Netlist nl = majority_voter(1, 3);
  std::vector<bool> vals(static_cast<std::size_t>(nl.num_nodes()));
  for (int m = 0; m < 8; ++m) {
    for (int w = 0; w < 3; ++w) {
      vals[static_cast<std::size_t>(nl.find("w" + std::to_string(w) + "_b0"))] = (m >> w) & 1;
    }
    for (NodeId id = 0; id < nl.num_nodes(); ++id) {
      const Node& n = nl.node(id);
      if (n.type == GateType::Input) continue;
      bool in[8];
      for (std::size_t k = 0; k < n.fanin.size(); ++k) {
        in[k] = vals[static_cast<std::size_t>(n.fanin[k])];
      }
      vals[static_cast<std::size_t>(id)] =
          eval_gate(n.type, std::span<const bool>(in, n.fanin.size()));
    }
    const bool expect = std::popcount(static_cast<unsigned>(m)) >= 2;
    EXPECT_EQ(vals[static_cast<std::size_t>(nl.outputs()[0])], expect) << m;
  }
}

} // namespace
} // namespace bns
