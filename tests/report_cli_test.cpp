// End-to-end tests of the bns_report command line: usage validation,
// the current-schema JSON document contents, and the --baseline
// regression gate's exit-status contract (0 on self-compare, 1 on an
// injected regression, 2 on bad input).
//
// The binary path is injected by CMake as BNS_REPORT_BINARY. Runs use
// popen() so the exit status is observable via pclose/WEXITSTATUS.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/report.h"

namespace bns {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run_report(const std::string& args) {
  const std::string cmd =
      std::string(BNS_REPORT_BINARY) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  RunResult res;
  if (pipe == nullptr) return res;
  char buf[4096];
  std::size_t n = 0;
  while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) {
    res.output.append(buf, n);
  }
  const int status = pclose(pipe);
  res.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return res;
}

std::string tmp_path(const std::string& suffix) {
  return "/tmp/bns_report_cli_" + std::to_string(getpid()) + suffix;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Keep the e2e runs quick: a small circuit, a modest audit budget (the
// in-process audit accuracy is covered by report_test.cpp), one repeat.
const char* kQuick = "c17 --sim-pairs 20000 --repeat 2";

TEST(ReportCliTest, NoCircuitExits2) {
  const RunResult r = run_report("");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("usage"), std::string::npos) << r.output;
}

TEST(ReportCliTest, UnknownFlagExits2) {
  const RunResult r = run_report("c17 --frobnicate");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(ReportCliTest, MissingBaselineValueExits2) {
  const RunResult r = run_report("c17 --baseline");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(ReportCliTest, BadInjectKindExits2) {
  const RunResult r = run_report("c17 --inject-regress sideways");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(ReportCliTest, UnreadableBaselineExits2) {
  const RunResult r = run_report(std::string(kQuick) +
                                 " --baseline /nonexistent/base.json");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(ReportCliTest, JsonDocumentCarriesCurrentSchemaContents) {
  const std::string out = tmp_path(".json");
  const RunResult r =
      run_report(std::string(kQuick) + " --json --out " + out);
  ASSERT_EQ(r.exit_code, 0) << r.output;

  const std::string doc = slurp(out);
  ASSERT_FALSE(doc.empty());
  EXPECT_EQ(doc, r.output) << "--json must print the same document";

  const std::optional<obs::RunReport> rep = obs::RunReport::from_json(doc);
  ASSERT_TRUE(rep.has_value()) << doc;
  EXPECT_EQ(rep->schema_version, obs::kReportSchemaVersion);
  EXPECT_EQ(rep->provenance.circuit, "c17");
  EXPECT_FALSE(rep->provenance.git_describe.empty());
  EXPECT_FALSE(rep->provenance.timestamp_iso8601.empty());
  EXPECT_FALSE(rep->provenance.hostname.empty());
  EXPECT_GT(rep->compile.compile_seconds, 0.0);
  EXPECT_GT(rep->estimate.propagate_seconds, 0.0);
  EXPECT_GT(rep->estimate.messages_passed, 0u);
  // Metrics made it in: counters plus at least one histogram.
  EXPECT_GT(rep->counter_or("messages_passed", 0), 0u);
  EXPECT_FALSE(rep->histograms.empty());
  // The accuracy block is present and sane for the tiny exact circuit.
  ASSERT_TRUE(rep->accuracy.present());
  EXPECT_LT(rep->accuracy.mean_abs_error, 0.05);
  EXPECT_FALSE(rep->accuracy.worst.empty());

  std::remove(out.c_str());
}

TEST(ReportCliTest, SelfCompareGateOk) {
  const std::string base = tmp_path("_base.json");
  const RunResult mk =
      run_report(std::string(kQuick) + " --json --out " + base);
  ASSERT_EQ(mk.exit_code, 0) << mk.output;

  const RunResult cmp = run_report(std::string(kQuick) + " --baseline " +
                                   base + " --max-time-regress 10000");
  EXPECT_EQ(cmp.exit_code, 0) << cmp.output;
  EXPECT_NE(cmp.output.find("gate: ok"), std::string::npos) << cmp.output;

  std::remove(base.c_str());
}

TEST(ReportCliTest, InjectedRegressionsFailTheGate) {
  const std::string base = tmp_path("_base2.json");
  const RunResult mk =
      run_report(std::string(kQuick) + " --json --out " + base);
  ASSERT_EQ(mk.exit_code, 0) << mk.output;

  const RunResult t = run_report(std::string(kQuick) + " --baseline " + base +
                                 " --inject-regress time");
  EXPECT_EQ(t.exit_code, 1) << t.output;
  EXPECT_NE(t.output.find("REGRESSED"), std::string::npos) << t.output;

  const RunResult a = run_report(std::string(kQuick) + " --baseline " + base +
                                 " --inject-regress accuracy"
                                 " --max-time-regress 10000");
  EXPECT_EQ(a.exit_code, 1) << a.output;
  EXPECT_NE(a.output.find("mean_abs_error"), std::string::npos) << a.output;

  std::remove(base.c_str());
}

TEST(ReportCliTest, AbsoluteMeanErrorBound) {
  // c17 is exact (single segment): well under the paper bound.
  const RunResult ok =
      run_report(std::string(kQuick) + " --max-mean-error 0.01");
  EXPECT_EQ(ok.exit_code, 0) << ok.output;
  EXPECT_NE(ok.output.find("absolute accuracy bound"), std::string::npos);

  const RunResult bad = run_report(std::string(kQuick) +
                                   " --max-mean-error 0.01"
                                   " --inject-regress accuracy");
  EXPECT_EQ(bad.exit_code, 1) << bad.output;
  EXPECT_NE(bad.output.find("REGRESSED"), std::string::npos) << bad.output;

  // The bound needs the audit: --no-audit makes it a usage error.
  const RunResult noaudit =
      run_report("c17 --no-audit --max-mean-error 0.01 --repeat 1");
  EXPECT_EQ(noaudit.exit_code, 2) << noaudit.output;
}

TEST(ReportCliTest, TextReportRendersSections) {
  const RunResult r = run_report(kQuick);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("run report (schema 4)"), std::string::npos);
  EXPECT_NE(r.output.find("average activity"), std::string::npos);
  EXPECT_NE(r.output.find("accuracy vs Monte Carlo"), std::string::npos);
}

} // namespace
} // namespace bns
