#include <gtest/gtest.h>

#include "bn/bayes_net.h"
#include "test_helpers.h"

namespace bns {
namespace {

using testing_helpers::random_bayes_net;

BayesianNetwork coin_and_or() {
  // a, b fair coins; y = OR(a, b) deterministic.
  BayesianNetwork bn;
  const VarId a = bn.add_variable("a", 2);
  const VarId b = bn.add_variable("b", 2);
  const VarId y = bn.add_variable("y", 2);
  Factor pa({a}, {2});
  pa.set_value(0, 0.5);
  pa.set_value(1, 0.5);
  bn.set_cpt(a, {}, pa);
  Factor pb({b}, {2});
  pb.set_value(0, 0.5);
  pb.set_value(1, 0.5);
  bn.set_cpt(b, {}, pb);
  Factor py({a, b, y}, {2, 2, 2});
  for (int sa = 0; sa < 2; ++sa) {
    for (int sb = 0; sb < 2; ++sb) {
      const int out = (sa || sb) ? 1 : 0;
      py.at(std::vector<int>{sa, sb, out}) = 1.0;
    }
  }
  bn.set_cpt(y, {a, b}, py);
  return bn;
}

TEST(BayesNet, ValidNetworkPassesValidation) {
  EXPECT_EQ(coin_and_or().validate(), "");
  EXPECT_EQ(random_bayes_net(12, 3, 4, 1).validate(), "");
}

TEST(BayesNet, MissingCptDetected) {
  BayesianNetwork bn;
  bn.add_variable("a", 2);
  EXPECT_NE(bn.validate(), "");
}

TEST(BayesNet, NonNormalizedCptDetected) {
  BayesianNetwork bn;
  const VarId a = bn.add_variable("a", 2);
  Factor pa({a}, {2});
  pa.set_value(0, 0.6);
  pa.set_value(1, 0.6);
  bn.set_cpt(a, {}, pa);
  EXPECT_NE(bn.validate(), "");
}

TEST(BayesNet, CycleDetected) {
  BayesianNetwork bn;
  const VarId a = bn.add_variable("a", 2);
  const VarId b = bn.add_variable("b", 2);
  Factor f({a, b}, {2, 2});
  for (std::size_t i = 0; i < 4; ++i) f.set_value(i, 0.5);
  bn.set_cpt(a, {b}, f);
  bn.set_cpt(b, {a}, f);
  EXPECT_NE(bn.validate(), "");
}

TEST(BayesNet, TopologicalOrderRespectsParents) {
  const BayesianNetwork bn = random_bayes_net(20, 4, 3, 5);
  const auto order = bn.topological_order();
  ASSERT_EQ(order.size(), 20u);
  std::vector<int> pos(20);
  for (int i = 0; i < 20; ++i) pos[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  for (VarId v = 0; v < 20; ++v) {
    for (VarId p : bn.parents(v)) {
      EXPECT_LT(pos[static_cast<std::size_t>(p)], pos[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(BayesNet, JointProbabilitySumsToOne) {
  const BayesianNetwork bn = random_bayes_net(6, 2, 3, 9);
  std::vector<int> st(6, 0);
  double total = 0.0;
  for (;;) {
    total += bn.joint_probability(st);
    int k = 0;
    for (; k < 6; ++k) {
      if (++st[static_cast<std::size_t>(k)] < bn.cardinality(k)) break;
      st[static_cast<std::size_t>(k)] = 0;
    }
    if (k == 6) break;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(BayesNet, JointProbabilityOfDeterministicNode) {
  const BayesianNetwork bn = coin_and_or();
  // P(a=1, b=0, y=1) = 0.25; P(a=1, b=0, y=0) = 0.
  EXPECT_NEAR(bn.joint_probability(std::vector<int>{1, 0, 1}), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(bn.joint_probability(std::vector<int>{1, 0, 0}), 0.0);
}

TEST(BayesNet, ChildrenLists) {
  const BayesianNetwork bn = coin_and_or();
  const auto ch = bn.children();
  EXPECT_EQ(ch[0], (std::vector<VarId>{2}));
  EXPECT_EQ(ch[1], (std::vector<VarId>{2}));
  EXPECT_TRUE(ch[2].empty());
}

TEST(BayesNet, SetCptReplaces) {
  BayesianNetwork bn;
  const VarId a = bn.add_variable("a", 2);
  Factor p1({a}, {2});
  p1.set_value(0, 0.5);
  p1.set_value(1, 0.5);
  bn.set_cpt(a, {}, p1);
  Factor p2({a}, {2});
  p2.set_value(0, 0.9);
  p2.set_value(1, 0.1);
  bn.set_cpt(a, {}, p2);
  EXPECT_DOUBLE_EQ(bn.cpt(a).value(0), 0.9);
  EXPECT_EQ(bn.validate(), "");
}

} // namespace
} // namespace bns
