#include <gtest/gtest.h>

#include "gen/benchmarks.h"
#include "gen/circuits.h"
#include "gen/generators.h"
#include "lidag/estimator.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace bns {
namespace {

// --- exactness: any single-BN circuit must match exhaustive enumeration ----

struct ExactCase {
  const char* name;
  Netlist (*make)();
  double p;
  double rho;
};

Netlist make_fig1() { return figure1_circuit(); }
Netlist make_c17() { return c17(); }
Netlist make_adder() { return ripple_adder(3); }
Netlist make_parity() { return parity_tree(8); }
Netlist make_mux() { return mux_tree(2); }
Netlist make_dec() { return decoder(3); }
Netlist make_inc() { return incrementer_chain(6, 1); }
Netlist make_comp() { return comparator(4); }

class SingleBnExactness : public ::testing::TestWithParam<ExactCase> {};

TEST_P(SingleBnExactness, MatchesExhaustiveEnumeration) {
  const ExactCase& c = GetParam();
  const Netlist nl = c.make();
  ASSERT_LE(nl.num_inputs(), 10);
  const InputModel m = InputModel::uniform(nl.num_inputs(), c.p, c.rho);

  LidagEstimator est(nl, m);
  ASSERT_TRUE(est.single_bn()) << "test expects a single-BN compilation";
  const SwitchingEstimate sw = est.estimate(m);
  const auto exact = exact_transition_dists(nl, m);
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    for (int s = 0; s < 4; ++s) {
      EXPECT_NEAR(sw.dist[static_cast<std::size_t>(id)][static_cast<std::size_t>(s)],
                  exact[static_cast<std::size_t>(id)][static_cast<std::size_t>(s)],
                  1e-10)
          << c.name << " node " << nl.node(id).name << " state " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Circuits, SingleBnExactness,
    ::testing::Values(ExactCase{"fig1", &make_fig1, 0.5, 0.0},
                      ExactCase{"fig1_biased", &make_fig1, 0.3, 0.4},
                      ExactCase{"c17", &make_c17, 0.5, 0.0},
                      ExactCase{"c17_sticky", &make_c17, 0.7, 0.8},
                      ExactCase{"adder3", &make_adder, 0.5, 0.0},
                      ExactCase{"adder3_biased", &make_adder, 0.2, -0.1},
                      ExactCase{"parity8", &make_parity, 0.4, 0.3},
                      ExactCase{"mux4", &make_mux, 0.5, 0.5},
                      ExactCase{"decoder3", &make_dec, 0.6, 0.0},
                      ExactCase{"inc6", &make_inc, 0.5, -0.5},
                      ExactCase{"comp4", &make_comp, 0.45, 0.2}),
    [](const ::testing::TestParamInfo<ExactCase>& info) {
      return std::string(info.param.name);
    });

// --- segmentation ----------------------------------------------------------

TEST(Estimator, ForcedSegmentationStaysAccurate) {
  const Netlist nl = comparator(4); // exactly solvable reference
  const InputModel m = InputModel::uniform(nl.num_inputs(), 0.5, 0.2);
  const auto exact = exact_activities(nl, m);

  EstimatorOptions opts;
  opts.single_bn_nodes = 0;
  opts.segment_nodes = 8; // absurdly small segments
  LidagEstimator est(nl, m, opts);
  EXPECT_GT(est.num_segments(), 2);
  const SwitchingEstimate sw = est.estimate(m);
  const ErrorStats err = compute_error_stats(sw.activities(), exact);
  EXPECT_LT(err.mu_err, 0.02);
  EXPECT_LT(err.max_err, 0.12);
}

TEST(Estimator, SegmentationVariantsAllRun) {
  const Netlist nl = make_benchmark("count");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  const SimResult sim = SwitchingSimulator(nl).run(m, 1 << 19, 3);

  for (const auto strategy :
       {SegmentationStrategy::FixedRange, SegmentationStrategy::MinFrontier}) {
    for (const bool chain : {false, true}) {
      EstimatorOptions opts;
      opts.single_bn_nodes = 0;
      opts.segment_nodes = 40;
      opts.segmentation = strategy;
      opts.lidag.boundary_chain = chain;
      LidagEstimator est(nl, m, opts);
      EXPECT_GT(est.num_segments(), 1);
      const SwitchingEstimate sw = est.estimate(m);
      const ErrorStats err =
          compute_error_stats(sw.activities(), sim.activities());
      EXPECT_LT(err.mu_err, 0.02)
          << "strategy=" << static_cast<int>(strategy) << " chain=" << chain;
    }
  }
}

TEST(Estimator, StateSpaceBudgetRespected) {
  const Netlist nl = make_benchmark("c499");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  EstimatorOptions opts;
  opts.max_segment_states = 1e5;
  LidagEstimator est(nl, m, opts);
  // Budget can only be checked per segment.
  const CompileStats& cs = est.compile_stats();
  EXPECT_LE(cs.total_state_space / cs.num_segments, 1e5 * 1.0001);
  EXPECT_GT(cs.num_segments, 1);
}

TEST(Estimator, RepeatedEstimatesAreIndependent) {
  // Estimating twice with different stats then re-estimating with the
  // first must reproduce the first result exactly (no state leakage).
  const Netlist nl = make_benchmark("c432");
  const InputModel m1 = InputModel::uniform(nl.num_inputs(), 0.5, 0.0);
  const InputModel m2 = InputModel::uniform(nl.num_inputs(), 0.2, 0.6);
  LidagEstimator est(nl, m1);
  const SwitchingEstimate a = est.estimate(m1);
  const SwitchingEstimate b = est.estimate(m2);
  const SwitchingEstimate a2 = est.estimate(m1);
  double max_ab = 0.0;
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    for (int s = 0; s < 4; ++s) {
      EXPECT_DOUBLE_EQ(
          a.dist[static_cast<std::size_t>(id)][static_cast<std::size_t>(s)],
          a2.dist[static_cast<std::size_t>(id)][static_cast<std::size_t>(s)]);
      max_ab = std::max(max_ab,
                        std::abs(a.dist[static_cast<std::size_t>(id)]
                                       [static_cast<std::size_t>(s)] -
                                 b.dist[static_cast<std::size_t>(id)]
                                       [static_cast<std::size_t>(s)]));
    }
  }
  EXPECT_GT(max_ab, 0.01); // the two input models genuinely differ
}

TEST(Estimator, FreshEstimatorAgrees) {
  // estimate() on a reused compilation == estimate() on a fresh one.
  const Netlist nl = make_benchmark("comp");
  const InputModel m0 = InputModel::uniform(nl.num_inputs());
  const InputModel m1 = InputModel::uniform(nl.num_inputs(), 0.35, 0.25);
  LidagEstimator reused(nl, m0);
  (void)reused.estimate(m0);
  const SwitchingEstimate a = reused.estimate(m1);
  LidagEstimator fresh(nl, m1);
  const SwitchingEstimate b = fresh.estimate(m1);
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    EXPECT_NEAR(a.activity(id), b.activity(id), 1e-12);
  }
}

TEST(Estimator, ResultsIndexedByOriginalNodeIds) {
  // The estimator reorders internally; per-line results must still be
  // keyed by the caller's NodeIds. Verify per-node against simulation on
  // a circuit whose lines have very different activities.
  Netlist nl("mix");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId quiet = nl.add_gate(GateType::And, "quiet", {a, b});
  const NodeId q2 = nl.add_gate(GateType::And, "q2", {quiet, a});
  const NodeId busy = nl.add_gate(GateType::Xor, "busy", {a, b});
  nl.mark_output(q2);
  nl.mark_output(busy);
  const InputModel m = InputModel::uniform(2, 0.9, 0.0);
  LidagEstimator est(nl, m);
  const SwitchingEstimate sw = est.estimate(m);
  const auto exact = exact_activities(nl, m);
  EXPECT_NEAR(sw.activity(quiet), exact[static_cast<std::size_t>(quiet)], 1e-10);
  EXPECT_NEAR(sw.activity(q2), exact[static_cast<std::size_t>(q2)], 1e-10);
  EXPECT_NEAR(sw.activity(busy), exact[static_cast<std::size_t>(busy)], 1e-10);
}

TEST(Estimator, GroupedInputsExact) {
  // Spatially-correlated inputs flow through the whole estimator.
  const Netlist nl = comparator(3);
  std::vector<InputSpec> specs;
  for (int i = 0; i < 3; ++i) specs.push_back({0.5, 0.0, 0, 0.08});
  for (int i = 0; i < 3; ++i) specs.push_back({0.5, 0.0, -1, 0.0});
  const InputModel m = InputModel::custom(specs, {{0.5, 0.3}});

  LidagEstimator est(nl, m);
  const SwitchingEstimate sw = est.estimate(m);
  const SimResult sim = SwitchingSimulator(nl).run(m, 1 << 23, 5);
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    EXPECT_NEAR(sw.activity(id), sim.activity(id), 3e-3)
        << nl.node(id).name;
  }
}

TEST(Estimator, EmptyAndTrivialCircuits) {
  Netlist wire("wire");
  const NodeId a = wire.add_input("a");
  wire.mark_output(a);
  const InputModel m = InputModel::uniform(1, 0.3, 0.5);
  LidagEstimator est(wire, m);
  const SwitchingEstimate sw = est.estimate(m);
  EXPECT_NEAR(sw.activity(a), activity_of(transition_distribution(0.3, 0.5)),
              1e-12);
}

TEST(Estimator, CompileStatsExposed) {
  const Netlist nl = make_benchmark("c1355");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  LidagEstimator est(nl, m);
  const CompileStats& cs = est.compile_stats();
  EXPECT_GT(cs.compile_seconds, 0.0);
  EXPECT_GE(cs.compile_seconds, cs.schedule_build_seconds);
  EXPECT_GT(cs.total_state_space, 0.0);
  EXPECT_GE(cs.max_clique_vars, 2u);
  EXPECT_GE(cs.total_bn_variables, nl.num_nodes());
  EXPECT_EQ(cs.num_segments, est.num_segments());
  EXPECT_GT(cs.fill_edges, 0u); // ISCAS circuits always need fill-in
}

TEST(Estimator, EstimateStatsExposed) {
  const Netlist nl = make_benchmark("c432");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  EstimatorOptions opts;
  opts.num_threads = 2;
  LidagEstimator est(nl, m, opts);
  const SwitchingEstimate sw = est.estimate(m);
  EXPECT_GT(sw.stats.propagate_seconds, 0.0);
  EXPECT_GT(sw.stats.reload_seconds, 0.0);
  EXPECT_GT(sw.stats.messages_passed, 0u);
  EXPECT_EQ(sw.stats.threads_used, est.num_threads());
  // Messages are a structural property: the same compiled trees pass
  // the same number of messages on every update.
  const SwitchingEstimate sw2 =
      est.estimate(InputModel::uniform(nl.num_inputs(), 0.3, 0.2));
  EXPECT_EQ(sw2.stats.messages_passed, sw.stats.messages_passed);
}

// The consolidated stats structs are the only accounting surface (the
// deprecated forwarders finished their cycle and are gone).
TEST(Estimator, CompileStatsArePopulated) {
  const Netlist nl = make_benchmark("c17");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  LidagEstimator est(nl, m);
  const CompileStats& cs = est.compile_stats();
  EXPECT_GT(cs.compile_seconds, 0.0);
  EXPECT_GT(cs.total_state_space, 0.0);
  EXPECT_GE(cs.max_clique_vars, 2u);
  EXPECT_GT(cs.total_bn_variables, 0);
  EXPECT_EQ(cs.num_segments, est.num_segments());
}

} // namespace
} // namespace bns
