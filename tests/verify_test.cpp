// Tests for the static-verification subsystem (src/verify/): the
// diagnostics engine, the netlist / model / compilation lint passes, and
// the estimator integration. Every diagnostic code is exercised with a
// deliberately corrupted input.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "bn/bayes_net.h"
#include "bn/graph.h"
#include "bn/junction_tree.h"
#include "core/analyzer.h"
#include "gen/benchmarks.h"
#include "lidag/estimator.h"
#include "netlist/netlist.h"
#include "verify/compile_rules.h"
#include "verify/diagnostics.h"
#include "verify/model_rules.h"
#include "verify/netlist_rules.h"

namespace bns {
namespace {

// --- helpers -----------------------------------------------------------

// Root prior over `v` with explicit probabilities.
Factor prior(VarId v, std::vector<double> p) {
  Factor f({v}, {static_cast<int>(p.size())});
  for (std::size_t i = 0; i < p.size(); ++i) f.set_value(i, p[i]);
  return f;
}

// CPT over `scope` that is uniform over the states of `child`: every
// parent-configuration column sums to exactly 1.
Factor uniform_cpt(std::vector<VarId> scope, std::vector<int> cards,
                   VarId child) {
  Factor f(scope, cards);
  int child_card = 0;
  for (std::size_t k = 0; k < scope.size(); ++k) {
    if (scope[k] == child) child_card = cards[k];
  }
  for (std::size_t i = 0; i < f.size(); ++i) {
    f.set_value(i, 1.0 / child_card);
  }
  return f;
}

DiagnosticReport lint_bench(std::string_view text) {
  DiagnosticReport r;
  lint_bench_text(text, "test.bench", r);
  return r;
}

DiagnosticReport lint_blif(std::string_view text) {
  DiagnosticReport r;
  lint_blif_text(text, "test.blif", r);
  return r;
}

// --- diagnostics engine ------------------------------------------------

TEST(DiagnosticsTest, CodeTableRoundTrips) {
  const std::vector<DiagCode> codes = all_diag_codes();
  EXPECT_EQ(codes.size(), 34u);
  for (DiagCode c : codes) {
    const std::string_view name = diag_code_name(c);
    EXPECT_EQ(name.size(), 5u) << name;
    EXPECT_FALSE(diag_code_summary(c).empty()) << name;
    DiagCode back = DiagCode::NL001;
    ASSERT_TRUE(parse_diag_code(name, back)) << name;
    EXPECT_EQ(back, c);
  }
  DiagCode out;
  EXPECT_FALSE(parse_diag_code("XX999", out));
  EXPECT_FALSE(parse_diag_code("", out));
}

TEST(DiagnosticsTest, SeverityNamesRoundTrip) {
  for (Severity s : {Severity::Note, Severity::Warning, Severity::Error}) {
    Severity back = Severity::Note;
    ASSERT_TRUE(parse_severity(severity_name(s), back));
    EXPECT_EQ(back, s);
  }
  Severity out;
  EXPECT_FALSE(parse_severity("fatal", out));
}

TEST(DiagnosticsTest, DefaultSeverities) {
  // Warnings: cosmetic/structural issues inference survives.
  for (DiagCode c : {DiagCode::NL003, DiagCode::NL005, DiagCode::NL010}) {
    EXPECT_EQ(diag_default_severity(c), Severity::Warning)
        << diag_code_name(c);
  }
  // Everything model- or compile-breaking is an error.
  for (DiagCode c : {DiagCode::NL001, DiagCode::NL002, DiagCode::NL004,
                     DiagCode::BN002, DiagCode::BN003, DiagCode::JT002}) {
    EXPECT_EQ(diag_default_severity(c), Severity::Error) << diag_code_name(c);
  }
}

TEST(DiagnosticsTest, CountsAndLookup) {
  DiagnosticReport r;
  EXPECT_TRUE(r.empty());
  r.add(DiagCode::NL003, "n1", "floating");          // default warning
  r.add(DiagCode::NL004, "f:2", "loop");             // default error
  r.add(DiagCode::NL007, Severity::Note, "l", "red"); // explicit override
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.num_errors(), 1);
  EXPECT_EQ(r.num_warnings(), 1);
  EXPECT_EQ(r.count(Severity::Note), 1);
  EXPECT_TRUE(r.has_errors());
  EXPECT_TRUE(r.has_code(DiagCode::NL004));
  EXPECT_FALSE(r.has_code(DiagCode::BN001));
  ASSERT_NE(r.find(DiagCode::NL003), nullptr);
  EXPECT_EQ(r.find(DiagCode::NL003)->message, "floating");

  DiagnosticReport other;
  other.add(DiagCode::BN001, "v0", "no cpt");
  r.merge(other);
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.num_errors(), 2);
}

TEST(DiagnosticsTest, RenderTextFormat) {
  DiagnosticReport r;
  r.add(DiagCode::NL004, "f.bench:7", "combinational loop: y <- y");
  r.add(DiagCode::NL003, "", "floating");
  const std::string text = r.render_text();
  EXPECT_NE(text.find("error[NL004] f.bench:7: combinational loop: y <- y"),
            std::string::npos)
      << text;
  // Empty locations render without the location segment.
  EXPECT_NE(text.find("warning[NL003] floating"), std::string::npos) << text;
}

TEST(DiagnosticsTest, JsonRoundTrip) {
  DiagnosticReport r;
  r.add(DiagCode::NL008, "we\"ird\\path:3",
        "quote \" backslash \\ newline \n tab \t control \x01 done");
  r.add(DiagCode::BN003, Severity::Warning, "v7", "column 2 sums to 1.5");
  const std::string json = r.render_json("bns_lint", "x.bench");
  const std::optional<DiagnosticReport> back = DiagnosticReport::from_json(json);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, r);
}

TEST(DiagnosticsTest, JsonRoundTripEmpty) {
  const DiagnosticReport r;
  const auto back = DiagnosticReport::from_json(r.render_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(DiagnosticsTest, FromJsonRejectsMalformed) {
  EXPECT_FALSE(DiagnosticReport::from_json("not json").has_value());
  EXPECT_FALSE(DiagnosticReport::from_json("{\"diagnostics\": [").has_value());
  // Unknown code name.
  EXPECT_FALSE(DiagnosticReport::from_json(
                   R"({"diagnostics": [{"code": "ZZ123", "severity": "error",
                       "location": "", "message": "m"}]})")
                   .has_value());
}

// --- bench source lint -------------------------------------------------

TEST(BenchLintTest, CleanCircuitIsQuiet) {
  const auto r = lint_bench(R"(
# comment
INPUT(a)
INPUT(b)
OUTPUT(y)
n1 = AND(a, b)
y = NOT(n1)
)");
  EXPECT_TRUE(r.empty()) << r.render_text();
}

TEST(BenchLintTest, UndrivenFanin_NL001) {
  const auto r = lint_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n");
  ASSERT_TRUE(r.has_code(DiagCode::NL001)) << r.render_text();
  EXPECT_NE(r.find(DiagCode::NL001)->message.find("ghost"), std::string::npos);
}

TEST(BenchLintTest, MultiplyDriven_NL002) {
  const auto r = lint_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\ny = OR(a, b)\n");
  EXPECT_TRUE(r.has_code(DiagCode::NL002)) << r.render_text();
}

TEST(BenchLintTest, InputAlsoDriven_NL002) {
  const auto r = lint_bench("INPUT(a)\nINPUT(y)\nOUTPUT(y)\ny = NOT(a)\n");
  EXPECT_TRUE(r.has_code(DiagCode::NL002)) << r.render_text();
}

TEST(BenchLintTest, FloatingNet_NL003) {
  const auto r = lint_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\ndead = OR(a, b)\n");
  ASSERT_TRUE(r.has_code(DiagCode::NL003)) << r.render_text();
  EXPECT_EQ(r.find(DiagCode::NL003)->severity, Severity::Warning);
  EXPECT_FALSE(r.has_errors());
}

TEST(BenchLintTest, UnusedPrimaryInput_NL003) {
  const auto r = lint_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a)\n");
  ASSERT_TRUE(r.has_code(DiagCode::NL003)) << r.render_text();
  EXPECT_NE(r.find(DiagCode::NL003)->message.find("primary input"),
            std::string::npos);
}

TEST(BenchLintTest, CombinationalLoop_NL004) {
  const auto r =
      lint_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, fb)\nfb = OR(y, a)\n");
  ASSERT_TRUE(r.has_code(DiagCode::NL004)) << r.render_text();
  EXPECT_NE(r.find(DiagCode::NL004)->message.find("loop"), std::string::npos);
}

TEST(BenchLintTest, SelfLoop_NL004) {
  const auto r = lint_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, y)\n");
  EXPECT_TRUE(r.has_code(DiagCode::NL004)) << r.render_text();
}

TEST(BenchLintTest, UnreachableGate_NL005) {
  // u1 feeds u2 (so it is not floating) but neither reaches the output.
  const auto r = lint_bench(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, b)
u1 = OR(a, b)
u2 = AND(u1, a)
)");
  ASSERT_TRUE(r.has_code(DiagCode::NL005)) << r.render_text();
  EXPECT_NE(r.find(DiagCode::NL005)->message.find("u1"), std::string::npos);
  EXPECT_TRUE(r.has_code(DiagCode::NL003)); // u2 itself floats
}

TEST(BenchLintTest, ArityMismatch_NL006) {
  const auto r = lint_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n");
  EXPECT_TRUE(r.has_code(DiagCode::NL006)) << r.render_text();
}

TEST(BenchLintTest, SyntaxError_NL008) {
  const auto r = lint_bench("INPUT a\nOUTPUT(y)\ny = AND(a\nzzz\n");
  EXPECT_TRUE(r.has_code(DiagCode::NL008)) << r.render_text();
}

TEST(BenchLintTest, UnknownGateType_NL009) {
  const auto r = lint_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n");
  EXPECT_TRUE(r.has_code(DiagCode::NL009)) << r.render_text();
}

TEST(BenchLintTest, NoOutputs_NL010) {
  const auto r = lint_bench("INPUT(a)\nn = NOT(a)\n");
  EXPECT_TRUE(r.has_code(DiagCode::NL010)) << r.render_text();
}

TEST(BenchLintTest, DuplicateInput_NL011) {
  const auto r = lint_bench("INPUT(a)\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  EXPECT_TRUE(r.has_code(DiagCode::NL011)) << r.render_text();
}

TEST(BenchLintTest, OutputNeverDriven_NL012) {
  const auto r = lint_bench("INPUT(a)\nOUTPUT(nowhere)\nOUTPUT(y)\ny = NOT(a)\n");
  EXPECT_TRUE(r.has_code(DiagCode::NL012)) << r.render_text();
}

// --- BLIF source lint --------------------------------------------------

TEST(BlifLintTest, CleanCircuitIsQuiet) {
  const auto r = lint_blif(R"(.model clean
.inputs a b
.outputs y
.names a b y
11 1
.end
)");
  EXPECT_TRUE(r.empty()) << r.render_text();
}

TEST(BlifLintTest, ContinuationLinesAreFolded) {
  const auto r = lint_blif(".model c\n.inputs \\\na b\n.outputs y\n"
                           ".names a b y\n11 1\n.end\n");
  EXPECT_TRUE(r.empty()) << r.render_text();
}

TEST(BlifLintTest, CoverWidthMismatch_NL007) {
  const auto r = lint_blif(R"(.model bad
.inputs a b
.outputs y
.names a b y
11 1
1 1
.end
)");
  ASSERT_TRUE(r.has_code(DiagCode::NL007)) << r.render_text();
  EXPECT_TRUE(r.has_errors());
}

TEST(BlifLintTest, BadCoverCharacters_NL008) {
  const auto r = lint_blif(
      ".model bad\n.inputs a b\n.outputs y\n.names a b y\n2x 1\n.end\n");
  EXPECT_TRUE(r.has_code(DiagCode::NL008)) << r.render_text();
}

TEST(BlifLintTest, CoverRowOutsideNames_NL008) {
  const auto r = lint_blif(".model bad\n.inputs a\n.outputs y\n11 1\n.end\n");
  EXPECT_TRUE(r.has_code(DiagCode::NL008)) << r.render_text();
}

TEST(BlifLintTest, UnsupportedConstruct_NL008) {
  const auto r = lint_blif(R"(.model seq
.inputs a
.outputs y
.latch a y re clk 0
.end
)");
  EXPECT_TRUE(r.has_code(DiagCode::NL008)) << r.render_text();
}

TEST(BlifLintTest, LoopAcrossNames_NL004) {
  const auto r = lint_blif(R"(.model loop
.inputs a
.outputs y
.names a fb y
11 1
.names y fb
1 1
.end
)");
  EXPECT_TRUE(r.has_code(DiagCode::NL004)) << r.render_text();
}

// --- built-netlist lint ------------------------------------------------

TEST(NetlistLintTest, BuiltInBenchmarkIsQuiet) {
  const Netlist nl = make_benchmark("c17");
  DiagnosticReport r;
  lint_netlist(nl, r);
  EXPECT_TRUE(r.empty()) << r.render_text();
}

TEST(NetlistLintTest, FloatingAndUnreachable) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId y = nl.add_gate(GateType::And, "y", {a, b});
  const NodeId u1 = nl.add_gate(GateType::Or, "u1", {a, b});
  nl.add_gate(GateType::And, "u2", {u1, a}); // floats; makes u1 unreachable
  nl.mark_output(y);
  DiagnosticReport r;
  lint_netlist(nl, r);
  EXPECT_TRUE(r.has_code(DiagCode::NL003)) << r.render_text();
  EXPECT_TRUE(r.has_code(DiagCode::NL005)) << r.render_text();
}

TEST(NetlistLintTest, NoOutputs_NL010) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  nl.add_gate(GateType::Not, "n", {a});
  DiagnosticReport r;
  lint_netlist(nl, r);
  EXPECT_TRUE(r.has_code(DiagCode::NL010)) << r.render_text();
}

TEST(NetlistLintTest, RedundantLutInputIsNoted_NL007) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  // f(a, b) = a: input b is redundant.
  TruthTable tt(2);
  tt.set_value(1, true); // minterm a=1,b=0
  tt.set_value(3, true); // minterm a=1,b=1
  const NodeId y = nl.add_lut("y", {a, b}, tt);
  nl.mark_output(y);
  DiagnosticReport r;
  lint_netlist(nl, r);
  ASSERT_TRUE(r.has_code(DiagCode::NL007)) << r.render_text();
  EXPECT_EQ(r.find(DiagCode::NL007)->severity, Severity::Note);
  EXPECT_FALSE(r.has_errors());
}

// --- model lint --------------------------------------------------------

TEST(ModelLintTest, ValidNetworkIsQuiet) {
  BayesianNetwork bn;
  const VarId a = bn.add_variable("a", 2);
  const VarId y = bn.add_variable("y", 2);
  bn.set_cpt(a, {}, prior(a, {0.3, 0.7}));
  bn.set_cpt(y, {a}, uniform_cpt({a, y}, {2, 2}, y));
  DiagnosticReport r;
  lint_bayes_net(bn, r);
  EXPECT_TRUE(r.empty()) << r.render_text();
  EXPECT_EQ(bn.validate(), "");
}

TEST(ModelLintTest, MissingCpt_BN001) {
  BayesianNetwork bn;
  bn.add_variable("a", 2);
  DiagnosticReport r;
  lint_bayes_net(bn, r);
  EXPECT_TRUE(r.has_code(DiagCode::BN001)) << r.render_text();
  EXPECT_NE(bn.validate(), "");
}

TEST(ModelLintTest, DirectedCycle_BN002) {
  BayesianNetwork bn;
  const VarId a = bn.add_variable("a", 2);
  const VarId b = bn.add_variable("b", 2);
  bn.set_cpt(a, {b}, uniform_cpt({a, b}, {2, 2}, a));
  bn.set_cpt(b, {a}, uniform_cpt({a, b}, {2, 2}, b));
  DiagnosticReport r;
  lint_bayes_net(bn, r);
  EXPECT_TRUE(r.has_code(DiagCode::BN002)) << r.render_text();
}

TEST(ModelLintTest, NonStochasticColumn_BN003) {
  BayesianNetwork bn;
  const VarId a = bn.add_variable("a", 2);
  const VarId y = bn.add_variable("y", 2);
  bn.set_cpt(a, {}, prior(a, {0.5, 0.5}));
  Factor f = uniform_cpt({a, y}, {2, 2}, y);
  f.set_value(0, 0.9); // column a=0 now sums to 1.4
  bn.set_cpt(y, {a}, std::move(f));
  DiagnosticReport r;
  lint_bayes_net(bn, r);
  EXPECT_TRUE(r.has_code(DiagCode::BN003)) << r.render_text();
}

TEST(ModelLintTest, NonDeterministicGateCpt_BN004) {
  BayesianNetwork bn;
  const VarId a = bn.add_variable("a", 2);
  const VarId y = bn.add_variable("y", 2);
  bn.set_cpt(a, {}, prior(a, {0.5, 0.5}));
  bn.set_cpt(y, {a}, uniform_cpt({a, y}, {2, 2}, y)); // entries 0.5: stochastic
  DiagnosticReport quiet;
  lint_bayes_net(bn, quiet);
  EXPECT_TRUE(quiet.empty()) << quiet.render_text();

  // The same network fails once y is declared deterministic.
  const std::vector<VarId> det = {y};
  ModelLintOptions opts;
  opts.deterministic_vars = det;
  DiagnosticReport r;
  lint_bayes_net(bn, r, opts);
  EXPECT_TRUE(r.has_code(DiagCode::BN004)) << r.render_text();
}

TEST(ModelLintTest, BadRootPrior_BN005) {
  BayesianNetwork bn;
  const VarId a = bn.add_variable("a", 2);
  bn.set_cpt(a, {}, prior(a, {0.6, 0.6}));
  DiagnosticReport r;
  lint_bayes_net(bn, r);
  EXPECT_TRUE(r.has_code(DiagCode::BN005)) << r.render_text();
}

TEST(ModelLintTest, NegativeAndNonFiniteEntries_BN008) {
  BayesianNetwork bn;
  const VarId a = bn.add_variable("a", 2);
  bn.set_cpt(a, {}, prior(a, {1.5, -0.5}));
  DiagnosticReport r;
  lint_bayes_net(bn, r);
  EXPECT_TRUE(r.has_code(DiagCode::BN008)) << r.render_text();

  BayesianNetwork bn2;
  const VarId b = bn2.add_variable("b", 2);
  bn2.set_cpt(b, {},
              prior(b, {std::numeric_limits<double>::quiet_NaN(), 1.0}));
  DiagnosticReport r2;
  lint_bayes_net(bn2, r2);
  EXPECT_TRUE(r2.has_code(DiagCode::BN008)) << r2.render_text();
}

// --- LIDAG dependency preservation (BN006 / BN007) ---------------------

namespace lidag_fixture {

// Netlist: inputs a, b, c; y = AND(a, b). (c exists so a spurious
// dependency can be wired in the BN.)
struct Fixture {
  Netlist nl{"t"};
  NodeId a, b, c, y;
  Fixture() {
    a = nl.add_input("a");
    b = nl.add_input("b");
    c = nl.add_input("c");
    y = nl.add_gate(GateType::And, "y", {a, b});
    nl.mark_output(y);
  }
};

} // namespace lidag_fixture

TEST(LidagStructureTest, FaithfulModelIsQuiet) {
  lidag_fixture::Fixture fx;
  BayesianNetwork bn;
  const VarId va = bn.add_variable("a", 4);
  const VarId vb = bn.add_variable("b", 4);
  const VarId vc = bn.add_variable("c", 4);
  const VarId vy = bn.add_variable("y", 4);
  bn.set_cpt(vy, {va, vb}, uniform_cpt({va, vb, vy}, {4, 4, 4}, vy));
  const std::vector<VarId> map = {va, vb, vc, vy};
  const std::vector<VarId> roots = {va, vb, vc};
  DiagnosticReport r;
  lint_lidag_structure(fx.nl, bn, map, roots, r);
  EXPECT_TRUE(r.empty()) << r.render_text();
}

TEST(LidagStructureTest, MissingDependency_BN007) {
  lidag_fixture::Fixture fx;
  BayesianNetwork bn;
  const VarId va = bn.add_variable("a", 4);
  const VarId vb = bn.add_variable("b", 4);
  const VarId vc = bn.add_variable("c", 4);
  const VarId vy = bn.add_variable("y", 4);
  bn.set_cpt(vy, {va}, uniform_cpt({va, vy}, {4, 4}, vy)); // drops b
  const std::vector<VarId> map = {va, vb, vc, vy};
  const std::vector<VarId> roots = {va, vb, vc};
  DiagnosticReport r;
  lint_lidag_structure(fx.nl, bn, map, roots, r);
  ASSERT_TRUE(r.has_code(DiagCode::BN007)) << r.render_text();
  EXPECT_NE(r.find(DiagCode::BN007)->message.find("does not depend"),
            std::string::npos);
}

TEST(LidagStructureTest, SpuriousDependency_BN007) {
  lidag_fixture::Fixture fx;
  BayesianNetwork bn;
  const VarId va = bn.add_variable("a", 4);
  const VarId vb = bn.add_variable("b", 4);
  const VarId vc = bn.add_variable("c", 4);
  const VarId vy = bn.add_variable("y", 4);
  bn.set_cpt(vy, {va, vb, vc},
             uniform_cpt({va, vb, vc, vy}, {4, 4, 4, 4}, vy)); // extra c
  const std::vector<VarId> map = {va, vb, vc, vy};
  const std::vector<VarId> roots = {va, vb, vc};
  DiagnosticReport r;
  lint_lidag_structure(fx.nl, bn, map, roots, r);
  ASSERT_TRUE(r.has_code(DiagCode::BN007)) << r.render_text();
  EXPECT_NE(r.find(DiagCode::BN007)->message.find("not one of its fanins"),
            std::string::npos);
}

TEST(LidagStructureTest, DependencyThroughAuxiliaryIsAccepted) {
  lidag_fixture::Fixture fx;
  BayesianNetwork bn;
  const VarId va = bn.add_variable("a", 4);
  const VarId vb = bn.add_variable("b", 4);
  const VarId vc = bn.add_variable("c", 4);
  // Divorcing auxiliary between the fanins and the gate output.
  const VarId aux = bn.add_variable("aux", 4);
  const VarId vy = bn.add_variable("y", 4);
  bn.set_cpt(aux, {va, vb}, uniform_cpt({va, vb, aux}, {4, 4, 4}, aux));
  bn.set_cpt(vy, {aux}, uniform_cpt({aux, vy}, {4, 4}, vy));
  const std::vector<VarId> map = {va, vb, vc, vy}; // aux is not a line var
  const std::vector<VarId> roots = {va, vb, vc};
  DiagnosticReport r;
  lint_lidag_structure(fx.nl, bn, map, roots, r);
  EXPECT_TRUE(r.empty()) << r.render_text();
}

TEST(LidagStructureTest, RootGateLinesAreSkipped) {
  lidag_fixture::Fixture fx;
  BayesianNetwork bn;
  const VarId vy = bn.add_variable("y", 4); // boundary root: prior, no fanin
  const std::vector<VarId> map = {-1, -1, -1, vy};
  const std::vector<VarId> roots = {vy};
  DiagnosticReport r;
  lint_lidag_structure(fx.nl, bn, map, roots, r);
  EXPECT_TRUE(r.empty()) << r.render_text();
}

TEST(LidagStructureTest, MapSizeMismatch_BN006) {
  lidag_fixture::Fixture fx;
  BayesianNetwork bn;
  bn.add_variable("a", 4);
  const std::vector<VarId> map = {0}; // netlist has 4 nodes
  DiagnosticReport r;
  lint_lidag_structure(fx.nl, bn, map, {}, r);
  EXPECT_TRUE(r.has_code(DiagCode::BN006)) << r.render_text();
}

TEST(LidagStructureTest, MapOutOfRange_BN006) {
  lidag_fixture::Fixture fx;
  BayesianNetwork bn;
  const VarId va = bn.add_variable("a", 4);
  const std::vector<VarId> map = {va, -1, -1, 99};
  DiagnosticReport r;
  lint_lidag_structure(fx.nl, bn, map, {}, r);
  EXPECT_TRUE(r.has_code(DiagCode::BN006)) << r.render_text();
}

// --- compilation lint --------------------------------------------------

TEST(CompileLintTest, RealCompilationIsQuiet) {
  BayesianNetwork bn;
  const VarId a = bn.add_variable("a", 2);
  const VarId b = bn.add_variable("b", 2);
  const VarId y = bn.add_variable("y", 2);
  bn.set_cpt(a, {}, prior(a, {0.5, 0.5}));
  bn.set_cpt(b, {}, prior(b, {0.2, 0.8}));
  bn.set_cpt(y, {a, b}, uniform_cpt({a, b, y}, {2, 2, 2}, y));
  const JunctionTreeEngine eng(bn);
  DiagnosticReport r;
  lint_compilation(bn, eng.triangulation(), eng.tree(), r);
  EXPECT_TRUE(r.empty()) << r.render_text();
  EXPECT_EQ(eng.tree().check_running_intersection(), "");
}

TEST(CompileLintTest, NonChordalTriangulation_JT001) {
  BayesianNetwork bn;
  for (int i = 0; i < 4; ++i) {
    const VarId v = bn.add_variable("v" + std::to_string(i), 2);
    bn.set_cpt(v, {}, prior(v, {0.5, 0.5}));
  }
  // A 4-cycle with no chord: the identity order is not perfect.
  Triangulation t;
  t.graph = UndirectedGraph(4);
  t.graph.add_edge(0, 1);
  t.graph.add_edge(1, 2);
  t.graph.add_edge(2, 3);
  t.graph.add_edge(0, 3);
  t.elimination_order = {0, 1, 2, 3};
  t.cliques = {{0, 1}, {1, 2}, {2, 3}, {0, 3}};
  const JunctionTree jt(t);
  DiagnosticReport r;
  lint_compilation(bn, t, jt, r);
  EXPECT_TRUE(r.has_code(DiagCode::JT001)) << r.render_text();
}

TEST(CompileLintTest, BrokenRunningIntersection_JT002) {
  // Cliques {0,1}, {1,2}, {0,2} chained linearly: variable 0 appears at
  // both ends but in no separator of the middle edge.
  const std::vector<std::vector<int>> cliques = {{0, 1}, {1, 2}, {0, 2}};
  std::vector<JunctionTreeEdge> edges(2);
  edges[0] = {0, 1, {1}};
  edges[1] = {1, 2, {2}};
  DiagnosticReport r;
  lint_junction_structure(3, cliques, edges, r);
  ASSERT_TRUE(r.has_code(DiagCode::JT002)) << r.render_text();
  EXPECT_FALSE(r.has_code(DiagCode::JT004)); // separators are correct
}

TEST(CompileLintTest, FamilyNotCovered_JT003) {
  BayesianNetwork bn;
  const VarId a = bn.add_variable("a", 2);
  const VarId b = bn.add_variable("b", 2);
  const VarId y = bn.add_variable("y", 2);
  bn.set_cpt(a, {}, prior(a, {0.5, 0.5}));
  bn.set_cpt(b, {}, prior(b, {0.5, 0.5}));
  bn.set_cpt(y, {a, b}, uniform_cpt({a, b, y}, {2, 2, 2}, y));
  // A path-shaped junction structure: no clique holds the family {a,b,y}.
  Triangulation t;
  t.graph = UndirectedGraph(3);
  t.graph.add_edge(0, 1);
  t.graph.add_edge(1, 2);
  t.elimination_order = {0, 2, 1}; // perfect for the path
  t.cliques = {{0, 1}, {1, 2}};
  const JunctionTree jt(t);
  DiagnosticReport r;
  lint_compilation(bn, t, jt, r);
  EXPECT_TRUE(r.has_code(DiagCode::JT003)) << r.render_text();
  EXPECT_FALSE(r.has_code(DiagCode::JT001)) << r.render_text();
}

TEST(CompileLintTest, SeparatorNotIntersection_JT004) {
  const std::vector<std::vector<int>> cliques = {{0, 1}, {1, 2}};
  std::vector<JunctionTreeEdge> edges(1);
  edges[0] = {0, 1, {0, 1}}; // true intersection is {1}
  DiagnosticReport r;
  lint_junction_structure(3, cliques, edges, r);
  EXPECT_TRUE(r.has_code(DiagCode::JT004)) << r.render_text();
}

TEST(CompileLintTest, UncoveredAndOutOfRangeVariables_JT005) {
  const std::vector<std::vector<int>> cliques = {{0, 5}};
  DiagnosticReport r;
  lint_junction_structure(3, cliques, {}, r);
  // Variable 5 is out of range; variables 1 and 2 appear in no clique.
  EXPECT_TRUE(r.has_code(DiagCode::JT005)) << r.render_text();
  EXPECT_GE(r.num_errors(), 3);
}

// --- estimator / analyzer integration ----------------------------------

TEST(VerifyIntegrationTest, EstimatorFullVerifyIsQuietOnBenchmark) {
  const Netlist nl = make_benchmark("c17");
  const InputModel model = InputModel::uniform(nl.num_inputs(), 0.5, 0.0);
  const LidagEstimator est(nl, model);
  const DiagnosticReport r = est.verify(VerifyLevel::Full);
  EXPECT_TRUE(r.empty()) << r.render_text();
  EXPECT_TRUE(est.verify(VerifyLevel::Off).empty());
}

TEST(VerifyIntegrationTest, VerifyKnobDoesNotThrowOnCleanCircuit) {
  const Netlist nl = make_benchmark("c17");
  const InputModel model = InputModel::uniform(nl.num_inputs(), 0.5, 0.0);
  EstimatorOptions opts;
  opts.verify = VerifyLevel::Full;
  EXPECT_NO_THROW({ const LidagEstimator est(nl, model, opts); });
}

TEST(VerifyIntegrationTest, SegmentedEstimatorVerifies) {
  // Force multi-segment compilation so cross-boundary roots exercise the
  // root-skipping path of the dependency check.
  const Netlist nl = make_benchmark("c432");
  const InputModel model = InputModel::uniform(nl.num_inputs(), 0.5, 0.0);
  EstimatorOptions opts;
  opts.single_bn_nodes = 64;
  opts.segment_nodes = 64;
  const LidagEstimator est(nl, model, opts);
  ASSERT_GT(est.num_segments(), 1);
  const DiagnosticReport r = est.verify(VerifyLevel::Full);
  // The generated c432 stand-in has floating nets (NL003/NL005 warnings),
  // but the compiled model and junction trees must be defect-free: every
  // model/compile code is error-severity.
  EXPECT_FALSE(r.has_errors()) << r.render_text();
}

TEST(VerifyIntegrationTest, AnalyzerVerifyFacade) {
  const Netlist nl = make_benchmark("c17");
  const SwitchingAnalyzer an(nl);
  const DiagnosticReport r = an.verify();
  EXPECT_TRUE(r.empty()) << r.render_text();
  // The report serializes and round-trips even when empty.
  const auto back = DiagnosticReport::from_json(r.render_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, r);
}

} // namespace
} // namespace bns
