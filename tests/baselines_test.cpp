#include <gtest/gtest.h>

#include <cmath>

#include "baselines/correlation.h"
#include "baselines/independence.h"
#include "baselines/transition_density.h"
#include "gen/benchmarks.h"
#include "gen/circuits.h"
#include "gen/generators.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace bns {
namespace {

// A fanout-free (tree) circuit: every estimator that keeps per-line
// temporal statistics and assumes spatial independence is exact here.
Netlist tree_circuit() {
  Netlist nl("tree");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId c = nl.add_input("c");
  const NodeId d = nl.add_input("d");
  const NodeId g1 = nl.add_gate(GateType::Nand, "g1", {a, b});
  const NodeId g2 = nl.add_gate(GateType::Xor, "g2", {c, d});
  const NodeId g3 = nl.add_gate(GateType::Or, "g3", {g1, g2});
  nl.mark_output(g3);
  return nl;
}

TEST(Independence, ExactOnTreeCircuits) {
  const Netlist nl = tree_circuit();
  std::vector<InputSpec> specs = {{0.3, 0.0, -1, 0},
                                  {0.6, 0.2, -1, 0},
                                  {0.5, -0.3, -1, 0},
                                  {0.8, 0.5, -1, 0}};
  const InputModel m = InputModel::custom(specs);
  const IndependenceResult r = estimate_independence(nl, m);
  const auto exact = exact_transition_dists(nl, m);
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    for (int s = 0; s < 4; ++s) {
      EXPECT_NEAR(r.dist[static_cast<std::size_t>(id)][static_cast<std::size_t>(s)],
                  exact[static_cast<std::size_t>(id)][static_cast<std::size_t>(s)],
                  1e-10);
    }
  }
}

TEST(Independence, WrongOnReconvergentFanout) {
  // y = AND(a, NOT a) is constant 0, but independence predicts
  // activity 2 * 1/4 * 3/4 = 0.375 for P(y = 1) = 0.25.
  Netlist nl("glitch");
  const NodeId a = nl.add_input("a");
  const NodeId na = nl.add_gate(GateType::Not, "na", {a});
  const NodeId y = nl.add_gate(GateType::And, "y", {a, na});
  nl.mark_output(y);
  const InputModel m = InputModel::uniform(1);
  const IndependenceResult r = estimate_independence(nl, m);
  EXPECT_NEAR(activity_of(r.dist[static_cast<std::size_t>(y)]), 0.375, 1e-10);
  EXPECT_NEAR(exact_activities(nl, m)[static_cast<std::size_t>(y)], 0.0, 1e-12);
}

TEST(Independence, WideGatesViaDecomposition) {
  Netlist nl("wide");
  std::vector<NodeId> ins;
  for (int i = 0; i < 10; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
  const NodeId y = nl.add_gate(GateType::And, "y", ins);
  nl.mark_output(y);
  const InputModel m = InputModel::uniform(10, 0.8, 0.0);
  const IndependenceResult r = estimate_independence(nl, m);
  // P(y=1) = 0.8^10; activity = 2 p (1-p) under temporal independence.
  const double p = std::pow(0.8, 10);
  EXPECT_NEAR(activity_of(r.dist[static_cast<std::size_t>(y)]),
              2 * p * (1 - p), 1e-9);
}

TEST(Independence, NoDriftOnDeepChains) {
  // Regression: output distributions must stay normalized through
  // hundreds of levels (rounding used to compound exponentially).
  RandomCircuitSpec spec;
  spec.num_inputs = 8;
  spec.num_outputs = 4;
  spec.num_gates = 600;
  spec.depth = 150;
  spec.seed = 5;
  const Netlist nl = random_circuit(spec, "deep");
  const IndependenceResult r =
      estimate_independence(nl, InputModel::uniform(8));
  for (const auto& d : r.dist) {
    EXPECT_NEAR(d[0] + d[1] + d[2] + d[3], 1.0, 1e-9);
    for (double v : d) {
      EXPECT_GE(v, -1e-12);
      EXPECT_LE(v, 1.0 + 1e-12);
    }
  }
}

TEST(TransitionDensity, InverterChainPreservesDensity) {
  Netlist nl("chain");
  NodeId prev = nl.add_input("a");
  for (int i = 0; i < 5; ++i) {
    prev = nl.add_gate(GateType::Not, "n" + std::to_string(i), {prev});
  }
  nl.mark_output(prev);
  const InputModel m = InputModel::uniform(1, 0.5, 0.6);
  const TransitionDensityResult r = estimate_transition_density(nl, m);
  const double input_density =
      activity_of(transition_distribution(0.5, 0.6));
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    EXPECT_NEAR(r.density[static_cast<std::size_t>(id)], input_density, 1e-10);
  }
}

TEST(TransitionDensity, AndGateBooleanDifference) {
  // D(y) = P(b)D(a) + P(a)D(b) for y = AND(a, b).
  Netlist nl("and");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId y = nl.add_gate(GateType::And, "y", {a, b});
  nl.mark_output(y);
  const InputModel m =
      InputModel::custom({{0.3, 0.0, -1, 0}, {0.8, 0.0, -1, 0}});
  const TransitionDensityResult r = estimate_transition_density(nl, m);
  const double da = 2 * 0.3 * 0.7;
  const double db = 2 * 0.8 * 0.2;
  EXPECT_NEAR(r.density[static_cast<std::size_t>(y)], 0.8 * da + 0.3 * db,
              1e-10);
  EXPECT_NEAR(r.signal_prob[static_cast<std::size_t>(y)], 0.24, 1e-10);
}

TEST(TransitionDensity, OverestimatesOnXorReconvergence) {
  // y = XOR(a, a) is constant; the density model charges 2*D(a).
  Netlist nl("xx");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_gate(GateType::Buf, "b", {a});
  const NodeId y = nl.add_gate(GateType::Xor, "y", {a, b});
  nl.mark_output(y);
  const InputModel m = InputModel::uniform(1);
  const TransitionDensityResult r = estimate_transition_density(nl, m);
  EXPECT_NEAR(r.density[static_cast<std::size_t>(y)], 1.0, 1e-10); // 2 * 0.5
  EXPECT_NEAR(exact_activities(nl, m)[static_cast<std::size_t>(y)], 0.0, 1e-12);
}

TEST(Correlation, ExactOnTreeCircuits) {
  const Netlist nl = tree_circuit();
  const InputModel m = InputModel::uniform(4, 0.4, 0.2);
  const CorrelationResult r = estimate_correlation(nl, m);
  const auto exact = exact_transition_dists(nl, m);
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    for (int s = 0; s < 4; ++s) {
      EXPECT_NEAR(r.dist[static_cast<std::size_t>(id)][static_cast<std::size_t>(s)],
                  exact[static_cast<std::size_t>(id)][static_cast<std::size_t>(s)],
                  1e-9);
    }
  }
}

TEST(Correlation, CapturesSimpleReconvergence) {
  // y = AND(a, NOT a): pairwise correlation suffices here (SC(a,na)=0).
  Netlist nl("glitch");
  const NodeId a = nl.add_input("a");
  const NodeId na = nl.add_gate(GateType::Not, "na", {a});
  const NodeId y = nl.add_gate(GateType::And, "y", {a, na});
  nl.mark_output(y);
  const InputModel m = InputModel::uniform(1);
  const CorrelationResult r = estimate_correlation(nl, m);
  EXPECT_NEAR(activity_of(r.dist[static_cast<std::size_t>(y)]), 0.0, 1e-9);
}

TEST(Correlation, MissesHigherOrderXorCorrelation) {
  // s = XOR(a, b), y = XOR(s, b) == a. Pairwise coefficients between s
  // and b are 1 (uncorrelated pairwise!), so the composition predicts a
  // fresh random signal, while the truth is y == a — exactly the
  // limitation the paper's BN removes.
  Netlist nl("xor3");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId s = nl.add_gate(GateType::Xor, "s", {a, b});
  const NodeId y = nl.add_gate(GateType::Xor, "y", {s, b});
  nl.mark_output(y);
  const InputModel m = InputModel::custom(
      {{0.5, 0.8, -1, 0}, {0.5, 0.0, -1, 0}}); // a is sticky, b is not
  const CorrelationResult r = estimate_correlation(nl, m);
  const double truth = exact_activities(nl, m)[static_cast<std::size_t>(y)];
  EXPECT_NEAR(truth, activity_of(transition_distribution(0.5, 0.8)), 1e-12);
  // The pairwise model cannot see y == a; it misestimates materially.
  EXPECT_GT(std::abs(activity_of(r.dist[static_cast<std::size_t>(y)]) - truth),
            0.05);
}

TEST(Correlation, BetterThanIndependenceOnReconvergentControl) {
  // On controller-style reconvergent logic the pairwise coefficients
  // recover most of the correlation that independence drops.
  const Netlist nl = make_benchmark("c432");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  const SimResult sim = SwitchingSimulator(nl).run(m, 1 << 21, 3);
  const auto ref = sim.activities();
  const ErrorStats corr =
      compute_error_stats(estimate_correlation(nl, m).activities(), ref);
  const ErrorStats indep =
      compute_error_stats(estimate_independence(nl, m).activities(), ref);
  EXPECT_LT(corr.mu_err, indep.mu_err * 0.5);
}

TEST(Correlation, GroupedInputCorrelationSeeded) {
  // Two noisy copies into an XNOR: activity depends on the correlation.
  Netlist nl("pair");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId eq = nl.add_gate(GateType::Xnor, "eq", {a, b});
  nl.mark_output(eq);
  const InputModel m = InputModel::custom(
      {{0.5, 0.0, 0, 0.05}, {0.5, 0.0, 0, 0.05}}, {{0.5, 0.0}});
  const CorrelationResult r = estimate_correlation(nl, m);
  // P(eq = 1) = 0.905 (see sim test); pairwise gets signal prob right.
  const auto d = r.dist[static_cast<std::size_t>(eq)];
  EXPECT_NEAR(d[T01] + d[T11], 0.905, 1e-2);
}

TEST(Correlation, RetiresDeadLinesToBoundMemory) {
  const Netlist nl = comparator(12);
  const InputModel m = InputModel::uniform(nl.num_inputs());
  const CorrelationResult r = estimate_correlation(nl, m);
  EXPECT_GT(r.max_live_pairs, 0u);
  EXPECT_LT(r.max_live_pairs, 5000u); // far below all-pairs (~180k)
}

} // namespace
} // namespace bns
