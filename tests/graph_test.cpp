#include <gtest/gtest.h>

#include "bn/graph.h"
#include "gen/circuits.h"
#include "lidag/lidag.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace bns {
namespace {

using testing_helpers::random_bayes_net;

UndirectedGraph cycle_graph(int n) {
  UndirectedGraph g(n);
  for (int i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  return g;
}

TEST(UndirectedGraph, BasicOps) {
  UndirectedGraph g(4);
  g.add_edge(0, 2);
  g.add_edge(0, 2); // idempotent
  g.add_edge(1, 3);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.edges(), (std::vector<std::pair<int, int>>{{0, 2}, {1, 3}}));
}

TEST(MoralGraph, MarriesCoParents) {
  // The paper's example: moralization adds X1–X2 (co-parents of X5).
  const Netlist nl = figure1_circuit();
  const InputModel m = InputModel::uniform(nl.num_inputs());
  const LidagBn lb = build_lidag(nl, m);
  const UndirectedGraph g = moral_graph(lb.bn);
  const VarId x1 = lb.var_of_node[0];
  const VarId x2 = lb.var_of_node[1];
  const VarId x3 = lb.var_of_node[2];
  const VarId x4 = lb.var_of_node[3];
  const VarId x5 = lb.var_of_node[4];
  EXPECT_TRUE(g.has_edge(x1, x2)); // married
  EXPECT_TRUE(g.has_edge(x3, x4)); // married
  EXPECT_TRUE(g.has_edge(x1, x5)); // original (dropped direction)
  EXPECT_FALSE(g.has_edge(x1, x3));
}

TEST(Triangulate, ChordalGraphNeedsNoFill) {
  // A tree is chordal.
  UndirectedGraph tree(6);
  tree.add_edge(0, 1);
  tree.add_edge(0, 2);
  tree.add_edge(2, 3);
  tree.add_edge(2, 4);
  tree.add_edge(4, 5);
  for (const auto h :
       {EliminationHeuristic::MinFill, EliminationHeuristic::MinDegree}) {
    const Triangulation t = triangulate(tree, h);
    EXPECT_TRUE(t.fill_edges.empty());
    EXPECT_EQ(t.max_clique_size(), 2u);
    EXPECT_EQ(t.cliques.size(), 5u); // one per edge
  }
}

TEST(Triangulate, CompleteGraphIsOneClique) {
  UndirectedGraph k4(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) k4.add_edge(i, j);
  }
  const Triangulation t = triangulate(k4);
  EXPECT_TRUE(t.fill_edges.empty());
  ASSERT_EQ(t.cliques.size(), 1u);
  EXPECT_EQ(t.cliques[0], (std::vector<int>{0, 1, 2, 3}));
}

TEST(Triangulate, FourCycleGetsOneChord) {
  const Triangulation t = triangulate(cycle_graph(4));
  EXPECT_EQ(t.fill_edges.size(), 1u);
  ASSERT_EQ(t.cliques.size(), 2u);
  EXPECT_EQ(t.cliques[0].size(), 3u);
  EXPECT_EQ(t.cliques[1].size(), 3u);
}

TEST(Triangulate, SixCycleMinFill) {
  const Triangulation t = triangulate(cycle_graph(6));
  // A 6-cycle triangulates with 3 chords into 4 triangles.
  EXPECT_EQ(t.fill_edges.size(), 3u);
  EXPECT_EQ(t.cliques.size(), 4u);
  EXPECT_EQ(t.max_clique_size(), 3u);
}

TEST(Triangulate, EliminationOrderIsPerfectForOwnResult) {
  Rng rng(31);
  // Random graph: the computed elimination order must be perfect for the
  // *filled* graph.
  for (int trial = 0; trial < 10; ++trial) {
    UndirectedGraph g(12);
    for (int e = 0; e < 20; ++e) {
      const int a = static_cast<int>(rng.below(12));
      const int b = static_cast<int>(rng.below(12));
      if (a != b) g.add_edge(a, b);
    }
    for (const auto h :
         {EliminationHeuristic::MinFill, EliminationHeuristic::MinDegree}) {
      const Triangulation t = triangulate(g, h);
      EXPECT_TRUE(is_perfect_elimination_order(t.graph, t.elimination_order));
    }
  }
}

TEST(Triangulate, CliquesAreMaximalAndCoverEdges) {
  Rng rng(37);
  for (int trial = 0; trial < 10; ++trial) {
    UndirectedGraph g(10);
    for (int e = 0; e < 16; ++e) {
      const int a = static_cast<int>(rng.below(10));
      const int b = static_cast<int>(rng.below(10));
      if (a != b) g.add_edge(a, b);
    }
    const Triangulation t = triangulate(g);
    // No clique is a subset of another.
    for (std::size_t i = 0; i < t.cliques.size(); ++i) {
      for (std::size_t j = 0; j < t.cliques.size(); ++j) {
        if (i == j) continue;
        EXPECT_FALSE(std::includes(t.cliques[j].begin(), t.cliques[j].end(),
                                   t.cliques[i].begin(), t.cliques[i].end()))
            << "clique " << i << " within " << j;
      }
    }
    // Every edge of the filled graph lies inside some clique.
    for (const auto& [a, b] : t.graph.edges()) {
      bool covered = false;
      for (const auto& c : t.cliques) {
        covered |= std::binary_search(c.begin(), c.end(), a) &&
                   std::binary_search(c.begin(), c.end(), b);
      }
      EXPECT_TRUE(covered) << a << "-" << b;
    }
    // Every clique is actually complete in the filled graph.
    for (const auto& c : t.cliques) {
      for (std::size_t i = 0; i < c.size(); ++i) {
        for (std::size_t j = i + 1; j < c.size(); ++j) {
          EXPECT_TRUE(t.graph.has_edge(c[i], c[j]));
        }
      }
    }
  }
}

TEST(Triangulate, WithExplicitOrder) {
  // Eliminating a 4-cycle in order 0,1,2,3 fills the 1–3 chord.
  const Triangulation t =
      triangulate_with_order(cycle_graph(4), std::vector<int>{0, 1, 2, 3});
  ASSERT_EQ(t.fill_edges.size(), 1u);
  EXPECT_EQ(t.fill_edges[0], (std::pair<int, int>{1, 3}));
}

TEST(Triangulate, StateSpaceAccountsForCards) {
  UndirectedGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const Triangulation t = triangulate(g);
  const int cards[] = {4, 4, 4};
  EXPECT_DOUBLE_EQ(t.total_state_space(cards), 32.0); // two 16-state cliques
}

TEST(Triangulate, FigureExampleFillsOnce) {
  // The paper adds exactly one fill edge to the moralized example
  // (X4–X7 with their order; min-fill finds a different single chord).
  const Netlist nl = figure1_circuit();
  const InputModel m = InputModel::uniform(nl.num_inputs());
  const LidagBn lb = build_lidag(nl, m);
  const Triangulation t = triangulate(moral_graph(lb.bn));
  EXPECT_EQ(t.fill_edges.size(), 1u);
  EXPECT_EQ(t.cliques.size(), 6u); // Figure 4 has six cliques
  EXPECT_EQ(t.max_clique_size(), 3u);
}

TEST(Triangulate, MoralGraphOfRandomBnIsCovered) {
  const BayesianNetwork bn = random_bayes_net(15, 3, 3, 41);
  const Triangulation t = triangulate(moral_graph(bn));
  // Each CPT family {v} ∪ parents must be inside one clique.
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    std::vector<int> fam(bn.parents(v).begin(), bn.parents(v).end());
    fam.push_back(v);
    std::sort(fam.begin(), fam.end());
    bool covered = false;
    for (const auto& c : t.cliques) {
      covered |= std::includes(c.begin(), c.end(), fam.begin(), fam.end());
    }
    EXPECT_TRUE(covered) << "family of " << v;
  }
}

} // namespace
} // namespace bns
