#include <gtest/gtest.h>

#include "gen/circuits.h"
#include "netlist/bench_io.h"
#include "netlist/blif_io.h"
#include "netlist/netlist.h"

namespace bns {
namespace {

TEST(Netlist, BasicConstruction) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::And, "g", {a, b});
  nl.mark_output(g);

  EXPECT_EQ(nl.num_nodes(), 3);
  EXPECT_EQ(nl.num_inputs(), 2);
  EXPECT_EQ(nl.num_outputs(), 1);
  EXPECT_EQ(nl.num_gates(), 1);
  EXPECT_TRUE(nl.is_output(g));
  EXPECT_FALSE(nl.is_output(a));
  EXPECT_EQ(nl.find("g"), g);
  EXPECT_EQ(nl.find("nope"), kInvalidNode);
  EXPECT_EQ(nl.node(g).fanin.size(), 2u);
}

TEST(Netlist, MarkOutputIdempotent) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  nl.mark_output(a);
  nl.mark_output(a);
  EXPECT_EQ(nl.num_outputs(), 1);
}

TEST(Netlist, LevelsAndDepth) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g1 = nl.add_gate(GateType::And, "g1", {a, b});
  const NodeId g2 = nl.add_gate(GateType::Not, "g2", {g1});
  const NodeId g3 = nl.add_gate(GateType::Or, "g3", {a, g2});
  const auto lvl = nl.levels();
  EXPECT_EQ(lvl[static_cast<std::size_t>(a)], 0);
  EXPECT_EQ(lvl[static_cast<std::size_t>(g1)], 1);
  EXPECT_EQ(lvl[static_cast<std::size_t>(g2)], 2);
  EXPECT_EQ(lvl[static_cast<std::size_t>(g3)], 3);
  EXPECT_EQ(nl.depth(), 3);
}

TEST(Netlist, FanoutCountsAndLists) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g1 = nl.add_gate(GateType::And, "g1", {a, b});
  const NodeId g2 = nl.add_gate(GateType::Or, "g2", {a, g1});
  const auto fo = nl.fanout_counts();
  EXPECT_EQ(fo[static_cast<std::size_t>(a)], 2);
  EXPECT_EQ(fo[static_cast<std::size_t>(b)], 1);
  EXPECT_EQ(fo[static_cast<std::size_t>(g1)], 1);
  EXPECT_EQ(fo[static_cast<std::size_t>(g2)], 0);
  const auto fl = nl.fanout_lists();
  EXPECT_EQ(fl[static_cast<std::size_t>(a)], (std::vector<NodeId>{g1, g2}));
}

TEST(Netlist, StatsOfC17) {
  const NetlistStats s = compute_stats(c17());
  EXPECT_EQ(s.num_inputs, 5);
  EXPECT_EQ(s.num_outputs, 2);
  EXPECT_EQ(s.num_gates, 6);
  EXPECT_EQ(s.num_nodes, 11);
  EXPECT_EQ(s.depth, 3);
  EXPECT_EQ(s.max_fanin, 2);
  EXPECT_DOUBLE_EQ(s.avg_fanin, 2.0);
}

// --- .bench reader/writer ------------------------------------------------

TEST(BenchIO, ParsesC17) {
  const Netlist nl = read_bench_string(kC17Bench, "c17");
  EXPECT_EQ(nl.num_inputs(), 5);
  EXPECT_EQ(nl.num_outputs(), 2);
  EXPECT_EQ(nl.num_gates(), 6);
  const NodeId g22 = nl.find("22");
  ASSERT_NE(g22, kInvalidNode);
  EXPECT_TRUE(nl.is_output(g22));
  EXPECT_EQ(nl.node(g22).type, GateType::Nand);
}

TEST(BenchIO, RoundTrip) {
  const Netlist original = c17();
  const std::string text = write_bench_string(original);
  const Netlist reparsed = read_bench_string(text, "c17");
  ASSERT_EQ(reparsed.num_nodes(), original.num_nodes());
  for (NodeId id = 0; id < original.num_nodes(); ++id) {
    const NodeId rid = reparsed.find(original.node(id).name);
    ASSERT_NE(rid, kInvalidNode);
    EXPECT_EQ(reparsed.node(rid).type, original.node(id).type);
    EXPECT_EQ(reparsed.node(rid).fanin.size(), original.node(id).fanin.size());
  }
  EXPECT_EQ(reparsed.num_outputs(), original.num_outputs());
}

TEST(BenchIO, ForwardReferencesAreResolved) {
  // `top` is defined before its operand.
  const char* text = R"(
INPUT(a)
INPUT(b)
OUTPUT(top)
top = AND(mid, a)
mid = OR(a, b)
)";
  const Netlist nl = read_bench_string(text);
  const NodeId top = nl.find("top");
  const NodeId mid = nl.find("mid");
  ASSERT_NE(top, kInvalidNode);
  ASSERT_NE(mid, kInvalidNode);
  EXPECT_LT(mid, top); // topological: operand first
}

TEST(BenchIO, DetectsCycle) {
  const char* text = R"(
INPUT(a)
x = AND(a, y)
y = OR(x, a)
)";
  EXPECT_THROW(read_bench_string(text), ParseError);
}

TEST(BenchIO, DetectsUndefinedSignal) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nx = AND(a, ghost)\n"), ParseError);
}

TEST(BenchIO, DetectsDuplicateDefinition) {
  const char* text = "INPUT(a)\nx = NOT(a)\nx = BUF(a)\n";
  EXPECT_THROW(read_bench_string(text), ParseError);
}

TEST(BenchIO, DetectsUnknownGate) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nx = FROB(a)\n"), ParseError);
}

TEST(BenchIO, DetectsBadFaninCount) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nINPUT(b)\nx = NOT(a, b)\n"),
               ParseError);
}

TEST(BenchIO, CommentsAndBlankLinesIgnored) {
  const char* text = "# hello\n\nINPUT(a)\n  # indented comment\nx = NOT(a)\n";
  EXPECT_EQ(read_bench_string(text).num_nodes(), 2);
}

// --- BLIF reader ----------------------------------------------------------

TEST(BlifIO, ParsesOnSetCover) {
  const char* text = R"(
.model tiny
.inputs a b
.outputs y
.names a b y
11 1
.end
)";
  const Netlist nl = read_blif_string(text);
  EXPECT_EQ(nl.name(), "tiny");
  const NodeId y = nl.find("y");
  ASSERT_NE(y, kInvalidNode);
  ASSERT_EQ(nl.node(y).type, GateType::Lut);
  EXPECT_EQ(nl.node(y).lut->to_string(), "0001"); // AND
}

TEST(BlifIO, ParsesOffSetCover) {
  const char* text = ".inputs a b\n.outputs y\n.names a b y\n11 0\n";
  const Netlist nl = read_blif_string(text);
  // Complement of the 11 cube: NAND.
  EXPECT_EQ(nl.node(nl.find("y")).lut->to_string(), "1110");
}

TEST(BlifIO, DontCaresInCubes) {
  const char* text = ".inputs a b c\n.outputs y\n.names a b c y\n1-1 1\n01- 1\n";
  const Netlist nl = read_blif_string(text);
  const TruthTable& tt = *nl.node(nl.find("y")).lut;
  // y = (a & c) | (!a & b); minterm order: a = bit0, b = bit1, c = bit2.
  for (std::uint64_t m = 0; m < 8; ++m) {
    const bool a = m & 1;
    const bool b = m & 2;
    const bool c = m & 4;
    EXPECT_EQ(tt.value(m), (a && c) || (!a && b)) << m;
  }
}

TEST(BlifIO, ConstantNodes) {
  const char* text = ".inputs a\n.outputs one zero\n.names one\n1\n.names zero\n.names sink a\n1 1\n";
  const Netlist nl = read_blif_string(text);
  EXPECT_EQ(nl.node(nl.find("one")).lut->to_string(), "1");
  EXPECT_EQ(nl.node(nl.find("zero")).lut->to_string(), "0");
}

TEST(BlifIO, ContinuationLines) {
  const char* text = ".inputs a \\\n b\n.outputs y\n.names a b y\n11 1\n";
  const Netlist nl = read_blif_string(text);
  EXPECT_EQ(nl.num_inputs(), 2);
}

TEST(BlifIO, RejectsLatches) {
  EXPECT_THROW(read_blif_string(".inputs a\n.latch a b 0\n"), ParseError);
}

TEST(BlifIO, RejectsMixedCover) {
  EXPECT_THROW(
      read_blif_string(".inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n"),
      ParseError);
}

TEST(BlifIO, WriteReadRoundTrip) {
  // c17 written as BLIF and re-read must compute the same functions.
  const Netlist a = c17();
  const Netlist b = read_blif_string(write_blif_string(a), "c17");
  EXPECT_EQ(b.name(), "c17");
  ASSERT_EQ(b.num_inputs(), a.num_inputs());
  ASSERT_EQ(b.num_outputs(), a.num_outputs());
  // Exhaustive functional equivalence over all 32 input patterns.
  for (int m = 0; m < 32; ++m) {
    auto eval = [&](const Netlist& nl) {
      std::vector<bool> vals(static_cast<std::size_t>(nl.num_nodes()));
      for (int i = 0; i < nl.num_inputs(); ++i) {
        vals[static_cast<std::size_t>(nl.inputs()[static_cast<std::size_t>(i)])] =
            (m >> i) & 1;
      }
      for (NodeId id = 0; id < nl.num_nodes(); ++id) {
        const Node& n = nl.node(id);
        if (n.type == GateType::Input) continue;
        bool in[4];
        for (std::size_t k = 0; k < n.fanin.size(); ++k) {
          in[k] = vals[static_cast<std::size_t>(n.fanin[k])];
        }
        const std::span<const bool> sp(in, n.fanin.size());
        vals[static_cast<std::size_t>(id)] =
            n.type == GateType::Lut ? n.lut->eval(sp) : eval_gate(n.type, sp);
      }
      int out = 0;
      for (std::size_t k = 0; k < nl.outputs().size(); ++k) {
        if (vals[static_cast<std::size_t>(nl.outputs()[k])]) out |= 1 << k;
      }
      return out;
    };
    EXPECT_EQ(eval(a), eval(b)) << "pattern " << m;
  }
}

TEST(BlifIO, ForwardReferencesAndCycles) {
  const char* fwd =
      ".inputs a\n.outputs y\n.names m y\n1 1\n.names a m\n0 1\n";
  EXPECT_EQ(read_blif_string(fwd).num_nodes(), 3);
  const char* cyc = ".inputs a\n.outputs y\n.names y m\n1 1\n.names m y\n1 1\n";
  EXPECT_THROW(read_blif_string(cyc), ParseError);
}

} // namespace
} // namespace bns
