#include <gtest/gtest.h>

#include "sim/input_model.h"

namespace bns {
namespace {

TEST(TransitionDistribution, IidEquiprobable) {
  const auto d = transition_distribution(0.5, 0.0);
  for (double p : d) EXPECT_NEAR(p, 0.25, 1e-12);
  EXPECT_NEAR(activity_of(d), 0.5, 1e-12);
}

TEST(TransitionDistribution, MarginalsAreStationary) {
  for (double p : {0.1, 0.3, 0.5, 0.8}) {
    for (double rho : {0.0, 0.4, 0.9, -0.05}) {
      if (rho < rho_min(p)) continue;
      const auto d = transition_distribution(p, rho);
      EXPECT_NEAR(d[T10] + d[T11], p, 1e-12) << "P(prev=1)";
      EXPECT_NEAR(d[T01] + d[T11], p, 1e-12) << "P(cur=1)";
      EXPECT_NEAR(d[T01], d[T10], 1e-12) << "stationarity";
      EXPECT_NEAR(d[0] + d[1] + d[2] + d[3], 1.0, 1e-12);
    }
  }
}

TEST(TransitionDistribution, FullCorrelationFreezesSignal) {
  const auto d = transition_distribution(0.3, 1.0);
  EXPECT_NEAR(d[T01], 0.0, 1e-12);
  EXPECT_NEAR(d[T10], 0.0, 1e-12);
  EXPECT_NEAR(d[T11], 0.3, 1e-12);
  EXPECT_NEAR(activity_of(d), 0.0, 1e-12);
}

TEST(TransitionDistribution, MaxAnticorrelationAtHalf) {
  // p = 0.5, rho = -1: the signal alternates every cycle.
  EXPECT_NEAR(rho_min(0.5), -1.0, 1e-12);
  const auto d = transition_distribution(0.5, -1.0);
  EXPECT_NEAR(activity_of(d), 1.0, 1e-12);
  EXPECT_NEAR(d[T00], 0.0, 1e-12);
  EXPECT_NEAR(d[T11], 0.0, 1e-12);
}

TEST(TransitionDistribution, DegenerateProbabilities) {
  const auto zero = transition_distribution(0.0, 0.0);
  EXPECT_NEAR(zero[T00], 1.0, 1e-12);
  const auto one = transition_distribution(1.0, 0.0);
  EXPECT_NEAR(one[T11], 1.0, 1e-12);
}

TEST(TransitionDistribution, ActivityIsTwoPQWhenIndependent) {
  for (double p : {0.2, 0.5, 0.7}) {
    const auto d = transition_distribution(p, 0.0);
    EXPECT_NEAR(activity_of(d), 2 * p * (1 - p), 1e-12);
  }
}

TEST(TransitionDistribution, ConditionalsClampedAtRhoMin) {
  // At rho == rho_min(p) the exact conditional is 0 (or 1), but rho_min's
  // subtraction rounds, so the raw expressions can land a few ulp outside
  // [0, 1] and leak negative CPT cells into the engine. Stress p values
  // whose rho_min is far from representable.
  for (double p : {1e-12, 1e-9, 1e-4, 0.1, 0.3, 0.5, 0.7, 0.9,
                   1.0 - 1e-4, 1.0 - 1e-9}) {
    const double rho = rho_min(p);
    const double g0 = p1_given_0(p, rho);
    const double g1 = p1_given_1(p, rho);
    EXPECT_GE(g0, 0.0) << "p=" << p;
    EXPECT_LE(g0, 1.0) << "p=" << p;
    EXPECT_GE(g1, 0.0) << "p=" << p;
    EXPECT_LE(g1, 1.0) << "p=" << p;
    const auto d = transition_distribution(p, rho);
    for (double v : d) {
      EXPECT_GE(v, 0.0) << "p=" << p;
      EXPECT_LE(v, 1.0) << "p=" << p;
    }
  }
}

TEST(TransitionDistribution, ConditionalsClampedAtFullCorrelation) {
  // rho == 1.0 with p near the edges: p + rho*(1-p) must not exceed 1.
  for (double p : {0.0, 1e-12, 1e-9, 0.5, 1.0 - 1e-12, 1.0}) {
    const double g1 = p1_given_1(p, 1.0);
    const double g0 = p1_given_0(p, 1.0);
    EXPECT_GE(g1, 0.0) << "p=" << p;
    EXPECT_LE(g1, 1.0) << "p=" << p;
    EXPECT_GE(g0, 0.0) << "p=" << p;
    EXPECT_LE(g0, 1.0) << "p=" << p;
    const auto d = transition_distribution(p, 1.0);
    for (double v : d) {
      EXPECT_GE(v, 0.0) << "p=" << p;
      EXPECT_LE(v, 1.0) << "p=" << p;
    }
  }
}

TEST(RhoMin, SymmetricAndBounded) {
  EXPECT_NEAR(rho_min(0.2), rho_min(0.8), 1e-12);
  EXPECT_LE(rho_min(0.3), 0.0);
  EXPECT_NEAR(rho_min(0.1), -1.0 / 9.0, 1e-9);
}

TEST(InputModel, UniformFactory) {
  const InputModel m = InputModel::uniform(4, 0.3, 0.2);
  EXPECT_EQ(m.num_inputs(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(m.spec(i).p, 0.3);
    EXPECT_DOUBLE_EQ(m.spec(i).rho, 0.2);
  }
  EXPECT_FALSE(m.has_spatial_correlation());
}

TEST(InputModel, GroupedTransitionDistMarginalizesSource) {
  // flip = 0: the input IS the source.
  const InputModel m = InputModel::custom({{0.0, 0.0, 0, 0.0}}, {{0.3, 0.5}});
  const auto d = m.transition_dist(0);
  const auto src = transition_distribution(0.3, 0.5);
  for (int s = 0; s < 4; ++s) {
    EXPECT_NEAR(d[static_cast<std::size_t>(s)], src[static_cast<std::size_t>(s)], 1e-12);
  }
}

TEST(InputModel, GroupedFlipHalfIsPureNoise) {
  // flip = 0.5 decorrelates completely: uniform pair distribution.
  const InputModel m = InputModel::custom({{0.0, 0.0, 0, 0.5}}, {{0.2, 0.9}});
  const auto d = m.transition_dist(0);
  for (double v : d) EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(InputModel, GroupedFlipKeepsStationarity) {
  const InputModel m = InputModel::custom({{0.0, 0.0, 0, 0.2}}, {{0.7, 0.4}});
  const auto d = m.transition_dist(0);
  EXPECT_NEAR(d[0] + d[1] + d[2] + d[3], 1.0, 1e-12);
  // P(x=1) = p_src(1-q) + (1-p_src)q = 0.7*0.8 + 0.3*0.2
  EXPECT_NEAR(d[T01] + d[T11], 0.62, 1e-12);
  EXPECT_NEAR(d[T01], d[T10], 1e-12);
}

TEST(InputModel, HasSpatialCorrelation) {
  const InputModel m =
      InputModel::custom({{0.5, 0, -1, 0}, {0.5, 0, 0, 0.1}}, {{0.5, 0.0}});
  EXPECT_TRUE(m.has_spatial_correlation());
}

} // namespace
} // namespace bns
