// Cross-module integration tests: the paper's end-to-end claims on
// circuits large enough to need the full machinery.
#include <gtest/gtest.h>

#include "baselines/correlation.h"
#include "baselines/independence.h"
#include "core/analyzer.h"
#include "core/experiment.h"
#include "gen/benchmarks.h"
#include "gen/circuits.h"
#include "netlist/blif_io.h"
#include "lidag/lidag.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace bns {
namespace {

TEST(Integration, FigureExampleStructureMatchesPaper) {
  const Netlist nl = figure1_circuit();
  const InputModel m = InputModel::uniform(nl.num_inputs());
  const LidagBn lb = build_lidag(nl, m);
  const UndirectedGraph moral = moral_graph(lb.bn);
  // Moralization marries X1–X2 (Figure 3's dashed edge).
  EXPECT_TRUE(moral.has_edge(lb.var_of_node[0], lb.var_of_node[1]));
  const Triangulation tri = triangulate(moral);
  EXPECT_EQ(tri.fill_edges.size(), 1u); // one dash-dotted fill edge
  const JunctionTree jt(tri);
  EXPECT_EQ(jt.num_cliques(), 6); // Figure 4 has C1..C6
  EXPECT_EQ(jt.check_running_intersection(), "");
  // Each clique has at most 3 of the 4-state variables.
  for (const auto& c : jt.cliques()) EXPECT_LE(c.size(), 3u);
}

class SuiteAccuracy : public ::testing::TestWithParam<std::string> {};

// Table-1-style acceptance: BN errors on the evaluation suite stay in
// the paper's regime (small mean error; %error below a few percent).
TEST_P(SuiteAccuracy, BnTracksSimulation) {
  const Netlist nl = make_benchmark(GetParam());
  ExperimentConfig cfg;
  cfg.sim_pairs = 1 << 20;
  cfg.run_density = false;
  cfg.run_correlation = false;
  cfg.run_independence = false;
  const ExperimentResult r = run_experiment(nl, cfg);
  const MethodResult& bn = r.method("bn");
  // Random stand-ins carry denser medium-range reconvergence than the
  // cone-structured real netlists, so they get a looser budget (see
  // EXPERIMENTS.md, threats to validity).
  const bool random_standin = benchmark_info(GetParam()).origin == "random";
  EXPECT_LT(bn.err.mu_err, random_standin ? 0.05 : 0.02) << GetParam();
  EXPECT_LT(bn.err.pct_err, 8.0) << GetParam();
  // Single-BN circuits are exact up to simulation noise (paper §6).
  if (r.bn_segments == 1) {
    EXPECT_LT(bn.err.mu_err, 2e-3) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(SmallAndMedium, SuiteAccuracy,
                         ::testing::Values("c17", "comp", "count", "pcler8",
                                           "b9", "c432", "c499", "voter",
                                           "alu4"));

TEST(Integration, BnBeatsIndependenceOnParityCircuits) {
  // The headline qualitative claim of Table 2: exact dependency modeling
  // wins where higher-order correlation dominates.
  for (const char* name : {"c1355", "c499"}) {
    const Netlist nl = make_benchmark(name);
    ExperimentConfig cfg;
    cfg.sim_pairs = 1 << 20;
    cfg.run_density = false;
    const ExperimentResult r = run_experiment(nl, cfg);
    EXPECT_LE(r.method("bn").err.mu_err,
              r.method("independence").err.mu_err + 1e-6)
        << name;
    EXPECT_LE(r.method("bn").err.mu_err, r.method("paircorr").err.mu_err + 1e-6)
        << name;
  }
}

TEST(Integration, UpdateIsMuchCheaperThanCompile) {
  const Netlist nl = make_benchmark("c1355");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  LidagEstimator est(nl, m);
  // Warm-up then measure a couple of updates.
  (void)est.estimate(m);
  double worst_update = 0.0;
  for (double p : {0.3, 0.6, 0.8}) {
    const SwitchingEstimate sw =
        est.estimate(InputModel::uniform(nl.num_inputs(), p, 0.0));
    worst_update = std::max(worst_update, sw.stats.propagate_seconds);
  }
  EXPECT_LT(worst_update, est.compile_stats().compile_seconds)
      << "propagation must be cheaper than compilation";
}

TEST(Integration, AnalyzerPowerModel) {
  const Netlist nl = make_benchmark("c17");
  SwitchingAnalyzer an(nl);
  const SwitchingEstimate active = an.estimate();
  const double p_active = an.dynamic_power_watts(active);
  EXPECT_GT(p_active, 0.0);

  // Frozen inputs: zero switching, zero dynamic power.
  const SwitchingEstimate frozen =
      an.estimate(InputModel::uniform(nl.num_inputs(), 0.5, 1.0));
  EXPECT_NEAR(an.dynamic_power_watts(frozen), 0.0, 1e-15);
  // Power scales linearly with frequency.
  EXPECT_NEAR(an.dynamic_power_watts(active, 1.8, 200e6),
              2 * p_active, 1e-12);
}

TEST(Integration, ExperimentRunnerFieldsConsistent) {
  const Netlist nl = make_benchmark("count");
  ExperimentConfig cfg;
  cfg.sim_pairs = 1 << 18;
  const ExperimentResult r = run_experiment(nl, cfg);
  EXPECT_EQ(r.circuit, "count");
  EXPECT_EQ(r.methods.size(), 4u);
  EXPECT_GT(r.sim_avg_activity, 0.0);
  EXPECT_GE(r.bn_segments, 1);
  for (const MethodResult& mr : r.methods) {
    EXPECT_GE(mr.err.mu_err, 0.0);
    EXPECT_GE(mr.seconds, 0.0);
  }
  EXPECT_THROW(r.method("nope"), std::invalid_argument);
}

TEST(Integration, BlifCircuitThroughFullPipeline) {
  const char* blif = R"(
.model lutmix
.inputs a b c
.outputs y z
.names a b t
10 1
01 1
.names t c y
11 1
.names a c z
0- 1
-0 1
.end
)";
  const Netlist nl = read_blif_string(blif);
  const InputModel m = InputModel::uniform(nl.num_inputs(), 0.4, 0.3);
  LidagEstimator est(nl, m);
  const SwitchingEstimate sw = est.estimate(m);
  const auto exact = exact_activities(nl, m);
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    EXPECT_NEAR(sw.activity(id), exact[static_cast<std::size_t>(id)], 1e-10);
  }
}

TEST(Integration, ReportedActivityBoundsAreRespected) {
  // Probabilities must be well-formed on every line of a segmented run.
  const Netlist nl = make_benchmark("c880");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  LidagEstimator est(nl, m);
  const SwitchingEstimate sw = est.estimate(m);
  for (const auto& d : sw.dist) {
    double sum = 0.0;
    for (double v : d) {
      EXPECT_GE(v, -1e-9);
      EXPECT_LE(v, 1.0 + 1e-9);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

} // namespace
} // namespace bns
