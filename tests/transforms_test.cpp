#include <gtest/gtest.h>

#include "gen/benchmarks.h"
#include "gen/generators.h"
#include "netlist/transforms.h"
#include "sim/simulator.h"

namespace bns {
namespace {

// Checks functional equivalence of a transformed netlist by comparing
// bit-parallel simulations on identical input streams.
void expect_equivalent(const Netlist& a, const MappedNetlist& b,
                       std::uint64_t seed) {
  ASSERT_EQ(a.num_inputs(), b.netlist.num_inputs());
  const InputModel m = InputModel::uniform(a.num_inputs());
  const SimResult ra = SwitchingSimulator(a).run(m, 64 * 256, seed);
  const SimResult rb = SwitchingSimulator(b.netlist).run(m, 64 * 256, seed);
  // Identical seeds generate identical streams only when the *input
  // node order* matches, which both transforms preserve. Every original
  // line must show identical transition counts on its mapped twin.
  for (NodeId id = 0; id < a.num_nodes(); ++id) {
    const NodeId mid = b.map[static_cast<std::size_t>(id)];
    ASSERT_NE(mid, kInvalidNode);
    EXPECT_EQ(ra.counts(id), rb.counts(mid)) << "line " << a.node(id).name;
  }
}

TEST(DecomposeWideGates, PreservesFunction) {
  // Build a circuit with wide gates of every associative family.
  Netlist nl("wide");
  std::vector<NodeId> ins;
  for (int i = 0; i < 9; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
  nl.mark_output(nl.add_gate(GateType::Nand, "n9", ins));
  nl.mark_output(nl.add_gate(GateType::Xor, "x7", std::vector<NodeId>(ins.begin(), ins.begin() + 7)));
  nl.mark_output(nl.add_gate(GateType::Nor, "r6", std::vector<NodeId>(ins.begin(), ins.begin() + 6)));
  nl.mark_output(nl.add_gate(GateType::And, "a5", std::vector<NodeId>(ins.begin(), ins.begin() + 5)));

  const MappedNetlist d = decompose_wide_gates(nl, 3);
  EXPECT_LE(d.netlist.max_fanin(), 3);
  expect_equivalent(nl, d, 101);
}

TEST(DecomposeWideGates, NarrowGatesUntouched) {
  const Netlist nl = make_benchmark("c17");
  const MappedNetlist d = decompose_wide_gates(nl, 4);
  EXPECT_EQ(d.netlist.num_nodes(), nl.num_nodes());
}

TEST(DecomposeWideGates, PreservesOutputs) {
  Netlist nl("w");
  std::vector<NodeId> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
  const NodeId g = nl.add_gate(GateType::Or, "g", ins);
  nl.mark_output(g);
  const MappedNetlist d = decompose_wide_gates(nl, 2);
  EXPECT_EQ(d.netlist.num_outputs(), 1);
  EXPECT_TRUE(d.netlist.is_output(d.map[static_cast<std::size_t>(g)]));
}

TEST(ReorderConeDfs, ValidTopologicalOrder) {
  const Netlist nl = make_benchmark("c880");
  const MappedNetlist r = reorder_cone_dfs(nl);
  ASSERT_EQ(r.netlist.num_nodes(), nl.num_nodes());
  // Netlist construction enforces fanin-before-use, so a successful
  // rebuild already proves the order is topological; also check the
  // mapping is a bijection.
  std::vector<bool> seen(static_cast<std::size_t>(nl.num_nodes()), false);
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const NodeId mid = r.map[static_cast<std::size_t>(id)];
    ASSERT_GE(mid, 0);
    ASSERT_LT(mid, nl.num_nodes());
    EXPECT_FALSE(seen[static_cast<std::size_t>(mid)]);
    seen[static_cast<std::size_t>(mid)] = true;
  }
}

TEST(ReorderConeDfs, FirstConeIsContiguousPrefix) {
  // Two disjoint cones: out1 over {a,b}, out2 over {c,d}. Cone order
  // must emit all of cone 1 before any of cone 2.
  Netlist nl("cones");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId c = nl.add_input("c");
  const NodeId d = nl.add_input("d");
  const NodeId g1 = nl.add_gate(GateType::And, "g1", {a, b});
  const NodeId g2 = nl.add_gate(GateType::Or, "g2", {c, d});
  nl.mark_output(g1);
  nl.mark_output(g2);

  const MappedNetlist r = reorder_cone_dfs(nl);
  // Inputs keep their original slots; g1's cone root comes right after
  // them, before anything of g2's cone.
  for (NodeId in : {a, b, c, d}) {
    EXPECT_EQ(r.map[static_cast<std::size_t>(in)], in);
  }
  EXPECT_EQ(r.map[static_cast<std::size_t>(g1)], 4);
  EXPECT_EQ(r.map[static_cast<std::size_t>(g2)], 5);
}

TEST(ReorderConeDfs, PreservesFunctionAndInputOrder) {
  const Netlist nl = make_benchmark("comp");
  const MappedNetlist r = reorder_cone_dfs(nl);
  for (int i = 0; i < nl.num_inputs(); ++i) {
    EXPECT_EQ(r.netlist.node(r.netlist.inputs()[static_cast<std::size_t>(i)]).name,
              nl.node(nl.inputs()[static_cast<std::size_t>(i)]).name);
  }
  expect_equivalent(nl, r, 202);
}

TEST(ReorderConeDfs, DanglingNodesKept) {
  Netlist nl("dangle");
  const NodeId a = nl.add_input("a");
  nl.add_gate(GateType::Not, "dead", {a}); // no output marks it
  const NodeId live = nl.add_gate(GateType::Buf, "live", {a});
  nl.mark_output(live);
  const MappedNetlist r = reorder_cone_dfs(nl);
  EXPECT_EQ(r.netlist.num_nodes(), 3);
  EXPECT_NE(r.netlist.find("dead"), kInvalidNode);
}

} // namespace
} // namespace bns
