#include <gtest/gtest.h>

#include "netlist/gate.h"
#include "netlist/truth_table.h"
#include "util/rng.h"

namespace bns {
namespace {

const GateType kLogicGates[] = {GateType::And, GateType::Nand, GateType::Or,
                                GateType::Nor, GateType::Xor, GateType::Xnor};

TEST(Gate, NamesRoundTrip) {
  for (GateType t : {GateType::Input, GateType::Buf, GateType::Not,
                     GateType::And, GateType::Nand, GateType::Or,
                     GateType::Nor, GateType::Xor, GateType::Xnor,
                     GateType::Const0, GateType::Const1}) {
    GateType parsed;
    ASSERT_TRUE(parse_gate_type(gate_type_name(t), parsed));
    EXPECT_EQ(parsed, t);
  }
}

TEST(Gate, ParseAliasesAndCase) {
  GateType t;
  ASSERT_TRUE(parse_gate_type("buff", t));
  EXPECT_EQ(t, GateType::Buf);
  ASSERT_TRUE(parse_gate_type("inv", t));
  EXPECT_EQ(t, GateType::Not);
  ASSERT_TRUE(parse_gate_type("nAnD", t));
  EXPECT_EQ(t, GateType::Nand);
  EXPECT_FALSE(parse_gate_type("frobnicate", t));
}

TEST(Gate, TwoInputSemantics) {
  struct Case {
    GateType t;
    bool expect[4]; // inputs 00, 01, 10, 11 (a = bit0, b = bit1)
  };
  const Case cases[] = {
      {GateType::And, {false, false, false, true}},
      {GateType::Nand, {true, true, true, false}},
      {GateType::Or, {false, true, true, true}},
      {GateType::Nor, {true, false, false, false}},
      {GateType::Xor, {false, true, true, false}},
      {GateType::Xnor, {true, false, false, true}},
  };
  for (const Case& c : cases) {
    for (int m = 0; m < 4; ++m) {
      const bool in[2] = {(m & 1) != 0, (m & 2) != 0};
      EXPECT_EQ(eval_gate(c.t, in), c.expect[m]) << gate_type_name(c.t) << m;
    }
  }
}

TEST(Gate, UnaryAndConstants) {
  const bool t = true;
  const bool f = false;
  EXPECT_TRUE(eval_gate(GateType::Buf, {&t, 1}));
  EXPECT_FALSE(eval_gate(GateType::Not, {&t, 1}));
  EXPECT_TRUE(eval_gate(GateType::Not, {&f, 1}));
  EXPECT_FALSE(eval_gate(GateType::Const0, {}));
  EXPECT_TRUE(eval_gate(GateType::Const1, {}));
}

TEST(Gate, WordEvalMatchesScalarForAllTypesAndFanins) {
  Rng rng(23);
  for (GateType t : kLogicGates) {
    for (int k = 1; k <= 6; ++k) {
      std::vector<std::uint64_t> words(static_cast<std::size_t>(k));
      for (auto& w : words) w = rng.bits64();
      const std::uint64_t out = eval_gate_words(t, words);
      for (int lane = 0; lane < 64; ++lane) {
        std::vector<bool> in;
        bool buf[8];
        for (int i = 0; i < k; ++i) buf[i] = (words[static_cast<std::size_t>(i)] >> lane) & 1;
        (void)in;
        const bool expect = eval_gate(t, std::span<const bool>(buf, static_cast<std::size_t>(k)));
        EXPECT_EQ(((out >> lane) & 1) != 0, expect)
            << gate_type_name(t) << " k=" << k << " lane=" << lane;
      }
    }
  }
}

TEST(Gate, AssociativityClassification) {
  EXPECT_TRUE(is_associative(GateType::And));
  EXPECT_TRUE(is_associative(GateType::Or));
  EXPECT_TRUE(is_associative(GateType::Xor));
  EXPECT_FALSE(is_associative(GateType::Nand));
  EXPECT_FALSE(is_associative(GateType::Not));
  EXPECT_EQ(uninverted_core(GateType::Nand), GateType::And);
  EXPECT_EQ(uninverted_core(GateType::Nor), GateType::Or);
  EXPECT_EQ(uninverted_core(GateType::Xnor), GateType::Xor);
  EXPECT_EQ(uninverted_core(GateType::Not), GateType::Buf);
  EXPECT_EQ(uninverted_core(GateType::And), GateType::And);
  EXPECT_TRUE(is_inverting(GateType::Nor));
  EXPECT_FALSE(is_inverting(GateType::Or));
}

TEST(Gate, FaninCountValidation) {
  EXPECT_TRUE(fanin_count_ok(GateType::Input, 0));
  EXPECT_FALSE(fanin_count_ok(GateType::Input, 1));
  EXPECT_TRUE(fanin_count_ok(GateType::Not, 1));
  EXPECT_FALSE(fanin_count_ok(GateType::Not, 2));
  EXPECT_TRUE(fanin_count_ok(GateType::Nand, 9));
  EXPECT_FALSE(fanin_count_ok(GateType::And, 0));
}

// --- TruthTable ----------------------------------------------------------

TEST(TruthTable, OfGateMatchesEval) {
  for (GateType t : kLogicGates) {
    for (int k = 1; k <= 5; ++k) {
      const TruthTable tt = TruthTable::of_gate(t, k);
      for (std::uint64_t m = 0; m < (1ULL << k); ++m) {
        bool in[8];
        for (int i = 0; i < k; ++i) in[i] = (m >> i) & 1;
        EXPECT_EQ(tt.value(m),
                  eval_gate(t, std::span<const bool>(in, static_cast<std::size_t>(k))));
      }
    }
  }
}

TEST(TruthTable, SetAndGet) {
  TruthTable tt(3);
  for (std::uint64_t m = 0; m < 8; ++m) EXPECT_FALSE(tt.value(m));
  tt.set_value(5, true);
  EXPECT_TRUE(tt.value(5));
  tt.set_value(5, false);
  EXPECT_FALSE(tt.value(5));
}

TEST(TruthTable, LargeTableCrossesWordBoundary) {
  TruthTable tt(8); // 256 rows = 4 words
  tt.set_value(0, true);
  tt.set_value(63, true);
  tt.set_value(64, true);
  tt.set_value(255, true);
  EXPECT_TRUE(tt.value(0));
  EXPECT_TRUE(tt.value(63));
  EXPECT_TRUE(tt.value(64));
  EXPECT_TRUE(tt.value(255));
  EXPECT_FALSE(tt.value(128));
}

TEST(TruthTable, EvalWordsMatchesScalar) {
  Rng rng(29);
  for (int k = 1; k <= 6; ++k) {
    TruthTable tt(k);
    for (std::uint64_t m = 0; m < tt.num_rows(); ++m) {
      tt.set_value(m, rng.bernoulli(0.5));
    }
    std::vector<std::uint64_t> words(static_cast<std::size_t>(k));
    for (auto& w : words) w = rng.bits64();
    const std::uint64_t out = tt.eval_words(words);
    for (int lane = 0; lane < 64; ++lane) {
      bool in[8];
      for (int i = 0; i < k; ++i) in[i] = (words[static_cast<std::size_t>(i)] >> lane) & 1;
      EXPECT_EQ(((out >> lane) & 1) != 0,
                tt.eval(std::span<const bool>(in, static_cast<std::size_t>(k))));
    }
  }
}

TEST(TruthTable, CofactorAndRedundancy) {
  // f(a, b, c) = a AND c: b is redundant.
  TruthTable tt(3);
  for (std::uint64_t m = 0; m < 8; ++m) {
    tt.set_value(m, ((m & 1) != 0) && ((m & 4) != 0));
  }
  EXPECT_FALSE(tt.input_is_redundant(0));
  EXPECT_TRUE(tt.input_is_redundant(1));
  EXPECT_FALSE(tt.input_is_redundant(2));

  const TruthTable c1 = tt.cofactor(2, true); // fix c=1 -> f = a
  EXPECT_EQ(c1.num_inputs(), 2);
  for (std::uint64_t m = 0; m < 4; ++m) EXPECT_EQ(c1.value(m), (m & 1) != 0);
  const TruthTable c0 = tt.cofactor(2, false); // f = 0
  for (std::uint64_t m = 0; m < 4; ++m) EXPECT_FALSE(c0.value(m));
}

TEST(TruthTable, ToString) {
  EXPECT_EQ(TruthTable::of_gate(GateType::And, 2).to_string(), "0001");
  EXPECT_EQ(TruthTable::of_gate(GateType::Xor, 2).to_string(), "0110");
}

} // namespace
} // namespace bns
