// Scenario-sweep batch engine (estimate_batch / core/sweep.h): bitwise
// equivalence with per-scenario estimate() calls, exact skipping of
// clean segments, the allocation-free clean path, conditional_dist's
// owner-segment restriction, segmented-vs-single-BN equivalence on a
// reconvergence-free chain, and per-segment error attribution.
#include "core/sweep.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "alloc_hook.h"
#include "core/accuracy.h"
#include "gen/benchmarks.h"
#include "lidag/estimator.h"
#include "netlist/netlist.h"
#include "sim/input_model.h"

namespace bns {
namespace {

EstimatorOptions forced(int threads, int segment_nodes = 60) {
  EstimatorOptions opts;
  opts.num_threads = threads;
  opts.single_bn_nodes = 0;
  opts.segment_nodes = segment_nodes;
  return opts;
}

// Scenario list where input 0's signal probability steps through `ps`
// and everything else stays fixed — consecutive scenarios differ in at
// most one input, the shape incremental reload exploits.
std::vector<InputModel> vary_input0(int num_inputs,
                                    const std::vector<double>& ps) {
  std::vector<InputModel> models;
  for (double p : ps) {
    std::vector<InputSpec> specs(static_cast<std::size_t>(num_inputs),
                                 InputSpec{0.5, 0.0, -1, 0.0});
    specs[0].p = p;
    models.push_back(InputModel::custom(std::move(specs)));
  }
  return models;
}

// A chain where every gate combines the previous output with a fresh
// primary input: no fanout ever reconverges across a cut, so boundary
// forwarding (marginal + independent fresh input) is exact and the
// segmented estimator must reproduce the single-BN result to round-off.
Netlist make_chain(int gates) {
  Netlist nl;
  NodeId prev = nl.add_input("x0");
  for (int i = 1; i <= gates; ++i) {
    const NodeId xi = nl.add_input("x" + std::to_string(i));
    const GateType g = i % 3 == 0   ? GateType::Xor
                       : i % 3 == 1 ? GateType::Nand
                                    : GateType::Or;
    prev = nl.add_gate(g, "g" + std::to_string(i), {prev, xi});
  }
  return nl;
}

void expect_dists_identical(const std::vector<std::array<double, 4>>& a,
                            const std::vector<std::array<double, 4>>& b,
                            std::size_t scenario) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(a[i][s], b[i][s])
          << "scenario " << scenario << " node " << i << " state " << s;
    }
  }
}

TEST(SweepBatch, BitIdenticalToSequentialEstimates) {
  const Netlist nl = make_benchmark("c880");
  const std::vector<InputModel> models =
      vary_input0(nl.num_inputs(), {0.5, 0.2, 0.2, 0.9, 0.5});

  LidagEstimator ref(nl, models[0], forced(1));
  LidagEstimator batch_est(nl, models[0], forced(1));
  const std::vector<SwitchingEstimate> batch =
      batch_est.estimate_batch(models);
  ASSERT_EQ(batch.size(), models.size());
  for (std::size_t s = 0; s < models.size(); ++s) {
    expect_dists_identical(batch[s].dist, ref.estimate(models[s]).dist, s);
  }
}

TEST(SweepBatch, CleanScenariosAreSkippedExactly) {
  const Netlist nl = make_benchmark("c432");
  const InputModel m = InputModel::uniform(nl.num_inputs(), 0.3, 0.2);
  const std::vector<InputModel> models = {m, m, m};

  LidagEstimator est(nl, m, forced(1));
  const int segs = est.num_segments();
  ASSERT_GT(segs, 1);

  std::vector<SwitchingEstimate> out(models.size());
  const BatchStats bs = est.estimate_batch_into(models, out);
  EXPECT_EQ(bs.scenarios, 3);
  // Scenario 0 primes every segment; the two repeats touch none.
  EXPECT_EQ(bs.segments_reloaded, segs);
  EXPECT_EQ(bs.segments_skipped, 2 * segs);
  expect_dists_identical(out[0].dist, out[1].dist, 1);
  expect_dists_identical(out[0].dist, out[2].dist, 2);
  // Skipped scenarios report no reload work.
  EXPECT_EQ(out[1].stats.reload_seconds, 0.0);
  EXPECT_EQ(out[1].stats.messages_passed, 0u);

  // The sweep state persists across batch calls: a second batch with
  // the already-loaded statistics skips everything.
  const BatchStats bs2 = est.estimate_batch_into(models, out);
  EXPECT_EQ(bs2.segments_reloaded, 0);
  EXPECT_EQ(bs2.segments_skipped, 3 * segs);

  // estimate() reloads engines behind the sweep's back and must drop
  // the priming: the next batch re-primes from scratch.
  (void)est.estimate(m);
  const BatchStats bs3 = est.estimate_batch_into(models, out);
  EXPECT_EQ(bs3.segments_reloaded, segs);
}

TEST(SweepBatch, CleanPathIsAllocationFree) {
  const Netlist nl = make_benchmark("c432");
  const InputModel m = InputModel::uniform(nl.num_inputs(), 0.4, 0.1);
  const std::vector<InputModel> models = {m, m};

  LidagEstimator est(nl, m, forced(1));
  std::vector<SwitchingEstimate> out(models.size());
  // First call primes the sweep and sizes every batch buffer (and the
  // output dist vectors).
  (void)est.estimate_batch_into(models, out);
  const std::uint64_t before = alloc_hook::allocation_count();
  const BatchStats bs = est.estimate_batch_into(models, out);
  EXPECT_EQ(alloc_hook::allocation_count(), before)
      << "all-clean batch scenarios must not touch the heap";
  EXPECT_EQ(bs.segments_reloaded, 0);
}

TEST(SweepBatch, GroupStatisticsParticipateInDiff) {
  // Two spatially-correlated inputs sharing a source: changing only the
  // group's statistics must dirty (exactly) the segments consuming it.
  const Netlist nl = make_benchmark("c432");
  auto grouped = [&](double group_p) {
    std::vector<InputSpec> specs(static_cast<std::size_t>(nl.num_inputs()),
                                 InputSpec{0.5, 0.0, -1, 0.0});
    specs[0] = InputSpec{0.0, 0.0, 0, 0.1};
    specs[1] = InputSpec{0.0, 0.0, 0, 0.1};
    return InputModel::custom(std::move(specs), {{group_p, 0.0}});
  };
  const std::vector<InputModel> models = {grouped(0.5), grouped(0.2),
                                          grouped(0.2)};

  LidagEstimator ref(nl, models[0], forced(1));
  LidagEstimator est(nl, models[0], forced(1));
  const std::vector<SwitchingEstimate> batch = est.estimate_batch(models);
  for (std::size_t s = 0; s < models.size(); ++s) {
    expect_dists_identical(batch[s].dist, ref.estimate(models[s]).dist, s);
  }
}

TEST(RunSweep, ReplicatedSweepBitIdentical) {
  const Netlist nl = make_benchmark("c880");
  const std::vector<InputModel> models =
      vary_input0(nl.num_inputs(), {0.5, 0.3, 0.7, 0.3, 0.9});

  SweepOptions sopts;
  sopts.estimator = forced(1);
  sopts.replicas = 2;
  const SweepResult res = run_sweep(nl, models, sopts);
  EXPECT_EQ(res.replicas_used, 2);
  EXPECT_EQ(res.stats.scenarios, static_cast<int>(models.size()));
  ASSERT_EQ(res.estimates.size(), models.size());

  LidagEstimator ref(nl, models[0], forced(1));
  for (std::size_t s = 0; s < models.size(); ++s) {
    expect_dists_identical(res.estimates[s].dist, ref.estimate(models[s]).dist,
                           s);
  }
}

TEST(RunSweep, EmptyAndOversubscribed) {
  const Netlist nl = make_benchmark("c17");
  EXPECT_TRUE(run_sweep(nl, {}).estimates.empty());

  // More replicas than scenarios: clamped, every scenario still runs.
  const std::vector<InputModel> models =
      vary_input0(nl.num_inputs(), {0.4, 0.6});
  SweepOptions sopts;
  sopts.replicas = 8;
  const SweepResult res = run_sweep(nl, models, sopts);
  EXPECT_EQ(res.replicas_used, 2);
  ASSERT_EQ(res.estimates.size(), 2u);
  EXPECT_GT(res.estimates[0].average_activity(), 0.0);
}

// --- conditional_dist owner-segment restriction (regression) ---------------

TEST(ConditionalDist, CrossSegmentQueryReturnsNullopt) {
  // Regression: conditional_dist used to pick the first segment where
  // both variables merely *exist* — for a target owned by an earlier
  // segment and a `given` defined later, that found the later segment,
  // where the target is only a boundary-root copy whose CPT is a
  // forwarded marginal, and silently answered from the approximation.
  // The query must be restricted to the target's owning segment and
  // refuse when `given` is not modeled there.
  const Netlist nl = make_benchmark("c880");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  LidagEstimator est(nl, m, forced(1));
  ASSERT_GT(est.num_segments(), 2);

  // Find a gate and a fanin owned by different segments: the fanin is
  // then a boundary root of the gate's segment.
  NodeId target = -1;
  NodeId given = -1;
  for (NodeId id = 0; id < nl.num_nodes() && target < 0; ++id) {
    const int sj = est.segment_of_line(id);
    if (sj <= 0) continue;
    for (NodeId t : nl.node(id).fanin) {
      const int si = est.segment_of_line(t);
      if (si >= 0 && si < sj) {
        target = t;
        given = id;
        break;
      }
    }
  }
  ASSERT_GE(target, 0) << "expected a cut-crossing (fanin, gate) pair";
  EXPECT_FALSE(est.conditional_dist(target, given, T01, m).has_value());
}

TEST(ConditionalDist, SameOwnerSegmentStillAnswers) {
  // On the reconvergence-free chain the segmented model is exact (see
  // SegmentedEquivalence below), so for a gate and a fanin owned by the
  // same segment the conditional must both exist and match the
  // single-BN answer.
  const Netlist nl = make_chain(40);
  const InputModel m = InputModel::uniform(nl.num_inputs(), 0.5, 0.3);
  LidagEstimator est(nl, m, forced(1, 12));
  ASSERT_GT(est.num_segments(), 2);

  NodeId target = -1;
  NodeId given = -1;
  for (NodeId id = 0; id < nl.num_nodes() && target < 0; ++id) {
    if (nl.node(id).fanin.empty()) continue;
    const int sj = est.segment_of_line(id);
    for (NodeId t : nl.node(id).fanin) {
      if (!nl.node(t).fanin.empty() && est.segment_of_line(t) == sj) {
        target = id;
        given = t;
        break;
      }
    }
  }
  ASSERT_GE(target, 0) << "expected a same-segment (gate, gate-fanin) pair";
  const auto got = est.conditional_dist(target, given, T00, m);
  ASSERT_TRUE(got.has_value());

  LidagEstimator single(nl, m);
  ASSERT_TRUE(single.single_bn());
  const auto want = single.conditional_dist(target, given, T00, m);
  ASSERT_TRUE(want.has_value());
  for (int s = 0; s < 4; ++s) EXPECT_NEAR((*got)[s], (*want)[s], 1e-9);
}

// --- segmented-vs-single-BN equivalence ------------------------------------

TEST(SegmentedEquivalence, ChainCircuitMatchesSingleBn) {
  const Netlist nl = make_chain(40);
  const InputModel m = InputModel::uniform(nl.num_inputs(), 0.5, 0.3);

  LidagEstimator single(nl, m);
  ASSERT_TRUE(single.single_bn());
  const SwitchingEstimate want = single.estimate(m);

  for (int segment_nodes : {12, 25}) {
    LidagEstimator segmented(nl, m, forced(1, segment_nodes));
    ASSERT_GT(segmented.num_segments(), 2) << segment_nodes;
    const SwitchingEstimate got = segmented.estimate(m);
    ASSERT_EQ(got.dist.size(), want.dist.size());
    for (std::size_t i = 0; i < want.dist.size(); ++i) {
      for (int s = 0; s < 4; ++s) {
        EXPECT_NEAR(got.dist[i][s], want.dist[i][s], 1e-9)
            << "segment_nodes " << segment_nodes << " node " << i
            << " state " << s;
      }
    }
  }
}

// --- per-segment error attribution -----------------------------------------

TEST(AccuracyAudit, AttributesErrorsToSegments) {
  const Netlist nl = make_benchmark("c432");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  LidagEstimator est(nl, m, forced(1));
  ASSERT_GT(est.num_segments(), 1);
  const SwitchingEstimate sw = est.estimate(m);

  AccuracyAuditOptions aopts;
  aopts.sim_pairs = 1 << 14; // attribution shape, not precision
  const obs::ReportAccuracy acc = audit_accuracy(nl, m, sw, est, aopts);
  ASSERT_FALSE(acc.per_segment.empty());

  int lines = 0;
  double weighted = 0.0;
  int prev_segment = -2;
  for (const obs::ReportSegmentError& se : acc.per_segment) {
    EXPECT_GT(se.lines, 0);
    EXPECT_GE(se.segment, -1);
    EXPECT_LT(se.segment, est.num_segments());
    EXPECT_GT(se.segment, prev_segment) << "segment order";
    prev_segment = se.segment;
    EXPECT_GE(se.max_abs_error, se.mean_abs_error - 1e-15);
    lines += se.lines;
    weighted += se.mean_abs_error * se.lines;
  }
  EXPECT_EQ(lines, nl.num_nodes());
  EXPECT_NEAR(weighted / lines, acc.mean_abs_error, 1e-12);

  // The estimator-less overload leaves the breakdown empty.
  const obs::ReportAccuracy plain = audit_accuracy(nl, m, sw, aopts);
  EXPECT_TRUE(plain.per_segment.empty());
}

} // namespace
} // namespace bns
