// Tests for the serve-telemetry obs primitives: trace contexts and span
// id nesting, the labeled RED registry (ServeMetrics), the flight
// recorder, the exposition renderers, and the allocation-freedom of the
// whole record path (the contract that lets telemetry stay on at
// Counters level in steady state).
#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "alloc_hook.h"
#include "obs/exposition.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/sinks.h"
#include "obs/trace.h"

namespace bns::obs {
namespace {

// --- trace ids and contexts -------------------------------------------

TEST(TelemetryTest, GeneratedTraceIdsAreDistinctAndNonZero) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t id = generate_trace_id();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
  }
}

TEST(TelemetryTest, FormatParseRoundtrips) {
  for (const std::uint64_t id :
       {std::uint64_t{1}, std::uint64_t{0xdeadbeef},
        std::uint64_t{0xffffffffffffffff}, generate_trace_id()}) {
    char buf[17];
    format_trace_id(id, buf);
    EXPECT_EQ(std::string(buf).size(), 16u);
    EXPECT_EQ(parse_trace_id(buf), id);
  }
}

TEST(TelemetryTest, ParseAcceptsShortAndUppercaseRejectsGarbage) {
  EXPECT_EQ(parse_trace_id("ff"), 0xffu);
  EXPECT_EQ(parse_trace_id("DEADBEEF"), 0xdeadbeefu);
  EXPECT_EQ(parse_trace_id(""), 0u);
  EXPECT_EQ(parse_trace_id("xyz"), 0u);
  EXPECT_EQ(parse_trace_id("12g4"), 0u);
  EXPECT_EQ(parse_trace_id("0x12"), 0u);
  EXPECT_EQ(parse_trace_id("11112222333344445"), 0u); // 17 digits
  EXPECT_EQ(parse_trace_id("0"), 0u);                 // 0 is not a valid id
}

TEST(TelemetryTest, ScopedContextInstallsAndRestores) {
  EXPECT_FALSE(current_trace_context().active());
  {
    ScopedTraceContext ctx(0x1234);
    EXPECT_TRUE(current_trace_context().active());
    EXPECT_EQ(current_trace_context().trace_id, 0x1234u);
    EXPECT_EQ(current_trace_context().parent_span, 0u);
    {
      ScopedTraceContext inner(0x5678, 42);
      EXPECT_EQ(current_trace_context().trace_id, 0x5678u);
      EXPECT_EQ(current_trace_context().parent_span, 42u);
    }
    EXPECT_EQ(current_trace_context().trace_id, 0x1234u);
  }
  EXPECT_FALSE(current_trace_context().active());
}

// Collects SpanRecords for structural assertions.
class RecordingSink final : public Sink {
 public:
  void on_span(const SpanRecord& rec) override {
    std::lock_guard<std::mutex> lk(mu_);
    records_.push_back(rec);
  }
  std::vector<SpanRecord> records() const {
    std::lock_guard<std::mutex> lk(mu_);
    return records_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;
};

TEST(TelemetryTest, SpansNestUnderTraceContext) {
  Tracer tracer(TraceLevel::Spans);
  RecordingSink sink;
  tracer.add_sink(&sink);

  const std::uint64_t trace_id = 0xabcdef01;
  {
    ScopedTraceContext ctx(trace_id);
    Span outer(&tracer, "outer");
    { Span inner(&tracer, "inner"); }
  }
  // Destruction order: inner completes first.
  const std::vector<SpanRecord> recs = sink.records();
  ASSERT_EQ(recs.size(), 2u);
  const SpanRecord& inner = recs[0];
  const SpanRecord& outer = recs[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(inner.trace_id, trace_id);
  EXPECT_EQ(outer.trace_id, trace_id);
  EXPECT_NE(outer.span_id, 0u);
  EXPECT_NE(inner.span_id, 0u);
  EXPECT_EQ(outer.parent_span, 0u);          // root of this trace
  EXPECT_EQ(inner.parent_span, outer.span_id); // nested under outer
}

TEST(TelemetryTest, SpansWithoutContextCarryNoTraceId) {
  Tracer tracer(TraceLevel::Spans);
  RecordingSink sink;
  tracer.add_sink(&sink);
  { Span s(&tracer, "plain"); }
  ASSERT_EQ(sink.records().size(), 1u);
  EXPECT_EQ(sink.records()[0].trace_id, 0u);
  EXPECT_EQ(sink.records()[0].span_id, 0u);
}

TEST(TelemetryTest, JsonLinesSinkEmitsTraceIdsOnlyWhenTraced) {
  Tracer tracer(TraceLevel::Spans);
  std::ostringstream os;
  JsonLinesSink sink(os);
  tracer.add_sink(&sink);

  { Span s(&tracer, "untraced"); }
  {
    ScopedTraceContext ctx(0xfeed);
    Span s(&tracer, "traced");
  }
  std::istringstream in(os.str());
  std::string line;
  int traced = 0, untraced = 0;
  while (std::getline(in, line)) {
    const std::optional<JsonValue> v = json_parse(line);
    ASSERT_TRUE(v && v->is_object()) << line;
    if (v->string_or("name", "") == "traced") {
      ++traced;
      EXPECT_EQ(v->string_or("trace_id", ""), "000000000000feed") << line;
      EXPECT_NE(v->string_or("span_id", ""), "") << line;
    } else if (v->string_or("name", "") == "untraced") {
      ++untraced;
      EXPECT_EQ(v->find("trace_id"), nullptr) << line;
    }
  }
  EXPECT_EQ(traced, 1);
  EXPECT_EQ(untraced, 1);
}

// --- ServeMetrics ------------------------------------------------------

TEST(TelemetryTest, ServeMetricsRecordsPerOpAndClass) {
  ServeMetrics m;
  m.record(ServeOp::Estimate, ErrorClass::None, 5'000);
  m.record(ServeOp::Estimate, ErrorClass::None, 50'000'000);
  m.record(ServeOp::Estimate, ErrorClass::Protocol, 2'000);
  m.record(ServeOp::Sweep, ErrorClass::Artifact, 1'000'000);
  m.cache_event(CacheEvent::Hit);
  m.cache_event(CacheEvent::Miss, 2);

  const ServeMetricsSnapshot s = m.snapshot();
  EXPECT_EQ(s.op(ServeOp::Estimate).requests, 3u);
  EXPECT_EQ(s.op(ServeOp::Estimate).errors_total(), 1u);
  EXPECT_EQ(s.op(ServeOp::Estimate)
                .errors[static_cast<std::size_t>(ErrorClass::Protocol)],
            1u);
  EXPECT_EQ(s.op(ServeOp::Estimate).latency_total, 3u);
  EXPECT_EQ(s.op(ServeOp::Sweep).requests, 1u);
  EXPECT_EQ(s.op(ServeOp::Sweep)
                .errors[static_cast<std::size_t>(ErrorClass::Artifact)],
            1u);
  EXPECT_EQ(s.op(ServeOp::Ping).requests, 0u);
  EXPECT_EQ(s.cache_count(CacheEvent::Hit), 1u);
  EXPECT_EQ(s.cache_count(CacheEvent::Miss), 2u);
  EXPECT_EQ(s.requests_total(), 4u);
  EXPECT_EQ(s.errors_total(), 2u);

  m.reset();
  EXPECT_EQ(m.snapshot().requests_total(), 0u);
  EXPECT_EQ(m.snapshot().cache_count(CacheEvent::Miss), 0u);
}

TEST(TelemetryTest, ServeMetricsLatencyBucketsSumToRequests) {
  ServeMetrics m;
  // One sample per decade, spanning below the first edge to overflow.
  const std::uint64_t samples[] = {10,        5'000,       50'000,
                                   5'000'000, 500'000'000, 50'000'000'000};
  for (const std::uint64_t ns : samples)
    m.record(ServeOp::Conditional, ErrorClass::None, ns);
  const ServeMetricsSnapshot snap = m.snapshot();
  const ServeOpSnapshot& op = snap.op(ServeOp::Conditional);
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t c : op.latency_counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, std::size(samples));
  EXPECT_EQ(op.latency_total, std::size(samples));
  EXPECT_EQ(op.requests, std::size(samples));
}

// Named *Concurrent* so the CI TSan job picks it up: 8 writers hammer
// per-op cells while a reader scrapes mid-flight; after the join the
// merged totals must equal the sum of what every worker recorded.
TEST(TelemetryTest, ConcurrentRecordAndScrapeMergeExactTotals) {
  ServeMetrics m;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::atomic<bool> stop{false};

  std::thread scraper([&m, &stop] {
    // Concurrent scrapes must be safe (and monotone per cell); values
    // mid-flight are unordered partial sums, so only sanity-check them.
    while (!stop.load(std::memory_order_relaxed)) {
      const ServeMetricsSnapshot s = m.snapshot();
      EXPECT_LE(s.op(ServeOp::Estimate).requests,
                static_cast<std::uint64_t>(kThreads) * kPerThread);
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&m, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto err =
            (i % 100 == 0) ? ErrorClass::Internal : ErrorClass::None;
        m.record(ServeOp::Estimate, err,
                 static_cast<std::uint64_t>(1'000 + i * 997 + t));
        m.cache_event(i % 2 == 0 ? CacheEvent::Hit : CacheEvent::Miss);
      }
    });
  }
  for (std::thread& th : writers) th.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();

  const ServeMetricsSnapshot s = m.snapshot();
  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(s.op(ServeOp::Estimate).requests, total);
  EXPECT_EQ(s.op(ServeOp::Estimate).latency_total, total);
  EXPECT_EQ(s.op(ServeOp::Estimate)
                .errors[static_cast<std::size_t>(ErrorClass::Internal)],
            static_cast<std::uint64_t>(kThreads) * (kPerThread / 100));
  EXPECT_EQ(s.cache_count(CacheEvent::Hit) + s.cache_count(CacheEvent::Miss),
            total);
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t c : s.op(ServeOp::Estimate).latency_counts)
    bucket_sum += c;
  EXPECT_EQ(bucket_sum, total);
}

// --- FlightRecorder ----------------------------------------------------

TEST(TelemetryTest, RecorderKeepsTheLastNOnOneThread) {
  FlightRecorder rec(4);
  for (int i = 1; i <= 10; ++i) {
    rec.record(ServeOp::Ping, ErrorClass::None,
               static_cast<std::uint64_t>(i), "m", 0, 0);
  }
  EXPECT_EQ(rec.total_recorded(), 10u);
  const std::vector<RequestRecord> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 4u); // one thread -> one ring
  // Oldest first, and exactly the last four records survive.
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].seq, 7 + i);
    EXPECT_EQ(snap[i].trace_id, 7 + i);
  }
}

TEST(TelemetryTest, RecorderTruncatesLongModelsKeepingTheTail) {
  FlightRecorder rec(2);
  const std::string long_model =
      "/some/deeply/nested/artifact/directory/with/a/long/path/c7552.bnsc";
  rec.record(ServeOp::Estimate, ErrorClass::None, 1, long_model, 0, 0);
  const std::vector<RequestRecord> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  const std::string stored = snap[0].model;
  EXPECT_EQ(stored.size(), kRecorderModelBytes - 1);
  EXPECT_EQ(stored, long_model.substr(long_model.size() - stored.size()));
  EXPECT_NE(stored.find("c7552.bnsc"), std::string::npos);
}

TEST(TelemetryTest, RecorderDumpIsParseableJsonLines) {
  FlightRecorder rec(8);
  rec.record(ServeOp::Estimate, ErrorClass::None, 0xabc, "c17", 100, 5'000);
  rec.record(ServeOp::Sweep, ErrorClass::Protocol, 0xdef, "c432.bnsc", 200,
             7'000);
  std::ostringstream os;
  rec.dump_jsonl(os);

  std::istringstream in(os.str());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    const std::optional<JsonValue> v = json_parse(line);
    ASSERT_TRUE(v && v->is_object()) << line;
    EXPECT_EQ(v->number_or("schema_version", 0), kRecorderSchemaVersion);
    EXPECT_EQ(v->string_or("type", ""), "request");
    EXPECT_NE(v->string_or("op", ""), "");
    EXPECT_EQ(v->string_or("trace_id", "").size(), 16u);
  }
  EXPECT_EQ(lines, 2);
  EXPECT_NE(os.str().find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(os.str().find("\"status\":\"protocol\""), std::string::npos);
}

// --- exposition --------------------------------------------------------

MetricsDocument sample_document() {
  ServeMetrics red;
  red.record(ServeOp::Estimate, ErrorClass::None, 5'000);
  red.record(ServeOp::Estimate, ErrorClass::Protocol, 1'000);
  red.record(ServeOp::Ping, ErrorClass::None, 500);
  red.cache_event(CacheEvent::Hit, 3);
  red.cache_event(CacheEvent::Revalidate);
  MetricsRegistry reg;
  reg.add(Counter::ServeRequests, 3);
  reg.add(Counter::ArtifactLoads, 1);
  return make_metrics_document(&red, &reg, 12.5);
}

TEST(TelemetryTest, MetricsJsonIsOneParseableLineWithAllOps) {
  const MetricsDocument doc = sample_document();
  const std::string json = render_metrics_json(doc);
  EXPECT_EQ(json.find('\n'), std::string::npos); // protocol embeds it
  const std::optional<JsonValue> v = json_parse(json);
  ASSERT_TRUE(v && v->is_object()) << json;
  EXPECT_EQ(v->number_or("schema_version", 0), kMetricsSchemaVersion);
  EXPECT_EQ(v->number_or("uptime_seconds", 0), 12.5);
  const JsonValue* prov = v->find("provenance");
  ASSERT_NE(prov, nullptr);
  EXPECT_NE(prov->string_or("hostname", ""), "");

  const JsonValue* ops = v->find("ops");
  ASSERT_TRUE(ops && ops->is_array());
  EXPECT_EQ(ops->as_array().size(),
            static_cast<std::size_t>(kNumServeOps)); // every op, even zero
  bool saw_estimate = false;
  for (const JsonValue& op : ops->as_array()) {
    if (op.string_or("op", "") != "estimate") continue;
    saw_estimate = true;
    EXPECT_EQ(op.number_or("requests", 0), 2);
    const JsonValue* errs = op.find("errors");
    ASSERT_NE(errs, nullptr);
    EXPECT_EQ(errs->number_or("protocol", 0), 1);
    const JsonValue* lat = op.find("latency_ns");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->number_or("count", 0), 2);
  }
  EXPECT_TRUE(saw_estimate);
  const JsonValue* cache = v->find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->number_or("hit", 0), 3);
  EXPECT_EQ(cache->number_or("revalidate", 0), 1);
}

TEST(TelemetryTest, PrometheusRenderingFollowsConventions) {
  const std::string text = render_metrics_prometheus(sample_document());
  EXPECT_NE(text.find("bns_serve_uptime_seconds 12.5"), std::string::npos)
      << text;
  EXPECT_NE(text.find("bns_serve_requests_total{op=\"estimate\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("bns_serve_errors_total{op=\"estimate\","
                      "class=\"protocol\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos) << text;
  EXPECT_NE(
      text.find("bns_serve_cache_events_total{event=\"hit\"} 3"),
      std::string::npos)
      << text;
  // Cumulative buckets: the +Inf bucket of estimate equals its count.
  EXPECT_NE(text.find("bns_serve_request_duration_ns_count{op=\"estimate\"} "
                      "2"),
            std::string::npos)
      << text;
  // Flat registry counters ride along with the bns_ prefix.
  EXPECT_NE(text.find("bns_serve_requests 3"), std::string::npos) << text;
  EXPECT_NE(text.find("bns_artifact_loads 1"), std::string::npos) << text;
}

// --- allocation freedom ------------------------------------------------

// The whole telemetry record path — trace-context install, span at
// Counters level, RED record, recorder record — must not allocate:
// that is what lets bns_serve keep it on for every request in steady
// state. (The first record on a thread claims its shard; warm up
// first.)
TEST(TelemetryTest, RecordPathIsAllocationFree) {
  Tracer tracer(TraceLevel::Counters);
  ServeMetrics red;
  FlightRecorder rec(16);
  red.record(ServeOp::Ping, ErrorClass::None, 1); // claim the shard
  rec.record(ServeOp::Ping, ErrorClass::None, 1, "warmup", 0, 0);

  const std::uint64_t before = alloc_hook::allocation_count();
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t id = generate_trace_id();
    ScopedTraceContext ctx(id);
    Span span(&tracer, "serve.request");
    tracer.count(Counter::ServeRequests);
    red.record(ServeOp::Estimate, ErrorClass::None,
               static_cast<std::uint64_t>(1'000 + i));
    rec.record(ServeOp::Estimate, ErrorClass::None, id,
               "circuits/c1908.bnsc", 0, 1'000);
  }
  EXPECT_EQ(alloc_hook::allocation_count(), before);
}

} // namespace
} // namespace bns::obs
