#include <gtest/gtest.h>

#include "bdd/bdd.h"
#include "bdd/bdd_estimator.h"
#include "gen/circuits.h"
#include "gen/generators.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace bns {
namespace {

TEST(Bdd, TerminalAndVarBasics) {
  BddManager mgr(3);
  EXPECT_TRUE(mgr.is_terminal(kBddFalse));
  EXPECT_TRUE(mgr.is_terminal(kBddTrue));
  const BddRef x0 = mgr.var(0);
  EXPECT_FALSE(mgr.is_terminal(x0));
  EXPECT_EQ(mgr.var_of(x0), 0);
  EXPECT_EQ(mgr.low(x0), kBddFalse);
  EXPECT_EQ(mgr.high(x0), kBddTrue);
  // Hash-consing: same function, same node.
  EXPECT_EQ(mgr.var(0), x0);
  EXPECT_EQ(mgr.lnot(mgr.lnot(x0)), x0);
}

TEST(Bdd, CanonicityOfEquivalentFormulas) {
  BddManager mgr(3);
  const BddRef a = mgr.var(0);
  const BddRef b = mgr.var(1);
  const BddRef c = mgr.var(2);
  // De Morgan: !(a & b) == !a | !b.
  EXPECT_EQ(mgr.lnot(mgr.land(a, b)), mgr.lor(mgr.lnot(a), mgr.lnot(b)));
  // Distribution: a & (b | c) == (a & b) | (a & c).
  EXPECT_EQ(mgr.land(a, mgr.lor(b, c)),
            mgr.lor(mgr.land(a, b), mgr.land(a, c)));
  // XOR associativity and self-cancellation.
  EXPECT_EQ(mgr.lxor(mgr.lxor(a, b), b), a);
  EXPECT_EQ(mgr.lxor(a, a), kBddFalse);
  EXPECT_EQ(mgr.lxnor(a, a), kBddTrue);
}

TEST(Bdd, IteMatchesTruthTableSemantics) {
  BddManager mgr(3);
  const BddRef f = mgr.ite(mgr.var(0), mgr.var(1), mgr.var(2));
  for (int m = 0; m < 8; ++m) {
    const bool assign[3] = {(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    const bool expect = assign[0] ? assign[1] : assign[2];
    EXPECT_EQ(mgr.eval(f, assign), expect) << m;
  }
}

TEST(Bdd, RandomFormulaEvalAgainstDirectEvaluation) {
  Rng rng(5);
  const int n = 6;
  BddManager mgr(n);
  // Build a random formula tree and an equivalent evaluator closure.
  std::vector<BddRef> leaves;
  for (int i = 0; i < n; ++i) leaves.push_back(mgr.var(i));
  // f = ((x0 & x1) ^ (x2 | !x3)) | (x4 ^ x5)
  const BddRef f = mgr.lor(
      mgr.lxor(mgr.land(leaves[0], leaves[1]),
               mgr.lor(leaves[2], mgr.lnot(leaves[3]))),
      mgr.lxor(leaves[4], leaves[5]));
  for (int m = 0; m < 64; ++m) {
    bool a[6];
    for (int i = 0; i < 6; ++i) a[i] = (m >> i) & 1;
    const bool expect = ((a[0] && a[1]) != (a[2] || !a[3])) || (a[4] != a[5]);
    EXPECT_EQ(mgr.eval(f, a), expect) << m;
  }
  (void)rng;
}

TEST(Bdd, CofactorAndQuantification) {
  BddManager mgr(3);
  const BddRef a = mgr.var(0);
  const BddRef b = mgr.var(1);
  const BddRef f = mgr.land(a, b);
  EXPECT_EQ(mgr.cofactor(f, 0, true), b);
  EXPECT_EQ(mgr.cofactor(f, 0, false), kBddFalse);
  EXPECT_EQ(mgr.exists(f, 0), b);   // ∃a. a&b = b
  EXPECT_EQ(mgr.exists(f, 2), f);   // free variable
}

TEST(Bdd, SupportAndSize) {
  BddManager mgr(4);
  const BddRef f = mgr.lxor(mgr.var(0), mgr.var(3));
  EXPECT_EQ(mgr.support(f), (std::vector<int>{0, 3}));
  EXPECT_EQ(mgr.size(f), 3u); // x0 node + two x3 nodes
  EXPECT_EQ(mgr.size(kBddTrue), 0u);
}

TEST(Bdd, SatCount) {
  BddManager mgr(3);
  const BddRef a = mgr.var(0);
  const BddRef b = mgr.var(1);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.land(a, b)), 2.0);  // a&b, free x2
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.lor(a, b)), 6.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(kBddTrue), 8.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(kBddFalse), 0.0);
}

TEST(Bdd, SignalProbabilityIndependentVars) {
  BddManager mgr(2);
  const double p[2] = {0.3, 0.6};
  EXPECT_NEAR(mgr.signal_prob(mgr.land(mgr.var(0), mgr.var(1)), p), 0.18,
              1e-12);
  EXPECT_NEAR(mgr.signal_prob(mgr.lor(mgr.var(0), mgr.var(1)), p),
              0.3 + 0.6 - 0.18, 1e-12);
  EXPECT_NEAR(mgr.signal_prob(mgr.lxor(mgr.var(0), mgr.var(1)), p),
              0.3 * 0.4 + 0.7 * 0.6, 1e-12);
}

TEST(Bdd, NodeLimitThrows) {
  BddManager mgr(24, /*max_nodes=*/64);
  // Parity over many variables exceeds 64 nodes quickly.
  BddRef acc = kBddFalse;
  EXPECT_THROW(
      {
        for (int i = 0; i < 24; ++i) {
          acc = mgr.lxor(acc, mgr.var(i));
          // Also conjoin shifted ANDs to force growth.
          if (i >= 2) {
            acc = mgr.lor(acc, mgr.land(mgr.var(i - 1), mgr.var(i - 2)));
          }
        }
      },
      BddNodeLimit);
}

// --- exact BDD switching estimator -----------------------------------------

TEST(BddEstimator, MatchesExhaustiveEnumeration) {
  const Netlist nl = c17();
  std::vector<InputSpec> specs;
  for (int i = 0; i < nl.num_inputs(); ++i) {
    specs.push_back({0.25 + 0.1 * i, 0.15 * i - 0.1, -1, 0.0});
  }
  const InputModel m = InputModel::custom(specs);
  const BddSwitchingResult r = estimate_bdd_exact(nl, m);
  ASSERT_TRUE(r.completed);
  const auto exact = exact_transition_dists(nl, m);
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    for (int s = 0; s < 4; ++s) {
      EXPECT_NEAR(r.dist[static_cast<std::size_t>(id)][static_cast<std::size_t>(s)],
                  exact[static_cast<std::size_t>(id)][static_cast<std::size_t>(s)],
                  1e-10)
          << "node " << id << " state " << s;
    }
  }
}

TEST(BddEstimator, ExactOnReconvergentParityLogic) {
  // The circuit class where pairwise methods fail; BDD must be exact.
  const Netlist nl = sec_corrector(6, 3);
  const InputModel m = InputModel::uniform(nl.num_inputs(), 0.5, 0.4);
  const BddSwitchingResult r = estimate_bdd_exact(nl, m);
  ASSERT_TRUE(r.completed);
  const auto exact = exact_transition_dists(nl, m);
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    EXPECT_NEAR(activity_of(r.dist[static_cast<std::size_t>(id)]),
                activity_of(exact[static_cast<std::size_t>(id)]), 1e-10);
  }
}

TEST(BddEstimator, TemporalCorrelationHandledExactly) {
  // An inverter sees exactly the input's pair distribution, whatever rho.
  Netlist nl("inv");
  const NodeId a = nl.add_input("a");
  const NodeId y = nl.add_gate(GateType::Not, "y", {a});
  nl.mark_output(y);
  for (double rho : {-0.6, 0.0, 0.7}) {
    const InputModel m = InputModel::uniform(1, 0.4, rho);
    const BddSwitchingResult r = estimate_bdd_exact(nl, m);
    ASSERT_TRUE(r.completed);
    const auto d = transition_distribution(0.4, rho);
    EXPECT_NEAR(r.dist[static_cast<std::size_t>(a)][T01], d[T01], 1e-12);
    // The inverter's distribution mirrors prev/cur bit flips: P(y: 01) =
    // P(a: 10) etc.
    EXPECT_NEAR(r.dist[static_cast<std::size_t>(y)][T01], d[T10], 1e-12);
    EXPECT_NEAR(r.dist[static_cast<std::size_t>(y)][T11], d[T00], 1e-12);
  }
}

TEST(BddEstimator, OverflowReportsPartialResult) {
  const Netlist nl = array_multiplier(8);
  const InputModel m = InputModel::uniform(nl.num_inputs());
  const BddSwitchingResult r = estimate_bdd_exact(nl, m, /*max_nodes=*/2000);
  EXPECT_FALSE(r.completed);
  EXPECT_GT(r.lines_done, 0);
  EXPECT_LT(r.lines_done, nl.num_nodes());
}

TEST(BddEstimator, LutCircuit) {
  const char* blif_like_mux = nullptr;
  (void)blif_like_mux;
  Netlist nl("lut");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  TruthTable tt(2); // a & !b
  tt.set_value(1, true);
  nl.mark_output(nl.add_lut("y", {a, b}, tt));
  const InputModel m = InputModel::uniform(2, 0.5, 0.0);
  const BddSwitchingResult r = estimate_bdd_exact(nl, m);
  ASSERT_TRUE(r.completed);
  const auto exact = exact_activities(nl, m);
  EXPECT_NEAR(activity_of(r.dist.back()), exact.back(), 1e-12);
}

} // namespace
} // namespace bns
