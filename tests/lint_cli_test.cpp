// End-to-end tests of the bns_lint command-line tool: each seeded-defect
// fixture must produce its expected diagnostic code and exit status, and
// --json output must round-trip through DiagnosticReport::from_json.
//
// The binary path and fixture directory are injected by CMake as
// BNS_LINT_BINARY and BNS_FIXTURE_DIR. Runs use popen() so both the exit
// status (via pclose/WEXITSTATUS) and stdout are observable — CTest's
// PASS_REGULAR_EXPRESSION would mask the exit code, so we assert it here.
#include <sys/wait.h>

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "verify/diagnostics.h"

namespace bns {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run_lint(const std::string& args) {
  const std::string cmd =
      std::string(BNS_LINT_BINARY) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  RunResult res;
  if (pipe == nullptr) return res;
  char buf[4096];
  std::size_t n = 0;
  while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) {
    res.output.append(buf, n);
  }
  const int status = pclose(pipe);
  res.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return res;
}

std::string fixture(const std::string& name) {
  return std::string(BNS_FIXTURE_DIR) + "/" + name;
}

TEST(LintCliTest, CleanBenchExitsZero) {
  const RunResult r = run_lint(fixture("clean.bench"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 error(s), 0 warning(s)"), std::string::npos)
      << r.output;
}

TEST(LintCliTest, CleanBlifExitsZero) {
  const RunResult r = run_lint(fixture("clean.blif"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(LintCliTest, BuiltInBenchmarkFullLevelExitsZero) {
  const RunResult r = run_lint("c17 --level full");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(LintCliTest, FloatingNetWarnsButExitsZero) {
  const RunResult r = run_lint(fixture("floating_net.bench"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("NL003"), std::string::npos) << r.output;
}

TEST(LintCliTest, FloatingNetFailsUnderWerror) {
  const RunResult r = run_lint(fixture("floating_net.bench") + " --werror");
  EXPECT_EQ(r.exit_code, 1) << r.output;
}

TEST(LintCliTest, CombinationalLoopFails) {
  const RunResult r = run_lint(fixture("comb_loop.bench"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("NL004"), std::string::npos) << r.output;
}

TEST(LintCliTest, MultiDriverFails) {
  const RunResult r = run_lint(fixture("multi_driver.bench"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("NL002"), std::string::npos) << r.output;
}

TEST(LintCliTest, UndrivenNetFails) {
  const RunResult r = run_lint(fixture("undriven.bench"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("NL001"), std::string::npos) << r.output;
}

TEST(LintCliTest, BadLutCoverFails) {
  const RunResult r = run_lint(fixture("bad_lut.blif"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("NL007"), std::string::npos) << r.output;
}

TEST(LintCliTest, InjectedBadCptFailsModelLint) {
  const RunResult r = run_lint("c17 --inject bad-cpt --level full");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("BN003"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("BN004"), std::string::npos) << r.output;
}

TEST(LintCliTest, InjectedBrokenRipFailsCompileLint) {
  const RunResult r = run_lint("c17 --inject broken-rip");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("JT002"), std::string::npos) << r.output;
}

TEST(LintCliTest, JsonOutputRoundTrips) {
  const RunResult r = run_lint(fixture("floating_net.bench") + " --json");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const std::optional<DiagnosticReport> report =
      DiagnosticReport::from_json(r.output);
  ASSERT_TRUE(report.has_value()) << r.output;
  EXPECT_TRUE(report->has_code(DiagCode::NL003));
  EXPECT_EQ(report->num_errors(), 0);
  // Re-render and parse again: a fixed point.
  const auto again = DiagnosticReport::from_json(report->render_json());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *report);
}

TEST(LintCliTest, JsonOutputOnErrorStillWellFormed) {
  const RunResult r = run_lint(fixture("comb_loop.bench") + " --json");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const auto report = DiagnosticReport::from_json(r.output);
  ASSERT_TRUE(report.has_value()) << r.output;
  EXPECT_TRUE(report->has_code(DiagCode::NL004));
  EXPECT_GE(report->num_errors(), 1);
}

TEST(LintCliTest, ScheduleLevelCleanOnBuiltIns) {
  for (const std::string name : {"c17", "count", "b9"}) {
    const RunResult r = run_lint(name + " --schedule --select SC --werror");
    EXPECT_EQ(r.exit_code, 0) << name << "\n" << r.output;
    EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
  }
}

// Every SC code must demonstrably fire: one --inject hook per code, each
// producing exactly its target diagnostic and a failing exit status
// (SC008 is a Warning, so it needs --werror to fail).
TEST(LintCliTest, InjectedScheduleDefectsFireEachScCode) {
  const struct {
    const char* kind;
    const char* code;
  } kCases[] = {
      {"unit-overlap", "SC001"},   {"unit-edge-clash", "SC002"},
      {"root-order", "SC003"},     {"oob-stride", "SC004"},
      {"load-mismatch", "SC005"},  {"reload-gap", "SC006"},
      {"screen-gap", "SC007"},     {"underflow", "SC008"},
      {"frontier-gap", "SC009"},
  };
  for (const auto& c : kCases) {
    const RunResult r = run_lint(std::string("count --inject ") + c.kind +
                                 " --werror --select " + c.code);
    EXPECT_EQ(r.exit_code, 1) << c.kind << "\n" << r.output;
    EXPECT_NE(r.output.find(c.code), std::string::npos)
        << c.kind << "\n" << r.output;
  }
}

TEST(LintCliTest, SelectFiltersFindings) {
  // floating_net has an NL003 warning; selecting a different family
  // drops it from the report and the exit status.
  const RunResult kept =
      run_lint(fixture("floating_net.bench") + " --select NL --werror");
  EXPECT_EQ(kept.exit_code, 1) << kept.output;
  EXPECT_NE(kept.output.find("NL003"), std::string::npos) << kept.output;
  const RunResult dropped =
      run_lint(fixture("floating_net.bench") + " --select SC --werror");
  EXPECT_EQ(dropped.exit_code, 0) << dropped.output;
  EXPECT_NE(dropped.output.find("0 finding(s)"), std::string::npos)
      << dropped.output;
}

TEST(LintCliTest, ListCodesJsonIncludesSummaries) {
  const RunResult r = run_lint("--list-codes --json");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"codes\""), std::string::npos) << r.output;
  for (DiagCode c : all_diag_codes()) {
    EXPECT_NE(r.output.find("\"" + std::string(diag_code_name(c)) + "\""),
              std::string::npos)
        << diag_code_name(c);
    EXPECT_NE(r.output.find(std::string(diag_code_summary(c))),
              std::string::npos)
        << diag_code_name(c);
  }
}

// A netlist path containing quotes and a newline must survive the trip
// through render_json: the document stays well-formed and parses back.
TEST(LintCliTest, JsonSurvivesHostileNetlistPath) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/weird \"quoted\"\nname.bench";
  {
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr) << path;
    std::fputs("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", f);
    std::fclose(f);
  }
  const RunResult r = run_lint("'" + path + "' --json");
  std::remove(path.c_str());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const auto report = DiagnosticReport::from_json(r.output);
  ASSERT_TRUE(report.has_value()) << r.output;
  EXPECT_TRUE(report->empty());
  // The raw bytes must not leak into the document unescaped.
  EXPECT_NE(r.output.find("\\\"quoted\\\""), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\\n"), std::string::npos) << r.output;
}

// Same property at the library level, with hostile bytes in every
// string field a checker can set.
TEST(LintCliTest, RenderJsonRoundTripsHostileStrings) {
  DiagnosticReport report;
  report.add(DiagCode::SC001, "clique \"7\"\n[unit 2]",
             "writes \\ overlap\ttab and \x01 control byte");
  const std::string json =
      report.render_json("bns_lint", "a\"b\nc\\d.bench");
  const auto parsed = DiagnosticReport::from_json(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  EXPECT_EQ(*parsed, report);
}

TEST(LintCliTest, ListCodesCoversAllCodes) {
  const RunResult r = run_lint("--list-codes");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  for (DiagCode c : all_diag_codes()) {
    EXPECT_NE(r.output.find(std::string(diag_code_name(c))),
              std::string::npos)
        << diag_code_name(c);
  }
}

TEST(LintCliTest, UsageErrorsExitTwo) {
  EXPECT_EQ(run_lint("").exit_code, 2);
  EXPECT_EQ(run_lint("c17 --level bogus").exit_code, 2);
  EXPECT_EQ(run_lint("/nonexistent/file.bench").exit_code, 2);
  EXPECT_EQ(run_lint("not_a_benchmark_name").exit_code, 2);
}

} // namespace
} // namespace bns
