// Round-trip tests for the .bnsc artifact format: every checked-in
// data/*.bench circuit must survive compile -> save -> load -> estimate
// with bitwise-identical results, and structurally corrupted artifacts
// (truncated, flipped magic, wrong schema version, damaged section
// bytes) must be rejected with an ArtifactError, never a crash or a
// silently-wrong model.
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "artifact/artifact.h"
#include "session/session.h"

namespace bns {
namespace {

std::string data_path(const std::string& name) {
  return std::string(BNS_DATA_DIR) + "/" + name + ".bench";
}

std::string tmp_artifact(const std::string& tag) {
  return testing::TempDir() + "bns_artifact_test_" + tag + "_" +
         std::to_string(::getpid()) + ".bnsc";
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << path;
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// --- bitwise round trip over the whole data/ corpus -------------------

class ArtifactRoundTrip : public testing::TestWithParam<const char*> {};

TEST_P(ArtifactRoundTrip, SaveLoadEstimateBitwiseIdentical) {
  const std::string circuit = GetParam();
  const std::string path = tmp_artifact(circuit);

  Session compiled = Session::open(data_path(circuit));
  compiled.save(path);

  Session loaded = Session::open_artifact(path);
  ASSERT_NE(loaded.artifact_info(), nullptr);
  EXPECT_EQ(loaded.artifact_info()->num_nodes,
            compiled.netlist().num_nodes());
  EXPECT_EQ(loaded.netlist().num_nodes(), compiled.netlist().num_nodes());
  EXPECT_EQ(loaded.netlist().num_inputs(), compiled.netlist().num_inputs());
  EXPECT_EQ(loaded.compile_stats().num_segments,
            compiled.compile_stats().num_segments);

  // Two input models, one correlated: the restored schedules must
  // produce the exact doubles the in-process compile produces.
  for (const auto& [p, rho] : {std::pair{0.5, 0.0}, std::pair{0.3, 0.2}}) {
    const InputModel model =
        InputModel::uniform(compiled.netlist().num_inputs(), p, rho);
    const SwitchingEstimate want = compiled.estimate(model);
    const SwitchingEstimate got = loaded.estimate(model);
    ASSERT_EQ(want.dist.size(), got.dist.size());
    EXPECT_EQ(want.dist, got.dist)
        << circuit << " differs bitwise at p=" << p << " rho=" << rho;
  }

  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllDataCircuits, ArtifactRoundTrip,
                         testing::Values("c17", "comp", "count", "b9",
                                         "pcler8", "alu4", "malu4", "voter",
                                         "max_flat", "c432", "c499", "c880",
                                         "c1355", "c1908", "c2670", "c3540",
                                         "c5315", "c6288", "c7552"),
                         [](const auto& info) { return info.param; });

// --- header / info ----------------------------------------------------

TEST(ArtifactTest, ReadInfoReportsHeaderFields) {
  const std::string path = tmp_artifact("info");
  Session s = Session::open("c17");
  s.save(path);

  const ArtifactInfo info = read_artifact_info(path);
  EXPECT_EQ(info.schema_version, kArtifactSchemaVersion);
  EXPECT_EQ(info.circuit, "c17");
  EXPECT_EQ(info.num_nodes, s.netlist().num_nodes());
  EXPECT_EQ(info.num_inputs, s.netlist().num_inputs());
  EXPECT_EQ(info.num_segments, s.compile_stats().num_segments);
  EXPECT_FALSE(info.timestamp_iso8601.empty());
  std::remove(path.c_str());
}

TEST(ArtifactTest, LoadRecordsLoadSeconds) {
  const std::string path = tmp_artifact("seconds");
  Session::open("c17").save(path);
  Session loaded = Session::open_artifact(path);
  EXPECT_GT(loaded.load_seconds(), 0.0);
  std::remove(path.c_str());
}

// --- corruption negatives ---------------------------------------------

class ArtifactCorruption : public testing::Test {
 protected:
  void SetUp() override {
    path_ = tmp_artifact("corrupt");
    Session::open("c432").save(path_);
    bytes_ = read_file(path_);
    ASSERT_GT(bytes_.size(), 64u);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  std::string bytes_;
};

TEST_F(ArtifactCorruption, FlippedMagicRejected) {
  std::string bad = bytes_;
  bad[0] ^= 0x20;
  EXPECT_THROW(load_artifact_bytes(bad), ArtifactError);
}

TEST_F(ArtifactCorruption, TruncatedHeaderRejected) {
  EXPECT_THROW(load_artifact_bytes(std::string_view(bytes_).substr(0, 6)),
               ArtifactError);
}

TEST_F(ArtifactCorruption, TruncatedPayloadRejected) {
  EXPECT_THROW(
      load_artifact_bytes(std::string_view(bytes_).substr(0, bytes_.size() / 2)),
      ArtifactError);
}

TEST_F(ArtifactCorruption, EmptyFileRejected) {
  EXPECT_THROW(load_artifact_bytes(std::string_view()), ArtifactError);
}

TEST_F(ArtifactCorruption, WrongSchemaVersionRejected) {
  std::string bad = bytes_;
  const std::size_t key = bad.find("schema_version");
  ASSERT_NE(key, std::string::npos);
  std::size_t digit = key;
  while (digit < bad.size() && (bad[digit] < '0' || bad[digit] > '9')) ++digit;
  ASSERT_LT(digit, bad.size());
  bad[digit] = '9'; // version 9 does not exist
  try {
    load_artifact_bytes(bad);
    FAIL() << "schema version 9 accepted";
  } catch (const ArtifactError& e) {
    EXPECT_NE(std::string(e.what()).find("schema"), std::string::npos)
        << e.what();
  }
}

TEST_F(ArtifactCorruption, CorruptedSectionByteRejectedByChecksum) {
  std::string bad = bytes_;
  bad[bad.size() - 1] ^= 0x01;
  try {
    load_artifact_bytes(bad);
    FAIL() << "corrupted section accepted";
  } catch (const ArtifactError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST_F(ArtifactCorruption, GarbageAfterLastSectionRejected) {
  std::string bad = bytes_ + "trailing garbage";
  EXPECT_THROW(load_artifact_bytes(bad), ArtifactError);
}

TEST_F(ArtifactCorruption, NotAnArtifactFileRejected) {
  EXPECT_THROW(load_artifact(data_path("c17")), ArtifactError);
}

TEST_F(ArtifactCorruption, MissingFileThrows) {
  EXPECT_THROW(load_artifact("/nonexistent/nope.bnsc"), std::exception);
}

} // namespace
} // namespace bns
