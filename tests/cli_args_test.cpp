// Tests for the shared bns::cli layer: the strict scalar parsers every
// tool now routes through, plus popen() end-to-end checks that the
// ported tools (bns_compile, bns_serve, bns_sweep) honor the documented
// exit-code contract — 0 ok, 1 gate/verify failure, 2 usage-or-I/O.
//
// Binary paths are injected by CMake as BNS_COMPILE_BINARY,
// BNS_SERVE_BINARY and BNS_SWEEP_BINARY; popen keeps both the exit
// status and the output observable.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/cli.h"

namespace bns {
namespace {

// --- strict scalar parsing --------------------------------------------

TEST(CliParseTest, ParseIntAcceptsWholeTokensOnly) {
  int v = -1;
  EXPECT_TRUE(cli::parse_int("42", v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(cli::parse_int("-7", v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(cli::parse_int("0", v));
  EXPECT_EQ(v, 0);

  EXPECT_FALSE(cli::parse_int("", v));
  EXPECT_FALSE(cli::parse_int("4x", v));   // atoi would return 4
  EXPECT_FALSE(cli::parse_int("x4", v));
  EXPECT_FALSE(cli::parse_int("4 ", v));
  EXPECT_FALSE(cli::parse_int("4.5", v));
  EXPECT_FALSE(cli::parse_int("99999999999999999999", v)); // range
}

TEST(CliParseTest, ParseDoubleAcceptsWholeTokensOnly) {
  double v = -1.0;
  EXPECT_TRUE(cli::parse_double("0.25", v));
  EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_TRUE(cli::parse_double("-3e2", v));
  EXPECT_DOUBLE_EQ(v, -300.0);

  EXPECT_FALSE(cli::parse_double("", v));
  EXPECT_FALSE(cli::parse_double("0.5p", v)); // strtod would return 0.5
  EXPECT_FALSE(cli::parse_double("p0.5", v));
  EXPECT_FALSE(cli::parse_double("1..2", v));
}

TEST(CliParseTest, ParseIntListIsStrictlyPositiveAndComplete) {
  std::vector<int> v;
  EXPECT_TRUE(cli::parse_int_list("1", v));
  EXPECT_EQ(v, (std::vector<int>{1}));
  EXPECT_TRUE(cli::parse_int_list("1,2,8", v));
  EXPECT_EQ(v, (std::vector<int>{1, 2, 8}));

  EXPECT_FALSE(cli::parse_int_list("", v));
  EXPECT_FALSE(cli::parse_int_list("1,,2", v));  // empty item
  EXPECT_FALSE(cli::parse_int_list("1,2,", v));  // trailing comma
  EXPECT_FALSE(cli::parse_int_list(",1", v));    // leading comma
  EXPECT_FALSE(cli::parse_int_list("0", v));     // < 1
  EXPECT_FALSE(cli::parse_int_list("2,-4", v));  // < 1
  EXPECT_FALSE(cli::parse_int_list("2,x", v));   // non-digit
}

// --- CLI end-to-end ----------------------------------------------------

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run_cmd(const std::string& binary, const std::string& args) {
  const std::string cmd = binary + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  RunResult res;
  if (pipe == nullptr) return res;
  char buf[4096];
  std::size_t n = 0;
  while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) {
    res.output.append(buf, n);
  }
  const int status = pclose(pipe);
  res.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return res;
}

std::string tmp_path(const std::string& tag) {
  return testing::TempDir() + "bns_cli_args_" + tag + "_" +
         std::to_string(::getpid()) + ".bnsc";
}

TEST(CompileCliTest, CompileVerifyInfoHappyPath) {
  const std::string path = tmp_path("happy");
  const RunResult compile =
      run_cmd(BNS_COMPILE_BINARY, "c17 -o " + path + " --verify");
  EXPECT_EQ(compile.exit_code, cli::kExitOk) << compile.output;
  EXPECT_NE(compile.output.find("verify: ok (bitwise)"), std::string::npos)
      << compile.output;

  const RunResult info = run_cmd(BNS_COMPILE_BINARY, "--info " + path);
  EXPECT_EQ(info.exit_code, cli::kExitOk) << info.output;
  EXPECT_NE(info.output.find("circuit          c17"), std::string::npos)
      << info.output;
  std::remove(path.c_str());
}

TEST(CompileCliTest, UsageErrorsExitTwo) {
  const std::string path = tmp_path("usage");
  // No circuit / no -o.
  EXPECT_EQ(run_cmd(BNS_COMPILE_BINARY, "").exit_code, cli::kExitUsage);
  EXPECT_EQ(run_cmd(BNS_COMPILE_BINARY, "c17").exit_code, cli::kExitUsage);
  // Unknown flag, missing value, non-integer --threads.
  EXPECT_EQ(run_cmd(BNS_COMPILE_BINARY, "c17 -o " + path + " --bogus")
                .exit_code,
            cli::kExitUsage);
  EXPECT_EQ(run_cmd(BNS_COMPILE_BINARY, "c17 -o").exit_code, cli::kExitUsage);
  EXPECT_EQ(run_cmd(BNS_COMPILE_BINARY, "c17 -o " + path + " --threads 4x")
                .exit_code,
            cli::kExitUsage);
  // --info combined with a compile job is ambiguous.
  EXPECT_EQ(run_cmd(BNS_COMPILE_BINARY, "c17 --info " + path).exit_code,
            cli::kExitUsage);
  // Two positionals.
  EXPECT_EQ(run_cmd(BNS_COMPILE_BINARY, "c17 c432 -o " + path).exit_code,
            cli::kExitUsage);
  std::remove(path.c_str());
}

TEST(CompileCliTest, IoErrorsExitTwo) {
  EXPECT_EQ(run_cmd(BNS_COMPILE_BINARY, "no_such_circuit_xyz -o " +
                                            tmp_path("io"))
                .exit_code,
            cli::kExitUsage);
  EXPECT_EQ(
      run_cmd(BNS_COMPILE_BINARY, "c17 -o /nonexistent-dir/deep/x.bnsc")
          .exit_code,
      cli::kExitUsage);
  EXPECT_EQ(run_cmd(BNS_COMPILE_BINARY, "--info /nonexistent/y.bnsc")
                .exit_code,
            cli::kExitUsage);
}

TEST(SweepCliTest, ArtifactRoundTripWithVerifyExitsZero) {
  const std::string path = tmp_path("sweep");
  ASSERT_EQ(run_cmd(BNS_COMPILE_BINARY, "c17 -o " + path).exit_code,
            cli::kExitOk);
  const RunResult r =
      run_cmd(BNS_SWEEP_BINARY, path + " --scenarios 3 --verify");
  EXPECT_EQ(r.exit_code, cli::kExitOk) << r.output;
  EXPECT_NE(r.output.find("verify: ok"), std::string::npos) << r.output;
  std::remove(path.c_str());
}

TEST(SweepCliTest, UsageErrorsExitTwo) {
  EXPECT_EQ(run_cmd(BNS_SWEEP_BINARY, "").exit_code, cli::kExitUsage);
  EXPECT_EQ(run_cmd(BNS_SWEEP_BINARY, "c17 --scenarios nope").exit_code,
            cli::kExitUsage);
  EXPECT_EQ(run_cmd(BNS_SWEEP_BINARY, "c17 --vary-input 99").exit_code,
            cli::kExitUsage);
  EXPECT_EQ(run_cmd(BNS_SWEEP_BINARY, "c17 --bogus-flag").exit_code,
            cli::kExitUsage);
}

TEST(ServeCliTest, ClientWithoutDaemonExitsTwo) {
  const RunResult r = run_cmd(
      BNS_SERVE_BINARY,
      "--socket /tmp/bns_cli_args_no_daemon.sock --request '{\"op\":\"ping\"}'");
  EXPECT_EQ(r.exit_code, cli::kExitUsage) << r.output;
  EXPECT_NE(r.output.find("cannot connect"), std::string::npos) << r.output;
}

TEST(ServeCliTest, UsageErrorsExitTwo) {
  EXPECT_EQ(run_cmd(BNS_SERVE_BINARY, "").exit_code, cli::kExitUsage);
  EXPECT_EQ(run_cmd(BNS_SERVE_BINARY, "--threads 2").exit_code,
            cli::kExitUsage);
  EXPECT_EQ(run_cmd(BNS_SERVE_BINARY, "--socket /tmp/x.sock --threads -1")
                .exit_code,
            cli::kExitUsage);
  EXPECT_EQ(run_cmd(BNS_SERVE_BINARY, "--socket /tmp/x.sock --wait -2")
                .exit_code,
            cli::kExitUsage);
  EXPECT_EQ(run_cmd(BNS_SERVE_BINARY, "--socket /tmp/x.sock stray").exit_code,
            cli::kExitUsage);
}

} // namespace
} // namespace bns
