#include <gtest/gtest.h>

#include "bn/exact.h"
#include "bn/junction_tree.h"
#include "test_helpers.h"

namespace bns {
namespace {

using testing_helpers::random_bayes_net;

TEST(JunctionTree, RunningIntersectionOnExample) {
  const BayesianNetwork bn = random_bayes_net(12, 3, 3, 7);
  const JunctionTreeEngine eng(bn);
  EXPECT_EQ(eng.tree().check_running_intersection(), "");
}

TEST(JunctionTree, ForestForDisconnectedNetwork) {
  // Two independent coins: no clique connects them.
  BayesianNetwork bn;
  for (int i = 0; i < 2; ++i) {
    const VarId v = bn.add_variable("c" + std::to_string(i), 2);
    Factor p({v}, {2});
    p.set_value(0, 0.5);
    p.set_value(1, 0.5);
    bn.set_cpt(v, {}, p);
  }
  JunctionTreeEngine eng(bn);
  EXPECT_EQ(eng.tree().num_cliques(), 2);
  EXPECT_EQ(eng.tree().roots().size(), 2u);
  eng.reset_potentials();
  eng.propagate();
  EXPECT_NEAR(eng.marginal(0).value(1), 0.5, 1e-12);
  EXPECT_NEAR(eng.evidence_probability(), 1.0, 1e-12);
}

TEST(JunctionTree, CliqueContainingQueries) {
  const BayesianNetwork bn = random_bayes_net(10, 2, 3, 13);
  const JunctionTreeEngine eng(bn);
  const JunctionTree& jt = eng.tree();
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    const int c = jt.clique_containing(v);
    ASSERT_GE(c, 0);
    const auto& clique = jt.clique(c);
    EXPECT_TRUE(std::binary_search(clique.begin(), clique.end(), v));
  }
  EXPECT_EQ(jt.clique_containing(999), -1);
}

// The central correctness property: junction-tree marginals equal
// brute-force enumeration on random networks of varying shapes.
class EngineVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(EngineVsBruteForce, PosteriorMarginalsMatch) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const BayesianNetwork bn =
      random_bayes_net(8 + GetParam() % 5, 3, 3, seed * 1234567 + 1);
  ASSERT_EQ(bn.validate(), "");

  JunctionTreeEngine eng(bn);
  ASSERT_EQ(eng.tree().check_running_intersection(), "");
  eng.reset_potentials();
  eng.propagate();

  const auto expect = brute_force_marginals(bn);
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    const Factor m = eng.marginal(v);
    EXPECT_NEAR(m.max_abs_diff(expect[static_cast<std::size_t>(v)]), 0.0, 1e-10)
        << "marginal of v" << v;
  }
}

TEST_P(EngineVsBruteForce, HardEvidenceMatches) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const BayesianNetwork bn = random_bayes_net(9, 3, 3, seed * 777 + 3);

  // Observe two variables.
  const Evidence ev = {{2, 1}, {5, 0}};
  JunctionTreeEngine eng(bn);
  eng.reset_potentials();
  for (const auto& [v, s] : ev) eng.set_evidence(v, s);
  eng.propagate();

  const auto expect = brute_force_marginals(bn, ev);
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    const Factor m = eng.marginal(v);
    EXPECT_NEAR(m.max_abs_diff(expect[static_cast<std::size_t>(v)]), 0.0, 1e-10);
  }
}

TEST_P(EngineVsBruteForce, EvidenceProbabilityMatchesVe) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const BayesianNetwork bn = random_bayes_net(8, 2, 3, seed * 31 + 17);
  const Evidence ev = {{1, 0}, {6, 1}};

  JunctionTreeEngine eng(bn);
  eng.reset_potentials();
  for (const auto& [v, s] : ev) eng.set_evidence(v, s);
  eng.propagate();

  EXPECT_NEAR(eng.evidence_probability(), ve_evidence_probability(bn, ev),
              1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineVsBruteForce, ::testing::Range(1, 13));

TEST(JunctionTree, SoftEvidenceMatchesManualReweighting) {
  const BayesianNetwork bn = random_bayes_net(7, 2, 2, 99);
  const VarId target = 3;
  const double lambda[2] = {0.2, 0.9};

  JunctionTreeEngine eng(bn);
  eng.reset_potentials();
  eng.set_soft_evidence(target, lambda);
  eng.propagate();
  const Factor got = eng.marginal(0);

  // Manual: P'(x0) ∝ sum_s lambda(s) P(x0, target=s).
  JunctionTreeEngine plain(bn);
  plain.reset_potentials();
  plain.propagate();
  const Factor joint = [&] {
    // P(x0, target = s) via two hard-evidence runs.
    Factor acc({0}, {bn.cardinality(0)});
    for (int s = 0; s < 2; ++s) {
      JunctionTreeEngine e2(bn);
      e2.reset_potentials();
      e2.set_evidence(target, s);
      e2.propagate();
      const double pe = e2.evidence_probability();
      const Factor m = e2.marginal(0);
      for (std::size_t i = 0; i < acc.size(); ++i) {
        acc.set_value(i, acc.value(i) + lambda[s] * pe * m.value(i));
      }
    }
    acc.normalize();
    return acc;
  }();
  EXPECT_NEAR(got.max_abs_diff(joint), 0.0, 1e-10);
}

TEST(JunctionTree, JointMarginalWithinClique) {
  const BayesianNetwork bn = random_bayes_net(8, 2, 2, 55);
  JunctionTreeEngine eng(bn);
  eng.reset_potentials();
  eng.propagate();

  // Any CPT family shares a clique; query a variable with a parent.
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    if (bn.parents(v).empty()) continue;
    const VarId p = bn.parents(v)[0];
    const VarId vs[2] = {v, p};
    const auto j = eng.try_joint_marginal(vs);
    ASSERT_TRUE(j.has_value());
    EXPECT_NEAR(j->sum(), 1.0, 1e-10);
    // Marginalizing the joint gives the single marginals.
    const Factor mv = j->sum_out(p);
    EXPECT_NEAR(mv.max_abs_diff(eng.marginal(v)), 0.0, 1e-10);
    return; // one pair suffices
  }
}

TEST(JunctionTree, RepeatedPropagationWithNewCpts) {
  // The paper's update workflow: change root priors, re-propagate on the
  // same compiled structure, get the new exact posterior.
  BayesianNetwork bn;
  const VarId a = bn.add_variable("a", 2);
  const VarId y = bn.add_variable("y", 2);
  Factor pa({a}, {2});
  pa.set_value(0, 0.5);
  pa.set_value(1, 0.5);
  bn.set_cpt(a, {}, pa);
  Factor py({a, y}, {2, 2});
  py.at(std::vector<int>{0, 1}) = 0.1; // P(y=1|a=0)
  py.at(std::vector<int>{0, 0}) = 0.9;
  py.at(std::vector<int>{1, 1}) = 0.8;
  py.at(std::vector<int>{1, 0}) = 0.2;
  bn.set_cpt(y, {a}, py);

  JunctionTreeEngine eng(bn);
  eng.reset_potentials();
  eng.propagate();
  EXPECT_NEAR(eng.marginal(y).value(1), 0.5 * 0.1 + 0.5 * 0.8, 1e-12);

  Factor pa2({a}, {2});
  pa2.set_value(0, 0.25);
  pa2.set_value(1, 0.75);
  bn.set_cpt(a, {}, pa2);
  eng.reset_potentials(); // same structure, new numbers
  eng.propagate();
  EXPECT_NEAR(eng.marginal(y).value(1), 0.25 * 0.1 + 0.75 * 0.8, 1e-12);
}

TEST(JunctionTree, StateSpaceMatchesTriangulation) {
  const BayesianNetwork bn = random_bayes_net(10, 3, 4, 77);
  const JunctionTreeEngine eng(bn);
  std::vector<int> cards;
  for (VarId v = 0; v < bn.num_variables(); ++v) cards.push_back(bn.cardinality(v));
  EXPECT_DOUBLE_EQ(eng.state_space(),
                   eng.triangulation().total_state_space(cards));
}

// --- exact engines cross-check -------------------------------------------

class VeVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(VeVsBruteForce, MarginalsMatch) {
  const BayesianNetwork bn = random_bayes_net(
      9, 3, 3, static_cast<std::uint64_t>(GetParam()) * 101 + 7);
  const auto expect = brute_force_marginals(bn);
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    EXPECT_NEAR(ve_marginal(bn, v).max_abs_diff(expect[static_cast<std::size_t>(v)]),
                0.0, 1e-10);
  }
}

TEST_P(VeVsBruteForce, EvidenceMarginalsMatch) {
  const BayesianNetwork bn = random_bayes_net(
      8, 2, 3, static_cast<std::uint64_t>(GetParam()) * 271 + 11);
  const Evidence ev = {{0, 1}};
  const auto expect = brute_force_marginals(bn, ev);
  for (VarId v = 1; v < bn.num_variables(); ++v) {
    EXPECT_NEAR(
        ve_marginal(bn, v, ev).max_abs_diff(expect[static_cast<std::size_t>(v)]),
        0.0, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VeVsBruteForce, ::testing::Range(1, 8));

} // namespace
} // namespace bns
