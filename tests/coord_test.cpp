// Tests for the distributed sweep coordinator (src/coord/): the
// ChunkQueue scheduling policy (contiguous block dealing, tail-half
// work stealing, retry budgets, retire/failover settlement) with plain
// integers, and coordinate_sweep end-to-end against real in-process
// Servers — where the contract is that the merged records are
// string-for-string identical (%.17g) to a single-process
// Session::sweep, on c432 and c1908, with and without endpoints
// failing mid-sweep.
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "coord/chunk_queue.h"
#include "coord/coord.h"
#include "obs/json.h"
#include "serve/server.h"
#include "session/session.h"

namespace bns::coord {
namespace {

// --- ChunkQueue scheduling policy -------------------------------------

TEST(ChunkQueueTest, SingleEndpointDrainsItsBlockInOrder) {
  ChunkQueue q(5, 1, 3);
  for (int want = 0; want < 5; ++want) {
    const ChunkGrant g = q.next(0);
    ASSERT_FALSE(g.done);
    EXPECT_EQ(g.chunk, want);
    EXPECT_EQ(g.attempt, 1);
    EXPECT_FALSE(g.stolen);
    q.complete(g.chunk);
  }
  EXPECT_TRUE(q.next(0).done);
  EXPECT_EQ(q.total_retries(), 0);
  EXPECT_TRUE(q.failed().empty());
}

TEST(ChunkQueueTest, FinishedEndpointStealsTailHalfOfLargestPeer) {
  // Blocks: endpoint 0 gets {0,1,2,3}, endpoint 1 gets {4,5,6,7}.
  // Endpoint 1 never asks; endpoint 0 drains its own block front-to-
  // back, then repeatedly steals the tail half of 1's remainder:
  // {6,7}, then {5}, then {4}.
  ChunkQueue q(8, 2, 3);
  const int expect_chunk[] = {0, 1, 2, 3, 6, 7, 5, 4};
  const bool expect_stolen[] = {false, false, false, false,
                                true,  true,  true,  true};
  for (int i = 0; i < 8; ++i) {
    const ChunkGrant g = q.next(0);
    ASSERT_FALSE(g.done) << i;
    EXPECT_EQ(g.chunk, expect_chunk[i]) << i;
    EXPECT_EQ(g.stolen, expect_stolen[i]) << i;
    q.complete(g.chunk);
  }
  EXPECT_TRUE(q.next(0).done);
}

TEST(ChunkQueueTest, FailRequeuesUntilAttemptBudgetThenSettlesFailed) {
  ChunkQueue q(1, 1, 2);
  ChunkGrant g = q.next(0);
  EXPECT_EQ(g.attempt, 1);
  EXPECT_TRUE(q.fail(g.chunk, "first"));  // requeued
  g = q.next(0);
  EXPECT_EQ(g.chunk, 0);
  EXPECT_EQ(g.attempt, 2);
  EXPECT_FALSE(q.fail(g.chunk, "second")); // budget spent
  EXPECT_TRUE(q.next(0).done);

  const std::vector<ChunkQueue::FailedChunk> failed = q.failed();
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0].chunk, 0);
  EXPECT_EQ(failed[0].attempts, 2);
  EXPECT_EQ(failed[0].last_error, "second");
  EXPECT_EQ(q.total_retries(), 1);
}

TEST(ChunkQueueTest, RetiredEndpointsBlockFailsOverToSurvivors) {
  // Endpoint 1 dies without serving anything; endpoint 0 must end up
  // serving all four chunks, at one attempt each (orphaning is free).
  ChunkQueue q(4, 2, 3);
  q.retire(1);
  int served = 0;
  for (;;) {
    const ChunkGrant g = q.next(0);
    if (g.done) break;
    EXPECT_EQ(g.attempt, 1);
    q.complete(g.chunk);
    ++served;
  }
  EXPECT_EQ(served, 4);
  EXPECT_EQ(q.total_retries(), 0);
  EXPECT_TRUE(q.failed().empty());
}

TEST(ChunkQueueTest, LastRetireSettlesEveryQueuedChunkAsFailed) {
  ChunkQueue q(2, 1, 3);
  const ChunkGrant g = q.next(0);
  EXPECT_EQ(g.chunk, 0);
  EXPECT_TRUE(q.fail(g.chunk, "connection lost")); // requeued
  q.retire(0); // no live endpoints left: nothing can serve the queue

  const std::vector<ChunkQueue::FailedChunk> failed = q.failed();
  ASSERT_EQ(failed.size(), 2u);
  EXPECT_EQ(failed[0].chunk, 0);
  EXPECT_EQ(failed[0].last_error, "connection lost");
  EXPECT_EQ(failed[1].chunk, 1);
  EXPECT_EQ(failed[1].last_error, "no live endpoints remain");
}

TEST(ChunkQueueTest, BlockedWorkerWakesWhenAFailureRequeuesWork) {
  // Endpoint 0 holds the only chunk in flight; endpoint 1's next()
  // must block (a failure may requeue it) — and then receive exactly
  // that chunk once endpoint 0 fails it.
  ChunkQueue q(1, 2, 3);
  const ChunkGrant first = q.next(0);
  ASSERT_EQ(first.chunk, 0);

  std::atomic<bool> got{false};
  std::thread waiter([&q, &got] {
    const ChunkGrant g = q.next(1);
    EXPECT_FALSE(g.done);
    EXPECT_EQ(g.chunk, 0);
    EXPECT_EQ(g.attempt, 2);
    got.store(true);
    q.complete(g.chunk);
    EXPECT_TRUE(q.next(1).done);
  });
  // Give the waiter a moment to actually block, then fail the chunk.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  EXPECT_TRUE(q.fail(first.chunk, "boom"));
  waiter.join();
  EXPECT_TRUE(got.load());
  EXPECT_EQ(q.total_retries(), 1);
}

// --- coordinate_sweep against real in-process daemons -----------------

std::string scratch(const std::string& stem) {
  return testing::TempDir() + "bns_coord_test_" + stem + "_" +
         std::to_string(::getpid());
}

// A bns_serve daemon running in this process on its own thread.
struct Daemon {
  explicit Daemon(std::string socket) {
    serve::ServerOptions opts;
    opts.socket_path = std::move(socket);
    server = std::make_unique<serve::Server>(opts);
    server->start();
    runner = std::thread([this] { server->run(); });
  }
  ~Daemon() { stop(); }
  void stop() {
    if (!runner.joinable()) return;
    server->request_stop();
    runner.join();
  }
  std::unique_ptr<serve::Server> server;
  std::thread runner;
};

struct Pool {
  explicit Pool(int n, const std::string& tag) {
    for (int d = 0; d < n; ++d) {
      sockets.push_back(scratch(tag + "_" + std::to_string(d)) + ".sock");
      daemons.push_back(std::make_unique<Daemon>(sockets.back()));
    }
  }
  std::vector<std::string> sockets;
  std::vector<std::unique_ptr<Daemon>> daemons;
};

// Compiles `circuit` once into a scratch .bnsc artifact (what a daemon
// pool serves in deployment; also keeps per-daemon load cost low).
std::string compile_artifact(const std::string& circuit) {
  const std::string path = scratch(circuit) + ".bnsc";
  Session s = Session::open(circuit);
  s.save(path);
  return path;
}

// The distribution contract: every merged record equals the in-process
// sweep's record string-for-string under the shared %.17g formatter.
void expect_records_exact(const CoordSweepResult& got, Session& ref,
                          const LinearSweepSpec& spec) {
  const std::vector<InputModel> models =
      make_linear_scenarios(spec, ref.netlist().num_inputs());
  const SweepResult want = ref.sweep(models);
  ASSERT_EQ(got.records.size(), models.size());
  for (std::size_t s = 0; s < models.size(); ++s) {
    EXPECT_EQ(got.records[s].scenario, static_cast<int>(s));
    EXPECT_EQ(obs::json_number(got.records[s].p),
              obs::json_number(models[s].spec(spec.vary_input).p))
        << "scenario " << s;
    EXPECT_EQ(obs::json_number(got.records[s].average_activity),
              obs::json_number(want.estimates[s].average_activity()))
        << "scenario " << s;
  }
}

TEST(CoordSweepTest, MergedRecordsStringExact_c432) {
  const std::string artifact = compile_artifact("c432");
  Pool pool(3, "exact432");

  CoordOptions opts;
  opts.sockets = pool.sockets;
  opts.model = artifact;
  opts.spec.scenarios = 12;
  opts.chunk_scenarios = 2;
  const CoordSweepResult res = coordinate_sweep(opts);

  ASSERT_TRUE(res.ok()) << res.failed.size() << " failed chunks";
  Session ref = Session::open_artifact(artifact);
  expect_records_exact(res, ref, opts.spec);

  // Accounting adds up: every chunk served exactly once, every record
  // attributed, every chunk's trace id on the wire form.
  int served = 0;
  int records = 0;
  for (const EndpointAccount& a : res.endpoints) {
    served += a.chunks_served;
    records += a.records;
    EXPECT_FALSE(a.retired) << a.socket;
  }
  EXPECT_EQ(served, static_cast<int>(res.chunks.size()));
  EXPECT_EQ(records, 12);
  for (const ChunkAccount& c : res.chunks) {
    EXPECT_EQ(c.attempts, 1);
    EXPECT_GE(c.endpoint, 0);
    EXPECT_EQ(c.trace_id.size(), 16u);
  }
  EXPECT_EQ(res.retries, 0);
  std::remove(artifact.c_str());
}

TEST(CoordSweepTest, MergedRecordsStringExact_c1908) {
  const std::string artifact = compile_artifact("c1908");
  Pool pool(2, "exact1908");

  CoordOptions opts;
  opts.sockets = pool.sockets;
  opts.model = artifact;
  opts.spec.scenarios = 6;
  opts.spec.vary_input = 3;
  opts.spec.rho = 0.2;
  opts.chunk_scenarios = 1;
  const CoordSweepResult res = coordinate_sweep(opts);

  ASSERT_TRUE(res.ok()) << res.failed.size() << " failed chunks";
  Session ref = Session::open_artifact(artifact);
  expect_records_exact(res, ref, opts.spec);
  std::remove(artifact.c_str());
}

// Delegating test double: behaves like the real Unix endpoint but
// force-fails chosen roundtrips, so failover is deterministic instead
// of timing-dependent.
class FlakyEndpoint final : public Endpoint {
 public:
  // fail_first: report transport failure on that many roundtrips
  // (requests are swallowed, never sent). dead: every roundtrip fails —
  // including the coordinator's reconnect ping, which retires the
  // worker.
  FlakyEndpoint(std::string socket, int fail_first, bool dead)
      : real_(make_unix_endpoint(std::move(socket))),
        fail_remaining_(fail_first),
        dead_(dead) {}

  bool connect(double wait_seconds) override {
    return real_->connect(wait_seconds);
  }
  bool roundtrip(const std::string& request, std::string* response) override {
    if (dead_) return false;
    if (fail_remaining_ > 0) {
      --fail_remaining_;
      return false;
    }
    return real_->roundtrip(request, response);
  }
  void close() override { real_->close(); }

 private:
  std::unique_ptr<Endpoint> real_;
  int fail_remaining_;
  bool dead_;
};

TEST(CoordSweepTest, TransientFailureRedispatchesTheChunkBitExactly) {
  const std::string artifact = compile_artifact("c432");
  Pool pool(2, "transient");

  CoordOptions opts;
  opts.sockets = pool.sockets;
  opts.model = artifact;
  opts.spec.scenarios = 8;
  opts.chunk_scenarios = 2;
  std::vector<std::unique_ptr<Endpoint>> eps;
  eps.push_back(std::make_unique<FlakyEndpoint>(pool.sockets[0],
                                                /*fail_first=*/1,
                                                /*dead=*/false));
  eps.push_back(std::make_unique<FlakyEndpoint>(pool.sockets[1], 0, false));
  opts.endpoints_override = &eps;

  const CoordSweepResult res = coordinate_sweep(opts);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.retries, 1);
  EXPECT_EQ(res.endpoints[0].failures, 1);
  int retried = 0;
  for (const ChunkAccount& c : res.chunks) retried += c.attempts > 1 ? 1 : 0;
  EXPECT_EQ(retried, 1);

  Session ref = Session::open_artifact(artifact);
  expect_records_exact(res, ref, opts.spec);
  std::remove(artifact.c_str());
}

TEST(CoordSweepTest, DeadEndpointRetiresAndSurvivorsFinishBitExactly) {
  const std::string artifact = compile_artifact("c432");
  Pool pool(2, "dead");

  CoordOptions opts;
  opts.sockets = pool.sockets;
  opts.model = artifact;
  opts.spec.scenarios = 8;
  opts.chunk_scenarios = 2;
  std::vector<std::unique_ptr<Endpoint>> eps;
  eps.push_back(std::make_unique<FlakyEndpoint>(pool.sockets[0], 0,
                                                /*dead=*/true));
  eps.push_back(std::make_unique<FlakyEndpoint>(pool.sockets[1], 0, false));
  opts.endpoints_override = &eps;

  const CoordSweepResult res = coordinate_sweep(opts);
  ASSERT_TRUE(res.ok()) << res.failed.size() << " failed chunks";
  EXPECT_TRUE(res.endpoints[0].retired);
  EXPECT_EQ(res.endpoints[0].chunks_served, 0);
  EXPECT_EQ(res.endpoints[1].chunks_served, 4);
  EXPECT_GE(res.retries, 1); // the dead endpoint's in-flight chunk
  for (const ChunkAccount& c : res.chunks) EXPECT_EQ(c.endpoint, 1);

  Session ref = Session::open_artifact(artifact);
  expect_records_exact(res, ref, opts.spec);
  std::remove(artifact.c_str());
}

TEST(CoordSweepTest, StoppedDaemonMidSweepFailsOverBitExactly) {
  // The real-socket version of the failover story: a daemon is drained
  // mid-sweep, the coordinator's persistent connection dies, its
  // chunks fail over to the survivors, and the merged records stay
  // exact. (CI's coord-smoke job repeats this with kill -9 across
  // processes.) The stop lands before the victim can have drained its
  // whole block, so the only nondeterminism is *which* chunks move.
  const std::string artifact = compile_artifact("c432");
  Pool pool(3, "stopsweep");

  CoordOptions opts;
  opts.sockets = pool.sockets;
  opts.model = artifact;
  opts.spec.scenarios = 30;
  opts.chunk_scenarios = 1; // 30 chunks: every daemon holds a long block
  std::thread stopper([&pool] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    pool.daemons[0]->stop();
  });
  const CoordSweepResult res = coordinate_sweep(opts);
  stopper.join();

  ASSERT_TRUE(res.ok()) << res.failed.size() << " failed chunks";
  Session ref = Session::open_artifact(artifact);
  expect_records_exact(res, ref, opts.spec);
  std::remove(artifact.c_str());
}

TEST(CoordSweepTest, AllEndpointsUnreachableSurfacesStructuredErrors) {
  CoordOptions opts;
  opts.sockets = {scratch("ghost_a") + ".sock", scratch("ghost_b") + ".sock"};
  opts.model = "c17";
  opts.spec.scenarios = 4;
  opts.chunk_scenarios = 2;
  opts.connect_wait_seconds = 0.05;

  const CoordSweepResult res = coordinate_sweep(opts);
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(res.records.empty());
  ASSERT_EQ(res.failed.size(), 2u);
  for (const ChunkFailure& f : res.failed) {
    EXPECT_EQ(f.error, "no live endpoints remain");
    EXPECT_EQ(f.scenarios, 2);
  }
  for (const EndpointAccount& a : res.endpoints) EXPECT_TRUE(a.retired);
}

TEST(CoordSweepTest, MergedDocumentCarriesSchemaAccountingAndRecords) {
  const std::string artifact = compile_artifact("c432");
  Pool pool(2, "doc");

  CoordOptions opts;
  opts.sockets = pool.sockets;
  opts.model = artifact;
  opts.spec.scenarios = 4;
  opts.chunk_scenarios = 2;
  const CoordSweepResult res = coordinate_sweep(opts);
  ASSERT_TRUE(res.ok());

  obs::ReportProvenance prov = obs::default_provenance();
  prov.circuit = artifact;
  const std::string doc =
      coord_result_to_json(opts, res, prov, /*verified=*/true);
  const std::optional<obs::JsonValue> v = obs::json_parse(doc);
  ASSERT_TRUE(v && v->is_object()) << doc;
  EXPECT_EQ(v->number_or("schema_version", -1), kCoordSweepSchemaVersion);
  const obs::JsonValue* sweep = v->find("sweep");
  ASSERT_TRUE(sweep && sweep->is_object());
  EXPECT_EQ(sweep->number_or("daemons", -1), 2);
  EXPECT_EQ(sweep->number_or("chunks", -1), 2);
  EXPECT_EQ(sweep->number_or("failed_chunks", -1), 0);
  const obs::JsonValue* endpoints = v->find("endpoints");
  ASSERT_TRUE(endpoints && endpoints->is_array());
  EXPECT_EQ(endpoints->as_array().size(), 2u);
  const obs::JsonValue* records = v->find("records");
  ASSERT_TRUE(records && records->is_array());
  ASSERT_EQ(records->as_array().size(), 4u);
  // The record lines are bns_sweep's own format, verbatim.
  Session ref = Session::open_artifact(artifact);
  const std::vector<InputModel> models =
      make_linear_scenarios(opts.spec, ref.netlist().num_inputs());
  const SweepResult want = ref.sweep(models);
  for (std::size_t s = 0; s < 4; ++s) {
    const std::string line =
        "{\"scenario\": " + std::to_string(s) + ", \"p\": " +
        obs::json_number(models[s].spec(0).p) + ", \"average_activity\": " +
        obs::json_number(want.estimates[s].average_activity());
    EXPECT_NE(doc.find(line), std::string::npos) << "missing: " << line;
  }
  std::remove(artifact.c_str());
}

} // namespace
} // namespace bns::coord
