// Unit tests for the observability subsystem (src/obs/): span nesting
// and level gating, counter atomicity under the thread pool, sink
// behavior, and the JSON-lines schema parsed back in-process.
#include "obs/obs.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace bns {
namespace {

using obs::Counter;
using obs::MetricsSnapshot;
using obs::Span;
using obs::SpanRecord;
using obs::TraceLevel;
using obs::Tracer;

// Collects completed spans in arrival order for structural assertions.
class CollectingSink final : public obs::Sink {
 public:
  void on_span(const SpanRecord& rec) override {
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back(rec);
  }
  std::vector<SpanRecord> spans() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
};

TEST(ObsTest, SpanNestingDepths) {
  CollectingSink sink;
  Tracer tracer(TraceLevel::Spans);
  tracer.add_sink(&sink);
  {
    Span outer(&tracer, "outer");
    {
      Span mid(&tracer, "mid");
      Span inner(&tracer, "inner");
    }
    Span sibling(&tracer, "sibling");
  }
  // Spans complete innermost-first.
  const std::vector<SpanRecord> spans = sink.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 2);
  EXPECT_STREQ(spans[1].name, "mid");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_STREQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[2].depth, 1);
  EXPECT_STREQ(spans[3].name, "outer");
  EXPECT_EQ(spans[3].depth, 0);
  // The parent's interval contains the child's.
  EXPECT_LE(spans[3].start_ns, spans[0].start_ns);
  EXPECT_GE(spans[3].start_ns + spans[3].dur_ns,
            spans[0].start_ns + spans[0].dur_ns);
}

TEST(ObsTest, LevelGating) {
  CollectingSink sink;
  Tracer off(TraceLevel::Off);
  off.add_sink(&sink);
  { Span s(&off, "ignored"); }
  off.count(Counter::MessagesPassed, 7);
  EXPECT_TRUE(sink.spans().empty());
  EXPECT_EQ(off.metrics().value(Counter::MessagesPassed), 0u);

  Tracer counters(TraceLevel::Counters);
  counters.add_sink(&sink);
  { Span s(&counters, "ignored"); }
  counters.count(Counter::MessagesPassed, 7);
  EXPECT_TRUE(sink.spans().empty()) << "Counters level must not emit spans";
  EXPECT_EQ(counters.metrics().value(Counter::MessagesPassed), 7u);

  // A null tracer is always safe.
  { Span s(nullptr, "ignored"); }
}

TEST(ObsTest, CountersAtomicUnderThreadPool) {
  Tracer tracer(TraceLevel::Counters);
  ThreadPool pool(4);
  constexpr int kIters = 20000;
  pool.parallel_for(kIters, [&](int i) {
    tracer.count(Counter::MessagesPassed, 2);
    tracer.gauge_max(Counter::MaxCliqueStates,
                     static_cast<std::uint64_t>(i));
  });
  EXPECT_EQ(tracer.metrics().value(Counter::MessagesPassed),
            2ull * kIters);
  EXPECT_EQ(tracer.metrics().value(Counter::MaxCliqueStates),
            static_cast<std::uint64_t>(kIters - 1));
}

TEST(ObsTest, GlobalTracerHook) {
  ASSERT_EQ(obs::global_tracer(), nullptr);
  obs::count_global(Counter::ThreadPoolTasks, 3); // no-op without a tracer
  Tracer tracer(TraceLevel::Counters);
  obs::set_global_tracer(&tracer);
  obs::count_global(Counter::ThreadPoolTasks, 3);
  obs::set_global_tracer(nullptr);
  obs::count_global(Counter::ThreadPoolTasks, 3); // dropped again
  EXPECT_EQ(tracer.metrics().value(Counter::ThreadPoolTasks), 3u);
}

TEST(ObsTest, SummarySinkAggregates) {
  obs::SummarySink sink;
  Tracer tracer(TraceLevel::Spans);
  tracer.add_sink(&sink);
  for (int i = 0; i < 3; ++i) {
    Span s(&tracer, "stage_a");
  }
  { Span s(&tracer, "stage_b"); }
  tracer.count(Counter::CliquesBuilt, 4);
  tracer.flush();

  const auto stages = sink.stages();
  ASSERT_EQ(stages.count("stage_a"), 1u);
  EXPECT_EQ(stages.at("stage_a").count, 3u);
  EXPECT_GE(stages.at("stage_a").total_ns, stages.at("stage_a").max_ns);
  ASSERT_EQ(stages.count("stage_b"), 1u);
  EXPECT_EQ(stages.at("stage_b").count, 1u);

  std::ostringstream os;
  sink.render(os);
  EXPECT_NE(os.str().find("stage_a"), std::string::npos);
  EXPECT_NE(os.str().find("cliques_built"), std::string::npos);
}

// --- minimal flat-JSON parser, sufficient for the one-object-per-line
// schema JsonLinesSink emits (string keys; string/number/bool values).
// Parsing back in the test is the well-formedness check the schema's
// consumers (jq in CI) rely on.
bool parse_flat_json(const std::string& line,
                     std::map<std::string, std::string>* out) {
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
  };
  auto parse_string = [&](std::string* s) -> bool {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\') ++i; // skip the escaped char
      if (i < line.size()) s->push_back(line[i++]);
    }
    if (i >= line.size()) return false;
    ++i; // closing quote
    return true;
  };
  skip_ws();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') return true; // empty object
  while (true) {
    skip_ws();
    std::string key;
    if (!parse_string(&key)) return false;
    skip_ws();
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    skip_ws();
    std::string value;
    if (i < line.size() && line[i] == '"') {
      if (!parse_string(&value)) return false;
    } else {
      while (i < line.size() && line[i] != ',' && line[i] != '}') {
        value.push_back(line[i++]);
      }
      while (!value.empty() &&
             std::isspace(static_cast<unsigned char>(value.back()))) {
        value.pop_back();
      }
      if (value.empty()) return false;
    }
    (*out)[key] = value;
    skip_ws();
    if (i >= line.size()) return false;
    if (line[i] == '}') {
      ++i;
      skip_ws();
      return i == line.size();
    }
    if (line[i] != ',') return false;
    ++i;
  }
}

TEST(ObsTest, JsonLinesWellFormed) {
  std::ostringstream os;
  obs::JsonLinesSink sink(os);
  Tracer tracer(TraceLevel::Spans);
  tracer.add_sink(&sink);
  {
    Span outer(&tracer, "compile");
    Span inner(&tracer, "triangulate");
  }
  tracer.count(Counter::FillEdges, 12);
  tracer.gauge_max(Counter::MaxCliqueStates, 4096);
  tracer.flush();

  std::istringstream in(os.str());
  std::string line;
  int spans = 0;
  int counters = 0;
  std::vector<std::string> span_names;
  while (std::getline(in, line)) {
    std::map<std::string, std::string> obj;
    ASSERT_TRUE(parse_flat_json(line, &obj)) << line;
    ASSERT_EQ(obj.count("schema_version"), 1u) << line;
    EXPECT_EQ(obj["schema_version"],
              std::to_string(obs::kTraceSchemaVersion));
    ASSERT_EQ(obj.count("type"), 1u) << line;
    if (obj["type"] == "span") {
      ++spans;
      span_names.push_back(obj["name"]);
      EXPECT_EQ(obj.count("depth"), 1u);
      EXPECT_EQ(obj.count("dur_ns"), 1u);
      EXPECT_EQ(obj.count("thread"), 1u);
    } else if (obj["type"] == "counter") {
      ++counters;
      EXPECT_EQ(obj.count("name"), 1u);
      EXPECT_EQ(obj.count("value"), 1u);
    } else {
      FAIL() << "unknown record type in: " << line;
    }
  }
  EXPECT_EQ(spans, 2);
  ASSERT_EQ(span_names.size(), 2u);
  EXPECT_EQ(span_names[0], "triangulate"); // inner completes first
  EXPECT_EQ(span_names[1], "compile");
  EXPECT_EQ(counters, 2); // only the two non-zero counters are dumped
}

TEST(ObsTest, HistogramBucketBoundaries) {
  // edges = ascending upper bounds: bucket i counts edges[i-1] <= v <
  // edges[i]; the final bucket takes v >= edges.back() and NaN.
  static const double kEdges[] = {1.0, 10.0, 100.0};
  obs::Histogram h;
  h.init(obs::Hist::PropagateNs, kEdges);
  ASSERT_EQ(h.num_buckets(), 4);

  h.add(0.0);    // bucket 0: v < 1
  h.add(0.999);  // bucket 0
  h.add(1.0);    // bucket 1: exactly on the edge goes up
  h.add(9.999);  // bucket 1
  h.add(10.0);   // bucket 2
  h.add(99.0);   // bucket 2
  h.add(100.0);  // overflow: v >= last edge
  h.add(1e9);    // overflow
  h.add(std::numeric_limits<double>::quiet_NaN()); // overflow
  h.add(-5.0);   // bucket 0 (below the first edge)

  EXPECT_EQ(h.bucket(0), 3u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 3u);
  EXPECT_EQ(h.total(), 10u);

  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.total, 10u);
  EXPECT_EQ(snap.counts[0], 3u);
  EXPECT_EQ(snap.counts[3], 3u);

  h.reset();
  EXPECT_EQ(h.total(), 0u);
}

TEST(ObsTest, HistogramConcurrentAddsUnderThreadPool) {
  Tracer tracer(TraceLevel::Counters);
  ThreadPool pool(4);
  constexpr int kIters = 20000;
  // Samples alternate deterministically across the propagate_ns edges
  // (first edge 1e3), so bucket totals are exact.
  pool.parallel_for(kIters, [&](int i) {
    tracer.hist(obs::Hist::PropagateNs, i % 2 == 0 ? 1.0 : 1e12);
  });
  const obs::Histogram& h = tracer.metrics().hist(obs::Hist::PropagateNs);
  EXPECT_EQ(h.total(), static_cast<std::uint64_t>(kIters));
  EXPECT_EQ(h.bucket(0), static_cast<std::uint64_t>(kIters / 2));
  EXPECT_EQ(h.bucket(h.num_buckets() - 1),
            static_cast<std::uint64_t>(kIters / 2));
}

TEST(ObsTest, HistogramMerge) {
  static const double kEdges[] = {1.0, 2.0};
  obs::Histogram a;
  obs::Histogram b;
  a.init(obs::Hist::PropagateNs, kEdges);
  b.init(obs::Hist::PropagateNs, kEdges);
  a.add(0.5);
  a.add(1.5);
  b.add(1.5);
  b.add(2.5);
  a.merge_from(b);
  EXPECT_EQ(a.bucket(0), 1u);
  EXPECT_EQ(a.bucket(1), 2u);
  EXPECT_EQ(a.bucket(2), 1u);
  EXPECT_EQ(a.total(), 4u);
}

TEST(ObsTest, HistNamesAndEdgesAreWellFormed) {
  std::map<std::string, int> seen;
  for (int i = 0; i < obs::kNumHists; ++i) {
    const auto h = static_cast<obs::Hist>(i);
    const char* name = obs::hist_name(h);
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
    ++seen[name];
    const std::span<const double> edges = obs::hist_edges(h);
    ASSERT_GE(edges.size(), 1u);
    ASSERT_LT(static_cast<int>(edges.size()), obs::kHistMaxBuckets);
    for (std::size_t j = 1; j < edges.size(); ++j) {
      EXPECT_LT(edges[j - 1], edges[j]) << name << " edges not ascending";
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(obs::kNumHists));
}

TEST(ObsTest, RegistryAndTracerReset) {
  Tracer tracer(TraceLevel::Counters);
  tracer.count(Counter::MessagesPassed, 5);
  tracer.gauge_max(Counter::MaxCliqueStates, 99);
  tracer.hist(obs::Hist::PropagateNs, 42.0);
  ASSERT_EQ(tracer.metrics().value(Counter::MessagesPassed), 5u);
  ASSERT_EQ(tracer.metrics().hist(obs::Hist::PropagateNs).total(), 1u);

  tracer.reset();
  EXPECT_EQ(tracer.metrics().value(Counter::MessagesPassed), 0u);
  EXPECT_EQ(tracer.metrics().value(Counter::MaxCliqueStates), 0u);
  EXPECT_EQ(tracer.metrics().hist(obs::Hist::PropagateNs).total(), 0u);
}

TEST(ObsTest, SummarySinkResetDropsState) {
  obs::SummarySink sink;
  Tracer tracer(TraceLevel::Spans);
  tracer.add_sink(&sink);
  { Span s(&tracer, "stage_a"); }
  tracer.count(Counter::CliquesBuilt, 4);
  tracer.hist(obs::Hist::PropagateNs, 1.0);
  tracer.flush();
  ASSERT_EQ(sink.stages().count("stage_a"), 1u);

  sink.reset();
  EXPECT_TRUE(sink.stages().empty());
  std::ostringstream os;
  sink.render(os);
  EXPECT_EQ(os.str().find("stage_a"), std::string::npos);
  EXPECT_EQ(os.str().find("histogram"), std::string::npos);
}

TEST(ObsTest, JsonLinesHistogramWellFormed) {
  std::ostringstream os;
  obs::JsonLinesSink sink(os);
  Tracer tracer(TraceLevel::Counters);
  tracer.add_sink(&sink);
  tracer.hist(obs::Hist::PropagateNs, 500.0);
  tracer.hist(obs::Hist::PropagateNs, 5e6);
  tracer.flush();

  // The histogram line nests arrays, so the flat parser can't take it —
  // use the full obs JSON parser instead (also exercised here).
  std::istringstream in(os.str());
  std::string line;
  int hists = 0;
  while (std::getline(in, line)) {
    const std::optional<obs::JsonValue> v = obs::json_parse(line);
    ASSERT_TRUE(v.has_value()) << line;
    ASSERT_TRUE(v->is_object()) << line;
    if (v->string_or("type", "") != "histogram") continue;
    ++hists;
    EXPECT_EQ(static_cast<int>(v->number_or("schema_version", 0)),
              obs::kTraceSchemaVersion);
    EXPECT_EQ(v->string_or("name", ""), "propagate_ns");
    const obs::JsonValue* edges = v->find("edges");
    const obs::JsonValue* counts = v->find("counts");
    ASSERT_NE(edges, nullptr);
    ASSERT_NE(counts, nullptr);
    ASSERT_TRUE(edges->is_array());
    ASSERT_TRUE(counts->is_array());
    EXPECT_EQ(counts->as_array().size(), edges->as_array().size() + 1);
    EXPECT_EQ(static_cast<int>(v->number_or("total", 0)), 2);
  }
  EXPECT_EQ(hists, 1);
}

TEST(ObsTest, CounterNamesAreStableAndComplete) {
  // Every counter has a distinct non-empty snake_case name; the JSON
  // schema depends on these strings staying put.
  std::map<std::string, int> seen;
  for (int i = 0; i < obs::kNumCounters; ++i) {
    const char* name = obs::counter_name(static_cast<Counter>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
    ++seen[name];
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(obs::kNumCounters));
}

} // namespace
} // namespace bns
