// End-to-end smoke: the paper's example circuit and c17 estimated by the
// LIDAG-BN pipeline must match exhaustive enumeration exactly (single-BN
// circuits are exact — Section 6).
#include <gtest/gtest.h>

#include "gen/circuits.h"
#include "lidag/estimator.h"
#include "sim/simulator.h"

namespace bns {
namespace {

TEST(Smoke, Figure1ExactVsEnumeration) {
  const Netlist nl = figure1_circuit();
  const InputModel model = InputModel::uniform(nl.num_inputs(), 0.5, 0.0);

  LidagEstimator est(nl, model);
  EXPECT_TRUE(est.single_bn());
  const SwitchingEstimate sw = est.estimate(model);

  const auto exact = exact_activities(nl, model);
  ASSERT_EQ(exact.size(), sw.dist.size());
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    EXPECT_NEAR(sw.activity(id), exact[static_cast<std::size_t>(id)], 1e-12)
        << "node " << nl.node(id).name;
  }
}

TEST(Smoke, C17ExactVsEnumerationBiasedCorrelatedInputs) {
  const Netlist nl = c17();
  std::vector<InputSpec> specs;
  for (int i = 0; i < nl.num_inputs(); ++i) {
    specs.push_back({0.3 + 0.1 * i, 0.2 - 0.05 * i, -1, 0.0});
  }
  const InputModel model = InputModel::custom(specs);

  LidagEstimator est(nl, model);
  const SwitchingEstimate sw = est.estimate(model);
  const auto exact = exact_activities(nl, model);
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    EXPECT_NEAR(sw.activity(id), exact[static_cast<std::size_t>(id)], 1e-12);
  }
}

TEST(Smoke, C17SimulationConverges) {
  const Netlist nl = c17();
  const InputModel model = InputModel::uniform(nl.num_inputs());
  const SwitchingSimulator sim(nl);
  const SimResult r = sim.run(model, 2'000'000, /*seed=*/7);
  const auto exact = exact_activities(nl, model);
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    EXPECT_NEAR(r.activity(id), exact[static_cast<std::size_t>(id)], 2e-3);
  }
}

} // namespace
} // namespace bns
