// Tests for the static schedule & plan analyzer (src/verify/
// schedule_rules): the clean-analyzer property over every checked-in
// circuit, one seeded-defect fixture per SC code (mirroring the
// `bns_lint --inject` hooks), the SC008 static-bound/runtime-gauge
// cross-check, and unit coverage for the ScopeMap in-bounds predicate
// and the dirty pre-screen model.
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "bn/bayes_net.h"
#include "bn/factor.h"
#include "bn/junction_tree.h"
#include "bn/schedule.h"
#include "gen/benchmarks.h"
#include "lidag/estimator.h"
#include "lidag/lidag.h"
#include "netlist/bench_io.h"
#include "obs/obs.h"
#include "verify/diagnostics.h"
#include "verify/schedule_rules.h"

namespace bns {
namespace {

bool is_sc_code(DiagCode c) {
  return diag_code_name(c).substr(0, 2) == "SC";
}

// All SC diagnostics in `report`, rendered for failure messages.
std::string sc_findings(const DiagnosticReport& report) {
  std::string out;
  for (const Diagnostic& d : report.diagnostics()) {
    if (!is_sc_code(d.code)) continue;
    out += std::string(diag_code_name(d.code)) + " " + d.location + ": " +
           d.message + "\n";
  }
  return out;
}

// A compiled engine + copyable schedule for one circuit, the raw
// material every seeded-defect test corrupts. Mirrors the CLI injector
// (tools/bns_lint.cpp) so the unit tests and `--inject` exercise the
// same defect shapes.
struct Compiled {
  LidagBn lb;
  JunctionTreeEngine eng;
  PropagationSchedule sched;
  std::vector<int> cpt_home;

  explicit Compiled(const std::string& circuit)
      : lb(build_lidag(make_benchmark(circuit),
                       InputModel::uniform(make_benchmark(circuit).num_inputs()))),
        eng(lb.bn) {
    eng.prepare();
    const CompiledEngineView view = eng.compiled_view();
    EXPECT_NE(view.schedule, nullptr) << circuit;
    if (view.schedule != nullptr) sched = *view.schedule;
    cpt_home.assign(view.cpt_home.begin(), view.cpt_home.end());
  }

  // Runs every structural pass over the (possibly corrupted) copy.
  DiagnosticReport lint_all() const {
    DiagnosticReport report;
    lint_schedule_races(eng.tree(), sched, report);
    lint_stride_bounds(lb.bn, eng.tree(), sched, report);
    lint_load_plans(lb.bn, eng.tree(), sched, report);
    lint_reload_coverage(lb.bn, eng.tree(), sched, cpt_home,
                         eng.compiled_view().snapshot_offsets, report);
    lint_numerical_risk(lb.bn, eng.tree(), sched, report);
    return report;
  }
};

// --- clean-analyzer property -------------------------------------------

// Every checked-in ISCAS/MCNC fixture must compile to a schedule the
// analyzer proves clean: zero SC diagnostics across all segments and
// the dirty pre-screen. (The fixtures do carry genuine NL003/NL005
// netlist warnings; those are not this analyzer's findings.)
TEST(ScheduleRulesClean, AllDataFixturesHaveZeroScDiagnostics) {
  namespace fs = std::filesystem;
  int checked = 0;
  for (const fs::directory_entry& e : fs::directory_iterator(BNS_DATA_DIR)) {
    if (e.path().extension() != ".bench") continue;
    const Netlist nl = read_bench_file(e.path().string());
    const LidagEstimator est(nl, InputModel::uniform(nl.num_inputs()));
    const DiagnosticReport report = est.verify(VerifyLevel::Schedule);
    for (const Diagnostic& d : report.diagnostics()) {
      EXPECT_FALSE(is_sc_code(d.code))
          << e.path().filename() << "\n" << sc_findings(report);
    }
    EXPECT_EQ(report.num_errors(), 0) << e.path().filename();
    ++checked;
  }
  EXPECT_GE(checked, 19) << "fixture sweep lost circuits — check "
                         << BNS_DATA_DIR;
}

TEST(ScheduleRulesClean, BuiltInBenchmarksHaveZeroScDiagnostics) {
  for (const std::string name : {"c17", "comp", "count", "b9"}) {
    const Netlist nl = make_benchmark(name);
    const LidagEstimator est(nl, InputModel::uniform(nl.num_inputs()));
    const DiagnosticReport report = est.verify(VerifyLevel::Schedule);
    for (const Diagnostic& d : report.diagnostics()) {
      EXPECT_FALSE(is_sc_code(d.code)) << name << "\n" << sc_findings(report);
    }
  }
}

TEST(ScheduleRulesClean, RawPassesAcceptFreshSchedule) {
  const Compiled c("count");
  const DiagnosticReport report = c.lint_all();
  EXPECT_TRUE(report.empty()) << report.render_text();
}

// --- seeded defects: one fixture per SC code ---------------------------

TEST(ScheduleRulesDefect, DuplicatedUnitFiresSc001) {
  Compiled c("count");
  ASSERT_FALSE(c.sched.units.empty());
  c.sched.units.push_back(c.sched.units.front());
  const DiagnosticReport report = c.lint_all();
  EXPECT_TRUE(report.has_code(DiagCode::SC001)) << report.render_text();
}

TEST(ScheduleRulesDefect, ParkedEdgeClashFiresSc002) {
  Compiled c("count");
  ASSERT_FALSE(c.sched.units.empty());
  ASSERT_GE(c.eng.tree().edges().size(), 2u);
  SubtreeUnit& u = c.sched.units.front();
  u.edge = (u.edge + 1) % static_cast<int>(c.eng.tree().edges().size());
  const DiagnosticReport report = c.lint_all();
  EXPECT_TRUE(report.has_code(DiagCode::SC002)) << report.render_text();
}

TEST(ScheduleRulesDefect, DroppedRootSequenceFiresSc003) {
  Compiled c("count");
  bool corrupted = false;
  for (std::vector<int>& seq : c.sched.root_units) {
    if (!seq.empty()) {
      seq.clear();
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  const DiagnosticReport report = c.lint_all();
  EXPECT_TRUE(report.has_code(DiagCode::SC003)) << report.render_text();
}

TEST(ScheduleRulesDefect, OutOfBoundsStrideFiresSc004) {
  Compiled c("count");
  ASSERT_FALSE(c.sched.edges.empty());
  MessagePlan& plan = c.sched.edges.front();
  if (!plan.from_a.strides.empty()) {
    plan.from_a.strides.front() += plan.ratio.size();
  }
  plan.ratio.pop_back(); // undersized separator workspace
  const DiagnosticReport report = c.lint_all();
  EXPECT_TRUE(report.has_code(DiagCode::SC004)) << report.render_text();
}

TEST(ScheduleRulesDefect, CptSizeMismatchFiresSc005) {
  Compiled c("count");
  bool corrupted = false;
  for (std::vector<CliqueLoad>& loads : c.sched.loads) {
    if (!loads.empty()) {
      loads.front().cpt_size += 1;
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  const DiagnosticReport report = c.lint_all();
  EXPECT_TRUE(report.has_code(DiagCode::SC005)) << report.render_text();
}

TEST(ScheduleRulesDefect, LoadMovedOffHomeCliqueFiresSc006) {
  Compiled c("count");
  ASSERT_GE(c.eng.tree().num_cliques(), 2);
  bool corrupted = false;
  for (std::size_t k = 0; k < c.sched.loads.size() && !corrupted; ++k) {
    if (c.sched.loads[k].empty()) continue;
    const std::size_t other = k == 0 ? 1 : 0;
    c.sched.loads[other].push_back(c.sched.loads[k].back());
    c.sched.loads[k].pop_back();
    corrupted = true;
  }
  ASSERT_TRUE(corrupted);
  const DiagnosticReport report = c.lint_all();
  EXPECT_TRUE(report.has_code(DiagCode::SC006)) << report.render_text();
}

TEST(ScheduleRulesDefect, CorruptedScreenModelFiresSc007) {
  const Netlist nl = make_benchmark("count");
  const LidagEstimator est(nl, InputModel::uniform(nl.num_inputs()));
  SegmentScreenModel screen = est.screen_model();
  // A boundary link whose owner does not run strictly before the reader,
  // and a primary-input trigger past the tracked flag vector.
  screen.links.push_back(ScreenLink{0, 0});
  screen.roots.push_back(
      ScreenRoot{0, ScreenTriggerKind::Spec, screen.num_specs});
  DiagnosticReport report;
  lint_dirty_screen(screen, report);
  EXPECT_TRUE(report.has_code(DiagCode::SC007)) << report.render_text();
  // Two independent defects, two findings.
  EXPECT_GE(report.size(), 2u);
}

// Chain A -> B -> C with identity CPTs and a subnormal prior cell: the
// collected root potential carries ~2^-1029, far past the SC008
// threshold of 2^-1000.
BayesianNetwork underflow_chain() {
  BayesianNetwork bn;
  const VarId a = bn.add_variable("A", 2);
  const VarId b = bn.add_variable("B", 2);
  const VarId c = bn.add_variable("C", 2);
  const double tiny = 1e-310;
  Factor prior({a}, {2});
  prior.set_value(0, tiny);
  prior.set_value(1, 1.0 - tiny);
  bn.set_cpt(a, {}, std::move(prior));
  const auto identity = [](VarId parent, VarId child) {
    Factor f({parent, child}, {2, 2});
    f.set_value(0, 1.0); // child 0 | parent 0
    f.set_value(3, 1.0); // child 1 | parent 1
    return f;
  };
  bn.set_cpt(b, {a}, identity(a, b));
  bn.set_cpt(c, {b}, identity(b, c));
  return bn;
}

TEST(ScheduleRulesDefect, SubnormalPriorFiresSc008) {
  const BayesianNetwork bn = underflow_chain();
  JunctionTreeEngine eng(bn);
  eng.prepare();
  DiagnosticReport report;
  const NumericalRiskBound bound = lint_schedule(eng.compiled_view(), report);
  EXPECT_TRUE(report.has_code(DiagCode::SC008)) << report.render_text();
  EXPECT_EQ(report.find(DiagCode::SC008)->severity, Severity::Warning);
  EXPECT_GT(bound.worst_neg_exp, 1000);
  EXPECT_GE(bound.worst_root, 0);
}

// The static dataflow bound must dominate what a real propagation
// observes: run the same chain, record the runtime sep_min_neg_exp
// gauge, and check static >= observed (the soundness direction) while
// the observed value itself confirms the risk is real, not a
// false positive of the analyzer.
TEST(ScheduleRulesDefect, StaticBoundDominatesRuntimeGauge) {
  const BayesianNetwork bn = underflow_chain();
  obs::Tracer tracer(obs::TraceLevel::Counters);
  CompileOptions opts;
  opts.trace = &tracer;
  JunctionTreeEngine eng(bn, opts);
  eng.prepare();
  DiagnosticReport report;
  const NumericalRiskBound bound = lint_schedule(eng.compiled_view(), report);

  eng.load_potentials();
  eng.propagate();
  const std::uint64_t observed =
      tracer.metrics().value(obs::Counter::SepMinNegExp);
  EXPECT_GT(observed, 900u); // the 1e-310 cell really flows to a separator
  EXPECT_GE(static_cast<std::uint64_t>(bound.worst_neg_exp), observed)
      << "static bound must be an over-approximation of the runtime gauge";
}

// A benign network stays under the threshold and reports a small bound.
TEST(ScheduleRulesDefect, BenignChainHasNoSc008) {
  BayesianNetwork bn;
  const VarId a = bn.add_variable("A", 2);
  const VarId b = bn.add_variable("B", 2);
  Factor prior({a}, {2});
  prior.set_value(0, 0.25);
  prior.set_value(1, 0.75);
  bn.set_cpt(a, {}, std::move(prior));
  Factor f({a, b}, {2, 2});
  f.set_value(0, 0.5);
  f.set_value(1, 0.5);
  f.set_value(2, 0.5);
  f.set_value(3, 0.5);
  bn.set_cpt(b, {a}, std::move(f));
  JunctionTreeEngine eng(bn);
  eng.prepare();
  DiagnosticReport report;
  const NumericalRiskBound bound = lint_schedule(eng.compiled_view(), report);
  EXPECT_FALSE(report.has_code(DiagCode::SC008)) << report.render_text();
  EXPECT_LE(bound.worst_neg_exp, 16);
}

// --- ScopeMap in-bounds predicate --------------------------------------

TEST(ScopeMapBounds, AcceptsRealMap) {
  const VarId super_vars[] = {0, 1, 2};
  const int super_cards[] = {2, 3, 2};
  const VarId sub_vars[] = {1};
  const int sub_cards[] = {3};
  const ScopeMap m =
      make_scope_map(super_vars, super_cards, sub_vars, sub_cards);
  EXPECT_EQ(scope_map_domain_size(m), 12u);
  EXPECT_EQ(scope_map_max_sub_offset(m), 2u);
  EXPECT_TRUE(scope_map_in_bounds(m, 12, 3));
}

TEST(ScopeMapBounds, RejectsSizeMismatch) {
  const VarId super_vars[] = {0, 1};
  const int super_cards[] = {2, 2};
  const VarId sub_vars[] = {0};
  const int sub_cards[] = {2};
  const ScopeMap m =
      make_scope_map(super_vars, super_cards, sub_vars, sub_cards);
  EXPECT_TRUE(scope_map_in_bounds(m, 4, 2));
  EXPECT_FALSE(scope_map_in_bounds(m, 8, 2)) << "walk does not tile super";
  EXPECT_FALSE(scope_map_in_bounds(m, 4, 1)) << "peak sub offset escapes";
}

TEST(ScopeMapBounds, RejectsCorruptedPrograms) {
  const VarId super_vars[] = {0, 1};
  const int super_cards[] = {2, 4};
  const VarId sub_vars[] = {1};
  const int sub_cards[] = {4};
  ScopeMap m = make_scope_map(super_vars, super_cards, sub_vars, sub_cards);
  ASSERT_TRUE(scope_map_in_bounds(m, 8, 4));

  ScopeMap stride_bumped = m;
  ASSERT_FALSE(stride_bumped.strides.empty());
  stride_bumped.strides.front() += 100;
  EXPECT_FALSE(scope_map_in_bounds(stride_bumped, 8, 4));

  ScopeMap misaligned = m;
  misaligned.strides.push_back(0); // cards/strides no longer parallel
  EXPECT_FALSE(scope_map_in_bounds(misaligned, 8, 4));

  ScopeMap zero_run = m;
  zero_run.run = 0;
  EXPECT_FALSE(scope_map_in_bounds(zero_run, 8, 4));

  ScopeMap bad_card = m;
  ASSERT_FALSE(bad_card.cards.empty());
  bad_card.cards.front() = 0;
  EXPECT_FALSE(scope_map_in_bounds(bad_card, 8, 4));
}

// --- dirty pre-screen model --------------------------------------------

SegmentScreenModel two_segment_model() {
  SegmentScreenModel m;
  m.num_segments = 2;
  m.num_specs = 3;
  m.num_groups = 1;
  m.num_nodes = 10;
  m.roots = {
      ScreenRoot{0, ScreenTriggerKind::Spec, 0},
      ScreenRoot{0, ScreenTriggerKind::Group, 0},
      ScreenRoot{1, ScreenTriggerKind::Node, 4},
      ScreenRoot{1, ScreenTriggerKind::Constant, -1},
  };
  m.links = {ScreenLink{1, 0}};
  return m;
}

TEST(DirtyScreen, AcceptsWellFormedModel) {
  DiagnosticReport report;
  lint_dirty_screen(two_segment_model(), report);
  EXPECT_TRUE(report.empty()) << report.render_text();
}

TEST(DirtyScreen, FlagsOutOfRangeTriggers) {
  for (const ScreenRoot bad : {
           ScreenRoot{0, ScreenTriggerKind::Spec, 3},   // == num_specs
           ScreenRoot{0, ScreenTriggerKind::Spec, -1},
           ScreenRoot{0, ScreenTriggerKind::Group, 1},  // == num_groups
           ScreenRoot{1, ScreenTriggerKind::Node, 10},  // == num_nodes
           ScreenRoot{2, ScreenTriggerKind::Constant, -1}, // segment OOB
       }) {
    SegmentScreenModel m = two_segment_model();
    m.roots.push_back(bad);
    DiagnosticReport report;
    lint_dirty_screen(m, report);
    EXPECT_TRUE(report.has_code(DiagCode::SC007))
        << "kind=" << static_cast<int>(bad.kind) << " index=" << bad.index;
  }
}

TEST(DirtyScreen, FlagsNonCausalLinks) {
  for (const ScreenLink bad : {
           ScreenLink{0, 0},  // owner == reader: no strict ordering
           ScreenLink{0, 1},  // owner runs after the reader
           ScreenLink{1, -1}, // owner out of range
       }) {
    SegmentScreenModel m = two_segment_model();
    m.links.push_back(bad);
    DiagnosticReport report;
    lint_dirty_screen(m, report);
    EXPECT_TRUE(report.has_code(DiagCode::SC007))
        << "segment=" << bad.segment << " owner=" << bad.owner_segment;
  }
}

// --- estimator integration ---------------------------------------------

// VerifyLevel is ordered: Schedule includes everything Full includes,
// and a clean circuit stays clean at every level.
TEST(ScheduleRulesIntegration, VerifyLevelsAreMonotone) {
  const Netlist nl = make_benchmark("c17");
  const LidagEstimator est(nl, InputModel::uniform(nl.num_inputs()));
  const DiagnosticReport off = est.verify(VerifyLevel::Off);
  const DiagnosticReport full = est.verify(VerifyLevel::Full);
  const DiagnosticReport sched = est.verify(VerifyLevel::Schedule);
  EXPECT_TRUE(off.empty());
  EXPECT_TRUE(full.empty()) << full.render_text();
  EXPECT_TRUE(sched.empty()) << sched.render_text();
}

TEST(ScheduleRulesIntegration, ScreenModelMatchesSegmentation) {
  const Netlist nl = make_benchmark("c432");
  const LidagEstimator est(nl, InputModel::uniform(nl.num_inputs()));
  const SegmentScreenModel screen = est.screen_model();
  EXPECT_EQ(screen.num_segments, est.num_segments());
  EXPECT_EQ(screen.num_specs, nl.num_inputs());
  EXPECT_FALSE(screen.roots.empty());
  DiagnosticReport report;
  lint_dirty_screen(screen, report);
  EXPECT_TRUE(report.empty()) << report.render_text();
}

} // namespace
} // namespace bns
