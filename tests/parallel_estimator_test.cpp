// Parallel-vs-sequential equivalence of the full estimator: segment
// levels running concurrently (and the engine-level subtree parallelism
// underneath) must reproduce the sequential results within 1e-12 — and
// in fact bitwise, since all application orders are fixed.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "gen/benchmarks.h"
#include "lidag/estimator.h"
#include "sim/input_model.h"

namespace bns {
namespace {

EstimatorOptions threaded(int n) {
  EstimatorOptions opts;
  opts.num_threads = n;
  return opts;
}

void expect_dists_close(const std::vector<std::array<double, 4>>& a,
                        const std::vector<std::array<double, 4>>& b,
                        double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (int s = 0; s < 4; ++s) {
      EXPECT_NEAR(a[i][s], b[i][s], tol) << "node " << i << " state " << s;
    }
  }
}

TEST(ParallelEstimator, MatchesSequentialOnC432) {
  const Netlist nl = make_benchmark("c432");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  LidagEstimator seq(nl, m, threaded(1));
  LidagEstimator par(nl, m, threaded(4));
  EXPECT_EQ(seq.num_threads(), 1);
  EXPECT_EQ(par.num_threads(), 4);
  const SwitchingEstimate es = seq.estimate(m);
  const SwitchingEstimate ep = par.estimate(m);
  expect_dists_close(es.dist, ep.dist, 1e-12);
}

TEST(ParallelEstimator, MatchesSequentialWithManySegments) {
  // Force aggressive segmentation so several dependency levels exist
  // and levels contain multiple segments.
  const Netlist nl = make_benchmark("c880");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  EstimatorOptions o1 = threaded(1);
  o1.single_bn_nodes = 0;
  o1.segment_nodes = 60;
  EstimatorOptions o4 = o1;
  o4.num_threads = 4;
  LidagEstimator seq(nl, m, o1);
  LidagEstimator par(nl, m, o4);
  ASSERT_GT(par.num_segments(), 3);
  const SwitchingEstimate es = seq.estimate(m);
  const SwitchingEstimate ep = par.estimate(m);
  expect_dists_close(es.dist, ep.dist, 1e-12);
}

TEST(ParallelEstimator, UpdatePathMatchesSequential) {
  const Netlist nl = make_benchmark("c432");
  const InputModel base = InputModel::uniform(nl.num_inputs());
  LidagEstimator seq(nl, base, threaded(1));
  LidagEstimator par(nl, base, threaded(3));
  for (const auto& [p, rho] :
       {std::pair{0.5, 0.0}, {0.3, 0.4}, {0.8, -0.2}}) {
    const InputModel m = InputModel::uniform(nl.num_inputs(), p, rho);
    expect_dists_close(seq.estimate(m).dist, par.estimate(m).dist, 1e-12);
  }
}

TEST(ParallelEstimator, DeterministicAtFixedThreadCount) {
  const Netlist nl = make_benchmark("c432");
  const InputModel m = InputModel::uniform(nl.num_inputs(), 0.4, 0.3);
  LidagEstimator est(nl, m, threaded(4));
  const SwitchingEstimate a = est.estimate(m);
  const SwitchingEstimate b = est.estimate(m);
  ASSERT_EQ(a.dist.size(), b.dist.size());
  for (std::size_t i = 0; i < a.dist.size(); ++i) {
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(a.dist[i][s], b.dist[i][s]) << "node " << i << " state " << s;
    }
  }
}

TEST(ParallelEstimator, ConditionalQueriesMatchSequential) {
  // conditional_dist re-enters propagation with (soft) evidence; the
  // parallel estimator must answer identically.
  const Netlist nl = make_benchmark("c17");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  LidagEstimator seq(nl, m, threaded(1));
  LidagEstimator par(nl, m, threaded(4));
  (void)seq.estimate(m);
  (void)par.estimate(m);
  const NodeId target = nl.num_nodes() - 1;
  for (NodeId given = 0; given + 1 < nl.num_nodes(); given += 2) {
    for (Trans t : {T00, T01, T11}) {
      const auto a = seq.conditional_dist(target, given, t, m);
      const auto b = par.conditional_dist(target, given, t, m);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (!a) continue;
      for (int s = 0; s < 4; ++s) EXPECT_NEAR((*a)[s], (*b)[s], 1e-12);
    }
  }
}

TEST(ParallelEstimator, ConcurrentBoundaryJointReadersMatchSequential) {
  // Two (or more) segments in the same dependency level can consume
  // boundary marginals and pairwise joints from one shared owner engine
  // concurrently — try_joint_marginal is const and purely reading, and
  // the pool barrier between levels provides the happens-before edge
  // from the owner's propagation. Aggressive segmentation on c880 makes
  // levels with several reader segments per owner; this test exists
  // chiefly to put that sharing under TSan (CI's tsan job runs the
  // ParallelEstimator.* filter).
  const Netlist nl = make_benchmark("c880");
  const InputModel m = InputModel::uniform(nl.num_inputs(), 0.4, 0.2);
  EstimatorOptions o1 = threaded(1);
  o1.single_bn_nodes = 0;
  o1.segment_nodes = 40;
  EstimatorOptions o4 = o1;
  o4.num_threads = 4;
  LidagEstimator seq(nl, m, o1);
  LidagEstimator par(nl, m, o4);
  ASSERT_GT(par.num_segments(), 6);
  for (int round = 0; round < 3; ++round) {
    const SwitchingEstimate es = seq.estimate(m);
    const SwitchingEstimate ep = par.estimate(m);
    expect_dists_close(es.dist, ep.dist, 1e-12);
  }
}

TEST(ParallelEstimator, BatchMatchesSequentialAcrossThreads) {
  // estimate_batch's level-parallel incremental sweep must stay bitwise
  // identical to sequential estimate() calls at any thread count (and
  // its concurrent quantify-diff/reload is another TSan target).
  const Netlist nl = make_benchmark("c880");
  EstimatorOptions o1 = threaded(1);
  o1.single_bn_nodes = 0;
  o1.segment_nodes = 60;
  EstimatorOptions o4 = o1;
  o4.num_threads = 4;

  std::vector<InputModel> models;
  for (double p : {0.5, 0.3, 0.3, 0.8}) {
    std::vector<InputSpec> specs(static_cast<std::size_t>(nl.num_inputs()),
                                 InputSpec{0.5, 0.0, -1, 0.0});
    specs[0].p = p;
    models.push_back(InputModel::custom(std::move(specs)));
  }

  LidagEstimator seq(nl, models[0], o1);
  LidagEstimator par(nl, models[0], o4);
  const std::vector<SwitchingEstimate> batch = par.estimate_batch(models);
  ASSERT_EQ(batch.size(), models.size());
  for (std::size_t s = 0; s < models.size(); ++s) {
    const SwitchingEstimate want = seq.estimate(models[s]);
    ASSERT_EQ(batch[s].dist.size(), want.dist.size());
    for (std::size_t i = 0; i < want.dist.size(); ++i) {
      for (int st = 0; st < 4; ++st) {
        EXPECT_EQ(batch[s].dist[i][st], want.dist[i][st])
            << "scenario " << s << " node " << i << " state " << st;
      }
    }
  }
}

} // namespace
} // namespace bns
