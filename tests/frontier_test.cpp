// Clique-level dirty frontier: randomized dirty-subset reloads must be
// bitwise identical to full propagation (engine- and estimator-level),
// the restore path must stay off the heap while actually restoring, and
// the cost-ordered parallel dispatch must stay deterministic across
// thread counts even as the EWMA reorders units between sweeps.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "alloc_hook.h"
#include "bn/junction_tree.h"
#include "gen/benchmarks.h"
#include "lidag/estimator.h"
#include "netlist/netlist.h"
#include "sim/input_model.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace bns {
namespace {

CompileOptions with_schedule(bool on) {
  CompileOptions opts;
  opts.compile_schedule = on;
  return opts;
}

EstimatorOptions forced(int threads, int segment_nodes = 60) {
  EstimatorOptions opts;
  opts.num_threads = threads;
  opts.single_bn_nodes = 0;
  opts.segment_nodes = segment_nodes;
  return opts;
}

void expect_factors_identical(const Factor& a, const Factor& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.value(i), b.value(i)) << "slot " << i;
  }
}

void expect_all_marginals_identical(const BayesianNetwork& bn,
                                    JunctionTreeEngine& a,
                                    JunctionTreeEngine& b) {
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    expect_factors_identical(a.marginal(v), b.marginal(v));
  }
}

// Reroll only the CPTs of `vars` (column-normalized), returning the
// changed set — the engine contract for reload_incremental.
std::vector<VarId> reroll_subset(BayesianNetwork& bn, std::vector<VarId> vars,
                                 std::uint64_t seed) {
  Rng rng(seed);
  for (VarId v : vars) {
    Factor cpt = bn.cpt(v);
    for (std::size_t i = 0; i < cpt.size(); ++i) {
      cpt.set_value(i, rng.uniform() + 0.05);
    }
    Factor denom = cpt.sum_out(v);
    std::vector<int> st(cpt.vars().size());
    for (std::size_t i = 0; i < cpt.size(); ++i) {
      cpt.states_of(i, st);
      std::vector<int> pst;
      for (std::size_t k = 0; k < cpt.vars().size(); ++k) {
        if (cpt.vars()[k] != v) pst.push_back(st[k]);
      }
      cpt.set_value(i, cpt.value(i) / denom.at(pst));
    }
    bn.set_cpt(v, bn.parents(v), std::move(cpt));
  }
  return vars;
}

// A uniformly random non-empty variable subset of size <= max_size.
std::vector<VarId> random_subset(int num_vars, int max_size, Rng& rng) {
  const int k = 1 + static_cast<int>(
                        rng.below(static_cast<std::uint64_t>(max_size)));
  std::vector<VarId> vars;
  while (static_cast<int>(vars.size()) < k) {
    const VarId v =
        static_cast<VarId>(rng.below(static_cast<std::uint64_t>(num_vars)));
    bool dup = false;
    for (VarId u : vars) dup |= u == v;
    if (!dup) vars.push_back(v);
  }
  return vars;
}

// Scenario list where each scenario perturbs a random subset of the
// primary inputs relative to the previous one — the general dirty
// shape, unlike the single-stepped-input sweep.
std::vector<InputModel> random_scenarios(int num_inputs, int n,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<InputSpec> specs(static_cast<std::size_t>(num_inputs),
                               InputSpec{0.5, 0.0, -1, 0.0});
  std::vector<InputModel> models;
  models.push_back(InputModel::custom(specs));
  for (int s = 1; s < n; ++s) {
    const int k = 1 + static_cast<int>(rng.below(4));
    for (int j = 0; j < k; ++j) {
      const std::size_t idx = static_cast<std::size_t>(
          rng.below(static_cast<std::uint64_t>(num_inputs)));
      specs[idx].p = 0.05 + 0.9 * rng.uniform();
    }
    models.push_back(InputModel::custom(specs));
  }
  return models;
}

void expect_dists_identical(const std::vector<std::array<double, 4>>& a,
                            const std::vector<std::array<double, 4>>& b,
                            std::size_t scenario) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(a[i][s], b[i][s])
          << "scenario " << scenario << " node " << i << " state " << s;
    }
  }
}

TEST(FrontierEngine, RandomizedDirtySubsetsMatchFullPropagate) {
  // Many random dirty sets against a from-scratch engine: the partial
  // sweep (message restores + whole-component skips) must land on the
  // exact bits a full load + propagate produces, every round.
  for (std::uint64_t seed : {11u, 23u, 47u}) {
    BayesianNetwork bn = testing_helpers::random_bayes_net(28, 3, 4, seed);
    JunctionTreeEngine inc(bn, with_schedule(true));
    JunctionTreeEngine full(bn, with_schedule(true));
    inc.load_potentials();
    inc.snapshot_potentials();
    inc.propagate();
    full.load_potentials();
    full.propagate();
    expect_all_marginals_identical(bn, inc, full);

    Rng rng(seed * 1009);
    for (int round = 0; round < 8; ++round) {
      const std::vector<VarId> changed = reroll_subset(
          bn, random_subset(bn.num_variables(), 5, rng),
          seed * 131 + static_cast<std::uint64_t>(round));
      inc.reload_incremental(changed);
      inc.propagate();
      full.load_potentials();
      full.propagate();
      expect_all_marginals_identical(bn, inc, full);
    }
    // The rounds above must actually have exercised the frontier, or
    // this test degenerates into the full-reload comparison.
    EXPECT_GT(inc.messages_skipped(), 0u);
  }
}

TEST(FrontierEngine, RestorePathIsAllocationFreeAndRestores) {
  BayesianNetwork bn = testing_helpers::random_bayes_net(30, 3, 4, 99);
  JunctionTreeEngine eng(bn, with_schedule(true));
  eng.load_potentials();
  eng.snapshot_potentials();
  eng.propagate();
  const std::vector<VarId> changed = {3, 7, 21};
  // Warm once: snapshot_potentials already sized every buffer
  // (including the message snapshot), so nothing below may allocate.
  eng.reload_incremental(changed);
  eng.propagate();
  const std::uint64_t restored0 = eng.cliques_restored();
  const std::uint64_t skipped0 = eng.messages_skipped();
  const std::uint64_t before = alloc_hook::allocation_count();
  for (int round = 0; round < 5; ++round) {
    eng.reload_incremental(changed);
    eng.propagate();
  }
  EXPECT_EQ(alloc_hook::allocation_count(), before)
      << "dirty-frontier restore path must not touch the heap";
  // And it was the restore path, not a silent full sweep: the loop kept
  // restoring cliques and skipping messages.
  EXPECT_GT(eng.cliques_restored(), restored0);
  EXPECT_GT(eng.messages_skipped(), skipped0);
}

TEST(ParallelEstimator, FrontierPartialSweepDeterministicAcrossThreads) {
  // Same changed sets through a sequential and a 4-thread engine, over
  // rounds: the EWMA cost model reorders the dispatch between sweeps,
  // and the results must stay bitwise identical regardless — dispatch
  // order is a performance choice, never a numerical one.
  BayesianNetwork bn = testing_helpers::random_bayes_net(40, 2, 3, 202);
  JunctionTreeEngine seq(bn, with_schedule(true));
  JunctionTreeEngine par(bn, with_schedule(true));
  ThreadPool pool(4);
  seq.load_potentials();
  seq.snapshot_potentials();
  seq.propagate();
  par.load_potentials();
  par.snapshot_potentials();
  par.propagate(&pool);
  expect_all_marginals_identical(bn, seq, par);

  Rng rng(404);
  for (int round = 0; round < 6; ++round) {
    const std::vector<VarId> changed = reroll_subset(
        bn, random_subset(bn.num_variables(), 4, rng),
        977 + static_cast<std::uint64_t>(round));
    seq.reload_incremental(changed);
    seq.propagate();
    par.reload_incremental(changed);
    par.propagate(&pool);
    expect_all_marginals_identical(bn, seq, par);
  }
}

TEST(FrontierBatch, RandomDirtySubsetsBitIdentical_c432) {
  const Netlist nl = make_benchmark("c432");
  const std::vector<InputModel> models =
      random_scenarios(nl.num_inputs(), 8, 0xC432);

  LidagEstimator ref(nl, models[0], forced(1));
  std::vector<SwitchingEstimate> seq;
  seq.reserve(models.size());
  for (const InputModel& m : models) seq.push_back(ref.estimate(m));

  LidagEstimator batch(nl, models[0], forced(1));
  std::vector<SwitchingEstimate> got(models.size());
  const BatchStats stats = batch.estimate_batch_into(models, got);
  for (std::size_t s = 0; s < models.size(); ++s) {
    expect_dists_identical(seq[s].dist, got[s].dist, s);
  }
  // The equality above must have been earned through the frontier, not
  // through full propagation of every segment.
  EXPECT_GT(stats.messages_skipped, 0u);
}

TEST(FrontierBatch, RandomDirtySubsetsBitIdentical_c1908) {
  const Netlist nl = make_benchmark("c1908");
  const std::vector<InputModel> models =
      random_scenarios(nl.num_inputs(), 5, 0x1908);

  LidagEstimator ref(nl, models[0], forced(1));
  std::vector<SwitchingEstimate> seq;
  seq.reserve(models.size());
  for (const InputModel& m : models) seq.push_back(ref.estimate(m));

  LidagEstimator batch(nl, models[0], forced(1));
  std::vector<SwitchingEstimate> got(models.size());
  const BatchStats stats = batch.estimate_batch_into(models, got);
  for (std::size_t s = 0; s < models.size(); ++s) {
    expect_dists_identical(seq[s].dist, got[s].dist, s);
  }
  EXPECT_GT(stats.messages_skipped + stats.cliques_restored, 0u);
}

TEST(ParallelEstimator, FrontierBatchThreads1Vs4IdenticalAcrossRepeats) {
  // Repeated batches on the same estimators: by the second pass the
  // cost model has real observations and the 4-thread dispatch order
  // differs from the first — outputs must not.
  const Netlist nl = make_benchmark("c880");
  const std::vector<InputModel> models =
      random_scenarios(nl.num_inputs(), 5, 0x880);
  LidagEstimator e1(nl, models[0], forced(1));
  LidagEstimator e4(nl, models[0], forced(4));
  for (int pass = 0; pass < 2; ++pass) {
    const std::vector<SwitchingEstimate> r1 = e1.estimate_batch(models);
    const std::vector<SwitchingEstimate> r4 = e4.estimate_batch(models);
    ASSERT_EQ(r1.size(), r4.size());
    for (std::size_t s = 0; s < r1.size(); ++s) {
      expect_dists_identical(r1[s].dist, r4[s].dist, s);
    }
  }
}

} // namespace
} // namespace bns
