// Functional checks for the second wave of structural generators, plus
// single-BN exactness of the estimator on each (they are all small
// enough for exhaustive reference enumeration).
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "lidag/estimator.h"
#include "sim/simulator.h"

namespace bns {
namespace {

// Evaluates a netlist on one full input assignment (bit i of `assign`
// drives input i) and packs the outputs into an integer.
int eval_outputs(const Netlist& nl, std::uint64_t assign) {
  std::vector<bool> vals(static_cast<std::size_t>(nl.num_nodes()));
  for (int i = 0; i < nl.num_inputs(); ++i) {
    vals[static_cast<std::size_t>(nl.inputs()[static_cast<std::size_t>(i)])] =
        (assign >> i) & 1;
  }
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input) continue;
    bool in[24];
    for (std::size_t k = 0; k < n.fanin.size(); ++k) {
      in[k] = vals[static_cast<std::size_t>(n.fanin[k])];
    }
    const std::span<const bool> sp(in, n.fanin.size());
    vals[static_cast<std::size_t>(id)] =
        n.type == GateType::Lut ? n.lut->eval(sp) : eval_gate(n.type, sp);
  }
  int out = 0;
  for (std::size_t k = 0; k < nl.outputs().size(); ++k) {
    if (vals[static_cast<std::size_t>(nl.outputs()[k])]) out |= 1 << k;
  }
  return out;
}

TEST(CarryLookaheadAdder, AddsExhaustively) {
  const int bits = 4;
  const Netlist nl = carry_lookahead_adder(bits);
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      for (int c = 0; c < 2; ++c) {
        const std::uint64_t assign =
            static_cast<std::uint64_t>(a) |
            (static_cast<std::uint64_t>(b) << bits) |
            (static_cast<std::uint64_t>(c) << (2 * bits));
        EXPECT_EQ(eval_outputs(nl, assign), a + b + c) << a << "+" << b;
      }
    }
  }
}

TEST(CarryLookaheadAdder, ShallowerThanRipple) {
  EXPECT_LT(carry_lookahead_adder(8).depth(), ripple_adder(8).depth());
}

TEST(BarrelShifter, RotatesExhaustively) {
  const int stages = 2; // 4-bit data, 2-bit amount
  const Netlist nl = barrel_shifter(stages);
  const int width = 1 << stages;
  for (int d = 0; d < (1 << width); ++d) {
    for (int s = 0; s < width; ++s) {
      const std::uint64_t assign =
          static_cast<std::uint64_t>(d) |
          (static_cast<std::uint64_t>(s) << width);
      const int expect = ((d << s) | (d >> (width - s))) & (width == 4 ? 0xF : (1 << width) - 1);
      EXPECT_EQ(eval_outputs(nl, assign), expect) << "d=" << d << " s=" << s;
    }
  }
}

TEST(PriorityEncoder, HighestRequestWins) {
  const int width = 5;
  const Netlist nl = priority_encoder(width);
  for (int r = 0; r < (1 << width); ++r) {
    const int out = eval_outputs(nl, static_cast<std::uint64_t>(r));
    const int grants = out & ((1 << width) - 1);
    const bool valid = (out >> width) & 1;
    if (r == 0) {
      EXPECT_EQ(grants, 0);
      EXPECT_FALSE(valid);
    } else {
      int top = width - 1;
      while (((r >> top) & 1) == 0) --top;
      EXPECT_EQ(grants, 1 << top) << "r=" << r;
      EXPECT_TRUE(valid);
    }
  }
}

TEST(GrayConverter, RoundTripsAndUnitDistance) {
  const int bits = 5;
  const Netlist nl = gray_converter(bits);
  int prev_gray = -1;
  for (int b = 0; b < (1 << bits); ++b) {
    const int out = eval_outputs(nl, static_cast<std::uint64_t>(b));
    const int gray = out & ((1 << bits) - 1);
    const int round = out >> bits;
    EXPECT_EQ(gray, b ^ (b >> 1));
    EXPECT_EQ(round, b) << "round trip";
    if (prev_gray >= 0) {
      EXPECT_EQ(std::popcount(static_cast<unsigned>(gray ^ prev_gray)), 1)
          << "consecutive codes differ in one bit";
    }
    prev_gray = gray;
  }
}

// Estimator exactness on each of the new circuit classes.
class NewGeneratorExactness
    : public ::testing::TestWithParam<std::pair<const char*, Netlist (*)()>> {};

Netlist make_cla() { return carry_lookahead_adder(3); }
Netlist make_barrel() { return barrel_shifter(2); }
Netlist make_prienc() { return priority_encoder(7); }
Netlist make_gray() { return gray_converter(6); }

TEST_P(NewGeneratorExactness, SingleBnMatchesEnumeration) {
  const Netlist nl = GetParam().second();
  ASSERT_LE(nl.num_inputs(), 10);
  const InputModel m = InputModel::uniform(nl.num_inputs(), 0.45, 0.15);
  LidagEstimator est(nl, m);
  const SwitchingEstimate sw = est.estimate(m);
  const auto exact = exact_activities(nl, m);
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    EXPECT_NEAR(sw.activity(id), exact[static_cast<std::size_t>(id)], 1e-9)
        << GetParam().first << " " << nl.node(id).name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Circuits, NewGeneratorExactness,
    ::testing::Values(std::make_pair("cla3", &make_cla),
                      std::make_pair("barrel4", &make_barrel),
                      std::make_pair("prienc7", &make_prienc),
                      std::make_pair("gray6", &make_gray)),
    [](const auto& info) { return std::string(info.param.first); });

} // namespace
} // namespace bns
