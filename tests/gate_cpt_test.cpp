#include <gtest/gtest.h>

#include "lidag/gate_cpt.h"
#include "sim/input_model.h"
#include "util/rng.h"

namespace bns {
namespace {

// Transition-state encoding helpers (state = 2*prev + cur).
int state_of(int prev, int cur) { return prev * 2 + cur; }

TEST(GateCpt, PaperOrGateExample) {
  // Section 4: P(X5 = x01 | X1 = x01, X2 = x00) = 1 for an OR gate.
  const VarId x1 = 0;
  const VarId x2 = 1;
  const VarId x5 = 2;
  const Factor cpt = transition_cpt(GateType::Or, std::vector<VarId>{x1, x2}, x5);
  ASSERT_EQ(cpt.vars(), (std::vector<VarId>{0, 1, 2}));
  // scope order x1, x2, x5; states: x1=01, x2=00 -> x5=01 certain.
  EXPECT_DOUBLE_EQ(cpt.at(std::vector<int>{T01, T00, T01}), 1.0);
  EXPECT_DOUBLE_EQ(cpt.at(std::vector<int>{T01, T00, T00}), 0.0);
  EXPECT_DOUBLE_EQ(cpt.at(std::vector<int>{T01, T00, T11}), 0.0);
  // Both inputs rise: output 0->1 ... both were 0 before, 1 after: x01.
  EXPECT_DOUBLE_EQ(cpt.at(std::vector<int>{T01, T01, T01}), 1.0);
  // One falls one rises: output stays 1: x11.
  EXPECT_DOUBLE_EQ(cpt.at(std::vector<int>{T10, T01, T11}), 1.0);
}

TEST(GateCpt, RowsAreDeterministicDistributions) {
  Rng rng(1);
  for (GateType t : {GateType::And, GateType::Nand, GateType::Or,
                     GateType::Nor, GateType::Xor, GateType::Xnor}) {
    for (int k = 1; k <= 3; ++k) {
      std::vector<VarId> in_vars;
      for (int i = 0; i < k; ++i) in_vars.push_back(i);
      const VarId out = k;
      const Factor cpt = transition_cpt(t, in_vars, out);
      // Summing out the output leaves exactly 1 per parent state, and
      // every entry is 0 or 1.
      const Factor ones = cpt.sum_out(out);
      for (std::size_t i = 0; i < ones.size(); ++i) {
        EXPECT_DOUBLE_EQ(ones.value(i), 1.0);
      }
      for (std::size_t i = 0; i < cpt.size(); ++i) {
        EXPECT_TRUE(cpt.value(i) == 0.0 || cpt.value(i) == 1.0);
      }
    }
  }
}

TEST(GateCpt, NotGateSwapsRiseAndFall) {
  const Factor cpt = transition_cpt(GateType::Not, std::vector<VarId>{0}, 1);
  EXPECT_DOUBLE_EQ(cpt.at(std::vector<int>{T01, T10}), 1.0);
  EXPECT_DOUBLE_EQ(cpt.at(std::vector<int>{T10, T01}), 1.0);
  EXPECT_DOUBLE_EQ(cpt.at(std::vector<int>{T00, T11}), 1.0);
  EXPECT_DOUBLE_EQ(cpt.at(std::vector<int>{T11, T00}), 1.0);
}

TEST(GateCpt, OutputVarMayHaveLowerIdThanInputs) {
  // Boundary roots can receive higher variable ids than the gate output;
  // the CPT must respect the sorted scope regardless.
  const Factor cpt = transition_cpt(GateType::And, std::vector<VarId>{5, 9}, 2);
  ASSERT_EQ(cpt.vars(), (std::vector<VarId>{2, 5, 9}));
  // inputs (5, 9) = (x11, x11) -> output x11; scope order is (2, 5, 9).
  EXPECT_DOUBLE_EQ(cpt.at(std::vector<int>{T11, T11, T11}), 1.0);
  EXPECT_DOUBLE_EQ(cpt.at(std::vector<int>{T00, T11, T11}), 0.0);
}

TEST(GateCpt, DuplicateFaninCollapsesScope) {
  // AND(a, a) = a: CPT over {a, out} only, out mirrors a.
  const Factor cpt = transition_cpt(GateType::And, std::vector<VarId>{3, 3}, 7);
  ASSERT_EQ(cpt.vars(), (std::vector<VarId>{3, 7}));
  for (int s = 0; s < 4; ++s) {
    for (int o = 0; o < 4; ++o) {
      EXPECT_DOUBLE_EQ(cpt.at(std::vector<int>{s, o}), s == o ? 1.0 : 0.0);
    }
  }
}

TEST(GateCpt, XorDuplicateIsConstantZero) {
  // XOR(a, a) = 0 regardless of a: output always x00.
  const Factor cpt = transition_cpt(GateType::Xor, std::vector<VarId>{1, 1}, 4);
  for (int s = 0; s < 4; ++s) {
    EXPECT_DOUBLE_EQ(cpt.at(std::vector<int>{s, T00}), 1.0);
  }
}

TEST(GateCpt, AgreesWithEnumerationForRandomLut) {
  Rng rng(3);
  TruthTable tt(3);
  for (std::uint64_t m = 0; m < 8; ++m) tt.set_value(m, rng.bernoulli(0.5));
  const std::vector<VarId> in_vars{0, 1, 2};
  const Factor cpt = transition_cpt(tt, in_vars, 3);
  // Check every parent assignment maps to the enumerated output pair.
  for (int s0 = 0; s0 < 4; ++s0) {
    for (int s1 = 0; s1 < 4; ++s1) {
      for (int s2 = 0; s2 < 4; ++s2) {
        const bool prev[3] = {(s0 >> 1) != 0, (s1 >> 1) != 0, (s2 >> 1) != 0};
        const bool cur[3] = {(s0 & 1) != 0, (s1 & 1) != 0, (s2 & 1) != 0};
        const int expect =
            state_of(tt.eval(prev) ? 1 : 0, tt.eval(cur) ? 1 : 0);
        for (int o = 0; o < 4; ++o) {
          EXPECT_DOUBLE_EQ(cpt.at(std::vector<int>{s0, s1, s2, o}),
                           o == expect ? 1.0 : 0.0);
        }
      }
    }
  }
}

TEST(GateCpt, TransitionPrior) {
  const Factor p = transition_prior(4, {0.1, 0.2, 0.3, 0.4});
  ASSERT_EQ(p.vars(), (std::vector<VarId>{4}));
  EXPECT_DOUBLE_EQ(p.value(0), 0.1);
  EXPECT_DOUBLE_EQ(p.value(3), 0.4);
}

TEST(GateCpt, NoisyCopyCptRowsNormalize) {
  const Factor cpt = noisy_copy_cpt(0, 1, 0.1);
  const Factor rows = cpt.sum_out(1);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_NEAR(rows.value(i), 1.0, 1e-12);
  }
  // No flips: identity transition.
  const Factor exact = noisy_copy_cpt(0, 1, 0.0);
  for (int s = 0; s < 4; ++s) {
    EXPECT_DOUBLE_EQ(exact.at(std::vector<int>{s, s}), 1.0);
  }
  // P(copy = source both steps) = (1-q)^2 on the diagonal.
  EXPECT_NEAR(cpt.at(std::vector<int>{T01, T01}), 0.81, 1e-12);
  // One step flipped: q(1-q).
  EXPECT_NEAR(cpt.at(std::vector<int>{T01, T00}), 0.09, 1e-12);
}

} // namespace
} // namespace bns
