// Tests for the Monte-Carlo (Burch–Najm style) and local-OBDD (tagged-
// simulation style) estimator families, plus the BN conditional-query
// capability.
#include <gtest/gtest.h>

#include "baselines/local_bdd.h"
#include "baselines/monte_carlo.h"
#include "gen/benchmarks.h"
#include "gen/circuits.h"
#include "gen/generators.h"
#include "lidag/estimator.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace bns {
namespace {

// --- Monte Carlo ------------------------------------------------------

TEST(MonteCarlo, ConvergesToExactWithinStatedConfidence) {
  const Netlist nl = c17();
  const InputModel m = InputModel::uniform(nl.num_inputs(), 0.4, 0.2);
  MonteCarloOptions opts;
  opts.abs_tol = 0.002;
  opts.rel_tol = 0.0;
  opts.seed = 9;
  const MonteCarloResult r = estimate_monte_carlo(nl, m, opts);
  ASSERT_TRUE(r.converged);
  const auto exact = exact_activities(nl, m);
  int outside = 0;
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const double err = std::abs(activity_of(r.dist[static_cast<std::size_t>(id)]) -
                                exact[static_cast<std::size_t>(id)]);
    // 99% CI: allow a single line to fall slightly outside.
    if (err > r.half_width[static_cast<std::size_t>(id)]) ++outside;
  }
  EXPECT_LE(outside, 1);
}

TEST(MonteCarlo, TighterToleranceUsesMoreSamples) {
  const Netlist nl = make_benchmark("comp");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  MonteCarloOptions loose;
  loose.abs_tol = 0.02;
  loose.rel_tol = 0.0;
  MonteCarloOptions tight = loose;
  tight.abs_tol = 0.004;
  const MonteCarloResult rl = estimate_monte_carlo(nl, m, loose);
  const MonteCarloResult rt = estimate_monte_carlo(nl, m, tight);
  ASSERT_TRUE(rl.converged);
  ASSERT_TRUE(rt.converged);
  EXPECT_GT(rt.pairs_used, rl.pairs_used);
}

TEST(MonteCarlo, RespectsSampleBudget) {
  const Netlist nl = make_benchmark("comp");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  MonteCarloOptions opts;
  opts.abs_tol = 1e-6; // unreachable
  opts.rel_tol = 0.0;
  opts.batch_pairs = 1 << 14;
  opts.max_pairs = 1 << 16;
  const MonteCarloResult r = estimate_monte_carlo(nl, m, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_LE(r.pairs_used, (1u << 16) + (1u << 14) + 64);
}

// --- local BDD ---------------------------------------------------------

TEST(LocalBdd, ExactWhenRegionCoversTheCircuit) {
  const Netlist nl = c17(); // depth 3
  const InputModel m = InputModel::uniform(nl.num_inputs(), 0.35, 0.3);
  LocalBddOptions opts;
  opts.levels = 8; // > depth: regions reach the PIs everywhere
  const LocalBddResult r = estimate_local_bdd(nl, m, opts);
  const auto exact = exact_transition_dists(nl, m);
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    for (int s = 0; s < 4; ++s) {
      EXPECT_NEAR(r.dist[static_cast<std::size_t>(id)][static_cast<std::size_t>(s)],
                  exact[static_cast<std::size_t>(id)][static_cast<std::size_t>(s)],
                  1e-10);
    }
  }
}

TEST(LocalBdd, DepthZeroEqualsIndependenceAssumption) {
  // levels = 0: the direct fanins are independent sources, so the
  // classic witness y = AND(a, NOT a) regains spurious activity.
  Netlist nl("glitch");
  const NodeId a = nl.add_input("a");
  const NodeId na = nl.add_gate(GateType::Not, "na", {a});
  const NodeId y = nl.add_gate(GateType::And, "y", {a, na});
  nl.mark_output(y);
  const InputModel m = InputModel::uniform(1);
  LocalBddOptions shallow;
  shallow.levels = 0;
  const LocalBddResult r0 = estimate_local_bdd(nl, m, shallow);
  EXPECT_NEAR(activity_of(r0.dist[static_cast<std::size_t>(y)]), 0.375, 1e-10);
  LocalBddOptions deep;
  deep.levels = 2;
  const LocalBddResult r2 = estimate_local_bdd(nl, m, deep);
  EXPECT_NEAR(activity_of(r2.dist[static_cast<std::size_t>(y)]), 0.0, 1e-10);
}

TEST(LocalBdd, AccuracyImprovesWithDepth) {
  const Netlist nl = make_benchmark("c1355");
  const InputModel m = InputModel::uniform(nl.num_inputs());
  const SimResult sim = SwitchingSimulator(nl).run(m, 1 << 20, 3);
  double prev_err = 1e9;
  for (int lv : {0, 2, 5}) {
    LocalBddOptions opts;
    opts.levels = lv;
    const LocalBddResult r = estimate_local_bdd(nl, m, opts);
    const ErrorStats err = compute_error_stats(r.activities(), sim.activities());
    EXPECT_LE(err.mu_err, prev_err + 1e-4) << "levels=" << lv;
    prev_err = err.mu_err;
  }
  EXPECT_LT(prev_err, 0.02);
}

TEST(LocalBdd, HandlesWideFaninAndLuts) {
  Netlist nl("mix");
  std::vector<NodeId> ins;
  for (int i = 0; i < 9; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
  const NodeId wide = nl.add_gate(GateType::Nand, "wide", ins);
  TruthTable tt(2);
  tt.set_value(2, true); // !a & b
  nl.mark_output(nl.add_lut("y", {wide, ins[0]}, tt));
  const InputModel m = InputModel::uniform(9, 0.6, 0.0);
  const LocalBddResult r = estimate_local_bdd(nl, m);
  const auto exact = exact_transition_dists(nl, m);
  EXPECT_NEAR(activity_of(r.dist[static_cast<std::size_t>(wide)]),
              activity_of(exact[static_cast<std::size_t>(wide)]), 1e-10);
}

// --- BN conditional queries ---------------------------------------------

TEST(ConditionalQuery, MatchesEnumeratedPosterior) {
  const Netlist nl = figure1_circuit();
  const InputModel m = InputModel::uniform(nl.num_inputs(), 0.5, 0.0);
  LidagEstimator est(nl, m);

  const NodeId x9 = nl.find("9");
  const NodeId x5 = nl.find("5");
  const auto cond = est.conditional_dist(x9, x5, T01, m);
  ASSERT_TRUE(cond.has_value());

  // Reference: exhaustive joint over the 4^4 input pairs.
  Netlist copy = figure1_circuit();
  const auto joint = [&] {
    // P(x9 = s, x5 = T01) by enumeration.
    std::array<double, 4> num{};
    double den = 0.0;
    const int n = copy.num_inputs();
    std::vector<bool> va(static_cast<std::size_t>(copy.num_nodes()));
    std::vector<bool> vb(static_cast<std::size_t>(copy.num_nodes()));
    auto eval = [&](std::uint64_t assign, std::vector<bool>& vals) {
      for (int i = 0; i < n; ++i) {
        vals[static_cast<std::size_t>(copy.inputs()[static_cast<std::size_t>(i)])] =
            (assign >> i) & 1;
      }
      for (NodeId id = 0; id < copy.num_nodes(); ++id) {
        const Node& nd = copy.node(id);
        if (nd.type == GateType::Input) continue;
        bool in[4];
        for (std::size_t k = 0; k < nd.fanin.size(); ++k) {
          in[k] = vals[static_cast<std::size_t>(nd.fanin[k])];
        }
        vals[static_cast<std::size_t>(id)] =
            eval_gate(nd.type, std::span<const bool>(in, nd.fanin.size()));
      }
    };
    const double w = 1.0 / (16.0 * 16.0); // all pairs equally likely
    for (std::uint64_t a = 0; a < 16; ++a) {
      eval(a, va);
      for (std::uint64_t b = 0; b < 16; ++b) {
        eval(b, vb);
        const int s5 = (va[static_cast<std::size_t>(x5)] ? 2 : 0) +
                       (vb[static_cast<std::size_t>(x5)] ? 1 : 0);
        if (s5 != T01) continue;
        const int s9 = (va[static_cast<std::size_t>(x9)] ? 2 : 0) +
                       (vb[static_cast<std::size_t>(x9)] ? 1 : 0);
        num[static_cast<std::size_t>(s9)] += w;
        den += w;
      }
    }
    std::array<double, 4> out{};
    for (int s = 0; s < 4; ++s) out[static_cast<std::size_t>(s)] = num[static_cast<std::size_t>(s)] / den;
    return out;
  }();

  for (int s = 0; s < 4; ++s) {
    EXPECT_NEAR((*cond)[static_cast<std::size_t>(s)],
                joint[static_cast<std::size_t>(s)], 1e-10)
        << "state " << s;
  }
}

TEST(ConditionalQuery, UnconditionalResultsUnchangedAfterQuery) {
  const Netlist nl = c17();
  const InputModel m = InputModel::uniform(nl.num_inputs());
  LidagEstimator est(nl, m);
  const SwitchingEstimate before = est.estimate(m);
  (void)est.conditional_dist(nl.find("22"), nl.find("10"), T11, m);
  const SwitchingEstimate after = est.estimate(m);
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    EXPECT_DOUBLE_EQ(before.activity(id), after.activity(id));
  }
}

TEST(ConditionalQuery, ImpossibleEvidenceReturnsNullopt) {
  // Line "one" is constant 1: observing transition x00 has prob 0.
  Netlist nl("const");
  const NodeId one = nl.add_const("one", true);
  const NodeId a = nl.add_input("a");
  const NodeId y = nl.add_gate(GateType::And, "y", {one, a});
  nl.mark_output(y);
  const InputModel m = InputModel::uniform(1);
  LidagEstimator est(nl, m);
  EXPECT_FALSE(est.conditional_dist(y, one, T00, m).has_value());
}

} // namespace
} // namespace bns
