#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

namespace bns {
namespace {

// --- Rng -------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    s.add(u);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Rng rng(3);
  int counts[7] = {};
  for (int i = 0; i < 70000; ++i) ++counts[rng.below(7)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(13);
  const double w[3] = {1.0, 2.0, 7.0};
  int counts[3] = {};
  for (int i = 0; i < 100000; ++i) ++counts[rng.weighted(w, 3)];
  EXPECT_NEAR(counts[0] / 100000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 100000.0, 0.2, 0.01);
  EXPECT_NEAR(counts[2] / 100000.0, 0.7, 0.01);
}

TEST(Rng, WeightedZeroWeightNeverDrawn) {
  Rng rng(17);
  const double w[3] = {1.0, 0.0, 1.0};
  for (int i = 0; i < 10000; ++i) EXPECT_NE(rng.weighted(w, 3), 1);
}

// --- RunningStats ------------------------------------------------------

TEST(RunningStats, MatchesDirectComputation) {
  const double xs[] = {1.5, -2.0, 0.0, 4.25, 3.0, -1.0};
  RunningStats s;
  double sum = 0.0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / 6.0;
  double m2 = 0.0;
  for (double x : xs) m2 += (x - mean) * (x - mean);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), m2 / 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.25);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
  EXPECT_EQ(s.count(), 6u);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(19);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10 - 5;
    all.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(ErrorStats, MatchesPaperDefinition) {
  const double est[] = {0.5, 0.3, 0.1};
  const double ref[] = {0.4, 0.3, 0.3};
  const ErrorStats e = compute_error_stats(est, ref);
  // |errors| = {0.1, 0.0, 0.2}
  EXPECT_NEAR(e.mu_err, 0.1, 1e-12);
  EXPECT_NEAR(e.max_err, 0.2, 1e-12);
  // mean(est) = 0.3, mean(ref) = 1/3 -> pct = |0.3 - 1/3|/(1/3)*100 = 10
  EXPECT_NEAR(e.pct_err, 10.0, 1e-9);
  EXPECT_EQ(e.n, 3u);
}

TEST(ErrorStats, ZeroReferenceMeanGivesZeroPct) {
  const double est[] = {0.1};
  const double ref[] = {0.0};
  EXPECT_DOUBLE_EQ(compute_error_stats(est, ref).pct_err, 0.0);
}

// --- strings -----------------------------------------------------------

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, Split) {
  const auto parts = split("a, b ,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWs) {
  const auto parts = split_ws("  one\ttwo   three ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "one");
  EXPECT_EQ(parts[2], "three");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, IEquals) {
  EXPECT_TRUE(iequals("NaNd", "nAnD"));
  EXPECT_FALSE(iequals("nand", "nands"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(Strings, Format) {
  EXPECT_EQ(strformat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strformat("%.2f", 1.0 / 3.0), "0.33");
}

// --- Table -------------------------------------------------------------

TEST(Table, AlignedRendering) {
  Table t({"name", "v"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
}

// --- Timer -------------------------------------------------------------

TEST(Timer, MonotoneAndRestartable) {
  Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(b, a);
  t.restart();
  EXPECT_LT(t.seconds(), 1.0);
}

} // namespace
} // namespace bns
