#include <gtest/gtest.h>

#include <cmath>

#include "bn/factor.h"
#include "util/rng.h"

namespace bns {
namespace {

Factor random_factor(std::vector<VarId> vars, std::vector<int> cards,
                     Rng& rng) {
  Factor f(std::move(vars), std::move(cards));
  for (std::size_t i = 0; i < f.size(); ++i) {
    f.set_value(i, rng.uniform() + 0.01);
  }
  return f;
}

TEST(Factor, ScalarIdentity) {
  const Factor one;
  EXPECT_EQ(one.arity(), 0);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one.value(0), 1.0);

  Rng rng(1);
  const Factor f = random_factor({0, 2}, {3, 2}, rng);
  const Factor g = f.product(one);
  EXPECT_EQ(g.vars(), f.vars());
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_DOUBLE_EQ(g.value(i), f.value(i));
  }
}

TEST(Factor, IndexingRoundTrip) {
  Factor f({1, 4, 7}, {2, 3, 4});
  EXPECT_EQ(f.size(), 24u);
  std::vector<int> st(3);
  for (std::size_t idx = 0; idx < f.size(); ++idx) {
    f.states_of(idx, st);
    EXPECT_EQ(f.index_of(st), idx);
  }
  // First variable varies fastest.
  EXPECT_EQ(f.index_of(std::vector<int>{1, 0, 0}), 1u);
  EXPECT_EQ(f.index_of(std::vector<int>{0, 1, 0}), 2u);
  EXPECT_EQ(f.index_of(std::vector<int>{0, 0, 1}), 6u);
}

TEST(Factor, AtAccessors) {
  Factor f({3, 5}, {2, 2});
  f.at(std::vector<int>{1, 0}) = 7.0;
  EXPECT_DOUBLE_EQ(f.at(std::vector<int>{1, 0}), 7.0);
  EXPECT_DOUBLE_EQ(f.value(1), 7.0);
  EXPECT_TRUE(f.contains(3));
  EXPECT_FALSE(f.contains(4));
  EXPECT_EQ(f.card_of(5), 2);
}

TEST(Factor, ProductMatchesManualComputation) {
  // f(a, b) * g(b, c) over binary vars.
  Factor f({0, 1}, {2, 2});
  Factor g({1, 2}, {2, 2});
  for (std::size_t i = 0; i < 4; ++i) {
    f.set_value(i, static_cast<double>(i + 1));        // 1..4
    g.set_value(i, static_cast<double>(10 * (i + 1))); // 10..40
  }
  const Factor p = f.product(g);
  ASSERT_EQ(p.vars(), (std::vector<VarId>{0, 1, 2}));
  std::vector<int> st(3);
  for (std::size_t idx = 0; idx < p.size(); ++idx) {
    p.states_of(idx, st);
    const double fv = f.at(std::vector<int>{st[0], st[1]});
    const double gv = g.at(std::vector<int>{st[1], st[2]});
    EXPECT_DOUBLE_EQ(p.value(idx), fv * gv);
  }
}

TEST(Factor, ProductIsCommutative) {
  Rng rng(2);
  const Factor f = random_factor({0, 3}, {2, 4}, rng);
  const Factor g = random_factor({1, 3}, {3, 4}, rng);
  const Factor fg = f.product(g);
  const Factor gf = g.product(f);
  ASSERT_EQ(fg.vars(), gf.vars());
  EXPECT_NEAR(fg.max_abs_diff(gf), 0.0, 1e-15);
}

TEST(Factor, ProductSumDecomposes) {
  // sum(f*g) = sum_b [ sum_a f(a,b) * sum_c g(b,c) ] — check via marginals.
  Rng rng(3);
  const Factor f = random_factor({0, 1}, {3, 2}, rng);
  const Factor g = random_factor({1, 2}, {2, 5}, rng);
  const Factor p = f.product(g);
  const VarId b = 1;
  const Factor fb = f.marginal(std::span<const VarId>(&b, 1));
  const Factor gb = g.marginal(std::span<const VarId>(&b, 1));
  double expect = 0.0;
  for (int s = 0; s < 2; ++s) expect += fb.value(static_cast<std::size_t>(s)) * gb.value(static_cast<std::size_t>(s));
  EXPECT_NEAR(p.sum(), expect, 1e-12);
}

TEST(Factor, MultiplyInMatchesProduct) {
  Rng rng(4);
  Factor f = random_factor({0, 1, 2}, {2, 3, 2}, rng);
  const Factor g = random_factor({1}, {3}, rng);
  const Factor expect = f.product(g);
  f.multiply_in(g);
  EXPECT_EQ(f.vars(), expect.vars());
  EXPECT_NEAR(f.max_abs_diff(expect), 0.0, 1e-15);
}

TEST(Factor, DivideUndoesMultiply) {
  Rng rng(5);
  Factor f = random_factor({0, 1}, {4, 4}, rng);
  const Factor orig = f;
  const Factor g = random_factor({1}, {4}, rng);
  f.multiply_in(g);
  f.divide_in(g);
  EXPECT_NEAR(f.max_abs_diff(orig), 0.0, 1e-12);
}

TEST(Factor, DivideZeroByZeroIsZero) {
  Factor f({0}, {2});
  Factor g({0}, {2});
  f.set_value(0, 0.0);
  f.set_value(1, 3.0);
  g.set_value(0, 0.0);
  g.set_value(1, 1.5);
  f.divide_in(g);
  EXPECT_DOUBLE_EQ(f.value(0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(1), 2.0);
}

TEST(Factor, MarginalPreservesTotalMass) {
  Rng rng(6);
  const Factor f = random_factor({0, 1, 2, 3}, {2, 3, 2, 2}, rng);
  const std::vector<VarId> keep{1, 3};
  const Factor m = f.marginal(keep);
  EXPECT_EQ(m.vars(), keep);
  EXPECT_NEAR(m.sum(), f.sum(), 1e-12);
}

TEST(Factor, MarginalOrderIrrelevant) {
  Rng rng(7);
  const Factor f = random_factor({0, 1, 2}, {3, 2, 4}, rng);
  // Sum out 0 then 2 == sum out 2 then 0 == marginal to {1}.
  const Factor a = f.sum_out(0).sum_out(2);
  const Factor b = f.sum_out(2).sum_out(0);
  const VarId keep = 1;
  const Factor c = f.marginal(std::span<const VarId>(&keep, 1));
  EXPECT_NEAR(a.max_abs_diff(b), 0.0, 1e-12);
  EXPECT_NEAR(a.max_abs_diff(c), 0.0, 1e-12);
}

TEST(Factor, MarginalToEmptyScopeIsSum) {
  Rng rng(8);
  const Factor f = random_factor({0, 1}, {2, 2}, rng);
  const Factor s = f.marginal({});
  EXPECT_EQ(s.arity(), 0);
  EXPECT_NEAR(s.value(0), f.sum(), 1e-12);
}

TEST(Factor, ReduceZeroesInconsistentEntries) {
  Rng rng(9);
  Factor f = random_factor({0, 1}, {3, 2}, rng);
  const Factor orig = f;
  f.reduce(0, 2);
  std::vector<int> st(2);
  for (std::size_t idx = 0; idx < f.size(); ++idx) {
    f.states_of(idx, st);
    if (st[0] == 2) {
      EXPECT_DOUBLE_EQ(f.value(idx), orig.value(idx));
    } else {
      EXPECT_DOUBLE_EQ(f.value(idx), 0.0);
    }
  }
}

TEST(Factor, NormalizeSumsToOne) {
  Rng rng(10);
  Factor f = random_factor({0, 1}, {4, 4}, rng);
  f.normalize();
  EXPECT_NEAR(f.sum(), 1.0, 1e-12);
}

TEST(Factor, UniformFactor) {
  const Factor u = Factor::uniform({0, 1}, {2, 4});
  EXPECT_NEAR(u.sum(), 1.0, 1e-12);
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_DOUBLE_EQ(u.value(i), 1.0 / 8.0);
  }
}

TEST(Factor, StridesInSubsetAndSuperset) {
  const Factor f({2, 5, 9}, {2, 3, 4});
  const VarId scope[] = {2, 5, 9};
  const auto s = strides_in(f, scope);
  EXPECT_EQ(s, (std::vector<std::size_t>{1, 2, 6}));
  const VarId partial[] = {5, 7};
  const auto p = strides_in(f, partial);
  EXPECT_EQ(p, (std::vector<std::size_t>{2, 0})); // 7 absent -> stride 0
}

// Property sweep: random factor algebra identities at several shapes.
class FactorProperty : public ::testing::TestWithParam<int> {};

TEST_P(FactorProperty, ProductAssociative) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Factor a = random_factor({0, 1}, {2, 3}, rng);
  const Factor b = random_factor({1, 2}, {3, 2}, rng);
  const Factor c = random_factor({0, 2}, {2, 2}, rng);
  const Factor left = a.product(b).product(c);
  const Factor right = a.product(b.product(c));
  ASSERT_EQ(left.vars(), right.vars());
  EXPECT_NEAR(left.max_abs_diff(right), 0.0, 1e-12);
}

TEST_P(FactorProperty, MarginalCommutesWithProductOnDisjointVar) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const Factor a = random_factor({0, 1}, {2, 4}, rng);
  const Factor b = random_factor({2, 3}, {3, 2}, rng);
  // Var 3 only occurs in b: (a*b) summed over 3 == a * (b summed over 3).
  const Factor lhs = a.product(b).sum_out(3);
  const Factor rhs = a.product(b.sum_out(3));
  ASSERT_EQ(lhs.vars(), rhs.vars());
  EXPECT_NEAR(lhs.max_abs_diff(rhs), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FactorProperty, ::testing::Range(1, 11));

} // namespace
} // namespace bns
