// Randomized cross-engine property sweeps: for random small circuits
// and random input statistics, all exact engines must agree, and the
// approximate ones must degrade in the documented directions.
#include <gtest/gtest.h>

#include "baselines/correlation.h"
#include "baselines/independence.h"
#include "bdd/bdd_estimator.h"
#include "gen/generators.h"
#include "lidag/estimator.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"

namespace bns {
namespace {

Netlist random_small(std::uint64_t seed, int inputs, int gates) {
  RandomCircuitSpec spec;
  spec.num_inputs = inputs;
  spec.num_outputs = std::max(1, inputs / 2);
  spec.num_gates = gates;
  spec.depth = std::max(3, gates / 6);
  spec.seed = seed;
  return random_circuit(spec, "rnd" + std::to_string(seed));
}

InputModel random_model(std::uint64_t seed, int inputs) {
  Rng rng(seed * 7919 + 13);
  std::vector<InputSpec> specs;
  for (int i = 0; i < inputs; ++i) {
    const double p = 0.15 + 0.7 * rng.uniform();
    const double lo = rho_min(p);
    const double rho = lo + (0.9 - lo) * rng.uniform();
    specs.push_back({p, rho, -1, 0.0});
  }
  return InputModel::custom(std::move(specs));
}

class RandomCircuitSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomCircuitSweep, ExactEnginesAgree) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const int inputs = 4 + GetParam() % 4; // 4..7
  const Netlist nl = random_small(seed, inputs, 24);
  const InputModel m = random_model(seed, inputs);

  // Three independent exact computations of every line's distribution.
  const auto enumerated = exact_transition_dists(nl, m);
  const BddSwitchingResult bdd = estimate_bdd_exact(nl, m);
  ASSERT_TRUE(bdd.completed);
  EstimatorOptions opts;
  opts.max_segment_states = 3.2e7; // room for unlucky treewidths
  LidagEstimator est(nl, m, opts);
  ASSERT_TRUE(est.single_bn()); // small circuits must stay exact
  const SwitchingEstimate bn = est.estimate(m);

  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    for (int s = 0; s < 4; ++s) {
      const double ref =
          enumerated[static_cast<std::size_t>(id)][static_cast<std::size_t>(s)];
      EXPECT_NEAR(bdd.dist[static_cast<std::size_t>(id)][static_cast<std::size_t>(s)],
                  ref, 1e-9)
          << "bdd node " << id;
      EXPECT_NEAR(bn.dist[static_cast<std::size_t>(id)][static_cast<std::size_t>(s)],
                  ref, 1e-9)
          << "bn node " << id;
    }
  }
}

TEST_P(RandomCircuitSweep, SegmentedBnBeatsIndependenceOnAverage) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const int inputs = 6;
  const Netlist nl = random_small(seed + 100, inputs, 48);
  const InputModel m = random_model(seed + 100, inputs);
  const auto ref = exact_activities(nl, m);

  EstimatorOptions opts;
  opts.single_bn_nodes = 0;
  opts.segment_nodes = 12; // force aggressive segmentation
  LidagEstimator est(nl, m, opts);
  EXPECT_GT(est.num_segments(), 1);
  const ErrorStats bn = compute_error_stats(est.estimate(m).activities(), ref);
  const ErrorStats indep =
      compute_error_stats(estimate_independence(nl, m).activities(), ref);
  // Segmented BN must never be (meaningfully) worse than dropping all
  // spatial correlation.
  EXPECT_LE(bn.mu_err, indep.mu_err + 1e-6) << "seed " << seed;
}

TEST_P(RandomCircuitSweep, DistributionsWellFormedEverywhere) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const Netlist nl = random_small(seed + 200, 8, 80);
  const InputModel m = random_model(seed + 200, 8);
  EstimatorOptions opts;
  opts.single_bn_nodes = 0;
  opts.segment_nodes = 20;
  LidagEstimator est(nl, m, opts);
  const SwitchingEstimate sw = est.estimate(m);
  const CorrelationResult pc = estimate_correlation(nl, m);
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    for (const auto* dists : {&sw.dist, &pc.dist}) {
      const auto& d = (*dists)[static_cast<std::size_t>(id)];
      double sum = 0.0;
      for (double v : d) {
        EXPECT_GE(v, -1e-9);
        sum += v;
      }
      EXPECT_NEAR(sum, 1.0, 1e-6);
      // Stationarity survives inference: P(01) == P(10).
      EXPECT_NEAR(d[T01], d[T10], 1e-6) << "node " << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitSweep, ::testing::Range(1, 15));

} // namespace
} // namespace bns
