// Shared helpers for the test suite.
#pragma once

#include <vector>

#include "bn/bayes_net.h"
#include "util/rng.h"

namespace bns::testing_helpers {

// Random discrete BN: `n` variables in topological id order, each with
// up to `max_parents` parents drawn from earlier variables and a random
// strictly-positive CPT. Cardinalities in [2, max_card].
inline BayesianNetwork random_bayes_net(int n, int max_parents, int max_card,
                                        std::uint64_t seed) {
  Rng rng(seed);
  BayesianNetwork bn;
  for (VarId v = 0; v < n; ++v) {
    bn.add_variable("v" + std::to_string(v),
                    2 + static_cast<int>(rng.below(static_cast<std::uint64_t>(max_card - 1))));
  }
  for (VarId v = 0; v < n; ++v) {
    std::vector<VarId> parents;
    const int k = v == 0 ? 0
                         : static_cast<int>(rng.below(
                               static_cast<std::uint64_t>(
                                   std::min(max_parents, static_cast<int>(v)) + 1)));
    while (static_cast<int>(parents.size()) < k) {
      const VarId p = static_cast<VarId>(rng.below(static_cast<std::uint64_t>(v)));
      bool dup = false;
      for (VarId q : parents) dup |= q == p;
      if (!dup) parents.push_back(p);
    }
    std::vector<VarId> scope = parents;
    scope.push_back(v);
    std::sort(scope.begin(), scope.end());
    std::vector<int> cards;
    for (VarId u : scope) cards.push_back(bn.cardinality(u));
    Factor cpt(scope, cards);
    for (std::size_t i = 0; i < cpt.size(); ++i) {
      cpt.set_value(i, rng.uniform() + 0.05);
    }
    // Normalize each column over v.
    Factor denom = cpt.sum_out(v);
    // Divide columns: expand denom back over the scope.
    std::vector<int> st(scope.size());
    for (std::size_t i = 0; i < cpt.size(); ++i) {
      cpt.states_of(i, st);
      std::vector<int> pst;
      for (std::size_t kk = 0; kk < scope.size(); ++kk) {
        if (scope[kk] != v) pst.push_back(st[kk]);
      }
      cpt.set_value(i, cpt.value(i) / denom.at(pst));
    }
    bn.set_cpt(v, parents, std::move(cpt));
  }
  return bn;
}

} // namespace bns::testing_helpers
