// End-to-end tests of the bench_update_time command line: strict option
// validation (malformed values exit 2 with usage) and a quick tracing
// smoke run whose artifacts must carry the documented schemas.
//
// The binary path is injected by CMake as BNS_BENCH_UPDATE_BINARY. Runs
// use popen() so the exit status is observable via pclose/WEXITSTATUS.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace bns {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run_bench(const std::string& args) {
  const std::string cmd =
      std::string(BNS_BENCH_UPDATE_BINARY) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  RunResult res;
  if (pipe == nullptr) return res;
  char buf[4096];
  std::size_t n = 0;
  while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) {
    res.output.append(buf, n);
  }
  const int status = pclose(pipe);
  res.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return res;
}

std::string tmp_path(const std::string& suffix) {
  return "/tmp/bns_bench_cli_" + std::to_string(getpid()) + suffix;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(BenchCliTest, MissingThreadsValueExits2) {
  const RunResult r = run_bench("c17 --threads");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("usage"), std::string::npos) << r.output;
}

TEST(BenchCliTest, NonNumericThreadsExits2) {
  const RunResult r = run_bench("c17 --threads 1,abc");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("usage"), std::string::npos) << r.output;
}

TEST(BenchCliTest, ZeroThreadsExits2) {
  const RunResult r = run_bench("c17 --threads 0");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(BenchCliTest, NegativeThreadsExits2) {
  const RunResult r = run_bench("c17 --threads -2");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(BenchCliTest, MissingJsonValueExits2) {
  const RunResult r = run_bench("c17 --json");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(BenchCliTest, MissingTraceJsonValueExits2) {
  const RunResult r = run_bench("c17 --trace-json");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(BenchCliTest, UnknownFlagExits2) {
  const RunResult r = run_bench("c17 --frobnicate");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("usage"), std::string::npos) << r.output;
}

TEST(BenchCliTest, TracedRunEmitsSchemas) {
  const std::string json = tmp_path(".json");
  const std::string trace = tmp_path(".jsonl");
  const RunResult r = run_bench("c17 --threads 1 --json " + json +
                                " --trace-json " + trace +
                                " --trace-summary");
  ASSERT_EQ(r.exit_code, 0) << r.output;

  // Results document: schema_version 3 with provenance and a stats
  // sub-object.
  const std::string doc = slurp(json);
  EXPECT_NE(doc.find("\"schema_version\": 3"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"bench\": \"bench_update_time\""), std::string::npos);
  EXPECT_NE(doc.find("\"provenance\": {"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"git_describe\""), std::string::npos);
  EXPECT_NE(doc.find("\"build_type\""), std::string::npos);
  EXPECT_NE(doc.find("\"timestamp\""), std::string::npos);
  EXPECT_NE(doc.find("\"hostname\""), std::string::npos);
  EXPECT_NE(doc.find("\"circuit\": \"c17\""), std::string::npos);
  EXPECT_NE(doc.find("\"stats\": {"), std::string::npos);
  EXPECT_NE(doc.find("\"compile_seconds\""), std::string::npos);
  EXPECT_NE(doc.find("\"messages_passed\""), std::string::npos);
  EXPECT_NE(doc.find("\"threads_used\": 1"), std::string::npos);

  // Trace stream: every line versioned, pipeline stages present.
  const std::string lines = slurp(trace);
  ASSERT_FALSE(lines.empty());
  std::istringstream in(lines);
  std::string line;
  int total = 0;
  int versioned = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++total;
    if (line.find("\"schema_version\": 1") != std::string::npos) ++versioned;
  }
  EXPECT_EQ(total, versioned) << "every trace line must be versioned";
  for (const char* stage :
       {"\"name\": \"parse\"", "\"name\": \"lidag\"",
        "\"name\": \"triangulate\"", "\"name\": \"schedule\"",
        "\"name\": \"load\"", "\"name\": \"propagate\""}) {
    EXPECT_NE(lines.find(stage), std::string::npos) << stage;
  }
  EXPECT_NE(lines.find("\"type\": \"counter\""), std::string::npos);
  EXPECT_NE(lines.find("\"name\": \"messages_passed\""), std::string::npos);

  // Summary table went to stderr (merged into output here).
  EXPECT_NE(r.output.find("propagate"), std::string::npos) << r.output;

  std::remove(json.c_str());
  std::remove(trace.c_str());
}

TEST(BenchCliTest, PlainRunStillWorks) {
  const RunResult r = run_bench("c17");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("Update-time study"), std::string::npos);
}

} // namespace
} // namespace bns
