// Run-report tests: JSON round-trip through the obs parser, the
// numerical-health probes on seeded zero/near-underflow fixtures, the
// accuracy auditor against Monte Carlo ground truth on c17, and the
// back-to-back reset identity the multi-run processes rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "bn/bayes_net.h"
#include "bn/junction_tree.h"
#include "core/accuracy.h"
#include "core/analyzer.h"
#include "gen/benchmarks.h"
#include "obs/obs.h"

namespace bns {
namespace {

using obs::Counter;
using obs::Hist;
using obs::TraceLevel;
using obs::Tracer;

obs::RunReport sample_report() {
  obs::RunReport r;
  r.provenance.circuit = "c432";
  r.provenance.git_describe = "v1.2.3-4-gabc";
  r.provenance.build_type = "Release";
  r.provenance.timestamp_iso8601 = "2026-08-05T00:00:00Z";
  r.provenance.hostname = "host\"with quotes";
  r.provenance.threads = 4;
  r.compile.compile_seconds = 1.25;
  r.compile.schedule_build_seconds = 0.125;
  r.compile.num_segments = 3;
  r.compile.total_state_space = 65536.0;
  r.compile.max_clique_vars = 12;
  r.compile.total_bn_variables = 321;
  r.compile.fill_edges = 77;
  r.estimate.propagate_seconds = 0.004;
  r.estimate.reload_seconds = 0.001;
  r.estimate.messages_passed = 1234;
  r.estimate.threads_used = 4;
  r.estimate.average_activity = 0.42;
  r.counters.push_back({"messages_passed", 1234, false});
  r.counters.push_back({"max_clique_states", 4096, true});
  obs::ReportHistogram h;
  h.name = "propagate_ns";
  h.edges = {1e3, 1e6};
  h.counts = {1, 2, 3};
  h.total = 6;
  r.histograms.push_back(h);
  r.accuracy.sim_pairs = 1 << 18;
  r.accuracy.seed = 7;
  r.accuracy.lines = 196;
  r.accuracy.mean_abs_error = 0.0012;
  r.accuracy.max_abs_error = 0.01;
  r.accuracy.rms_error = 0.002;
  r.accuracy.error_hist = h;
  r.accuracy.error_hist.name = "line_abs_error";
  r.accuracy.worst.push_back({"G199", 0.5, 0.49, 0.01});
  r.accuracy.per_segment.push_back({-1, 2, 0.0005, 0.001});
  r.accuracy.per_segment.push_back({0, 100, 0.001, 0.008});
  r.accuracy.per_segment.push_back({2, 94, 0.0014, 0.01});
  return r;
}

TEST(ReportTest, JsonRoundTrip) {
  const obs::RunReport orig = sample_report();
  const std::string json = orig.to_json();
  const std::optional<obs::RunReport> back = obs::RunReport::from_json(json);
  ASSERT_TRUE(back.has_value());

  EXPECT_EQ(back->schema_version, obs::kReportSchemaVersion);
  EXPECT_EQ(back->provenance.circuit, orig.provenance.circuit);
  EXPECT_EQ(back->provenance.git_describe, orig.provenance.git_describe);
  EXPECT_EQ(back->provenance.hostname, orig.provenance.hostname);
  EXPECT_EQ(back->provenance.threads, orig.provenance.threads);
  EXPECT_DOUBLE_EQ(back->compile.compile_seconds,
                   orig.compile.compile_seconds);
  EXPECT_EQ(back->compile.num_segments, orig.compile.num_segments);
  EXPECT_EQ(back->compile.fill_edges, orig.compile.fill_edges);
  EXPECT_DOUBLE_EQ(back->estimate.propagate_seconds,
                   orig.estimate.propagate_seconds);
  EXPECT_EQ(back->estimate.messages_passed, orig.estimate.messages_passed);
  EXPECT_DOUBLE_EQ(back->estimate.average_activity,
                   orig.estimate.average_activity);

  ASSERT_EQ(back->counters.size(), 2u);
  EXPECT_EQ(back->counters[1].name, "max_clique_states");
  EXPECT_TRUE(back->counters[1].gauge);
  EXPECT_EQ(back->counter_or("messages_passed", 0), 1234u);
  EXPECT_EQ(back->counter_or("absent", 9), 9u);

  ASSERT_EQ(back->histograms.size(), 1u);
  EXPECT_EQ(back->histograms[0].name, "propagate_ns");
  ASSERT_EQ(back->histograms[0].edges.size(), 2u);
  ASSERT_EQ(back->histograms[0].counts.size(), 3u);
  EXPECT_EQ(back->histograms[0].total, 6u);

  ASSERT_TRUE(back->accuracy.present());
  EXPECT_EQ(back->accuracy.lines, orig.accuracy.lines);
  EXPECT_DOUBLE_EQ(back->accuracy.mean_abs_error,
                   orig.accuracy.mean_abs_error);
  ASSERT_EQ(back->accuracy.worst.size(), 1u);
  EXPECT_EQ(back->accuracy.worst[0].line, "G199");
  EXPECT_DOUBLE_EQ(back->accuracy.worst[0].abs_error, 0.01);

  ASSERT_EQ(back->accuracy.per_segment.size(), 3u);
  EXPECT_EQ(back->accuracy.per_segment[0].segment, -1);
  EXPECT_EQ(back->accuracy.per_segment[0].lines, 2);
  EXPECT_EQ(back->accuracy.per_segment[2].segment, 2);
  EXPECT_DOUBLE_EQ(back->accuracy.per_segment[2].mean_abs_error, 0.0014);
  EXPECT_DOUBLE_EQ(back->accuracy.per_segment[1].max_abs_error, 0.008);
}

TEST(ReportTest, FromJsonRejectsMalformedAndNewerSchema) {
  EXPECT_FALSE(obs::RunReport::from_json("").has_value());
  EXPECT_FALSE(obs::RunReport::from_json("not json").has_value());
  EXPECT_FALSE(obs::RunReport::from_json("[1,2,3]").has_value());
  EXPECT_FALSE(
      obs::RunReport::from_json("{\"schema_version\": 999}").has_value());
  EXPECT_FALSE(obs::RunReport::from_json("{}").has_value()); // no version
}

TEST(ReportTest, RenderTextContainsHeadlineSections) {
  const std::string text = sample_report().render_text();
  EXPECT_NE(text.find("run report (schema 4)"), std::string::npos);
  EXPECT_NE(text.find("c432"), std::string::npos);
  EXPECT_NE(text.find("propagate"), std::string::npos);
  EXPECT_NE(text.find("histogram propagate_ns"), std::string::npos);
  EXPECT_NE(text.find("accuracy vs Monte Carlo"), std::string::npos);
  EXPECT_NE(text.find("worst lines"), std::string::npos);
  EXPECT_NE(text.find("G199"), std::string::npos);
}

// Chain A -> B -> C with identity CPTs and an extreme prior, so the
// A-B/B-C separator marginal of B carries one near-underflow (or
// exactly-zero) cell. Cliques: {A,B}, {B,C}; separator {B}.
BayesianNetwork chain_with_prior(double p0) {
  BayesianNetwork bn;
  const VarId a = bn.add_variable("a", 2);
  const VarId b = bn.add_variable("b", 2);
  const VarId c = bn.add_variable("c", 2);
  Factor prior({a}, {2});
  prior.set_value(0, p0);
  prior.set_value(1, 1.0 - p0);
  bn.set_cpt(a, {}, prior);
  auto identity = [&](VarId child, VarId parent) {
    Factor f({parent, child}, {2, 2});
    for (int ps = 0; ps < 2; ++ps) {
      for (int cs = 0; cs < 2; ++cs) {
        const int states[2] = {ps, cs};
        f.at(states) = ps == cs ? 1.0 : 0.0;
      }
    }
    bn.set_cpt(child, {parent}, f);
  };
  identity(b, a);
  identity(c, b);
  return bn;
}

TEST(ReportTest, HealthProbesFlagNearUnderflow) {
  const BayesianNetwork bn = chain_with_prior(1e-310); // subnormal prior cell
  Tracer tracer(TraceLevel::Counters);
  CompileOptions opts;
  opts.trace = &tracer;
  JunctionTreeEngine eng(bn, opts);
  eng.load_potentials();
  eng.propagate();

  const obs::MetricsRegistry& m = tracer.metrics();
  EXPECT_GE(m.value(Counter::SepSubnormalCells), 1u);
  // 1e-310 has a binary exponent near -1029; the negated-exponent gauge
  // must reflect it.
  EXPECT_GT(m.value(Counter::SepMinNegExp), 900u);
  EXPECT_GE(m.hist(Hist::SepMinNegExp).total(), 1u);
  EXPECT_GE(m.hist(Hist::PropagateNs).total(), 1u);
}

TEST(ReportTest, HealthProbesCountZeroCellsAndResidue) {
  const BayesianNetwork bn = chain_with_prior(0.0); // exact-zero prior cell
  Tracer tracer(TraceLevel::Counters);
  CompileOptions opts;
  opts.trace = &tracer;
  JunctionTreeEngine eng(bn, opts);
  eng.load_potentials();
  eng.propagate();

  const obs::MetricsRegistry& m = tracer.metrics();
  EXPECT_GE(m.value(Counter::SepZeroCells), 1u);
  // Evidence-free propagation of a valid network: the root mass is 1 up
  // to roundoff, so the residue gauge stays tiny (well under 1000 ppb).
  EXPECT_LT(m.value(Counter::NormResiduePpb), 1000u);
  EXPECT_NEAR(eng.evidence_probability(), 1.0, 1e-9);
}

TEST(ReportTest, ResidueProbeGatedOffUnderEvidence) {
  const BayesianNetwork bn = chain_with_prior(0.25);
  Tracer tracer(TraceLevel::Counters);
  CompileOptions opts;
  opts.trace = &tracer;
  JunctionTreeEngine eng(bn, opts);
  eng.load_potentials();
  eng.set_evidence(0, 1);
  eng.propagate();
  // With evidence the root mass is P(e) != 1; the residue gauge must not
  // fire (it would read as huge drift).
  EXPECT_EQ(tracer.metrics().value(Counter::NormResiduePpb), 0u);
}

TEST(ReportTest, AccuracyAuditOnC17) {
  const Netlist nl = make_benchmark("c17");
  Tracer tracer(TraceLevel::Counters);
  EstimatorOptions opts;
  opts.trace = &tracer;
  SwitchingAnalyzer an(nl, opts);
  const SwitchingEstimate est = an.estimate();

  AccuracyAuditOptions aopts;
  aopts.sim_pairs = std::uint64_t{1} << 17;
  aopts.seed = 3;
  aopts.worst_lines = 5;
  aopts.trace = &tracer;
  const obs::ReportAccuracy acc =
      audit_accuracy(nl, an.default_model(), est, aopts);

  ASSERT_TRUE(acc.present());
  EXPECT_EQ(acc.lines, nl.num_nodes());
  EXPECT_GE(acc.sim_pairs, aopts.sim_pairs);
  // c17 compiles to a single exact BN, so the only error is simulation
  // noise — far below the acceptance threshold.
  EXPECT_LT(acc.mean_abs_error, 0.01);
  EXPECT_GE(acc.max_abs_error, acc.mean_abs_error);
  EXPECT_GE(acc.max_abs_error, acc.rms_error);
  EXPECT_EQ(acc.error_hist.name, "line_abs_error");
  EXPECT_EQ(acc.error_hist.total, static_cast<std::uint64_t>(acc.lines));

  ASSERT_EQ(acc.worst.size(), 5u);
  EXPECT_DOUBLE_EQ(acc.worst[0].abs_error, acc.max_abs_error);
  for (std::size_t i = 1; i < acc.worst.size(); ++i) {
    EXPECT_GE(acc.worst[i - 1].abs_error, acc.worst[i].abs_error);
  }
  // The auditor also feeds the registry histogram.
  EXPECT_EQ(tracer.metrics().hist(Hist::LineAbsError).total(),
            static_cast<std::uint64_t>(acc.lines));
}

TEST(ReportTest, SetMetricsSkipsEmptyAndKeepsNonZero) {
  Tracer tracer(TraceLevel::Counters);
  tracer.count(Counter::MessagesPassed, 10);
  tracer.hist(Hist::PropagateNs, 100.0);
  obs::RunReport rep;
  rep.set_metrics(tracer.metrics());
  EXPECT_EQ(rep.counter_or("messages_passed", 0), 10u);
  EXPECT_EQ(rep.counter_or("cliques_built", 0), 0u); // zero -> omitted
  ASSERT_EQ(rep.histograms.size(), 1u);
  EXPECT_EQ(rep.histograms[0].name, "propagate_ns");
  for (const obs::ReportCounter& c : rep.counters) {
    EXPECT_NE(c.value, 0u);
  }
}

// The S1 regression test: two identical runs, separated by
// Tracer::reset(), must report identical counter values — no
// carried-over or missing state in the registry.
TEST(ReportTest, BackToBackRunsReportIdenticalCounters) {
  const Netlist nl = make_benchmark("c17");
  Tracer tracer(TraceLevel::Counters);
  auto run_once = [&]() {
    tracer.reset();
    EstimatorOptions opts;
    opts.trace = &tracer;
    SwitchingAnalyzer an(nl, opts);
    an.estimate();
    return tracer.metrics().snapshot();
  };
  const obs::MetricsSnapshot first = run_once();
  const obs::MetricsSnapshot second = run_once();
  for (int i = 0; i < obs::kNumCounters; ++i) {
    EXPECT_EQ(first[static_cast<std::size_t>(i)],
              second[static_cast<std::size_t>(i)])
        << obs::counter_name(static_cast<Counter>(i));
  }
}

} // namespace
} // namespace bns
