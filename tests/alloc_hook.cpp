// Counting replacements for the global allocation functions (linked
// into bns_tests only — never into the library or tools). The counter
// is a relaxed atomic: tests snapshot it around a single-threaded
// region, so cross-thread ordering is irrelevant.
#include "alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace bns::alloc_hook {
namespace {
std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
} // namespace

std::uint64_t allocation_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

} // namespace bns::alloc_hook

void* operator new(std::size_t n) { return bns::alloc_hook::counted_alloc(n); }
void* operator new[](std::size_t n) { return bns::alloc_hook::counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  bns::alloc_hook::g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  bns::alloc_hook::g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
