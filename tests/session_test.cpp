// Tests for the bns::Session facade: circuit-argument resolution, the
// estimate/sweep/conditional surface, the linear-scenario helper shared
// with bns_sweep and the daemon, and the artifact-backed open path.
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "session/session.h"

namespace bns {
namespace {

std::string tmp_artifact(const std::string& tag) {
  return testing::TempDir() + "bns_session_test_" + tag + "_" +
         std::to_string(::getpid()) + ".bnsc";
}

TEST(SessionTest, OpenBuiltinMatchesDirectEstimator) {
  Session s = Session::open("c17");
  const InputModel model = InputModel::uniform(s.netlist().num_inputs());
  const SwitchingEstimate got = s.estimate(model);

  const Netlist nl = load_circuit("c17");
  LidagEstimator ref(nl, model);
  const SwitchingEstimate want = ref.estimate(model);
  EXPECT_EQ(got.dist, want.dist);
  EXPECT_EQ(s.artifact_info(), nullptr);
  EXPECT_EQ(s.load_seconds(), 0.0);
}

TEST(SessionTest, OpenBenchFileResolves) {
  Session s = Session::open(std::string(BNS_DATA_DIR) + "/c17.bench");
  EXPECT_EQ(s.netlist().num_inputs(), 5);
}

TEST(SessionTest, OpenUnknownCircuitThrows) {
  EXPECT_THROW(Session::open("no_such_benchmark_name"), std::exception);
  EXPECT_THROW(Session::open("/nonexistent/file.bench"), std::exception);
}

TEST(SessionTest, MakeLinearScenariosEndpointsAndShape) {
  LinearSweepSpec spec;
  spec.scenarios = 5;
  spec.vary_input = 2;
  spec.p_from = 0.1;
  spec.p_to = 0.9;
  spec.rho = 0.25;
  const std::vector<InputModel> models = make_linear_scenarios(spec, 4);
  ASSERT_EQ(models.size(), 5u);
  EXPECT_DOUBLE_EQ(models.front().spec(2).p, 0.1);
  EXPECT_DOUBLE_EQ(models.back().spec(2).p, 0.9);
  EXPECT_DOUBLE_EQ(models[2].spec(2).p, 0.5);
  for (const InputModel& m : models) {
    EXPECT_EQ(m.num_inputs(), 4);
    for (int i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(m.spec(i).rho, 0.25);
      if (i != 2) EXPECT_DOUBLE_EQ(m.spec(i).p, 0.5);
    }
  }
}

TEST(SessionTest, MakeLinearScenariosSingleScenarioUsesPFrom) {
  LinearSweepSpec spec;
  spec.scenarios = 1;
  spec.p_from = 0.3;
  const std::vector<InputModel> models = make_linear_scenarios(spec, 2);
  ASSERT_EQ(models.size(), 1u);
  EXPECT_DOUBLE_EQ(models[0].spec(0).p, 0.3);
}

TEST(SessionTest, SweepMatchesIndependentEstimatesBitwise) {
  Session s = Session::open("c432");
  LinearSweepSpec spec;
  spec.scenarios = 4;
  const SweepResult res = s.sweep(spec);
  ASSERT_EQ(res.estimates.size(), 4u);

  Session ref = Session::open("c432");
  const std::vector<InputModel> models =
      make_linear_scenarios(spec, s.netlist().num_inputs());
  for (std::size_t i = 0; i < models.size(); ++i) {
    const SwitchingEstimate want = ref.estimate(models[i]);
    EXPECT_EQ(res.estimates[i].dist, want.dist) << "scenario " << i;
  }
}

TEST(SessionTest, SweepWithReplicasMatchesSingleReplica) {
  Session a = Session::open("c432");
  Session b = Session::open("c432");
  LinearSweepSpec spec;
  spec.scenarios = 6;
  const SweepResult one = a.sweep(spec, 1);
  const SweepResult two = b.sweep(spec, 3);
  ASSERT_EQ(one.estimates.size(), two.estimates.size());
  for (std::size_t i = 0; i < one.estimates.size(); ++i) {
    EXPECT_EQ(one.estimates[i].dist, two.estimates[i].dist) << i;
  }
  EXPECT_EQ(two.replicas_used, 3);
}

TEST(SessionTest, ConditionalMatchesEstimatorInterface) {
  Session s = Session::open("c17");
  const InputModel model = InputModel::uniform(s.netlist().num_inputs());
  const NodeId target = s.netlist().num_nodes() - 1;
  const NodeId given = 0;
  const auto dist = s.conditional(target, given, Trans::T01, model);
  if (dist) {
    double sum = 0.0;
    for (double d : *dist) {
      EXPECT_GE(d, -1e-12);
      sum += d;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(SessionTest, SaveThenOpenArtifactIsBitwiseAndCarriesInfo) {
  const std::string path = tmp_artifact("roundtrip");
  Session compiled = Session::open("c880");
  compiled.save(path);

  Session loaded = Session::open_artifact(path);
  ASSERT_NE(loaded.artifact_info(), nullptr);
  EXPECT_EQ(loaded.artifact_info()->circuit, "c880");
  EXPECT_GT(loaded.load_seconds(), 0.0);

  const InputModel model =
      InputModel::uniform(compiled.netlist().num_inputs(), 0.4, 0.1);
  EXPECT_EQ(loaded.estimate(model).dist, compiled.estimate(model).dist);
  std::remove(path.c_str());
}

TEST(SessionTest, ArtifactSessionSweepWithReplicasIsBitwise) {
  const std::string path = tmp_artifact("replicas");
  Session compiled = Session::open("c432");
  compiled.save(path);

  // Replica cloning for artifact sessions re-loads the file; the clone
  // must own its decoded netlist (lifetime) and answer identically.
  Session loaded = Session::open_artifact(path);
  LinearSweepSpec spec;
  spec.scenarios = 6;
  const SweepResult from_artifact = loaded.sweep(spec, 2);
  const SweepResult from_compile = compiled.sweep(spec, 1);
  ASSERT_EQ(from_artifact.estimates.size(), from_compile.estimates.size());
  for (std::size_t i = 0; i < from_compile.estimates.size(); ++i) {
    EXPECT_EQ(from_artifact.estimates[i].dist, from_compile.estimates[i].dist)
        << i;
  }
  std::remove(path.c_str());
}

TEST(SessionTest, VerifyCleanModelHasNoErrors) {
  Session s = Session::open("c17");
  const DiagnosticReport report = s.verify(VerifyLevel::Full);
  EXPECT_FALSE(report.has_errors()) << report.render_text();
}

} // namespace
} // namespace bns
