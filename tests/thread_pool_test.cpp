// ThreadPool unit tests: index coverage, exception propagation, nested
// submission (must run inline, never deadlock), and the env-var/option
// thread-count resolution used by the estimator.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace bns {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(257, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroAndOneIndexRunInline) {
  ThreadPool pool(3);
  int calls = 0;
  pool.parallel_for(0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(-5, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](int i) {
    EXPECT_EQ(i, 0);
    // n == 1 is inline but must NOT mark a parallel region: nested
    // parallelism underneath it still fans out.
    EXPECT_FALSE(ThreadPool::in_parallel_region());
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> order;
  pool.parallel_for(5, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](int i) {
                          if (i == 13) throw std::runtime_error("task 13 failed");
                        }),
      std::runtime_error);
  // The pool must remain usable after a failed region.
  std::atomic<int> sum{0};
  pool.parallel_for(10, [&](int i) { sum += i; });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, ExceptionFromInlinePathPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(3, [&](int) { throw std::logic_error("x"); }),
               std::logic_error);
}

TEST(ThreadPool, NestedSubmitRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for(8, [&](int) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    // A nested parallel_for must not wait on workers that are busy
    // running the outer region — it runs inline on this thread.
    pool.parallel_for(16, [&](int j) { inner_total += j; });
  });
  EXPECT_EQ(inner_total.load(), 8 * (15 * 16 / 2));
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST(ThreadPool, ManySmallRegionsReuseWorkers) {
  ThreadPool pool(2);
  long total = 0;
  for (int round = 0; round < 200; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(7, [&](int i) { sum += i; });
    total += sum.load();
  }
  EXPECT_EQ(total, 200L * 21);
}

TEST(ThreadPool, ResolveThreadsPrecedence) {
  // Explicit request wins over everything.
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3);
  // 0 falls back to BNS_THREADS, else 1 (sequential default).
  ::unsetenv("BNS_THREADS");
  EXPECT_EQ(ThreadPool::resolve_threads(0), 1);
  ::setenv("BNS_THREADS", "5", 1);
  EXPECT_EQ(ThreadPool::resolve_threads(0), 5);
  EXPECT_EQ(ThreadPool::resolve_threads(2), 2);
  ::setenv("BNS_THREADS", "garbage", 1);
  EXPECT_EQ(ThreadPool::resolve_threads(0), 1);
  ::setenv("BNS_THREADS", "-4", 1);
  EXPECT_EQ(ThreadPool::resolve_threads(0), 1);
  ::unsetenv("BNS_THREADS");
}

TEST(ThreadPool, DeterministicResultWithAtomicAccumulationPattern) {
  // The library's own parallel code writes disjoint slots; emulate that
  // pattern and check it is exactly reproducible across runs.
  ThreadPool pool(4);
  std::vector<double> a(1000), b(1000);
  for (auto* out : {&a, &b}) {
    pool.parallel_for(1000, [&](int i) {
      (*out)[static_cast<std::size_t>(i)] = 1.0 / (1.0 + i);
    });
  }
  EXPECT_EQ(a, b);
}

} // namespace
} // namespace bns
