// Power report: estimate the switching activity of every line of a
// benchmark circuit (or a user-supplied ISCAS-85 .bench file) and turn
// it into a per-line and total dynamic-power report with a simple
// capacitance model — the downstream use the paper's introduction
// motivates.
//
// Usage: power_report [circuit-name | path/to/file.bench]
#include <algorithm>
#include <cstdio>
#include <string>

#include "bns.h"

using namespace bns;

int main(int argc, char** argv) {
  const std::string arg = argc > 1 ? argv[1] : "c880";
  Netlist nl;
  try {
    nl = make_benchmark(arg);
  } catch (const std::invalid_argument&) {
    nl = read_bench_file(arg); // not a suite name: treat as a file
  }

  const NetlistStats st = compute_stats(nl);
  std::printf("circuit %s: %d inputs, %d outputs, %d gates, depth %d\n\n",
              nl.name().c_str(), st.num_inputs, st.num_outputs, st.num_gates,
              st.depth);

  SwitchingAnalyzer analyzer(nl);
  const SwitchingEstimate est = analyzer.estimate();

  // Ten most active lines.
  std::vector<NodeId> order(static_cast<std::size_t>(nl.num_nodes()));
  for (NodeId id = 0; id < nl.num_nodes(); ++id) order[static_cast<std::size_t>(id)] = id;
  std::sort(order.begin(), order.end(), [&](NodeId x, NodeId y) {
    return est.activity(x) > est.activity(y);
  });
  std::printf("hottest lines (switching activity per cycle):\n");
  const auto fanout = nl.fanout_counts();
  for (int i = 0; i < std::min(10, nl.num_nodes()); ++i) {
    const NodeId id = order[static_cast<std::size_t>(i)];
    std::printf("  %-14s activity = %.4f  fanout = %d\n",
                nl.node(id).name.c_str(), est.activity(id),
                fanout[static_cast<std::size_t>(id)]);
  }

  const double p = analyzer.dynamic_power_watts(est);
  std::printf("\naverage activity      = %.4f\n", est.average_activity());
  std::printf("dynamic power @1.8V/100MHz (2fF/fanout + 4fF/gate) = %.3f uW\n",
              p * 1e6);
  const CompileStats& cs = analyzer.estimator().compile_stats();
  std::printf("compiled %d segment BN(s) in %.3f s; estimate took %.3f ms\n",
              cs.num_segments, cs.compile_seconds,
              est.stats.propagate_seconds * 1e3);
  return 0;
}
