// Correlated input streams: the paper's future-work extension ("input
// modeling for capturing spatial correlation at the primary inputs using
// the same BN model"), implemented here with hidden shared-source group
// variables.
//
// A bus whose bits are noisy copies of one source drives a comparator
// against an independent bus. With spatial correlation modeled, the BN
// predicts the strong activity shift at the equality output; assuming
// independent inputs misses it badly. Ground truth from simulation.
#include <cstdio>

#include "bns.h"

using namespace bns;

int main() {
  const int bits = 6;
  const Netlist nl = comparator(bits); // inputs a0..a5, b0..b5; outputs gt,lt,eq

  // Bus a: all bits noisy copies (flip 10%) of one slow source.
  // Bus b: independent equiprobable bits.
  std::vector<InputSpec> specs;
  for (int i = 0; i < bits; ++i) specs.push_back({0.5, 0.0, /*group=*/0, 0.1});
  for (int i = 0; i < bits; ++i) specs.push_back({0.5, 0.0, -1, 0.0});
  const std::vector<GroupSpec> groups = {{0.5, 0.6}};
  const InputModel model = InputModel::custom(specs, groups);

  SwitchingAnalyzer analyzer(nl, {}, model);
  const SwitchingEstimate bn = analyzer.estimate(model);

  // Reference points: simulation truth and the independence assumption.
  const SimResult sim = analyzer.simulate(model, 1 << 22, /*seed=*/11);
  const IndependenceResult indep = estimate_independence(nl, model);

  std::printf("comparator(%d) with one correlated input bus "
              "(group source rho=0.6, flip=0.1)\n\n", bits);
  std::printf("%-8s %10s %10s %10s\n", "line", "BN", "indep", "simulated");
  for (NodeId out : nl.outputs()) {
    std::printf("%-8s %10.4f %10.4f %10.4f\n", nl.node(out).name.c_str(),
                bn.activity(out), activity_of(indep.dist[static_cast<std::size_t>(out)]),
                sim.activity(out));
  }

  double bn_err = 0.0;
  double in_err = 0.0;
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    bn_err += std::abs(bn.activity(id) - sim.activity(id));
    in_err += std::abs(activity_of(indep.dist[static_cast<std::size_t>(id)]) -
                       sim.activity(id));
  }
  std::printf("\nmean |error| over all %d lines: BN = %.5f, independence = "
              "%.5f\n", nl.num_nodes(), bn_err / nl.num_nodes(),
              in_err / nl.num_nodes());
  return 0;
}
