// What-if input analysis: the workflow the paper advocates in Section 6
// ("the circuits can be precompiled, only propagation has to be done for
// different input statistics"). Compile a circuit once, then sweep input
// signal probability and temporal correlation, reporting how average
// switching activity (and therefore power) responds — each point costs
// only one cheap propagation.
#include <cstdio>
#include <string>

#include "bns.h"

using namespace bns;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "c1355";
  const Netlist nl = make_benchmark(name);

  SwitchingAnalyzer analyzer(nl);
  const CompileStats& cs = analyzer.estimator().compile_stats();
  std::printf("circuit %s compiled in %.3f s (%d segment BNs)\n\n",
              nl.name().c_str(), cs.compile_seconds, cs.num_segments);

  std::printf("avg switching activity as input statistics vary\n");
  std::printf("%-8s", "p \\ rho");
  for (double rho : {-0.4, 0.0, 0.4, 0.8}) std::printf("  rho=%+.1f", rho);
  std::printf("   (update ms)\n");

  double total_update_ms = 0.0;
  int updates = 0;
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    std::printf("p=%.1f   ", p);
    double row_ms = 0.0;
    for (double rho : {-0.4, 0.0, 0.4, 0.8}) {
      const double r = std::max(rho, rho_min(p)); // keep the chain valid
      const SwitchingEstimate est =
          analyzer.estimate(InputModel::uniform(nl.num_inputs(), p, r));
      std::printf("  %7.4f", est.average_activity());
      row_ms += est.stats.propagate_seconds * 1e3;
      total_update_ms += est.stats.propagate_seconds * 1e3;
      ++updates;
    }
    std::printf("   %8.2f\n", row_ms / 4.0);
  }
  std::printf("\n%d what-if points, %.2f ms average per update — vs %.3f s "
              "to compile\n",
              updates, total_update_ms / updates, cs.compile_seconds);
  std::printf("(activity peaks at p=0.5 with anticorrelated inputs and "
              "collapses for sticky inputs — the expected shape)\n");
  return 0;
}
