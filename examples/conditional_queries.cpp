// Conditional switching queries — the capability the paper lists as its
// advantage #4: because the LIDAG is a full Bayesian network, posteriors
// under observations come from the same compiled junction tree.
//
// Scenario: a designer asks "how does the activity downstream change
// when I know this control line just rose?" — useful for peak-power and
// vector-dependent analysis that forward-only estimators cannot answer.
#include <cstdio>

#include "bns.h"

using namespace bns;

namespace {

const char* state_name(Trans t) {
  switch (t) {
    case T00: return "0->0";
    case T01: return "0->1";
    case T10: return "1->0";
    case T11: return "1->1";
  }
  return "?";
}

} // namespace

int main() {
  // The paper's own example circuit (Figure 1).
  const Netlist nl = figure1_circuit();
  const InputModel model = InputModel::uniform(nl.num_inputs());
  LidagEstimator est(nl, model);

  const SwitchingEstimate base = est.estimate(model);
  const NodeId x5 = nl.find("5"); // OR-gate output
  const NodeId x7 = nl.find("7");
  const NodeId x9 = nl.find("9"); // primary output

  std::printf("unconditional activity:  line7 = %.4f   line9 = %.4f\n\n",
              base.activity(x7), base.activity(x9));

  std::printf("activity of lines 7 and 9 given the observed transition of "
              "line 5:\n");
  std::printf("  observed line5   act(line7)  act(line9)\n");
  for (Trans s : {T00, T01, T10, T11}) {
    const auto d7 = est.conditional_dist(x7, x5, s, model);
    const auto d9 = est.conditional_dist(x9, x5, s, model);
    if (!d7 || !d9) continue;
    std::printf("  %-14s   %.4f      %.4f\n", state_name(s),
                activity_of(*d7), activity_of(*d9));
  }

  std::printf("\nReading: when line 5 stays low (0->0), the AND gate at "
              "line 7 cannot switch at all; when line 5 toggles, line 7's "
              "switching probability jumps — structure the unconditional "
              "average hides.\n");
  return 0;
}
