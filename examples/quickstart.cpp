// Quickstart: build a small circuit with the netlist API, compile the
// LIDAG Bayesian network once, and read off per-line switching
// activities — first under random inputs, then under biased ones.
#include <cstdio>

#include "bns.h"

using namespace bns;

int main() {
  // A 2:1 multiplexer with an enable: out = en & (sel ? b : a).
  Netlist nl("mux_en");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId sel = nl.add_input("sel");
  const NodeId en = nl.add_input("en");
  const NodeId nsel = nl.add_gate(GateType::Not, "nsel", {sel});
  const NodeId ta = nl.add_gate(GateType::And, "ta", {a, nsel});
  const NodeId tb = nl.add_gate(GateType::And, "tb", {b, sel});
  const NodeId mux = nl.add_gate(GateType::Or, "mux", {ta, tb});
  const NodeId out = nl.add_gate(GateType::And, "out", {mux, en});
  nl.mark_output(out);

  // Compile once; the junction tree is reused for every estimate below.
  SwitchingAnalyzer analyzer(nl);

  std::printf("random inputs (p = 0.5, temporally independent):\n");
  const SwitchingEstimate random = analyzer.estimate();
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    std::printf("  %-5s activity = %.4f\n", nl.node(id).name.c_str(),
                random.activity(id));
  }

  // What if the enable is mostly on and rarely toggles, and the select
  // is slow-moving? Only the cheap propagation step re-runs.
  std::vector<InputSpec> specs = {
      {0.5, 0.0, -1, 0.0},  // a
      {0.5, 0.0, -1, 0.0},  // b
      {0.5, 0.9, -1, 0.0},  // sel: high temporal correlation
      {0.95, 0.5, -1, 0.0}, // en: mostly 1
  };
  const SwitchingEstimate biased =
      analyzer.estimate(InputModel::custom(specs));
  std::printf("\nbiased inputs (sticky sel, mostly-on en):\n");
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    std::printf("  %-5s activity = %.4f\n", nl.node(id).name.c_str(),
                biased.activity(id));
  }

  std::printf("\nupdate took %.3f ms on the precompiled network\n",
              biased.stats.propagate_seconds * 1e3);
  return 0;
}
