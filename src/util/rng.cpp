#include "util/rng.h"

#include "util/assert.h"

namespace bns {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

} // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // SplitMix64 output can in principle be all zero for adversarial seeds;
  // xoshiro requires non-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::below(std::uint64_t n) {
  BNS_EXPECTS(n > 0);
  // Lemire-style rejection-free-ish bounded draw; bias is negligible for
  // our n (<< 2^32) but we reject to keep it exact.
  const std::uint64_t threshold = (~n + 1) % n; // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  BNS_EXPECTS(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

int Rng::weighted(const double* weights, int weights_size) {
  BNS_EXPECTS(weights_size > 0);
  double total = 0.0;
  for (int i = 0; i < weights_size; ++i) {
    BNS_EXPECTS(weights[i] >= 0.0);
    total += weights[i];
  }
  BNS_EXPECTS(total > 0.0);
  double r = uniform() * total;
  for (int i = 0; i < weights_size; ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights_size - 1; // floating-point edge: land on the last bucket
}

} // namespace bns
