#include "util/assert.h"

#include <cstdio>
#include <cstdlib>

namespace bns::detail {

void contract_violation(std::string_view kind, std::string_view cond,
                        std::string_view file, int line, std::string_view msg) {
  std::fprintf(stderr, "%.*s failed: %.*s (%.*s:%d)%s%.*s\n",
               static_cast<int>(kind.size()), kind.data(),
               static_cast<int>(cond.size()), cond.data(),
               static_cast<int>(file.size()), file.data(), line,
               msg.empty() ? "" : " — ",
               static_cast<int>(msg.size()), msg.data());
  std::abort();
}

} // namespace bns::detail
