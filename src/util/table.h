// Forwarding header: Table moved to obs/table.h so the run-report text
// renderer (obs/report.*) and the bench binaries share one formatting
// code path. Kept so existing `#include "util/table.h"` callers build
// unchanged; new code should include obs/table.h directly.
#pragma once

#include "obs/table.h"
