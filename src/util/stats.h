// Streaming statistics accumulators used by the error-metric and
// benchmark reporting code.
#pragma once

#include <cstddef>
#include <span>

namespace bns {

// Welford single-pass accumulator for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }

  // Mean of the observed samples. Precondition: !empty().
  double mean() const;
  // Unbiased sample variance (0 for a single sample). Precondition: !empty().
  double variance() const;
  // Sample standard deviation. Precondition: !empty().
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const;

  // Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Error metrics between an estimate and a reference, as reported in the
// paper's Table 1:
//   mu_err  — mean over nodes of |est - ref|
//   sigma_err — standard deviation over nodes of |est - ref|
//   pct_err — |mean(est) - mean(ref)| / mean(ref) * 100
struct ErrorStats {
  double mu_err = 0.0;
  double sigma_err = 0.0;
  double pct_err = 0.0;
  double max_err = 0.0;
  std::size_t n = 0;
};

// Computes ErrorStats over paired samples. Preconditions: equal,
// non-zero lengths; mean(ref) != 0 for pct_err to be meaningful (it is
// reported as 0 when mean(ref) == 0).
ErrorStats compute_error_stats(std::span<const double> estimate,
                               std::span<const double> reference);

} // namespace bns
