// A small fixed-size thread pool built around one primitive:
// parallel_for(n, fn), which runs fn(0..n-1) across the pool and blocks
// until every index has completed. There is no task queue and no work
// stealing — indices are claimed from a shared atomic counter — so
// submitting work allocates nothing.
//
// Reentrancy: parallel_for called from inside a task runs inline on the
// calling thread (no deadlock on nested submits). A single-index call
// (n == 1) also runs inline but does *not* count as entering a parallel
// region, so parallelism nested under it still fans out — this is what
// lets a one-segment level in the estimator hand the whole pool to the
// junction-tree engine underneath it.
//
// Exceptions thrown by tasks are captured (first one wins), remaining
// indices are abandoned, and the exception is rethrown on the thread
// that called parallel_for.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <type_traits>
#include <vector>

namespace bns {

// Non-owning reference to a callable `void(int)`. The referenced
// callable must outlive the parallel_for call — always true for a
// lambda passed directly at the call site.
class IndexFnRef {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, IndexFnRef>>>
  IndexFnRef(F&& f) noexcept // NOLINT(google-explicit-constructor)
      : ctx_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        fn_([](void* ctx, int i) {
          (*static_cast<std::remove_reference_t<F>*>(ctx))(i);
        }) {}

  void operator()(int i) const { fn_(ctx_, i); }

 private:
  void* ctx_;
  void (*fn_)(void*, int);
};

class ThreadPool {
 public:
  // Spawns `num_threads - 1` workers; the thread calling parallel_for
  // is the remaining one. num_threads < 1 is clamped to 1 (no workers,
  // everything runs inline).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(0), ..., fn(n-1), potentially in parallel; returns when all
  // have finished. Results must not depend on which thread runs which
  // index — tasks writing disjoint data are deterministic by design.
  void parallel_for(int n, IndexFnRef fn);

  // Priority-ordered variant: runs fn(order[0]), ..., fn(order[n-1]),
  // workers claiming positions in increasing order. Callers list task
  // ids most-expensive-first (a cost-model prediction) so long tasks
  // start before short ones and the makespan shrinks — the claim is
  // still a single atomic fetch_add mapped through the permutation, so
  // submitting work allocates nothing. order.size() must be >= n.
  void parallel_for_ordered(int n, std::span<const int> order, IndexFnRef fn);

  // True while the calling thread is executing a parallel_for task.
  static bool in_parallel_region();

  // Thread-count policy for the `num_threads` knobs: a positive request
  // wins; 0 means "use the BNS_THREADS environment variable when set,
  // else 1" — so existing single-threaded behavior is the default.
  static int resolve_threads(int requested);

 private:
  void worker_loop();
  void run_current_job();

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;                 // guards everything below
  std::mutex submit_mu_;          // serializes concurrent parallel_for callers
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;  // bumped per parallel_for
  const IndexFnRef* job_ = nullptr;
  int job_n_ = 0;
  std::atomic<int> next_{0};      // next unclaimed index
  int acked_ = 0;                 // workers finished with this generation
  std::exception_ptr first_error_;
  bool stop_ = false;
};

} // namespace bns
