#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace bns {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  BNS_EXPECTS(n_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  BNS_EXPECTS(n_ > 0);
  if (n_ == 1) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  BNS_EXPECTS(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  BNS_EXPECTS(n_ > 0);
  return max_;
}

double RunningStats::sum() const { return sum_; }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

ErrorStats compute_error_stats(std::span<const double> estimate,
                               std::span<const double> reference) {
  BNS_EXPECTS(estimate.size() == reference.size());
  BNS_EXPECTS(!estimate.empty());

  RunningStats abs_err;
  RunningStats est_mean;
  RunningStats ref_mean;
  for (std::size_t i = 0; i < estimate.size(); ++i) {
    abs_err.add(std::abs(estimate[i] - reference[i]));
    est_mean.add(estimate[i]);
    ref_mean.add(reference[i]);
  }

  ErrorStats out;
  out.n = estimate.size();
  out.mu_err = abs_err.mean();
  out.sigma_err = abs_err.stddev();
  out.max_err = abs_err.max();
  out.pct_err = ref_mean.mean() == 0.0
                    ? 0.0
                    : std::abs(est_mean.mean() - ref_mean.mean()) /
                          ref_mean.mean() * 100.0;
  return out;
}

} // namespace bns
