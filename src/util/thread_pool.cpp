#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "obs/trace.h"
#include "util/assert.h"

namespace bns {
namespace {

thread_local bool tls_in_region = false;

} // namespace

bool ThreadPool::in_parallel_region() { return tls_in_region; }

int ThreadPool::resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("BNS_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 1;
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int t = 0; t < num_threads_ - 1; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_current_job() {
  const IndexFnRef* fn = job_;
  const int n = job_n_;
  int i;
  while ((i = next_.fetch_add(1, std::memory_order_relaxed)) < n) {
    try {
      (*fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!first_error_) first_error_ = std::current_exception();
      next_.store(n, std::memory_order_relaxed); // abandon remaining indices
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    tls_in_region = true;
    run_current_job();
    tls_in_region = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (++acked_ == static_cast<int>(workers_.size())) {
        cv_done_.notify_one();
      }
    }
  }
}

void ThreadPool::parallel_for(int n, IndexFnRef fn) {
  if (n <= 0) return;
  // One batched relaxed add per submit (never per index) keeps the
  // counter off the per-task critical path and allocation-free.
  obs::count_global(obs::Counter::ThreadPoolTasks, static_cast<std::uint64_t>(n));
  if (n == 1) {
    // Inline without entering a parallel region: nested parallel_for
    // under a single-index call can still use the pool.
    fn(0);
    return;
  }
  if (num_threads_ <= 1 || tls_in_region) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  std::lock_guard<std::mutex> submit(submit_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    acked_ = 0;
    ++generation_;
  }
  cv_work_.notify_all();

  tls_in_region = true;
  run_current_job();
  tls_in_region = false;

  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return acked_ == static_cast<int>(workers_.size()); });
    job_ = nullptr;
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::parallel_for_ordered(int n, std::span<const int> order,
                                      IndexFnRef fn) {
  if (n <= 0) return;
  BNS_ASSERT(static_cast<std::size_t>(n) <= order.size());
  // The permutation is applied inside the claimed-position task, so the
  // scheduling machinery (atomic claim counter, inline fallbacks,
  // exception capture) is exactly parallel_for's.
  const int* ids = order.data();
  auto run = [&fn, ids](int k) { fn(ids[k]); };
  parallel_for(n, run);
}

} // namespace bns
