#include "util/timer.h"

// Header-only today; this TU anchors the library target.
