// Contract-checking macros in the spirit of the C++ Core Guidelines
// Expects/Ensures (I.6, I.8). Violations are programming errors, so they
// terminate with a diagnostic rather than throw.
#pragma once

#include <string_view>

namespace bns::detail {

// Prints "<kind> failed: <cond> (<file>:<line>) <msg>" to stderr and aborts.
[[noreturn]] void contract_violation(std::string_view kind, std::string_view cond,
                                     std::string_view file, int line,
                                     std::string_view msg);

} // namespace bns::detail

#define BNS_CONTRACT_IMPL(kind, cond, msg)                                       \
  do {                                                                           \
    if (!(cond)) {                                                               \
      ::bns::detail::contract_violation(kind, #cond, __FILE__, __LINE__, msg);   \
    }                                                                            \
  } while (false)

// Precondition on a function's arguments / object state.
#define BNS_EXPECTS(cond) BNS_CONTRACT_IMPL("Precondition", cond, "")
#define BNS_EXPECTS_MSG(cond, msg) BNS_CONTRACT_IMPL("Precondition", cond, msg)

// Postcondition / internal invariant.
#define BNS_ENSURES(cond) BNS_CONTRACT_IMPL("Postcondition", cond, "")
#define BNS_ASSERT(cond) BNS_CONTRACT_IMPL("Assertion", cond, "")
#define BNS_ASSERT_MSG(cond, msg) BNS_CONTRACT_IMPL("Assertion", cond, msg)

// Marks control flow that must be impossible (e.g. a fully-covered
// switch); aborts with the message if reached.
#define BNS_UNREACHABLE(msg)                                                     \
  ::bns::detail::contract_violation("Unreachable", "false", __FILE__, __LINE__,  \
                                    msg)
