// Seeded, reproducible pseudo-random number generation.
//
// All stochastic components of the library (input-stream generation,
// random circuit generation, Monte-Carlo ground truth) draw from this
// xoshiro256++ generator so that every experiment is reproducible from a
// single 64-bit seed.
#pragma once

#include <cstdint>

namespace bns {

// xoshiro256++ 1.0 (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  // Re-initializes state from `seed` via SplitMix64 (never all-zero).
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t below(std::uint64_t n);

  // Uniform integer in [lo, hi]. Precondition: lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  // Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  // 64 independent fair coin flips packed into a word.
  std::uint64_t bits64() { return next(); }

  // Draws an index in [0, weights_size) proportional to weights[i].
  // Precondition: all weights >= 0 and their sum > 0.
  int weighted(const double* weights, int weights_size);

 private:
  std::uint64_t s_[4];
};

} // namespace bns
