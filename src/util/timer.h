// Wall-clock timing.
//
// The paper reports *elapsed* (wall) time rather than CPU time, arguing
// that CPU time underestimates memory-bound workloads; we follow suit and
// use std::chrono::steady_clock throughout.
#pragma once

#include <chrono>

namespace bns {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  // Elapsed seconds since construction or last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

} // namespace bns
