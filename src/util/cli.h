// Shared command-line parsing for the tools and benches, plus the one
// documented exit-code contract they all follow.
//
// Before this header every tool re-implemented the same strict loop:
// `--flag value` pairs, unknown-dash rejection, positional collection,
// and `usage(); exit(2)` on any malformed input. The ArgParser keeps
// that behavior (strict numerics included: "4x" is a usage error, not
// atoi-silence) behind a declarative registration API so the tools stay
// byte-compatible on their happy paths while sharing one parser.
//
// Exit codes (the contract every tool documents in its usage text):
//   kExitOk      0  success
//   kExitFailure 1  a gate or verification failed (baseline regression,
//                   --verify mismatch, lint findings at --werror, ...)
//   kExitUsage   2  usage error or I/O failure (bad flag, unreadable
//                   input file, unwritable output path)
#pragma once

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace bns::cli {

inline constexpr int kExitOk = 0;
inline constexpr int kExitFailure = 1;
inline constexpr int kExitUsage = 2;

// Strict scalar parsing: the whole token must be consumed. Returns
// false on empty input, trailing garbage, or range errors.
inline bool parse_int(std::string_view s, int& out) {
  if (s.empty()) return false;
  errno = 0;
  const std::string buf(s);
  char* end = nullptr;
  const long v = std::strtol(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  if (v < INT_MIN || v > INT_MAX) return false;
  out = static_cast<int>(v);
  return true;
}

inline bool parse_double(std::string_view s, double& out) {
  if (s.empty()) return false;
  errno = 0;
  const std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  out = v;
  return true;
}

// "1,2,8"-style strictly positive integer lists (the --threads syntax
// of the benches). Rejects empty items, non-digits and values < 1.
inline bool parse_int_list(std::string_view s, std::vector<int>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = std::min(s.find(',', pos), s.size());
    int v = 0;
    if (!parse_int(s.substr(pos, comma - pos), v) || v < 1) return false;
    out.push_back(v);
    if (comma == s.size()) break;
    pos = comma + 1;
  }
  return !out.empty();
}

// Declarative strict parser. Register handlers, then parse(); any
// malformed input prints the usage text to stderr and exits with
// kExitUsage, exactly like the hand-rolled loops it replaces.
class ArgParser {
 public:
  // `usage` is printed verbatim on failure (keep the historical
  // R"(usage: ...)" blocks).
  ArgParser(std::string_view tool, std::string_view usage)
      : tool_(tool), usage_(usage) {}

  // --name (no value): sets *out to true when present.
  void flag(std::string_view name, bool* out) {
    handlers_.push_back({std::string(name), false,
                         [out](std::string_view) {
                           *out = true;
                           return true;
                         }});
  }

  // --name VALUE with strict scalar parsing.
  void value(std::string_view name, int* out) {
    handlers_.push_back({std::string(name), true, [out](std::string_view v) {
                           return parse_int(v, *out);
                         }});
  }
  void value(std::string_view name, double* out) {
    handlers_.push_back({std::string(name), true, [out](std::string_view v) {
                           return parse_double(v, *out);
                         }});
  }
  void value(std::string_view name, std::string* out) {
    handlers_.push_back({std::string(name), true, [out](std::string_view v) {
                           *out = std::string(v);
                           return !out->empty();
                         }});
  }
  void value(std::string_view name, std::vector<int>* out) {
    handlers_.push_back({std::string(name), true, [out](std::string_view v) {
                           return parse_int_list(v, *out);
                         }});
  }

  // --name VALUE with a custom validator (enumerated values, prefixes,
  // ...). Return false to reject the value as a usage error.
  void custom(std::string_view name, std::function<bool(std::string_view)> fn) {
    handlers_.push_back({std::string(name), true, std::move(fn)});
  }

  // --version: prints `line` to stdout and exits kExitOk immediately
  // (later flags are not parsed). Every tool registers the one
  // provenance string obs::tool_version_line builds.
  void version(std::string line) {
    handlers_.push_back(
        {"--version", false, [line](std::string_view) -> bool {
           std::printf("%s\n", line.c_str());
           std::exit(kExitOk);
         }});
  }

  // Non-dash tokens, in order. Return false to reject (e.g. a second
  // positional for a single-circuit tool). Without a handler, any
  // positional is a usage error.
  void positional(std::function<bool(std::string_view)> fn) {
    positional_ = std::move(fn);
  }

  // Prints the usage text and exits with kExitUsage. Public so tools
  // can fail post-parse validation (ranges across several flags) the
  // same way.
  [[noreturn]] void fail() const {
    std::fputs(usage_.c_str(), stderr);
    std::exit(kExitUsage);
  }

  void parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string_view a = argv[i];
      const Handler* h = find(a);
      if (h != nullptr) {
        std::string_view v;
        if (h->takes_value) {
          if (i + 1 >= argc) fail();
          v = argv[++i];
        }
        if (!h->apply(v)) fail();
      } else if (!a.empty() && a[0] == '-') {
        fail();
      } else if (positional_) {
        if (!positional_(a)) fail();
      } else {
        fail();
      }
    }
  }

 private:
  struct Handler {
    std::string name;
    bool takes_value = false;
    std::function<bool(std::string_view)> apply;
  };

  const Handler* find(std::string_view name) const {
    for (const Handler& h : handlers_) {
      if (h.name == name) return &h;
    }
    return nullptr;
  }

  std::string tool_;
  std::string usage_;
  std::vector<Handler> handlers_;
  std::function<bool(std::string_view)> positional_;
};

} // namespace bns::cli
