#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace bns {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
} // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string strformat(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

} // namespace bns
