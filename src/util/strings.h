// Small string utilities shared by the parsers and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bns {

// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

// Splits on `sep`, trimming each piece; empty pieces are kept.
std::vector<std::string_view> split(std::string_view s, char sep);

// Splits on any amount of ASCII whitespace; empty pieces are dropped.
std::vector<std::string_view> split_ws(std::string_view s);

// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

// ASCII upper-casing.
std::string to_upper(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace bns
