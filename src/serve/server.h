// bns_serve's Unix-domain-socket server: accept loop + request workers
// over the existing ThreadPool, JSON-lines framing, graceful drain.
//
// Lifecycle:
//   Server server(opts);
//   server.start();          // bind + listen (throws on socket errors)
//   server.run();            // serves until request_stop(); drains, returns
//
// Drain: request_stop() — or one byte written to notify_fd(), which is
// all an async-signal-safe SIGTERM handler needs — makes the accept
// loop close the listen socket (no new connections), lets every
// in-flight request finish and its response flush, then returns from
// run(). In-flight connections are closed after their buffered requests
// are answered; the daemon never kills a request mid-computation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>

#include "serve/protocol.h"

namespace bns::serve {

struct ServerOptions {
  std::string socket_path;
  // Request workers (concurrent connections served). 0 = the usual
  // thread policy (BNS_THREADS or 1); the accept loop adds one more.
  int threads = 0;
  SessionOptions session;
  obs::Tracer* trace = nullptr;
  // Request-path telemetry hooks (RED metrics, flight recorder); both
  // optional, recording through them is allocation-free.
  ServeTelemetry telemetry;
  // SessionCache capacity (LRU-evicted beyond it); 0 = unbounded.
  int cache_max_entries = 0;
  // Invoked on the accept thread when a 'u' byte arrives on the wake
  // pipe (the async-signal-safe SIGUSR1 path) — bns_serve wires the
  // flight-recorder dump here. Serving continues afterwards.
  std::function<void()> on_dump;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Creates, binds and listens on the Unix socket (removing a stale
  // socket file first). Throws std::runtime_error on failure.
  void start();

  // Serves until a stop is requested; returns once drained. Runs the
  // accept loop and `threads` request workers over one ThreadPool
  // parallel_for, so run() occupies the calling thread.
  void run();

  // Initiates graceful drain. Safe from any thread.
  void request_stop();

  // Bytes written here wake the accept loop — the async-signal-safe
  // path for signal handlers (write(2) is on the safe list). 'u' (or
  // request_dump()) invokes on_dump and keeps serving; anything else
  // ('s' from request_stop(), SIGTERM/SIGINT handlers) initiates drain.
  int notify_fd() const { return wake_fds_[1]; }

  // Invokes on_dump from the accept loop without stopping the server —
  // the in-process equivalent of SIGUSR1. Safe from any thread.
  void request_dump();

  const std::string& socket_path() const { return opts_.socket_path; }
  int num_workers() const { return workers_; }
  SessionCache& cache() { return cache_; }

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);

  ServerOptions opts_;
  SessionCache cache_;
  int workers_ = 1;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1}; // self-pipe: [0] polled, [1] written
  std::atomic<bool> stop_{false};

  std::mutex mu_; // guards queue_/accepting_
  std::condition_variable cv_;
  std::deque<int> queue_; // accepted connection fds awaiting a worker
  bool accepting_ = false; // accept loop still running
};

} // namespace bns::serve
