// bns_serve's Unix-domain-socket server: accept loop + request workers
// over the existing ThreadPool, JSON-lines framing, graceful drain.
//
// Lifecycle:
//   Server server(opts);
//   server.start();          // bind + listen (throws on socket errors)
//   server.run();            // serves until request_stop(); drains, returns
//
// Drain: request_stop() — or one byte written to notify_fd(), which is
// all an async-signal-safe SIGTERM handler needs — makes the accept
// loop close the listen socket (no new connections), lets every
// in-flight request finish and its response flush, then returns from
// run(). In-flight connections are closed after their buffered requests
// are answered; the daemon never kills a request mid-computation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "serve/protocol.h"

namespace bns::serve {

struct ServerOptions {
  std::string socket_path;
  // Request workers (concurrent connections served). 0 = the usual
  // thread policy (BNS_THREADS or 1); the accept loop adds one more.
  int threads = 0;
  SessionOptions session;
  obs::Tracer* trace = nullptr;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Creates, binds and listens on the Unix socket (removing a stale
  // socket file first). Throws std::runtime_error on failure.
  void start();

  // Serves until a stop is requested; returns once drained. Runs the
  // accept loop and `threads` request workers over one ThreadPool
  // parallel_for, so run() occupies the calling thread.
  void run();

  // Initiates graceful drain. Safe from any thread.
  void request_stop();

  // One byte written here also initiates drain — the async-signal-safe
  // path for SIGTERM/SIGINT handlers (write(2) is on the safe list).
  int notify_fd() const { return wake_fds_[1]; }

  const std::string& socket_path() const { return opts_.socket_path; }
  int num_workers() const { return workers_; }

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);

  ServerOptions opts_;
  SessionCache cache_;
  int workers_ = 1;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1}; // self-pipe: [0] polled, [1] written
  std::atomic<bool> stop_{false};

  std::mutex mu_; // guards queue_/accepting_
  std::condition_variable cv_;
  std::deque<int> queue_; // accepted connection fds awaiting a worker
  bool accepting_ = false; // accept loop still running
};

} // namespace bns::serve
