#include "serve/protocol.h"

#include <sys/stat.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "artifact/artifact.h"
#include "obs/exposition.h"
#include "obs/json.h"
#include "obs/report.h"

namespace bns::serve {
namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Whether `model` names a file (the same resolution Session uses:
// these suffixes are read from disk, anything else is a built-in
// benchmark generator). Only file-backed models have an mtime to
// revalidate — and only they can vanish out from under the cache.
bool is_file_backed(const std::string& model) {
  return ends_with(model, ".bnsc") || ends_with(model, ".bench") ||
         ends_with(model, ".blif");
}

// Thrown for any request-shape problem; handle_request turns it into an
// {"ok":false,...} response. The layer below (InputModel, Session)
// enforces its contracts with aborting BNS_EXPECTS, so everything a
// client can influence must be validated *here*, before it crosses.
struct RequestError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

double finite_number(const obs::JsonValue& req, std::string_view key,
                     double dflt) {
  const obs::JsonValue* v = req.find(key);
  if (!v) return dflt;
  if (!v->is_number())
    throw RequestError("\"" + std::string(key) + "\" must be a number");
  const double d = v->as_number();
  if (!std::isfinite(d))
    throw RequestError("\"" + std::string(key) + "\" must be finite");
  return d;
}

int int_field(const obs::JsonValue& req, std::string_view key, int dflt) {
  const double d = finite_number(req, key, dflt);
  const int i = static_cast<int>(d);
  if (static_cast<double>(i) != d)
    throw RequestError("\"" + std::string(key) + "\" must be an integer");
  return i;
}

void check_stats(double p, double rho, std::string_view what) {
  if (p < 0.0 || p > 1.0)
    throw RequestError(std::string(what) + ": p must be in [0, 1]");
  if (rho < rho_min(p) - 1e-12 || rho > 1.0)
    throw RequestError(std::string(what) +
                       ": rho outside the admissible range for this p");
}

// The per-estimate input statistics: either uniform {"p","rho"} or a
// per-input "specs" array (grouping is a compile-time property, so
// requests cannot introduce groups — they supply statistics only).
InputModel model_from_request(const obs::JsonValue& req, int num_inputs) {
  if (const obs::JsonValue* specs = req.find("specs")) {
    if (!specs->is_array())
      throw RequestError("\"specs\" must be an array of {p, rho} objects");
    const obs::JsonArray& arr = specs->as_array();
    if (static_cast<int>(arr.size()) != num_inputs)
      throw RequestError("\"specs\" has " + std::to_string(arr.size()) +
                         " entries; the model has " +
                         std::to_string(num_inputs) + " inputs");
    std::vector<InputSpec> v;
    v.reserve(arr.size());
    for (const obs::JsonValue& e : arr) {
      if (!e.is_object())
        throw RequestError("\"specs\" entries must be objects");
      InputSpec s;
      s.p = finite_number(e, "p", 0.5);
      s.rho = finite_number(e, "rho", 0.0);
      check_stats(s.p, s.rho, "specs");
      v.push_back(s);
    }
    return InputModel::custom(std::move(v));
  }
  const double p = finite_number(req, "p", 0.5);
  const double rho = finite_number(req, "rho", 0.0);
  check_stats(p, rho, "request");
  return InputModel::uniform(num_inputs, p, rho);
}

// A line reference: a JSON number is a NodeId, a string is a line name.
NodeId resolve_node(const obs::JsonValue& req, std::string_view key,
                    const Netlist& nl) {
  const obs::JsonValue* v = req.find(key);
  if (!v) throw RequestError("missing \"" + std::string(key) + "\"");
  if (v->is_string()) {
    const NodeId id = nl.find(v->as_string());
    if (id == kInvalidNode)
      throw RequestError("no line named \"" + v->as_string() + "\"");
    return id;
  }
  if (v->is_number()) {
    const double d = v->as_number();
    const NodeId id = static_cast<NodeId>(d);
    if (static_cast<double>(id) != d || id < 0 || id >= nl.num_nodes())
      throw RequestError("\"" + std::string(key) + "\" out of range");
    return id;
  }
  throw RequestError("\"" + std::string(key) +
                     "\" must be a line name or node id");
}

obs::ServeOp serve_op_from_name(const std::string& op) {
  if (op == "ping") return obs::ServeOp::Ping;
  if (op == "estimate") return obs::ServeOp::Estimate;
  if (op == "sweep") return obs::ServeOp::Sweep;
  if (op == "sweep_chunk") return obs::ServeOp::SweepChunk;
  if (op == "conditional") return obs::ServeOp::Conditional;
  if (op == "stats") return obs::ServeOp::Stats;
  if (op == "metrics") return obs::ServeOp::Metrics;
  return obs::ServeOp::Invalid;
}

std::string error_response(const std::string& op, const std::string& msg) {
  std::string out = "{\"ok\":false";
  if (!op.empty()) {
    out += ",\"op\":";
    obs::json_append_string(out, op);
  }
  out += ",\"error\":";
  obs::json_append_string(out, msg);
  out += "}";
  return out;
}

std::string handle_estimate(const obs::JsonValue& req,
                            SessionCache::Entry& entry) {
  Session& s = entry.session();
  const InputModel model = model_from_request(req, s.netlist().num_inputs());
  const SwitchingEstimate est = s.estimate(model);
  std::string out = "{\"ok\":true,\"op\":\"estimate\"";
  out += ",\"lines\":" + std::to_string(est.dist.size());
  out += ",\"average_activity\":" + obs::json_number(est.average_activity());
  out += ",\"propagate_seconds\":" +
         obs::json_number(est.stats.propagate_seconds);
  out += "}";
  return out;
}

std::string handle_sweep(const obs::JsonValue& req,
                         SessionCache::Entry& entry) {
  Session& s = entry.session();
  LinearSweepSpec spec;
  spec.scenarios = int_field(req, "scenarios", spec.scenarios);
  spec.vary_input = int_field(req, "vary_input", spec.vary_input);
  spec.p_from = finite_number(req, "p_from", spec.p_from);
  spec.p_to = finite_number(req, "p_to", spec.p_to);
  spec.rho = finite_number(req, "rho", spec.rho);
  if (spec.scenarios < 1 || spec.scenarios > 100000)
    throw RequestError("\"scenarios\" must be in [1, 100000]");
  if (spec.vary_input < 0 || spec.vary_input >= s.netlist().num_inputs())
    throw RequestError("\"vary_input\" out of range (" +
                       std::to_string(s.netlist().num_inputs()) + " inputs)");
  check_stats(spec.p_from, spec.rho, "p_from");
  check_stats(spec.p_to, spec.rho, "p_to");

  const std::vector<InputModel> models =
      make_linear_scenarios(spec, s.netlist().num_inputs());
  const SweepResult res = s.sweep(models);

  std::string out = "{\"ok\":true,\"op\":\"sweep\"";
  out += ",\"scenarios\":" + std::to_string(res.stats.scenarios);
  out += ",\"segments_reloaded\":" +
         std::to_string(res.stats.segments_reloaded);
  out += ",\"segments_skipped\":" + std::to_string(res.stats.segments_skipped);
  out += ",\"wall_seconds\":" + obs::json_number(res.wall_seconds);
  out += ",\"records\":[";
  for (std::size_t i = 0; i < res.estimates.size(); ++i) {
    if (i) out += ",";
    out += "{\"scenario\":" + std::to_string(i);
    out += ",\"p\":" + obs::json_number(
                           models[i].spec(spec.vary_input).p);
    out += ",\"average_activity\":" +
           obs::json_number(res.estimates[i].average_activity());
    out += ",\"propagate_seconds\":" +
           obs::json_number(res.estimates[i].stats.propagate_seconds);
    out += "}";
  }
  out += "]}";
  return out;
}

// The coordinator's batch op: one round-trip carries a contiguous
// scenario chunk. `specs` gives the varied input's p per scenario (the
// other inputs sit at {0.5, rho}, exactly the shape make_linear_
// scenarios builds), `scenario_base` is the chunk's absolute position
// in the full grid, and `chunk_id` is echoed so the coordinator can
// match answers to its queue. Records reuse the %.17g formatter, so a
// fan-in that reassembles chunks in scenario order is string-exact
// against a single-process `bns_sweep --json`.
std::string handle_sweep_chunk(const obs::JsonValue& req,
                               SessionCache::Entry& entry) {
  Session& s = entry.session();
  const int num_inputs = s.netlist().num_inputs();
  const int chunk_id = int_field(req, "chunk_id", -1);
  const int base = int_field(req, "scenario_base", 0);
  const int vary_input = int_field(req, "vary_input", 0);
  const double rho = finite_number(req, "rho", 0.0);
  if (chunk_id < 0) throw RequestError("missing \"chunk_id\" (>= 0)");
  if (base < 0) throw RequestError("\"scenario_base\" must be >= 0");
  if (vary_input < 0 || vary_input >= num_inputs)
    throw RequestError("\"vary_input\" out of range (" +
                       std::to_string(num_inputs) + " inputs)");

  const obs::JsonValue* specs = req.find("specs");
  if (!specs || !specs->is_array())
    throw RequestError("missing \"specs\" array of {p} objects");
  const obs::JsonArray& arr = specs->as_array();
  if (arr.empty() || arr.size() > 100000)
    throw RequestError("\"specs\" must carry 1..100000 scenarios");

  std::vector<InputModel> models;
  models.reserve(arr.size());
  for (const obs::JsonValue& e : arr) {
    if (!e.is_object())
      throw RequestError("\"specs\" entries must be {p} objects");
    const double p = finite_number(e, "p", 0.5);
    check_stats(p, rho, "specs");
    std::vector<InputSpec> in(static_cast<std::size_t>(num_inputs),
                              InputSpec{0.5, rho, -1, 0.0});
    in[static_cast<std::size_t>(vary_input)].p = p;
    models.push_back(InputModel::custom(std::move(in)));
  }

  const SweepResult res = s.sweep(models);

  std::string out = "{\"ok\":true,\"op\":\"sweep_chunk\"";
  out += ",\"chunk_id\":" + std::to_string(chunk_id);
  out += ",\"scenario_base\":" + std::to_string(base);
  out += ",\"scenarios\":" + std::to_string(res.stats.scenarios);
  out += ",\"segments_reloaded\":" +
         std::to_string(res.stats.segments_reloaded);
  out += ",\"segments_skipped\":" + std::to_string(res.stats.segments_skipped);
  out += ",\"wall_seconds\":" + obs::json_number(res.wall_seconds);
  out += ",\"records\":[";
  for (std::size_t i = 0; i < res.estimates.size(); ++i) {
    if (i) out += ",";
    out += "{\"scenario\":" + std::to_string(base + static_cast<int>(i));
    out += ",\"p\":" + obs::json_number(models[i].spec(vary_input).p);
    out += ",\"average_activity\":" +
           obs::json_number(res.estimates[i].average_activity());
    out += ",\"propagate_seconds\":" +
           obs::json_number(res.estimates[i].stats.propagate_seconds);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string handle_conditional(const obs::JsonValue& req,
                               SessionCache::Entry& entry) {
  Session& s = entry.session();
  const NodeId target = resolve_node(req, "target", s.netlist());
  const NodeId given = resolve_node(req, "given", s.netlist());
  const int state = int_field(req, "state", -1);
  if (state < 0 || state > 3)
    throw RequestError("\"state\" must be 0 (00), 1 (01), 2 (10) or 3 (11)");
  const InputModel model = model_from_request(req, s.netlist().num_inputs());

  const std::optional<std::array<double, 4>> dist = s.conditional(
      target, given, static_cast<Trans>(state), model);
  if (!dist)
    return error_response(
        "conditional",
        "lines are not modeled in one segment BN (or the evidence has "
        "probability 0)");
  std::string out = "{\"ok\":true,\"op\":\"conditional\",\"dist\":[";
  for (int i = 0; i < 4; ++i) {
    if (i) out += ",";
    out += obs::json_number((*dist)[static_cast<std::size_t>(i)]);
  }
  out += "],\"activity\":" + obs::json_number(activity_of(*dist));
  out += "}";
  return out;
}

std::string handle_stats(SessionCache::Entry& entry,
                         const SessionCache& cache) {
  Session& s = entry.session();
  const CompileStats& cs = s.compile_stats();
  std::string out = "{\"ok\":true,\"op\":\"stats\"";
  out += ",\"schema_version\":" + std::to_string(kServeProtocolVersion);
  out += ",\"uptime_seconds\":" + obs::json_number(cache.uptime_seconds());
  const obs::ReportProvenance prov = obs::default_provenance();
  out += ",\"provenance\":{\"git_describe\":";
  obs::json_append_string(out, prov.git_describe);
  out += ",\"build_type\":";
  obs::json_append_string(out, prov.build_type);
  out += ",\"hostname\":";
  obs::json_append_string(out, prov.hostname);
  out += "}";
  out += ",\"circuit\":";
  obs::json_append_string(out, s.netlist().name());
  out += ",\"nodes\":" + std::to_string(s.netlist().num_nodes());
  out += ",\"inputs\":" + std::to_string(s.netlist().num_inputs());
  out += ",\"segments\":" + std::to_string(cs.num_segments);
  out += ",\"compile_seconds\":" + obs::json_number(cs.compile_seconds);
  out += ",\"total_state_space\":" + obs::json_number(cs.total_state_space);
  if (const ArtifactInfo* info = s.artifact_info()) {
    out += ",\"from_artifact\":true";
    out += ",\"load_seconds\":" + obs::json_number(s.load_seconds());
    out += ",\"artifact_timestamp\":";
    obs::json_append_string(out, info->timestamp_iso8601);
  } else {
    out += ",\"from_artifact\":false";
  }
  out += "}";
  return out;
}

std::string handle_metrics(SessionCache& cache) {
  obs::Tracer* trace = cache.trace();
  const obs::MetricsDocument doc = obs::make_metrics_document(
      cache.telemetry().red, trace ? &trace->metrics() : nullptr,
      cache.uptime_seconds());
  std::string out = "{\"ok\":true,\"op\":\"metrics\",\"metrics\":";
  out += obs::render_metrics_json(doc);
  out += ",\"prometheus\":";
  obs::json_append_string(out, obs::render_metrics_prometheus(doc));
  out += "}";
  return out;
}

} // namespace

std::shared_ptr<SessionCache::Entry> SessionCache::get(
    const std::string& model) {
  // Built-in benchmark names have no backing file (mtime 0, never
  // revalidated). A file-backed model must stat cleanly: a vanished
  // file evicts its stale entry and answers an artifact error instead
  // of serving hits against mtime 0 forever.
  std::int64_t mtime = 0;
  if (is_file_backed(model)) {
    struct stat st{};
    if (::stat(model.c_str(), &st) != 0) {
      const int err = errno;
      bool evicted = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(model);
        if (it != entries_.end()) {
          entries_.erase(it);
          evicted = true;
        }
      }
      if (evicted) cache_event(obs::CacheEvent::Evict);
      throw ArtifactError("model file " + model + " is gone (" +
                          std::strerror(err) +
                          (evicted ? "); cached session evicted" : ")"));
    }
    mtime = static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1'000'000'000 +
            st.st_mtim.tv_nsec;
  }

  // The cache mutex only covers the map: the load itself runs outside
  // it, behind a placeholder entry, so first-touch compiles of
  // different models proceed in parallel while N concurrent requests
  // for one new model still pay exactly one load (later arrivals join
  // the in-flight entry and wait on its load state).
  std::shared_ptr<Entry> entry;
  bool load_here = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(model);
    if (it != entries_.end() && it->second->mtime_ns == mtime) {
      cache_event(obs::CacheEvent::Hit);
      it->second->last_used = ++lru_tick_;
      entry = it->second;
    } else {
      cache_event(it != entries_.end() ? obs::CacheEvent::Revalidate
                                       : obs::CacheEvent::Miss);
      // Respect the capacity before inserting: drop the least-recently-
      // used *other* entry (a revalidation replaces its own slot, so it
      // neither evicts an unrelated entry nor grows the map). In-flight
      // requests keep the evicted session alive via their shared_ptr.
      if (max_entries_ > 0 && it == entries_.end() &&
          static_cast<int>(entries_.size()) >= max_entries_) {
        auto victim = entries_.end();
        for (auto e = entries_.begin(); e != entries_.end(); ++e) {
          if (victim == entries_.end() ||
              e->second->last_used < victim->second->last_used)
            victim = e;
        }
        if (victim != entries_.end()) {
          entries_.erase(victim);
          cache_event(obs::CacheEvent::Evict);
        }
      }
      entry = std::make_shared<Entry>(mtime);
      entry->last_used = ++lru_tick_;
      entries_[model] = entry;
      load_here = true;
    }
  }

  if (load_here) {
    load_into(model, entry);
    return entry;
  }
  // Joined an existing entry; wait out an in-flight first-touch load.
  std::unique_lock<std::mutex> lock(entry->load_mu);
  entry->load_cv.wait(lock,
                      [&entry] { return entry->state != Entry::State::Loading; });
  if (entry->state == Entry::State::Failed)
    throw std::runtime_error(entry->error);
  return entry;
}

void SessionCache::load_into(const std::string& model,
                             const std::shared_ptr<Entry>& entry) {
  try {
    if (load_hook_) load_hook_(model);
    Session session = ends_with(model, ".bnsc")
                          ? Session::open_artifact(model, opts_)
                          : Session::open(model, opts_);
    if (trace_ && ends_with(model, ".bnsc"))
      trace_->count(obs::Counter::ArtifactLoads);
    std::lock_guard<std::mutex> lock(entry->load_mu);
    entry->session_.emplace(std::move(session));
    entry->state = Entry::State::Ready;
    entry->load_cv.notify_all();
  } catch (const std::exception& e) {
    // Un-map first so the failure is never served from cache (the next
    // request retries a fresh load), then wake every waiter with the
    // reason.
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(model);
      if (it != entries_.end() && it->second == entry) entries_.erase(it);
    }
    {
      std::lock_guard<std::mutex> lock(entry->load_mu);
      entry->state = Entry::State::Failed;
      entry->error = e.what();
      entry->load_cv.notify_all();
    }
    throw;
  }
}

std::size_t SessionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string handle_request(std::string_view line, SessionCache& cache) {
  obs::Tracer* trace = cache.trace();
  const std::uint64_t start_ns = cache.now_ns();

  std::string op;
  std::string model;
  std::string response;
  obs::ErrorClass err = obs::ErrorClass::None;

  const std::optional<obs::JsonValue> req = obs::json_parse(line);

  // Resolve the trace id before the request span opens, so the span —
  // and every session.* span beneath it — nests under the right id. A
  // malformed client id is a protocol reject (below), not silently
  // replaced: silent replacement would break the client's correlation.
  std::uint64_t trace_id = 0;
  bool bad_trace_id = false;
  if (req && req->is_object()) {
    if (const obs::JsonValue* tv = req->find("trace_id")) {
      if (tv->is_string()) trace_id = obs::parse_trace_id(tv->as_string());
      bad_trace_id = trace_id == 0;
    }
  }
  if (trace_id == 0) trace_id = obs::generate_trace_id();

  obs::ScopedTraceContext tctx(trace_id);
  {
    obs::Span span(trace, "serve.request");
    if (trace) trace->count(obs::Counter::ServeRequests);

    try {
      if (!req || !req->is_object())
        throw RequestError("request is not a JSON object");
      if (bad_trace_id)
        throw RequestError("\"trace_id\" must be a string of 1-16 hex digits");
      const obs::JsonValue* opv = req->find("op");
      if (!opv || !opv->is_string())
        throw RequestError("missing string \"op\"");
      op = opv->as_string();

      if (op == "ping") {
        response = "{\"ok\":true,\"op\":\"ping\"}";
      } else if (op == "metrics") {
        response = handle_metrics(cache);
      } else if (op == "estimate" || op == "sweep" || op == "sweep_chunk" ||
                 op == "conditional" || op == "stats") {
        const obs::JsonValue* modelv = req->find("model");
        if (!modelv || !modelv->is_string())
          throw RequestError("missing string \"model\"");
        model = modelv->as_string();
        std::shared_ptr<SessionCache::Entry> entry = cache.get(model);
        std::lock_guard<std::mutex> lock(entry->mu);
        if (op == "estimate") {
          response = handle_estimate(*req, *entry);
        } else if (op == "sweep") {
          response = handle_sweep(*req, *entry);
        } else if (op == "sweep_chunk") {
          response = handle_sweep_chunk(*req, *entry);
        } else if (op == "conditional") {
          response = handle_conditional(*req, *entry);
        } else {
          response = handle_stats(*entry, cache);
        }
      } else {
        throw RequestError("unknown op \"" + op + "\"");
      }
    } catch (const RequestError& e) {
      err = obs::ErrorClass::Protocol;
      response = error_response(op, e.what());
    } catch (const ArtifactError& e) {
      err = obs::ErrorClass::Artifact;
      response = error_response(op, e.what());
    } catch (const std::exception& e) {
      err = obs::ErrorClass::Internal;
      response = error_response(op, e.what());
    }
  }

  // Semantic rejects that answer {"ok":false,...} without throwing
  // (e.g. conditional's cross-segment case) still count as errors.
  if (err == obs::ErrorClass::None &&
      response.compare(0, 11, "{\"ok\":false") == 0)
    err = obs::ErrorClass::Protocol;

  // Every response is one JSON object; echo the trace id as its last
  // member by splicing before the closing brace.
  char hex[17];
  obs::format_trace_id(trace_id, hex);
  response.insert(response.size() - 1,
                  ",\"trace_id\":\"" + std::string(hex) + "\"");

  const std::uint64_t dur_ns = cache.now_ns() - start_ns;
  const obs::ServeOp sop = serve_op_from_name(op);
  const ServeTelemetry& telemetry = cache.telemetry();
  if (telemetry.red) telemetry.red->record(sop, err, dur_ns);
  if (telemetry.recorder)
    telemetry.recorder->record(sop, err, trace_id, model, start_ns, dur_ns);
  if (trace && err != obs::ErrorClass::None)
    trace->count(obs::Counter::ServeErrors);
  return response;
}

} // namespace bns::serve
