#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/thread_pool.h"

namespace bns::serve {
namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

// send() with MSG_NOSIGNAL so a client that hung up mid-response costs
// an EPIPE return, not a process-killing SIGPIPE.
bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

} // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.session, opts_.trace, opts_.telemetry,
             opts_.cache_max_entries) {
  workers_ = ThreadPool::resolve_threads(opts_.threads);
}

Server::~Server() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(opts_.socket_path.c_str());
  }
  for (int fd : wake_fds_)
    if (fd >= 0) ::close(fd);
}

void Server::start() {
  if (opts_.socket_path.empty())
    throw std::runtime_error("serve: empty socket path");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("serve: socket path too long: " +
                             opts_.socket_path);
  std::strncpy(addr.sun_path, opts_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  if (::pipe(wake_fds_) != 0) sys_fail("serve: pipe");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) sys_fail("serve: socket");
  ::unlink(opts_.socket_path.c_str()); // stale socket from a dead daemon
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    sys_fail("serve: bind " + opts_.socket_path);
  if (::listen(listen_fd_, 64) != 0) sys_fail("serve: listen");
}

void Server::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  const char b = 's';
  // Best-effort: the pipe being full already means a wake-up is pending.
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &b, 1);
}

void Server::request_dump() {
  const char b = 'u';
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &b, 1);
}

void Server::run() {
  if (listen_fd_ < 0) throw std::runtime_error("serve: run() before start()");
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = true;
  }
  // Index 0 is the accept loop; 1..workers_ serve connections. The pool
  // sizes itself so all indices run concurrently (parallel_for blocks
  // until the accept loop exits and the workers drain the queue — which
  // is exactly the drain barrier run() wants).
  ThreadPool pool(workers_ + 1);
  pool.parallel_for(workers_ + 1, [this](int i) {
    if (i == 0) {
      accept_loop();
    } else {
      worker_loop();
    }
  });
}

void Server::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) {
      // Drain the wake byte to tell a dump request ('u', SIGUSR1's
      // marker) from a stop ('s' or a failed read — fail safe toward
      // draining). The dump runs on this thread: it may allocate and
      // write a file, but it never blocks request workers.
      char b = 's';
      const ssize_t nread = ::read(wake_fds_[0], &b, 1);
      if (nread != 1 || b != 'u') {
        // Also raise the stop flag for the signal-handler path (which
        // writes the byte directly), so in-flight idle connections see
        // the drain instead of waiting for their client to hang up.
        stop_.store(true, std::memory_order_relaxed);
        break;
      }
      if (opts_.on_dump) opts_.on_dump();
      continue;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    if (opts_.trace) opts_.trace->count(obs::Counter::ServeConnections);
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(conn);
    }
    cv_.notify_one();
  }
  // Drain starts: no new connections, wake every worker so the ones
  // idling on the queue can exit once it is empty.
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(opts_.socket_path.c_str());
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
  }
  cv_.notify_all();
}

void Server::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !queue_.empty() || !accepting_; });
      if (queue_.empty()) {
        if (!accepting_) return; // drained
        continue;
      }
      fd = queue_.front();
      queue_.pop_front();
    }
    serve_connection(fd);
  }
}

void Server::serve_connection(int fd) {
  std::string buf;
  char chunk[4096];
  for (;;) {
    // A finite poll keeps drain bounded: once stop is requested, a
    // connection that has no request in flight is closed instead of
    // waiting forever for its next line.
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) {
      if (stop_.load(std::memory_order_relaxed)) break;
      continue;
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n == 0) break; // client closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    buf.append(chunk, static_cast<std::size_t>(n));

    // Answer every complete line; keep the trailing partial (if any).
    std::size_t start = 0;
    bool client_gone = false;
    for (std::size_t nl = buf.find('\n', start); nl != std::string::npos;
         nl = buf.find('\n', start)) {
      std::string_view line(buf.data() + start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      const std::string response = handle_request(line, cache_);
      if (!write_all(fd, response) || !write_all(fd, "\n")) {
        client_gone = true;
        break;
      }
    }
    buf.erase(0, start);
    if (client_gone) break;
    // Oversized garbage with no newline: cap the buffer so a malicious
    // client cannot balloon the daemon; 16 MiB is far beyond any
    // legitimate request.
    if (buf.size() > (16u << 20)) break;
  }
  ::close(fd);
}

} // namespace bns::serve
