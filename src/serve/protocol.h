// The bns_serve request protocol, factored apart from the socket
// plumbing so it is testable in-process: one JSON request line in, one
// JSON response line out.
//
// Requests are JSON objects with an "op" member:
//   {"op":"ping"}
//   {"op":"estimate","model":"c432.bnsc","p":0.3,"rho":0.1}
//   {"op":"estimate","model":"c432.bnsc","specs":[{"p":0.2},{"p":0.7}, ...]}
//   {"op":"sweep","model":"...","scenarios":8,"vary_input":0,
//    "p_from":0.1,"p_to":0.9,"rho":0}
//   {"op":"sweep_chunk","model":"...","chunk_id":3,"scenario_base":12,
//    "vary_input":0,"rho":0,"specs":[{"p":0.35},{"p":0.4}, ...]}
//   {"op":"conditional","model":"...","target":"G370","given":"G430",
//    "state":1,"p":0.5,"rho":0}
//   {"op":"stats","model":"..."}
//   {"op":"metrics"}
// `model` is a .bnsc artifact path, a .bench/.blif path, or a built-in
// benchmark name — the same resolution every tool uses (Session).
//
// Responses always carry "ok": true/false; errors add "error" with a
// one-line reason. Numbers are formatted with obs::json_number (%.17g),
// the exact formatter bns_sweep's JSON uses, so a jq comparison of
// daemon answers against in-process runs is string-exact.
//
// Tracing: any request may carry "trace_id" (1-16 hex digits); the
// daemon generates one otherwise. Every response echoes the resolved id
// as exactly 16 hex digits, and the request's serve.request span — plus
// the session.* spans beneath it — records the same id, so a client can
// correlate its answer with the daemon's span stream.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "obs/recorder.h"
#include "obs/trace.h"
#include "session/session.h"

namespace bns::serve {

// Version of the serve protocol envelope (the stats op reports it).
// Bump on any response-key rename/removal or semantic change; additions
// are backward compatible.
inline constexpr int kServeProtocolVersion = 1;

// Optional telemetry hooks threaded through the request path. Both
// pointers are non-owning and may be null (recording is skipped);
// recording through them is allocation-free, so they can stay wired at
// Counters-level telemetry in steady state.
struct ServeTelemetry {
  obs::ServeMetrics* red = nullptr;       // per-op RED + cache events
  obs::FlightRecorder* recorder = nullptr; // last-N request summaries
};

// Open sessions keyed by model path, revalidated by file mtime: a
// recompiled artifact (or edited circuit file) is picked up on the next
// request touching it, with no daemon restart. Thread-safe. Loads run
// OUTSIDE the cache mutex: concurrent first-touches of *different*
// models compile/load genuinely in parallel (the map only holds a
// placeholder entry while a load is in flight), concurrent first-
// touches of the *same* model dedupe onto one load (later arrivals
// block until it is ready), and requests for one loaded model
// serialize on the entry lock (Session queries mutate engine state).
//
// A model whose backing file (.bnsc / .bench / .blif) has vanished is
// evicted and the request is answered with an artifact error — a stale
// session never keeps serving hits for a deleted file. Built-in
// benchmark names have no backing file and never revalidate.
//
// Every lookup outcome is counted through the telemetry hooks: Hit
// (cached, mtime unchanged — including a lookup that joined an
// in-flight load), Miss (first load), Revalidate (mtime changed,
// reloaded), Evict (LRU capacity drop when max_entries > 0, or a
// vanished backing file).
class SessionCache {
 public:
  explicit SessionCache(SessionOptions opts = {},
                        obs::Tracer* trace = nullptr,
                        ServeTelemetry telemetry = {}, int max_entries = 0)
      : opts_(std::move(opts)),
        trace_(trace),
        telemetry_(telemetry),
        max_entries_(max_entries),
        start_(std::chrono::steady_clock::now()) {}

  struct Entry {
    explicit Entry(std::int64_t mtime) noexcept : mtime_ns(mtime) {}

    // The loaded session. Only valid on entries returned by get(),
    // which never hands out an entry still loading (or failed).
    Session& session() { return *session_; }

    std::mutex mu; // serializes queries against this session
    const std::int64_t mtime_ns; // at load time; rechecked every lookup

   private:
    friend class SessionCache;
    enum class State { Loading, Ready, Failed };

    std::mutex load_mu;          // guards state/error/session_ setup
    std::condition_variable load_cv;
    State state = State::Loading;
    std::string error;           // Failed: what the load threw
    std::optional<Session> session_;
    std::uint64_t last_used = 0; // LRU tick, guarded by the cache mutex
  };

  // The cached session for `model`, (re)opened on first use or when the
  // file's mtime changed. Throws on load/compile failure (including
  // ArtifactError for a model file deleted after caching — the stale
  // entry is evicted first).
  std::shared_ptr<Entry> get(const std::string& model);

  obs::Tracer* trace() const { return trace_; }
  const ServeTelemetry& telemetry() const { return telemetry_; }
  int max_entries() const { return max_entries_; }
  std::size_t size() const;

  // Test-only: invoked (outside every cache lock) with the model name
  // while its session load is in flight, so tests can stall one
  // model's first-touch and prove other models proceed in parallel.
  void set_load_hook(std::function<void(const std::string&)> hook) {
    load_hook_ = std::move(hook);
  }

  // Monotonic nanoseconds / seconds since this cache was constructed —
  // the daemon's uptime reference for the stats and metrics ops, and
  // the start_ns origin for recorder entries.
  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  double uptime_seconds() const {
    return static_cast<double>(now_ns()) * 1e-9;
  }

 private:
  void cache_event(obs::CacheEvent e) {
    if (telemetry_.red) telemetry_.red->cache_event(e);
  }

  // Loads `model` into `entry` outside every cache lock, publishes the
  // result through the entry's load state, and un-maps the entry on
  // failure (so a failed load is retried fresh, never cached).
  void load_into(const std::string& model, const std::shared_ptr<Entry>& entry);

  mutable std::mutex mu_; // guards entries_ (not the sessions themselves)
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  SessionOptions opts_;
  obs::Tracer* trace_;
  ServeTelemetry telemetry_;
  int max_entries_ = 0;      // 0 = unbounded
  std::uint64_t lru_tick_ = 0; // guarded by mu_
  std::chrono::steady_clock::time_point start_;
  std::function<void(const std::string&)> load_hook_; // test-only
};

// Handles one request line and returns the response line (no trailing
// newline). Never throws: every failure — unparseable JSON, unknown op,
// missing model, load errors — becomes {"ok":false,"error":...}, so one
// bad client cannot take the daemon down.
std::string handle_request(std::string_view line, SessionCache& cache);

} // namespace bns::serve
