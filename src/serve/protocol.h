// The bns_serve request protocol, factored apart from the socket
// plumbing so it is testable in-process: one JSON request line in, one
// JSON response line out.
//
// Requests are JSON objects with an "op" member:
//   {"op":"ping"}
//   {"op":"estimate","model":"c432.bnsc","p":0.3,"rho":0.1}
//   {"op":"estimate","model":"c432.bnsc","specs":[{"p":0.2},{"p":0.7}, ...]}
//   {"op":"sweep","model":"...","scenarios":8,"vary_input":0,
//    "p_from":0.1,"p_to":0.9,"rho":0}
//   {"op":"conditional","model":"...","target":"G370","given":"G430",
//    "state":1,"p":0.5,"rho":0}
//   {"op":"stats","model":"..."}
// `model` is a .bnsc artifact path, a .bench/.blif path, or a built-in
// benchmark name — the same resolution every tool uses (Session).
//
// Responses always carry "ok": true/false; errors add "error" with a
// one-line reason. Numbers are formatted with obs::json_number (%.17g),
// the exact formatter bns_sweep's JSON uses, so a jq comparison of
// daemon answers against in-process runs is string-exact.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/trace.h"
#include "session/session.h"

namespace bns::serve {

// Open sessions keyed by model path, revalidated by file mtime: a
// recompiled artifact (or edited circuit file) is picked up on the next
// request touching it, with no daemon restart. Thread-safe; concurrent
// requests for different models load/query in parallel, requests for
// the same model serialize on the entry lock (Session queries mutate
// engine state).
class SessionCache {
 public:
  explicit SessionCache(SessionOptions opts = {},
                        obs::Tracer* trace = nullptr)
      : opts_(std::move(opts)), trace_(trace) {}

  struct Entry {
    Entry(Session s, std::int64_t mtime) noexcept
        : session(std::move(s)), mtime_ns(mtime) {}
    std::mutex mu; // serializes queries against this session
    Session session;
    std::int64_t mtime_ns = 0;
  };

  // The cached session for `model`, (re)opened on first use or when the
  // file's mtime changed. Throws on load/compile failure.
  std::shared_ptr<Entry> get(const std::string& model);

  obs::Tracer* trace() const { return trace_; }

 private:
  std::mutex mu_; // guards entries_ (not the sessions themselves)
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  SessionOptions opts_;
  obs::Tracer* trace_;
};

// Handles one request line and returns the response line (no trailing
// newline). Never throws: every failure — unparseable JSON, unknown op,
// missing model, load errors — becomes {"ok":false,"error":...}, so one
// bad client cannot take the daemon down.
std::string handle_request(std::string_view line, SessionCache& cache);

} // namespace bns::serve
