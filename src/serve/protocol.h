// The bns_serve request protocol, factored apart from the socket
// plumbing so it is testable in-process: one JSON request line in, one
// JSON response line out.
//
// Requests are JSON objects with an "op" member:
//   {"op":"ping"}
//   {"op":"estimate","model":"c432.bnsc","p":0.3,"rho":0.1}
//   {"op":"estimate","model":"c432.bnsc","specs":[{"p":0.2},{"p":0.7}, ...]}
//   {"op":"sweep","model":"...","scenarios":8,"vary_input":0,
//    "p_from":0.1,"p_to":0.9,"rho":0}
//   {"op":"conditional","model":"...","target":"G370","given":"G430",
//    "state":1,"p":0.5,"rho":0}
//   {"op":"stats","model":"..."}
//   {"op":"metrics"}
// `model` is a .bnsc artifact path, a .bench/.blif path, or a built-in
// benchmark name — the same resolution every tool uses (Session).
//
// Responses always carry "ok": true/false; errors add "error" with a
// one-line reason. Numbers are formatted with obs::json_number (%.17g),
// the exact formatter bns_sweep's JSON uses, so a jq comparison of
// daemon answers against in-process runs is string-exact.
//
// Tracing: any request may carry "trace_id" (1-16 hex digits); the
// daemon generates one otherwise. Every response echoes the resolved id
// as exactly 16 hex digits, and the request's serve.request span — plus
// the session.* spans beneath it — records the same id, so a client can
// correlate its answer with the daemon's span stream.
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/recorder.h"
#include "obs/trace.h"
#include "session/session.h"

namespace bns::serve {

// Version of the serve protocol envelope (the stats op reports it).
// Bump on any response-key rename/removal or semantic change; additions
// are backward compatible.
inline constexpr int kServeProtocolVersion = 1;

// Optional telemetry hooks threaded through the request path. Both
// pointers are non-owning and may be null (recording is skipped);
// recording through them is allocation-free, so they can stay wired at
// Counters-level telemetry in steady state.
struct ServeTelemetry {
  obs::ServeMetrics* red = nullptr;       // per-op RED + cache events
  obs::FlightRecorder* recorder = nullptr; // last-N request summaries
};

// Open sessions keyed by model path, revalidated by file mtime: a
// recompiled artifact (or edited circuit file) is picked up on the next
// request touching it, with no daemon restart. Thread-safe; concurrent
// requests for different models load/query in parallel, requests for
// the same model serialize on the entry lock (Session queries mutate
// engine state).
//
// Every lookup outcome is counted through the telemetry hooks: Hit
// (cached, mtime unchanged), Miss (first load), Revalidate (mtime
// changed, reloaded), Evict (LRU capacity drop when max_entries > 0).
class SessionCache {
 public:
  explicit SessionCache(SessionOptions opts = {},
                        obs::Tracer* trace = nullptr,
                        ServeTelemetry telemetry = {}, int max_entries = 0)
      : opts_(std::move(opts)),
        trace_(trace),
        telemetry_(telemetry),
        max_entries_(max_entries),
        start_(std::chrono::steady_clock::now()) {}

  struct Entry {
    Entry(Session s, std::int64_t mtime) noexcept
        : session(std::move(s)), mtime_ns(mtime) {}
    std::mutex mu; // serializes queries against this session
    Session session;
    std::int64_t mtime_ns = 0;
    std::uint64_t last_used = 0; // LRU tick, guarded by the cache mutex
  };

  // The cached session for `model`, (re)opened on first use or when the
  // file's mtime changed. Throws on load/compile failure.
  std::shared_ptr<Entry> get(const std::string& model);

  obs::Tracer* trace() const { return trace_; }
  const ServeTelemetry& telemetry() const { return telemetry_; }
  int max_entries() const { return max_entries_; }
  std::size_t size() const;

  // Monotonic nanoseconds / seconds since this cache was constructed —
  // the daemon's uptime reference for the stats and metrics ops, and
  // the start_ns origin for recorder entries.
  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  double uptime_seconds() const {
    return static_cast<double>(now_ns()) * 1e-9;
  }

 private:
  void cache_event(obs::CacheEvent e) {
    if (telemetry_.red) telemetry_.red->cache_event(e);
  }

  mutable std::mutex mu_; // guards entries_ (not the sessions themselves)
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  SessionOptions opts_;
  obs::Tracer* trace_;
  ServeTelemetry telemetry_;
  int max_entries_ = 0;      // 0 = unbounded
  std::uint64_t lru_tick_ = 0; // guarded by mu_
  std::chrono::steady_clock::time_point start_;
};

// Handles one request line and returns the response line (no trailing
// newline). Never throws: every failure — unparseable JSON, unknown op,
// missing model, load errors — becomes {"ok":false,"error":...}, so one
// bad client cannot take the daemon down.
std::string handle_request(std::string_view line, SessionCache& cache);

} // namespace bns::serve
