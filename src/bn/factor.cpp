#include "bn/factor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.h"

namespace bns {
namespace {

// Hard cap on factor size: 2^28 doubles = 2 GiB is far beyond anything a
// sane compilation should produce; hitting this indicates a missing
// segmentation/decomposition step, so fail loudly.
constexpr std::size_t kMaxFactorSize = std::size_t{1} << 28;

std::size_t checked_size(std::span<const int> cards) {
  std::size_t n = 1;
  for (int c : cards) {
    BNS_EXPECTS(c >= 1);
    BNS_EXPECTS_MSG(n <= kMaxFactorSize / static_cast<std::size_t>(c),
                    "factor size overflow — clique too large");
    n *= static_cast<std::size_t>(c);
  }
  return n;
}

// Walks `outer` (a mixed-radix counter over scope/cards) while keeping a
// linear offset into another factor in sync.
class SyncedCounter {
 public:
  SyncedCounter(std::span<const int> cards, std::vector<std::size_t> strides)
      : cards_(cards.begin(), cards.end()),
        strides_(std::move(strides)),
        state_(cards.size(), 0) {}

  std::size_t offset() const { return offset_; }

  void advance() {
    for (std::size_t k = 0; k < cards_.size(); ++k) {
      if (++state_[k] < cards_[k]) {
        offset_ += strides_[k];
        return;
      }
      state_[k] = 0;
      offset_ -= strides_[k] * static_cast<std::size_t>(cards_[k] - 1);
    }
  }

 private:
  std::vector<int> cards_;
  std::vector<std::size_t> strides_;
  std::vector<int> state_;
  std::size_t offset_ = 0;
};

// The stack-resident mixed-radix counter of a ScopeMap walk. Factor
// scopes are bounded far below this (kMaxFactorSize caps the table at
// 2^28 entries), so a fixed array avoids heap traffic in the hot loops.
constexpr std::size_t kMaxAxes = 64;

} // namespace

ScopeMap make_scope_map(std::span<const VarId> super_vars,
                        std::span<const int> super_cards,
                        std::span<const VarId> sub_vars,
                        std::span<const int> sub_cards) {
  BNS_EXPECTS(super_vars.size() == super_cards.size());
  BNS_EXPECTS(sub_vars.size() == sub_cards.size());
  // Sub strides within the sub table (sub scope is sorted, first fastest).
  std::vector<std::size_t> sub_stride(sub_vars.size());
  std::size_t s = 1;
  for (std::size_t j = 0; j < sub_vars.size(); ++j) {
    sub_stride[j] = s;
    s *= static_cast<std::size_t>(sub_cards[j]);
  }

  ScopeMap m;
  std::size_t matched = 0;
  bool leading = true;
  for (std::size_t k = 0; k < super_vars.size(); ++k) {
    m.size *= static_cast<std::size_t>(super_cards[k]);
    const auto it =
        std::lower_bound(sub_vars.begin(), sub_vars.end(), super_vars[k]);
    const bool present = it != sub_vars.end() && *it == super_vars[k];
    std::size_t stride = 0;
    if (present) {
      const std::size_t j = static_cast<std::size_t>(it - sub_vars.begin());
      BNS_EXPECTS_MSG(sub_cards[j] == super_cards[k],
                      "scope map: cardinality mismatch for shared variable");
      stride = sub_stride[j];
      ++matched;
    }
    if (leading && !present) {
      m.run *= static_cast<std::size_t>(super_cards[k]);
      continue;
    }
    leading = false;
    m.cards.push_back(super_cards[k]);
    m.strides.push_back(stride);
  }
  BNS_EXPECTS_MSG(matched == sub_vars.size(),
                  "scope map: sub scope not a subset of super scope");
  BNS_EXPECTS(m.cards.size() <= kMaxAxes);
  m.unique_offsets =
      std::find(m.strides.begin(), m.strides.end(), 0) == m.strides.end();
  return m;
}

namespace {

// Stack-resident walk state over a ScopeMap: the vectors' data pointers
// are hoisted into locals once so the hot loops never re-read them
// through the map object between stores. The first mapped axis (which
// is always present — leading absent axes were collapsed into `run`)
// is driven by a dedicated inner loop in each kernel, so the counter
// only advances once per c0-sized block rather than once per run.
struct MapWalk {
  const int* cards;
  const std::size_t* strides;
  std::size_t axes;
  std::size_t off = 0;
  int state[kMaxAxes] = {0};

  explicit MapWalk(const ScopeMap& m)
      : cards(m.cards.data()), strides(m.strides.data()),
        axes(m.cards.size()) {}

  // Advances axes 1.. by one step (axis 0 is the kernels' inner loop).
  inline void bump() {
    for (std::size_t a = 1; a < axes; ++a) {
      if (++state[a] < cards[a]) {
        off += strides[a];
        return;
      }
      state[a] = 0;
      off -= strides[a] * static_cast<std::size_t>(cards[a] - 1);
    }
  }
};

} // namespace

void marginalize_into(const ScopeMap& m, const double* super, double* sub) {
  const std::size_t n = m.size;
  const std::size_t run = m.run;
  if (m.cards.empty()) {
    // Sub scope absent entirely: one contiguous sum. The register
    // accumulator preserves the element-wise addition order because the
    // destination slot starts at zero.
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k) acc += super[k];
    sub[0] += acc;
    return;
  }
  MapWalk w(m);
  const std::size_t c0 = static_cast<std::size_t>(w.cards[0]);
  const std::size_t s0 = w.strides[0];
  const std::size_t block = run * c0;
  if (run == 1) {
    for (std::size_t base = 0; base < n; base += block) {
      const double* p = super + base;
      std::size_t off = w.off;
      for (std::size_t j = 0; j < c0; ++j, off += s0) sub[off] += p[j];
      w.bump();
    }
  } else if (m.unique_offsets) {
    // Each sub slot is written by exactly one contiguous block: summing
    // the block into a register first keeps the same addition order
    // (the slot starts at 0) while doing a single store per slot.
    for (std::size_t base = 0; base < n; base += block) {
      const double* p = super + base;
      std::size_t off = w.off;
      for (std::size_t j = 0; j < c0; ++j, p += run, off += s0) {
        double acc = 0.0;
        for (std::size_t k = 0; k < run; ++k) acc += p[k];
        sub[off] += acc;
      }
      w.bump();
    }
  } else {
    for (std::size_t base = 0; base < n; base += block) {
      const double* p = super + base;
      std::size_t off = w.off;
      for (std::size_t j = 0; j < c0; ++j, p += run, off += s0) {
        for (std::size_t k = 0; k < run; ++k) sub[off] += p[k];
      }
      w.bump();
    }
  }
}

void multiply_map_in(const ScopeMap& m, const double* sub, double* super) {
  const std::size_t n = m.size;
  const std::size_t run = m.run;
  if (m.cards.empty()) {
    const double v = sub[0];
    for (std::size_t k = 0; k < n; ++k) super[k] *= v;
    return;
  }
  MapWalk w(m);
  const std::size_t c0 = static_cast<std::size_t>(w.cards[0]);
  const std::size_t s0 = w.strides[0];
  const std::size_t block = run * c0;
  if (run == 1) {
    for (std::size_t base = 0; base < n; base += block) {
      double* p = super + base;
      std::size_t off = w.off;
      for (std::size_t j = 0; j < c0; ++j, off += s0) p[j] *= sub[off];
      w.bump();
    }
    return;
  }
  for (std::size_t base = 0; base < n; base += block) {
    double* p = super + base;
    std::size_t off = w.off;
    for (std::size_t j = 0; j < c0; ++j, p += run, off += s0) {
      const double v = sub[off];
      for (std::size_t k = 0; k < run; ++k) p[k] *= v;
    }
    w.bump();
  }
}

void assign_map_in(const ScopeMap& m, const double* sub, double* super) {
  const std::size_t n = m.size;
  const std::size_t run = m.run;
  if (m.cards.empty()) {
    const double v = sub[0];
    for (std::size_t k = 0; k < n; ++k) super[k] = v;
    return;
  }
  MapWalk w(m);
  const std::size_t c0 = static_cast<std::size_t>(w.cards[0]);
  const std::size_t s0 = w.strides[0];
  const std::size_t block = run * c0;
  for (std::size_t base = 0; base < n; base += block) {
    double* p = super + base;
    std::size_t off = w.off;
    for (std::size_t j = 0; j < c0; ++j, p += run, off += s0) {
      const double v = sub[off];
      for (std::size_t k = 0; k < run; ++k) p[k] = v;
    }
    w.bump();
  }
}

void divide_map_in(const ScopeMap& m, const double* sub, double* super) {
  const std::size_t n = m.size;
  const std::size_t run = m.run;
  if (m.cards.empty()) {
    const double denom = sub[0];
    for (std::size_t k = 0; k < n; ++k) {
      if (denom == 0.0) {
        BNS_ASSERT_MSG(super[k] == 0.0, "divide_in: x/0 with x != 0");
        super[k] = 0.0;
      } else {
        super[k] /= denom;
      }
    }
    return;
  }
  MapWalk w(m);
  const std::size_t c0 = static_cast<std::size_t>(w.cards[0]);
  const std::size_t s0 = w.strides[0];
  const std::size_t block = run * c0;
  for (std::size_t base = 0; base < n; base += block) {
    double* p = super + base;
    std::size_t off = w.off;
    for (std::size_t j = 0; j < c0; ++j, p += run, off += s0) {
      const double denom = sub[off];
      if (denom == 0.0) {
        for (std::size_t k = 0; k < run; ++k) {
          BNS_ASSERT_MSG(p[k] == 0.0, "divide_in: x/0 with x != 0");
          p[k] = 0.0;
        }
      } else {
        for (std::size_t k = 0; k < run; ++k) p[k] /= denom;
      }
    }
    w.bump();
  }
}

std::vector<std::size_t> strides_in(const Factor& f,
                                    std::span<const VarId> scope_vars) {
  std::vector<std::size_t> out(scope_vars.size(), 0);
  const auto& fv = f.vars();
  const auto& fc = f.cards();
  for (std::size_t k = 0; k < scope_vars.size(); ++k) {
    std::size_t stride = 1;
    for (std::size_t j = 0; j < fv.size(); ++j) {
      if (fv[j] == scope_vars[k]) {
        out[k] = stride;
        break;
      }
      stride *= static_cast<std::size_t>(fc[j]);
    }
  }
  return out;
}

Factor::Factor() : values_(1, 1.0) {}

Factor::Factor(std::vector<VarId> vars, std::vector<int> cards)
    : vars_(std::move(vars)), cards_(std::move(cards)) {
  BNS_EXPECTS(vars_.size() == cards_.size());
  BNS_EXPECTS_MSG(std::is_sorted(vars_.begin(), vars_.end()) &&
                      std::adjacent_find(vars_.begin(), vars_.end()) ==
                          vars_.end(),
                  "scope must be strictly ascending");
  values_.assign(checked_size(cards_), 0.0);
}

Factor Factor::scalar(double v) {
  Factor f;
  f.values_[0] = v;
  return f;
}

Factor Factor::uniform(std::vector<VarId> vars, std::vector<int> cards) {
  Factor f(std::move(vars), std::move(cards));
  const double v = 1.0 / static_cast<double>(f.size());
  std::fill(f.values_.begin(), f.values_.end(), v);
  return f;
}

bool Factor::contains(VarId v) const {
  return std::binary_search(vars_.begin(), vars_.end(), v);
}

int Factor::card_of(VarId v) const {
  const auto it = std::lower_bound(vars_.begin(), vars_.end(), v);
  BNS_EXPECTS(it != vars_.end() && *it == v);
  return cards_[static_cast<std::size_t>(it - vars_.begin())];
}

std::size_t Factor::index_of(std::span<const int> states) const {
  BNS_EXPECTS(states.size() == vars_.size());
  std::size_t idx = 0;
  std::size_t stride = 1;
  for (std::size_t k = 0; k < vars_.size(); ++k) {
    BNS_EXPECTS(states[k] >= 0 && states[k] < cards_[k]);
    idx += static_cast<std::size_t>(states[k]) * stride;
    stride *= static_cast<std::size_t>(cards_[k]);
  }
  return idx;
}

void Factor::states_of(std::size_t idx, std::span<int> states) const {
  BNS_EXPECTS(states.size() == vars_.size());
  BNS_EXPECTS(idx < size());
  for (std::size_t k = 0; k < vars_.size(); ++k) {
    states[k] = static_cast<int>(idx % static_cast<std::size_t>(cards_[k]));
    idx /= static_cast<std::size_t>(cards_[k]);
  }
}

double Factor::at(std::span<const int> states) const {
  return values_[index_of(states)];
}

double& Factor::at(std::span<const int> states) {
  return values_[index_of(states)];
}

Factor Factor::product(const Factor& other) const {
  // Union scope (both inputs are sorted).
  std::vector<VarId> uvars;
  std::vector<int> ucards;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < vars_.size() || j < other.vars_.size()) {
    if (j == other.vars_.size() ||
        (i < vars_.size() && vars_[i] < other.vars_[j])) {
      uvars.push_back(vars_[i]);
      ucards.push_back(cards_[i]);
      ++i;
    } else if (i == vars_.size() || other.vars_[j] < vars_[i]) {
      uvars.push_back(other.vars_[j]);
      ucards.push_back(other.cards_[j]);
      ++j;
    } else {
      BNS_EXPECTS_MSG(cards_[i] == other.cards_[j],
                      "cardinality mismatch for shared variable");
      uvars.push_back(vars_[i]);
      ucards.push_back(cards_[i]);
      ++i;
      ++j;
    }
  }

  Factor out(std::move(uvars), std::move(ucards));
  SyncedCounter ca(out.cards_, strides_in(*this, out.vars_));
  SyncedCounter cb(out.cards_, strides_in(other, out.vars_));
  for (std::size_t idx = 0; idx < out.size(); ++idx) {
    out.values_[idx] = values_[ca.offset()] * other.values_[cb.offset()];
    ca.advance();
    cb.advance();
  }
  return out;
}

void Factor::multiply_in(const Factor& other) {
  for (VarId v : other.vars_) {
    BNS_EXPECTS_MSG(contains(v), "multiply_in: scope not a subset");
  }
  const ScopeMap m = make_scope_map(vars_, cards_, other.vars_, other.cards_);
  multiply_map_in(m, other.values_.data(), values_.data());
}

void Factor::divide_in(const Factor& other) {
  for (VarId v : other.vars_) {
    BNS_EXPECTS_MSG(contains(v), "divide_in: scope not a subset");
  }
  const ScopeMap m = make_scope_map(vars_, cards_, other.vars_, other.cards_);
  divide_map_in(m, other.values_.data(), values_.data());
}

Factor Factor::marginal(std::span<const VarId> keep) const {
  std::vector<VarId> kvars(keep.begin(), keep.end());
  std::vector<int> kcards;
  kcards.reserve(kvars.size());
  for (VarId v : kvars) kcards.push_back(card_of(v));

  Factor out(std::move(kvars), std::move(kcards));
  const ScopeMap m = make_scope_map(vars_, cards_, out.vars_, out.cards_);
  marginalize_into(m, values_.data(), out.values_.data());
  return out;
}

Factor Factor::sum_out(VarId v) const {
  BNS_EXPECTS(contains(v));
  std::vector<VarId> keep;
  keep.reserve(vars_.size() - 1);
  for (VarId u : vars_) {
    if (u != v) keep.push_back(u);
  }
  return marginal(keep);
}

void Factor::reduce(VarId v, int state) {
  BNS_EXPECTS(contains(v));
  BNS_EXPECTS(state >= 0 && state < card_of(v));
  const auto it = std::lower_bound(vars_.begin(), vars_.end(), v);
  const std::size_t axis = static_cast<std::size_t>(it - vars_.begin());
  std::size_t stride = 1;
  for (std::size_t k = 0; k < axis; ++k) stride *= static_cast<std::size_t>(cards_[k]);
  const std::size_t card = static_cast<std::size_t>(cards_[axis]);
  const std::size_t block = stride * card;
  for (std::size_t base = 0; base < size(); base += block) {
    for (std::size_t s = 0; s < card; ++s) {
      if (static_cast<int>(s) == state) continue;
      const std::size_t off = base + s * stride;
      std::fill_n(values_.begin() + static_cast<std::ptrdiff_t>(off), stride, 0.0);
    }
  }
}

double Factor::sum() const {
  double s = 0.0;
  for (double v : values_) s += v;
  return s;
}

void Factor::normalize() {
  const double s = sum();
  BNS_EXPECTS_MSG(s > 0.0, "cannot normalize an all-zero factor");
  const double inv = 1.0 / s;
  for (double& v : values_) v *= inv;
}

double Factor::max_abs_diff(const Factor& other) const {
  BNS_EXPECTS(vars_ == other.vars_);
  double m = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    m = std::max(m, std::abs(values_[i] - other.values_[i]));
  }
  return m;
}

std::string Factor::to_string() const {
  std::ostringstream os;
  os << "Factor(";
  for (std::size_t k = 0; k < vars_.size(); ++k) {
    if (k) os << ",";
    os << "X" << vars_[k] << ":" << cards_[k];
  }
  os << ")[";
  for (std::size_t i = 0; i < size(); ++i) {
    if (i) os << " ";
    os << values_[i];
  }
  os << "]";
  return os.str();
}

} // namespace bns
