// Junction tree (join tree) of cliques and the Hugin propagation engine.
//
// This is the computational mechanism of the paper's Section 5: the
// compiled secondary structure on which switching probabilities are
// obtained by local message passing between neighboring cliques through
// their separators.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bn/bayes_net.h"
#include "bn/graph.h"
#include "bn/schedule.h"
#include "obs/trace.h"
#include "verify/diagnostics.h"

namespace bns {

class ThreadPool;

struct JunctionTreeEdge {
  int a = 0;
  int b = 0;
  std::vector<int> separator; // sorted intersection of cliques a and b
};

class JunctionTree {
 public:
  // Builds a maximum-weight spanning tree (weight = separator size) over
  // the clique graph of `t.cliques`. Disconnected moral graphs yield a
  // forest; each component gets its own root.
  explicit JunctionTree(const Triangulation& t);

  int num_cliques() const { return static_cast<int>(cliques_.size()); }
  const std::vector<int>& clique(int i) const;
  const std::vector<std::vector<int>>& cliques() const { return cliques_; }
  const std::vector<JunctionTreeEdge>& edges() const { return edges_; }

  // Tree structure rooted per component: parent(root) == -1.
  int parent(int i) const { return parents_[static_cast<std::size_t>(i)]; }
  // Edge index connecting i to parent(i); -1 for roots.
  int parent_edge(int i) const { return parent_edge_[static_cast<std::size_t>(i)]; }
  const std::vector<int>& roots() const { return roots_; }
  // Cliques in root-first (pre)order; reversed it is a valid collect order.
  const std::vector<int>& preorder() const { return preorder_; }

  // Smallest clique containing variable v, or -1.
  int clique_containing(int v) const;
  // Smallest clique containing all of `vs` (sorted), or -1.
  int clique_containing_all(std::span<const int> vs) const;

  // Verifies the running intersection property: for every variable, the
  // cliques containing it form a connected subtree. Emits a JT002
  // diagnostic per violating variable.
  void lint_running_intersection(DiagnosticReport& report) const;

  // Legacy wrapper over lint_running_intersection(): returns "" when the
  // property holds, else the first violation's message.
  std::string check_running_intersection() const;

 private:
  std::vector<std::vector<int>> cliques_;
  std::vector<JunctionTreeEdge> edges_;
  std::vector<int> parents_;
  std::vector<int> parent_edge_;
  std::vector<int> roots_;
  std::vector<int> preorder_;
};

// Running-intersection check over an explicit clique set and edge list
// (the JunctionTree member forwards here). Lives with the junction tree
// rather than in src/verify/ so both layers share one implementation.
void lint_running_intersection(std::span<const std::vector<int>> cliques,
                               std::span<const JunctionTreeEdge> edges,
                               DiagnosticReport& report);

// Options controlling compilation.
struct CompileOptions {
  EliminationHeuristic heuristic = EliminationHeuristic::MinFill;
  // If > 0, compilation fails (returns nullopt at the caller level /
  // reports via compiled_state_space) when the junction tree's total
  // state space exceeds this budget. Enforced by the LIDAG segmenter,
  // not here.
  double max_state_space = 0.0;
  // Compile a PropagationSchedule (MessagePlans + CPT load maps) so
  // that load_potentials()/propagate() run zero-allocation stride
  // programs over preallocated buffers. Off = the historical path that
  // rebuilds temporary factors per message; kept for differential
  // testing and as a memory-lean fallback.
  bool compile_schedule = true;
  // Observability (src/obs/): compile stages emit spans, load/propagate
  // bump counters. Null = no instrumentation. At TraceLevel::Counters
  // the update path stays allocation- and lock-free.
  obs::Tracer* trace = nullptr;
};

// Everything a compiled JunctionTreeEngine exposes read-only to the
// static schedule analyzer (verify/schedule_rules) and the artifact
// serializer (src/artifact/), bundled so the engine's private state is
// reachable through exactly one introspection surface
// (JunctionTreeEngine::compiled_view) instead of a growing list of
// per-field accessors.
struct CompiledEngineView {
  const BayesianNetwork* network = nullptr;
  const JunctionTree* tree = nullptr;
  const Triangulation* triangulation = nullptr;
  // Compiled propagation schedule, or nullptr until prepare() (or the
  // first load_potentials()) has built it / when compile_schedule is
  // off. The analyzer proves race-freedom, reload coverage and numeric
  // bounds over exactly this structure.
  const PropagationSchedule* schedule = nullptr;
  // cpt_home[v] = clique whose potential absorbs the CPT of v — the
  // ground truth reload_incremental() dirties against.
  std::span<const int> cpt_home;
  // component_root[c] = root clique of c's tree component — the
  // granularity at which the frontier propagation skips whole
  // components. Empty until prepare(). SC009 proves this mapping
  // consistent with the parent structure.
  std::span<const int> component_root;
  // Per-clique offsets into the snapshot buffer (num_cliques + 1
  // entries); empty until the first snapshot_potentials().
  std::span<const std::size_t> snapshot_offsets;
  // Per-edge offsets into the collect-message snapshot buffer
  // (num_edges + 1 entries); empty until the first
  // snapshot_potentials(). SC009 proves the slicing exact.
  std::span<const std::size_t> message_snapshot_offsets;
};

// The Hugin-style inference engine over a compiled junction tree.
//
// Lifecycle:
//   JunctionTreeEngine eng(bn, opts);   // compile: moralize/triangulate/tree
//   eng.load_potentials();              // load CPTs into clique potentials
//   eng.set_evidence(v, s); ...         // optional (hard or soft)
//   eng.propagate();                    // collect + distribute
//   eng.marginal(v);                    // normalized posterior of v
//
// load_potentials() + propagate() can be repeated with updated CPTs
// (bn is referenced, not copied), which is exactly the paper's cheap
// "update" step when only the input statistics change. With the default
// compiled schedule, the first load allocates all clique/separator/
// message buffers and every later load/propagate reuses them — the
// update path performs zero heap allocations.
class JunctionTreeEngine {
 public:
  explicit JunctionTreeEngine(const BayesianNetwork& bn,
                              CompileOptions opts = {});

  const JunctionTree& tree() const { return tree_; }
  const Triangulation& triangulation() const { return tri_; }

  // The single read-only introspection surface over the compiled
  // engine; see CompiledEngineView above the class.
  CompiledEngineView compiled_view() const {
    CompiledEngineView v;
    v.network = bn_;
    v.tree = &tree_;
    v.triangulation = &tri_;
    v.schedule = has_schedule_ ? &sched_ : nullptr;
    v.cpt_home = cpt_home_;
    v.component_root = root_of_;
    v.snapshot_offsets = snap_off_;
    v.message_snapshot_offsets = msg_snap_off_;
    return v;
  }

  // Previously compiled state, as deserialized by the artifact layer
  // (src/artifact/). The restore constructor installs it instead of
  // re-running moralize/triangulate/build_schedule; the junction tree
  // itself is rebuilt deterministically from the triangulation's clique
  // list, so it is not carried separately.
  struct RestoredCompilation {
    Triangulation tri;
    PropagationSchedule schedule;
    std::vector<int> cpt_home;
  };
  JunctionTreeEngine(const BayesianNetwork& bn, RestoredCompilation parts,
                     CompileOptions opts = {});

  // Sum over cliques of their table sizes (the paper's complexity measure).
  double state_space() const;

  // One-time buffer allocation + schedule compilation, normally paid by
  // the first load_potentials(). Callers that keep the engine (the
  // segmenter discards speculative ones) may invoke it eagerly so the
  // first update is as cheap as every later one. Idempotent.
  void prepare();

  // Seconds spent compiling the propagation schedule in prepare();
  // 0 until prepared or when compile_schedule is off.
  double schedule_build_seconds() const { return schedule_build_seconds_; }

  // Separator messages computed by one full propagate() (collect +
  // distribute = 2 per tree edge).
  std::uint64_t messages_per_propagation() const {
    return 2 * static_cast<std::uint64_t>(tree_.edges().size());
  }

  // (Re-)initializes clique/separator potentials from the current CPTs
  // of the referenced network and clears evidence. CPT scopes must not
  // change between loads (values may — that is the update path).
  void load_potentials();
  // Historical name for load_potentials().
  void reset_potentials() { load_potentials(); }

  // Hard evidence: variable v is observed in state s.
  void set_evidence(VarId v, int state);
  // Soft (likelihood) evidence: multiplies a per-state weight into a
  // clique containing v. `likelihood.size()` must equal cardinality(v).
  void set_soft_evidence(VarId v, std::span<const double> likelihood);

  // Full two-phase propagation (collect to roots, then distribute).
  // With a pool, independent components and root-child subtrees run
  // concurrently; results are bit-identical to the sequential sweep
  // regardless of thread count (message application orders are fixed).
  void propagate(ThreadPool* pool = nullptr);

  // Normalized marginal of one variable. Precondition: propagate() has
  // been called since the last potential/evidence change.
  Factor marginal(VarId v) const;

  // Joint marginal over a set of variables that live in one clique.
  // Precondition: some clique contains all of them.
  Factor joint_marginal(std::span<const VarId> vs) const;

  // As joint_marginal, but returns nullopt when no clique contains all
  // the queried variables (their exact joint is not locally available).
  std::optional<Factor> try_joint_marginal(std::span<const VarId> vs) const;

  // Probability of the evidence entered before the last propagate().
  double evidence_probability() const;

  bool propagated() const { return propagated_; }

  // --- incremental reload (scenario-sweep support) --------------------
  // Captures the freshly *loaded* clique potentials into a flat buffer
  // so a later reload_incremental() can restore unchanged cliques with
  // a copy instead of re-running their CPT load programs. Must be
  // called right after load_potentials(), before any evidence entry or
  // propagation (those mutate the potentials the snapshot is meant to
  // preserve). The first call allocates the buffer; later calls reuse
  // it. Requires the compiled schedule.
  void snapshot_potentials();
  bool has_snapshot() const { return snap_valid_; }

  // The scenario-sweep "update" step, clique-granular: marks only the
  // cliques at cpt_home()[v] of the changed variables dirty, reloads
  // those from the network's current CPT values (refreshing their
  // snapshot slices in place), and memcpy-restores the remaining
  // cliques of every *dirty* tree component from the snapshot.
  // Components with no dirty clique are left entirely untouched — their
  // propagated potentials are already bit-identical to what a full
  // reload + propagate would produce — and the next propagate() runs
  // only the dirty components, restoring collect messages whose source
  // subtree is clean instead of recomputing them (the message
  // frontier). The result is bit-identical to a full reload + full
  // propagate whose only CPT value changes are covered by
  // `changed_vars`, at any thread count. Allocation-free.
  //
  // The partial-propagation fast path needs the engine to be in a
  // propagated, evidence-free state; otherwise this degrades to the
  // original whole-tree restore and the next propagate() is full.
  void reload_incremental(std::span<const VarId> changed_vars);

  // Cumulative counts since construction: cliques restored by
  // memcpy instead of re-running their CPT load programs, and
  // separator messages restored or skipped instead of recomputed
  // (collect restores + both phases of skipped clean components).
  std::uint64_t cliques_restored() const { return cliques_restored_total_; }
  std::uint64_t messages_skipped() const { return messages_skipped_total_; }

  // --- cost-model scheduling (parallel propagate dispatch order) ------
  // Per subtree unit: the EWMA-predicted cost used to order the next
  // dispatch, the last observed wall time, and the static table-size
  // prior the model starts from. Empty until prepare(); observed_ns is
  // 0 until the unit has executed at least once.
  struct UnitCost {
    double predicted_ns = 0.0; // EWMA prediction for the next dispatch
    double observed_ns = 0.0;  // last measured collect+distribute wall ns
    double table_cells = 0.0;  // static prior: clique cells in the unit
  };
  std::span<const UnitCost> unit_costs() const { return unit_cost_; }

 private:
  // Numerical-health accumulator for one tree edge, filled by
  // compute_message() scanning the freshly computed separator values.
  // Single-writer: each edge is computed by exactly one subtree unit
  // per propagation phase, with pool barriers between phases, so plain
  // (non-atomic) fields are race-free. Reduced into the tracer's
  // counters once per propagate() on the calling thread.
  struct EdgeHealth {
    double min_positive = std::numeric_limits<double>::infinity();
    std::uint32_t zero_cells = 0;
    std::uint32_t subnormal_cells = 0;
  };

  // Legacy (non-scheduled) message pass: temporary-factor based.
  void pass_message(int from, int to, int edge);
  // Runs clique i's compiled CPT load program (scheduled path only).
  void load_clique(int i);
  // Scheduled message pass, split so the parallel sweep can defer the
  // application into a shared root clique.
  void compute_message(int from, int edge);
  void apply_message(int to, int edge);
  // Restores edge's collect message from the message snapshot instead
  // of marginalizing the (clean) source subtree: sep and ratio both
  // become the saved fresh message, bitwise what compute_message()
  // would produce (ratio = fresh / 1.0 == fresh after a reload).
  void restore_message(int edge);
  void allocate_potentials();
  void propagate_sequential();
  // Unit-based scheduled sweep: collect/distribute over the schedule's
  // subtree units in cost-model order, inline or on the pool. With
  // `partial`, clean components are skipped and clean-subtree collect
  // messages restored (reload_incremental() must have set the dirty
  // state). Bit-identical to propagate_sequential() either way.
  void propagate_units(ThreadPool* pool, bool partial);
  // Fills unit_order_ with the (dirty, when partial) unit indices
  // sorted by descending predicted cost; returns the count.
  int build_unit_order(bool partial);
  // Copies freshly computed collect messages (now in the separators)
  // into the message snapshot. With `dirty_only`, touches only edges of
  // dirty components — clean components' separators hold distribute
  // values and their slices are already current.
  void refresh_message_snapshot(bool dirty_only);

  const BayesianNetwork* bn_; // non-owning; must outlive the engine
  obs::Tracer* trace_ = nullptr; // non-owning; may be null
  Triangulation tri_;
  JunctionTree tree_;
  double schedule_build_seconds_ = 0.0;
  // cpt_home_[v] = clique index whose potential absorbs CPT of v.
  std::vector<int> cpt_home_;
  // home_of_[v] = smallest clique containing v (query/evidence home),
  // precomputed so marginal()/set_evidence() skip the linear search.
  std::vector<int> home_of_;
  PropagationSchedule sched_;
  bool want_schedule_ = true;
  bool has_schedule_ = false; // built lazily on the first load_potentials()
  std::vector<Factor> clique_pot_;
  std::vector<Factor> sep_pot_;
  // Sized by prepare() (before the hot path) so probing never allocates.
  std::vector<EdgeHealth> edge_health_;
  // True while health probes are active for the current propagate()
  // sweep (Counters tracing on the scheduled path).
  bool probe_health_ = false;
  // Gates the normalization-residue probe: with evidence entered the
  // root mass is P(evidence), not 1, so the residue is meaningless.
  bool evidence_since_load_ = false;
  bool potentials_ready_ = false;
  bool propagated_ = false;
  // Snapshot of the loaded clique tables for reload_incremental():
  // flat value buffer + per-clique offsets (snap_off_ has num_cliques+1
  // entries) + a dirty-flag scratch vector, all sized once on the first
  // snapshot so the incremental path stays allocation-free.
  std::vector<double> snap_;
  std::vector<std::size_t> snap_off_;
  std::vector<std::uint8_t> clique_dirty_;
  bool snap_valid_ = false;
  // --- clique-level dirty propagation state ---------------------------
  // root_of_[c] = root clique of c's component (prepare()).
  std::vector<int> root_of_;
  // sub_dirty_[c] = some clique in subtree(c) is dirty; the component
  // is dirty iff sub_dirty_[root_of_[c]]. Scratch, rewritten by each
  // reload_incremental().
  std::vector<std::uint8_t> sub_dirty_;
  // Collect-message snapshot: one slice per tree edge holding the last
  // fresh collect message computed from a state consistent with snap_.
  // Invariant while msg_snap_valid_: each edge's slice equals the
  // collect message its source subtree's *current* potentials would
  // produce (dirty components are refreshed after every collect phase;
  // clean components' potentials did not change).
  std::vector<double> msg_snap_;
  std::vector<std::size_t> msg_snap_off_;
  bool msg_snap_valid_ = false;
  // Set by a scoped reload_incremental(): the next propagate() may run
  // only the dirty components. Cleared by propagate(), full loads and
  // evidence entry (evidence can land in a "clean" component).
  bool partial_pending_ = false;
  std::uint64_t cliques_restored_total_ = 0;
  std::uint64_t messages_skipped_total_ = 0;
  // --- cost-model scheduling ------------------------------------------
  // EWMA cost per subtree unit (prepare() seeds the table-size prior),
  // per-unit wall-ns scratch written by at most one worker per phase,
  // and the dispatch-order permutation fed to the pool.
  std::vector<UnitCost> unit_cost_;
  std::vector<std::uint64_t> unit_scratch_ns_;
  std::vector<int> unit_order_;
};

} // namespace bns
