// Dense discrete probability potentials (factors) and their algebra:
// product, division, marginalization, evidence reduction. These are the
// workhorse of both junction-tree propagation and variable elimination.
//
// A factor's scope is a strictly ascending list of variable ids with
// per-variable cardinalities. Values are stored in mixed-radix order
// with the *first* scope variable fastest-varying:
//   index = sum_k state[k] * stride[k],  stride[0] = 1,
//   stride[k+1] = stride[k] * card[k].
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bns {

using VarId = std::int32_t;

class Factor {
 public:
  // Scalar factor with value 1 (the multiplicative identity).
  Factor();

  // Zero-initialized factor. `vars` must be strictly ascending; cards
  // must be aligned and all >= 1. Total size must fit comfortably in
  // memory (checked).
  Factor(std::vector<VarId> vars, std::vector<int> cards);

  static Factor scalar(double v);

  // Uniform factor normalized over the scope (each entry 1/size).
  static Factor uniform(std::vector<VarId> vars, std::vector<int> cards);

  const std::vector<VarId>& vars() const { return vars_; }
  const std::vector<int>& cards() const { return cards_; }
  int arity() const { return static_cast<int>(vars_.size()); }
  std::size_t size() const { return values_.size(); }
  bool contains(VarId v) const;
  int card_of(VarId v) const; // precondition: contains(v)

  double value(std::size_t idx) const { return values_[idx]; }
  void set_value(std::size_t idx, double v) { values_[idx] = v; }
  std::span<double> values() { return values_; }
  std::span<const double> values() const { return values_; }

  // Entry addressed by per-scope-variable states (aligned with vars()).
  double at(std::span<const int> states) const;
  double& at(std::span<const int> states);

  // Linear index of a state vector.
  std::size_t index_of(std::span<const int> states) const;
  // Inverse: decodes idx into states (size arity()).
  void states_of(std::size_t idx, std::span<int> states) const;

  // --- algebra --------------------------------------------------------

  // Pointwise product over the union scope.
  Factor product(const Factor& other) const;

  // In-place multiply by a factor whose scope is a subset of this one's.
  void multiply_in(const Factor& other);

  // In-place divide by a factor whose scope is a subset of this one's.
  // Hugin convention: 0/0 = 0; x/0 for x != 0 is a contract violation.
  void divide_in(const Factor& other);

  // Sums out all variables not in `keep`; `keep` must be a subset of the
  // scope (strictly ascending).
  Factor marginal(std::span<const VarId> keep) const;

  // Sums out a single variable.
  Factor sum_out(VarId v) const;

  // Zeroes all entries inconsistent with evidence var = state.
  void reduce(VarId v, int state);

  double sum() const;

  // Scales so that sum() == 1. Precondition: sum() > 0.
  void normalize();

  // Max absolute difference over entries (same scope required).
  double max_abs_diff(const Factor& other) const;

  std::string to_string() const;

 private:
  std::vector<VarId> vars_;
  std::vector<int> cards_;
  std::vector<double> values_;
};

// For each axis of `scope_vars` (with cards `scope_cards`), the stride of
// that variable inside `f` (0 when f does not contain it). Used to walk a
// sub- or super-scope factor in lockstep with a mixed-radix counter.
std::vector<std::size_t> strides_in(const Factor& f,
                                    std::span<const VarId> scope_vars);

} // namespace bns
