// Dense discrete probability potentials (factors) and their algebra:
// product, division, marginalization, evidence reduction. These are the
// workhorse of both junction-tree propagation and variable elimination.
//
// A factor's scope is a strictly ascending list of variable ids with
// per-variable cardinalities. Values are stored in mixed-radix order
// with the *first* scope variable fastest-varying:
//   index = sum_k state[k] * stride[k],  stride[0] = 1,
//   stride[k+1] = stride[k] * card[k].
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bns {

using VarId = std::int32_t;

class Factor {
 public:
  // Scalar factor with value 1 (the multiplicative identity).
  Factor();

  // Zero-initialized factor. `vars` must be strictly ascending; cards
  // must be aligned and all >= 1. Total size must fit comfortably in
  // memory (checked).
  Factor(std::vector<VarId> vars, std::vector<int> cards);

  static Factor scalar(double v);

  // Uniform factor normalized over the scope (each entry 1/size).
  static Factor uniform(std::vector<VarId> vars, std::vector<int> cards);

  const std::vector<VarId>& vars() const { return vars_; }
  const std::vector<int>& cards() const { return cards_; }
  int arity() const { return static_cast<int>(vars_.size()); }
  std::size_t size() const { return values_.size(); }
  bool contains(VarId v) const;
  int card_of(VarId v) const; // precondition: contains(v)

  double value(std::size_t idx) const { return values_[idx]; }
  void set_value(std::size_t idx, double v) { values_[idx] = v; }
  std::span<double> values() { return values_; }
  std::span<const double> values() const { return values_; }

  // Entry addressed by per-scope-variable states (aligned with vars()).
  double at(std::span<const int> states) const;
  double& at(std::span<const int> states);

  // Linear index of a state vector.
  std::size_t index_of(std::span<const int> states) const;
  // Inverse: decodes idx into states (size arity()).
  void states_of(std::size_t idx, std::span<int> states) const;

  // --- algebra --------------------------------------------------------

  // Pointwise product over the union scope.
  Factor product(const Factor& other) const;

  // In-place multiply by a factor whose scope is a subset of this one's.
  void multiply_in(const Factor& other);

  // In-place divide by a factor whose scope is a subset of this one's.
  // Hugin convention: 0/0 = 0; x/0 for x != 0 is a contract violation.
  void divide_in(const Factor& other);

  // Sums out all variables not in `keep`; `keep` must be a subset of the
  // scope (strictly ascending).
  Factor marginal(std::span<const VarId> keep) const;

  // Sums out a single variable.
  Factor sum_out(VarId v) const;

  // Zeroes all entries inconsistent with evidence var = state.
  void reduce(VarId v, int state);

  double sum() const;

  // Scales so that sum() == 1. Precondition: sum() > 0.
  void normalize();

  // Max absolute difference over entries (same scope required).
  double max_abs_diff(const Factor& other) const;

  std::string to_string() const;

 private:
  std::vector<VarId> vars_;
  std::vector<int> cards_;
  std::vector<double> values_;
};

// For each axis of `scope_vars` (with cards `scope_cards`), the stride of
// that variable inside `f` (0 when f does not contain it). Used to walk a
// sub- or super-scope factor in lockstep with a mixed-radix counter.
std::vector<std::size_t> strides_in(const Factor& f,
                                    std::span<const VarId> scope_vars);

// A compiled stride program relating a factor over a *super* scope to a
// factor over a *sub* scope (sub ⊆ super, both strictly ascending). It
// walks the super table linearly — contiguous reads — while tracking the
// corresponding sub-table offset with a mixed-radix counter over the
// super axes. Leading super axes absent from the sub scope are collapsed
// into one contiguous `run`, so the inner loop is a straight block scan.
//
// Building a ScopeMap is the one-time cost; executing it allocates
// nothing (the counter lives on the stack). This is what the junction
// tree's MessagePlans are made of, and what Factor::marginal /
// multiply_in / divide_in use internally.
struct ScopeMap {
  std::size_t size = 1;  // total super-table size
  std::size_t run = 1;   // leading contiguous block with a constant sub offset
  // When true, every sub offset is produced by exactly one run (no
  // remaining super axis is absent from the sub scope), so a
  // marginalization may accumulate each block into a register before a
  // single store — the SIMD-friendly fast path.
  bool unique_offsets = false;
  std::vector<int> cards;            // remaining super axes, fastest first
  std::vector<std::size_t> strides;  // sub stride per remaining axis (0 if absent)
};

ScopeMap make_scope_map(std::span<const VarId> super_vars,
                        std::span<const int> super_cards,
                        std::span<const VarId> sub_vars,
                        std::span<const int> sub_cards);

// sub[off] += Σ super — `sub` must be pre-zeroed (or hold a partial sum).
// Addition order matches an element-wise walk of the super table, so the
// result is bit-identical to the historical SyncedCounter loop.
void marginalize_into(const ScopeMap& m, const double* super, double* sub);

// super[i] *= sub[off(i)] — in-place product with a sub-scope factor.
void multiply_map_in(const ScopeMap& m, const double* sub, double* super);

// super[i] = sub[map(i)] — overwrites instead of multiplying. Loading a
// clique's first CPT this way replaces the fill(1.0)-then-multiply pass
// (1.0 * x == x bitwise, so results are unchanged).
void assign_map_in(const ScopeMap& m, const double* sub, double* super);

// super[i] /= sub[off(i)] with the Hugin convention 0/0 = 0; x/0 with
// x != 0 is a contract violation.
void divide_map_in(const ScopeMap& m, const double* sub, double* super);

} // namespace bns
