// Discrete Bayesian network: a DAG over categorical variables with one
// conditional probability table per variable, P(X | parents(X)).
#pragma once

#include <string>
#include <vector>

#include "bn/factor.h"
#include "verify/diagnostics.h"

namespace bns {

class BayesianNetwork {
 public:
  // Adds a variable with the given cardinality; returns its id (dense,
  // starting at 0).
  VarId add_variable(std::string name, int cardinality);

  // Sets the parents and CPT of `v`. The CPT factor's scope must be
  // exactly {v} ∪ parents (any order of declaration; factor scopes are
  // sorted), and for every parent configuration the entries over the
  // states of v must sum to 1 (validated by validate()). Parents must
  // have smaller... no ordering requirement, but the parent relation
  // must be acyclic overall (checked by validate()).
  void set_cpt(VarId v, std::vector<VarId> parents, Factor cpt);

  int num_variables() const { return static_cast<int>(card_.size()); }
  int cardinality(VarId v) const;
  const std::string& name(VarId v) const;
  const std::vector<VarId>& parents(VarId v) const;
  const Factor& cpt(VarId v) const;
  bool has_cpt(VarId v) const;

  // Children lists (computed).
  std::vector<std::vector<VarId>> children() const;

  // A topological order of the DAG. Precondition: validate() passes.
  std::vector<VarId> topological_order() const;

  // Structural/numerical lint into the diagnostics engine: every
  // variable has a CPT (BN001), the parent graph is acyclic (BN002),
  // CPT columns sum to 1 within tol (BN003, or BN005 for parentless
  // roots), declared families match factor scopes (BN006), and entries
  // are finite and non-negative (BN008).
  void lint_into(DiagnosticReport& report, double tol = 1e-9) const;

  // Legacy wrapper over lint_into(): returns an empty string if valid,
  // else the first error's message.
  std::string validate(double tol = 1e-9) const;

  // Joint probability of a full assignment (states indexed by VarId) —
  // the product form of Eq. 6 in the paper. For testing.
  double joint_probability(std::span<const int> states) const;

 private:
  std::vector<int> card_;
  std::vector<std::string> names_;
  std::vector<std::vector<VarId>> parents_;
  std::vector<Factor> cpts_;
  std::vector<bool> has_cpt_;
};

} // namespace bns
