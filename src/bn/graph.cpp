#include "bn/graph.h"

#include <algorithm>

#include "util/assert.h"

namespace bns {

UndirectedGraph::UndirectedGraph(int n) : adj_(static_cast<std::size_t>(n)) {
  BNS_EXPECTS(n >= 0);
}

void UndirectedGraph::add_edge(int a, int b) {
  BNS_EXPECTS(a >= 0 && a < num_vertices());
  BNS_EXPECTS(b >= 0 && b < num_vertices());
  BNS_EXPECTS(a != b);
  adj_[static_cast<std::size_t>(a)].insert(b);
  adj_[static_cast<std::size_t>(b)].insert(a);
}

bool UndirectedGraph::has_edge(int a, int b) const {
  BNS_EXPECTS(a >= 0 && a < num_vertices());
  BNS_EXPECTS(b >= 0 && b < num_vertices());
  return adj_[static_cast<std::size_t>(a)].count(b) > 0;
}

const std::set<int>& UndirectedGraph::neighbors(int v) const {
  BNS_EXPECTS(v >= 0 && v < num_vertices());
  return adj_[static_cast<std::size_t>(v)];
}

std::size_t UndirectedGraph::num_edges() const {
  std::size_t twice = 0;
  for (const auto& s : adj_) twice += s.size();
  return twice / 2;
}

int UndirectedGraph::degree(int v) const {
  return static_cast<int>(neighbors(v).size());
}

std::vector<std::pair<int, int>> UndirectedGraph::edges() const {
  std::vector<std::pair<int, int>> out;
  for (int a = 0; a < num_vertices(); ++a) {
    for (int b : adj_[static_cast<std::size_t>(a)]) {
      if (a < b) out.emplace_back(a, b);
    }
  }
  return out;
}

UndirectedGraph moral_graph(const BayesianNetwork& bn) {
  UndirectedGraph g(bn.num_variables());
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    const auto& ps = bn.parents(v);
    for (VarId p : ps) g.add_edge(v, p);
    for (std::size_t i = 0; i < ps.size(); ++i) {
      for (std::size_t j = i + 1; j < ps.size(); ++j) {
        g.add_edge(ps[i], ps[j]); // marry co-parents
      }
    }
  }
  return g;
}

namespace {

// Shared elimination machinery: given a function that picks the next
// vertex from the remaining set, run the elimination and collect fill
// edges and elimination cliques.
struct EliminationState {
  std::vector<std::set<int>> adj; // working copy
  std::vector<bool> eliminated;

  explicit EliminationState(const UndirectedGraph& g)
      : eliminated(static_cast<std::size_t>(g.num_vertices()), false) {
    adj.reserve(static_cast<std::size_t>(g.num_vertices()));
    for (int v = 0; v < g.num_vertices(); ++v) adj.push_back(g.neighbors(v));
  }

  // Number of missing edges among the current neighbors of v.
  int fill_count(int v) const {
    const auto& nb = adj[static_cast<std::size_t>(v)];
    int missing = 0;
    for (auto it = nb.begin(); it != nb.end(); ++it) {
      auto jt = it;
      for (++jt; jt != nb.end(); ++jt) {
        if (!adj[static_cast<std::size_t>(*it)].count(*jt)) ++missing;
      }
    }
    return missing;
  }

  // Eliminates v: connects its neighborhood into a clique, records fill
  // edges, removes v. Returns the elimination clique {v} ∪ N(v), sorted.
  std::vector<int> eliminate(int v, std::vector<std::pair<int, int>>& fill) {
    auto& nb = adj[static_cast<std::size_t>(v)];
    std::vector<int> clique(nb.begin(), nb.end());
    for (std::size_t i = 0; i < clique.size(); ++i) {
      for (std::size_t j = i + 1; j < clique.size(); ++j) {
        const int a = clique[i];
        const int b = clique[j];
        if (!adj[static_cast<std::size_t>(a)].count(b)) {
          adj[static_cast<std::size_t>(a)].insert(b);
          adj[static_cast<std::size_t>(b)].insert(a);
          fill.emplace_back(std::min(a, b), std::max(a, b));
        }
      }
    }
    for (int u : clique) adj[static_cast<std::size_t>(u)].erase(v);
    clique.push_back(v);
    std::sort(clique.begin(), clique.end());
    nb.clear();
    eliminated[static_cast<std::size_t>(v)] = true;
    return clique;
  }
};

// Drops cliques that are subsets of other cliques. All keep decisions
// are made before anything is moved: moving eagerly would leave behind
// empty vectors that later subset checks silently compare against.
std::vector<std::vector<int>> maximal_only(std::vector<std::vector<int>> cliques) {
  std::vector<bool> keep(cliques.size(), true);
  for (std::size_t i = 0; i < cliques.size(); ++i) {
    for (std::size_t j = 0; j < cliques.size(); ++j) {
      if (i == j) continue;
      if (cliques[i].size() > cliques[j].size()) continue;
      // Equal-sized duplicates: keep only the first copy.
      if (cliques[i].size() == cliques[j].size() && i < j) continue;
      if (std::includes(cliques[j].begin(), cliques[j].end(),
                        cliques[i].begin(), cliques[i].end())) {
        keep[i] = false;
        break;
      }
    }
  }
  std::vector<std::vector<int>> out;
  for (std::size_t i = 0; i < cliques.size(); ++i) {
    if (keep[i]) out.push_back(std::move(cliques[i]));
  }
  return out;
}

Triangulation finish(const UndirectedGraph& g, std::vector<int> order,
                     std::vector<std::pair<int, int>> fill,
                     std::vector<std::vector<int>> cliques) {
  Triangulation t;
  t.graph = g;
  for (const auto& [a, b] : fill) t.graph.add_edge(a, b);
  t.fill_edges = std::move(fill);
  t.elimination_order = std::move(order);
  t.cliques = maximal_only(std::move(cliques));
  return t;
}

} // namespace

double Triangulation::total_state_space(std::span<const int> cards) const {
  double total = 0.0;
  for (const auto& c : cliques) {
    double s = 1.0;
    for (int v : c) s *= static_cast<double>(cards[static_cast<std::size_t>(v)]);
    total += s;
  }
  return total;
}

std::size_t Triangulation::max_clique_size() const {
  std::size_t m = 0;
  for (const auto& c : cliques) m = std::max(m, c.size());
  return m;
}

Triangulation triangulate(const UndirectedGraph& g, EliminationHeuristic h) {
  const int n = g.num_vertices();
  EliminationState st(g);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<std::pair<int, int>> fill;
  std::vector<std::vector<int>> cliques;

  for (int step = 0; step < n; ++step) {
    int best = -1;
    long best_key = 0;
    int best_deg = 0;
    for (int v = 0; v < n; ++v) {
      if (st.eliminated[static_cast<std::size_t>(v)]) continue;
      const int deg = static_cast<int>(st.adj[static_cast<std::size_t>(v)].size());
      const long key = h == EliminationHeuristic::MinFill
                           ? static_cast<long>(st.fill_count(v))
                           : static_cast<long>(deg);
      if (best == -1 || key < best_key ||
          (key == best_key && deg < best_deg)) {
        best = v;
        best_key = key;
        best_deg = deg;
      }
    }
    order.push_back(best);
    cliques.push_back(st.eliminate(best, fill));
  }
  return finish(g, std::move(order), std::move(fill), std::move(cliques));
}

Triangulation triangulate_with_order(const UndirectedGraph& g,
                                     std::span<const int> order) {
  BNS_EXPECTS(static_cast<int>(order.size()) == g.num_vertices());
  EliminationState st(g);
  std::vector<std::pair<int, int>> fill;
  std::vector<std::vector<int>> cliques;
  for (int v : order) {
    BNS_EXPECTS(!st.eliminated[static_cast<std::size_t>(v)]);
    cliques.push_back(st.eliminate(v, fill));
  }
  return finish(g, std::vector<int>(order.begin(), order.end()),
                std::move(fill), std::move(cliques));
}

bool is_perfect_elimination_order(const UndirectedGraph& g,
                                  std::span<const int> order) {
  EliminationState st(g);
  std::vector<std::pair<int, int>> fill;
  for (int v : order) {
    if (st.eliminated[static_cast<std::size_t>(v)]) return false;
    st.eliminate(v, fill);
    if (!fill.empty()) return false;
  }
  return true;
}

} // namespace bns
