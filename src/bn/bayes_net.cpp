#include "bn/bayes_net.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"
#include "util/strings.h"

namespace bns {

VarId BayesianNetwork::add_variable(std::string name, int cardinality) {
  BNS_EXPECTS(cardinality >= 1);
  const VarId id = static_cast<VarId>(card_.size());
  card_.push_back(cardinality);
  names_.push_back(std::move(name));
  parents_.emplace_back();
  cpts_.emplace_back();
  has_cpt_.push_back(false);
  return id;
}

void BayesianNetwork::set_cpt(VarId v, std::vector<VarId> parents, Factor cpt) {
  BNS_EXPECTS(v >= 0 && v < num_variables());
  // Scope check: {v} ∪ parents, sorted and unique.
  std::vector<VarId> scope = parents;
  scope.push_back(v);
  std::sort(scope.begin(), scope.end());
  BNS_EXPECTS_MSG(std::adjacent_find(scope.begin(), scope.end()) == scope.end(),
                  "duplicate variable in CPT scope");
  BNS_EXPECTS_MSG(scope == cpt.vars(), "CPT scope must be {v} ∪ parents");
  for (std::size_t k = 0; k < scope.size(); ++k) {
    BNS_EXPECTS_MSG(cpt.cards()[k] == cardinality(scope[k]),
                    "CPT cardinality mismatch");
  }
  parents_[static_cast<std::size_t>(v)] = std::move(parents);
  cpts_[static_cast<std::size_t>(v)] = std::move(cpt);
  has_cpt_[static_cast<std::size_t>(v)] = true;
}

int BayesianNetwork::cardinality(VarId v) const {
  BNS_EXPECTS(v >= 0 && v < num_variables());
  return card_[static_cast<std::size_t>(v)];
}

const std::string& BayesianNetwork::name(VarId v) const {
  BNS_EXPECTS(v >= 0 && v < num_variables());
  return names_[static_cast<std::size_t>(v)];
}

const std::vector<VarId>& BayesianNetwork::parents(VarId v) const {
  BNS_EXPECTS(v >= 0 && v < num_variables());
  return parents_[static_cast<std::size_t>(v)];
}

const Factor& BayesianNetwork::cpt(VarId v) const {
  BNS_EXPECTS(v >= 0 && v < num_variables());
  BNS_EXPECTS(has_cpt_[static_cast<std::size_t>(v)]);
  return cpts_[static_cast<std::size_t>(v)];
}

bool BayesianNetwork::has_cpt(VarId v) const {
  BNS_EXPECTS(v >= 0 && v < num_variables());
  return has_cpt_[static_cast<std::size_t>(v)];
}

std::vector<std::vector<VarId>> BayesianNetwork::children() const {
  std::vector<std::vector<VarId>> ch(static_cast<std::size_t>(num_variables()));
  for (VarId v = 0; v < num_variables(); ++v) {
    for (VarId p : parents_[static_cast<std::size_t>(v)]) {
      ch[static_cast<std::size_t>(p)].push_back(v);
    }
  }
  return ch;
}

std::vector<VarId> BayesianNetwork::topological_order() const {
  const int n = num_variables();
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  for (VarId v = 0; v < n; ++v) {
    indeg[static_cast<std::size_t>(v)] =
        static_cast<int>(parents_[static_cast<std::size_t>(v)].size());
  }
  const auto ch = children();
  std::vector<VarId> queue;
  for (VarId v = 0; v < n; ++v) {
    if (indeg[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
  }
  std::vector<VarId> order;
  order.reserve(static_cast<std::size_t>(n));
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VarId v = queue[head];
    order.push_back(v);
    for (VarId c : ch[static_cast<std::size_t>(v)]) {
      if (--indeg[static_cast<std::size_t>(c)] == 0) queue.push_back(c);
    }
  }
  BNS_ENSURES(static_cast<int>(order.size()) == n); // acyclic
  return order;
}

void BayesianNetwork::lint_into(DiagnosticReport& report, double tol) const {
  const int n = num_variables();
  for (VarId v = 0; v < n; ++v) {
    if (!has_cpt_[static_cast<std::size_t>(v)]) {
      report.add(DiagCode::BN001, names_[static_cast<std::size_t>(v)],
                 strformat("variable %d (%s) has no CPT", v,
                           names_[static_cast<std::size_t>(v)].c_str()));
    }
  }

  // Acyclicity via Kahn count.
  {
    std::vector<int> indeg(static_cast<std::size_t>(n), 0);
    for (VarId v = 0; v < n; ++v) {
      indeg[static_cast<std::size_t>(v)] =
          static_cast<int>(parents_[static_cast<std::size_t>(v)].size());
    }
    const auto ch = children();
    std::vector<VarId> queue;
    for (VarId v = 0; v < n; ++v) {
      if (indeg[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
    }
    std::size_t seen = 0;
    for (std::size_t head = 0; head < queue.size(); ++head, ++seen) {
      for (VarId c : ch[static_cast<std::size_t>(queue[head])]) {
        if (--indeg[static_cast<std::size_t>(c)] == 0) queue.push_back(c);
      }
    }
    if (seen != static_cast<std::size_t>(n)) {
      report.add(DiagCode::BN002, "", "parent graph has a cycle");
    }
  }

  for (VarId v = 0; v < n; ++v) {
    if (!has_cpt_[static_cast<std::size_t>(v)]) continue;
    const std::string& vname = names_[static_cast<std::size_t>(v)];
    const Factor& f = cpts_[static_cast<std::size_t>(v)];

    // Family/factor domain consistency: scope is {v} ∪ parents with the
    // declared cardinalities. set_cpt() enforces this, but a checker
    // must not trust the builder it is checking.
    std::vector<VarId> scope = parents_[static_cast<std::size_t>(v)];
    scope.push_back(v);
    std::sort(scope.begin(), scope.end());
    bool domain_ok = scope == f.vars();
    for (std::size_t k = 0; domain_ok && k < scope.size(); ++k) {
      domain_ok = f.cards()[k] == cardinality(scope[k]);
    }
    if (!domain_ok) {
      report.add(DiagCode::BN006, vname,
                 strformat("CPT of variable %d (%s) does not match its "
                           "declared family's scope/cardinalities",
                           v, vname.c_str()));
      continue;
    }

    // Entry validity (finite, non-negative).
    bool entries_ok = true;
    for (std::size_t i = 0; entries_ok && i < f.size(); ++i) {
      const double p = f.value(i);
      if (!std::isfinite(p) || p < 0.0) {
        report.add(DiagCode::BN008, vname,
                   strformat("CPT of variable %d (%s) has invalid entry "
                             "%zu: %g",
                             v, vname.c_str(), i, p));
        entries_ok = false;
      }
    }
    if (!entries_ok) continue;

    // Normalization: for each parent configuration, sum over v == 1.
    // A parentless variable's CPT is its prior (BN005), otherwise BN003.
    const Factor s = f.sum_out(v);
    const bool is_root = parents_[static_cast<std::size_t>(v)].empty();
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (std::abs(s.value(i) - 1.0) > tol) {
        report.add(is_root ? DiagCode::BN005 : DiagCode::BN003, vname,
                   strformat("CPT of variable %d (%s) does not normalize "
                             "(config %zu: %g)",
                             v, vname.c_str(), i, s.value(i)));
        break;
      }
    }
  }
}

std::string BayesianNetwork::validate(double tol) const {
  DiagnosticReport report;
  lint_into(report, tol);
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.severity == Severity::Error) return d.message;
  }
  return "";
}

double BayesianNetwork::joint_probability(std::span<const int> states) const {
  BNS_EXPECTS(static_cast<int>(states.size()) == num_variables());
  double p = 1.0;
  std::vector<int> local;
  for (VarId v = 0; v < num_variables(); ++v) {
    const Factor& f = cpt(v);
    local.clear();
    for (VarId u : f.vars()) local.push_back(states[static_cast<std::size_t>(u)]);
    p *= f.at(local);
  }
  return p;
}

} // namespace bns
