// Reference inference engines used to validate the junction-tree
// implementation: variable elimination and brute-force enumeration.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "bn/bayes_net.h"

namespace bns {

// Hard evidence as (variable, state) pairs.
using Evidence = std::vector<std::pair<VarId, int>>;

// Posterior marginal P(v | evidence) by variable elimination with a
// min-degree order computed on the evidence-reduced factor graph.
Factor ve_marginal(const BayesianNetwork& bn, VarId v,
                   const Evidence& evidence = {});

// Probability of the evidence by variable elimination.
double ve_evidence_probability(const BayesianNetwork& bn,
                               const Evidence& evidence);

// Posterior marginals of every variable by brute-force enumeration of
// the full joint. Exponential; intended for networks with total state
// space <= ~2^22.
std::vector<Factor> brute_force_marginals(const BayesianNetwork& bn,
                                          const Evidence& evidence = {});

} // namespace bns
