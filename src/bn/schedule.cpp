#include "bn/schedule.h"

#include <algorithm>

#include "bn/bayes_net.h"
#include "bn/junction_tree.h"
#include "util/assert.h"

namespace bns {
namespace {

// Scope (vars, cards) of a sorted variable set under `bn`.
void scope_of(const BayesianNetwork& bn, const std::vector<int>& vars,
              std::vector<VarId>& out_vars, std::vector<int>& out_cards) {
  out_vars.assign(vars.begin(), vars.end());
  out_cards.clear();
  out_cards.reserve(vars.size());
  for (int v : vars) out_cards.push_back(bn.cardinality(v));
}

} // namespace

PropagationSchedule build_schedule(const JunctionTree& tree,
                                   const BayesianNetwork& bn,
                                   std::span<const int> cpt_home) {
  PropagationSchedule sched;

  std::vector<VarId> svars;
  std::vector<int> scards;
  std::vector<VarId> cvars;
  std::vector<int> ccards;

  sched.edges.reserve(tree.edges().size());
  for (const JunctionTreeEdge& e : tree.edges()) {
    MessagePlan plan;
    plan.a = e.a;
    plan.b = e.b;
    scope_of(bn, e.separator, svars, scards);
    scope_of(bn, tree.clique(e.a), cvars, ccards);
    plan.from_a = make_scope_map(cvars, ccards, svars, scards);
    scope_of(bn, tree.clique(e.b), cvars, ccards);
    plan.from_b = make_scope_map(cvars, ccards, svars, scards);
    std::size_t sep_size = 1;
    for (int c : scards) sep_size *= static_cast<std::size_t>(c);
    plan.ratio.assign(sep_size, 0.0);
    sched.edges.push_back(std::move(plan));
  }

  sched.loads.resize(static_cast<std::size_t>(tree.num_cliques()));
  BNS_EXPECTS(static_cast<int>(cpt_home.size()) == bn.num_variables());
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    const int home = cpt_home[static_cast<std::size_t>(v)];
    const Factor& cpt = bn.cpt(v);
    scope_of(bn, tree.clique(home), cvars, ccards);
    CliqueLoad load;
    load.var = v;
    load.cpt_size = cpt.size();
    load.map = make_scope_map(cvars, ccards, cpt.vars(), cpt.cards());
    sched.loads[static_cast<std::size_t>(home)].push_back(std::move(load));
  }

  // Parallel structure: assign each non-root clique to the root-child
  // subtree it belongs to, following the preorder (parents first).
  const std::vector<int>& pre = tree.preorder();
  std::vector<int> unit_of(static_cast<std::size_t>(tree.num_cliques()), -1);
  sched.root_units.resize(tree.roots().size());
  std::vector<int> root_index(static_cast<std::size_t>(tree.num_cliques()), -1);
  for (std::size_t r = 0; r < tree.roots().size(); ++r) {
    root_index[static_cast<std::size_t>(tree.roots()[r])] = static_cast<int>(r);
  }
  for (int c : pre) {
    const int p = tree.parent(c);
    if (p < 0) continue; // roots belong to no unit
    if (root_index[static_cast<std::size_t>(p)] >= 0) {
      // Child of a root: starts a new unit.
      SubtreeUnit u;
      u.top = c;
      u.root = p;
      u.edge = tree.parent_edge(c);
      unit_of[static_cast<std::size_t>(c)] = static_cast<int>(sched.units.size());
      sched.units.push_back(std::move(u));
    } else {
      unit_of[static_cast<std::size_t>(c)] = unit_of[static_cast<std::size_t>(p)];
    }
  }
  for (int c : pre) {
    const int u = unit_of[static_cast<std::size_t>(c)];
    if (u >= 0) sched.units[static_cast<std::size_t>(u)].preorder.push_back(c);
  }
  // Discovery order of a root's children is their preorder order; the
  // sequential collect applies them in reverse.
  for (std::size_t u = 0; u < sched.units.size(); ++u) {
    const int r = root_index[static_cast<std::size_t>(sched.units[u].root)];
    BNS_ASSERT(r >= 0);
    sched.root_units[static_cast<std::size_t>(r)].push_back(static_cast<int>(u));
  }
  for (auto& units : sched.root_units) {
    std::reverse(units.begin(), units.end());
  }
  return sched;
}

std::size_t scope_map_max_sub_offset(const ScopeMap& m) {
  std::size_t off = 0;
  for (std::size_t k = 0; k < m.cards.size(); ++k) {
    off += static_cast<std::size_t>(m.cards[k] - 1) * m.strides[k];
  }
  return off;
}

std::size_t scope_map_domain_size(const ScopeMap& m) {
  std::size_t n = m.run;
  for (int c : m.cards) n *= static_cast<std::size_t>(c);
  return n;
}

bool scope_map_in_bounds(const ScopeMap& m, std::size_t super_size,
                         std::size_t sub_size) {
  if (m.cards.size() != m.strides.size()) return false;
  if (m.run == 0 || sub_size == 0) return false;
  for (int c : m.cards) {
    if (c < 1) return false;
  }
  // The walk reads super[0, size) linearly; it must cover the caller's
  // table exactly (no truncated or overrunning scan), and the counter
  // axes must reproduce that same extent.
  if (m.size != super_size) return false;
  if (scope_map_domain_size(m) != m.size) return false;
  // Peak sub offset of the mixed-radix counter stays inside the
  // sub table.
  return scope_map_max_sub_offset(m) <= sub_size - 1;
}

} // namespace bns
