#include "bn/junction_tree.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/assert.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace bns {
namespace {

std::vector<int> sorted_intersection(const std::vector<int>& a,
                                     const std::vector<int>& b) {
  std::vector<int> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

} // namespace

JunctionTree::JunctionTree(const Triangulation& t) : cliques_(t.cliques) {
  const int n = num_cliques();
  BNS_EXPECTS(n > 0);

  // Candidate edges: all clique pairs with non-empty intersection,
  // sorted by descending separator size (Kruskal max-spanning forest).
  struct Cand {
    int a;
    int b;
    int w;
  };
  std::vector<Cand> cands;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const auto sep = sorted_intersection(cliques_[static_cast<std::size_t>(a)],
                                           cliques_[static_cast<std::size_t>(b)]);
      if (!sep.empty()) cands.push_back({a, b, static_cast<int>(sep.size())});
    }
  }
  std::stable_sort(cands.begin(), cands.end(),
                   [](const Cand& x, const Cand& y) { return x.w > y.w; });

  // Union-find.
  std::vector<int> uf(static_cast<std::size_t>(n));
  std::iota(uf.begin(), uf.end(), 0);
  auto find = [&](int x) {
    while (uf[static_cast<std::size_t>(x)] != x) {
      uf[static_cast<std::size_t>(x)] =
          uf[static_cast<std::size_t>(uf[static_cast<std::size_t>(x)])];
      x = uf[static_cast<std::size_t>(x)];
    }
    return x;
  };

  std::vector<std::vector<std::pair<int, int>>> adj(static_cast<std::size_t>(n));
  for (const Cand& c : cands) {
    const int ra = find(c.a);
    const int rb = find(c.b);
    if (ra == rb) continue;
    uf[static_cast<std::size_t>(ra)] = rb;
    JunctionTreeEdge e;
    e.a = c.a;
    e.b = c.b;
    e.separator = sorted_intersection(cliques_[static_cast<std::size_t>(c.a)],
                                      cliques_[static_cast<std::size_t>(c.b)]);
    const int idx = static_cast<int>(edges_.size());
    edges_.push_back(std::move(e));
    adj[static_cast<std::size_t>(c.a)].emplace_back(c.b, idx);
    adj[static_cast<std::size_t>(c.b)].emplace_back(c.a, idx);
  }

  // Root each component at its lowest-index clique; BFS preorder.
  parents_.assign(static_cast<std::size_t>(n), -2);
  parent_edge_.assign(static_cast<std::size_t>(n), -1);
  for (int c = 0; c < n; ++c) {
    if (parents_[static_cast<std::size_t>(c)] != -2) continue;
    roots_.push_back(c);
    parents_[static_cast<std::size_t>(c)] = -1;
    std::vector<int> queue{c};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const int u = queue[head];
      preorder_.push_back(u);
      for (const auto& [v, eidx] : adj[static_cast<std::size_t>(u)]) {
        if (parents_[static_cast<std::size_t>(v)] != -2) continue;
        parents_[static_cast<std::size_t>(v)] = u;
        parent_edge_[static_cast<std::size_t>(v)] = eidx;
        queue.push_back(v);
      }
    }
  }
  BNS_ENSURES(static_cast<int>(preorder_.size()) == n);
}

const std::vector<int>& JunctionTree::clique(int i) const {
  BNS_EXPECTS(i >= 0 && i < num_cliques());
  return cliques_[static_cast<std::size_t>(i)];
}

int JunctionTree::clique_containing(int v) const {
  int best = -1;
  for (int i = 0; i < num_cliques(); ++i) {
    const auto& c = cliques_[static_cast<std::size_t>(i)];
    if (std::binary_search(c.begin(), c.end(), v)) {
      if (best == -1 ||
          c.size() < cliques_[static_cast<std::size_t>(best)].size()) {
        best = i;
      }
    }
  }
  return best;
}

int JunctionTree::clique_containing_all(std::span<const int> vs) const {
  int best = -1;
  for (int i = 0; i < num_cliques(); ++i) {
    const auto& c = cliques_[static_cast<std::size_t>(i)];
    if (std::includes(c.begin(), c.end(), vs.begin(), vs.end())) {
      if (best == -1 ||
          c.size() < cliques_[static_cast<std::size_t>(best)].size()) {
        best = i;
      }
    }
  }
  return best;
}

void lint_running_intersection(std::span<const std::vector<int>> cliques,
                               std::span<const JunctionTreeEdge> edges,
                               DiagnosticReport& report) {
  // For each variable: the induced subgraph of cliques containing it
  // must be connected in the tree. Count cliques containing v and edges
  // whose separator contains v: connected subtree <=> #edges = #cliques-1.
  int max_var = -1;
  for (const auto& c : cliques) {
    for (int v : c) max_var = std::max(max_var, v);
  }
  for (int v = 0; v <= max_var; ++v) {
    int n_cl = 0;
    for (const auto& c : cliques) {
      if (std::binary_search(c.begin(), c.end(), v)) ++n_cl;
    }
    if (n_cl == 0) continue;
    int n_ed = 0;
    for (const auto& e : edges) {
      if (std::binary_search(e.separator.begin(), e.separator.end(), v)) ++n_ed;
    }
    if (n_ed != n_cl - 1) {
      report.add(DiagCode::JT002, strformat("variable %d", v),
                 strformat("running intersection violated for variable %d "
                           "(%d cliques, %d separator edges)",
                           v, n_cl, n_ed));
    }
  }
}

void JunctionTree::lint_running_intersection(DiagnosticReport& report) const {
  bns::lint_running_intersection(cliques_, edges_, report);
}

std::string JunctionTree::check_running_intersection() const {
  DiagnosticReport report;
  lint_running_intersection(report);
  return report.empty() ? "" : report.diagnostics().front().message;
}

// ---------------------------------------------------------------------------
// JunctionTreeEngine
// ---------------------------------------------------------------------------

namespace {

// Init-list helpers so the compile stages can be spanned individually
// without giving Triangulation/JunctionTree default constructors.
Triangulation traced_triangulate(const BayesianNetwork& bn,
                                 const CompileOptions& opts) {
  UndirectedGraph moral;
  {
    obs::Span span(opts.trace, "moralize");
    moral = moral_graph(bn);
  }
  obs::Span span(opts.trace, "triangulate");
  return triangulate(moral, opts.heuristic);
}

JunctionTree traced_tree(const Triangulation& tri, obs::Tracer* trace) {
  obs::Span span(trace, "junction_tree");
  return JunctionTree(tri);
}

} // namespace

JunctionTreeEngine::JunctionTreeEngine(const BayesianNetwork& bn,
                                       CompileOptions opts)
    : bn_(&bn),
      trace_(opts.trace),
      tri_(traced_triangulate(bn, opts)),
      tree_(traced_tree(tri_, opts.trace)) {
  // Assign each CPT to the smallest clique covering its scope. Such a
  // clique always exists: {v} ∪ parents(v) is a clique of the moral
  // graph, preserved by triangulation.
  cpt_home_.assign(static_cast<std::size_t>(bn.num_variables()), -1);
  home_of_.assign(static_cast<std::size_t>(bn.num_variables()), -1);
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    const auto& scope = bn.cpt(v).vars();
    const int home = tree_.clique_containing_all(
        std::span<const int>(scope.data(), scope.size()));
    BNS_ASSERT_MSG(home >= 0, "no clique covers a CPT family");
    cpt_home_[static_cast<std::size_t>(v)] = home;
    home_of_[static_cast<std::size_t>(v)] = tree_.clique_containing(v);
  }
  want_schedule_ = opts.compile_schedule;
  if (trace_ != nullptr && trace_->counters_on()) {
    trace_->count(obs::Counter::CliquesBuilt,
                  static_cast<std::uint64_t>(tree_.num_cliques()));
    trace_->count(obs::Counter::FillEdges, tri_.fill_edges.size());
    double max_states = 0.0;
    for (const auto& c : tree_.cliques()) {
      double s = 1.0;
      for (int v : c) s *= static_cast<double>(bn_->cardinality(v));
      max_states = std::max(max_states, s);
    }
    trace_->gauge_max(obs::Counter::MaxCliqueStates,
                      static_cast<std::uint64_t>(max_states));
  }
}

JunctionTreeEngine::JunctionTreeEngine(const BayesianNetwork& bn,
                                       RestoredCompilation parts,
                                       CompileOptions opts)
    : bn_(&bn),
      trace_(opts.trace),
      tri_(std::move(parts.tri)),
      tree_(JunctionTree(tri_)) {
  // Restore path: the triangulation, schedule and CPT homes come from a
  // deserialized artifact instead of a fresh compile. JunctionTree(tri)
  // is deterministic, so rebuilding it from the restored cliques yields
  // the exact tree the schedule was compiled against; the SC* analyzer
  // run by the artifact loader then proves the pair consistent. The
  // structural checks here are the ones the analyzer cannot express
  // (it indexes through cpt_home, so cpt_home itself must be sane).
  const auto nv = static_cast<std::size_t>(bn.num_variables());
  if (parts.cpt_home.size() != nv) {
    throw std::runtime_error(
        "restored cpt_home does not match the network's variable count");
  }
  for (int home : parts.cpt_home) {
    if (home < 0 || home >= tree_.num_cliques()) {
      throw std::runtime_error("restored cpt_home names an invalid clique");
    }
  }
  cpt_home_ = std::move(parts.cpt_home);
  home_of_.assign(nv, -1);
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    const auto& scope = bn.cpt(v).vars();
    const int covering = tree_.clique_containing_all(
        std::span<const int>(scope.data(), scope.size()));
    if (covering < 0) {
      throw std::runtime_error(
          "restored junction tree covers no clique for a CPT family");
    }
    home_of_[static_cast<std::size_t>(v)] = tree_.clique_containing(v);
  }
  sched_ = std::move(parts.schedule);
  want_schedule_ = true;
  has_schedule_ = true;
}

double JunctionTreeEngine::state_space() const {
  double total = 0.0;
  for (const auto& c : tree_.cliques()) {
    double s = 1.0;
    for (int v : c) s *= static_cast<double>(bn_->cardinality(v));
    total += s;
  }
  return total;
}

void JunctionTreeEngine::allocate_potentials() {
  const int n = tree_.num_cliques();
  clique_pot_.clear();
  clique_pot_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto& c = tree_.clique(i);
    std::vector<VarId> vars(c.begin(), c.end());
    std::vector<int> cards;
    cards.reserve(vars.size());
    for (VarId v : vars) cards.push_back(bn_->cardinality(v));
    clique_pot_.emplace_back(std::move(vars), std::move(cards));
  }
  sep_pot_.clear();
  sep_pot_.reserve(tree_.edges().size());
  for (const auto& e : tree_.edges()) {
    std::vector<VarId> vars(e.separator.begin(), e.separator.end());
    std::vector<int> cards;
    cards.reserve(vars.size());
    for (VarId v : vars) cards.push_back(bn_->cardinality(v));
    sep_pot_.emplace_back(std::move(vars), std::move(cards));
  }
}

void JunctionTreeEngine::prepare() {
  // One-time schedule compilation and buffer allocation; lazy (first
  // load) rather than constructor-time because the segmenter builds
  // engines speculatively and only keeps those whose state space fits
  // the budget — buffers must not be touched before that check. The
  // estimator prepares kept engines eagerly so compile_stats() covers
  // the schedule build and the first update is already allocation-free.
  if (!clique_pot_.empty()) return;
  allocate_potentials();
  if (want_schedule_ && !has_schedule_) {
    obs::Span span(trace_, "schedule");
    Timer timer;
    sched_ = build_schedule(tree_, *bn_, cpt_home_);
    has_schedule_ = true;
    schedule_build_seconds_ = timer.seconds();
    if (trace_ != nullptr) trace_->count(obs::Counter::ScheduleBuilds);
  }
  // Health accumulators are part of the one-time allocation so the
  // probes stay allocation-free on the update path.
  edge_health_.assign(tree_.edges().size(), EdgeHealth{});
  // Component roots: the granularity at which a scoped
  // reload_incremental() leaves clean components entirely untouched.
  root_of_.assign(static_cast<std::size_t>(tree_.num_cliques()), -1);
  for (int c : tree_.preorder()) {
    const int p = tree_.parent(c);
    root_of_[static_cast<std::size_t>(c)] =
        p < 0 ? c : root_of_[static_cast<std::size_t>(p)];
  }
  // Cost model: seed each subtree unit's prediction with its static
  // table-size prior (collect + distribute each walk roughly the
  // unit's clique cells once) so the very first dispatch already runs
  // longest-first; observations replace the prior from then on.
  unit_cost_.assign(sched_.units.size(), UnitCost{});
  unit_scratch_ns_.assign(sched_.units.size(), 0);
  unit_order_.assign(sched_.units.size(), 0);
  for (std::size_t ui = 0; ui < sched_.units.size(); ++ui) {
    double cells = 0.0;
    for (int c : sched_.units[ui].preorder) {
      cells += static_cast<double>(
          clique_pot_[static_cast<std::size_t>(c)].size());
    }
    unit_cost_[ui].table_cells = cells;
    unit_cost_[ui].predicted_ns = 2.0 * cells;
  }
  if (trace_ != nullptr && trace_->counters_on()) {
    std::uint64_t bytes = 0;
    for (const Factor& f : clique_pot_) bytes += f.size() * sizeof(double);
    for (const Factor& f : sep_pot_) bytes += f.size() * sizeof(double);
    for (const MessagePlan& p : sched_.edges) {
      bytes += p.ratio.size() * sizeof(double);
    }
    trace_->count(obs::Counter::PreallocBytes, bytes);
  }
}

void JunctionTreeEngine::load_potentials() {
  if (clique_pot_.empty()) {
    prepare();
  } else if (trace_ != nullptr && has_schedule_) {
    // Reloading over an already-compiled schedule is the paper's cheap
    // "update" entry point.
    trace_->count(obs::Counter::ScheduleCacheHits);
  }
  obs::Span span(trace_, "load");
  if (trace_ != nullptr) {
    trace_->count(obs::Counter::CptLoads,
                  static_cast<std::uint64_t>(bn_->num_variables()));
  }
  const int n = tree_.num_cliques();
  if (has_schedule_) {
    for (int i = 0; i < n; ++i) load_clique(i);
  } else {
    for (int i = 0; i < n; ++i) {
      auto vals = clique_pot_[static_cast<std::size_t>(i)].values();
      std::fill(vals.begin(), vals.end(), 1.0);
    }
    for (VarId v = 0; v < bn_->num_variables(); ++v) {
      clique_pot_[static_cast<std::size_t>(
                      cpt_home_[static_cast<std::size_t>(v)])]
          .multiply_in(bn_->cpt(v));
    }
  }
  for (Factor& sep : sep_pot_) {
    auto vals = sep.values();
    std::fill(vals.begin(), vals.end(), 1.0);
  }
  potentials_ready_ = true;
  propagated_ = false;
  evidence_since_load_ = false;
  // A full reload may change any CPT's values; the snapshot no longer
  // describes the loaded state until snapshot_potentials() runs again,
  // and with it goes the message snapshot and any pending partial sweep.
  snap_valid_ = false;
  msg_snap_valid_ = false;
  partial_pending_ = false;
}

void JunctionTreeEngine::load_clique(int i) {
  auto vals = clique_pot_[static_cast<std::size_t>(i)].values();
  const auto& loads = sched_.loads[static_cast<std::size_t>(i)];
  // The first CPT overwrites the table (1.0 * x == x bitwise), so
  // only CPT-less cliques pay the fill pass.
  if (loads.empty()) std::fill(vals.begin(), vals.end(), 1.0);
  for (std::size_t j = 0; j < loads.size(); ++j) {
    const CliqueLoad& load = loads[j];
    const Factor& cpt = bn_->cpt(load.var);
    BNS_ASSERT_MSG(cpt.size() == load.cpt_size,
                   "CPT shape changed since schedule compilation");
    if (j == 0) {
      assign_map_in(load.map, cpt.values().data(), vals.data());
    } else {
      multiply_map_in(load.map, cpt.values().data(), vals.data());
    }
  }
}

void JunctionTreeEngine::snapshot_potentials() {
  BNS_EXPECTS(potentials_ready_ && !propagated_ && !evidence_since_load_);
  BNS_EXPECTS_MSG(has_schedule_,
                  "potential snapshots require the compiled schedule");
  if (snap_off_.empty()) {
    snap_off_.reserve(clique_pot_.size() + 1);
    std::size_t off = 0;
    for (const Factor& f : clique_pot_) {
      snap_off_.push_back(off);
      off += f.size();
    }
    snap_off_.push_back(off);
    snap_.resize(off);
    clique_dirty_.assign(clique_pot_.size(), 0);
    sub_dirty_.assign(clique_pot_.size(), 0);
    // Collect-message snapshot: one separator-sized slice per edge, so
    // a partial propagate can restore frontier messages whose source
    // subtree is clean instead of re-marginalizing it.
    msg_snap_off_.reserve(sep_pot_.size() + 1);
    std::size_t moff = 0;
    for (const Factor& f : sep_pot_) {
      msg_snap_off_.push_back(moff);
      moff += f.size();
    }
    msg_snap_off_.push_back(moff);
    msg_snap_.resize(moff);
  }
  for (std::size_t i = 0; i < clique_pot_.size(); ++i) {
    const auto vals = clique_pot_[i].values();
    std::copy(vals.begin(), vals.end(), snap_.begin() +
              static_cast<std::ptrdiff_t>(snap_off_[i]));
  }
  snap_valid_ = true;
  // Messages have not been computed for this loaded state yet; the next
  // full propagate refreshes the slices and re-validates them.
  msg_snap_valid_ = false;
}

void JunctionTreeEngine::reload_incremental(
    std::span<const VarId> changed_vars) {
  BNS_EXPECTS_MSG(snap_valid_,
                  "reload_incremental needs snapshot_potentials() first");
  obs::Span span(trace_, "load");
  // Scoped (clique/component-granular) mode requires the live state to
  // be the propagated, evidence-free result of the snapshot state: a
  // clean component's potentials are then already bit-identical to what
  // a full reload + propagate would produce, so it is left entirely
  // untouched (no restore, no separator reset, no messages). Otherwise
  // fall back to the whole-tree restore and a full next propagate.
  const bool scoped = propagated_ && !evidence_since_load_;
  std::fill(clique_dirty_.begin(), clique_dirty_.end(), 0);
  std::fill(sub_dirty_.begin(), sub_dirty_.end(), 0);
  for (VarId v : changed_vars) {
    const std::size_t home =
        static_cast<std::size_t>(cpt_home_[static_cast<std::size_t>(v)]);
    clique_dirty_[home] = 1;
    sub_dirty_[home] = 1;
  }
  // Fold dirt rootward (reverse preorder visits children before
  // parents): afterwards sub_dirty_[c] says whether subtree(c) holds a
  // dirty clique, and sub_dirty_[root] whether the component does.
  const auto& pre = tree_.preorder();
  for (auto it = pre.rbegin(); it != pre.rend(); ++it) {
    const int c = *it;
    const int p = tree_.parent(c);
    if (p >= 0 && sub_dirty_[static_cast<std::size_t>(c)] != 0) {
      sub_dirty_[static_cast<std::size_t>(p)] = 1;
    }
  }
  std::uint64_t loads_rerun = 0;
  std::uint64_t restored = 0;
  for (std::size_t i = 0; i < clique_pot_.size(); ++i) {
    if (scoped &&
        sub_dirty_[static_cast<std::size_t>(root_of_[i])] == 0) {
      continue; // clean component: live propagated state is final
    }
    auto vals = clique_pot_[i].values();
    if (clique_dirty_[i] != 0) {
      load_clique(static_cast<int>(i));
      // Keep the snapshot current so the next scenario restores this
      // clique's *new* loaded state.
      std::copy(vals.begin(), vals.end(), snap_.begin() +
                static_cast<std::ptrdiff_t>(snap_off_[i]));
      loads_rerun += sched_.loads[i].size();
    } else {
      std::copy(snap_.begin() + static_cast<std::ptrdiff_t>(snap_off_[i]),
                snap_.begin() + static_cast<std::ptrdiff_t>(snap_off_[i + 1]),
                vals.begin());
      ++restored;
    }
  }
  const auto& edges = tree_.edges();
  for (std::size_t e = 0; e < sep_pot_.size(); ++e) {
    if (scoped &&
        sub_dirty_[static_cast<std::size_t>(
            root_of_[static_cast<std::size_t>(edges[e].a)])] == 0) {
      continue; // separator of a clean component keeps its final value
    }
    auto vals = sep_pot_[e].values();
    std::fill(vals.begin(), vals.end(), 1.0);
  }
  potentials_ready_ = true;
  propagated_ = false;
  evidence_since_load_ = false;
  partial_pending_ = scoped && has_schedule_;
  cliques_restored_total_ += restored;
  if (trace_ != nullptr) {
    trace_->count(obs::Counter::IncrementalReloads);
    if (loads_rerun != 0) {
      trace_->count(obs::Counter::CptLoads, loads_rerun);
    }
    if (restored != 0) {
      trace_->count(obs::Counter::CliquesRestored, restored);
    }
  }
}

void JunctionTreeEngine::set_evidence(VarId v, int state) {
  BNS_EXPECTS(potentials_ready_);
  const int home = home_of_[static_cast<std::size_t>(v)];
  BNS_ASSERT(home >= 0);
  clique_pot_[static_cast<std::size_t>(home)].reduce(v, state);
  propagated_ = false;
  evidence_since_load_ = true;
  // Evidence may land in a component the pending partial sweep would
  // have skipped, and taints any messages computed from here on.
  partial_pending_ = false;
  msg_snap_valid_ = false;
}

void JunctionTreeEngine::set_soft_evidence(VarId v,
                                           std::span<const double> likelihood) {
  BNS_EXPECTS(potentials_ready_);
  BNS_EXPECTS(static_cast<int>(likelihood.size()) == bn_->cardinality(v));
  Factor lambda({v}, {bn_->cardinality(v)});
  for (std::size_t s = 0; s < likelihood.size(); ++s) {
    lambda.set_value(s, likelihood[s]);
  }
  const int home = home_of_[static_cast<std::size_t>(v)];
  BNS_ASSERT(home >= 0);
  clique_pot_[static_cast<std::size_t>(home)].multiply_in(lambda);
  propagated_ = false;
  evidence_since_load_ = true;
  partial_pending_ = false;
  msg_snap_valid_ = false;
}

void JunctionTreeEngine::pass_message(int from, int to, int edge) {
  Factor& sep = sep_pot_[static_cast<std::size_t>(edge)];
  Factor msg = clique_pot_[static_cast<std::size_t>(from)].marginal(sep.vars());
  // Turn the old separator into the update ratio msg/old in place (no
  // temporary copy), multiply it into the recipient, then install msg
  // as the new separator.
  auto s = sep.values();
  const auto m = msg.values();
  for (std::size_t j = 0; j < s.size(); ++j) {
    const double old = s[j];
    if (old == 0.0) {
      BNS_ASSERT_MSG(m[j] == 0.0, "divide_in: x/0 with x != 0");
      s[j] = 0.0;
    } else {
      s[j] = m[j] / old;
    }
  }
  clique_pot_[static_cast<std::size_t>(to)].multiply_in(sep);
  sep = std::move(msg);
}

void JunctionTreeEngine::compute_message(int from, int edge) {
  MessagePlan& plan = sched_.edges[static_cast<std::size_t>(edge)];
  const ScopeMap& src = from == plan.a ? plan.from_a : plan.from_b;
  double* msg = plan.ratio.data();
  std::fill_n(msg, plan.ratio.size(), 0.0);
  marginalize_into(src, clique_pot_[static_cast<std::size_t>(from)].values().data(),
                   msg);
  // sep := msg, msg buffer := msg / old sep (Hugin: 0/0 = 0).
  double* sep = sep_pot_[static_cast<std::size_t>(edge)].values().data();
  for (std::size_t j = 0; j < plan.ratio.size(); ++j) {
    const double fresh = msg[j];
    const double old = sep[j];
    sep[j] = fresh;
    if (old == 0.0) {
      BNS_ASSERT_MSG(fresh == 0.0, "divide_in: x/0 with x != 0");
      msg[j] = 0.0;
    } else {
      msg[j] = fresh / old;
    }
  }
  if (probe_health_) {
    // Scan the fresh separator marginal (pre-normalization) for
    // numerical-health accounting. Single writer per edge per phase
    // (see EdgeHealth); no allocation, no locking, no atomics.
    EdgeHealth& h = edge_health_[static_cast<std::size_t>(edge)];
    for (std::size_t j = 0; j < plan.ratio.size(); ++j) {
      const double v = sep[j];
      if (v == 0.0) {
        ++h.zero_cells;
      } else if (v > 0.0) {
        if (v < std::numeric_limits<double>::min()) ++h.subnormal_cells;
        if (v < h.min_positive) h.min_positive = v;
      }
    }
  }
}

void JunctionTreeEngine::apply_message(int to, int edge) {
  const MessagePlan& plan = sched_.edges[static_cast<std::size_t>(edge)];
  const ScopeMap& dst = to == plan.a ? plan.from_a : plan.from_b;
  multiply_map_in(dst, plan.ratio.data(),
                  clique_pot_[static_cast<std::size_t>(to)].values().data());
}

void JunctionTreeEngine::restore_message(int edge) {
  // sep := saved fresh message; ratio := saved fresh message. Bitwise
  // what compute_message() would produce here: the source subtree's
  // potentials are unchanged (so the fresh marginal is the saved one)
  // and the separator was reset to 1.0 by the reload, so the Hugin
  // ratio fresh/old == fresh/1.0 == fresh exactly.
  MessagePlan& plan = sched_.edges[static_cast<std::size_t>(edge)];
  const double* src =
      msg_snap_.data() + msg_snap_off_[static_cast<std::size_t>(edge)];
  const std::size_t sz = plan.ratio.size();
  std::copy_n(src, sz, sep_pot_[static_cast<std::size_t>(edge)].values().data());
  std::copy_n(src, sz, plan.ratio.data());
}

void JunctionTreeEngine::refresh_message_snapshot(bool dirty_only) {
  // Runs between the collect and distribute phases, when every
  // separator of a (re)computed component holds its fresh collect
  // message. Clean components' separators hold last sweep's distribute
  // values and must not be copied — their slices are already current.
  const auto& edges = tree_.edges();
  for (std::size_t e = 0; e < sep_pot_.size(); ++e) {
    if (dirty_only &&
        sub_dirty_[static_cast<std::size_t>(
            root_of_[static_cast<std::size_t>(edges[e].a)])] == 0) {
      continue;
    }
    const auto vals = sep_pot_[e].values();
    std::copy(vals.begin(), vals.end(),
              msg_snap_.begin() + static_cast<std::ptrdiff_t>(msg_snap_off_[e]));
  }
}

int JunctionTreeEngine::build_unit_order(bool partial) {
  int n = 0;
  for (std::size_t ui = 0; ui < sched_.units.size(); ++ui) {
    if (partial &&
        sub_dirty_[static_cast<std::size_t>(sched_.units[ui].root)] == 0) {
      continue; // whole component clean: unit fully skipped
    }
    unit_order_[static_cast<std::size_t>(n++)] = static_cast<int>(ui);
  }
  // Longest-predicted-first, index as tie-break so the order is
  // deterministic. Execution order never affects results (units write
  // disjoint cliques; root applies keep the fixed sequential order), so
  // this is purely a makespan lever.
  std::sort(unit_order_.begin(), unit_order_.begin() + n, [&](int a, int b) {
    const double ca = unit_cost_[static_cast<std::size_t>(a)].predicted_ns;
    const double cb = unit_cost_[static_cast<std::size_t>(b)].predicted_ns;
    if (ca != cb) return ca > cb;
    return a < b;
  });
  return n;
}

void JunctionTreeEngine::propagate_sequential() {
  const auto& pre = tree_.preorder();
  for (auto it = pre.rbegin(); it != pre.rend(); ++it) {
    const int c = *it;
    const int p = tree_.parent(c);
    if (p >= 0) pass_message(c, p, tree_.parent_edge(c));
  }
  for (int c : pre) {
    const int p = tree_.parent(c);
    if (p >= 0) pass_message(p, c, tree_.parent_edge(c));
  }
}

void JunctionTreeEngine::propagate_units(ThreadPool* pool, bool partial) {
  using clock = std::chrono::steady_clock;
  const int nu = build_unit_order(partial);
  const bool restore_ok = partial && msg_snap_valid_;
  // Collect: each root-child subtree is independent. The final
  // child→root ratio is computed (or restored) but parked in the edge
  // buffer. Timing is per unit into disjoint scratch slots (one writer
  // per unit per phase), feeding the EWMA after the sweep.
  auto collect_unit = [&](int ui) {
    const SubtreeUnit& u = sched_.units[static_cast<std::size_t>(ui)];
    const auto t0 = clock::now();
    for (auto it = u.preorder.rbegin(); it != u.preorder.rend(); ++it) {
      const int c = *it;
      const int e = tree_.parent_edge(c);
      if (restore_ok && sub_dirty_[static_cast<std::size_t>(c)] == 0) {
        restore_message(e); // clean subtree: frontier message replayed
      } else {
        compute_message(c, e);
      }
      if (c != u.top) apply_message(tree_.parent(c), e);
    }
    unit_scratch_ns_[static_cast<std::size_t>(ui)] = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
            .count());
  };
  const bool threaded = pool != nullptr && pool->num_threads() > 1 && nu > 1;
  if (threaded) {
    pool->parallel_for_ordered(nu, unit_order_, collect_unit);
  } else {
    for (int k = 0; k < nu; ++k) {
      collect_unit(unit_order_[static_cast<std::size_t>(k)]);
    }
  }
  // Apply the parked ratios into the (possibly shared) roots in the
  // same order the sequential reverse-preorder sweep uses, so the
  // result is bit-identical at any thread count and dispatch order.
  for (const auto& units : sched_.root_units) {
    if (units.empty()) continue;
    if (partial &&
        sub_dirty_[static_cast<std::size_t>(
            sched_.units[static_cast<std::size_t>(units[0])].root)] == 0) {
      continue;
    }
    for (int ui : units) {
      const SubtreeUnit& u = sched_.units[static_cast<std::size_t>(ui)];
      apply_message(u.root, u.edge);
    }
  }
  // The separators now hold the fresh collect messages: snapshot them
  // (before distribute overwrites them) so the next scoped reload can
  // restore frontier messages. Tainted states (evidence, no snapshot)
  // never re-validate.
  if (snap_valid_ && !evidence_since_load_ && !msg_snap_off_.empty()) {
    refresh_message_snapshot(/*dirty_only=*/partial);
    if (!partial) msg_snap_valid_ = true;
  }
  // Distribute: the root potentials are final and only read; each unit
  // updates its own cliques. A changed parent message invalidates every
  // distribute message below it, so dirty components re-run in full.
  auto distribute_unit = [&](int ui) {
    const SubtreeUnit& u = sched_.units[static_cast<std::size_t>(ui)];
    const auto t0 = clock::now();
    for (const int c : u.preorder) {
      const int e = tree_.parent_edge(c);
      compute_message(tree_.parent(c), e);
      apply_message(c, e);
    }
    unit_scratch_ns_[static_cast<std::size_t>(ui)] +=
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                 t0)
                .count());
  };
  if (threaded) {
    pool->parallel_for_ordered(nu, unit_order_, distribute_unit);
  } else {
    for (int k = 0; k < nu; ++k) {
      distribute_unit(unit_order_[static_cast<std::size_t>(k)]);
    }
  }
  // Online cost model: fold the observed wall time of every executed
  // unit into its prediction (EWMA, keep 0.7). Partial sweeps observe
  // genuinely cheaper units (restored messages), which is what the
  // next partial dispatch should predict.
  constexpr double kEwmaKeep = 0.7;
  for (int k = 0; k < nu; ++k) {
    const std::size_t ui =
        static_cast<std::size_t>(unit_order_[static_cast<std::size_t>(k)]);
    const double observed = static_cast<double>(unit_scratch_ns_[ui]);
    UnitCost& uc = unit_cost_[ui];
    // The first observation replaces the static prior outright (the
    // prior is a relative cell count, not nanoseconds); later ones
    // blend so transient stalls don't whipsaw the dispatch order.
    uc.predicted_ns = uc.observed_ns == 0.0
                          ? observed
                          : kEwmaKeep * uc.predicted_ns +
                                (1.0 - kEwmaKeep) * observed;
    uc.observed_ns = observed;
  }
}

void JunctionTreeEngine::propagate(ThreadPool* pool) {
  BNS_EXPECTS(potentials_ready_);
  obs::Span span(trace_, "propagate");
  const bool partial = partial_pending_ && has_schedule_;
  partial_pending_ = false;
  // Message accounting for the partial sweep, taken before the sweep
  // flips any frontier state: a clean component skips both phases of
  // every edge; inside a dirty component the collect message of a
  // clean subtree is restored (when the message snapshot is live) and
  // distribute always recomputes.
  std::uint64_t msgs_computed = messages_per_propagation();
  std::uint64_t msgs_skipped = 0;
  if (partial) {
    msgs_computed = 0;
    for (int c : tree_.preorder()) {
      if (tree_.parent(c) < 0) continue;
      if (sub_dirty_[static_cast<std::size_t>(
              root_of_[static_cast<std::size_t>(c)])] == 0) {
        msgs_skipped += 2;
        continue;
      }
      ++msgs_computed; // distribute
      if (msg_snap_valid_ && sub_dirty_[static_cast<std::size_t>(c)] == 0) {
        ++msgs_skipped; // collect restored from the message snapshot
      } else {
        ++msgs_computed; // collect
      }
    }
  }
  // Numerical-health probing rides the scheduled path at Counters level
  // and above. The per-edge accumulators are preallocated (prepare()),
  // written by exactly one thread per phase, and reduced here once per
  // sweep — so the zero-allocation/zero-locking hot-path invariant
  // still holds at counter-only tracing. Restored messages are not
  // re-scanned: their cells were probed when originally computed.
  probe_health_ =
      has_schedule_ && trace_ != nullptr && trace_->counters_on();
  const std::uint64_t t0 = probe_health_ ? trace_->now_ns() : 0;
  if (probe_health_) {
    for (EdgeHealth& h : edge_health_) h = EdgeHealth{};
  }
  if (has_schedule_) {
    propagate_units(pool, partial);
  } else {
    propagate_sequential();
  }
  // Per-edge message *counts* only — no per-message instrumentation, so
  // the PR 2 zero-allocation/zero-locking hot-path invariant holds at
  // counter-only tracing.
  messages_skipped_total_ += msgs_skipped;
  if (trace_ != nullptr) {
    trace_->count(obs::Counter::MessagesPassed, msgs_computed);
    if (msgs_skipped != 0) {
      trace_->count(obs::Counter::MessagesSkipped, msgs_skipped);
    }
  }
  propagated_ = true;
  if (probe_health_) {
    probe_health_ = false;
    std::uint64_t zeros = 0;
    std::uint64_t subnormals = 0;
    double min_positive = std::numeric_limits<double>::infinity();
    for (const EdgeHealth& h : edge_health_) {
      zeros += h.zero_cells;
      subnormals += h.subnormal_cells;
      if (h.min_positive < min_positive) min_positive = h.min_positive;
    }
    if (zeros != 0) trace_->count(obs::Counter::SepZeroCells, zeros);
    if (subnormals != 0) {
      trace_->count(obs::Counter::SepSubnormalCells, subnormals);
    }
    if (std::isfinite(min_positive)) {
      // frexp: min_positive = m * 2^exp with m in [0.5, 1). The negated
      // exponent grows as the smallest cell approaches underflow
      // (~1075 at the subnormal floor); 0 means all cells >= 0.5.
      int exp = 0;
      std::frexp(min_positive, &exp);
      const std::uint64_t neg_exp =
          exp < 0 ? static_cast<std::uint64_t>(-exp) : 0;
      trace_->gauge_max(obs::Counter::SepMinNegExp, neg_exp);
      trace_->hist(obs::Hist::SepMinNegExp, static_cast<double>(neg_exp));
    }
    if (!evidence_since_load_) {
      // After a full evidence-free propagation each component's root
      // sums to 1 up to roundoff; the residue measures accumulated
      // normalization drift. Factor::sum() is an allocation-free loop.
      double mass = 1.0;
      for (int r : tree_.roots()) {
        mass *= clique_pot_[static_cast<std::size_t>(r)].sum();
      }
      const double residue_ppb = std::abs(1.0 - mass) * 1e9;
      const double clamped =
          std::min(residue_ppb, 1e18); // keep the cast well-defined
      trace_->gauge_max(obs::Counter::NormResiduePpb,
                        static_cast<std::uint64_t>(clamped));
    }
    trace_->hist(obs::Hist::PropagateNs,
                 static_cast<double>(trace_->now_ns() - t0));
  }
}

Factor JunctionTreeEngine::marginal(VarId v) const {
  BNS_EXPECTS(propagated_);
  const int home = home_of_[static_cast<std::size_t>(v)];
  BNS_ASSERT(home >= 0);
  Factor m = clique_pot_[static_cast<std::size_t>(home)].marginal(
      std::span<const VarId>(&v, 1));
  m.normalize();
  return m;
}

Factor JunctionTreeEngine::joint_marginal(std::span<const VarId> vs) const {
  std::optional<Factor> m = try_joint_marginal(vs);
  BNS_EXPECTS_MSG(m.has_value(), "queried variables do not share a clique");
  return *std::move(m);
}

std::optional<Factor> JunctionTreeEngine::try_joint_marginal(
    std::span<const VarId> vs) const {
  BNS_EXPECTS(propagated_);
  std::vector<int> sorted(vs.begin(), vs.end());
  std::sort(sorted.begin(), sorted.end());
  const int home = tree_.clique_containing_all(sorted);
  if (home < 0) return std::nullopt;
  std::vector<VarId> keep(sorted.begin(), sorted.end());
  Factor m = clique_pot_[static_cast<std::size_t>(home)].marginal(keep);
  m.normalize();
  return m;
}

double JunctionTreeEngine::evidence_probability() const {
  BNS_EXPECTS(propagated_);
  // After a full propagation every clique sums to P(evidence); use a
  // root. (Each disconnected component carries its own factor; multiply.)
  double p = 1.0;
  for (int r : tree_.roots()) {
    p *= clique_pot_[static_cast<std::size_t>(r)].sum();
  }
  return p;
}

} // namespace bns
