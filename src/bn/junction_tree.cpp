#include "bn/junction_tree.h"

#include <algorithm>
#include <numeric>

#include "util/assert.h"
#include "util/strings.h"

namespace bns {
namespace {

std::vector<int> sorted_intersection(const std::vector<int>& a,
                                     const std::vector<int>& b) {
  std::vector<int> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

} // namespace

JunctionTree::JunctionTree(const Triangulation& t) : cliques_(t.cliques) {
  const int n = num_cliques();
  BNS_EXPECTS(n > 0);

  // Candidate edges: all clique pairs with non-empty intersection,
  // sorted by descending separator size (Kruskal max-spanning forest).
  struct Cand {
    int a;
    int b;
    int w;
  };
  std::vector<Cand> cands;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const auto sep = sorted_intersection(cliques_[static_cast<std::size_t>(a)],
                                           cliques_[static_cast<std::size_t>(b)]);
      if (!sep.empty()) cands.push_back({a, b, static_cast<int>(sep.size())});
    }
  }
  std::stable_sort(cands.begin(), cands.end(),
                   [](const Cand& x, const Cand& y) { return x.w > y.w; });

  // Union-find.
  std::vector<int> uf(static_cast<std::size_t>(n));
  std::iota(uf.begin(), uf.end(), 0);
  auto find = [&](int x) {
    while (uf[static_cast<std::size_t>(x)] != x) {
      uf[static_cast<std::size_t>(x)] =
          uf[static_cast<std::size_t>(uf[static_cast<std::size_t>(x)])];
      x = uf[static_cast<std::size_t>(x)];
    }
    return x;
  };

  std::vector<std::vector<std::pair<int, int>>> adj(static_cast<std::size_t>(n));
  for (const Cand& c : cands) {
    const int ra = find(c.a);
    const int rb = find(c.b);
    if (ra == rb) continue;
    uf[static_cast<std::size_t>(ra)] = rb;
    JunctionTreeEdge e;
    e.a = c.a;
    e.b = c.b;
    e.separator = sorted_intersection(cliques_[static_cast<std::size_t>(c.a)],
                                      cliques_[static_cast<std::size_t>(c.b)]);
    const int idx = static_cast<int>(edges_.size());
    edges_.push_back(std::move(e));
    adj[static_cast<std::size_t>(c.a)].emplace_back(c.b, idx);
    adj[static_cast<std::size_t>(c.b)].emplace_back(c.a, idx);
  }

  // Root each component at its lowest-index clique; BFS preorder.
  parents_.assign(static_cast<std::size_t>(n), -2);
  parent_edge_.assign(static_cast<std::size_t>(n), -1);
  for (int c = 0; c < n; ++c) {
    if (parents_[static_cast<std::size_t>(c)] != -2) continue;
    roots_.push_back(c);
    parents_[static_cast<std::size_t>(c)] = -1;
    std::vector<int> queue{c};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const int u = queue[head];
      preorder_.push_back(u);
      for (const auto& [v, eidx] : adj[static_cast<std::size_t>(u)]) {
        if (parents_[static_cast<std::size_t>(v)] != -2) continue;
        parents_[static_cast<std::size_t>(v)] = u;
        parent_edge_[static_cast<std::size_t>(v)] = eidx;
        queue.push_back(v);
      }
    }
  }
  BNS_ENSURES(static_cast<int>(preorder_.size()) == n);
}

const std::vector<int>& JunctionTree::clique(int i) const {
  BNS_EXPECTS(i >= 0 && i < num_cliques());
  return cliques_[static_cast<std::size_t>(i)];
}

int JunctionTree::clique_containing(int v) const {
  int best = -1;
  for (int i = 0; i < num_cliques(); ++i) {
    const auto& c = cliques_[static_cast<std::size_t>(i)];
    if (std::binary_search(c.begin(), c.end(), v)) {
      if (best == -1 ||
          c.size() < cliques_[static_cast<std::size_t>(best)].size()) {
        best = i;
      }
    }
  }
  return best;
}

int JunctionTree::clique_containing_all(std::span<const int> vs) const {
  int best = -1;
  for (int i = 0; i < num_cliques(); ++i) {
    const auto& c = cliques_[static_cast<std::size_t>(i)];
    if (std::includes(c.begin(), c.end(), vs.begin(), vs.end())) {
      if (best == -1 ||
          c.size() < cliques_[static_cast<std::size_t>(best)].size()) {
        best = i;
      }
    }
  }
  return best;
}

void lint_running_intersection(std::span<const std::vector<int>> cliques,
                               std::span<const JunctionTreeEdge> edges,
                               DiagnosticReport& report) {
  // For each variable: the induced subgraph of cliques containing it
  // must be connected in the tree. Count cliques containing v and edges
  // whose separator contains v: connected subtree <=> #edges = #cliques-1.
  int max_var = -1;
  for (const auto& c : cliques) {
    for (int v : c) max_var = std::max(max_var, v);
  }
  for (int v = 0; v <= max_var; ++v) {
    int n_cl = 0;
    for (const auto& c : cliques) {
      if (std::binary_search(c.begin(), c.end(), v)) ++n_cl;
    }
    if (n_cl == 0) continue;
    int n_ed = 0;
    for (const auto& e : edges) {
      if (std::binary_search(e.separator.begin(), e.separator.end(), v)) ++n_ed;
    }
    if (n_ed != n_cl - 1) {
      report.add(DiagCode::JT002, strformat("variable %d", v),
                 strformat("running intersection violated for variable %d "
                           "(%d cliques, %d separator edges)",
                           v, n_cl, n_ed));
    }
  }
}

void JunctionTree::lint_running_intersection(DiagnosticReport& report) const {
  bns::lint_running_intersection(cliques_, edges_, report);
}

std::string JunctionTree::check_running_intersection() const {
  DiagnosticReport report;
  lint_running_intersection(report);
  return report.empty() ? "" : report.diagnostics().front().message;
}

// ---------------------------------------------------------------------------
// JunctionTreeEngine
// ---------------------------------------------------------------------------

JunctionTreeEngine::JunctionTreeEngine(const BayesianNetwork& bn,
                                       CompileOptions opts)
    : bn_(&bn),
      tri_(triangulate(moral_graph(bn), opts.heuristic)),
      tree_(tri_) {
  // Assign each CPT to the smallest clique covering its scope. Such a
  // clique always exists: {v} ∪ parents(v) is a clique of the moral
  // graph, preserved by triangulation.
  cpt_home_.assign(static_cast<std::size_t>(bn.num_variables()), -1);
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    const auto& scope = bn.cpt(v).vars();
    const int home = tree_.clique_containing_all(
        std::span<const int>(scope.data(), scope.size()));
    BNS_ASSERT_MSG(home >= 0, "no clique covers a CPT family");
    cpt_home_[static_cast<std::size_t>(v)] = home;
  }
}

double JunctionTreeEngine::state_space() const {
  double total = 0.0;
  for (const auto& c : tree_.cliques()) {
    double s = 1.0;
    for (int v : c) s *= static_cast<double>(bn_->cardinality(v));
    total += s;
  }
  return total;
}

void JunctionTreeEngine::reset_potentials() {
  const int n = tree_.num_cliques();
  clique_pot_.clear();
  clique_pot_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto& c = tree_.clique(i);
    std::vector<VarId> vars(c.begin(), c.end());
    std::vector<int> cards;
    cards.reserve(vars.size());
    for (VarId v : vars) cards.push_back(bn_->cardinality(v));
    Factor f(std::move(vars), std::move(cards));
    std::fill(f.values().begin(), f.values().end(), 1.0);
    clique_pot_.push_back(std::move(f));
  }
  for (VarId v = 0; v < bn_->num_variables(); ++v) {
    clique_pot_[static_cast<std::size_t>(cpt_home_[static_cast<std::size_t>(v)])]
        .multiply_in(bn_->cpt(v));
  }

  sep_pot_.clear();
  sep_pot_.reserve(tree_.edges().size());
  for (const auto& e : tree_.edges()) {
    std::vector<VarId> vars(e.separator.begin(), e.separator.end());
    std::vector<int> cards;
    cards.reserve(vars.size());
    for (VarId v : vars) cards.push_back(bn_->cardinality(v));
    Factor f(std::move(vars), std::move(cards));
    std::fill(f.values().begin(), f.values().end(), 1.0);
    sep_pot_.push_back(std::move(f));
  }
  potentials_ready_ = true;
  propagated_ = false;
}

void JunctionTreeEngine::set_evidence(VarId v, int state) {
  BNS_EXPECTS(potentials_ready_);
  const int home = tree_.clique_containing(v);
  BNS_ASSERT(home >= 0);
  clique_pot_[static_cast<std::size_t>(home)].reduce(v, state);
  propagated_ = false;
}

void JunctionTreeEngine::set_soft_evidence(VarId v,
                                           std::span<const double> likelihood) {
  BNS_EXPECTS(potentials_ready_);
  BNS_EXPECTS(static_cast<int>(likelihood.size()) == bn_->cardinality(v));
  Factor lambda({v}, {bn_->cardinality(v)});
  for (std::size_t s = 0; s < likelihood.size(); ++s) {
    lambda.set_value(s, likelihood[s]);
  }
  const int home = tree_.clique_containing(v);
  BNS_ASSERT(home >= 0);
  clique_pot_[static_cast<std::size_t>(home)].multiply_in(lambda);
  propagated_ = false;
}

void JunctionTreeEngine::pass_message(int from, int to, int edge) {
  Factor& sep = sep_pot_[static_cast<std::size_t>(edge)];
  const auto& sep_scope = sep.vars();
  Factor msg = clique_pot_[static_cast<std::size_t>(from)].marginal(sep_scope);
  Factor update = msg;             // msg / old separator
  update.divide_in(sep);
  clique_pot_[static_cast<std::size_t>(to)].multiply_in(update);
  sep = std::move(msg);
}

void JunctionTreeEngine::propagate() {
  BNS_EXPECTS(potentials_ready_);
  const auto& pre = tree_.preorder();
  // Collect: children to parents, reverse preorder.
  for (auto it = pre.rbegin(); it != pre.rend(); ++it) {
    const int c = *it;
    const int p = tree_.parent(c);
    if (p >= 0) pass_message(c, p, tree_.parent_edge(c));
  }
  // Distribute: parents to children, preorder.
  for (int c : pre) {
    const int p = tree_.parent(c);
    if (p >= 0) pass_message(p, c, tree_.parent_edge(c));
  }
  propagated_ = true;
}

Factor JunctionTreeEngine::marginal(VarId v) const {
  BNS_EXPECTS(propagated_);
  const int home = tree_.clique_containing(v);
  BNS_ASSERT(home >= 0);
  Factor m = clique_pot_[static_cast<std::size_t>(home)].marginal(
      std::span<const VarId>(&v, 1));
  m.normalize();
  return m;
}

Factor JunctionTreeEngine::joint_marginal(std::span<const VarId> vs) const {
  std::optional<Factor> m = try_joint_marginal(vs);
  BNS_EXPECTS_MSG(m.has_value(), "queried variables do not share a clique");
  return *std::move(m);
}

std::optional<Factor> JunctionTreeEngine::try_joint_marginal(
    std::span<const VarId> vs) const {
  BNS_EXPECTS(propagated_);
  std::vector<int> sorted(vs.begin(), vs.end());
  std::sort(sorted.begin(), sorted.end());
  const int home = tree_.clique_containing_all(sorted);
  if (home < 0) return std::nullopt;
  std::vector<VarId> keep(sorted.begin(), sorted.end());
  Factor m = clique_pot_[static_cast<std::size_t>(home)].marginal(keep);
  m.normalize();
  return m;
}

double JunctionTreeEngine::evidence_probability() const {
  BNS_EXPECTS(propagated_);
  // After a full propagation every clique sums to P(evidence); use a
  // root. (Each disconnected component carries its own factor; multiply.)
  double p = 1.0;
  for (int r : tree_.roots()) {
    p *= clique_pot_[static_cast<std::size_t>(r)].sum();
  }
  return p;
}

} // namespace bns
