// Undirected graphs, moralization and triangulation — the structural
// half of the Bayesian-network compilation process (Section 5 of the
// paper: DAG → moral graph → triangulated graph → cliques).
#pragma once

#include <set>
#include <utility>
#include <vector>

#include "bn/bayes_net.h"

namespace bns {

class UndirectedGraph {
 public:
  explicit UndirectedGraph(int n = 0);

  int num_vertices() const { return static_cast<int>(adj_.size()); }
  void add_edge(int a, int b); // idempotent; a != b
  bool has_edge(int a, int b) const;
  const std::set<int>& neighbors(int v) const;
  std::size_t num_edges() const;
  int degree(int v) const;

  // All edges as ordered (a < b) pairs, ascending — deterministic.
  std::vector<std::pair<int, int>> edges() const;

 private:
  std::vector<std::set<int>> adj_;
};

// Moral graph of a BN: connect each variable to its parents, marry all
// co-parents, drop directions.
UndirectedGraph moral_graph(const BayesianNetwork& bn);

enum class EliminationHeuristic {
  MinFill,   // fewest fill edges introduced (paper-quality default)
  MinDegree, // smallest current degree
};

struct Triangulation {
  UndirectedGraph graph;                      // original + fill edges
  std::vector<std::pair<int, int>> fill_edges;
  std::vector<int> elimination_order;         // a perfect order of `graph`
  std::vector<std::vector<int>> cliques;      // maximal cliques, each sorted
  // Sum over cliques of prod(card) — the junction-tree state-space size,
  // used as the cost measure when deciding whether to segment.
  double total_state_space(std::span<const int> cards) const;
  std::size_t max_clique_size() const;
};

// Triangulates `g` by vertex elimination with the given heuristic.
// Deterministic (ties broken by vertex id). The returned cliques are the
// maximal cliques of the triangulated graph.
Triangulation triangulate(const UndirectedGraph& g,
                          EliminationHeuristic h = EliminationHeuristic::MinFill);

// Triangulates along a caller-supplied elimination order (for tests and
// for reproducing textbook examples).
Triangulation triangulate_with_order(const UndirectedGraph& g,
                                     std::span<const int> order);

// True if `order` is a perfect elimination order of g (i.e. g is chordal
// with respect to it).
bool is_perfect_elimination_order(const UndirectedGraph& g,
                                  std::span<const int> order);

} // namespace bns
