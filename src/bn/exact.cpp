#include "bn/exact.h"

#include <algorithm>
#include <set>

#include "util/assert.h"

namespace bns {
namespace {

// Multiplies all factors mentioning `v`, sums v out, and replaces them
// with the result. Factors are kept in a work list.
void eliminate_var(std::vector<Factor>& work, VarId v) {
  Factor acc = Factor::scalar(1.0);
  std::vector<Factor> rest;
  rest.reserve(work.size());
  for (Factor& f : work) {
    if (f.contains(v)) {
      acc = acc.product(f);
    } else {
      rest.push_back(std::move(f));
    }
  }
  rest.push_back(acc.sum_out(v));
  work = std::move(rest);
}

std::vector<Factor> reduced_cpts(const BayesianNetwork& bn,
                                 const Evidence& evidence) {
  std::vector<Factor> work;
  work.reserve(static_cast<std::size_t>(bn.num_variables()));
  for (VarId u = 0; u < bn.num_variables(); ++u) work.push_back(bn.cpt(u));
  for (const auto& [ev, es] : evidence) {
    for (Factor& f : work) {
      if (f.contains(ev)) f.reduce(ev, es);
    }
  }
  return work;
}

// Min-degree elimination order over the variables in `keep_out` = all
// variables except those we must not eliminate.
std::vector<VarId> elimination_order(const BayesianNetwork& bn,
                                     const std::set<VarId>& protect) {
  // Interaction graph of the CPT scopes.
  const int n = bn.num_variables();
  std::vector<std::set<int>> adj(static_cast<std::size_t>(n));
  for (VarId u = 0; u < n; ++u) {
    const auto& scope = bn.cpt(u).vars();
    for (std::size_t i = 0; i < scope.size(); ++i) {
      for (std::size_t j = i + 1; j < scope.size(); ++j) {
        adj[static_cast<std::size_t>(scope[i])].insert(scope[j]);
        adj[static_cast<std::size_t>(scope[j])].insert(scope[i]);
      }
    }
  }
  std::vector<bool> gone(static_cast<std::size_t>(n), false);
  std::vector<VarId> order;
  for (int step = 0; step < n - static_cast<int>(protect.size()); ++step) {
    int best = -1;
    std::size_t best_deg = 0;
    for (int v = 0; v < n; ++v) {
      if (gone[static_cast<std::size_t>(v)] || protect.count(v)) continue;
      const std::size_t deg = adj[static_cast<std::size_t>(v)].size();
      if (best == -1 || deg < best_deg) {
        best = v;
        best_deg = deg;
      }
    }
    BNS_ASSERT(best >= 0);
    // Connect neighbors, remove best.
    std::vector<int> nb(adj[static_cast<std::size_t>(best)].begin(),
                        adj[static_cast<std::size_t>(best)].end());
    for (std::size_t i = 0; i < nb.size(); ++i) {
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        adj[static_cast<std::size_t>(nb[i])].insert(nb[j]);
        adj[static_cast<std::size_t>(nb[j])].insert(nb[i]);
      }
    }
    for (int u : nb) adj[static_cast<std::size_t>(u)].erase(best);
    adj[static_cast<std::size_t>(best)].clear();
    gone[static_cast<std::size_t>(best)] = true;
    order.push_back(best);
  }
  return order;
}

} // namespace

Factor ve_marginal(const BayesianNetwork& bn, VarId v,
                   const Evidence& evidence) {
  std::vector<Factor> work = reduced_cpts(bn, evidence);
  for (VarId u : elimination_order(bn, {v})) eliminate_var(work, u);
  Factor acc = Factor::scalar(1.0);
  for (const Factor& f : work) acc = acc.product(f);
  Factor m = acc.marginal(std::span<const VarId>(&v, 1));
  m.normalize();
  return m;
}

double ve_evidence_probability(const BayesianNetwork& bn,
                               const Evidence& evidence) {
  std::vector<Factor> work = reduced_cpts(bn, evidence);
  for (VarId u : elimination_order(bn, {})) eliminate_var(work, u);
  double p = 1.0;
  for (const Factor& f : work) {
    BNS_ASSERT(f.arity() == 0);
    p *= f.value(0);
  }
  return p;
}

std::vector<Factor> brute_force_marginals(const BayesianNetwork& bn,
                                          const Evidence& evidence) {
  const int n = bn.num_variables();
  double total_states = 1.0;
  for (VarId v = 0; v < n; ++v) total_states *= bn.cardinality(v);
  BNS_EXPECTS_MSG(total_states <= 4.2e6, "joint too large for brute force");

  std::vector<Factor> marg;
  marg.reserve(static_cast<std::size_t>(n));
  for (VarId v = 0; v < n; ++v) {
    marg.emplace_back(std::vector<VarId>{v}, std::vector<int>{bn.cardinality(v)});
  }

  std::vector<int> states(static_cast<std::size_t>(n), 0);
  double z = 0.0;
  for (;;) {
    bool consistent = true;
    for (const auto& [ev, es] : evidence) {
      if (states[static_cast<std::size_t>(ev)] != es) {
        consistent = false;
        break;
      }
    }
    if (consistent) {
      const double p = bn.joint_probability(states);
      z += p;
      for (VarId v = 0; v < n; ++v) {
        const std::size_t s = static_cast<std::size_t>(states[static_cast<std::size_t>(v)]);
        marg[static_cast<std::size_t>(v)].set_value(
            s, marg[static_cast<std::size_t>(v)].value(s) + p);
      }
    }
    // Mixed-radix increment.
    int k = 0;
    for (; k < n; ++k) {
      if (++states[static_cast<std::size_t>(k)] < bn.cardinality(k)) break;
      states[static_cast<std::size_t>(k)] = 0;
    }
    if (k == n) break;
  }
  BNS_ASSERT_MSG(z > 0.0, "evidence has probability zero");
  for (Factor& f : marg) f.normalize();
  return marg;
}

} // namespace bns
