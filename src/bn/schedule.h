// Compiled propagation schedules for the Hugin junction-tree engine.
//
// The paper's engineering claim is that compilation is paid once and a
// change of input statistics only costs a cheap "update" (reload root
// priors, re-propagate). The schedule makes that literal: at compile
// time every junction-tree edge gets a MessagePlan — reusable stride
// programs between the clique scopes and the separator scope plus a
// preallocated message buffer — and every CPT gets a CliqueLoad mapping
// it into its home clique. After the first load, propagate() and
// load_potentials() run zero-allocation tight loops over these plans.
//
// The schedule also records the tree's parallel structure: each
// root-child subtree is an independent SubtreeUnit. During collect, units
// only touch their own cliques/separators and leave the final
// child→root ratio parked in the edge buffer; the root applications are
// replayed sequentially in the same order the plain reverse-preorder
// sweep would use, so parallel propagation is bit-identical to
// sequential propagation.
#pragma once

#include <span>
#include <vector>

#include "bn/factor.h"

namespace bns {

class BayesianNetwork;
class JunctionTree;

// Everything needed to pass a message across one edge in either
// direction without allocating: marginalize the source clique onto the
// separator through its ScopeMap, divide by the old separator into
// `ratio`, multiply `ratio` into the destination clique through the
// other ScopeMap.
struct MessagePlan {
  int a = 0;
  int b = 0;
  ScopeMap from_a; // clique a scope -> separator scope
  ScopeMap from_b; // clique b scope -> separator scope
  // Separator-sized workspace: holds the fresh marginal, then the
  // update ratio fresh/old. Owned per edge, so concurrent units never
  // share one.
  std::vector<double> ratio;
};

// One CPT absorption into its home clique at load time.
struct CliqueLoad {
  VarId var = 0;
  std::size_t cpt_size = 0; // expected table size; guards re-quantification
  ScopeMap map;             // home clique scope -> CPT scope
};

// A maximal subtree hanging off a root: the unit of intra-tree
// parallelism. `preorder` lists its cliques in global-preorder order
// starting at `top` (a child of `root`).
struct SubtreeUnit {
  int top = -1;
  int root = -1;
  int edge = -1; // tree edge (top, root)
  std::vector<int> preorder;
};

struct PropagationSchedule {
  std::vector<MessagePlan> edges;             // parallel to tree.edges()
  std::vector<std::vector<CliqueLoad>> loads; // per clique, ascending var id
  std::vector<SubtreeUnit> units;
  // Per root (tree.roots() order): indices into `units` of its child
  // subtrees in *reverse* discovery order — the order in which the
  // sequential reverse-preorder collect applies their messages.
  std::vector<std::vector<int>> root_units;
};

// Compiles the schedule for `tree` over the cardinalities and CPT scopes
// of `bn`. `cpt_home[v]` names the clique absorbing the CPT of v.
PropagationSchedule build_schedule(const JunctionTree& tree,
                                   const BayesianNetwork& bn,
                                   std::span<const int> cpt_home);

// --- introspection for the static schedule analyzer (verify/) ----------

// Largest sub-table offset the stride program can ever produce: the
// mixed-radix counter maxes every remaining axis, so the bound is
// Σ_k (cards[k] - 1) * strides[k]. Exact, not an estimate.
std::size_t scope_map_max_sub_offset(const ScopeMap& m);

// Number of super-table cells the program walks: run * Π cards. A sound
// map tiles its super table exactly, i.e. this equals m.size.
std::size_t scope_map_domain_size(const ScopeMap& m);

// True iff executing `m` stays inside super[0, super_size) and
// sub[0, sub_size): the walk covers exactly super_size cells and the
// peak sub offset is below sub_size. This is the static in-bounds
// obligation the SC004/SC005 checks discharge per plan.
bool scope_map_in_bounds(const ScopeMap& m, std::size_t super_size,
                         std::size_t sub_size);

} // namespace bns
