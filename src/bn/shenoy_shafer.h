// Shenoy–Shafer propagation: the other classical junction-tree
// message-passing architecture. Unlike Hugin propagation it keeps the
// clique potentials immutable and stores one message per directed tree
// edge (no separator division), trading memory for divisions. Having
// two independently derived exact engines lets the test suite
// cross-check the inference core against itself as well as against
// variable elimination and brute force.
#pragma once

#include "bn/junction_tree.h"

namespace bns {

class ShenoyShaferEngine {
 public:
  explicit ShenoyShaferEngine(const BayesianNetwork& bn,
                              CompileOptions opts = {});

  const JunctionTree& tree() const { return tree_; }

  // Loads CPTs into per-clique base potentials and clears evidence.
  void reset_potentials();

  // Hard evidence: variable v observed in state s.
  void set_evidence(VarId v, int state);

  // Computes all inward and outward messages.
  void propagate();

  // Normalized posterior marginal of one variable.
  Factor marginal(VarId v) const;

  // Probability of the evidence entered before propagate().
  double evidence_probability() const;

 private:
  // Message along edge e in the direction a->b (directions_[e] selects
  // storage slot 0 for a->b with a == edges()[e].a, slot 1 for b->a).
  Factor compute_message(int edge, bool from_a) const;
  const Factor& message(int edge, bool from_a) const;

  const BayesianNetwork* bn_; // non-owning
  Triangulation tri_;
  JunctionTree tree_;
  std::vector<int> cpt_home_;
  std::vector<Factor> base_pot_;    // immutable clique potentials
  std::vector<Factor> msg_[2];      // [0]: a->b, [1]: b->a per edge
  std::vector<bool> msg_ready_[2];
  bool potentials_ready_ = false;
  bool propagated_ = false;
};

} // namespace bns
