#include "bn/shenoy_shafer.h"

#include <algorithm>

#include "util/assert.h"

namespace bns {

ShenoyShaferEngine::ShenoyShaferEngine(const BayesianNetwork& bn,
                                       CompileOptions opts)
    : bn_(&bn),
      tri_(triangulate(moral_graph(bn), opts.heuristic)),
      tree_(tri_) {
  cpt_home_.assign(static_cast<std::size_t>(bn.num_variables()), -1);
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    const auto& scope = bn.cpt(v).vars();
    const int home = tree_.clique_containing_all(
        std::span<const int>(scope.data(), scope.size()));
    BNS_ASSERT_MSG(home >= 0, "no clique covers a CPT family");
    cpt_home_[static_cast<std::size_t>(v)] = home;
  }
}

void ShenoyShaferEngine::reset_potentials() {
  const int n = tree_.num_cliques();
  base_pot_.clear();
  base_pot_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto& c = tree_.clique(i);
    std::vector<VarId> vars(c.begin(), c.end());
    std::vector<int> cards;
    cards.reserve(vars.size());
    for (VarId v : vars) cards.push_back(bn_->cardinality(v));
    Factor f(std::move(vars), std::move(cards));
    std::fill(f.values().begin(), f.values().end(), 1.0);
    base_pot_.push_back(std::move(f));
  }
  for (VarId v = 0; v < bn_->num_variables(); ++v) {
    base_pot_[static_cast<std::size_t>(cpt_home_[static_cast<std::size_t>(v)])]
        .multiply_in(bn_->cpt(v));
  }
  for (auto& m : msg_) {
    m.assign(tree_.edges().size(), Factor());
  }
  for (auto& r : msg_ready_) {
    r.assign(tree_.edges().size(), false);
  }
  potentials_ready_ = true;
  propagated_ = false;
}

void ShenoyShaferEngine::set_evidence(VarId v, int state) {
  BNS_EXPECTS(potentials_ready_);
  const int home = tree_.clique_containing(v);
  BNS_ASSERT(home >= 0);
  base_pot_[static_cast<std::size_t>(home)].reduce(v, state);
  propagated_ = false;
  for (auto& r : msg_ready_) {
    std::fill(r.begin(), r.end(), false);
  }
}

Factor ShenoyShaferEngine::compute_message(int edge, bool from_a) const {
  const JunctionTreeEdge& e = tree_.edges()[static_cast<std::size_t>(edge)];
  const int src = from_a ? e.a : e.b;
  // Product of the source's base potential and all messages into it
  // except the one along `edge`, marginalized to the separator.
  Factor pot = base_pot_[static_cast<std::size_t>(src)];
  for (std::size_t k = 0; k < tree_.edges().size(); ++k) {
    if (static_cast<int>(k) == edge) continue;
    const JunctionTreeEdge& other = tree_.edges()[k];
    if (other.a == src) {
      pot.multiply_in(message(static_cast<int>(k), /*from_a=*/false));
    } else if (other.b == src) {
      pot.multiply_in(message(static_cast<int>(k), /*from_a=*/true));
    }
  }
  std::vector<VarId> sep(e.separator.begin(), e.separator.end());
  return pot.marginal(sep);
}

const Factor& ShenoyShaferEngine::message(int edge, bool from_a) const {
  const std::size_t slot = from_a ? 0 : 1;
  BNS_ASSERT(msg_ready_[slot][static_cast<std::size_t>(edge)]);
  return msg_[slot][static_cast<std::size_t>(edge)];
}

void ShenoyShaferEngine::propagate() {
  BNS_EXPECTS(potentials_ready_);
  // Inward pass (leaves to roots): reverse preorder guarantees all
  // children's messages exist before a node sends to its parent.
  const auto& pre = tree_.preorder();
  auto send = [&](int child, int parent, int edge) {
    const JunctionTreeEdge& e = tree_.edges()[static_cast<std::size_t>(edge)];
    const bool from_a = e.a == child;
    BNS_ASSERT((from_a ? e.b : e.a) == parent);
    const std::size_t slot = from_a ? 0 : 1;
    msg_[slot][static_cast<std::size_t>(edge)] = compute_message(edge, from_a);
    msg_ready_[slot][static_cast<std::size_t>(edge)] = true;
  };
  for (auto it = pre.rbegin(); it != pre.rend(); ++it) {
    const int c = *it;
    const int p = tree_.parent(c);
    if (p >= 0) send(c, p, tree_.parent_edge(c));
  }
  // Outward pass (roots to leaves).
  for (int c : pre) {
    const int p = tree_.parent(c);
    if (p >= 0) send(p, c, tree_.parent_edge(c));
  }
  propagated_ = true;
}

Factor ShenoyShaferEngine::marginal(VarId v) const {
  BNS_EXPECTS(propagated_);
  const int home = tree_.clique_containing(v);
  BNS_ASSERT(home >= 0);
  Factor pot = base_pot_[static_cast<std::size_t>(home)];
  for (std::size_t k = 0; k < tree_.edges().size(); ++k) {
    const JunctionTreeEdge& e = tree_.edges()[k];
    if (e.a == home) {
      pot.multiply_in(message(static_cast<int>(k), /*from_a=*/false));
    } else if (e.b == home) {
      pot.multiply_in(message(static_cast<int>(k), /*from_a=*/true));
    }
  }
  Factor m = pot.marginal(std::span<const VarId>(&v, 1));
  m.normalize();
  return m;
}

double ShenoyShaferEngine::evidence_probability() const {
  BNS_EXPECTS(propagated_);
  double p = 1.0;
  for (int r : tree_.roots()) {
    Factor pot = base_pot_[static_cast<std::size_t>(r)];
    for (std::size_t k = 0; k < tree_.edges().size(); ++k) {
      const JunctionTreeEdge& e = tree_.edges()[k];
      if (e.a == r) {
        pot.multiply_in(message(static_cast<int>(k), /*from_a=*/false));
      } else if (e.b == r) {
        pot.multiply_in(message(static_cast<int>(k), /*from_a=*/true));
      }
    }
    p *= pot.sum();
  }
  return p;
}

} // namespace bns
