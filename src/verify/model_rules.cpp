#include "verify/model_rules.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "util/strings.h"

namespace bns {

void lint_bayes_net(const BayesianNetwork& bn, DiagnosticReport& report,
                    const ModelLintOptions& opts) {
  // Generic invariants (BN001/BN002/BN003/BN005/BN006/BN008) live with
  // the network itself; this pass adds the LIDAG-specific determinism
  // requirement on top.
  bn.lint_into(report, opts.tol);

  for (VarId v : opts.deterministic_vars) {
    if (v < 0 || v >= bn.num_variables() || !bn.has_cpt(v)) continue;
    const Factor& f = bn.cpt(v);
    for (std::size_t i = 0; i < f.size(); ++i) {
      const double p = f.value(i);
      if (std::abs(p) > opts.tol && std::abs(p - 1.0) > opts.tol) {
        report.add(DiagCode::BN004, bn.name(v),
                   strformat("CPT of '%s' must be deterministic but entry "
                             "%zu is %g",
                             bn.name(v).c_str(), i, p));
        break;
      }
    }
  }
}

void lint_lidag_structure(const Netlist& nl, const BayesianNetwork& bn,
                          std::span<const VarId> var_of_node,
                          std::span<const VarId> root_vars,
                          DiagnosticReport& report) {
  const std::unordered_set<VarId> roots(root_vars.begin(), root_vars.end());
  if (var_of_node.size() != static_cast<std::size_t>(nl.num_nodes())) {
    report.add(DiagCode::BN006, nl.name(),
               strformat("var_of_node maps %zu lines but the netlist has %d",
                         var_of_node.size(), nl.num_nodes()));
    return;
  }

  // Variables that stand for circuit lines; everything else in the BN is
  // an auxiliary (decomposition or hidden-source) variable.
  std::vector<bool> is_line_var(static_cast<std::size_t>(bn.num_variables()),
                                false);
  for (VarId v : var_of_node) {
    if (v >= 0 && v < bn.num_variables()) {
      is_line_var[static_cast<std::size_t>(v)] = true;
    }
  }

  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const VarId v = var_of_node[static_cast<std::size_t>(id)];
    if (v < 0) continue;
    if (v >= bn.num_variables()) {
      report.add(DiagCode::BN006, nl.node(id).name,
                 strformat("line '%s' maps to variable %d outside the BN",
                           nl.node(id).name.c_str(), v));
      continue;
    }
    const Node& n = nl.node(id);
    const bool is_gate = n.type != GateType::Input &&
                         n.type != GateType::Const0 &&
                         n.type != GateType::Const1;
    if (!is_gate || roots.count(v)) continue;

    // Expected dependencies: the switching variables of the fanin lines
    // (deduplicated; fanins not represented in this segment are skipped).
    std::unordered_set<VarId> expected;
    for (NodeId f : n.fanin) {
      const VarId fv = var_of_node[static_cast<std::size_t>(f)];
      if (fv >= 0) expected.insert(fv);
    }

    // Actual dependencies: line-variable ancestors of v reachable
    // through auxiliary variables only (the divorcing tree is invisible
    // at the netlist level).
    std::unordered_set<VarId> actual;
    std::vector<VarId> stack(bn.parents(v).begin(), bn.parents(v).end());
    std::unordered_set<VarId> visited;
    while (!stack.empty()) {
      const VarId p = stack.back();
      stack.pop_back();
      if (!visited.insert(p).second) continue;
      if (is_line_var[static_cast<std::size_t>(p)]) {
        actual.insert(p);
        continue;
      }
      for (VarId pp : bn.parents(p)) stack.push_back(pp);
    }

    for (VarId fv : expected) {
      if (!actual.count(fv)) {
        report.add(DiagCode::BN007, n.name,
                   strformat("gate '%s' does not depend on its fanin "
                             "variable '%s'",
                             n.name.c_str(), bn.name(fv).c_str()));
      }
    }
    for (VarId av : actual) {
      if (!expected.count(av)) {
        report.add(DiagCode::BN007, n.name,
                   strformat("gate '%s' depends on '%s', which is not one "
                             "of its fanins",
                             n.name.c_str(), bn.name(av).c_str()));
      }
    }
  }
}

} // namespace bns
