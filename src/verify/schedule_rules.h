// Static schedule & plan analyzer (SC*): proves structural properties of
// a compiled PropagationSchedule before it ever runs.
//
// Three proof obligations, mirroring what the dynamic checks (TSan, the
// bitwise sweep-equality tests) only sample:
//
//   1. Race freedom (SC001-SC004). The parallel collect/distribute sweep
//      is safe iff the SubtreeUnits partition the non-root cliques, every
//      unit only writes its own cliques and parent-edge buffers, root
//      messages are applied in the one fixed sequential order, and every
//      stride program stays inside its source/target buffers. All four
//      are decidable from the schedule alone.
//   2. Reload soundness (SC005-SC007). reload_incremental() restores a
//      clique from the snapshot unless a changed variable's cpt_home
//      names it — sound only when the load plans absorb each CPT exactly
//      once, at exactly that clique, with a table-size guard. The
//      estimator's segment-level dirty pre-screen must likewise be an
//      over-approximation of the segments reachable from changed inputs.
//   3. Numerical risk (SC008). Min-exponent dataflow from CPT statics
//      through the message-passing order lower-bounds the smallest
//      positive separator cell a propagation can produce; schedules whose
//      bound approaches the subnormal floor are flagged before running,
//      and the bound is checkable against the runtime sep_min_neg_exp
//      gauge (static bound >= observed negated exponent, always).
//
// All passes emit through the diagnostics engine, so `bns_lint
// --schedule`, LidagEstimator::verify(VerifyLevel::Schedule) and the CI
// lint-gate see the same stable SC codes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "bn/bayes_net.h"
#include "bn/junction_tree.h"
#include "bn/schedule.h"
#include "verify/diagnostics.h"

namespace bns {

struct ScheduleLintOptions {
  // SC008 fires when the static dataflow bound says a separator cell can
  // be smaller than 2^-max_neg_exp. DBL_MIN is 2^-1022 and the subnormal
  // floor 2^-1074; 1000 leaves headroom before gradual underflow starts
  // eating mantissa bits.
  int max_neg_exp = 1000;
};

// Result of the SC008 min-exponent dataflow (also returned when nothing
// is flagged, so tests can cross-check against the runtime gauge).
struct NumericalRiskBound {
  // Max over components of the negated exponent bound: the smallest
  // positive separator cell any propagation can produce is >=
  // 2^-worst_neg_exp. 0 = all cells provably >= 0.5 (or no edges).
  int worst_neg_exp = 0;
  // A tree root of the worst component, -1 when there are no cliques.
  int worst_root = -1;
};

// --- race-freedom proof (SC001, SC002, SC003) --------------------------
// SC001: the SubtreeUnits must partition the non-root cliques (each
// non-root clique in exactly one unit, parents inside the same unit, no
// root clique inside any unit) — otherwise two units, or a unit and the
// sequential root phase, write the same clique table concurrently.
// SC002: each unit's written edge set (parent edges of its cliques) must
// be claimed by that unit alone, and its parked `edge` must be the tree
// edge (top, root) the sequential root application will read.
// SC003: root_units must list each root's child subtrees exactly once in
// reverse discovery order — the order the sequential sweep uses — so the
// parallel replay is bit-identical and deterministic.
void lint_schedule_races(const JunctionTree& tree,
                         const PropagationSchedule& sched,
                         DiagnosticReport& report);

// --- stride-program bounds (SC004) -------------------------------------
// Every MessagePlan must name its tree edge's endpoints, carry a
// separator-sized ratio buffer, and its two ScopeMaps must be statically
// in-bounds (scope_map_in_bounds) for clique-table source and separator
// target.
void lint_stride_bounds(const BayesianNetwork& bn, const JunctionTree& tree,
                        const PropagationSchedule& sched,
                        DiagnosticReport& report);

// --- CPT load-plan soundness (SC005) -----------------------------------
// Every CliqueLoad must reference a live variable, record the CPT's
// current table size (the re-quantification guard), and walk in-bounds
// over clique table and CPT values.
void lint_load_plans(const BayesianNetwork& bn, const JunctionTree& tree,
                     const PropagationSchedule& sched,
                     DiagnosticReport& report);

// --- snapshot/reload coverage (SC006) ----------------------------------
// Proves reload_incremental() can never leave a clique stale: each
// variable's CPT is absorbed by exactly one load plan, and that plan
// lives at cpt_home[v] — the clique the reload marks dirty. A load
// parked anywhere else is re-written by the snapshot memcpy while its
// CPT changed (the stale-clique reload gap). `snap_off`, when non-empty
// (engine has snapshotted), must slice the snapshot buffer into exactly
// the clique table sizes.
void lint_reload_coverage(const BayesianNetwork& bn, const JunctionTree& tree,
                          const PropagationSchedule& sched,
                          std::span<const int> cpt_home,
                          std::span<const std::size_t> snap_off,
                          DiagnosticReport& report);

// --- dirty-clique message frontier (SC009) -----------------------------
// Proves the clique-granular partial propagate sound: restoring the
// collect message of every clean subtree and re-sending only the dirty
// frontier is bit-identical to a full propagate iff
//   1. `preorder` is a permutation of the cliques with every parent
//      listed before its children — the reverse-preorder dirt fold then
//      covers every tree path out of ANY dirty clique set (the frontier
//      coverage theorem: a child visited after its parent in the
//      reverse sweep would lose its recompute obligation);
//   2. `component_root` is the parent-structure fixed point
//      (root_of[c] == parent < 0 ? c : root_of[parent]) so whole-
//      component skips agree with the tree partition;
//   3. `msg_snap_off`, when non-empty (engine has snapshotted), slices
//      the message snapshot into exactly the separator sizes — a
//      mis-slice restores the wrong cells into sep and ratio;
//   4. every SubtreeUnit stays inside one component, so the per-unit
//      dirty filter (sub_dirty of its root) is decided by the component
//      the unit actually writes.
// The spans are passed explicitly (rather than read off the engine) so
// `bns_lint --inject frontier-gap` can hand in a corrupted preorder.
void lint_frontier_coverage(const BayesianNetwork& bn,
                            const JunctionTree& tree,
                            const PropagationSchedule& sched,
                            std::span<const int> preorder,
                            std::span<const int> component_root,
                            std::span<const std::size_t> msg_snap_off,
                            DiagnosticReport& report);

// --- numerical-risk dataflow (SC008) -----------------------------------
// Propagates per-CPT min-positive-entry exponents through the collect/
// distribute dataflow: a clique's smallest positive cell is bounded below
// by the product of its loads' minima times its children's separator
// bounds, and a separator marginal's positive cells are bounded by the
// sending clique's. The worst bound (the fully collected component
// product) is compared against opts.max_neg_exp; a breach emits SC008
// (Warning). Returns the bound either way.
NumericalRiskBound lint_numerical_risk(const BayesianNetwork& bn,
                                       const JunctionTree& tree,
                                       const PropagationSchedule& sched,
                                       DiagnosticReport& report,
                                       const ScheduleLintOptions& opts = {});

// Composite: all schedule passes over one prepared engine's compiled
// view (JunctionTreeEngine::compiled_view()). No-op when the view has
// no compiled schedule (compile_schedule off or not yet prepared).
NumericalRiskBound lint_schedule(const CompiledEngineView& view,
                                 DiagnosticReport& report,
                                 const ScheduleLintOptions& opts = {});

// --- dirty pre-screen over-approximation (SC007) -----------------------
// Abstraction of LidagEstimator::segment_maybe_dirty: which triggers can
// mark a segment dirty between batch scenarios. The screen is a sound
// over-approximation iff every trigger index is live (an out-of-range
// index reads garbage or skips the root entirely) and every boundary
// link's owner segment runs strictly before the reading segment (the
// screen consults the owner's re-ran flag, which is only written once
// the owner has executed this scenario).
enum class ScreenTriggerKind {
  Spec,     // per-primary-input statistics flag (index = input position)
  Node,     // per-line changed-distribution flag (index = inner NodeId)
  Group,    // per-input-group flag (index = group id)
  Constant, // never dirties — no trigger
};

struct ScreenRoot {
  int segment = 0; // reading segment
  ScreenTriggerKind kind = ScreenTriggerKind::Constant;
  int index = -1;  // into the kind's flag vector; unused for Constant
};

struct ScreenLink {
  int segment = 0;       // segment whose chained boundary CPT depends on
  int owner_segment = 0; // ... this earlier segment's re-ran flag
};

struct SegmentScreenModel {
  int num_segments = 0;
  int num_specs = 0;  // primary inputs (spec_changed_ size)
  int num_groups = 0; // input groups (group_changed_ size)
  int num_nodes = 0;  // inner netlist lines (node_changed_ size)
  std::vector<ScreenRoot> roots;
  std::vector<ScreenLink> links;
};

void lint_dirty_screen(const SegmentScreenModel& model,
                       DiagnosticReport& report);

} // namespace bns
