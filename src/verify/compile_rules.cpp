#include "verify/compile_rules.h"

#include <algorithm>

#include "util/strings.h"

namespace bns {

void lint_junction_structure(int num_vars,
                             std::span<const std::vector<int>> cliques,
                             std::span<const JunctionTreeEdge> edges,
                             DiagnosticReport& report) {
  std::vector<bool> covered(static_cast<std::size_t>(num_vars), false);
  for (std::size_t i = 0; i < cliques.size(); ++i) {
    for (int v : cliques[i]) {
      if (v < 0 || v >= num_vars) {
        report.add(DiagCode::JT005, strformat("clique %zu", i),
                   strformat("clique %zu contains variable %d outside the "
                             "model's range [0, %d)",
                             i, v, num_vars));
      } else {
        covered[static_cast<std::size_t>(v)] = true;
      }
    }
  }
  for (int v = 0; v < num_vars; ++v) {
    if (!covered[static_cast<std::size_t>(v)]) {
      report.add(DiagCode::JT005, strformat("variable %d", v),
                 strformat("variable %d appears in no clique", v));
    }
  }

  for (std::size_t i = 0; i < edges.size(); ++i) {
    const JunctionTreeEdge& e = edges[i];
    const std::size_t n = cliques.size();
    if (e.a < 0 || e.b < 0 || static_cast<std::size_t>(e.a) >= n ||
        static_cast<std::size_t>(e.b) >= n) {
      report.add(DiagCode::JT004, strformat("edge %zu", i),
                 strformat("edge %zu connects out-of-range cliques (%d, %d)",
                           i, e.a, e.b));
      continue;
    }
    const auto& ca = cliques[static_cast<std::size_t>(e.a)];
    const auto& cb = cliques[static_cast<std::size_t>(e.b)];
    std::vector<int> inter;
    std::set_intersection(ca.begin(), ca.end(), cb.begin(), cb.end(),
                          std::back_inserter(inter));
    if (inter != e.separator) {
      report.add(DiagCode::JT004, strformat("edge %zu", i),
                 strformat("separator of edge %zu (cliques %d, %d) is not "
                           "the clique intersection",
                           i, e.a, e.b));
    }
  }

  lint_running_intersection(cliques, edges, report);
}

void lint_compilation(const BayesianNetwork& bn, const Triangulation& tri,
                      const JunctionTree& jt, DiagnosticReport& report) {
  if (!is_perfect_elimination_order(tri.graph, tri.elimination_order)) {
    report.add(DiagCode::JT001, "triangulation",
               "elimination order is not a perfect elimination order of "
               "the filled graph: the triangulation is not chordal");
  }

  // Every family {v} ∪ parents(v) must live in some clique, or the CPT
  // of v cannot be absorbed into a potential.
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    std::vector<int> family(bn.parents(v).begin(), bn.parents(v).end());
    family.push_back(v);
    std::sort(family.begin(), family.end());
    if (jt.clique_containing_all(family) < 0) {
      report.add(DiagCode::JT003, bn.name(v),
                 strformat("family of '%s' (%zu variables) is not contained "
                           "in any clique",
                           bn.name(v).c_str(), family.size()));
    }
  }

  lint_junction_structure(bn.num_variables(), jt.cliques(), jt.edges(),
                          report);
}

} // namespace bns
