// Diagnostics engine of the static-verification subsystem: a typed
// Diagnostic (code + severity + location + message) and a
// DiagnosticReport that collects them and renders text or JSON.
//
// Every checker pass in src/verify/ (and the in-library lint hooks of
// BayesianNetwork / JunctionTree) emits through this engine so that the
// `bns_lint` CLI, the estimator's VerifyLevel knob, and the test suite
// all see the same stable diagnostic codes.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bns {

enum class Severity { Note, Warning, Error };

std::string_view severity_name(Severity s);
bool parse_severity(std::string_view name, Severity& out);

// Stable diagnostic codes. NL* = netlist lint, BN* = model lint,
// JT* = compilation (junction tree) lint. Codes are append-only: never
// renumber, tooling downstream keys on the names.
enum class DiagCode {
  // --- netlist ---------------------------------------------------------
  NL001, // undriven net: referenced as a fanin but never defined
  NL002, // multiply-driven net: more than one driver (or INPUT + gate)
  NL003, // floating net: driven but feeds nothing and is not an output
  NL004, // combinational loop through gate definitions
  NL005, // unreachable gate: not in the transitive fanin of any output
  NL006, // arity mismatch: fanin count invalid for the gate type
  NL007, // truth-table mismatch: LUT cover width != fanin count
  NL008, // syntax error in the netlist source
  NL009, // unknown gate type
  NL010, // no primary outputs declared
  NL011, // duplicate INPUT declaration
  NL012, // OUTPUT declared for an undefined net
  // --- Bayesian-network model ------------------------------------------
  BN001, // variable has no CPT
  BN002, // parent relation has a directed cycle (LIDAG must be a DAG)
  BN003, // CPT row not stochastic: a parent-config column does not sum to 1
  BN004, // gate-output CPT not deterministic (entries must be 0 or 1)
  BN005, // root prior invalid (negative mass or does not sum to 1)
  BN006, // family/factor domain mismatch (scope or cardinality)
  BN007, // LIDAG parents inconsistent with the netlist fanin
  BN008, // non-finite or negative probability entry
  // --- junction-tree compilation ---------------------------------------
  JT001, // elimination order is not perfect: triangulated graph not chordal
  JT002, // running intersection property violated
  JT003, // BN family not covered by any clique
  JT004, // separator is not the intersection of its endpoint cliques
  JT005, // variable not covered by any clique / out-of-range clique member
  // --- compiled propagation schedule & plan -----------------------------
  SC001, // parallel subtree units not write-disjoint over clique tables
  SC002, // parallel subtree units not write-disjoint over edge/ratio buffers
  SC003, // root message application order not a fixed deterministic sequence
  SC004, // message-plan stride program statically out of bounds
  SC005, // CPT load plan unsound (map bounds or table-size mismatch)
  SC006, // snapshot/reload coverage gap: clique may be restored stale
  SC007, // dirty pre-screen not an over-approximation of reachable cliques
  SC008, // schedule can underflow: static min-exponent bound past threshold
  SC009, // dirty-clique message frontier unsound (path uncovered / slicing)
};

// "NL001", "BN003", ... (stable identifier).
std::string_view diag_code_name(DiagCode c);
// One-line human description of what the code means.
std::string_view diag_code_summary(DiagCode c);
// Default severity a code is reported with (add() without an explicit
// severity uses this).
Severity diag_default_severity(DiagCode c);
bool parse_diag_code(std::string_view name, DiagCode& out);
// All known codes, for --list-codes style enumeration.
std::vector<DiagCode> all_diag_codes();

struct Diagnostic {
  DiagCode code = DiagCode::NL008;
  Severity severity = Severity::Error;
  // Where the problem is: "file.bench:12", a net/variable name, or a
  // clique index — whatever locates the finding best. May be empty.
  std::string location;
  std::string message;

  bool operator==(const Diagnostic&) const = default;
};

class DiagnosticReport {
 public:
  // Adds with the code's default severity.
  void add(DiagCode code, std::string location, std::string message);
  void add(DiagCode code, Severity severity, std::string location,
           std::string message);
  void merge(const DiagnosticReport& other);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  std::size_t size() const { return diags_.size(); }

  int count(Severity s) const;
  int num_errors() const { return count(Severity::Error); }
  int num_warnings() const { return count(Severity::Warning); }
  bool has_errors() const { return num_errors() > 0; }

  bool has_code(DiagCode c) const { return find(c) != nullptr; }
  const Diagnostic* find(DiagCode c) const;

  // One line per diagnostic: `error[NL004] file:7: message`.
  std::string render_text() const;

  // Machine-readable report:
  //   {"tool": ..., "file": ..., "errors": N, "warnings": M,
  //    "diagnostics": [{"code": ..., "summary": ..., "severity": ...,
  //                     "location": ..., "message": ...}, ...]}
  // `summary` is the code's diag_code_summary (redundant with `code`,
  // included so downstream tooling has a machine-readable description).
  std::string render_json(std::string_view tool = "bns_lint",
                          std::string_view file = "") const;

  // Parses text produced by render_json back into a report (strict on
  // JSON syntax, lenient on unknown extra keys). nullopt on malformed
  // input or unknown code/severity names.
  static std::optional<DiagnosticReport> from_json(std::string_view json);

  bool operator==(const DiagnosticReport&) const = default;

 private:
  std::vector<Diagnostic> diags_;
};

// How much static checking the analysis pipeline runs at compile time.
// Ordered: each level includes everything below it (compare with >=).
enum class VerifyLevel {
  Off,      // no checks (production fast path)
  Fast,     // netlist + model lint (cheap, no junction-tree introspection)
  Full,     // Fast + compilation lint (chordality, RIP, family cover)
  Schedule, // Full + compiled-schedule analysis (SC*: races, reload, numerics)
};

} // namespace bns
