// Netlist lint: structural checks that run without executing any
// inference.
//
// Two entry layers:
//  * Source-level lint (`lint_bench_text` / `lint_blif_text`) uses a
//    permissive scanner, so it can diagnose defects the strict readers
//    in src/netlist/ reject outright — combinational loops, undriven
//    and multiply-driven nets — and report *all* of them with line
//    numbers instead of throwing on the first.
//  * Structural lint (`lint_netlist`) runs on an already-built Netlist
//    (whose construction rules out loops and duplicate drivers) and
//    finds what construction permits: floating nets, unreachable gates,
//    arity and truth-table inconsistencies.
#pragma once

#include <string>
#include <string_view>

#include "netlist/netlist.h"
#include "verify/diagnostics.h"

namespace bns {

// Structural lint of a built netlist (NL003, NL005, NL006, NL007, NL010).
void lint_netlist(const Netlist& nl, DiagnosticReport& report);

// Source-level lint. `filename` only labels diagnostic locations.
void lint_bench_text(std::string_view text, std::string_view filename,
                     DiagnosticReport& report);
void lint_blif_text(std::string_view text, std::string_view filename,
                    DiagnosticReport& report);

// Reads `path` (dispatching .bench / .blif on the extension) and runs
// the source-level lint. Throws std::runtime_error when the file cannot
// be read or has an unknown extension.
DiagnosticReport lint_netlist_file(const std::string& path);

} // namespace bns
