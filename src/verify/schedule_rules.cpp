#include "verify/schedule_rules.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/strings.h"

namespace bns {
namespace {

// Table size of clique i: product of its member cardinalities. Members
// outside the BN's variable domain are JT005's business; treat them as
// cardinality 1 here so the SC passes keep going.
std::size_t clique_table_size(const BayesianNetwork& bn,
                              const std::vector<int>& clique) {
  std::size_t n = 1;
  for (int v : clique) {
    if (v >= 0 && v < bn.num_variables()) {
      n *= static_cast<std::size_t>(bn.cardinality(v));
    }
  }
  return n;
}

std::size_t separator_size(const BayesianNetwork& bn,
                           const JunctionTreeEdge& e) {
  std::size_t n = 1;
  for (int v : e.separator) {
    if (v >= 0 && v < bn.num_variables()) {
      n *= static_cast<std::size_t>(bn.cardinality(v));
    }
  }
  return n;
}

std::string unit_loc(std::size_t u) {
  return strformat("unit %zu", u);
}

} // namespace

void lint_schedule_races(const JunctionTree& tree,
                         const PropagationSchedule& sched,
                         DiagnosticReport& report) {
  const int nc = tree.num_cliques();
  const int ne = static_cast<int>(tree.edges().size());
  std::vector<bool> is_root(static_cast<std::size_t>(nc), false);
  for (int r : tree.roots()) {
    if (r >= 0 && r < nc) is_root[static_cast<std::size_t>(r)] = true;
  }

  // Ownership maps: which unit writes each clique table / edge buffer.
  std::vector<int> clique_owner(static_cast<std::size_t>(nc), -1);
  std::vector<int> edge_owner(static_cast<std::size_t>(ne), -1);

  for (std::size_t u = 0; u < sched.units.size(); ++u) {
    const SubtreeUnit& unit = sched.units[u];
    if (unit.top < 0 || unit.top >= nc || unit.root < 0 || unit.root >= nc) {
      report.add(DiagCode::SC001, unit_loc(u),
                 strformat("unit references out-of-range cliques "
                           "(top %d, root %d of %d)",
                           unit.top, unit.root, nc));
      continue;
    }
    if (unit.edge < 0 || unit.edge >= ne) {
      report.add(DiagCode::SC002, unit_loc(u),
                 strformat("unit parks its root message in out-of-range "
                           "edge buffer %d of %d",
                           unit.edge, ne));
      continue;
    }
    if (unit.preorder.empty() || unit.preorder.front() != unit.top) {
      report.add(DiagCode::SC003, unit_loc(u),
                 strformat("unit preorder does not start at its top clique "
                           "%d — sweep order is undefined",
                           unit.top));
      continue;
    }
    if (tree.parent(unit.top) != unit.root) {
      report.add(DiagCode::SC001, unit_loc(u),
                 strformat("unit top clique %d is not a tree child of its "
                           "root clique %d",
                           unit.top, unit.root));
    }
    if (unit.edge != tree.parent_edge(unit.top)) {
      report.add(DiagCode::SC002, unit_loc(u),
                 strformat("unit parks its root message in edge buffer %d "
                           "but the sequential root application reads edge "
                           "%d — the ratio would be lost or clobbered",
                           unit.edge, tree.parent_edge(unit.top)));
    }
    for (int c : unit.preorder) {
      if (c < 0 || c >= nc) {
        report.add(DiagCode::SC001, unit_loc(u),
                   strformat("unit preorder names out-of-range clique %d", c));
        continue;
      }
      if (is_root[static_cast<std::size_t>(c)]) {
        report.add(DiagCode::SC001, unit_loc(u),
                   strformat("unit writes root clique %d, which the "
                             "sequential root phase also writes — not "
                             "write-disjoint",
                             c));
        continue;
      }
      int& owner = clique_owner[static_cast<std::size_t>(c)];
      if (owner >= 0 && owner != static_cast<int>(u)) {
        report.add(DiagCode::SC001, unit_loc(u),
                   strformat("clique %d is written by units %d and %zu — "
                             "parallel collect would race on its table",
                             c, owner, u));
        continue;
      }
      owner = static_cast<int>(u);
      if (c != unit.top) {
        const int p = tree.parent(c);
        if (p < 0 || p >= nc ||
            clique_owner[static_cast<std::size_t>(p)] != static_cast<int>(u)) {
          report.add(DiagCode::SC001, unit_loc(u),
                     strformat("clique %d's tree parent %d lies outside the "
                               "unit — its message would cross unit "
                               "boundaries mid-sweep",
                               c, p));
        }
      }
      const int e = tree.parent_edge(c);
      if (e < 0 || e >= ne) {
        report.add(DiagCode::SC002, unit_loc(u),
                   strformat("clique %d has out-of-range parent edge %d", c,
                             e));
        continue;
      }
      int& eo = edge_owner[static_cast<std::size_t>(e)];
      if (eo >= 0 && eo != static_cast<int>(u)) {
        report.add(DiagCode::SC002, unit_loc(u),
                   strformat("edge buffer %d is written by units %d and %zu "
                             "— parallel collect would race on its "
                             "separator/ratio storage",
                             e, eo, u));
        continue;
      }
      eo = static_cast<int>(u);
    }
  }

  // Every non-root clique must be collected by some unit; an orphan is
  // silently skipped by the parallel sweep (its message never computed).
  for (int c = 0; c < nc; ++c) {
    if (!is_root[static_cast<std::size_t>(c)] &&
        clique_owner[static_cast<std::size_t>(c)] < 0) {
      report.add(DiagCode::SC003, strformat("clique %d", c),
                 "non-root clique belongs to no subtree unit — the parallel "
                 "sweep would never collect it");
    }
  }

  // Root application order: root_units[r] must list exactly the units
  // rooted at tree.roots()[r], in reverse discovery (preorder) order —
  // the order the sequential collect applies their messages.
  if (sched.root_units.size() != tree.roots().size()) {
    report.add(DiagCode::SC003, "root_units",
               strformat("schedule has %zu root application sequences for "
                         "%zu tree roots",
                         sched.root_units.size(), tree.roots().size()));
    return;
  }
  std::vector<int> unit_of_top(static_cast<std::size_t>(nc), -1);
  for (std::size_t u = 0; u < sched.units.size(); ++u) {
    const int top = sched.units[u].top;
    if (top >= 0 && top < nc) {
      unit_of_top[static_cast<std::size_t>(top)] = static_cast<int>(u);
    }
  }
  for (std::size_t r = 0; r < tree.roots().size(); ++r) {
    const int root = tree.roots()[r];
    std::vector<int> expected;
    for (int c : tree.preorder()) {
      if (tree.parent(c) == root &&
          unit_of_top[static_cast<std::size_t>(c)] >= 0) {
        expected.push_back(unit_of_top[static_cast<std::size_t>(c)]);
      }
    }
    std::reverse(expected.begin(), expected.end());
    if (sched.root_units[r] != expected) {
      report.add(DiagCode::SC003, strformat("root %d", root),
                 strformat("root application sequence lists %zu units and "
                           "differs from the sequential reverse-discovery "
                           "order (%zu units) — parallel and sequential "
                           "sweeps would diverge",
                           sched.root_units[r].size(), expected.size()));
    }
  }
}

void lint_stride_bounds(const BayesianNetwork& bn, const JunctionTree& tree,
                        const PropagationSchedule& sched,
                        DiagnosticReport& report) {
  if (sched.edges.size() != tree.edges().size()) {
    report.add(DiagCode::SC004, "edges",
               strformat("schedule has %zu message plans for %zu tree edges",
                         sched.edges.size(), tree.edges().size()));
  }
  const std::size_t n = std::min(sched.edges.size(), tree.edges().size());
  for (std::size_t e = 0; e < n; ++e) {
    const MessagePlan& plan = sched.edges[e];
    const JunctionTreeEdge& te = tree.edges()[e];
    const std::string loc = strformat("edge %zu", e);
    if (plan.a != te.a || plan.b != te.b) {
      report.add(DiagCode::SC004, loc,
                 strformat("plan endpoints (%d, %d) do not match the tree "
                           "edge (%d, %d) — messages would load/store the "
                           "wrong clique tables",
                           plan.a, plan.b, te.a, te.b));
      continue;
    }
    const std::size_t sep_size = separator_size(bn, te);
    if (plan.ratio.size() != sep_size) {
      report.add(DiagCode::SC004, loc,
                 strformat("ratio buffer holds %zu cells for a separator of "
                           "%zu — marginalization would write out of bounds",
                           plan.ratio.size(), sep_size));
    }
    const std::size_t size_a = clique_table_size(bn, tree.clique(te.a));
    const std::size_t size_b = clique_table_size(bn, tree.clique(te.b));
    if (!scope_map_in_bounds(plan.from_a, size_a, sep_size)) {
      report.add(DiagCode::SC004, loc,
                 strformat("from_a stride program is not statically "
                           "in-bounds for clique table %d (%zu cells) onto "
                           "a %zu-cell separator",
                           te.a, size_a, sep_size));
    }
    if (!scope_map_in_bounds(plan.from_b, size_b, sep_size)) {
      report.add(DiagCode::SC004, loc,
                 strformat("from_b stride program is not statically "
                           "in-bounds for clique table %d (%zu cells) onto "
                           "a %zu-cell separator",
                           te.b, size_b, sep_size));
    }
  }
}

void lint_load_plans(const BayesianNetwork& bn, const JunctionTree& tree,
                     const PropagationSchedule& sched,
                     DiagnosticReport& report) {
  if (sched.loads.size() != static_cast<std::size_t>(tree.num_cliques())) {
    report.add(DiagCode::SC005, "loads",
               strformat("schedule has load programs for %zu cliques of %d",
                         sched.loads.size(), tree.num_cliques()));
  }
  const std::size_t n = std::min(
      sched.loads.size(), static_cast<std::size_t>(tree.num_cliques()));
  for (std::size_t c = 0; c < n; ++c) {
    const std::size_t table = clique_table_size(bn, tree.clique(static_cast<int>(c)));
    for (const CliqueLoad& load : sched.loads[c]) {
      const std::string loc = strformat("clique %zu", c);
      if (load.var < 0 || load.var >= bn.num_variables() ||
          !bn.has_cpt(load.var)) {
        report.add(DiagCode::SC005, loc,
                   strformat("load plan references variable %d without a "
                             "live CPT",
                             load.var));
        continue;
      }
      const std::size_t cpt_size = bn.cpt(load.var).size();
      if (load.cpt_size != cpt_size) {
        report.add(DiagCode::SC005, loc,
                   strformat("load plan for variable %d expects a %zu-cell "
                             "CPT but the network holds %zu cells — the "
                             "re-quantification guard is stale",
                             load.var, load.cpt_size, cpt_size));
        continue;
      }
      if (!scope_map_in_bounds(load.map, table, cpt_size)) {
        report.add(DiagCode::SC005, loc,
                   strformat("load stride program for variable %d is not "
                             "statically in-bounds (%zu-cell clique table, "
                             "%zu-cell CPT)",
                             load.var, table, cpt_size));
      }
    }
  }
}

void lint_reload_coverage(const BayesianNetwork& bn, const JunctionTree& tree,
                          const PropagationSchedule& sched,
                          std::span<const int> cpt_home,
                          std::span<const std::size_t> snap_off,
                          DiagnosticReport& report) {
  const int nv = bn.num_variables();
  const int nc = tree.num_cliques();
  if (static_cast<int>(cpt_home.size()) != nv) {
    report.add(DiagCode::SC006, "cpt_home",
               strformat("cpt_home covers %zu of %d variables — "
                         "reload_incremental cannot resolve every change",
                         cpt_home.size(), nv));
    return;
  }

  // Where each CPT is actually absorbed, per the load plans.
  std::vector<int> loaded_at(static_cast<std::size_t>(nv), -1);
  for (std::size_t c = 0; c < sched.loads.size(); ++c) {
    for (const CliqueLoad& load : sched.loads[c]) {
      if (load.var < 0 || load.var >= nv) continue; // SC005's finding
      int& at = loaded_at[static_cast<std::size_t>(load.var)];
      if (at >= 0) {
        report.add(DiagCode::SC006, strformat("var %d", load.var),
                   strformat("CPT is absorbed by cliques %d and %zu — a "
                             "reload would double-count it",
                             at, c));
        continue;
      }
      at = static_cast<int>(c);
    }
  }

  for (VarId v = 0; v < nv; ++v) {
    const int home = cpt_home[static_cast<std::size_t>(v)];
    const int at = loaded_at[static_cast<std::size_t>(v)];
    const std::string loc = strformat("var %d", v);
    if (home < 0 || home >= nc) {
      report.add(DiagCode::SC006, loc,
                 strformat("cpt_home names out-of-range clique %d", home));
      continue;
    }
    if (at < 0) {
      report.add(DiagCode::SC006, loc,
                 strformat("CPT is absorbed by no load plan — after a "
                           "change to it, reload would memcpy-restore "
                           "clique %d from a stale snapshot",
                           home));
      continue;
    }
    if (at != home) {
      report.add(DiagCode::SC006, loc,
                 strformat("stale-clique reload gap: the CPT loads into "
                           "clique %d but reload_incremental dirties "
                           "cpt_home clique %d — clique %d would be "
                           "restored stale from the snapshot",
                           at, home, at));
    }
  }

  // Snapshot slicing: offsets must partition the flat buffer into the
  // clique table sizes, or restores copy the wrong cells.
  if (!snap_off.empty()) {
    if (snap_off.size() != static_cast<std::size_t>(nc) + 1) {
      report.add(DiagCode::SC006, "snapshot",
                 strformat("snapshot records %zu offsets for %d cliques",
                           snap_off.size(), nc));
      return;
    }
    for (int c = 0; c < nc; ++c) {
      const std::size_t lo = snap_off[static_cast<std::size_t>(c)];
      const std::size_t hi = snap_off[static_cast<std::size_t>(c) + 1];
      const std::size_t want = clique_table_size(bn, tree.clique(c));
      if (hi < lo || hi - lo != want) {
        report.add(DiagCode::SC006, strformat("clique %d", c),
                   strformat("snapshot slice holds %zu cells for a %zu-cell "
                             "clique table — restore would copy the wrong "
                             "region",
                             hi < lo ? std::size_t{0} : hi - lo, want));
      }
    }
  }
}

void lint_frontier_coverage(const BayesianNetwork& bn,
                            const JunctionTree& tree,
                            const PropagationSchedule& sched,
                            std::span<const int> preorder,
                            std::span<const int> component_root,
                            std::span<const std::size_t> msg_snap_off,
                            DiagnosticReport& report) {
  const int nc = tree.num_cliques();
  const int ne = static_cast<int>(tree.edges().size());

  // 1. Frontier coverage theorem. The reverse-preorder dirt fold
  // (sub_dirty[parent] |= sub_dirty[child]) reaches the component root
  // from ANY dirty set iff the preorder is a permutation that lists
  // every parent before its children: only then does the reverse sweep
  // visit each child before the parent that must inherit its dirt. A
  // violation means some dirty clique's ancestors keep their restored
  // messages — a path out of the dirty set escapes the re-sent frontier.
  if (static_cast<int>(preorder.size()) != nc) {
    report.add(DiagCode::SC009, "preorder",
               strformat("sweep order lists %zu cliques of %d — the dirt "
                         "fold would skip cliques entirely",
                         preorder.size(), nc));
    return;
  }
  std::vector<int> pos(static_cast<std::size_t>(nc), -1);
  for (std::size_t i = 0; i < preorder.size(); ++i) {
    const int c = preorder[i];
    if (c < 0 || c >= nc) {
      report.add(DiagCode::SC009, strformat("preorder[%zu]", i),
                 strformat("names out-of-range clique %d", c));
      return;
    }
    if (pos[static_cast<std::size_t>(c)] >= 0) {
      report.add(DiagCode::SC009, strformat("preorder[%zu]", i),
                 strformat("clique %d appears twice — not a permutation, "
                           "the dirt fold double-counts it and misses "
                           "another clique",
                           c));
      return;
    }
    pos[static_cast<std::size_t>(c)] = static_cast<int>(i);
  }
  for (int c = 0; c < nc; ++c) {
    const int p = tree.parent(c);
    if (p < 0) continue;
    if (p >= nc) continue; // tree-structure problem: JT005's business
    if (pos[static_cast<std::size_t>(p)] > pos[static_cast<std::size_t>(c)]) {
      report.add(DiagCode::SC009, strformat("clique %d", c),
                 strformat("listed before its tree parent %d in the sweep "
                           "order — the reverse-preorder dirt fold visits "
                           "the parent first, so dirt in clique %d's "
                           "subtree never reaches it and its restored "
                           "collect message goes stale (frontier gap)",
                           p, c, c));
    }
  }

  // 2. Component mapping: whole-component skips are sound only when
  // root_of is the fixed point of the parent structure.
  if (!component_root.empty()) {
    if (static_cast<int>(component_root.size()) != nc) {
      report.add(DiagCode::SC009, "component_root",
                 strformat("maps %zu cliques of %d", component_root.size(),
                           nc));
      return;
    }
    for (int c = 0; c < nc; ++c) {
      const int r = component_root[static_cast<std::size_t>(c)];
      const int p = tree.parent(c);
      const std::string loc = strformat("clique %d", c);
      if (r < 0 || r >= nc) {
        report.add(DiagCode::SC009, loc,
                   strformat("component root %d out of range", r));
        continue;
      }
      if (p < 0) {
        if (r != c) {
          report.add(DiagCode::SC009, loc,
                     strformat("tree root mapped to component root %d "
                               "instead of itself — the component "
                               "partition disagrees with the tree",
                               r));
        }
      } else if (p < nc &&
                 r != component_root[static_cast<std::size_t>(p)]) {
        report.add(DiagCode::SC009, loc,
                   strformat("component root %d differs from its parent's "
                             "(%d) — a clean-component skip could leave "
                             "part of a connected component live and "
                             "restore the rest",
                             r, component_root[static_cast<std::size_t>(p)]));
      }
    }
  }

  // 3. Message-snapshot slicing: each edge slice must hold exactly the
  // separator's cells, since a restore copies it into both the fresh
  // separator value and the ratio buffer.
  if (!msg_snap_off.empty()) {
    if (msg_snap_off.size() != static_cast<std::size_t>(ne) + 1) {
      report.add(DiagCode::SC009, "message snapshot",
                 strformat("records %zu offsets for %d edges",
                           msg_snap_off.size(), ne));
      return;
    }
    for (int e = 0; e < ne; ++e) {
      const std::size_t lo = msg_snap_off[static_cast<std::size_t>(e)];
      const std::size_t hi = msg_snap_off[static_cast<std::size_t>(e) + 1];
      const std::size_t want = separator_size(bn, tree.edges()[e]);
      if (hi < lo || hi - lo != want) {
        report.add(DiagCode::SC009, strformat("edge %d", e),
                   strformat("message snapshot slice holds %zu cells for a "
                             "%zu-cell separator — a restored message "
                             "would copy the wrong region into sep and "
                             "ratio",
                             hi < lo ? std::size_t{0} : hi - lo, want));
      }
    }
  }

  // 4. Units single-component: the partial dispatch filters units by
  // sub_dirty of their root, so a unit spanning components would be
  // skipped or re-run based on the wrong component's dirt.
  if (!component_root.empty() &&
      static_cast<int>(component_root.size()) == nc) {
    for (std::size_t u = 0; u < sched.units.size(); ++u) {
      const SubtreeUnit& unit = sched.units[u];
      if (unit.root < 0 || unit.root >= nc) continue; // SC001's finding
      const int r = component_root[static_cast<std::size_t>(unit.root)];
      for (int c : unit.preorder) {
        if (c < 0 || c >= nc) continue; // SC001's finding
        if (component_root[static_cast<std::size_t>(c)] != r) {
          report.add(DiagCode::SC009, unit_loc(u),
                     strformat("clique %d belongs to component %d but the "
                               "unit's dirty filter is decided by "
                               "component %d — the clique could be "
                               "skipped while dirty",
                               c, component_root[static_cast<std::size_t>(c)],
                               r));
          break;
        }
      }
    }
  }
}

NumericalRiskBound lint_numerical_risk(const BayesianNetwork& bn,
                                       const JunctionTree& tree,
                                       const PropagationSchedule& sched,
                                       DiagnosticReport& report,
                                       const ScheduleLintOptions& opts) {
  NumericalRiskBound out;
  const int nc = tree.num_cliques();
  if (nc == 0) return out;

  // Per-clique log2 lower bound on its smallest positive cell right
  // after load: each cell is a product of one entry per absorbed CPT,
  // so it is >= the product of the per-CPT minimum positive entries.
  // frexp(x) = m * 2^exp with m in [0.5, 1)  =>  x >= 2^(exp - 1).
  std::vector<std::int64_t> bound(static_cast<std::size_t>(nc), 0);
  const std::size_t n = std::min(
      sched.loads.size(), static_cast<std::size_t>(nc));
  for (std::size_t c = 0; c < n; ++c) {
    for (const CliqueLoad& load : sched.loads[c]) {
      if (load.var < 0 || load.var >= bn.num_variables() ||
          !bn.has_cpt(load.var)) {
        continue; // SC005's finding
      }
      double min_pos = std::numeric_limits<double>::infinity();
      for (double x : bn.cpt(load.var).values()) {
        if (x > 0.0 && x < min_pos) min_pos = x;
      }
      if (!std::isfinite(min_pos)) continue; // all-zero CPT: BN003/BN005
      int exp = 0;
      std::frexp(min_pos, &exp);
      bound[c] += static_cast<std::int64_t>(exp) - 1;
    }
  }

  // Collect dataflow: a clique's bound accumulates its children's
  // separator bounds (a positive separator marginal cell is a sum of
  // non-negative clique cells, hence >= the clique's smallest positive
  // cell). Reverse preorder visits children before parents. After the
  // fold each root holds the full component product — the distribute
  // phase pushes exactly that mass back down, so it bounds every
  // separator of the component in both phases.
  const std::vector<int>& pre = tree.preorder();
  for (std::size_t i = pre.size(); i-- > 0;) {
    const int c = pre[i];
    const int p = tree.parent(c);
    if (p >= 0) bound[static_cast<std::size_t>(p)] += bound[static_cast<std::size_t>(c)];
  }

  for (int r : tree.roots()) {
    const std::int64_t b = bound[static_cast<std::size_t>(r)];
    const std::int64_t neg = b < 0 ? -b : 0;
    const int clamped = static_cast<int>(
        std::min<std::int64_t>(neg, std::numeric_limits<int>::max()));
    if (out.worst_root < 0 || clamped > out.worst_neg_exp) {
      out.worst_neg_exp = clamped;
      out.worst_root = r;
    }
    if (clamped > opts.max_neg_exp) {
      report.add(DiagCode::SC008, strformat("root %d", r),
                 strformat("min-exponent dataflow bounds the smallest "
                           "positive separator cell of this component at "
                           "2^-%d, past the 2^-%d threshold — propagation "
                           "can underflow (the runtime sep_min_neg_exp "
                           "gauge will stay at or below %d)",
                           clamped, opts.max_neg_exp, clamped));
    }
  }
  return out;
}

NumericalRiskBound lint_schedule(const CompiledEngineView& view,
                                 DiagnosticReport& report,
                                 const ScheduleLintOptions& opts) {
  const PropagationSchedule* sched = view.schedule;
  if (sched == nullptr) return {};
  const JunctionTree& tree = *view.tree;
  const BayesianNetwork& bn = *view.network;
  lint_schedule_races(tree, *sched, report);
  lint_stride_bounds(bn, tree, *sched, report);
  lint_load_plans(bn, tree, *sched, report);
  lint_reload_coverage(bn, tree, *sched, view.cpt_home,
                       view.snapshot_offsets, report);
  lint_frontier_coverage(bn, tree, *sched, tree.preorder(),
                         view.component_root,
                         view.message_snapshot_offsets, report);
  return lint_numerical_risk(bn, tree, *sched, report, opts);
}

void lint_dirty_screen(const SegmentScreenModel& model,
                       DiagnosticReport& report) {
  for (std::size_t i = 0; i < model.roots.size(); ++i) {
    const ScreenRoot& r = model.roots[i];
    const std::string loc = strformat("segment %d", r.segment);
    if (r.segment < 0 || r.segment >= model.num_segments) {
      report.add(DiagCode::SC007, loc,
                 strformat("screen root %zu names an out-of-range segment",
                           i));
      continue;
    }
    switch (r.kind) {
      case ScreenTriggerKind::Spec:
        if (r.index < 0 || r.index >= model.num_specs) {
          report.add(DiagCode::SC007, loc,
                     strformat("primary-input trigger index %d outside the "
                               "%d tracked input flags — a changed input "
                               "could leave the segment marked clean",
                               r.index, model.num_specs));
        }
        break;
      case ScreenTriggerKind::Node:
        if (r.index < 0 || r.index >= model.num_nodes) {
          report.add(DiagCode::SC007, loc,
                     strformat("boundary trigger line %d outside the %d "
                               "tracked lines — a moved forwarded marginal "
                               "could leave the segment marked clean",
                               r.index, model.num_nodes));
        }
        break;
      case ScreenTriggerKind::Group:
        if (r.index < 0 || r.index >= model.num_groups) {
          report.add(DiagCode::SC007, loc,
                     strformat("group trigger index %d outside the %d "
                               "tracked groups — a changed group statistic "
                               "could leave the segment marked clean",
                               r.index, model.num_groups));
        }
        break;
      case ScreenTriggerKind::Constant:
        break;
    }
  }
  for (std::size_t i = 0; i < model.links.size(); ++i) {
    const ScreenLink& l = model.links[i];
    const std::string loc = strformat("segment %d", l.segment);
    if (l.segment < 0 || l.segment >= model.num_segments) {
      report.add(DiagCode::SC007, loc,
                 strformat("screen link %zu names an out-of-range segment",
                           i));
      continue;
    }
    if (l.owner_segment < 0 || l.owner_segment >= model.num_segments ||
        l.owner_segment >= l.segment) {
      report.add(DiagCode::SC007, loc,
                 strformat("boundary link depends on segment %d's re-ran "
                           "flag, which is not written strictly before "
                           "segment %d reads it — the screen could consult "
                           "a stale flag and under-approximate",
                           l.owner_segment, l.segment));
    }
  }
}

} // namespace bns
