#include "verify/netlist_rules.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netlist/gate.h"
#include "util/strings.h"

namespace bns {
namespace {

std::string loc(std::string_view file, int line) {
  return strformat("%.*s:%d", static_cast<int>(file.size()), file.data(), line);
}

// Format-independent view of a netlist source: named nets, declared
// inputs/outputs, and gate statements. Both scanners lower into this and
// share the graph checks.
struct SourceGate {
  std::string output;
  std::vector<std::string> fanin;
  int line = 0;
};

struct SourceDesign {
  std::vector<std::pair<std::string, int>> inputs;  // (name, line)
  std::vector<std::pair<std::string, int>> outputs; // (name, line)
  std::vector<SourceGate> gates;
};

// NL001/NL002/NL003/NL004/NL005/NL010/NL011/NL012 over a SourceDesign.
void check_source_graph(const SourceDesign& d, std::string_view file,
                        DiagnosticReport& report) {
  // Driver bookkeeping. A net may be driven by an INPUT declaration or
  // by a gate statement; more than one driver of any kind is NL002.
  std::unordered_map<std::string, int> driver_line; // first driver
  std::unordered_map<std::string, int> gate_of;     // net -> index in d.gates
  std::unordered_set<std::string> declared_input;

  for (const auto& [name, line] : d.inputs) {
    if (!declared_input.insert(name).second) {
      report.add(DiagCode::NL011, loc(file, line),
                 strformat("net '%s' is declared INPUT more than once",
                           name.c_str()));
      continue;
    }
    if (const auto it = driver_line.find(name); it != driver_line.end()) {
      report.add(DiagCode::NL002, loc(file, line),
                 strformat("net '%s' is both an INPUT and a gate output "
                           "(gate at line %d)",
                           name.c_str(), it->second));
    } else {
      driver_line.emplace(name, line);
    }
  }
  for (int i = 0; i < static_cast<int>(d.gates.size()); ++i) {
    const SourceGate& g = d.gates[static_cast<std::size_t>(i)];
    if (const auto it = driver_line.find(g.output); it != driver_line.end()) {
      report.add(
          DiagCode::NL002, loc(file, g.line),
          strformat("net '%s' is driven more than once (first driver at "
                    "line %d)",
                    g.output.c_str(), it->second));
      continue;
    }
    driver_line.emplace(g.output, g.line);
    gate_of.emplace(g.output, i);
  }

  // Undriven fanins (NL001), reported once per net.
  std::unordered_set<std::string> reported_undriven;
  for (const SourceGate& g : d.gates) {
    for (const std::string& f : g.fanin) {
      if (driver_line.count(f) || !reported_undriven.insert(f).second) {
        continue;
      }
      report.add(DiagCode::NL001, loc(file, g.line),
                 strformat("net '%s' (fanin of '%s') is never driven",
                           f.c_str(), g.output.c_str()));
    }
  }

  // Outputs of undefined nets (NL012); duplicates are harmless.
  std::unordered_set<std::string> output_nets;
  for (const auto& [name, line] : d.outputs) {
    output_nets.insert(name);
    if (!driver_line.count(name)) {
      report.add(DiagCode::NL012, loc(file, line),
                 strformat("OUTPUT net '%s' is never driven", name.c_str()));
    }
  }
  if (d.outputs.empty()) {
    report.add(DiagCode::NL010, std::string(file),
               "netlist declares no primary outputs");
  }

  // Fanout map for floating-net detection (NL003).
  std::unordered_set<std::string> used_as_fanin;
  for (const SourceGate& g : d.gates) {
    for (const std::string& f : g.fanin) used_as_fanin.insert(f);
  }
  for (const auto& [name, line] : driver_line) {
    if (used_as_fanin.count(name) || output_nets.count(name)) continue;
    const bool is_input = declared_input.count(name) > 0;
    report.add(DiagCode::NL003, loc(file, line),
               strformat("%s '%s' drives nothing and is not an output",
                         is_input ? "primary input" : "net", name.c_str()));
  }

  // Combinational loops (NL004) by iterative coloring DFS over the gate
  // definition graph. Each loop is reported once, at its closing gate.
  enum class Mark : std::uint8_t { White, Grey, Black };
  std::unordered_map<std::string, Mark> mark;
  for (const SourceGate& root : d.gates) {
    if (mark[root.output] != Mark::White) continue;
    std::vector<std::pair<std::string, std::size_t>> stack;
    stack.emplace_back(root.output, 0);
    mark[root.output] = Mark::Grey;
    while (!stack.empty()) {
      auto& [cur, next] = stack.back();
      const auto git = gate_of.find(cur);
      const SourceGate* g =
          git == gate_of.end() ? nullptr
                               : &d.gates[static_cast<std::size_t>(git->second)];
      if (g != nullptr && next < g->fanin.size()) {
        const std::string& dep = g->fanin[next];
        ++next;
        if (!gate_of.count(dep)) continue; // PI / undriven: no cycle through it
        if (mark[dep] == Mark::Grey) {
          // Reconstruct the cycle from the DFS stack for the message.
          std::string cycle = dep;
          for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            cycle += " <- " + it->first;
            if (it->first == dep) break;
          }
          report.add(DiagCode::NL004, loc(file, g->line),
                     strformat("combinational loop: %s", cycle.c_str()));
          continue;
        }
        if (mark[dep] == Mark::White) {
          mark[dep] = Mark::Grey;
          stack.emplace_back(dep, 0);
        }
      } else {
        mark[cur] = Mark::Black;
        stack.pop_back();
      }
    }
  }

  // Unreachable gates (NL005): gate-driven nets outside the transitive
  // fanin of every OUTPUT. Floating nets (fanout 0) are already NL003;
  // NL005 covers nets that do feed logic, just not any output cone.
  if (!d.outputs.empty()) {
    std::unordered_set<std::string> reached;
    std::vector<std::string> frontier;
    for (const auto& [name, line] : d.outputs) {
      if (reached.insert(name).second) frontier.push_back(name);
    }
    while (!frontier.empty()) {
      const std::string cur = std::move(frontier.back());
      frontier.pop_back();
      const auto git = gate_of.find(cur);
      if (git == gate_of.end()) continue;
      for (const std::string& f :
           d.gates[static_cast<std::size_t>(git->second)].fanin) {
        if (reached.insert(f).second) frontier.push_back(f);
      }
    }
    for (const SourceGate& g : d.gates) {
      if (reached.count(g.output) || !used_as_fanin.count(g.output)) continue;
      report.add(DiagCode::NL005, loc(file, g.line),
                 strformat("gate '%s' does not reach any primary output",
                           g.output.c_str()));
    }
  }
}

} // namespace

void lint_netlist(const Netlist& nl, DiagnosticReport& report) {
  if (nl.num_outputs() == 0) {
    report.add(DiagCode::NL010, nl.name(),
               "netlist declares no primary outputs");
  }

  const std::vector<int> fanout = nl.fanout_counts();
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const Node& n = nl.node(id);
    if (fanout[static_cast<std::size_t>(id)] == 0 && !nl.is_output(id)) {
      report.add(DiagCode::NL003, n.name,
                 strformat("%s '%s' drives nothing and is not an output",
                           n.type == GateType::Input ? "primary input" : "net",
                           n.name.c_str()));
    }
    if (n.type == GateType::Lut) {
      if (!n.lut.has_value()) {
        report.add(DiagCode::NL007, n.name,
                   strformat("LUT '%s' has no truth table", n.name.c_str()));
      } else if (n.lut->num_inputs() != static_cast<int>(n.fanin.size())) {
        report.add(DiagCode::NL007, n.name,
                   strformat("LUT '%s' has %zu fanins but its truth table "
                             "covers %d inputs",
                             n.name.c_str(), n.fanin.size(),
                             n.lut->num_inputs()));
      } else {
        for (int i = 0; i < n.lut->num_inputs(); ++i) {
          if (n.lut->input_is_redundant(i)) {
            report.add(DiagCode::NL007, Severity::Note, n.name,
                       strformat("LUT '%s' ignores fanin %d ('%s'); the "
                                 "model gains a spurious dependency",
                                 n.name.c_str(), i,
                                 nl.node(n.fanin[static_cast<std::size_t>(i)])
                                     .name.c_str()));
          }
        }
      }
    } else if (n.type != GateType::Input && n.lut.has_value()) {
      report.add(DiagCode::NL007, n.name,
                 strformat("non-LUT gate '%s' carries a truth table",
                           n.name.c_str()));
    }
    if (n.type != GateType::Lut && !fanin_count_ok(n.type, n.fanin.size())) {
      report.add(DiagCode::NL006, n.name,
                 strformat("gate '%s' (%.*s) has invalid fanin count %zu",
                           n.name.c_str(),
                           static_cast<int>(gate_type_name(n.type).size()),
                           gate_type_name(n.type).data(), n.fanin.size()));
    }
  }

  // Unreachable gates: reverse reachability from the outputs.
  if (nl.num_outputs() > 0) {
    std::vector<bool> reached(static_cast<std::size_t>(nl.num_nodes()), false);
    std::vector<NodeId> frontier;
    for (NodeId id : nl.outputs()) {
      if (!reached[static_cast<std::size_t>(id)]) {
        reached[static_cast<std::size_t>(id)] = true;
        frontier.push_back(id);
      }
    }
    while (!frontier.empty()) {
      const NodeId cur = frontier.back();
      frontier.pop_back();
      for (NodeId f : nl.node(cur).fanin) {
        if (!reached[static_cast<std::size_t>(f)]) {
          reached[static_cast<std::size_t>(f)] = true;
          frontier.push_back(f);
        }
      }
    }
    for (NodeId id = 0; id < nl.num_nodes(); ++id) {
      const Node& n = nl.node(id);
      const bool is_gate =
          n.type != GateType::Input && n.type != GateType::Const0 &&
          n.type != GateType::Const1;
      if (is_gate && !reached[static_cast<std::size_t>(id)] &&
          fanout[static_cast<std::size_t>(id)] > 0) {
        report.add(DiagCode::NL005, n.name,
                   strformat("gate '%s' does not reach any primary output",
                             n.name.c_str()));
      }
    }
  }
}

void lint_bench_text(std::string_view text, std::string_view filename,
                     DiagnosticReport& report) {
  SourceDesign d;
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view s = trim(line);
    if (s.empty() || s.front() == '#') continue;

    auto inner = [&](std::string_view decl) -> std::optional<std::string> {
      const std::size_t open = decl.find('(');
      const std::size_t close = decl.rfind(')');
      if (open == std::string_view::npos || close == std::string_view::npos ||
          close <= open) {
        report.add(DiagCode::NL008, loc(filename, lineno),
                   strformat("malformed declaration: %.*s",
                             static_cast<int>(decl.size()), decl.data()));
        return std::nullopt;
      }
      return std::string(trim(decl.substr(open + 1, close - open - 1)));
    };

    const bool no_eq = s.find('=') == std::string_view::npos;
    if (no_eq && starts_with(to_upper(s.substr(0, 5)), "INPUT")) {
      if (auto name = inner(s)) d.inputs.emplace_back(std::move(*name), lineno);
      continue;
    }
    if (no_eq && starts_with(to_upper(s.substr(0, 6)), "OUTPUT")) {
      if (auto name = inner(s)) d.outputs.emplace_back(std::move(*name), lineno);
      continue;
    }

    const std::size_t eq = s.find('=');
    if (eq == std::string_view::npos) {
      report.add(DiagCode::NL008, loc(filename, lineno),
                 strformat("expected `name = GATE(args)`: %.*s",
                           static_cast<int>(s.size()), s.data()));
      continue;
    }
    SourceGate g;
    g.line = lineno;
    g.output = std::string(trim(s.substr(0, eq)));
    const std::string_view rhs = trim(s.substr(eq + 1));
    const std::size_t open = rhs.find('(');
    const std::size_t close = rhs.rfind(')');
    if (g.output.empty() || open == std::string_view::npos ||
        close == std::string_view::npos || close <= open) {
      report.add(DiagCode::NL008, loc(filename, lineno),
                 strformat("malformed gate statement: %.*s",
                           static_cast<int>(s.size()), s.data()));
      continue;
    }
    const std::string_view type_name = trim(rhs.substr(0, open));
    GateType type = GateType::Buf;
    const bool known_type = parse_gate_type(type_name, type) &&
                            type != GateType::Input && type != GateType::Lut;
    if (!known_type) {
      report.add(DiagCode::NL009, loc(filename, lineno),
                 strformat("unknown gate type '%.*s'",
                           static_cast<int>(type_name.size()),
                           type_name.data()));
      // Keep the statement so net-graph checks still see the driver.
    }
    for (std::string_view arg :
         split(rhs.substr(open + 1, close - open - 1), ',')) {
      if (!arg.empty()) g.fanin.emplace_back(arg);
    }
    if (known_type && !fanin_count_ok(type, g.fanin.size())) {
      report.add(DiagCode::NL006, loc(filename, lineno),
                 strformat("gate '%s' (%.*s) has invalid fanin count %zu",
                           g.output.c_str(),
                           static_cast<int>(type_name.size()), type_name.data(),
                           g.fanin.size()));
    }
    d.gates.push_back(std::move(g));
  }
  check_source_graph(d, filename, report);
}

void lint_blif_text(std::string_view text, std::string_view filename,
                    DiagnosticReport& report) {
  SourceDesign d;

  // Pre-split into logical lines, folding '\' continuations and
  // stripping '#' comments, keeping the first physical line number.
  std::vector<std::pair<std::string, int>> lines;
  {
    std::istringstream in{std::string(text)};
    std::string phys;
    int lineno = 0;
    std::string pending;
    int pending_line = 0;
    while (std::getline(in, phys)) {
      ++lineno;
      if (const std::size_t hash = phys.find('#'); hash != std::string::npos) {
        phys.resize(hash);
      }
      std::string_view s = trim(phys);
      if (pending.empty()) pending_line = lineno;
      const bool cont = !s.empty() && s.back() == '\\';
      if (cont) s.remove_suffix(1);
      pending += std::string(s);
      pending += ' ';
      if (cont) continue;
      if (!trim(pending).empty()) {
        lines.emplace_back(std::string(trim(pending)), pending_line);
      }
      pending.clear();
    }
    if (!trim(pending).empty()) {
      lines.emplace_back(std::string(trim(pending)), pending_line);
    }
  }

  int cur_gate = -1; // index of the last .names block, for its cover rows
  for (const auto& [text_line, lineno] : lines) {
    const std::vector<std::string_view> tok = split_ws(text_line);
    if (tok.empty()) continue;
    if (tok[0][0] != '.') {
      // A cover row of the current .names block.
      if (cur_gate < 0) {
        report.add(DiagCode::NL008, loc(filename, lineno),
                   strformat("cover row outside a .names block: %s",
                             text_line.c_str()));
        continue;
      }
      const SourceGate& g = d.gates[static_cast<std::size_t>(cur_gate)];
      const std::size_t n_in = g.fanin.size();
      const bool zero_input_form = n_in == 0 && tok.size() == 1;
      if (!zero_input_form &&
          (tok.size() != 2 || tok[0].size() != n_in)) {
        report.add(DiagCode::NL007, loc(filename, lineno),
                   strformat("cover row of '%s' has %zu input columns; the "
                             ".names header declares %zu fanins",
                             g.output.c_str(),
                             tok.size() < 2 ? std::size_t{0} : tok[0].size(),
                             n_in));
        continue;
      }
      const std::string_view in_bits = zero_input_form ? "" : tok[0];
      const std::string_view out_bit = zero_input_form ? tok[0] : tok[1];
      bool ok = out_bit == "0" || out_bit == "1";
      for (char c : in_bits) ok &= c == '0' || c == '1' || c == '-';
      if (!ok) {
        report.add(DiagCode::NL008, loc(filename, lineno),
                   strformat("malformed cover row: %s", text_line.c_str()));
      }
      continue;
    }

    cur_gate = -1;
    const std::string_view dir = tok[0];
    if (iequals(dir, ".model") || iequals(dir, ".end")) continue;
    if (iequals(dir, ".inputs") || iequals(dir, ".outputs")) {
      auto& dst = iequals(dir, ".inputs") ? d.inputs : d.outputs;
      for (std::size_t i = 1; i < tok.size(); ++i) {
        dst.emplace_back(std::string(tok[i]), lineno);
      }
      continue;
    }
    if (iequals(dir, ".names")) {
      if (tok.size() < 2) {
        report.add(DiagCode::NL008, loc(filename, lineno),
                   ".names needs at least an output net");
        continue;
      }
      SourceGate g;
      g.line = lineno;
      g.output = std::string(tok.back());
      for (std::size_t i = 1; i + 1 < tok.size(); ++i) {
        g.fanin.emplace_back(tok[i]);
      }
      d.gates.push_back(std::move(g));
      cur_gate = static_cast<int>(d.gates.size()) - 1;
      continue;
    }
    report.add(DiagCode::NL008, loc(filename, lineno),
               strformat("unsupported BLIF construct: %.*s",
                         static_cast<int>(dir.size()), dir.data()));
  }
  check_source_graph(d, filename, report);
}

DiagnosticReport lint_netlist_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open file: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();

  DiagnosticReport report;
  if (path.size() >= 6 && path.compare(path.size() - 6, 6, ".bench") == 0) {
    lint_bench_text(buf.str(), path, report);
  } else if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".blif") == 0) {
    lint_blif_text(buf.str(), path, report);
  } else {
    throw std::runtime_error("unknown netlist extension (want .bench/.blif): " +
                             path);
  }
  return report;
}

} // namespace bns
