#include "verify/diagnostics.h"

#include <algorithm>
#include <array>
#include <cctype>

#include "util/assert.h"
#include "util/strings.h"

namespace bns {
namespace {

struct CodeInfo {
  DiagCode code;
  std::string_view name;
  Severity severity;
  std::string_view summary;
};

constexpr std::array<CodeInfo, 34> kCodes{{
    {DiagCode::NL001, "NL001", Severity::Error,
     "undriven net: referenced as a fanin but never defined"},
    {DiagCode::NL002, "NL002", Severity::Error,
     "multiply-driven net: more than one driver"},
    {DiagCode::NL003, "NL003", Severity::Warning,
     "floating net: driven but feeds nothing and is not an output"},
    {DiagCode::NL004, "NL004", Severity::Error,
     "combinational loop through gate definitions"},
    {DiagCode::NL005, "NL005", Severity::Warning,
     "unreachable gate: not in the transitive fanin of any output"},
    {DiagCode::NL006, "NL006", Severity::Error,
     "arity mismatch: fanin count invalid for the gate type"},
    {DiagCode::NL007, "NL007", Severity::Error,
     "truth-table mismatch: LUT cover width differs from fanin count"},
    {DiagCode::NL008, "NL008", Severity::Error,
     "syntax error in the netlist source"},
    {DiagCode::NL009, "NL009", Severity::Error, "unknown gate type"},
    {DiagCode::NL010, "NL010", Severity::Warning,
     "no primary outputs declared"},
    {DiagCode::NL011, "NL011", Severity::Error,
     "duplicate INPUT declaration"},
    {DiagCode::NL012, "NL012", Severity::Error,
     "OUTPUT declared for an undefined net"},
    {DiagCode::BN001, "BN001", Severity::Error, "variable has no CPT"},
    {DiagCode::BN002, "BN002", Severity::Error,
     "parent relation has a directed cycle (the LIDAG must be a DAG)"},
    {DiagCode::BN003, "BN003", Severity::Error,
     "CPT column not stochastic: entries over the child do not sum to 1"},
    {DiagCode::BN004, "BN004", Severity::Error,
     "gate-output CPT not deterministic (entries must be 0 or 1)"},
    {DiagCode::BN005, "BN005", Severity::Error,
     "root prior invalid (negative mass or does not sum to 1)"},
    {DiagCode::BN006, "BN006", Severity::Error,
     "family/factor domain mismatch (scope or cardinality)"},
    {DiagCode::BN007, "BN007", Severity::Error,
     "LIDAG parents inconsistent with the netlist fanin"},
    {DiagCode::BN008, "BN008", Severity::Error,
     "non-finite or negative probability entry"},
    {DiagCode::JT001, "JT001", Severity::Error,
     "elimination order is not perfect: triangulated graph not chordal"},
    {DiagCode::JT002, "JT002", Severity::Error,
     "running intersection property violated"},
    {DiagCode::JT003, "JT003", Severity::Error,
     "BN family not covered by any clique"},
    {DiagCode::JT004, "JT004", Severity::Error,
     "separator is not the intersection of its endpoint cliques"},
    {DiagCode::JT005, "JT005", Severity::Error,
     "variable not covered by any clique or out-of-range clique member"},
    {DiagCode::SC001, "SC001", Severity::Error,
     "parallel subtree units are not write-disjoint over clique tables"},
    {DiagCode::SC002, "SC002", Severity::Error,
     "parallel subtree units are not write-disjoint over separator buffers"},
    {DiagCode::SC003, "SC003", Severity::Error,
     "root message application order is not a fixed deterministic sequence"},
    {DiagCode::SC004, "SC004", Severity::Error,
     "message-plan stride program is statically out of bounds"},
    {DiagCode::SC005, "SC005", Severity::Error,
     "CPT load plan unsound (map bounds or table-size mismatch)"},
    {DiagCode::SC006, "SC006", Severity::Error,
     "snapshot/reload coverage gap: a clique can be restored stale"},
    {DiagCode::SC007, "SC007", Severity::Error,
     "dirty pre-screen is not an over-approximation of reachable cliques"},
    {DiagCode::SC008, "SC008", Severity::Warning,
     "schedule can underflow: static min-exponent bound exceeds threshold"},
    {DiagCode::SC009, "SC009", Severity::Error,
     "dirty-clique message frontier unsound: a tree path out of a dirty "
     "set escapes the re-sent messages, or the restore structures "
     "mis-slice"},
}};

const CodeInfo& info(DiagCode c) {
  for (const CodeInfo& ci : kCodes) {
    if (ci.code == c) return ci;
  }
  BNS_UNREACHABLE("unknown diagnostic code");
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += strformat("\\u%04x", ch);
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

// --- minimal JSON reader (only what render_json emits) -----------------

struct JsonParser {
  std::string_view s;
  std::size_t pos = 0;
  bool failed = false;

  void skip_ws() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  char peek() {
    skip_ws();
    return pos < s.size() ? s[pos] : '\0';
  }

  std::string parse_string() {
    std::string out;
    if (!consume('"')) {
      failed = true;
      return out;
    }
    while (pos < s.size() && s[pos] != '"') {
      char c = s[pos++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= s.size()) break;
      const char esc = s[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos + 4 > s.size()) {
            failed = true;
            return out;
          }
          int v = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s[pos++];
            v <<= 4;
            if (h >= '0' && h <= '9') {
              v += h - '0';
            } else if (h >= 'a' && h <= 'f') {
              v += h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              v += h - 'A' + 10;
            } else {
              failed = true;
              return out;
            }
          }
          // The writer only emits \u00xx control escapes; decode the
          // low byte and ignore anything outside latin-1.
          out += static_cast<char>(v & 0xff);
          break;
        }
        default: failed = true; return out;
      }
    }
    if (!consume('"')) failed = true;
    return out;
  }

  // Skips any scalar value (number / true / false / null).
  void skip_scalar() {
    skip_ws();
    while (pos < s.size() &&
           (std::isalnum(static_cast<unsigned char>(s[pos])) || s[pos] == '-' ||
            s[pos] == '+' || s[pos] == '.')) {
      ++pos;
    }
  }

  void skip_value(); // forward: handles nested containers

  // Parses one {"k": "v", ...} object of string values; unknown value
  // kinds are skipped.
  std::vector<std::pair<std::string, std::string>> parse_flat_object() {
    std::vector<std::pair<std::string, std::string>> kv;
    if (!consume('{')) {
      failed = true;
      return kv;
    }
    if (consume('}')) return kv;
    do {
      std::string key = parse_string();
      if (failed || !consume(':')) {
        failed = true;
        return kv;
      }
      if (peek() == '"') {
        kv.emplace_back(std::move(key), parse_string());
      } else {
        skip_value();
      }
      if (failed) return kv;
    } while (consume(','));
    if (!consume('}')) failed = true;
    return kv;
  }
};

void JsonParser::skip_value() {
  const char c = peek();
  if (c == '"') {
    parse_string();
  } else if (c == '{') {
    parse_flat_object();
  } else if (c == '[') {
    consume('[');
    if (consume(']')) return;
    do {
      skip_value();
      if (failed) return;
    } while (consume(','));
    if (!consume(']')) failed = true;
  } else {
    skip_scalar();
  }
}

} // namespace

std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  BNS_UNREACHABLE("bad severity");
}

bool parse_severity(std::string_view name, Severity& out) {
  if (name == "note") {
    out = Severity::Note;
  } else if (name == "warning") {
    out = Severity::Warning;
  } else if (name == "error") {
    out = Severity::Error;
  } else {
    return false;
  }
  return true;
}

std::string_view diag_code_name(DiagCode c) { return info(c).name; }
std::string_view diag_code_summary(DiagCode c) { return info(c).summary; }
Severity diag_default_severity(DiagCode c) { return info(c).severity; }

bool parse_diag_code(std::string_view name, DiagCode& out) {
  for (const CodeInfo& ci : kCodes) {
    if (ci.name == name) {
      out = ci.code;
      return true;
    }
  }
  return false;
}

std::vector<DiagCode> all_diag_codes() {
  std::vector<DiagCode> v;
  v.reserve(kCodes.size());
  for (const CodeInfo& ci : kCodes) v.push_back(ci.code);
  return v;
}

void DiagnosticReport::add(DiagCode code, std::string location,
                           std::string message) {
  add(code, diag_default_severity(code), std::move(location),
      std::move(message));
}

void DiagnosticReport::add(DiagCode code, Severity severity,
                           std::string location, std::string message) {
  diags_.push_back(Diagnostic{code, severity, std::move(location),
                              std::move(message)});
}

void DiagnosticReport::merge(const DiagnosticReport& other) {
  diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
}

int DiagnosticReport::count(Severity s) const {
  int n = 0;
  for (const Diagnostic& d : diags_) n += d.severity == s ? 1 : 0;
  return n;
}

const Diagnostic* DiagnosticReport::find(DiagCode c) const {
  for (const Diagnostic& d : diags_) {
    if (d.code == c) return &d;
  }
  return nullptr;
}

std::string DiagnosticReport::render_text() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += severity_name(d.severity);
    out += '[';
    out += diag_code_name(d.code);
    out += ']';
    if (!d.location.empty()) {
      out += ' ';
      out += d.location;
      out += ':';
    }
    out += ' ';
    out += d.message;
    out += '\n';
  }
  return out;
}

std::string DiagnosticReport::render_json(std::string_view tool,
                                          std::string_view file) const {
  std::string out = "{\n  \"tool\": ";
  append_json_string(out, tool);
  out += ",\n  \"file\": ";
  append_json_string(out, file);
  out += strformat(",\n  \"errors\": %d,\n  \"warnings\": %d,\n"
                   "  \"diagnostics\": [",
                   num_errors(), num_warnings());
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"code\": ";
    append_json_string(out, diag_code_name(d.code));
    out += ", \"summary\": ";
    append_json_string(out, diag_code_summary(d.code));
    out += ", \"severity\": ";
    append_json_string(out, severity_name(d.severity));
    out += ", \"location\": ";
    append_json_string(out, d.location);
    out += ", \"message\": ";
    append_json_string(out, d.message);
    out += '}';
  }
  out += diags_.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::optional<DiagnosticReport> DiagnosticReport::from_json(
    std::string_view json) {
  JsonParser p{json};
  if (!p.consume('{')) return std::nullopt;
  DiagnosticReport report;
  if (p.consume('}')) return report;
  do {
    const std::string key = p.parse_string();
    if (p.failed || !p.consume(':')) return std::nullopt;
    if (key != "diagnostics") {
      p.skip_value();
      if (p.failed) return std::nullopt;
      continue;
    }
    if (!p.consume('[')) return std::nullopt;
    if (p.consume(']')) continue;
    do {
      const auto kv = p.parse_flat_object();
      if (p.failed) return std::nullopt;
      Diagnostic d;
      bool have_code = false, have_sev = false;
      for (const auto& [k, v] : kv) {
        if (k == "code") {
          have_code = parse_diag_code(v, d.code);
        } else if (k == "severity") {
          have_sev = parse_severity(v, d.severity);
        } else if (k == "location") {
          d.location = v;
        } else if (k == "message") {
          d.message = v;
        }
      }
      if (!have_code || !have_sev) return std::nullopt;
      report.diags_.push_back(std::move(d));
    } while (p.consume(','));
    if (!p.consume(']')) return std::nullopt;
  } while (p.consume(','));
  if (!p.consume('}')) return std::nullopt;
  return report;
}

} // namespace bns
