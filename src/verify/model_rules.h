// Model lint: structural and numerical invariants of the LIDAG Bayesian
// network (Definition 8 / Theorem 3 of the paper), checked without
// running inference.
//
//  * lint_bayes_net — generic BN sanity: every variable has a CPT, the
//    parent relation is a DAG, every CPT column is stochastic, entries
//    are finite and non-negative, root priors are distributions, and
//    the declared family matches the factor's scope/cardinalities.
//    Variables listed as deterministic (gate outputs and decomposition
//    auxiliaries) must additionally have 0/1 CPT entries.
//  * lint_lidag_structure — dependency preservation against the source
//    netlist: a gate-output variable must depend on exactly the
//    switching variables of the gate's fanin lines (possibly through
//    decomposition auxiliaries), and on nothing else — the minimal
//    I-map direction of Theorem 3.
#pragma once

#include <span>

#include "bn/bayes_net.h"
#include "netlist/netlist.h"
#include "verify/diagnostics.h"

namespace bns {

struct ModelLintOptions {
  double tol = 1e-9;
  // Variables whose CPT must be deterministic (all entries 0 or 1);
  // typically the gate-output and auxiliary variables of a LIDAG.
  std::span<const VarId> deterministic_vars{};
};

void lint_bayes_net(const BayesianNetwork& bn, DiagnosticReport& report,
                    const ModelLintOptions& opts = {});

// Checks the BN structure of one (segment) LIDAG against the netlist.
// `var_of_node[id]` maps a netlist line to its BN variable, or -1 when
// the line is not represented (outside the segment). `root_vars` lists
// the segment's root variables (boundary/constant/source lines): a gate
// line rebuilt as a root carries a forwarded prior — or a boundary-chain
// conditional — instead of its gate CPT, so its dependency structure is
// owned by the defining segment and not checked here.
void lint_lidag_structure(const Netlist& nl, const BayesianNetwork& bn,
                          std::span<const VarId> var_of_node,
                          std::span<const VarId> root_vars,
                          DiagnosticReport& report);

} // namespace bns
