// Compilation lint: invariants of the secondary structure (Section 5 of
// the paper) that exact junction-tree propagation relies on — the
// triangulated moral graph is chordal, the tree satisfies the running
// intersection property, every BN family is covered by a clique, and
// separators are exactly the intersections of their endpoint cliques.
#pragma once

#include <span>
#include <vector>

#include "bn/bayes_net.h"
#include "bn/graph.h"
#include "bn/junction_tree.h"
#include "verify/diagnostics.h"

namespace bns {

// Raw-structure checks (JT002, JT004, JT005) over an explicit clique set
// and edge list; `num_vars` is the variable-id domain [0, num_vars).
// Exposed separately so tests can lint deliberately corrupted structures
// that JunctionTree's constructor would never produce.
void lint_junction_structure(int num_vars,
                             std::span<const std::vector<int>> cliques,
                             std::span<const JunctionTreeEdge> edges,
                             DiagnosticReport& report);

// Full compilation lint: JT001 (perfect elimination order / chordality),
// JT003 (family cover) plus all raw-structure checks above.
void lint_compilation(const BayesianNetwork& bn, const Triangulation& tri,
                      const JunctionTree& jt, DiagnosticReport& report);

} // namespace bns
