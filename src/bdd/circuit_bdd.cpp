#include "bdd/circuit_bdd.h"

#include "util/assert.h"

namespace bns {
namespace {

// Composes a truth table over already-built operand BDDs via Shannon
// expansion on the last operand.
BddRef compose_tt(BddManager& mgr, const TruthTable& tt,
                  std::span<const BddRef> ops) {
  const int k = tt.num_inputs();
  BNS_EXPECTS(static_cast<int>(ops.size()) == k);
  if (k == 0) return tt.value(0) ? kBddTrue : kBddFalse;
  const TruthTable lo = tt.cofactor(k - 1, false);
  const TruthTable hi = tt.cofactor(k - 1, true);
  const std::span<const BddRef> rest = ops.first(static_cast<std::size_t>(k - 1));
  return mgr.ite(ops[static_cast<std::size_t>(k - 1)],
                 compose_tt(mgr, hi, rest), compose_tt(mgr, lo, rest));
}

} // namespace

BddRef build_gate_bdd(BddManager& mgr, const Node& n,
                      std::span<const BddRef> ops) {
  switch (n.type) {
    case GateType::Const0: return kBddFalse;
    case GateType::Const1: return kBddTrue;
    case GateType::Buf: return ops[0];
    case GateType::Not: return mgr.lnot(ops[0]);
    case GateType::And:
    case GateType::Nand: {
      BddRef acc = kBddTrue;
      for (BddRef o : ops) acc = mgr.land(acc, o);
      return n.type == GateType::And ? acc : mgr.lnot(acc);
    }
    case GateType::Or:
    case GateType::Nor: {
      BddRef acc = kBddFalse;
      for (BddRef o : ops) acc = mgr.lor(acc, o);
      return n.type == GateType::Or ? acc : mgr.lnot(acc);
    }
    case GateType::Xor:
    case GateType::Xnor: {
      BddRef acc = kBddFalse;
      for (BddRef o : ops) acc = mgr.lxor(acc, o);
      return n.type == GateType::Xor ? acc : mgr.lnot(acc);
    }
    case GateType::Lut:
      return compose_tt(mgr, *n.lut, ops);
    case GateType::Input:
      break;
  }
  BNS_ASSERT_MSG(false, "unexpected node type");
  return kBddFalse;
}

} // namespace bns
