#include "bdd/bdd_estimator.h"

#include <algorithm>

#include "bdd/circuit_bdd.h"
#include "bdd/pair_prob.h"
#include "util/assert.h"
#include "util/timer.h"

namespace bns {

std::vector<double> BddSwitchingResult::activities() const {
  std::vector<double> out(dist.size());
  for (std::size_t i = 0; i < dist.size(); ++i) out[i] = activity_of(dist[i]);
  return out;
}

BddSwitchingResult estimate_bdd_exact(const Netlist& nl,
                                      const InputModel& model,
                                      std::size_t max_nodes) {
  BNS_EXPECTS(model.num_inputs() == nl.num_inputs());
  BNS_EXPECTS_MSG(!model.has_spatial_correlation(),
                  "input groups are not supported by the BDD estimator");
  Timer t;
  BddSwitchingResult r;
  r.dist.assign(static_cast<std::size_t>(nl.num_nodes()), {});

  // Variable-order heuristic: inputs consumed together should sit next
  // to each other in the order (classic fanin-proximity interleaving —
  // e.g. it turns a comparator's a-then-b order into a0,b0,a1,b1,...).
  // Rank inputs by the id of the first gate that consumes them, ties by
  // original position.
  std::vector<int> pi_index(static_cast<std::size_t>(nl.num_nodes()), -1);
  for (int i = 0; i < nl.num_inputs(); ++i) {
    pi_index[static_cast<std::size_t>(nl.inputs()[static_cast<std::size_t>(i)])] = i;
  }
  std::vector<std::pair<NodeId, int>> first_use; // (first consumer, input pos)
  {
    std::vector<NodeId> fu(static_cast<std::size_t>(nl.num_inputs()),
                           nl.num_nodes());
    for (NodeId id = 0; id < nl.num_nodes(); ++id) {
      for (NodeId f : nl.node(id).fanin) {
        const int pi = pi_index[static_cast<std::size_t>(f)];
        if (pi >= 0) {
          fu[static_cast<std::size_t>(pi)] =
              std::min(fu[static_cast<std::size_t>(pi)], id);
        }
      }
    }
    for (int i = 0; i < nl.num_inputs(); ++i) {
      first_use.emplace_back(fu[static_cast<std::size_t>(i)], i);
    }
    std::sort(first_use.begin(), first_use.end());
  }
  // rank_of[input pos] = position in the BDD variable order.
  std::vector<int> rank_of(static_cast<std::size_t>(nl.num_inputs()), 0);
  std::vector<InputSpec> ordered_specs(static_cast<std::size_t>(nl.num_inputs()));
  for (int r = 0; r < static_cast<int>(first_use.size()); ++r) {
    const int pos = first_use[static_cast<std::size_t>(r)].second;
    rank_of[static_cast<std::size_t>(pos)] = r;
    ordered_specs[static_cast<std::size_t>(r)] = model.spec(pos);
  }
  const InputModel ordered_model = InputModel::custom(std::move(ordered_specs));

  BddManager mgr(2 * nl.num_inputs(), max_nodes);
  std::vector<std::array<double, 4>> pair_dists;
  pair_dists.reserve(static_cast<std::size_t>(nl.num_inputs()));
  for (int i = 0; i < nl.num_inputs(); ++i) {
    const InputSpec& spec = ordered_model.spec(i);
    pair_dists.push_back(transition_distribution(spec.p, spec.rho));
  }
  PairProbEvaluator pp(mgr, pair_dists);

  std::vector<BddRef> f_prev(static_cast<std::size_t>(nl.num_nodes()));
  std::vector<BddRef> f_cur(static_cast<std::size_t>(nl.num_nodes()));
  try {
    for (NodeId id = 0; id < nl.num_nodes(); ++id) {
      const Node& n = nl.node(id);
      if (n.type == GateType::Input) {
        const int r = rank_of[static_cast<std::size_t>(
            pi_index[static_cast<std::size_t>(id)])];
        f_prev[static_cast<std::size_t>(id)] = mgr.var(2 * r);
        f_cur[static_cast<std::size_t>(id)] = mgr.var(2 * r + 1);
      } else {
        std::vector<BddRef> ops_prev;
        std::vector<BddRef> ops_cur;
        for (NodeId f : n.fanin) {
          ops_prev.push_back(f_prev[static_cast<std::size_t>(f)]);
          ops_cur.push_back(f_cur[static_cast<std::size_t>(f)]);
        }
        f_prev[static_cast<std::size_t>(id)] = build_gate_bdd(mgr, n, ops_prev);
        f_cur[static_cast<std::size_t>(id)] = build_gate_bdd(mgr, n, ops_cur);
      }

      const BddRef fp = f_prev[static_cast<std::size_t>(id)];
      const BddRef fc = f_cur[static_cast<std::size_t>(id)];
      const double p01 = pp.prob(mgr.land(mgr.lnot(fp), fc));
      const double p10 = pp.prob(mgr.land(fp, mgr.lnot(fc)));
      const double p11 = pp.prob(mgr.land(fp, fc));
      r.dist[static_cast<std::size_t>(id)] = {1.0 - p01 - p10 - p11, p01, p10,
                                              p11};
      r.lines_done = id + 1;
      r.peak_nodes = std::max(r.peak_nodes, mgr.num_nodes());
    }
    r.completed = true;
  } catch (const BddNodeLimit&) {
    r.completed = false;
    r.peak_nodes = std::max(r.peak_nodes, mgr.num_nodes());
  }
  r.seconds = t.seconds();
  return r;
}

} // namespace bns
