// Probability of BDDs under *paired* sources: the BDD's variables are
// interleaved as (prev_0, cur_0, prev_1, cur_1, ...) and source i has an
// arbitrary joint distribution over its (prev, cur) pair — sources are
// independent of each other, the two variables of one source are not.
//
// Used by both the exact global-OBDD estimator (sources = primary
// inputs with lag-1 Markov pair distributions) and the local-OBDD
// estimator (sources = frontier nets with their previously computed
// 4-state transition distributions).
#pragma once

#include <array>
#include <memory>
#include <span>

#include "bdd/bdd.h"

namespace bns {

// Evaluator with a memo shared across queries (queries against the same
// manager reuse sub-BDD probabilities).
class PairProbEvaluator {
 public:
  // pair_dists[i] = [P00, P01, P10, P11] of source i (state = 2*prev +
  // cur). The manager must have exactly 2 * pair_dists.size() variables.
  PairProbEvaluator(const BddManager& mgr,
                    std::span<const std::array<double, 4>> pair_dists);
  ~PairProbEvaluator();
  PairProbEvaluator(PairProbEvaluator&&) noexcept;
  PairProbEvaluator& operator=(PairProbEvaluator&&) noexcept;

  // P(f = 1).
  double prob(BddRef f);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// One-shot convenience.
double pair_signal_prob(const BddManager& mgr, BddRef f,
                        std::span<const std::array<double, 4>> pair_dists);

} // namespace bns
