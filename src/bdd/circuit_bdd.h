// Building BDDs from netlist gates (shared by the global and local
// OBDD estimators).
#pragma once

#include <span>

#include "bdd/bdd.h"
#include "netlist/netlist.h"

namespace bns {

// BDD of one gate's function over the BDDs of its operands.
// Precondition: n is a logic node (not an Input).
BddRef build_gate_bdd(BddManager& mgr, const Node& n,
                      std::span<const BddRef> ops);

} // namespace bns
