// Exact OBDD-based switching estimation — the "accurate way of
// switching activity estimation ... which has a high space requirement"
// the paper contrasts with ([10], and the global-BDD variant behind
// tagged probabilistic simulation [13]).
//
// For every line we build *global* BDDs of its value at t-1 and t over
// an interleaved variable order (prev_0, cur_0, prev_1, cur_1, ...) and
// evaluate the exact probability of each transition event. Per-input
// lag-1 temporal correlation is handled exactly by a conditional-
// probability path traversal (P(cur_i | prev_i) is looked up when the
// path has fixed prev_i, and the stationary marginal when the path
// skips it). Spatial input groups are not supported (precondition).
//
// Space is the method's Achilles heel: node-count blow-up (e.g. on
// multipliers) raises BddNodeLimit, which the estimator reports as an
// incomplete result rather than an error — matching how the literature
// treats exact-OBDD feasibility.
#pragma once

#include <array>
#include <vector>

#include "bdd/bdd.h"
#include "netlist/netlist.h"
#include "sim/input_model.h"

namespace bns {

struct BddSwitchingResult {
  // Per-line exact transition distribution; meaningful only when
  // `completed` (on overflow, dist is partially filled in line order).
  std::vector<std::array<double, 4>> dist;
  bool completed = false;
  // Lines whose distributions were computed before any overflow.
  int lines_done = 0;
  std::size_t peak_nodes = 0;
  double seconds = 0.0;

  std::vector<double> activities() const;
};

// Exact switching activity of every line by global transition BDDs.
// Preconditions: no spatial input groups; nl.num_inputs() reasonable
// for 2n BDD variables. Overflow of `max_nodes` stops the computation
// (completed = false).
BddSwitchingResult estimate_bdd_exact(const Netlist& nl,
                                      const InputModel& model,
                                      std::size_t max_nodes = 1u << 22);

} // namespace bns
