#include "bdd/pair_prob.h"

#include <unordered_map>
#include <vector>

#include "util/assert.h"

namespace bns {

struct PairProbEvaluator::Impl {
  Impl(const BddManager& mgr, std::span<const std::array<double, 4>> d)
      : mgr(mgr) {
    BNS_EXPECTS(mgr.num_vars() == 2 * static_cast<int>(d.size()));
    marg.reserve(d.size());
    cur_marg.reserve(d.size());
    p1g0.reserve(d.size());
    p1g1.reserve(d.size());
    for (const auto& pd : d) {
      marg.push_back(pd[2] + pd[3]); // P(prev = 1)
      cur_marg.push_back(pd[1] + pd[3]); // P(cur = 1)
      const double d0 = pd[0] + pd[1];
      const double d1 = pd[2] + pd[3];
      p1g0.push_back(d0 > 0.0 ? pd[1] / d0 : 0.0); // P(cur=1 | prev=0)
      p1g1.push_back(d1 > 0.0 ? pd[3] / d1 : 0.0); // P(cur=1 | prev=1)
    }
  }

  // pending: value of prev_i on the current path when u tests cur_i
  // right after prev_i; -1 when prev_i was skipped (marginal applies).
  double walk(BddRef u, int pending) {
    if (u == kBddFalse) return 0.0;
    if (u == kBddTrue) return 1.0;
    auto& m = memo[static_cast<std::size_t>(pending + 1)];
    const auto it = m.find(u);
    if (it != m.end()) return it->second;

    const int v = mgr.var_of(u);
    const std::size_t pair = static_cast<std::size_t>(v / 2);
    double result;
    if ((v & 1) == 0) {
      const double p = marg[pair];
      result = (1.0 - p) * child(mgr.low(u), v, 0) +
               p * child(mgr.high(u), v, 1);
    } else {
      const double p = pending < 0 ? cur_marg[pair]
                       : pending == 0 ? p1g0[pair]
                                      : p1g1[pair];
      result = (1.0 - p) * walk(mgr.low(u), -1) + p * walk(mgr.high(u), -1);
    }
    m.emplace(u, result);
    return result;
  }

  // A skipped cur variable sums out to 1, so pending only survives into
  // a child that tests the matching cur variable immediately.
  double child(BddRef c, int prev_var, int value) {
    if (!mgr.is_terminal(c) && mgr.var_of(c) == prev_var + 1) {
      return walk(c, value);
    }
    return walk(c, -1);
  }

  const BddManager& mgr;
  std::vector<double> marg;
  std::vector<double> cur_marg;
  std::vector<double> p1g0;
  std::vector<double> p1g1;
  std::unordered_map<BddRef, double> memo[3];
};

PairProbEvaluator::PairProbEvaluator(
    const BddManager& mgr, std::span<const std::array<double, 4>> pair_dists)
    : impl_(std::make_unique<Impl>(mgr, pair_dists)) {}

PairProbEvaluator::~PairProbEvaluator() = default;
PairProbEvaluator::PairProbEvaluator(PairProbEvaluator&&) noexcept = default;
PairProbEvaluator& PairProbEvaluator::operator=(PairProbEvaluator&&) noexcept =
    default;

double PairProbEvaluator::prob(BddRef f) { return impl_->walk(f, -1); }

double pair_signal_prob(const BddManager& mgr, BddRef f,
                        std::span<const std::array<double, 4>> pair_dists) {
  PairProbEvaluator eval(mgr, pair_dists);
  return eval.prob(f);
}

} // namespace bns
