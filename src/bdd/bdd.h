// Reduced Ordered Binary Decision Diagrams (Bryant 1986 — reference
// [10] of the paper). The paper's background contrasts the BN approach
// with exact OBDD-based switching estimation, which is accurate but has
// "a high space requirement"; this package provides that comparator and
// the substrate for local-OBDD techniques like tagged probabilistic
// simulation [13].
//
// Design: a manager with a unique table (hash-consing, so equal
// functions are pointer-equal), an ITE-based apply with memoization, and
// weighted path probability under per-variable independence. No
// complement edges; garbage is reclaimed only when the manager dies
// (fine for the bounded builds we do).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace bns {

// Index into the manager's node array. 0 and 1 are the terminals.
using BddRef = std::uint32_t;
inline constexpr BddRef kBddFalse = 0;
inline constexpr BddRef kBddTrue = 1;

class BddManager {
 public:
  // `num_vars` variables with fixed order: variable 0 at the top.
  // `max_nodes` bounds the unique table; exceeding it throws
  // BddNodeLimit (exact methods are expected to hit limits — callers
  // treat it as "this circuit is out of reach", like the paper treats
  // the space blow-up of exact OBDD methods).
  explicit BddManager(int num_vars, std::size_t max_nodes = 1u << 22);

  int num_vars() const { return num_vars_; }
  std::size_t num_nodes() const { return nodes_.size(); }

  // --- construction ---------------------------------------------------
  BddRef var(int i);      // the function x_i
  BddRef nvar(int i);     // the function !x_i

  BddRef ite(BddRef f, BddRef g, BddRef h);
  BddRef land(BddRef f, BddRef g) { return ite(f, g, kBddFalse); }
  BddRef lor(BddRef f, BddRef g) { return ite(f, kBddTrue, g); }
  BddRef lnot(BddRef f) { return ite(f, kBddFalse, kBddTrue); }
  BddRef lxor(BddRef f, BddRef g);
  BddRef lxnor(BddRef f, BddRef g) { return lnot(lxor(f, g)); }

  // --- structure ------------------------------------------------------
  bool is_terminal(BddRef f) const { return f <= kBddTrue; }
  int var_of(BddRef f) const;    // precondition: !is_terminal(f)
  BddRef low(BddRef f) const;    // cofactor var=0
  BddRef high(BddRef f) const;   // cofactor var=1

  // Shannon cofactor of f with variable i fixed (i need not be the top).
  BddRef cofactor(BddRef f, int i, bool value);

  // Existential quantification over variable i.
  BddRef exists(BddRef f, int i);

  // Variables f depends on (ascending).
  std::vector<int> support(BddRef f) const;

  // Number of BDD nodes reachable from f (excluding terminals).
  std::size_t size(BddRef f) const;

  // Evaluate on a full assignment.
  bool eval(BddRef f, std::span<const bool> assignment) const;

  // Number of satisfying assignments over all num_vars() variables.
  double sat_count(BddRef f) const;

  // P(f = 1) with independent variables, P(x_i = 1) = p[i].
  double signal_prob(BddRef f, std::span<const double> p) const;

  // Diagnostic dump ("x2 ? (x3 ? 1 : 0) : 0"-ish), for small BDDs.
  std::string to_string(BddRef f) const;

 private:
  struct Node {
    std::int32_t var;
    BddRef lo;
    BddRef hi;
  };
  struct NodeKeyHash {
    std::size_t operator()(const std::uint64_t& k) const {
      std::uint64_t x = k * 0x9e3779b97f4a7c15ULL;
      return static_cast<std::size_t>(x ^ (x >> 32));
    }
  };

  BddRef mk(int var, BddRef lo, BddRef hi);
  const Node& node(BddRef f) const { return nodes_[f]; }
  int top_var(BddRef f, BddRef g, BddRef h) const;

  int num_vars_;
  std::size_t max_nodes_;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, BddRef, NodeKeyHash> unique_;
  std::unordered_map<std::uint64_t, BddRef, NodeKeyHash> ite_cache_;
};

// Thrown when a build exceeds the manager's node budget.
class BddNodeLimit : public std::exception {
 public:
  const char* what() const noexcept override {
    return "BDD node limit exceeded";
  }
};

} // namespace bns
