#include "bdd/bdd.h"

#include <algorithm>

#include "util/assert.h"
#include "util/strings.h"

namespace bns {
namespace {

std::uint64_t pack3(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  // 21 bits each is plenty below the node cap; mix to one key.
  return (static_cast<std::uint64_t>(a) << 42) ^
         (static_cast<std::uint64_t>(b) << 21) ^ c;
}

} // namespace

BddManager::BddManager(int num_vars, std::size_t max_nodes)
    : num_vars_(num_vars), max_nodes_(max_nodes) {
  BNS_EXPECTS(num_vars >= 0);
  BNS_EXPECTS(max_nodes >= 16);
  nodes_.push_back({num_vars_, kBddFalse, kBddFalse}); // terminal 0
  nodes_.push_back({num_vars_, kBddTrue, kBddTrue});   // terminal 1
}

BddRef BddManager::mk(int var, BddRef lo, BddRef hi) {
  if (lo == hi) return lo; // reduction rule
  const std::uint64_t key =
      pack3(static_cast<std::uint32_t>(var) + 2, lo, hi);
  const auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  if (nodes_.size() >= max_nodes_) throw BddNodeLimit();
  const BddRef ref = static_cast<BddRef>(nodes_.size());
  nodes_.push_back({var, lo, hi});
  unique_.emplace(key, ref);
  return ref;
}

BddRef BddManager::var(int i) {
  BNS_EXPECTS(i >= 0 && i < num_vars_);
  return mk(i, kBddFalse, kBddTrue);
}

BddRef BddManager::nvar(int i) {
  BNS_EXPECTS(i >= 0 && i < num_vars_);
  return mk(i, kBddTrue, kBddFalse);
}

int BddManager::var_of(BddRef f) const {
  BNS_EXPECTS(!is_terminal(f));
  return node(f).var;
}

BddRef BddManager::low(BddRef f) const {
  BNS_EXPECTS(!is_terminal(f));
  return node(f).lo;
}

BddRef BddManager::high(BddRef f) const {
  BNS_EXPECTS(!is_terminal(f));
  return node(f).hi;
}

int BddManager::top_var(BddRef f, BddRef g, BddRef h) const {
  int v = num_vars_;
  if (!is_terminal(f)) v = std::min(v, node(f).var);
  if (!is_terminal(g)) v = std::min(v, node(g).var);
  if (!is_terminal(h)) v = std::min(v, node(h).var);
  return v;
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == kBddTrue) return g;
  if (f == kBddFalse) return h;
  if (g == h) return g;
  if (g == kBddTrue && h == kBddFalse) return f;

  const std::uint64_t key =
      pack3(f, g, h) * 0x100000001b3ULL ^ 0x9e3779b9u;
  const auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  const int v = top_var(f, g, h);
  auto cof = [&](BddRef x, bool hi) {
    if (is_terminal(x) || node(x).var != v) return x;
    return hi ? node(x).hi : node(x).lo;
  };
  const BddRef lo = ite(cof(f, false), cof(g, false), cof(h, false));
  const BddRef hi = ite(cof(f, true), cof(g, true), cof(h, true));
  const BddRef r = mk(v, lo, hi);
  ite_cache_.emplace(key, r);
  return r;
}

BddRef BddManager::lxor(BddRef f, BddRef g) {
  return ite(f, lnot(g), g);
}

BddRef BddManager::cofactor(BddRef f, int i, bool value) {
  BNS_EXPECTS(i >= 0 && i < num_vars_);
  if (is_terminal(f) || node(f).var > i) return f;
  if (node(f).var == i) return value ? node(f).hi : node(f).lo;
  // Recurse (no memo: used on small BDDs / tests).
  const BddRef lo = cofactor(node(f).lo, i, value);
  const BddRef hi = cofactor(node(f).hi, i, value);
  return mk(node(f).var, lo, hi);
}

BddRef BddManager::exists(BddRef f, int i) {
  return lor(cofactor(f, i, false), cofactor(f, i, true));
}

std::vector<int> BddManager::support(BddRef f) const {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<bool> in_support(static_cast<std::size_t>(num_vars_), false);
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    const BddRef u = stack.back();
    stack.pop_back();
    if (is_terminal(u) || seen[u]) continue;
    seen[u] = true;
    in_support[static_cast<std::size_t>(node(u).var)] = true;
    stack.push_back(node(u).lo);
    stack.push_back(node(u).hi);
  }
  std::vector<int> out;
  for (int i = 0; i < num_vars_; ++i) {
    if (in_support[static_cast<std::size_t>(i)]) out.push_back(i);
  }
  return out;
}

std::size_t BddManager::size(BddRef f) const {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<BddRef> stack{f};
  std::size_t n = 0;
  while (!stack.empty()) {
    const BddRef u = stack.back();
    stack.pop_back();
    if (is_terminal(u) || seen[u]) continue;
    seen[u] = true;
    ++n;
    stack.push_back(node(u).lo);
    stack.push_back(node(u).hi);
  }
  return n;
}

bool BddManager::eval(BddRef f, std::span<const bool> assignment) const {
  BNS_EXPECTS(static_cast<int>(assignment.size()) == num_vars_);
  while (!is_terminal(f)) {
    f = assignment[static_cast<std::size_t>(node(f).var)] ? node(f).hi
                                                          : node(f).lo;
  }
  return f == kBddTrue;
}

double BddManager::sat_count(BddRef f) const {
  std::unordered_map<BddRef, double> memo;
  // Fraction of assignments satisfying f, then scale by 2^num_vars.
  auto density = [&](auto&& self, BddRef u) -> double {
    if (u == kBddFalse) return 0.0;
    if (u == kBddTrue) return 1.0;
    const auto it = memo.find(u);
    if (it != memo.end()) return it->second;
    const double d = 0.5 * self(self, node(u).lo) + 0.5 * self(self, node(u).hi);
    memo.emplace(u, d);
    return d;
  };
  double scale = 1.0;
  for (int i = 0; i < num_vars_; ++i) scale *= 2.0;
  return density(density, f) * scale;
}

double BddManager::signal_prob(BddRef f, std::span<const double> p) const {
  BNS_EXPECTS(static_cast<int>(p.size()) == num_vars_);
  std::unordered_map<BddRef, double> memo;
  auto walk = [&](auto&& self, BddRef u) -> double {
    if (u == kBddFalse) return 0.0;
    if (u == kBddTrue) return 1.0;
    const auto it = memo.find(u);
    if (it != memo.end()) return it->second;
    const double pv = p[static_cast<std::size_t>(node(u).var)];
    const double d =
        (1.0 - pv) * self(self, node(u).lo) + pv * self(self, node(u).hi);
    memo.emplace(u, d);
    return d;
  };
  return walk(walk, f);
}

std::string BddManager::to_string(BddRef f) const {
  if (f == kBddFalse) return "0";
  if (f == kBddTrue) return "1";
  return strformat("x%d ? (%s) : (%s)", node(f).var,
                   to_string(node(f).hi).c_str(),
                   to_string(node(f).lo).c_str());
}

} // namespace bns
