// Ground-truth switching-activity estimation by 64-lane bit-parallel
// zero-delay logic simulation, the "logic simulation providing ground
// truth estimates of switching" of the paper's Section 6.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "sim/input_model.h"
#include "util/rng.h"

namespace bns {

// One Bernoulli(p) draw per bit of the returned word, bits independent.
// Uses a 32-term dyadic expansion of p (resolution 2^-32).
std::uint64_t bernoulli_word(Rng& rng, double p);

// Per-node transition counts accumulated over a simulated input stream.
class SimResult {
 public:
  SimResult(int num_nodes, std::uint64_t num_samples);

  std::uint64_t num_samples() const { return n_; }

  // Empirical distribution over {00,01,10,11} transitions of node id.
  std::array<double, 4> transition_dist(NodeId id) const;

  // Empirical switching activity P(01) + P(10).
  double activity(NodeId id) const;

  // Empirical signal probability P(X_t = 1) (from the pair samples).
  double signal_prob(NodeId id) const;

  // Activities for all nodes, indexed by NodeId.
  std::vector<double> activities() const;

  // Raw counters (testing / merging).
  std::array<std::uint64_t, 4>& counts(NodeId id);
  const std::array<std::uint64_t, 4>& counts(NodeId id) const;
  void add_samples(std::uint64_t n) { n_ += n; }

 private:
  std::vector<std::array<std::uint64_t, 4>> counts_;
  std::uint64_t n_ = 0;
};

class SwitchingSimulator {
 public:
  explicit SwitchingSimulator(const Netlist& nl);

  // Simulates a stream of consecutive random vectors and counts the
  // transition of every node between consecutive time steps, until at
  // least `min_pairs` (node, step) transition samples per node are
  // collected. The stream statistics follow `model`, whose input count
  // must match the netlist. Deterministic in `seed`.
  SimResult run(const InputModel& model, std::uint64_t min_pairs,
                std::uint64_t seed) const;

  const Netlist& netlist() const { return *nl_; }

 private:
  const Netlist* nl_; // non-owning; must outlive the simulator
};

// Exact switching activity by exhaustive enumeration of all input pair
// assignments, weighted by the input model (the true marginals the BN
// must reproduce). Exponential in the number of inputs.
// Preconditions: no spatial groups in `model`; nl.num_inputs() <= 10.
std::vector<std::array<double, 4>> exact_transition_dists(
    const Netlist& nl, const InputModel& model);

std::vector<double> exact_activities(const Netlist& nl,
                                     const InputModel& model);

} // namespace bns
