// Statistical models of the primary-input streams.
//
// Each input is a stationary two-state lag-1 Markov chain parameterized
// by its signal probability p = P(X_t = 1) and its lag-1 autocorrelation
// coefficient rho (rho = 0 gives an i.i.d. Bernoulli(p) stream). This is
// exactly the statistics the 4-state transition variables of the paper
// consume: the stationary distribution over (X_{t-1}, X_t) pairs.
//
// Optional *spatial* correlation is modeled with shared-source groups:
// inputs in the same group are noisy copies of one hidden source stream
// (X_i = S xor N_i with P(N_i = 1) = flip), which is the kind of
// correlated-input modeling the paper lists as future work.
#pragma once

#include <array>
#include <vector>

#include "netlist/netlist.h"

namespace bns {

// Indices into a 4-state transition distribution, in the paper's order.
enum Trans : int { T00 = 0, T01 = 1, T10 = 2, T11 = 3 };

// Activity contribution of a 4-state distribution: P(01) + P(10).
inline double activity_of(const std::array<double, 4>& d) {
  return d[T01] + d[T10];
}

struct InputSpec {
  double p = 0.5;    // P(X = 1), in [0, 1]
  double rho = 0.0;  // lag-1 autocorrelation, in [rho_min(p), 1]
  int group = -1;    // shared-source group id, or -1 for independent
  double flip = 0.0; // P(input differs from group source), in [0, 0.5]
};

// Smallest admissible rho for a stationary chain with P(1) = p.
double rho_min(double p);

// Conditional next-state probabilities of the chain.
// P(X_t = 1 | X_{t-1} = 1) and P(X_t = 1 | X_{t-1} = 0).
double p1_given_1(double p, double rho);
double p1_given_0(double p, double rho);

// Stationary distribution over (X_{t-1}, X_t) as [P00, P01, P10, P11].
std::array<double, 4> transition_distribution(double p, double rho);

// A shared-source group's own stream statistics.
struct GroupSpec {
  double p = 0.5;
  double rho = 0.0;
};

class InputModel {
 public:
  InputModel() = default;

  // n independent streams with identical (p, rho).
  static InputModel uniform(int n, double p = 0.5, double rho = 0.0);

  // Fully custom per-input specs (validated).
  static InputModel custom(std::vector<InputSpec> specs,
                           std::vector<GroupSpec> groups = {});

  int num_inputs() const { return static_cast<int>(specs_.size()); }
  const InputSpec& spec(int i) const;
  const std::vector<InputSpec>& specs() const { return specs_; }
  int num_groups() const { return static_cast<int>(groups_.size()); }
  const GroupSpec& group(int g) const;
  const std::vector<GroupSpec>& groups() const { return groups_; }

  bool has_spatial_correlation() const;

  // Per-input stationary 4-state transition distribution, *marginalized*
  // over the group source when the input belongs to a group.
  std::array<double, 4> transition_dist(int i) const;

  // Stationary 4-state distribution of group g's source stream.
  std::array<double, 4> group_transition_dist(int g) const;

 private:
  std::vector<InputSpec> specs_;
  std::vector<GroupSpec> groups_;
};

} // namespace bns
