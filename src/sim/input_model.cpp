#include "sim/input_model.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace bns {

double rho_min(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0; // constant stream: rho is moot
  return std::max(-p / (1.0 - p), -(1.0 - p) / p);
}

// Both conditionals are clamped to [0, 1]: at rho == rho_min(p) the
// exact value is 0 (or 1), but the subtraction in rho_min rounds, so
// the raw expressions can land a few ulp outside the unit interval and
// leak negative CPT cells into the engine (visible downstream as
// sep_zero_cells / negative-potential health probes).
double p1_given_1(double p, double rho) {
  return std::clamp(p + rho * (1.0 - p), 0.0, 1.0);
}

double p1_given_0(double p, double rho) {
  return std::clamp(p * (1.0 - rho), 0.0, 1.0);
}

std::array<double, 4> transition_distribution(double p, double rho) {
  BNS_EXPECTS(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return {1.0, 0.0, 0.0, 0.0};
  if (p >= 1.0) return {0.0, 0.0, 0.0, 1.0};
  BNS_EXPECTS(rho >= rho_min(p) - 1e-12 && rho <= 1.0 + 1e-12);
  const double p11 = p1_given_1(p, rho);
  const double p01 = p1_given_0(p, rho);
  return {
      (1.0 - p) * (1.0 - p01), // 00
      (1.0 - p) * p01,         // 01
      p * (1.0 - p11),         // 10
      p * p11,                 // 11
  };
}

InputModel InputModel::uniform(int n, double p, double rho) {
  BNS_EXPECTS(n >= 0);
  std::vector<InputSpec> specs(static_cast<std::size_t>(n), InputSpec{p, rho, -1, 0.0});
  return custom(std::move(specs));
}

InputModel InputModel::custom(std::vector<InputSpec> specs,
                              std::vector<GroupSpec> groups) {
  InputModel m;
  for (const InputSpec& s : specs) {
    BNS_EXPECTS(s.p >= 0.0 && s.p <= 1.0);
    BNS_EXPECTS(s.rho >= rho_min(s.p) - 1e-12 && s.rho <= 1.0 + 1e-12);
    BNS_EXPECTS(s.flip >= 0.0 && s.flip <= 0.5);
    BNS_EXPECTS(s.group == -1 ||
                (s.group >= 0 && s.group < static_cast<int>(groups.size())));
  }
  for (const GroupSpec& g : groups) {
    BNS_EXPECTS(g.p >= 0.0 && g.p <= 1.0);
    BNS_EXPECTS(g.rho >= rho_min(g.p) - 1e-12 && g.rho <= 1.0 + 1e-12);
  }
  m.specs_ = std::move(specs);
  m.groups_ = std::move(groups);
  return m;
}

const InputSpec& InputModel::spec(int i) const {
  BNS_EXPECTS(i >= 0 && i < num_inputs());
  return specs_[static_cast<std::size_t>(i)];
}

const GroupSpec& InputModel::group(int g) const {
  BNS_EXPECTS(g >= 0 && g < num_groups());
  return groups_[static_cast<std::size_t>(g)];
}

bool InputModel::has_spatial_correlation() const {
  return std::any_of(specs_.begin(), specs_.end(),
                     [](const InputSpec& s) { return s.group >= 0; });
}

std::array<double, 4> InputModel::transition_dist(int i) const {
  const InputSpec& s = spec(i);
  if (s.group < 0) return transition_distribution(s.p, s.rho);

  // Grouped input: X_t = S_t xor N_t with i.i.d. noise N. Its own (p,
  // rho) fields are ignored; the pair distribution is the source's,
  // smeared by independent flips at both time points.
  const std::array<double, 4> src = group_transition_dist(s.group);
  const double q = s.flip;
  std::array<double, 4> out{};
  for (int sa = 0; sa < 2; ++sa) {
    for (int sb = 0; sb < 2; ++sb) {
      const double ps = src[static_cast<std::size_t>(sa * 2 + sb)];
      for (int xa = 0; xa < 2; ++xa) {
        for (int xb = 0; xb < 2; ++xb) {
          const double fa = (xa == sa) ? (1.0 - q) : q;
          const double fb = (xb == sb) ? (1.0 - q) : q;
          out[static_cast<std::size_t>(xa * 2 + xb)] += ps * fa * fb;
        }
      }
    }
  }
  return out;
}

std::array<double, 4> InputModel::group_transition_dist(int g) const {
  const GroupSpec& gs = group(g);
  return transition_distribution(gs.p, gs.rho);
}

} // namespace bns
