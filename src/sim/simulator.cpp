#include "sim/simulator.h"

#include <bit>
#include <cmath>

#include "util/assert.h"

namespace bns {

std::uint64_t bernoulli_word(Rng& rng, double p) {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return ~0ULL;
  if (p == 0.5) return rng.bits64();
  // Dyadic composition: with acc_K = 0 and, for k = K..1,
  //   acc <- b_k ? (fresh | acc) : (fresh & acc),
  // each output bit is 1 with probability 0.b1 b2 ... bK (binary).
  const std::uint32_t frac =
      static_cast<std::uint32_t>(std::lround(p * 4294967296.0 /*2^32*/));
  if (frac == 0) return 0;
  std::uint64_t acc = 0;
  for (int k = 0; k < 32; ++k) { // k = 0 is the least significant bit b_32
    const bool bit = (frac >> k) & 1;
    const std::uint64_t fresh = rng.bits64();
    acc = bit ? (fresh | acc) : (fresh & acc);
  }
  return acc;
}

SimResult::SimResult(int num_nodes, std::uint64_t num_samples)
    : counts_(static_cast<std::size_t>(num_nodes)), n_(num_samples) {
  BNS_EXPECTS(num_nodes >= 0);
}

std::array<double, 4> SimResult::transition_dist(NodeId id) const {
  const auto& c = counts(id);
  BNS_EXPECTS(n_ > 0);
  const double inv = 1.0 / static_cast<double>(n_);
  return {static_cast<double>(c[0]) * inv, static_cast<double>(c[1]) * inv,
          static_cast<double>(c[2]) * inv, static_cast<double>(c[3]) * inv};
}

double SimResult::activity(NodeId id) const {
  const auto d = transition_dist(id);
  return d[T01] + d[T10];
}

double SimResult::signal_prob(NodeId id) const {
  const auto d = transition_dist(id);
  return d[T01] + d[T11]; // P(X_t = 1)
}

std::vector<double> SimResult::activities() const {
  std::vector<double> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = activity(static_cast<NodeId>(i));
  }
  return out;
}

std::array<std::uint64_t, 4>& SimResult::counts(NodeId id) {
  BNS_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < counts_.size());
  return counts_[static_cast<std::size_t>(id)];
}

const std::array<std::uint64_t, 4>& SimResult::counts(NodeId id) const {
  BNS_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < counts_.size());
  return counts_[static_cast<std::size_t>(id)];
}

SwitchingSimulator::SwitchingSimulator(const Netlist& nl) : nl_(&nl) {}

SimResult SwitchingSimulator::run(const InputModel& model,
                                  std::uint64_t min_pairs,
                                  std::uint64_t seed) const {
  const Netlist& nl = *nl_;
  BNS_EXPECTS(model.num_inputs() == nl.num_inputs());
  BNS_EXPECTS(min_pairs > 0);

  Rng rng(seed);
  const int n_nodes = nl.num_nodes();
  const int n_inputs = nl.num_inputs();
  const int n_groups = model.num_groups();

  // 64 independent lanes; ceil(min_pairs / 64) transition steps.
  const std::uint64_t steps = (min_pairs + 63) / 64;

  std::vector<std::uint64_t> cur(static_cast<std::size_t>(n_nodes), 0);
  std::vector<std::uint64_t> prev(static_cast<std::size_t>(n_nodes), 0);
  std::vector<std::uint64_t> group_state(static_cast<std::size_t>(n_groups), 0);
  std::vector<std::uint64_t> input_state(static_cast<std::size_t>(n_inputs), 0);

  // Advances a lag-1 Markov word: bits at 1 stay with prob p11, bits at
  // 0 rise with prob p01.
  auto markov_step = [&](std::uint64_t state, double p, double rho) {
    const std::uint64_t stay = bernoulli_word(rng, p1_given_1(p, rho));
    const std::uint64_t rise = bernoulli_word(rng, p1_given_0(p, rho));
    return (state & stay) | (~state & rise);
  };

  // Initialize every stream from its stationary marginal.
  for (int g = 0; g < n_groups; ++g) {
    group_state[static_cast<std::size_t>(g)] =
        bernoulli_word(rng, model.group(g).p);
  }
  auto gen_inputs = [&](bool first) {
    if (!first) {
      for (int g = 0; g < n_groups; ++g) {
        const GroupSpec& gs = model.group(g);
        group_state[static_cast<std::size_t>(g)] =
            markov_step(group_state[static_cast<std::size_t>(g)], gs.p, gs.rho);
      }
    }
    for (int i = 0; i < n_inputs; ++i) {
      const InputSpec& s = model.spec(i);
      std::uint64_t w;
      if (s.group >= 0) {
        const std::uint64_t noise = bernoulli_word(rng, s.flip);
        w = group_state[static_cast<std::size_t>(s.group)] ^ noise;
      } else if (first) {
        w = bernoulli_word(rng, s.p);
      } else {
        w = markov_step(input_state[static_cast<std::size_t>(i)], s.p, s.rho);
      }
      input_state[static_cast<std::size_t>(i)] = w;
    }
  };

  auto eval_all = [&](std::vector<std::uint64_t>& vals) {
    for (int i = 0; i < n_inputs; ++i) {
      vals[static_cast<std::size_t>(nl.inputs()[static_cast<std::size_t>(i)])] =
          input_state[static_cast<std::size_t>(i)];
    }
    std::vector<std::uint64_t> fanin_vals;
    for (NodeId id = 0; id < n_nodes; ++id) {
      const Node& n = nl.node(id);
      if (n.type == GateType::Input) continue;
      fanin_vals.clear();
      for (NodeId f : n.fanin) fanin_vals.push_back(vals[static_cast<std::size_t>(f)]);
      vals[static_cast<std::size_t>(id)] =
          n.type == GateType::Lut ? n.lut->eval_words(fanin_vals)
                                  : eval_gate_words(n.type, fanin_vals);
    }
  };

  SimResult result(n_nodes, steps * 64);

  gen_inputs(/*first=*/true);
  eval_all(prev);
  for (std::uint64_t t = 0; t < steps; ++t) {
    gen_inputs(/*first=*/false);
    eval_all(cur);
    for (NodeId id = 0; id < n_nodes; ++id) {
      const std::uint64_t a = prev[static_cast<std::size_t>(id)];
      const std::uint64_t b = cur[static_cast<std::size_t>(id)];
      auto& c = result.counts(id);
      c[T00] += static_cast<std::uint64_t>(std::popcount(~a & ~b));
      c[T01] += static_cast<std::uint64_t>(std::popcount(~a & b));
      c[T10] += static_cast<std::uint64_t>(std::popcount(a & ~b));
      c[T11] += static_cast<std::uint64_t>(std::popcount(a & b));
    }
    std::swap(prev, cur);
  }
  return result;
}

std::vector<std::array<double, 4>> exact_transition_dists(
    const Netlist& nl, const InputModel& model) {
  BNS_EXPECTS(model.num_inputs() == nl.num_inputs());
  BNS_EXPECTS_MSG(!model.has_spatial_correlation(),
                  "exact enumeration does not support input groups");
  const int n = nl.num_inputs();
  BNS_EXPECTS_MSG(n <= 10, "exhaustive enumeration is exponential in inputs");

  const int n_nodes = nl.num_nodes();
  std::vector<std::array<double, 4>> dist(
      static_cast<std::size_t>(n_nodes), std::array<double, 4>{});

  // Per-input pair distribution.
  std::vector<std::array<double, 4>> in_dist;
  in_dist.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) in_dist.push_back(model.transition_dist(i));

  std::vector<bool> va(static_cast<std::size_t>(n_nodes));
  std::vector<bool> vb(static_cast<std::size_t>(n_nodes));
  std::vector<bool> buf;

  auto eval_vec = [&](std::uint64_t assign, std::vector<bool>& vals) {
    for (int i = 0; i < n; ++i) {
      vals[static_cast<std::size_t>(nl.inputs()[static_cast<std::size_t>(i)])] =
          (assign >> i) & 1;
    }
    for (NodeId id = 0; id < n_nodes; ++id) {
      const Node& nd = nl.node(id);
      if (nd.type == GateType::Input) continue;
      buf.assign(nd.fanin.size(), false);
      bool scratch[24];
      BNS_ASSERT(nd.fanin.size() <= 24);
      for (std::size_t k = 0; k < nd.fanin.size(); ++k) {
        scratch[k] = vals[static_cast<std::size_t>(nd.fanin[k])];
      }
      const std::span<const bool> in(scratch, nd.fanin.size());
      vals[static_cast<std::size_t>(id)] =
          nd.type == GateType::Lut ? nd.lut->eval(in) : eval_gate(nd.type, in);
    }
  };

  const std::uint64_t total = 1ULL << n;
  for (std::uint64_t a = 0; a < total; ++a) {
    eval_vec(a, va);
    for (std::uint64_t b = 0; b < total; ++b) {
      double w = 1.0;
      for (int i = 0; i < n; ++i) {
        const int xa = (a >> i) & 1;
        const int xb = (b >> i) & 1;
        w *= in_dist[static_cast<std::size_t>(i)]
                    [static_cast<std::size_t>(xa * 2 + xb)];
      }
      if (w == 0.0) continue;
      eval_vec(b, vb);
      for (NodeId id = 0; id < n_nodes; ++id) {
        const int sa = va[static_cast<std::size_t>(id)] ? 1 : 0;
        const int sb = vb[static_cast<std::size_t>(id)] ? 1 : 0;
        dist[static_cast<std::size_t>(id)][static_cast<std::size_t>(sa * 2 + sb)] += w;
      }
    }
  }
  return dist;
}

std::vector<double> exact_activities(const Netlist& nl,
                                     const InputModel& model) {
  const auto dists = exact_transition_dists(nl, model);
  std::vector<double> out(dists.size());
  for (std::size_t i = 0; i < dists.size(); ++i) out[i] = activity_of(dists[i]);
  return out;
}

} // namespace bns
