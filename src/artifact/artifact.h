// Compiled-model artifacts (.bnsc): persistent serialization of the
// full compiled estimator state — netlist, segment LIDAG BNs with their
// CPTs, triangulations, propagation schedules and CPT home maps — so
// the expensive compile (structure + triangulation + schedule build) is
// paid once and later processes start straight at the cheap "update"
// step the paper advocates (load priors, propagate).
//
// Format: a 4-byte magic "BNSC", a little-endian u32 header length, a
// JSON header (schema version, provenance, section table with FNV-1a
// checksums — same round-trip discipline as the obs/ report documents),
// then raw little-endian binary sections for the tables. The junction
// trees themselves are not stored: JunctionTree's construction from a
// Triangulation is deterministic, so the loader rebuilds them bit-
// identically from the stored triangulations.
//
// Every load validates the header (magic / version / checksums) and,
// by default, re-runs the SC001-SC009 static schedule analyzer over
// every restored engine before the model answers its first query — a
// corrupted or stale artifact fails loudly, never silently.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "lidag/estimator.h"
#include "netlist/netlist.h"
#include "obs/trace.h"

namespace bns {

// First 4 bytes of every artifact.
inline constexpr char kArtifactMagic[4] = {'B', 'N', 'S', 'C'};

// Version of the .bnsc container. Bump on any layout change; the loader
// rejects artifacts whose version differs (artifacts are compile caches,
// not archival documents — recompiling is always possible and cheap to
// ask for, silently misreading tables is not).
inline constexpr int kArtifactSchemaVersion = 1;

// Every artifact failure mode (I/O, bad magic, version skew, checksum
// mismatch, truncated/inconsistent sections, failed SC* validation)
// surfaces as this exception with a one-line human-readable reason.
class ArtifactError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Header-level facts about an artifact, available without decoding the
// binary sections (see read_artifact_info).
struct ArtifactInfo {
  int schema_version = kArtifactSchemaVersion;
  std::string circuit;        // netlist name at compile time
  std::string git_describe;   // producing build's provenance
  std::string build_type;
  std::string timestamp_iso8601;
  std::string hostname;
  int num_nodes = 0;          // original netlist lines
  int num_inputs = 0;
  int num_segments = 0;
  double compile_seconds = 0.0; // what loading this artifact avoids
};

struct ArtifactLoadOptions {
  // Run the SC001-SC009 static schedule analyzer over every restored
  // engine and reject the artifact on any error finding. On by default:
  // an artifact is untrusted input until proven sound.
  bool validate = true;
  // Runtime knobs for the restored estimator (compile-time options are
  // recorded in the artifact and not overridable — quantification must
  // match the compiled structure).
  int num_threads = 0;        // see EstimatorOptions::num_threads
  obs::Tracer* trace = nullptr;
};

// A restored compiled model. The estimator borrows from `netlist`, so
// the two must be kept (and destroyed) together — keep the LoadedModel.
struct LoadedModel {
  ArtifactInfo info;
  double load_seconds = 0.0;  // decode + restore + validate, wall clock
  std::unique_ptr<Netlist> netlist;
  std::unique_ptr<LidagEstimator> estimator;
};

// Serializes the compiled model behind `view` (obtained from
// LidagEstimator::compiled_view()) into an artifact byte string.
// Requires the scheduled engine path (every segment engine must expose
// a compiled PropagationSchedule); throws ArtifactError otherwise.
std::string serialize_artifact(const CompiledModelView& view);

// serialize_artifact + atomic write (temp file + rename) to `path`.
void save_artifact(const std::string& path, const CompiledModelView& view);

// Parses, restores and (by default) validates an artifact. Throws
// ArtifactError on any malformation; never returns a partial model.
LoadedModel load_artifact_bytes(std::string_view bytes,
                                const ArtifactLoadOptions& opts = {});
LoadedModel load_artifact(const std::string& path,
                          const ArtifactLoadOptions& opts = {});

// Reads only the JSON header of an artifact (fast: no section decode,
// no checksum pass over the tables). Throws ArtifactError on a file
// that is not a valid artifact header.
ArtifactInfo read_artifact_info(const std::string& path);

} // namespace bns
