#include "artifact/artifact.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/report.h"
#include "util/timer.h"
#include "verify/schedule_rules.h"

namespace bns {
namespace {

// --- little-endian primitives ------------------------------------------
// Byte-wise encode/decode, independent of host endianness. Doubles
// travel as their IEEE-754 bit pattern (bit_cast), so values round-trip
// bit-exactly — the property the artifact tests assert end to end.

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::string& out, double d) {
  put_u64(out, std::bit_cast<std::uint64_t>(d));
}

void put_str(std::string& out, std::string_view s) {
  put_u64(out, s.size());
  out.append(s);
}

template <typename Int>
void put_vec_i32(std::string& out, const std::vector<Int>& v) {
  static_assert(sizeof(Int) == 4);
  put_u64(out, v.size());
  for (Int x : v) put_i32(out, static_cast<std::int32_t>(x));
}

void put_vec_u64(std::string& out, const std::vector<std::size_t>& v) {
  put_u64(out, v.size());
  for (std::size_t x : v) put_u64(out, static_cast<std::uint64_t>(x));
}

void put_vec_f64(std::string& out, std::span<const double> v) {
  put_u64(out, v.size());
  for (double x : v) put_f64(out, x);
}

// Bounds-checked little-endian reader over one section. Any overrun or
// implausible length throws ArtifactError naming the section, so a
// decode failure is always attributable.
class Cursor {
 public:
  Cursor(std::string_view data, std::string section)
      : data_(data), section_(std::move(section)) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 8;
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    std::size_t n = length(1);
    need(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  std::vector<int> vec_i32() {
    std::size_t n = length(4);
    std::vector<int> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = i32();
    return v;
  }

  std::vector<std::size_t> vec_u64() {
    std::size_t n = length(8);
    std::vector<std::size_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
      v[i] = static_cast<std::size_t>(u64());
    return v;
  }

  std::vector<double> vec_f64() {
    std::size_t n = length(8);
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = f64();
    return v;
  }

  // Element count whose payload must still fit in the section — rejects
  // corrupt lengths before any allocation is attempted.
  std::size_t length(std::size_t elem_size) {
    std::uint64_t n = u64();
    if (n > (data_.size() - pos_) / elem_size) fail("corrupt length");
    return static_cast<std::size_t>(n);
  }

  void expect_end() const {
    if (pos_ != data_.size()) fail("trailing bytes");
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw ArtifactError("artifact section '" + section_ + "': " + what);
  }

 private:
  void need(std::size_t n) {
    if (n > data_.size() - pos_) fail("truncated");
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  std::string section_;
};

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// --- netlist -----------------------------------------------------------

void encode_netlist(std::string& out, const Netlist& nl) {
  put_str(out, nl.name());
  put_u32(out, static_cast<std::uint32_t>(nl.num_nodes()));
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const Node& n = nl.node(id);
    put_str(out, n.name);
    put_u8(out, static_cast<std::uint8_t>(n.type));
    put_vec_i32(out, n.fanin);
    if (n.type == GateType::Lut) {
      const TruthTable& tt = *n.lut;
      put_u8(out, static_cast<std::uint8_t>(tt.num_inputs()));
      std::uint64_t rows = tt.num_rows();
      for (std::uint64_t base = 0; base < rows; base += 64) {
        std::uint64_t word = 0;
        for (std::uint64_t b = 0; b < 64 && base + b < rows; ++b)
          if (tt.value(base + b)) word |= 1ull << b;
        put_u64(out, word);
      }
    }
  }
  put_vec_i32(out, nl.outputs());
}

Netlist decode_netlist(Cursor& c) {
  Netlist nl(c.str());
  std::uint32_t num_nodes = c.u32();
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    std::string name = c.str();
    std::uint8_t type_byte = c.u8();
    if (type_byte > static_cast<std::uint8_t>(GateType::Lut))
      c.fail("unknown gate type");
    GateType type = static_cast<GateType>(type_byte);
    std::vector<int> fanin = c.vec_i32();
    for (int f : fanin)
      if (f < 0 || f >= static_cast<int>(i)) c.fail("fanin out of range");
    switch (type) {
      case GateType::Input:
        nl.add_input(std::move(name));
        break;
      case GateType::Const0:
        nl.add_const(std::move(name), false);
        break;
      case GateType::Const1:
        nl.add_const(std::move(name), true);
        break;
      case GateType::Lut: {
        int n_inputs = c.u8();
        if (n_inputs > TruthTable::kMaxInputs) c.fail("LUT too wide");
        TruthTable tt(n_inputs);
        std::uint64_t rows = tt.num_rows();
        for (std::uint64_t base = 0; base < rows; base += 64) {
          std::uint64_t word = c.u64();
          for (std::uint64_t b = 0; b < 64 && base + b < rows; ++b)
            tt.set_value(base + b, (word >> b) & 1);
        }
        nl.add_lut(std::move(name), std::move(fanin), std::move(tt));
        break;
      }
      default:
        nl.add_gate(type, std::move(name), std::move(fanin));
        break;
    }
  }
  for (int o : c.vec_i32()) {
    if (o < 0 || o >= nl.num_nodes()) c.fail("output out of range");
    nl.mark_output(o);
  }
  return nl;
}

// --- Bayesian network / LIDAG ------------------------------------------

void encode_bn(std::string& out, const BayesianNetwork& bn) {
  put_u32(out, static_cast<std::uint32_t>(bn.num_variables()));
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    put_str(out, bn.name(v));
    put_u32(out, static_cast<std::uint32_t>(bn.cardinality(v)));
  }
  for (VarId v = 0; v < bn.num_variables(); ++v) {
    put_vec_i32(out, bn.parents(v));
    put_u8(out, bn.has_cpt(v) ? 1 : 0);
    if (bn.has_cpt(v)) {
      const Factor& f = bn.cpt(v);
      put_vec_i32(out, f.vars());
      put_vec_i32(out, f.cards());
      put_vec_f64(out, f.values());
    }
  }
}

BayesianNetwork decode_bn(Cursor& c) {
  BayesianNetwork bn;
  std::uint32_t n = c.u32();
  for (std::uint32_t v = 0; v < n; ++v) {
    std::string name = c.str();
    std::uint32_t card = c.u32();
    if (card < 1 || card > 1u << 20) c.fail("implausible cardinality");
    bn.add_variable(std::move(name), static_cast<int>(card));
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    std::vector<int> parents = c.vec_i32();
    for (int p : parents)
      if (p < 0 || p >= static_cast<int>(n)) c.fail("parent out of range");
    if (c.u8() == 0) continue;
    std::vector<int> vars = c.vec_i32();
    std::vector<int> cards = c.vec_i32();
    std::vector<double> values = c.vec_f64();
    for (int fv : vars)
      if (fv < 0 || fv >= static_cast<int>(n))
        c.fail("factor scope out of range");
    Factor f(std::move(vars), std::move(cards));
    if (f.size() != values.size()) c.fail("factor value count mismatch");
    std::copy(values.begin(), values.end(), f.values().begin());
    bn.set_cpt(static_cast<VarId>(v), std::move(parents), std::move(f));
  }
  return bn;
}

void encode_root(std::string& out, const LidagRoot& r) {
  put_i32(out, r.var);
  put_u8(out, static_cast<std::uint8_t>(r.kind));
  put_i32(out, r.node);
  put_i32(out, r.group);
  put_i32(out, r.input_index);
}

LidagRoot decode_root(Cursor& c) {
  LidagRoot r;
  r.var = c.i32();
  std::uint8_t kind = c.u8();
  if (kind > static_cast<std::uint8_t>(RootKind::GroupSource))
    c.fail("unknown root kind");
  r.kind = static_cast<RootKind>(kind);
  r.node = c.i32();
  r.group = c.i32();
  r.input_index = c.i32();
  return r;
}

void encode_lidag(std::string& out, const LidagBn& lb) {
  encode_bn(out, lb.bn);
  put_vec_i32(out, lb.var_of_node);
  put_u32(out, static_cast<std::uint32_t>(lb.roots.size()));
  for (const LidagRoot& r : lb.roots) encode_root(out, r);
  put_u32(out, static_cast<std::uint32_t>(lb.grouped_inputs.size()));
  for (const LidagRoot& r : lb.grouped_inputs) encode_root(out, r);
  put_vec_i32(out, lb.defined_nodes);
  put_u32(out, static_cast<std::uint32_t>(lb.boundary_links.size()));
  for (const auto& [child, parent] : lb.boundary_links) {
    put_i32(out, child);
    put_i32(out, parent);
  }
  put_i32(out, lb.num_aux);
}

LidagBn decode_lidag(Cursor& c) {
  LidagBn lb;
  lb.bn = decode_bn(c);
  std::vector<int> von = c.vec_i32();
  lb.var_of_node.assign(von.begin(), von.end());
  std::uint32_t nr = c.u32();
  lb.roots.reserve(nr);
  for (std::uint32_t i = 0; i < nr; ++i) lb.roots.push_back(decode_root(c));
  std::uint32_t ng = c.u32();
  lb.grouped_inputs.reserve(ng);
  for (std::uint32_t i = 0; i < ng; ++i)
    lb.grouped_inputs.push_back(decode_root(c));
  std::vector<int> dn = c.vec_i32();
  lb.defined_nodes.assign(dn.begin(), dn.end());
  std::uint32_t nl = c.u32();
  lb.boundary_links.reserve(nl);
  for (std::uint32_t i = 0; i < nl; ++i) {
    NodeId child = c.i32();
    NodeId parent = c.i32();
    lb.boundary_links.emplace_back(child, parent);
  }
  lb.num_aux = c.i32();
  return lb;
}

// --- triangulation -----------------------------------------------------

void encode_triangulation(std::string& out, const Triangulation& t) {
  put_u32(out, static_cast<std::uint32_t>(t.graph.num_vertices()));
  const auto edges = t.graph.edges();
  put_u32(out, static_cast<std::uint32_t>(edges.size()));
  for (const auto& [a, b] : edges) {
    put_i32(out, a);
    put_i32(out, b);
  }
  put_u32(out, static_cast<std::uint32_t>(t.fill_edges.size()));
  for (const auto& [a, b] : t.fill_edges) {
    put_i32(out, a);
    put_i32(out, b);
  }
  put_vec_i32(out, t.elimination_order);
  put_u32(out, static_cast<std::uint32_t>(t.cliques.size()));
  for (const std::vector<int>& cl : t.cliques) put_vec_i32(out, cl);
}

Triangulation decode_triangulation(Cursor& c) {
  Triangulation t;
  int n = static_cast<int>(c.u32());
  t.graph = UndirectedGraph(n);
  std::uint32_t ne = c.u32();
  for (std::uint32_t i = 0; i < ne; ++i) {
    int a = c.i32();
    int b = c.i32();
    if (a < 0 || b < 0 || a >= n || b >= n || a == b)
      c.fail("graph edge out of range");
    t.graph.add_edge(a, b);
  }
  std::uint32_t nf = c.u32();
  t.fill_edges.reserve(nf);
  for (std::uint32_t i = 0; i < nf; ++i) {
    int a = c.i32();
    int b = c.i32();
    t.fill_edges.emplace_back(a, b);
  }
  t.elimination_order = c.vec_i32();
  std::uint32_t nc = c.u32();
  t.cliques.reserve(nc);
  for (std::uint32_t i = 0; i < nc; ++i) {
    t.cliques.push_back(c.vec_i32());
    for (int v : t.cliques.back())
      if (v < 0 || v >= n) c.fail("clique member out of range");
  }
  return t;
}

// --- propagation schedule ----------------------------------------------

void encode_scope_map(std::string& out, const ScopeMap& m) {
  put_u64(out, m.size);
  put_u64(out, m.run);
  put_u8(out, m.unique_offsets ? 1 : 0);
  put_vec_i32(out, m.cards);
  put_vec_u64(out, m.strides);
}

ScopeMap decode_scope_map(Cursor& c) {
  ScopeMap m;
  m.size = static_cast<std::size_t>(c.u64());
  m.run = static_cast<std::size_t>(c.u64());
  m.unique_offsets = c.u8() != 0;
  m.cards = c.vec_i32();
  m.strides = c.vec_u64();
  if (m.strides.size() != m.cards.size())
    c.fail("scope map axis count mismatch");
  return m;
}

void encode_schedule(std::string& out, const PropagationSchedule& s) {
  put_u32(out, static_cast<std::uint32_t>(s.edges.size()));
  for (const MessagePlan& p : s.edges) {
    put_i32(out, p.a);
    put_i32(out, p.b);
    encode_scope_map(out, p.from_a);
    encode_scope_map(out, p.from_b);
    // Workspace contents are transient; only the separator size matters.
    put_u64(out, p.ratio.size());
  }
  put_u32(out, static_cast<std::uint32_t>(s.loads.size()));
  for (const std::vector<CliqueLoad>& clique : s.loads) {
    put_u32(out, static_cast<std::uint32_t>(clique.size()));
    for (const CliqueLoad& l : clique) {
      put_i32(out, l.var);
      put_u64(out, l.cpt_size);
      encode_scope_map(out, l.map);
    }
  }
  put_u32(out, static_cast<std::uint32_t>(s.units.size()));
  for (const SubtreeUnit& u : s.units) {
    put_i32(out, u.top);
    put_i32(out, u.root);
    put_i32(out, u.edge);
    put_vec_i32(out, u.preorder);
  }
  put_u32(out, static_cast<std::uint32_t>(s.root_units.size()));
  for (const std::vector<int>& ru : s.root_units) put_vec_i32(out, ru);
}

PropagationSchedule decode_schedule(Cursor& c) {
  PropagationSchedule s;
  std::uint32_t ne = c.u32();
  s.edges.reserve(ne);
  for (std::uint32_t i = 0; i < ne; ++i) {
    MessagePlan p;
    p.a = c.i32();
    p.b = c.i32();
    p.from_a = decode_scope_map(c);
    p.from_b = decode_scope_map(c);
    std::uint64_t ratio_size = c.u64();
    if (ratio_size > (1ull << 32)) c.fail("implausible separator size");
    p.ratio.assign(static_cast<std::size_t>(ratio_size), 0.0);
    s.edges.push_back(std::move(p));
  }
  std::uint32_t nc = c.u32();
  s.loads.resize(nc);
  for (std::uint32_t i = 0; i < nc; ++i) {
    std::uint32_t nl = c.u32();
    s.loads[i].reserve(nl);
    for (std::uint32_t j = 0; j < nl; ++j) {
      CliqueLoad l;
      l.var = c.i32();
      l.cpt_size = static_cast<std::size_t>(c.u64());
      l.map = decode_scope_map(c);
      s.loads[i].push_back(std::move(l));
    }
  }
  std::uint32_t nu = c.u32();
  s.units.reserve(nu);
  for (std::uint32_t i = 0; i < nu; ++i) {
    SubtreeUnit u;
    u.top = c.i32();
    u.root = c.i32();
    u.edge = c.i32();
    u.preorder = c.vec_i32();
    s.units.push_back(std::move(u));
  }
  std::uint32_t nr = c.u32();
  s.root_units.reserve(nr);
  for (std::uint32_t i = 0; i < nr; ++i) s.root_units.push_back(c.vec_i32());
  return s;
}

// --- model (inner netlist + options + stats) ---------------------------

void encode_model(std::string& out, const CompiledModelView& view) {
  encode_netlist(out, view.inner->netlist);
  put_vec_i32(out, view.inner->map);
  put_u64(out, view.input_perm.size());
  for (int p : view.input_perm) put_i32(out, p);
  put_i32(out, view.num_input_groups);

  const EstimatorOptions& o = *view.options;
  put_i32(out, o.lidag.max_fanin);
  put_i32(out, o.lidag.max_lut_fanin);
  put_u8(out, o.lidag.model_input_groups ? 1 : 0);
  put_u8(out, o.lidag.boundary_chain ? 1 : 0);
  put_u8(out, static_cast<std::uint8_t>(o.heuristic));
  put_u8(out, static_cast<std::uint8_t>(o.segmentation));
  put_f64(out, o.max_segment_states);
  put_i32(out, o.segment_nodes);
  put_i32(out, o.single_bn_nodes);
  put_i32(out, o.segment_overlap);

  const CompileStats& s = *view.stats;
  put_f64(out, s.compile_seconds);
  put_f64(out, s.schedule_build_seconds);
  put_i32(out, s.num_segments);
  put_f64(out, s.total_state_space);
  put_u64(out, s.max_clique_vars);
  put_i32(out, s.total_bn_variables);
  put_u64(out, s.fill_edges);
}

struct DecodedModel {
  LidagEstimator::RestoredModel restored;
  EstimatorOptions options;
};

DecodedModel decode_model(Cursor& c) {
  DecodedModel m;
  m.restored.inner.netlist = decode_netlist(c);
  std::vector<int> map = c.vec_i32();
  m.restored.inner.map.assign(map.begin(), map.end());
  m.restored.input_perm = c.vec_i32();
  m.restored.num_input_groups = c.i32();

  EstimatorOptions& o = m.options;
  o.lidag.max_fanin = c.i32();
  o.lidag.max_lut_fanin = c.i32();
  o.lidag.model_input_groups = c.u8() != 0;
  o.lidag.boundary_chain = c.u8() != 0;
  std::uint8_t heuristic = c.u8();
  if (heuristic > static_cast<std::uint8_t>(EliminationHeuristic::MinDegree))
    c.fail("unknown elimination heuristic");
  o.heuristic = static_cast<EliminationHeuristic>(heuristic);
  std::uint8_t seg = c.u8();
  if (seg > static_cast<std::uint8_t>(SegmentationStrategy::MinFrontier))
    c.fail("unknown segmentation strategy");
  o.segmentation = static_cast<SegmentationStrategy>(seg);
  o.max_segment_states = c.f64();
  o.segment_nodes = c.i32();
  o.single_bn_nodes = c.i32();
  o.segment_overlap = c.i32();

  CompileStats& s = m.restored.stats;
  s.compile_seconds = c.f64();
  s.schedule_build_seconds = c.f64();
  s.num_segments = c.i32();
  s.total_state_space = c.f64();
  s.max_clique_vars = static_cast<std::size_t>(c.u64());
  s.total_bn_variables = c.i32();
  s.fill_edges = c.u64();
  return m;
}

void encode_segment(std::string& out, const CompiledSegmentView& seg) {
  put_i32(out, seg.begin);
  put_i32(out, seg.end);
  encode_lidag(out, *seg.lidag);
  encode_triangulation(out, *seg.engine.triangulation);
  encode_schedule(out, *seg.engine.schedule);
  put_vec_i32(out, std::vector<int>(seg.engine.cpt_home.begin(),
                                    seg.engine.cpt_home.end()));
}

LidagEstimator::RestoredSegment decode_segment(Cursor& c) {
  LidagEstimator::RestoredSegment seg;
  seg.begin = c.i32();
  seg.end = c.i32();
  seg.lidag = std::make_unique<LidagBn>(decode_lidag(c));
  seg.engine.tri = decode_triangulation(c);
  seg.engine.schedule = decode_schedule(c);
  seg.engine.cpt_home = c.vec_i32();
  c.expect_end();
  return seg;
}

// --- header ------------------------------------------------------------

struct SectionEntry {
  std::string name;
  std::size_t offset = 0;
  std::size_t size = 0;
  std::uint64_t checksum = 0;
};

std::string build_header(const CompiledModelView& view,
                         const std::vector<SectionEntry>& sections) {
  const obs::ReportProvenance prov = obs::default_provenance();
  std::string h = "{";
  h += "\"schema_version\":" + std::to_string(kArtifactSchemaVersion) + ",";
  h += "\"circuit\":";
  obs::json_append_string(h, view.netlist->name());
  h += ",\"provenance\":{\"git_describe\":";
  obs::json_append_string(h, prov.git_describe);
  h += ",\"build_type\":";
  obs::json_append_string(h, prov.build_type);
  h += ",\"timestamp\":";
  obs::json_append_string(h, prov.timestamp_iso8601);
  h += ",\"hostname\":";
  obs::json_append_string(h, prov.hostname);
  h += "},\"nodes\":" + std::to_string(view.netlist->num_nodes());
  h += ",\"inputs\":" + std::to_string(view.netlist->num_inputs());
  h += ",\"segments\":" + std::to_string(view.segments.size());
  h += ",\"compile_seconds\":" +
       obs::json_number(view.stats->compile_seconds);
  h += ",\"sections\":[";
  for (std::size_t i = 0; i < sections.size(); ++i) {
    if (i) h += ",";
    h += "{\"name\":";
    obs::json_append_string(h, sections[i].name);
    h += ",\"offset\":" + std::to_string(sections[i].offset);
    h += ",\"size\":" + std::to_string(sections[i].size);
    h += ",\"fnv1a\":\"" + hex64(sections[i].checksum) + "\"}";
  }
  h += "]}";
  return h;
}

// Parses and sanity-checks the header; returns (header json, payload).
std::pair<obs::JsonValue, std::string_view> parse_container(
    std::string_view bytes) {
  if (bytes.size() < 8) throw ArtifactError("artifact truncated (no header)");
  if (std::memcmp(bytes.data(), kArtifactMagic, 4) != 0)
    throw ArtifactError("not a .bnsc artifact (bad magic)");
  std::uint32_t header_len = 0;
  for (int i = 0; i < 4; ++i)
    header_len |= static_cast<std::uint32_t>(
                      static_cast<std::uint8_t>(bytes[4 + i]))
                  << (8 * i);
  if (8 + static_cast<std::size_t>(header_len) > bytes.size())
    throw ArtifactError("artifact truncated (header overruns file)");
  std::optional<obs::JsonValue> header =
      obs::json_parse(bytes.substr(8, header_len));
  if (!header || !header->is_object())
    throw ArtifactError("artifact header is not valid JSON");
  const double version = header->number_or("schema_version", -1);
  if (version != kArtifactSchemaVersion)
    throw ArtifactError(
        "unsupported artifact schema version " +
        std::to_string(static_cast<long long>(version)) + " (this build reads " +
        std::to_string(kArtifactSchemaVersion) + "); recompile the artifact");
  return {*header, bytes.substr(8 + header_len)};
}

ArtifactInfo info_from_header(const obs::JsonValue& header) {
  ArtifactInfo info;
  info.schema_version =
      static_cast<int>(header.number_or("schema_version", 0));
  info.circuit = header.string_or("circuit", "");
  if (const obs::JsonValue* prov = header.find("provenance")) {
    info.git_describe = prov->string_or("git_describe", "");
    info.build_type = prov->string_or("build_type", "");
    info.timestamp_iso8601 = prov->string_or("timestamp", "");
    info.hostname = prov->string_or("hostname", "");
  }
  info.num_nodes = static_cast<int>(header.number_or("nodes", 0));
  info.num_inputs = static_cast<int>(header.number_or("inputs", 0));
  info.num_segments = static_cast<int>(header.number_or("segments", 0));
  info.compile_seconds = header.number_or("compile_seconds", 0.0);
  return info;
}

// Section table from the header, with every entry checksum-verified
// against the payload. The checksum pass makes the later decode
// trustworthy: any flipped byte in a table fails here, loudly.
std::vector<SectionEntry> verify_sections(const obs::JsonValue& header,
                                          std::string_view payload) {
  const obs::JsonValue* list = header.find("sections");
  if (!list || !list->is_array())
    throw ArtifactError("artifact header has no section table");
  std::vector<SectionEntry> sections;
  for (const obs::JsonValue& e : list->as_array()) {
    SectionEntry s;
    s.name = e.string_or("name", "");
    s.offset = static_cast<std::size_t>(e.number_or("offset", -1));
    s.size = static_cast<std::size_t>(e.number_or("size", -1));
    if (s.name.empty() || e.number_or("offset", -1) < 0 ||
        e.number_or("size", -1) < 0)
      throw ArtifactError("artifact section table entry malformed");
    if (s.offset > payload.size() || s.size > payload.size() - s.offset)
      throw ArtifactError("artifact section '" + s.name +
                          "' overruns the file (truncated?)");
    const std::string crc = e.string_or("fnv1a", "");
    const std::uint64_t want = std::strtoull(crc.c_str(), nullptr, 16);
    const std::uint64_t got = fnv1a(payload.substr(s.offset, s.size));
    if (crc.size() != 16 || want != got)
      throw ArtifactError("artifact section '" + s.name +
                          "' checksum mismatch (corrupted file)");
    s.checksum = got;
    sections.push_back(std::move(s));
  }
  // Sections are written back to back; anything past the last one is
  // not ours and means the file was appended to or mis-assembled.
  std::size_t end = 0;
  for (const SectionEntry& s : sections) end = std::max(end, s.offset + s.size);
  if (end != payload.size())
    throw ArtifactError("artifact has trailing bytes past the last section");
  return sections;
}

Cursor section_cursor(const std::vector<SectionEntry>& sections,
                      std::string_view payload, const std::string& name) {
  for (const SectionEntry& s : sections)
    if (s.name == name)
      return Cursor(payload.substr(s.offset, s.size), name);
  throw ArtifactError("artifact is missing section '" + name + "'");
}

} // namespace

std::string serialize_artifact(const CompiledModelView& view) {
  if (!view.netlist || !view.inner || !view.options || !view.stats)
    throw ArtifactError("serialize_artifact: incomplete model view");
  for (const CompiledSegmentView& seg : view.segments) {
    if (!seg.lidag || !seg.engine.triangulation)
      throw ArtifactError("serialize_artifact: incomplete segment view");
    if (!seg.engine.schedule)
      throw ArtifactError(
          "serialize_artifact: segment engine has no compiled propagation "
          "schedule (artifacts require the scheduled path)");
    if (seg.engine.cpt_home.size() !=
        static_cast<std::size_t>(seg.lidag->bn.num_variables()))
      throw ArtifactError("serialize_artifact: cpt_home size mismatch");
  }

  std::vector<SectionEntry> sections;
  std::string payload;
  auto add_section = [&](std::string name, const std::string& bytes) {
    SectionEntry s;
    s.name = std::move(name);
    s.offset = payload.size();
    s.size = bytes.size();
    s.checksum = fnv1a(bytes);
    sections.push_back(std::move(s));
    payload += bytes;
  };

  {
    std::string bytes;
    encode_netlist(bytes, *view.netlist);
    add_section("netlist", bytes);
  }
  {
    std::string bytes;
    encode_model(bytes, view);
    add_section("model", bytes);
  }
  for (std::size_t i = 0; i < view.segments.size(); ++i) {
    std::string bytes;
    encode_segment(bytes, view.segments[i]);
    add_section("seg" + std::to_string(i), bytes);
  }

  const std::string header = build_header(view, sections);
  std::string out;
  out.reserve(8 + header.size() + payload.size());
  out.append(kArtifactMagic, 4);
  put_u32(out, static_cast<std::uint32_t>(header.size()));
  out += header;
  out += payload;
  return out;
}

void save_artifact(const std::string& path, const CompiledModelView& view) {
  const std::string bytes = serialize_artifact(view);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) throw ArtifactError("cannot open '" + tmp + "' for writing");
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!f) throw ArtifactError("short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw ArtifactError("cannot rename '" + tmp + "' to '" + path + "'");
  }
}

LoadedModel load_artifact_bytes(std::string_view bytes,
                                const ArtifactLoadOptions& opts) {
  Timer timer;
  const auto [header, payload] = parse_container(bytes);
  const std::vector<SectionEntry> sections = verify_sections(header, payload);

  LoadedModel out;
  out.info = info_from_header(header);

  Cursor nl_cursor = section_cursor(sections, payload, "netlist");
  out.netlist = std::make_unique<Netlist>(decode_netlist(nl_cursor));
  nl_cursor.expect_end();

  Cursor model_cursor = section_cursor(sections, payload, "model");
  DecodedModel model = decode_model(model_cursor);
  model_cursor.expect_end();

  const int num_segments = out.info.num_segments;
  if (num_segments <= 0)
    throw ArtifactError("artifact header declares no segments");
  model.restored.segments.reserve(static_cast<std::size_t>(num_segments));
  for (int i = 0; i < num_segments; ++i) {
    Cursor seg_cursor =
        section_cursor(sections, payload, "seg" + std::to_string(i));
    model.restored.segments.push_back(decode_segment(seg_cursor));
  }

  // Runtime knobs ride in from the caller; the compile-time options are
  // the recorded ones (quantification must match the compiled structure).
  model.options.num_threads = opts.num_threads;
  model.options.trace = opts.trace;
  model.options.verify = VerifyLevel::Off;
  try {
    out.estimator = std::make_unique<LidagEstimator>(
        *out.netlist, std::move(model.restored), model.options);
  } catch (const std::exception& e) {
    throw ArtifactError(std::string("artifact restore failed: ") + e.what());
  }

  if (opts.validate) {
    // The SC001-SC009 static analyzer proves every restored schedule
    // race-free, in-bounds and reload-sound before the first query.
    DiagnosticReport report;
    const CompiledModelView view = out.estimator->compiled_view();
    for (const CompiledSegmentView& seg : view.segments)
      lint_schedule(seg.engine, report);
    if (report.has_errors())
      throw ArtifactError("artifact failed schedule validation:\n" +
                          report.render_text());
  }
  out.load_seconds = timer.seconds();
  return out;
}

LoadedModel load_artifact(const std::string& path,
                          const ArtifactLoadOptions& opts) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw ArtifactError("cannot open artifact '" + path + "'");
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  if (!f.good() && !f.eof())
    throw ArtifactError("error reading artifact '" + path + "'");
  return load_artifact_bytes(bytes, opts);
}

ArtifactInfo read_artifact_info(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw ArtifactError("cannot open artifact '" + path + "'");
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  return info_from_header(parse_container(bytes).first);
}

} // namespace bns
