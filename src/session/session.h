// bns::Session — the one front door to a compiled switching-activity
// model. Every consumer (the CLI tools, the bns_serve daemon, the
// benches) opens a Session from a circuit or from a .bnsc artifact and
// asks it to estimate / sweep / answer conditionals; none of them
// constructs a LidagEstimator directly. That keeps the compile-vs-load
// decision, the circuit-argument resolution (.bench / .blif / built-in
// generator) and the replica-cloning policy in exactly one place.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "artifact/artifact.h"
#include "core/sweep.h"
#include "lidag/estimator.h"
#include "netlist/netlist.h"
#include "sim/input_model.h"

namespace bns {

// The linear signal-probability sweep shared by bns_sweep, the daemon's
// `sweep` op and the tests: every input at (0.5, rho), with input
// `vary_input`'s p stepped linearly from p_from to p_to.
struct LinearSweepSpec {
  int scenarios = 8;
  int vary_input = 0;
  double p_from = 0.1;
  double p_to = 0.9;
  double rho = 0.0;
};

std::vector<InputModel> make_linear_scenarios(const LinearSweepSpec& spec,
                                              int num_inputs);

// The varied input's signal probability in scenario `s` of `spec` —
// the exact double make_linear_scenarios installs. Factored out so the
// sweep coordinator (src/coord/) can compute chunk boundaries without
// knowing the model's input count, with bitwise-identical values: a
// %.17g round-trip of this double over the wire reconstructs the same
// scenario the in-process sweep runs. scenarios == 1 answers p_from
// (no 0/0 step).
double linear_scenario_p(const LinearSweepSpec& spec, int s);

// Resolves a circuit argument the way all tools do: *.bench and *.blif
// are read from disk, anything else names a built-in benchmark
// generator. Throws (std::runtime_error / std::invalid_argument) on
// unreadable files or unknown names.
Netlist load_circuit(const std::string& circuit);

struct SessionOptions {
  // Compile knobs for open(); runtime knobs (num_threads, trace,
  // verify) for both open() and open_artifact() — an artifact's
  // compile-time options are recorded in the file and win.
  EstimatorOptions estimator;
  // open_artifact(): run the SC001-SC009 analyzer over every restored
  // schedule before first use (ArtifactLoadOptions::validate).
  bool validate_artifact = true;
};

class Session {
 public:
  // Compile from a circuit argument / an already-loaded netlist. The
  // optional `structure` model fixes the input-group layout of the
  // compiled BNs (statistics are per-estimate); by default all inputs
  // are independent.
  static Session open(const std::string& circuit, SessionOptions opts = {});
  static Session open(Netlist nl, SessionOptions opts = {});
  static Session open(Netlist nl, const InputModel& structure,
                      SessionOptions opts = {});

  // Restore from a .bnsc artifact (validated; throws ArtifactError).
  static Session open_artifact(const std::string& path,
                               SessionOptions opts = {});

  // --- queries ---------------------------------------------------------
  SwitchingEstimate estimate(const InputModel& model);
  SweepResult sweep(std::span<const InputModel> scenarios, int replicas = 1);
  SweepResult sweep(const LinearSweepSpec& spec, int replicas = 1);
  std::optional<std::array<double, 4>> conditional(NodeId target, NodeId given,
                                                   Trans state,
                                                   const InputModel& model);

  // Serializes the compiled model to a .bnsc artifact.
  void save(const std::string& path) const;

  // Static checkers over the compiled model (LidagEstimator::verify).
  DiagnosticReport verify(VerifyLevel level) const;

  // --- introspection ---------------------------------------------------
  const Netlist& netlist() const { return *nl_; }
  const LidagEstimator& estimator() const { return *est_; }
  LidagEstimator& estimator() { return *est_; }
  const CompileStats& compile_stats() const { return est_->compile_stats(); }
  // Where this session came from: the artifact header when restored,
  // nullptr when compiled in-process.
  const ArtifactInfo* artifact_info() const {
    return info_ ? &*info_ : nullptr;
  }
  // Artifact decode + restore + validate seconds; 0 for open().
  double load_seconds() const { return load_seconds_; }

 private:
  Session() = default;

  // An equivalent fresh replica: reopen the artifact, or recompile the
  // netlist with the construction-time structure model. Artifact clones
  // borrow their own decoded netlist, parked in `keep_alive` so it
  // outlives the replica.
  std::unique_ptr<LidagEstimator> clone_estimator(
      std::vector<std::unique_ptr<Netlist>>& keep_alive) const;

  std::unique_ptr<Netlist> nl_; // owned; est_ borrows it
  std::unique_ptr<LidagEstimator> est_;
  InputModel structure_;        // compile-time input-group layout
  SessionOptions opts_;
  std::string artifact_path_;   // non-empty iff opened from an artifact
  std::optional<ArtifactInfo> info_;
  double load_seconds_ = 0.0;
};

} // namespace bns
