#include "session/session.h"

#include <utility>

#include "gen/benchmarks.h"
#include "netlist/bench_io.h"
#include "netlist/blif_io.h"
#include "obs/trace.h"

namespace bns {
namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

} // namespace

double linear_scenario_p(const LinearSweepSpec& spec, int s) {
  const double t = spec.scenarios > 1
                       ? static_cast<double>(s) /
                             static_cast<double>(spec.scenarios - 1)
                       : 0.0;
  return spec.p_from + t * (spec.p_to - spec.p_from);
}

std::vector<InputModel> make_linear_scenarios(const LinearSweepSpec& spec,
                                              int num_inputs) {
  std::vector<InputModel> models;
  models.reserve(static_cast<std::size_t>(spec.scenarios));
  for (int s = 0; s < spec.scenarios; ++s) {
    std::vector<InputSpec> specs(static_cast<std::size_t>(num_inputs),
                                 InputSpec{0.5, spec.rho, -1, 0.0});
    specs[static_cast<std::size_t>(spec.vary_input)].p =
        linear_scenario_p(spec, s);
    models.push_back(InputModel::custom(std::move(specs)));
  }
  return models;
}

Netlist load_circuit(const std::string& circuit) {
  if (ends_with(circuit, ".bench")) return read_bench_file(circuit);
  if (ends_with(circuit, ".blif")) return read_blif_file(circuit);
  return make_benchmark(circuit);
}

Session Session::open(const std::string& circuit, SessionOptions opts) {
  return open(load_circuit(circuit), std::move(opts));
}

Session Session::open(Netlist nl, SessionOptions opts) {
  const int n = nl.num_inputs();
  return open(std::move(nl), InputModel::uniform(n), std::move(opts));
}

Session Session::open(Netlist nl, const InputModel& structure,
                      SessionOptions opts) {
  Session s;
  s.nl_ = std::make_unique<Netlist>(std::move(nl));
  s.structure_ = structure;
  s.opts_ = std::move(opts);
  s.est_ = std::make_unique<LidagEstimator>(*s.nl_, structure,
                                            s.opts_.estimator);
  return s;
}

Session Session::open_artifact(const std::string& path, SessionOptions opts) {
  ArtifactLoadOptions lopts;
  lopts.validate = opts.validate_artifact;
  lopts.num_threads = opts.estimator.num_threads;
  lopts.trace = opts.estimator.trace;
  LoadedModel loaded = load_artifact(path, lopts);

  Session s;
  s.nl_ = std::move(loaded.netlist);
  s.est_ = std::move(loaded.estimator);
  s.structure_ = InputModel::uniform(s.nl_->num_inputs());
  s.opts_ = std::move(opts);
  s.artifact_path_ = path;
  s.info_ = std::move(loaded.info);
  s.load_seconds_ = loaded.load_seconds;
  return s;
}

SwitchingEstimate Session::estimate(const InputModel& model) {
  // Query spans inherit the caller's TraceContext, so a daemon request's
  // trace id lands on them (and on the engine spans beneath).
  obs::Span span(opts_.estimator.trace, "session.estimate");
  return est_->estimate(model);
}

std::unique_ptr<LidagEstimator> Session::clone_estimator(
    std::vector<std::unique_ptr<Netlist>>& keep_alive) const {
  if (!artifact_path_.empty()) {
    ArtifactLoadOptions lopts;
    // The first load already validated this file; replicas skip the
    // re-analysis and just decode.
    lopts.validate = false;
    lopts.num_threads = opts_.estimator.num_threads;
    lopts.trace = opts_.estimator.trace;
    LoadedModel loaded = load_artifact(artifact_path_, lopts);
    // The restored estimator borrows its own decoded netlist; park it
    // with the caller so it outlives the estimator's use.
    keep_alive.push_back(std::move(loaded.netlist));
    return std::move(loaded.estimator);
  }
  return std::make_unique<LidagEstimator>(*nl_, structure_, opts_.estimator);
}

SweepResult Session::sweep(std::span<const InputModel> scenarios,
                           int replicas) {
  obs::Span span(opts_.estimator.trace, "session.sweep");
  std::vector<std::unique_ptr<Netlist>> replica_netlists;
  return run_sweep(
      *est_, [&] { return clone_estimator(replica_netlists); }, scenarios,
      replicas);
}

SweepResult Session::sweep(const LinearSweepSpec& spec, int replicas) {
  const std::vector<InputModel> models =
      make_linear_scenarios(spec, nl_->num_inputs());
  return sweep(models, replicas);
}

std::optional<std::array<double, 4>> Session::conditional(
    NodeId target, NodeId given, Trans state, const InputModel& model) {
  obs::Span span(opts_.estimator.trace, "session.conditional");
  return est_->conditional_dist(target, given, state, model);
}

void Session::save(const std::string& path) const {
  save_artifact(path, est_->compiled_view());
}

DiagnosticReport Session::verify(VerifyLevel level) const {
  return est_->verify(level);
}

} // namespace bns
