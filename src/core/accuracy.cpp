#include "core/accuracy.h"

#include <algorithm>
#include <cmath>

#include "sim/simulator.h"
#include "util/assert.h"

namespace bns {

namespace {

obs::ReportAccuracy audit_impl(const Netlist& nl, const InputModel& model,
                               const SwitchingEstimate& est,
                               const LidagEstimator* estimator,
                               const AccuracyAuditOptions& opts) {
  const std::vector<double> estimated = est.activities();
  BNS_EXPECTS(static_cast<int>(estimated.size()) == nl.num_nodes());

  const SimResult sim =
      SwitchingSimulator(nl).run(model, opts.sim_pairs, opts.seed);
  const std::vector<double> simulated = sim.activities();

  obs::ReportAccuracy acc;
  acc.sim_pairs = sim.num_samples();
  acc.seed = opts.seed;
  acc.lines = nl.num_nodes();

  obs::Histogram hist;
  hist.init(obs::Hist::LineAbsError, obs::hist_edges(obs::Hist::LineAbsError));

  std::vector<std::pair<double, NodeId>> errors;
  errors.reserve(estimated.size());
  double sum = 0.0;
  double sum_sq = 0.0;
  for (NodeId id = 0; id < nl.num_nodes(); ++id) {
    const double e =
        std::abs(estimated[static_cast<std::size_t>(id)] -
                 simulated[static_cast<std::size_t>(id)]);
    errors.emplace_back(e, id);
    sum += e;
    sum_sq += e * e;
    hist.add(e);
    if (opts.trace != nullptr) opts.trace->hist(obs::Hist::LineAbsError, e);
    acc.max_abs_error = std::max(acc.max_abs_error, e);
  }
  const double n = static_cast<double>(acc.lines);
  acc.mean_abs_error = sum / n;
  acc.rms_error = std::sqrt(sum_sq / n);
  acc.error_hist = obs::ReportHistogram::from_snapshot(hist.snapshot());

  const int worst =
      std::min(opts.worst_lines, static_cast<int>(errors.size()));
  if (worst > 0) {
    std::partial_sort(errors.begin(), errors.begin() + worst, errors.end(),
                      [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    acc.worst.reserve(static_cast<std::size_t>(worst));
    for (int i = 0; i < worst; ++i) {
      const NodeId id = errors[static_cast<std::size_t>(i)].second;
      obs::ReportWorstLine wl;
      wl.line = nl.node(id).name;
      wl.estimated = estimated[static_cast<std::size_t>(id)];
      wl.simulated = simulated[static_cast<std::size_t>(id)];
      wl.abs_error = errors[static_cast<std::size_t>(i)].first;
      acc.worst.push_back(std::move(wl));
    }
  }

  if (estimator != nullptr) {
    // Attribute each line's error to its owning segment. Segment -1
    // (lines outside every segment, e.g. on an empty circuit) is only
    // emitted when it actually collects lines.
    std::vector<obs::ReportSegmentError> buckets(
        static_cast<std::size_t>(estimator->num_segments()) + 1);
    for (std::size_t k = 0; k < buckets.size(); ++k) {
      buckets[k].segment = static_cast<int>(k) - 1;
    }
    for (const auto& [e, id] : errors) {
      auto& b = buckets[static_cast<std::size_t>(
          estimator->segment_of_line(id) + 1)];
      ++b.lines;
      b.mean_abs_error += e; // running sum; divided below
      b.max_abs_error = std::max(b.max_abs_error, e);
    }
    for (auto& b : buckets) {
      if (b.lines == 0) continue;
      b.mean_abs_error /= static_cast<double>(b.lines);
      acc.per_segment.push_back(b);
    }
  }
  return acc;
}

} // namespace

obs::ReportAccuracy audit_accuracy(const Netlist& nl, const InputModel& model,
                                   const SwitchingEstimate& est,
                                   const AccuracyAuditOptions& opts) {
  return audit_impl(nl, model, est, nullptr, opts);
}

obs::ReportAccuracy audit_accuracy(const Netlist& nl, const InputModel& model,
                                   const SwitchingEstimate& est,
                                   const LidagEstimator& estimator,
                                   const AccuracyAuditOptions& opts) {
  return audit_impl(nl, model, est, &estimator, opts);
}

} // namespace bns
