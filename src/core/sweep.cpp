#include "core/sweep.h"

#include <algorithm>
#include <memory>
#include <thread>

#include "util/assert.h"
#include "util/timer.h"

namespace bns {
namespace {

// The sweep proper, over an already-compiled replica set: contiguous
// chunks keep each replica's scenario sequence in order, so its
// incremental diff always compares against the scenario the user listed
// just before — the locality the sweep is designed around.
SweepResult sweep_over(std::span<LidagEstimator* const> ests,
                       std::span<const InputModel> scenarios) {
  SweepResult res;
  res.replicas_used = static_cast<int>(ests.size());
  res.estimates.resize(scenarios.size());
  std::vector<BatchStats> stats(ests.size());

  const std::size_t n = scenarios.size();
  const std::size_t chunk = (n + ests.size() - 1) / ests.size();
  auto sweep_chunk = [&](std::size_t r) {
    const std::size_t lo = r * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    if (lo >= hi) return;
    stats[r] = ests[r]->estimate_batch_into(
        scenarios.subspan(lo, hi - lo),
        std::span<SwitchingEstimate>(res.estimates).subspan(lo, hi - lo));
  };

  Timer sweep_timer;
  if (ests.size() == 1) {
    sweep_chunk(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(ests.size());
    for (std::size_t r = 0; r < ests.size(); ++r) {
      workers.emplace_back(sweep_chunk, r);
    }
    for (std::thread& w : workers) w.join();
  }
  res.wall_seconds = sweep_timer.seconds();

  for (const BatchStats& bs : stats) {
    res.stats.scenarios += bs.scenarios;
    res.stats.segments_reloaded += bs.segments_reloaded;
    res.stats.segments_skipped += bs.segments_skipped;
    res.stats.cliques_restored += bs.cliques_restored;
    res.stats.messages_skipped += bs.messages_skipped;
    res.stats.total_seconds += bs.total_seconds;
  }
  return res;
}

} // namespace

SweepResult run_sweep(const Netlist& nl, std::span<const InputModel> scenarios,
                      const SweepOptions& opts) {
  BNS_EXPECTS(opts.replicas >= 1);
  if (scenarios.empty()) return {};

  const int replicas = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(opts.replicas),
                            scenarios.size()));

  Timer compile_timer;
  std::vector<std::unique_ptr<LidagEstimator>> ests;
  ests.reserve(static_cast<std::size_t>(replicas));
  for (int r = 0; r < replicas; ++r) {
    ests.push_back(std::make_unique<LidagEstimator>(nl, scenarios[0],
                                                    opts.estimator));
  }
  const double compile_seconds = compile_timer.seconds();

  std::vector<LidagEstimator*> ptrs;
  ptrs.reserve(ests.size());
  for (const auto& e : ests) ptrs.push_back(e.get());
  SweepResult res = sweep_over(ptrs, scenarios);
  res.compile_seconds = compile_seconds;
  return res;
}

SweepResult run_sweep(LidagEstimator& first, const EstimatorFactory& make,
                      std::span<const InputModel> scenarios, int replicas) {
  BNS_EXPECTS(replicas >= 1);
  if (scenarios.empty()) return {};

  const int n = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(replicas), scenarios.size()));

  Timer compile_timer;
  std::vector<std::unique_ptr<LidagEstimator>> extra;
  extra.reserve(static_cast<std::size_t>(n - 1));
  for (int r = 1; r < n; ++r) extra.push_back(make());
  const double compile_seconds = compile_timer.seconds();

  std::vector<LidagEstimator*> ptrs;
  ptrs.reserve(static_cast<std::size_t>(n));
  ptrs.push_back(&first);
  for (const auto& e : extra) ptrs.push_back(e.get());
  SweepResult res = sweep_over(ptrs, scenarios);
  res.compile_seconds = compile_seconds;
  return res;
}

} // namespace bns
