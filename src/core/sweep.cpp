#include "core/sweep.h"

#include <algorithm>
#include <memory>
#include <thread>

#include "util/assert.h"
#include "util/timer.h"

namespace bns {

SweepResult run_sweep(const Netlist& nl, std::span<const InputModel> scenarios,
                      const SweepOptions& opts) {
  BNS_EXPECTS(opts.replicas >= 1);
  SweepResult res;
  if (scenarios.empty()) return res;

  const int replicas = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(opts.replicas),
                            scenarios.size()));
  res.replicas_used = replicas;

  Timer compile_timer;
  std::vector<std::unique_ptr<LidagEstimator>> ests;
  ests.reserve(static_cast<std::size_t>(replicas));
  for (int r = 0; r < replicas; ++r) {
    ests.push_back(std::make_unique<LidagEstimator>(nl, scenarios[0],
                                                    opts.estimator));
  }
  res.compile_seconds = compile_timer.seconds();

  res.estimates.resize(scenarios.size());
  std::vector<BatchStats> stats(static_cast<std::size_t>(replicas));

  // Contiguous chunks keep each replica's scenario sequence in order, so
  // its incremental diff always compares against the scenario the user
  // listed just before — the locality the sweep is designed around.
  const std::size_t n = scenarios.size();
  const std::size_t chunk = (n + static_cast<std::size_t>(replicas) - 1) /
                            static_cast<std::size_t>(replicas);
  auto sweep_chunk = [&](int r) {
    const std::size_t lo = static_cast<std::size_t>(r) * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    if (lo >= hi) return;
    stats[static_cast<std::size_t>(r)] = ests[static_cast<std::size_t>(r)]
        ->estimate_batch_into(scenarios.subspan(lo, hi - lo),
                              std::span<SwitchingEstimate>(res.estimates)
                                  .subspan(lo, hi - lo));
  };

  Timer sweep_timer;
  if (replicas == 1) {
    sweep_chunk(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(replicas));
    for (int r = 0; r < replicas; ++r) {
      workers.emplace_back(sweep_chunk, r);
    }
    for (std::thread& w : workers) w.join();
  }
  res.wall_seconds = sweep_timer.seconds();

  for (const BatchStats& bs : stats) {
    res.stats.scenarios += bs.scenarios;
    res.stats.segments_reloaded += bs.segments_reloaded;
    res.stats.segments_skipped += bs.segments_skipped;
    res.stats.cliques_restored += bs.cliques_restored;
    res.stats.messages_skipped += bs.messages_skipped;
    res.stats.total_seconds += bs.total_seconds;
  }
  return res;
}

} // namespace bns
