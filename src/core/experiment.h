// Experiment runner shared by the benchmark harnesses: runs one circuit
// through the BN estimator, the reference estimators, and the simulation
// ground truth, and packages the error/time statistics the paper's
// tables report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "util/stats.h"

namespace bns {

struct MethodResult {
  std::string method; // "bn", "independence", "density", "paircorr", "sim"
  ErrorStats err;     // vs the simulation ground truth
  double seconds = 0.0;
  double extra_seconds = 0.0; // bn: compile time (seconds = update time)
  double avg_activity = 0.0;
};

struct ExperimentConfig {
  std::uint64_t sim_pairs = 1 << 22; // ground-truth sample budget (4M)
  std::uint64_t seed = 20010618;     // DAC 2001 started June 18, 2001
  bool run_independence = true;
  bool run_density = true;
  bool run_correlation = true;
  bool run_local_bdd = false;   // Schneider'96-style local-region method
  bool run_monte_carlo = false; // Burch–Najm statistical simulation
  EstimatorOptions estimator;
};

struct ExperimentResult {
  std::string circuit;
  NetlistStats stats;
  double sim_seconds = 0.0;
  double sim_avg_activity = 0.0;
  int bn_segments = 0;
  double bn_state_space = 0.0;
  std::vector<MethodResult> methods;

  const MethodResult& method(const std::string& name) const;
};

// Runs the full method comparison on one circuit under the given input
// model (default: random equiprobable streams, as in the paper).
ExperimentResult run_experiment(const Netlist& nl,
                                const ExperimentConfig& cfg = {},
                                std::optional<InputModel> model = {});

} // namespace bns
