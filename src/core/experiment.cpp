#include "core/experiment.h"

#include <stdexcept>

#include "baselines/correlation.h"
#include "baselines/independence.h"
#include "baselines/local_bdd.h"
#include "baselines/monte_carlo.h"
#include "baselines/transition_density.h"
#include "util/assert.h"
#include "util/timer.h"

namespace bns {

const MethodResult& ExperimentResult::method(const std::string& name) const {
  for (const MethodResult& m : methods) {
    if (m.method == name) return m;
  }
  throw std::invalid_argument("no such method in result: " + name);
}

ExperimentResult run_experiment(const Netlist& nl, const ExperimentConfig& cfg,
                                std::optional<InputModel> model) {
  ExperimentResult out;
  out.circuit = nl.name();
  out.stats = compute_stats(nl);

  const InputModel m =
      model.has_value() ? *std::move(model) : InputModel::uniform(nl.num_inputs());

  // Ground truth.
  Timer t;
  const SimResult sim = SwitchingSimulator(nl).run(m, cfg.sim_pairs, cfg.seed);
  out.sim_seconds = t.seconds();
  const std::vector<double> ref = sim.activities();
  {
    RunningStats rs;
    for (double a : ref) rs.add(a);
    out.sim_avg_activity = rs.mean();
  }

  auto push = [&](std::string name, const std::vector<double>& act,
                  double seconds, double extra) {
    MethodResult mr;
    mr.method = std::move(name);
    mr.err = compute_error_stats(act, ref);
    mr.seconds = seconds;
    mr.extra_seconds = extra;
    RunningStats rs;
    for (double a : act) rs.add(a);
    mr.avg_activity = rs.mean();
    out.methods.push_back(std::move(mr));
  };

  // LIDAG Bayesian network (the paper's method).
  {
    LidagEstimator est(nl, m, cfg.estimator);
    const SwitchingEstimate sw = est.estimate(m);
    const CompileStats& cs = est.compile_stats();
    out.bn_segments = cs.num_segments;
    out.bn_state_space = cs.total_state_space;
    push("bn", sw.activities(), sw.stats.propagate_seconds,
         cs.compile_seconds);
  }
  if (cfg.run_independence) {
    const IndependenceResult r = estimate_independence(nl, m);
    push("independence", r.activities(), r.seconds, 0.0);
  }
  if (cfg.run_density) {
    const TransitionDensityResult r = estimate_transition_density(nl, m);
    push("density", r.activities(), r.seconds, 0.0);
  }
  if (cfg.run_correlation) {
    const CorrelationResult r = estimate_correlation(nl, m);
    push("paircorr", r.activities(), r.seconds, 0.0);
  }
  if (cfg.run_local_bdd) {
    const LocalBddResult r = estimate_local_bdd(nl, m);
    push("localbdd", r.activities(), r.seconds, 0.0);
  }
  if (cfg.run_monte_carlo) {
    const MonteCarloResult r = estimate_monte_carlo(nl, m);
    push("montecarlo", r.activities(), r.seconds, 0.0);
  }
  return out;
}

} // namespace bns
