// Public facade of the library: one-stop switching-activity analysis of
// a combinational netlist with the LIDAG Bayesian-network method of
// Bhanja & Ranganathan (DAC 2001), plus the reference estimators and
// simulation ground truth used by the paper's evaluation.
//
// Typical use:
//   Netlist nl = read_bench_file("c880.bench");
//   SwitchingAnalyzer an(nl);                   // compile once
//   auto est = an.estimate();                   // default random inputs
//   double a7 = est.activity(nl.find("G7"));
//   auto est2 = an.estimate(InputModel::uniform(nl.num_inputs(), 0.3, 0.5));
#pragma once

#include <memory>
#include <optional>

#include "lidag/estimator.h"
#include "netlist/netlist.h"
#include "sim/input_model.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace bns {

class SwitchingAnalyzer {
 public:
  // Compiles the LIDAG junction trees for `nl` (which must outlive the
  // analyzer). The default input model (equiprobable, temporally
  // independent inputs — the paper's "random input streams") fixes the
  // input-group structure; estimate() may vary the statistics freely.
  explicit SwitchingAnalyzer(const Netlist& nl, EstimatorOptions opts = {},
                             std::optional<InputModel> default_model = {});

  const Netlist& netlist() const { return *nl_; }
  const InputModel& default_model() const { return default_model_; }
  LidagEstimator& estimator() { return *estimator_; }
  const LidagEstimator& estimator() const { return *estimator_; }

  // Switching estimate under the default or a custom input model.
  SwitchingEstimate estimate() { return estimator_->estimate(default_model_); }
  SwitchingEstimate estimate(const InputModel& model) {
    return estimator_->estimate(model);
  }

  // On-demand static verification of the netlist, the compiled segment
  // LIDAGs, and (at Full) their junction trees. Never throws; callers
  // inspect the report. The EstimatorOptions::verify knob instead makes
  // compilation itself fail fast on error findings.
  DiagnosticReport verify(VerifyLevel level = VerifyLevel::Full) const {
    return estimator_->verify(level);
  }

  // Monte-Carlo ground truth with at least `pairs` vector-pair samples.
  SimResult simulate(std::uint64_t pairs = 1 << 20,
                     std::uint64_t seed = 1) const {
    return SwitchingSimulator(*nl_).run(default_model_, pairs, seed);
  }
  SimResult simulate(const InputModel& model, std::uint64_t pairs,
                     std::uint64_t seed) const {
    return SwitchingSimulator(*nl_).run(model, pairs, seed);
  }

  // Average dynamic power in watts under the simple CV^2 f model:
  //   P = 0.5 * Vdd^2 * f * sum_i C_i * activity_i
  // with C_i = cap_per_fanout * fanout_i + cap_gate (a standard
  // technology-independent proxy).
  double dynamic_power_watts(const SwitchingEstimate& est, double vdd = 1.8,
                             double freq_hz = 100e6,
                             double cap_per_fanout_f = 2e-15,
                             double cap_gate_f = 4e-15) const;

 private:
  const Netlist* nl_;
  InputModel default_model_;
  std::unique_ptr<LidagEstimator> estimator_;
};

} // namespace bns
