#include "core/analyzer.h"

#include "util/assert.h"

namespace bns {

SwitchingAnalyzer::SwitchingAnalyzer(const Netlist& nl, EstimatorOptions opts,
                                     std::optional<InputModel> default_model)
    : nl_(&nl),
      default_model_(default_model.has_value()
                         ? *std::move(default_model)
                         : InputModel::uniform(nl.num_inputs())),
      estimator_(std::make_unique<LidagEstimator>(nl, default_model_, opts)) {
  BNS_EXPECTS(default_model_.num_inputs() == nl.num_inputs());
}

double SwitchingAnalyzer::dynamic_power_watts(const SwitchingEstimate& est,
                                              double vdd, double freq_hz,
                                              double cap_per_fanout_f,
                                              double cap_gate_f) const {
  BNS_EXPECTS(static_cast<int>(est.dist.size()) == nl_->num_nodes());
  const auto fanout = nl_->fanout_counts();
  double weighted_activity_cap = 0.0;
  for (NodeId id = 0; id < nl_->num_nodes(); ++id) {
    const double cap =
        cap_gate_f + cap_per_fanout_f * fanout[static_cast<std::size_t>(id)];
    weighted_activity_cap += cap * est.activity(id);
  }
  return 0.5 * vdd * vdd * freq_hz * weighted_activity_cap;
}

} // namespace bns
