// Accuracy auditor: scores a LIDAG switching estimate against Monte
// Carlo logic-simulation ground truth (src/sim/) and packages the
// paper-style error metrics — mean/max/RMS per-line switching error, a
// per-line error histogram, and a worst-N-lines attribution table —
// as the obs::ReportAccuracy block embedded in run reports.
#pragma once

#include <cstdint>

#include "lidag/estimator.h"
#include "netlist/netlist.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sim/input_model.h"

namespace bns {

struct AccuracyAuditOptions {
  // Monte Carlo vector-pair budget. The default (262144) keeps the
  // per-line sampling noise near 1e-3, an order of magnitude below the
  // CI gate's epsilon.
  std::uint64_t sim_pairs = std::uint64_t{1} << 18;
  std::uint64_t seed = 1;
  // Rows in the worst-lines attribution table (0 disables it).
  int worst_lines = 10;
  // Optional: per-line |error| samples are also recorded into
  // Hist::LineAbsError at Counters level and above.
  obs::Tracer* trace = nullptr;
};

// Simulates `nl` under `model` as ground truth and compares the
// estimator's per-line activities against it, over every netlist line
// (inputs included; their estimates are exact, so they contribute only
// simulation noise).
obs::ReportAccuracy audit_accuracy(const Netlist& nl, const InputModel& model,
                                   const SwitchingEstimate& est,
                                   const AccuracyAuditOptions& opts = {});

// As above, and additionally attributes the per-line errors to the
// estimator's segments (ReportAccuracy::per_segment, in segment order),
// so a boundary-forwarding accuracy loss is localized to the cut that
// caused it instead of being smeared over the whole-circuit mean.
obs::ReportAccuracy audit_accuracy(const Netlist& nl, const InputModel& model,
                                   const SwitchingEstimate& est,
                                   const LidagEstimator& estimator,
                                   const AccuracyAuditOptions& opts = {});

} // namespace bns
