// Scenario-sweep batch engine: runs N input-statistics scenarios over
// one compiled LIDAG estimator, amortizing the compile cost (paper
// Table 2: compile once, update many) and skipping, per scenario, every
// segment whose root CPTs are bitwise unchanged (incremental reload,
// see LidagEstimator::estimate_batch).
//
// Cross-scenario parallelism is by replication: `replicas` independent
// estimators are compiled for the same netlist and each sweeps a
// contiguous chunk of the scenario list on its own thread. Within a
// replica the scenarios still run in order, so incremental reload keeps
// its diff locality; across replicas there is no shared mutable state.
// Results are bit-identical to N sequential estimate() calls for any
// replica count and any per-estimator thread count.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "lidag/estimator.h"
#include "netlist/netlist.h"
#include "sim/input_model.h"

namespace bns {

struct SweepOptions {
  // Per-replica estimator configuration (threads, segmentation, trace —
  // the trace pointer is shared by all replicas, so at levels above
  // Counters, spans from different replicas interleave).
  EstimatorOptions estimator;
  // Independent compiled estimators sweeping scenario chunks
  // concurrently. 1 = one estimator, scenarios strictly in order.
  // Values above the scenario count are clamped.
  int replicas = 1;
};

struct SweepResult {
  // One estimate per scenario, in scenario order.
  std::vector<SwitchingEstimate> estimates;
  // Incremental-reload accounting, summed over replicas.
  BatchStats stats;
  double compile_seconds = 0.0; // all replica compilations, wall clock
  double wall_seconds = 0.0;    // the sweep itself (compile excluded)
  int replicas_used = 1;
};

// Compiles `replicas` estimators for `nl` and sweeps `scenarios` over
// them. Every scenario must share the input-group structure of the
// first one (grouping is part of the compiled model).
SweepResult run_sweep(const Netlist& nl, std::span<const InputModel> scenarios,
                      const SweepOptions& opts = {});

// Produces one additional compiled estimator equivalent to the ones
// already sweeping (recompile the netlist, or re-load the artifact —
// the Session facade picks whichever it was opened from).
using EstimatorFactory = std::function<std::unique_ptr<LidagEstimator>()>;

// As above, but replica 0 is the caller's already-compiled estimator
// and only replicas 1..N-1 are produced by `make` (compile_seconds
// covers exactly those factory calls). This is how Session::sweep
// reuses its own compiled model instead of paying a second compile.
// `first`'s batch state is advanced by the sweep, like any replica's.
SweepResult run_sweep(LidagEstimator& first, const EstimatorFactory& make,
                      std::span<const InputModel> scenarios, int replicas = 1);

} // namespace bns
